package div_test

import (
	"fmt"
	"math"
	"testing"

	"div"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g, err := div.RandomRegular(200, 8, div.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if !div.IsConnected(g) {
		t.Fatal("random regular graph disconnected")
	}
	init := div.UniformOpinions(g.N(), 5, div.NewRand(2))
	res, err := div.Run(div.Config{Graph: g, Initial: init, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatalf("no consensus after %d steps", res.Steps)
	}
	c := res.InitialWeightedAverage
	if float64(res.Winner) < math.Floor(c)-1 || float64(res.Winner) > math.Ceil(c)+1 {
		t.Errorf("winner %d far from average %.3f", res.Winner, c)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	g := div.Complete(60)
	init := div.UniformOpinions(60, 4, div.NewRand(4))
	for _, rule := range []div.Rule{div.DIV{}, div.Pull{}, div.Median{}, div.BestOfK{K: 3}} {
		res, err := div.Run(div.Config{
			Graph:   g,
			Initial: init,
			Rule:    rule,
			Process: div.EdgeProcess,
			Seed:    5,
		})
		if err != nil {
			t.Fatalf("%s: %v", rule.Name(), err)
		}
		if !res.Consensus {
			t.Errorf("%s: no consensus", rule.Name())
		}
	}
}

func TestPublicAPISpectral(t *testing.T) {
	lam, err := div.Lambda(div.Complete(50))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-1.0/49) > 1e-6 {
		t.Errorf("λ(K_50) = %v, want 1/49", lam)
	}
	if b := div.MixingTimeBound(0.5, 0.01, 0.25); b <= 0 || math.IsInf(b, 0) {
		t.Errorf("mixing bound %v", b)
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	g := div.Complete(30)
	init := div.UniformOpinions(30, 3, div.NewRand(6))
	res, err := div.RunDistributed(div.NetConfig{
		Graph:           g,
		Initial:         init,
		Seed:            7,
		StopOnConsensus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Errorf("no distributed consensus by time %v", res.Time)
	}
}

func TestPublicAPINewGraph(t *testing.T) {
	g, err := div.NewGraph(3, []div.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
	if _, err := div.NewGraph(2, []div.Edge{{U: 0, V: 0}}); err == nil {
		t.Error("self loop accepted")
	}
}

// ExampleRun demonstrates the headline guarantee: consensus on the
// rounded initial average.
func ExampleRun() {
	g := div.Complete(90)
	// 30 vertices at each of 1, 4, 7: average exactly 4.
	init, err := div.BlockOpinions(90, []int{30, 0, 0, 30, 0, 0, 30}, div.NewRand(1))
	if err != nil {
		panic(err)
	}
	res, err := div.Run(div.Config{Graph: g, Initial: init, Seed: 20})
	if err != nil {
		panic(err)
	}
	fmt.Println("consensus:", res.Consensus, "winner:", res.Winner)
	// Output: consensus: true winner: 4
}

func TestPublicAPIExtensions(t *testing.T) {
	g := div.Complete(20)
	init := div.UniformOpinions(20, 4, div.NewRand(10))

	// Step-size rule.
	res, err := div.Run(div.Config{Graph: g, Initial: init, Rule: div.IncrementalStep{S: 2}, Seed: 11})
	if err != nil || !res.Consensus {
		t.Fatalf("IncrementalStep: %+v, %v", res, err)
	}

	// Synchronous rounds.
	sres, err := div.RunSync(div.SyncConfig{Graph: g, Initial: init, Lazy: 0.3, Seed: 12})
	if err != nil || !sres.Consensus {
		t.Fatalf("RunSync: %+v, %v", sres, err)
	}

	// Zealots.
	zInit := append([]int(nil), init...)
	zInit[0] = 4
	rule, err := div.NewStubborn(div.DIV{}, 20, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	zres, err := div.Run(div.Config{Graph: g, Initial: zInit, Rule: rule, MaxSteps: 5000 * 400, Seed: 13})
	if err != nil || !zres.Consensus || zres.Winner != 4 {
		t.Fatalf("Stubborn: %+v, %v", zres, err)
	}

	// Push direction.
	pres, err := div.Run(div.Config{Graph: g, Initial: init, Rule: div.PushDIV{}, Seed: 14})
	if err != nil || !pres.Consensus {
		t.Fatalf("PushDIV: %+v, %v", pres, err)
	}

	// Recorder.
	rec := &div.Recorder{}
	_, err = div.Run(div.Config{Graph: g, Initial: init, Seed: 15, Observer: rec.Observe, ObserveEvery: 20})
	if err != nil || rec.Len() < 2 {
		t.Fatalf("Recorder: %d samples, %v", rec.Len(), err)
	}
}

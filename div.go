// Package div is the public API of the discrete-incremental-voting
// library, a faithful implementation of the process introduced in
// "Brief Announcement: Discrete Incremental Voting" (PODC 2023; full
// version "Discrete Incremental Voting on Expanders" by Cooper, Radzik
// and Shiraga).
//
// Discrete incremental voting (DIV) is an asynchronous opinion dynamic
// over a connected graph: opinions are integers in {1..k}; at each step
// a vertex observes one random neighbour and moves its own opinion ONE
// unit toward the neighbour's. On expanders (λ·k small) the unique
// consensus value is, with high probability, the initial average
// opinion rounded to ⌊c⌋ or ⌈c⌉ — making DIV a distributed
// integer-averaging primitive built from nothing but one-sided pull
// interactions.
//
// # Quick start
//
//	g := div.RandomRegular(1000, 16, div.NewRand(1))
//	init := div.UniformOpinions(g.N(), 5, div.NewRand(2))
//	res, err := div.Run(div.Config{Graph: g, Initial: init, Seed: 3})
//	// res.Winner is ⌊c⌋ or ⌈c⌉ w.h.p., where c = res.InitialWeightedAverage.
//
// # Processes
//
// Two schedulers from the paper are provided: the vertex process
// (uniform vertex, uniform neighbour; conserves the degree-weighted
// average in expectation) and the edge process (uniform edge, uniform
// endpoint; conserves the simple average). Comparison dynamics — pull
// voting, median voting, best-of-k plurality, and edge load-balancing
// averaging — run on the same engine via the Rule interface.
//
// # Structure
//
// The facade re-exports a curated surface of the internal packages:
// graphs and generators, the process engine, baseline rules, and
// spectral analysis. The experiment suite reproducing the paper's
// results lives behind the divbench command; see DESIGN.md and
// EXPERIMENTS.md.
package div

import (
	"io"
	"math/rand/v2"

	"div/internal/baseline"
	"div/internal/core"
	"div/internal/graph"
	"div/internal/netsim"
	"div/internal/obs"
	"div/internal/rng"
	"div/internal/spectral"
)

// Graph is an immutable undirected simple graph in CSR form.
type Graph = graph.Graph

// Edge is an undirected edge between two vertex indices.
type Edge = graph.Edge

// NewGraph builds a graph from an edge list, rejecting self-loops and
// duplicate edges.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.NewFromEdges(n, edges) }

// Deterministic graph families.
var (
	// Complete returns K_n (λ = 1/(n-1), the strongest expander).
	Complete = graph.Complete
	// Path returns the path graph P_n (non-expander; counterexample
	// territory).
	Path = graph.Path
	// Cycle returns the cycle C_n.
	Cycle = graph.Cycle
	// Star returns the star K_{1,n-1}.
	Star = graph.Star
	// Torus returns the rows×cols wraparound lattice.
	Torus = graph.Torus
	// Hypercube returns Q_d on 2^d vertices.
	Hypercube = graph.Hypercube
)

// Random graph families (pass a *rand.Rand from NewRand for
// reproducibility).
var (
	// RandomRegular samples a random d-regular simple graph
	// (λ = O(1/√d) w.h.p.).
	RandomRegular = graph.RandomRegular
	// Gnp samples an Erdős–Rényi graph (λ ≲ 2/√(np) w.h.p. above the
	// connectivity threshold).
	Gnp = graph.Gnp
	// ConnectedGnp resamples Gnp until connected.
	ConnectedGnp = graph.ConnectedGnp
	// WattsStrogatz samples a rewired ring lattice (small world).
	WattsStrogatz = graph.WattsStrogatz
	// BarabasiAlbert samples a preferential-attachment graph
	// (heavy-tailed degrees).
	BarabasiAlbert = graph.BarabasiAlbert
)

// IsConnected reports whether g is connected; the voting processes are
// defined on connected graphs.
func IsConnected(g *Graph) bool { return graph.IsConnected(g) }

// Process selects the paper's scheduler.
type Process = core.Process

const (
	// VertexProcess picks a uniform vertex and a uniform neighbour:
	// P[v chooses w] = 1/(n·d(v)).
	VertexProcess = core.VertexProcess
	// EdgeProcess picks a uniform edge and a uniform endpoint:
	// P[v chooses w] = 1/2m.
	EdgeProcess = core.EdgeProcess
)

// Rule is one asynchronous update; DIV is the paper's rule, and the
// Pull/Median/BestOfK/LoadBalance baselines satisfy the same interface.
type Rule = core.Rule

// DIV is the paper's discrete incremental voting rule (equation (1)).
type DIV = core.DIV

// IncrementalStep generalizes DIV with a step size: S=1 is DIV, larger
// S trades the averaging guarantee for nothing (see the E15 ablation).
type IncrementalStep = core.IncrementalStep

// Baseline dynamics from the paper's related-work discussion.
type (
	// Pull is classic pull voting (adopt the neighbour's opinion).
	Pull = baseline.Pull
	// Push is classic push voting (impose on the neighbour).
	Push = baseline.Push
	// PushDIV is incremental voting with the update direction
	// reversed; under the vertex process its consensus tracks the
	// inverse-degree-weighted average (E17).
	PushDIV = baseline.PushDIV
	// Median is the median dynamics of Doerr et al.
	Median = baseline.Median
	// BestOfK is plurality sampling over K neighbour draws.
	BestOfK = baseline.BestOfK
	// LoadBalance is the edge-averaging protocol of Berenbrink et al.
	LoadBalance = baseline.LoadBalance
	// Stubborn wraps a rule with a set of zealot vertices that never
	// update (fault-tolerance experiments, E18).
	Stubborn = baseline.Stubborn
)

// NewStubborn freezes the given zealot vertices under the inner rule.
func NewStubborn(inner Rule, n int, zealots []int) (*Stubborn, error) {
	return baseline.NewStubborn(inner, n, zealots)
}

// Config describes one run; Result summarizes it. See the fields'
// documentation in the core package.
type (
	Config = core.Config
	Result = core.Result
	Stage  = core.Stage
	State  = core.State
)

// Stop conditions for Config.Stop.
const (
	// UntilConsensus runs until a single opinion remains.
	UntilConsensus = core.UntilConsensus
	// UntilTwoAdjacent runs until the paper's reduction phase ends
	// (two adjacent opinions remain).
	UntilTwoAdjacent = core.UntilTwoAdjacent
	// UntilMaxSteps runs exactly Config.MaxSteps steps.
	UntilMaxSteps = core.UntilMaxSteps
	// UntilThreeConsecutive runs until at most three consecutive values
	// remain — the absorbing band of the LoadBalance baseline.
	UntilThreeConsecutive = core.UntilThreeConsecutive
)

// Engine selects the stepping strategy for Config.Engine. Every engine
// realizes the same process law; they differ only in speed.
type Engine = core.Engine

const (
	// EngineNaive simulates every scheduler draw individually (the
	// reference implementation and the zero-value default).
	EngineNaive = core.EngineNaive
	// EngineFast tracks discordant pairs incrementally and skips runs
	// of idle draws in one geometric sample (DESIGN.md §6).
	EngineFast = core.EngineFast
	// EngineAuto switches between the two at runtime as discordance
	// falls and rebounds; the best default for long consensus runs.
	EngineAuto = core.EngineAuto
)

// ParseEngine parses "naive", "fast", or "auto".
func ParseEngine(s string) (Engine, error) { return core.ParseEngine(s) }

// Run executes one asynchronous voting process.
func Run(cfg Config) (Result, error) { return core.Run(cfg) }

// Scratch is a per-worker arena of reusable simulation state for
// repeated trials on one graph; wire it into Config.Scratch to make a
// steady-state trial allocation-free (O(1) instead of O(n + m)).
// Reuse is invisible to the law: a seeded run's Result is byte-identical
// on a fresh and on a reused Scratch. Not safe for concurrent use.
type Scratch = core.Scratch

// NewScratch returns an empty scratch bound to g.
func NewScratch(g *Graph) *Scratch { return core.NewScratch(g) }

// RunMany executes independent trials with derived per-trial seeds.
func RunMany(cfg Config, trials int) ([]Result, error) { return core.RunMany(cfg, trials) }

// Recorder samples the live state into time series; pass its Observe
// method as Config.Observer.
type Recorder = core.Recorder

// StreamRecorder is the fixed-memory counterpart of Recorder: online
// min/mean/max accumulators plus a self-coarsening bounded checkpoint
// buffer, for runs whose step count makes append-per-sample series
// unaffordable.
type StreamRecorder = core.StreamRecorder

// SampleSink is the common surface of Recorder and StreamRecorder.
type SampleSink = core.SampleSink

// NewAutoRecorder picks the exact Recorder when the expected sample
// count (maxSteps/observeEvery) fits the budget (≤0: a default) and a
// bounded StreamRecorder otherwise.
func NewAutoRecorder(maxSteps, observeEvery int64, budget int) SampleSink {
	return core.NewAutoRecorder(maxSteps, observeEvery, budget)
}

// Synchronous-rounds extension: all vertices update simultaneously;
// laziness breaks the period-2 orbits pure synchrony can fall into.
type (
	SyncConfig = core.SyncConfig
	SyncResult = core.SyncResult
)

// RunSync executes synchronous-rounds DIV.
func RunSync(cfg SyncConfig) (SyncResult, error) { return core.RunSync(cfg) }

// Initial-opinion profiles.
var (
	// UniformOpinions draws each vertex's opinion uniformly from {1..k}.
	UniformOpinions = core.UniformOpinions
	// BlockOpinions places exact per-opinion counts at random vertices.
	BlockOpinions = core.BlockOpinions
	// WeightedOpinions draws opinions from a weight vector.
	WeightedOpinions = core.WeightedOpinions
)

// Lambda estimates λ = max(|λ₂|, |λ_n|) of the random walk on g — the
// expansion parameter all of the paper's guarantees are stated in — via
// a sparse deflated power method in O(iterations·(n+m)).
func Lambda(g *Graph) (float64, error) {
	return spectral.Lambda(g, spectral.Options{})
}

// MixingTimeBound returns the standard reversible-chain bound
// t_mix(ε) ≤ log(1/(ε·π_min))/(1-λ).
func MixingTimeBound(lambda, piMin, eps float64) float64 {
	return spectral.MixingTimeBound(lambda, piMin, eps)
}

// NewRand returns a deterministic PCG generator for the given seed;
// all randomized constructors in this package accept one.
func NewRand(seed uint64) *rand.Rand { return rng.New(seed) }

// Distributed deployment: DIV as a message-passing pull protocol over a
// simulated asynchronous network (Poisson clocks, optional latency).
type (
	// NetConfig configures a distributed run.
	NetConfig = netsim.Config
	// NetResult summarizes a distributed run.
	NetResult = netsim.Result
)

// RunDistributed executes the message-passing protocol. With zero
// latency it is exactly the vertex process (Poisson thinning).
func RunDistributed(cfg NetConfig) (NetResult, error) { return netsim.Run(cfg) }

// Observability: a probe receives semantic engine events (step
// batches, engine switches, discordance mass, stage transitions, run
// completion) via Config.Probe; a nil probe costs one predictable
// branch per step, and a non-nil probe never perturbs the trajectory.
// See DESIGN.md §7.
type (
	// Probe is the structured run-event interface.
	Probe = obs.Probe
	// ProbeMaker builds a per-run probe from (trial, seed) context.
	ProbeMaker = obs.ProbeMaker
	// StepBatch aggregates a contiguous span of steps.
	StepBatch = obs.StepBatch
	// EngineSwitch reports a hybrid naive⇄fast transition.
	EngineSwitch = obs.EngineSwitch
	// DiscordanceEvent samples the discordant-arc mass.
	DiscordanceEvent = obs.Discordance
	// StageEvent reports a support-set change.
	StageEvent = obs.Stage
	// DoneEvent reports run completion.
	DoneEvent = obs.Done
	// TraceWriter streams probe events as JSONL.
	TraceWriter = obs.TraceWriter
	// TraceEvent is one decoded JSONL trace line.
	TraceEvent = obs.Event
	// MetricsRegistry is a process-local metrics registry.
	MetricsRegistry = obs.Registry
)

// Metrics is the process-wide default metrics registry that the
// harness, netsim, and MetricsProbe(Metrics) aggregate into; snapshot
// it with Metrics.Snapshot().WriteText or publish it over expvar with
// Metrics.PublishExpvar.
var Metrics = obs.Default

// NewTraceWriter wraps w in a JSONL trace sink; attach per-run probes
// with TraceWriter.Probe(trial, seed) and flush with Close.
func NewTraceWriter(w io.Writer) *TraceWriter { return obs.NewTraceWriter(w) }

// ReadTrace decodes a JSONL trace produced by TraceWriter.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return obs.ReadTrace(r) }

// MetricsProbe returns a probe that aggregates run events into reg's
// counters and histograms; it is safe to share across concurrent runs.
func MetricsProbe(reg *MetricsRegistry) Probe { return obs.MetricsProbe(reg) }

// MultiProbe fans events out to several probes, dropping nils.
func MultiProbe(probes ...Probe) Probe { return obs.Multi(probes...) }

#!/usr/bin/env bash
# serve_smoke.sh — end-to-end check of the live exposition surface.
#
# Runs the quick suite with -serve, polls /metrics while the suite is
# still going, and asserts the live page carries the telemetry the
# acceptance criteria name: the scheduler queue-depth gauge, the graph
# cache counters, and at least one latency histogram rendered as
# cumulative Prometheus buckets. Also validates /progress parses as
# JSON with the expected fields. Exits nonzero on any miss.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SERVE_SMOKE_PORT:-19809}"
ADDR="127.0.0.1:${PORT}"
OUT="$(mktemp -d)"
trap 'kill "${BENCH_PID:-}" 2>/dev/null || true; rm -rf "$OUT"' EXIT

go build -o "$OUT/divbench" ./cmd/divbench
"$OUT/divbench" -serve "$ADDR" >"$OUT/suite.log" 2>&1 &
BENCH_PID=$!

# Wait (up to ~30s) for the server to come up, then keep the scrape
# that we validate: a mid-run snapshot, not a post-run one.
up=""
for _ in $(seq 1 300); do
  if curl -sf "http://$ADDR/metrics" -o "$OUT/metrics.txt" 2>/dev/null; then
    up=1
    break
  fi
  if ! kill -0 "$BENCH_PID" 2>/dev/null; then
    echo "serve_smoke: divbench exited before /metrics came up" >&2
    cat "$OUT/suite.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$up" ]; then
  echo "serve_smoke: /metrics not reachable after 30s" >&2
  exit 1
fi

curl -sf "http://$ADDR/progress" -o "$OUT/progress.json"
curl -sf "http://$ADDR/snapshot.json" -o "$OUT/snapshot.json"

fail=0
require() { # require <pattern> <file> <what>
  if ! grep -q "$1" "$2"; then
    echo "serve_smoke: MISSING $3 (pattern: $1)" >&2
    fail=1
  else
    echo "serve_smoke: ok: $3"
  fi
}
require '^# TYPE sched_queue_depth gauge' "$OUT/metrics.txt" "scheduler queue-depth gauge"
require '^# TYPE graph_cache_hits_total counter' "$OUT/metrics.txt" "graph cache hit counter"
require '^# TYPE graph_cache_misses_total counter' "$OUT/metrics.txt" "graph cache miss counter"
require '_bucket{le="' "$OUT/metrics.txt" "a latency histogram with cumulative buckets"
require '_bucket{le="+Inf"}' "$OUT/metrics.txt" "the +Inf bucket"

python3 - "$OUT/progress.json" "$OUT/snapshot.json" <<'EOF'
import json, sys
prog = json.load(open(sys.argv[1]))
assert prog["total"] > 0, "progress.total must be positive"
assert 0 <= prog["done"] <= prog["total"], "progress.done out of range"
snap = json.load(open(sys.argv[2]))
assert snap["provenance"]["command"] == "divbench", "snapshot provenance"
assert "metrics" in snap, "snapshot metrics"
print("serve_smoke: ok: /progress and /snapshot.json parse with expected fields")
EOF

wait "$BENCH_PID"
echo "serve_smoke: ok: suite completed cleanly under -serve"
exit "$fail"

#!/bin/sh
# Regenerates results/observability.txt: a traced E20-style dissenter
# run (regular:10000,8, 20 dissenters, hybrid engine) showing the
# engine-switch timeline, the discordance trajectory, and the metrics
# snapshot. Also asserts the trace is byte-identical across two
# invocations — the reproducibility guarantee DESIGN.md §7 documents.
set -eu
cd "$(dirname "$0")/.."

OUT=results/observability.txt
TMP="${TMPDIR:-/tmp}/div_obs_$$"
mkdir -p results "$TMP"
trap 'rm -rf "$TMP"' EXIT

RUN="go run ./cmd/divsim -graph regular:10000,8 -dissenters 20 -seed 1 -engine auto"
$RUN -trace "$TMP/a.jsonl" -metrics >"$TMP/stdout.txt"
$RUN -trace "$TMP/b.jsonl" >/dev/null
cmp "$TMP/a.jsonl" "$TMP/b.jsonl" || {
    echo "trace_artifact: traces differ between identical invocations" >&2
    exit 1
}
# The committed artifact must not embed this script's temp paths.
sed "s|$TMP/a.jsonl|run.jsonl|" "$TMP/stdout.txt" >"$TMP/stdout.clean" &&
    mv "$TMP/stdout.clean" "$TMP/stdout.txt"

# A uniform 5-opinion start exercises the full hybrid timeline: naive
# until the windowed active-fraction trigger, fast until a discordance
# rebound, back to naive under cooldown, and fast again to the finish.
go run ./cmd/divsim -graph regular:4000,8 -k 5 -seed 3 -engine auto \
    -trace "$TMP/k5.jsonl" >/dev/null

{
    echo "# Observability artifact: traced E20-style dissenter run"
    echo "#"
    echo "# Command: divsim -graph regular:10000,8 -dissenters 20 -seed 1 -engine auto -trace run.jsonl -metrics"
    echo "# Regenerate: make trace-artifact (or scripts/trace_artifact.sh)"
    echo "# The JSONL trace is byte-identical across invocations (verified by this script)."
    echo
    echo "## Run output and metrics snapshot"
    echo
    cat "$TMP/stdout.txt"
    echo
    echo "## Engine-switch timeline (\"ev\":\"switch\" lines of the trace)"
    echo
    grep '"ev":"switch"' "$TMP/a.jsonl"
    echo
    echo "## Full hybrid timeline on a uniform 5-opinion start"
    echo "## (divsim -graph regular:4000,8 -k 5 -seed 3): window entry,"
    echo "## rebound exit with cooldown, window re-entry"
    echo
    grep '"ev":"switch"' "$TMP/k5.jsonl"
    echo
    echo "## Discordance trajectory (first and last 10 samples)"
    echo
    grep '"ev":"discordance"' "$TMP/a.jsonl" >"$TMP/disc.jsonl"
    head -10 "$TMP/disc.jsonl"
    echo "..."
    tail -10 "$TMP/disc.jsonl"
    echo
    echo "## Trace head (first 5 events)"
    echo
    head -5 "$TMP/a.jsonl"
    echo
    echo "## Trace tail (final batch, stage, done)"
    echo
    tail -4 "$TMP/a.jsonl"
} >"$OUT"

echo "wrote $OUT ($(grep -c '' "$TMP/a.jsonl") trace events)"

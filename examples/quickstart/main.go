// Quickstart: run discrete incremental voting on a random regular
// expander and watch it agree on the rounded average opinion.
package main

import (
	"fmt"
	"log"

	"div"
)

func main() {
	// A random 16-regular graph on 1000 vertices: λ ≈ 2/√16 = 0.25,
	// comfortably inside the paper's λk = o(1) regime for k = 5.
	g, err := div.RandomRegular(1000, 16, div.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}

	// Every vertex starts with an independent uniform opinion in 1..5.
	init := div.UniformOpinions(g.N(), 5, div.NewRand(2))

	res, err := div.Run(div.Config{
		Graph:   g,
		Initial: init,
		Process: div.VertexProcess,
		Seed:    3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph:            %v\n", g)
	fmt.Printf("initial average:  %.4f (degree-weighted %.4f)\n",
		res.InitialAverage, res.InitialWeightedAverage)
	fmt.Printf("consensus:        %v on opinion %d\n", res.Consensus, res.Winner)
	fmt.Printf("steps:            %d total; two adjacent opinions after %d\n",
		res.Steps, res.TwoAdjacentStep)
	fmt.Println()
	fmt.Println("Theorem 2: the winner is ⌊c⌋ or ⌈c⌉ of the initial average c, w.h.p.")
}

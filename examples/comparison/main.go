// Comparison: mode vs median vs mean. The paper positions the three
// pull-based dynamics as distributed analogues of the three classical
// location statistics:
//
//	pull voting   → mode    (wins ∝ initial support, eq. (3))
//	median voting → median  (Doerr et al.)
//	DIV           → mean    (Theorem 2)
//
// This example runs all three (plus best-of-3 plurality) on one skewed
// opinion profile whose mode, median and mean are three different
// values, and tallies where each dynamic lands.
package main

import (
	"fmt"
	"log"
	"sort"

	"div"
)

func main() {
	const n = 600
	const trials = 60
	g := div.Complete(n)

	// Opinions 1..9: mode 1, median 2, mean ≈ 3.07.
	counts := make([]int, 9)
	counts[0] = 200 // 1
	counts[1] = 160 // 2
	counts[2] = 140 // 3
	counts[8] = 100 // 9

	var sum, total int
	for i, c := range counts {
		sum += (i + 1) * c
		total += c
	}
	mean := float64(sum) / float64(total)
	fmt.Printf("profile on %v: %v\n", g, counts)
	fmt.Printf("mode = 1, median = 2, mean = %.3f\n\n", mean)

	rules := []div.Rule{div.DIV{}, div.Pull{}, div.Median{}, div.BestOfK{K: 3}}
	for _, rule := range rules {
		wins := map[int]int{}
		for trial := 0; trial < trials; trial++ {
			init, err := div.BlockOpinions(n, counts, div.NewRand(uint64(1000+trial)))
			if err != nil {
				log.Fatal(err)
			}
			res, err := div.Run(div.Config{
				Graph:   g,
				Initial: init,
				Process: div.EdgeProcess,
				Rule:    rule,
				Seed:    uint64(2000 + trial),
			})
			if err != nil {
				log.Fatal(err)
			}
			wins[res.Winner]++
		}
		fmt.Printf("%-10s →", rule.Name())
		keys := make([]int, 0, len(wins))
		for k := range wins {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Printf("  %d:%2d", k, wins[k])
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("DIV clusters on {3,4} (the rounded mean); median voting on 2; pull voting")
	fmt.Println("scatters ∝ initial support, making the mode merely the likeliest lottery ticket.")
}

// Sensors: distributed integer averaging on a sensor mesh. Each node
// holds an integer reading (say, a quantized temperature); the network
// must agree on the average using only the weakest possible
// interaction — one node reading one neighbour and nudging its own
// value. The example compares DIV against the load-balancing averaging
// protocol ([5] in the paper), which needs coordinated two-node
// updates.
package main

import (
	"fmt"
	"log"
	"math"

	"div"
)

func main() {
	const (
		n      = 600
		degree = 12
		k      = 32 // readings quantized to 1..32
	)
	g, err := div.RandomRegular(n, degree, div.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}
	lam, err := div.Lambda(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %v, λ = %.3f (λ·k = %.2f)\n\n", g, lam, lam*float64(k))

	readings := div.UniformOpinions(n, k, div.NewRand(2))
	var sum int
	for _, x := range readings {
		sum += x
	}
	c := float64(sum) / n
	fmt.Printf("true average reading: %.4f → acceptable answers {%d, %d}\n\n",
		c, int(math.Floor(c)), int(math.Ceil(c)))

	// DIV: one-sided pulls, runs to a single consensus value.
	res, err := div.Run(div.Config{
		Graph:   g,
		Initial: readings,
		Process: div.EdgeProcess,
		Seed:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DIV:          consensus on %d after %d one-sided interactions\n", res.Winner, res.Steps)
	fmt.Printf("              (range shrank to two adjacent values after %d steps)\n", res.TwoAdjacentStep)

	// Load balancing: coordinated edge updates, conserves the sum
	// exactly, but only guarantees a band of three consecutive values
	// ([5]) — adjacent values exchange nothing under floor/ceil
	// averaging, so on a sparse mesh it can stall there forever.
	lb, err := div.Run(div.Config{
		Graph:   g,
		Initial: readings,
		Process: div.EdgeProcess,
		Rule:    div.LoadBalance{},
		Stop:    div.UntilThreeConsecutive,
		Seed:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loadbalance:  values within [%d, %d] after %d coordinated exchanges — a mixture, not consensus\n",
		lb.FinalMin, lb.FinalMax, lb.Steps)

	fmt.Println()
	fmt.Println("trade-off: load balancing contracts faster and conserves the sum exactly,")
	fmt.Println("but needs two-sided coordinated updates and cannot finish; DIV needs only")
	fmt.Println("pull reads and terminates at the rounded average (Theorems 1–2).")
}

// Survey: the paper's motivating scenario. Opinions are Likert-scale
// answers 1 ('disagree strongly') … 5 ('agree strongly') on a
// small-world social network. People don't adopt a neighbour's view
// wholesale — they shift one notch toward it. DIV models exactly that,
// and the group settles on the rounded *mean* opinion, not the most
// common one.
package main

import (
	"fmt"
	"log"

	"div"
)

func main() {
	const n = 500
	// A Watts–Strogatz small world: everyone knows their neighbours
	// plus a few long-range acquaintances (the rewiring makes it an
	// expander in practice).
	g, err := div.WattsStrogatz(n, 10, 0.3, div.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}

	// A polarized population: many strong disagreers, a moderate
	// middle, and an enthusiastic minority.
	//                           1    2    3   4   5
	counts := []int{180, 120, 60, 40, 100}
	init, err := div.BlockOpinions(n, counts, div.NewRand(2))
	if err != nil {
		log.Fatal(err)
	}

	mode, modeCount := 1, 0
	var sum int
	for i, c := range counts {
		if c > modeCount {
			mode, modeCount = i+1, c
		}
		sum += (i + 1) * c
	}
	mean := float64(sum) / n
	fmt.Printf("population of %d on %v\n", n, g)
	fmt.Printf("answers: %v → mode %d, mean %.3f\n\n", counts, mode, mean)

	res, err := div.Run(div.Config{
		Graph:        g,
		Initial:      init,
		Process:      div.VertexProcess,
		Seed:         3,
		TraceSupport: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("evolution of the set of opinions present:")
	shown := 0
	for _, st := range res.Stages {
		fmt.Printf("  step %9d: %v\n", st.FromStep, st.Opinions)
		shown++
		if shown >= 12 && len(res.Stages) > 14 {
			fmt.Printf("  … %d more stages …\n", len(res.Stages)-shown-1)
			last := res.Stages[len(res.Stages)-1]
			fmt.Printf("  step %9d: %v\n", last.FromStep, last.Opinions)
			break
		}
	}

	fmt.Printf("\nconsensus: %d after %d interactions\n", res.Winner, res.Steps)
	fmt.Printf("the mean answer was %.3f → the group settles on %d or %d; the mode (%d) does not decide\n",
		mean, int(mean), int(mean)+1, mode)

	// Contrast with plain pull voting, which adopts opinions wholesale
	// and crowns a value with probability proportional to its support.
	pullWins := map[int]int{}
	for trial := 0; trial < 50; trial++ {
		pr, err := div.Run(div.Config{
			Graph:   g,
			Initial: init,
			Process: div.VertexProcess,
			Rule:    div.Pull{},
			Seed:    uint64(100 + trial),
		})
		if err != nil {
			log.Fatal(err)
		}
		pullWins[pr.Winner]++
	}
	fmt.Printf("\npull voting over 50 trials picks: %v — a lottery weighted by initial support\n", pullWins)
}

// Zealots: what happens to averaging consensus when some nodes refuse
// to update? A crashed sensor stuck at a reading — or a strategic
// zealot — never changes its opinion but is still observed by
// neighbours. This example shows the two regimes: a single zealot
// eventually captures the whole network (absorption beats the
// martingale), and two disagreeing zealots keep it open forever.
package main

import (
	"fmt"
	"log"

	"div"
)

func main() {
	const (
		n = 200
		k = 9
	)
	g := div.Complete(n)

	// Regime 1: one stubborn node pinned at the top of the scale.
	fmt.Println("— one zealot pinned at 9, everyone else uniform in 1..9 —")
	for trial := 0; trial < 5; trial++ {
		init := div.UniformOpinions(n, k, div.NewRand(uint64(10+trial)))
		init[0] = k
		rule, err := div.NewStubborn(div.DIV{}, n, []int{0})
		if err != nil {
			log.Fatal(err)
		}
		res, err := div.Run(div.Config{
			Graph:    g,
			Initial:  init,
			Rule:     rule,
			MaxSteps: 5000 * n * n,
			Seed:     uint64(100 + trial),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  trial %d: average started at %.2f, consensus on %d after %d steps\n",
			trial, res.InitialAverage, res.Winner, res.Steps)
	}
	fmt.Println("  ⇒ the zealot always wins: all-9 is the only absorbing state,")
	fmt.Println("    so the averaging guarantee of Theorem 2 is overridden.")

	// Regime 2: two zealots that disagree.
	fmt.Println()
	fmt.Println("— two zealots pinned at 1 and 9 —")
	init := div.UniformOpinions(n, k, div.NewRand(42))
	init[0], init[1] = 1, k
	rule, err := div.NewStubborn(div.DIV{}, n, []int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := div.Run(div.Config{
		Graph:    g,
		Initial:  init,
		Rule:     rule,
		Stop:     div.UntilMaxSteps,
		MaxSteps: 100 * n * n,
		Seed:     43,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after %d steps: consensus=%v, surviving opinions span [%d, %d]\n",
		res.Steps, res.Consensus, res.FinalMin, res.FinalMax)
	fmt.Println("  ⇒ no absorbing state exists; the network hovers in a mixture forever.")
	fmt.Println()
	fmt.Println("Takeaway: DIV averages honest networks (E1), but a deployment must")
	fmt.Println("bound stuck nodes — a single silent fault re-targets the consensus.")
}

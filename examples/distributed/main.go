// Distributed: DIV deployed as a real message-passing protocol. Every
// node runs an independent Poisson clock; on each tick it pulls one
// random neighbour's opinion over the (lossless but slow) network and
// nudges its own value. With zero latency this is *provably* the
// paper's vertex process; with latency, every observation is stale —
// and the example shows how gracefully the rounded-average guarantee
// degrades.
package main

import (
	"fmt"
	"log"

	"div"
)

func main() {
	const (
		n      = 150
		k      = 5
		trials = 40
	)
	g := div.Complete(n)
	// 60% at opinion 3, 40% at opinion 4: average exactly 3.4.
	counts := []int{0, 0, 90, 60, 0}
	fmt.Printf("network: %v, readings %v (average 3.40 → want consensus on 3 or 4)\n\n", g, counts)
	fmt.Printf("%-22s %-12s %-14s %-14s\n", "mean latency", "accuracy", "time (periods)", "messages/node")

	for _, latency := range []float64{0, 0.5, 2, 8} {
		good, consensus := 0, 0
		var timeSum, msgSum float64
		for trial := 0; trial < trials; trial++ {
			init, err := div.BlockOpinions(n, counts, div.NewRand(uint64(10+trial)))
			if err != nil {
				log.Fatal(err)
			}
			res, err := div.RunDistributed(div.NetConfig{
				Graph:           g,
				Initial:         init,
				Latency:         latency,
				Seed:            uint64(1000*int(latency*10) + trial),
				StopOnConsensus: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.Consensus {
				consensus++
				if res.Winner == 3 || res.Winner == 4 {
					good++
				}
			}
			timeSum += res.Time
			msgSum += float64(res.Messages) / n
		}
		fmt.Printf("%-22s %-12s %-14s %-14s\n",
			fmt.Sprintf("%.1f firing periods", latency),
			fmt.Sprintf("%d/%d (%d consensus)", good, trials, consensus),
			fmt.Sprintf("%.0f", timeSum/trials),
			fmt.Sprintf("%.0f", msgSum/trials),
		)
	}

	fmt.Println()
	fmt.Println("latency 0 reproduces the sequential vertex process exactly (Poisson thinning);")
	fmt.Println("under stale reads DIV's one-unit updates keep the consensus near the average")
	fmt.Println("long after wholesale-adoption protocols would have amplified stale noise.")
}

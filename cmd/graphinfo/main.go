// Command graphinfo inspects a graph family: size, degree statistics,
// structure flags, and the spectral quantities the paper's theorems are
// parameterized by (λ, λk feasibility, mixing-time bound).
//
// Examples:
//
//	graphinfo -graph regular:1000,16
//	graphinfo -graph gnp:500,0.05 -k 9
//	graphinfo -graph barbell:20,5 -diameter
//	graphinfo -graph circulant:1000000,1+2+3+4 -implicit
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"div/internal/cli"
	"div/internal/graph"
	"div/internal/markov"
	"div/internal/spectral"
)

func main() {
	var (
		graphSpec    = flag.String("graph", "complete:100", "graph spec (see divsim -help)")
		seed         = flag.Uint64("seed", 1, "seed for random families")
		k            = flag.Int("k", 5, "opinion count for the λk feasibility line")
		diameter     = flag.Bool("diameter", false, "also compute the exact diameter (O(n·m))")
		implicit     = flag.Bool("implicit", false, "inspect the O(1)-state implicit backend for the spec instead of materializing it, and print the predicted-vs-actual CSR memory estimate")
		buildWorkers = flag.Int("build-workers", runtime.GOMAXPROCS(0), "worker count for parallel graph construction (random families; 1 = serial, never changes the built graph)")
	)
	flag.Parse()

	var err error
	if *implicit {
		err = runImplicit(*graphSpec, *seed, *k)
	} else {
		err = run(*graphSpec, *seed, *k, *diameter, *buildWorkers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run(graphSpec string, seed uint64, k int, diameter bool, buildWorkers int) error {
	var stats graph.BuildStats
	g, err := cli.ParseGraphOpts(graphSpec, seed, graph.BuildOpts{Workers: buildWorkers, Stats: &stats})
	if err != nil {
		return err
	}
	fmt.Printf("graph:      %v\n", g)
	if stats.Stripes > 0 {
		total := stats.TotalNanos()
		fmt.Printf("build:      %v total, %d worker(s), %d stripe(s)\n",
			time.Duration(total), stats.Workers, stats.Stripes)
		phase := func(name string, nanos int64) {
			if total > 0 {
				fmt.Printf("            %-8s %12v  (%4.1f%%)\n",
					name, time.Duration(nanos), 100*float64(nanos)/float64(total))
			}
		}
		phase("sample", stats.SampleNanos)
		phase("count", stats.CountNanos)
		phase("offsets", stats.OffsetsNanos)
		phase("scatter", stats.ScatterNanos)
		phase("sort", stats.SortNanos)
	}
	deg := graph.Degrees(g)
	fmt.Printf("degrees:    min %d, max %d, mean %.2f\n", deg.Min, deg.Max, deg.Mean)
	fmt.Printf("stationary: π_min %.6f, π_max %.6f (paper wants π_min = Θ(1/n): n·π_min = %.2f)\n",
		deg.PiMin, deg.PiMax, float64(g.N())*deg.PiMin)
	fmt.Printf("connected:  %v   bipartite: %v   regular: %v\n",
		graph.IsConnected(g), graph.IsBipartite(g), g.IsRegular())
	if diameter {
		d, err := graph.Diameter(g)
		if err != nil {
			return err
		}
		fmt.Printf("diameter:   %d\n", d)
	}
	if !graph.IsConnected(g) {
		fmt.Println("λ:          undefined (disconnected)")
		return nil
	}
	lam, err := spectral.Lambda(g, spectral.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("λ:          %.6f\n", lam)
	if g.N() >= 2 {
		cut, lambda2, err := markov.CheegerSweep(g)
		if err != nil {
			return err
		}
		fmt.Printf("λ₂:         %.6f (signed)\n", lambda2)
		fmt.Printf("Φ (sweep):  %.6f with |S| = %d  [Cheeger: %.4f ≤ Φ ≤ %.4f]\n",
			cut.Phi, len(cut.Set), (1-lambda2)/2, math.Sqrt(2*(1-lambda2)))
	}
	fmt.Printf("λ·k:        %.4f at k=%d (Theorem 2 needs λk = o(1))\n", lam*float64(k), k)
	if lam > 0 && lam < 1 {
		fmt.Printf("max k:      %.0f for λk ≤ 0.5\n", math.Floor(0.5/lam))
		fmt.Printf("t_mix:      ≤ %.0f steps (ε = 1/4 bound)\n", spectral.MixingTimeBound(lam, deg.PiMin, 0.25))
	} else if lam >= 1 {
		fmt.Println("warning:    λ = 1 (bipartite or disconnected walk): the paper's aperiodicity assumption fails")
	}
	return nil
}

// materializeByteCap bounds the CSR twin built for the actual-memory
// column: above ~2²⁶ predicted bytes the point of -implicit is exactly
// not to build the adjacency, so only the prediction is printed.
const materializeByteCap = 64 << 20

// runImplicit inspects the O(1)-state backend for the spec: topology
// facts, the closed-form λ where one exists, and the memory the
// materialized CSR representation would cost — predicted from
// graph.CSRMemEstimate, and, when small enough to afford, measured
// against the actual materialized twin.
func runImplicit(graphSpec string, seed uint64, k int) error {
	topo, err := cli.ParseTopology(graphSpec, seed)
	if err != nil {
		return err
	}
	n, degSum := topo.N(), topo.DegreeSum()
	fmt.Printf("topology:   %s (implicit, O(1) state)\n", topo.Name())
	fmt.Printf("degrees:    min %d, mean %.2f, sum %d\n",
		topo.MinDegree(), float64(degSum)/float64(n), degSum)
	piMin := float64(topo.MinDegree()) / float64(degSum)
	fmt.Printf("stationary: π_min %.3g (n·π_min = %.2f)\n", piMin, float64(n)*piMin)

	if lam, ok := spectral.LambdaTopology(topo); ok {
		fmt.Printf("λ:          %.6f (closed form)\n", lam)
		fmt.Printf("λ·k:        %.4f at k=%d (Theorem 2 needs λk = o(1))\n", lam*float64(k), k)
		if lam > 0 && lam < 1 {
			fmt.Printf("max k:      %.0f for λk ≤ 0.5\n", math.Floor(0.5/lam))
			fmt.Printf("t_mix:      ≤ %.0f steps (ε = 1/4 bound)\n", spectral.MixingTimeBound(lam, piMin, 0.25))
		} else if lam >= 1 {
			fmt.Println("warning:    λ = 1 (bipartite walk): the paper's aperiodicity assumption fails")
		}
	} else if hr, ok := topo.(*graph.HashedRegular); ok {
		fmt.Printf("λ:          ≲ %.6f (w.h.p. random-regular bound; no closed form)\n",
			spectral.LambdaRandomRegularBound(hr.MinDegree()))
	}

	adjPred, arcPred := graph.CSRMemEstimate(n, degSum)
	fmt.Printf("memory if materialized (predicted): adjacency %s + arc index %s = %s\n",
		fmtBytes(adjPred), fmtBytes(arcPred), fmtBytes(adjPred+arcPred))
	if adjPred+arcPred > materializeByteCap {
		fmt.Printf("memory if materialized (actual):    skipped above %s predicted — the saving is the point\n",
			fmtBytes(materializeByteCap))
		return nil
	}
	g, err := graph.Materialize(topo)
	if err != nil {
		// HashedRegular multigraphs can collide on an edge and have no
		// simple CSR twin; the prediction above is still what a simple
		// graph of the same size would cost.
		fmt.Printf("memory if materialized (actual):    unavailable (%v)\n", err)
		return nil
	}
	ix := g.ArcIndex()
	ix.VertexUnits() // force the lazy weight block so it is counted
	adjActual := 8 * int64(len(g.Offsets()))
	adjActual += 4 * int64(len(g.Arcs()))
	arcActual := 4 * int64(len(ix.Tails()))
	arcActual += 4 * int64(len(ix.Rev()))
	if units, _, ok := ix.VertexUnits(); ok {
		arcActual += 8 * int64(len(units))
		arcActual += 8 * int64(len(ix.UnitOnes()))
		arcActual += int64(len(ix.DegreeBuckets()))
	}
	fmt.Printf("memory if materialized (actual):    adjacency %s + arc index %s = %s\n",
		fmtBytes(adjActual), fmtBytes(arcActual), fmtBytes(adjActual+arcActual))
	return nil
}

// fmtBytes renders a byte count at a human scale.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Command graphinfo inspects a graph family: size, degree statistics,
// structure flags, and the spectral quantities the paper's theorems are
// parameterized by (λ, λk feasibility, mixing-time bound).
//
// Examples:
//
//	graphinfo -graph regular:1000,16
//	graphinfo -graph gnp:500,0.05 -k 9
//	graphinfo -graph barbell:20,5 -diameter
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"div/internal/cli"
	"div/internal/graph"
	"div/internal/markov"
	"div/internal/spectral"
)

func main() {
	var (
		graphSpec = flag.String("graph", "complete:100", "graph spec (see divsim -help)")
		seed      = flag.Uint64("seed", 1, "seed for random families")
		k         = flag.Int("k", 5, "opinion count for the λk feasibility line")
		diameter  = flag.Bool("diameter", false, "also compute the exact diameter (O(n·m))")
	)
	flag.Parse()

	if err := run(*graphSpec, *seed, *k, *diameter); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run(graphSpec string, seed uint64, k int, diameter bool) error {
	g, err := cli.ParseGraph(graphSpec, seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph:      %v\n", g)
	deg := graph.Degrees(g)
	fmt.Printf("degrees:    min %d, max %d, mean %.2f\n", deg.Min, deg.Max, deg.Mean)
	fmt.Printf("stationary: π_min %.6f, π_max %.6f (paper wants π_min = Θ(1/n): n·π_min = %.2f)\n",
		deg.PiMin, deg.PiMax, float64(g.N())*deg.PiMin)
	fmt.Printf("connected:  %v   bipartite: %v   regular: %v\n",
		graph.IsConnected(g), graph.IsBipartite(g), g.IsRegular())
	if diameter {
		d, err := graph.Diameter(g)
		if err != nil {
			return err
		}
		fmt.Printf("diameter:   %d\n", d)
	}
	if !graph.IsConnected(g) {
		fmt.Println("λ:          undefined (disconnected)")
		return nil
	}
	lam, err := spectral.Lambda(g, spectral.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("λ:          %.6f\n", lam)
	if g.N() >= 2 {
		cut, lambda2, err := markov.CheegerSweep(g)
		if err != nil {
			return err
		}
		fmt.Printf("λ₂:         %.6f (signed)\n", lambda2)
		fmt.Printf("Φ (sweep):  %.6f with |S| = %d  [Cheeger: %.4f ≤ Φ ≤ %.4f]\n",
			cut.Phi, len(cut.Set), (1-lambda2)/2, math.Sqrt(2*(1-lambda2)))
	}
	fmt.Printf("λ·k:        %.4f at k=%d (Theorem 2 needs λk = o(1))\n", lam*float64(k), k)
	if lam > 0 && lam < 1 {
		fmt.Printf("max k:      %.0f for λk ≤ 0.5\n", math.Floor(0.5/lam))
		fmt.Printf("t_mix:      ≤ %.0f steps (ε = 1/4 bound)\n", spectral.MixingTimeBound(lam, deg.PiMin, 0.25))
	} else if lam >= 1 {
		fmt.Println("warning:    λ = 1 (bipartite or disconnected walk): the paper's aperiodicity assumption fails")
	}
	return nil
}

// Command divbench regenerates the repository's experiment suite
// E1–E20 (DESIGN.md §3): every theorem, lemma, closed-form probability
// and worked example in the paper gets a table (and, where meaningful,
// an ASCII figure), together with pass/fail checks comparing the
// measurement to the paper's claim.
//
// Usage:
//
//	divbench                 # run every experiment, quick sizes
//	divbench -full           # publication sizes (minutes)
//	divbench -exp E1,E9      # a subset
//	divbench -csv out/       # also write each table as CSV
//	divbench -seed 7         # change the master seed
//	divbench -engine naive   # force the reference stepping engine
//
// The exit status is nonzero if any check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"div/internal/core"
	"div/internal/exp"
	"div/internal/sim"
)

func main() {
	var (
		full    = flag.Bool("full", false, "publication sizes (slower)")
		expList = flag.String("exp", "all", "comma-separated experiment IDs (E1..E20) or 'all'")
		seed    = flag.Uint64("seed", 0, "master seed (0 = package default)")
		csvDir  = flag.String("csv", "", "directory to write per-table CSV files into")
		par     = flag.Int("parallelism", 0, "worker goroutines (0 = GOMAXPROCS)")
		engine  = flag.String("engine", "auto", "stepping engine for every run: naive, fast, or auto")
	)
	flag.Parse()
	if _, err := core.ParseEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "divbench:", err)
		os.Exit(2)
	}

	defs, err := selectExperiments(*expList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	params := exp.Params{Quick: !*full, Seed: *seed, Parallelism: *par, Engine: *engine}
	failures := 0
	for _, d := range defs {
		start := time.Now()
		rep, err := d.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.ID, err)
			failures++
			continue
		}
		fmt.Printf("\n######## %s — %s (%v)\n\n", rep.ID, rep.Name, time.Since(start).Round(time.Millisecond))
		for ti, tbl := range rep.Tables {
			if err := tbl.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			fmt.Println()
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_table%d.csv", rep.ID, ti+1))
				if err := writeCSV(path, tbl); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				}
			}
		}
		for _, fig := range rep.Figures {
			fmt.Println(fig)
		}
		for _, c := range rep.Checks {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
				failures++
			}
			fmt.Printf("  [%s] %s — %s\n", mark, c.Name, c.Detail)
		}
		for _, n := range rep.Notes {
			fmt.Printf("  note: %s\n", n)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "\n%d failure(s)\n", failures)
		os.Exit(1)
	}
}

func selectExperiments(list string) ([]exp.Def, error) {
	if strings.EqualFold(list, "all") || list == "" {
		return exp.All, nil
	}
	var defs []exp.Def
	for _, id := range strings.Split(list, ",") {
		d, err := exp.ByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		defs = append(defs, d)
	}
	return defs, nil
}

func writeCSV(path string, tbl *sim.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// Command divbench regenerates the repository's experiment suite
// E1–E20 (DESIGN.md §3): every theorem, lemma, closed-form probability
// and worked example in the paper gets a table (and, where meaningful,
// an ASCII figure), together with pass/fail checks comparing the
// measurement to the paper's claim.
//
// Usage:
//
//	divbench                 # run every experiment, quick sizes
//	divbench -full           # publication sizes (minutes)
//	divbench -exp E1,E9      # a subset
//	divbench -csv out/       # also write each table as CSV
//	divbench -seed 7         # change the master seed
//	divbench -engine naive   # force the reference stepping engine
//	divbench -serial         # pre-scheduler behavior: experiments in
//	                         # order, sweeps on the per-experiment
//	                         # worker path (same results, no overlap)
//	divbench -min-util 100   # fail if pool utilization < 100‰ (10%)
//	divbench -metrics        # print the aggregated metrics snapshot on exit
//	divbench -trace t.jsonl  # write a JSONL probe trace of every core run
//	divbench -serve :9090    # serve live /metrics (Prometheus text),
//	                         # /snapshot.json, and /progress while running
//	divbench -pprof :6060    # serve /debug/pprof/ + /debug/vars while running
//	divbench -bench-json BENCH_engine.json
//	                         # run only the engine perf matrix and write it
//	                         # as JSON (per-step ns, allocs, trials/sec per
//	                         # engine×process×graph-family; -full for the
//	                         # tracked sizes)
//	divbench -bench-json BENCH_engine.json -widths 1,2,4,0
//	                         # additionally measure the multicore scaling
//	                         # section: quick suite once per pool width
//	                         # (0 = all CPUs, GOMAXPROCS set to match) plus
//	                         # the CSR blocked-kernel block-size sweep
//	divbench -compare old.json new.json
//	                         # compare two -bench-json reports; exit 1 if
//	                         # any throughput/allocation metric regressed
//	                         # beyond -compare-threshold (default 10%)
//
// The exit status is nonzero if any check fails or any table/CSV
// write errors; failures are repeated in a consolidated FAILED block
// at the end so they cannot scroll away in -full output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"div/internal/core"
	"div/internal/exp"
	"div/internal/graph"
	"div/internal/obs"
	"div/internal/sched"
	"div/internal/sim"
)

func main() {
	var (
		full       = flag.Bool("full", false, "publication sizes (slower)")
		expList    = flag.String("exp", "all", "comma-separated experiment IDs (E1..E20) or 'all'")
		seed       = flag.Uint64("seed", 0, "master seed (0 = package default)")
		csvDir     = flag.String("csv", "", "directory to write per-table CSV files into")
		par        = flag.Int("parallelism", 0, "worker goroutines (0 = GOMAXPROCS)")
		engine     = flag.String("engine", "auto", "stepping engine for every run: naive, fast, or auto")
		serial     = flag.Bool("serial", false, "pre-scheduler behavior: experiments in order, every sweep through the per-experiment worker path (results are byte-identical either way)")
		block      = flag.Int("block", 0, "trials per block for the blocked stepping kernel (0 = core default); results are byte-identical across block sizes")
		minUtil    = flag.Int("min-util", 0, "fail the run if work-stealing pool utilization is below this many permille (scheduled mode only)")
		metrics    = flag.Bool("metrics", false, "print the aggregated metrics snapshot on exit")
		traceFile  = flag.String("trace", "", "write a JSONL probe trace of every core run to this file (line order across parallel trials is scheduler-dependent)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and the expvar metrics snapshot on this address during the run")
		benchJSON  = flag.String("bench-json", "", "run only the engine perf matrix and write it to this file as JSON")
		benchBigN  = flag.String("bench-bign", "", "run only the big-n section (implicit topology + compact slab vs materialized CSR at n=10⁶, plus 10⁷ with -full) and merge it into this JSON report file")
		benchBuild = flag.String("bench-build", "", "run only the graph-construction section (seeded parallel builders vs the frozen seed []Edge path, gnp + randomRegular at n=10⁵, plus 10⁶ and 10⁷ with -full) and merge it into this JSON report file")
		widthsCSV  = flag.String("widths", "", "with -bench-json: also measure the suite scaling curve at these pool widths (comma-separated; 0 = all online CPUs) plus the CSR blocked-kernel block sweep, recorded in the report's 'scaling' section")
		serveAddr  = flag.String("serve", "", "serve live /metrics (Prometheus text), /snapshot.json, and /progress on this address during the run (e.g. :9090)")
		compareOld = flag.String("compare", "", "compare this baseline -bench-json report against the report given as the positional argument; exit 1 on regressions")
		compareThr = flag.Float64("compare-threshold", 0.10, "tolerated relative degradation for -compare (0.10 = 10%)")
	)
	flag.Parse()
	if *compareOld != "" {
		os.Exit(runCompare(*compareOld, flag.Arg(0), *compareThr))
	}
	if _, err := core.ParseEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "divbench:", err)
		os.Exit(2)
	}
	widths, err := parseWidths(*widthsCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divbench:", err)
		os.Exit(2)
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, widths, exp.Params{Quick: !*full, Seed: *seed, Parallelism: *par, Engine: *engine, Block: *block}); err != nil {
			fmt.Fprintln(os.Stderr, "divbench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchBigN != "" {
		if err := runBenchBigN(*benchBigN, exp.Params{Quick: !*full, Seed: *seed, Parallelism: *par, Engine: *engine, Block: *block}); err != nil {
			fmt.Fprintln(os.Stderr, "divbench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchBuild != "" {
		if err := runBenchBuild(*benchBuild, exp.Params{Quick: !*full, Seed: *seed, Parallelism: *par, Engine: *engine, Block: *block}); err != nil {
			fmt.Fprintln(os.Stderr, "divbench:", err)
			os.Exit(1)
		}
		return
	}
	if len(widths) > 0 {
		fmt.Fprintln(os.Stderr, "divbench: -widths requires -bench-json (the scaling curve is part of the JSON report)")
		os.Exit(2)
	}

	defs, err := selectExperiments(*expList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *pprofAddr != "" {
		obs.Default.PublishExpvar("div_metrics")
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "divbench: pprof:", err)
			}
		}()
		fmt.Printf("pprof: serving /debug/pprof/ and /debug/vars on http://%s\n", *pprofAddr)
	}

	params := exp.Params{Quick: !*full, Seed: *seed, Parallelism: *par, Engine: *engine, Serial: *serial, Block: *block}
	prov := obs.CollectProvenance("divbench", params.Seed, *engine)
	var progress *obs.Progress
	if *serveAddr != "" {
		progress = obs.NewProgress(len(defs))
		obs.Serve(*serveAddr, obs.Default, &prov, progress, func(err error) {
			fmt.Fprintln(os.Stderr, "divbench: serve:", err)
		})
		fmt.Printf("serve: /metrics, /snapshot.json, /progress on http://%s\n", *serveAddr)
	}
	var makers []obs.ProbeMaker
	var tw *obs.TraceWriter
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "divbench:", err)
			os.Exit(2)
		}
		defer f.Close()
		tw = obs.NewTraceWriter(f)
		tw.WriteProvenance(prov)
		makers = append(makers, tw.Probe)
	}
	if *metrics || *serveAddr != "" {
		// -serve attaches the metrics probe too, so the live /metrics page
		// carries the div_* engine counters, not just harness telemetry.
		makers = append(makers, obs.ConstMaker(obs.MetricsProbe(obs.Default)))
	}
	params.Probe = obs.MultiMaker(makers...)

	// failed collects every failing check, experiment error, and output
	// error for the consolidated summary block: a single FAIL in -full
	// output scrolls away long before the run ends, and Render/CSV
	// failures must reach the exit status, not just stderr.
	var failed []string

	// Scheduled mode runs every non-timing experiment concurrently —
	// their sweeps interleave trials on the shared work-stealing pool —
	// while output streams strictly in definition order. Timing
	// experiments (wall-clock tables) and -serial mode run one at a
	// time at print time.
	type outcome struct {
		rep     *exp.Report
		err     error
		elapsed time.Duration
	}
	runDef := func(d exp.Def) outcome {
		if progress != nil {
			progress.Start(d.ID)
			defer progress.Done(d.ID)
		}
		sp := obs.Default.Span(obs.SpanSuite + "_" + obs.SpanExperiment)
		start := time.Now()
		rep, err := d.Run(params)
		sp.End()
		return outcome{rep: rep, err: err, elapsed: time.Since(start)}
	}
	results := make([]chan outcome, len(defs))
	pool := sched.Shared(*par)
	busy0 := pool.BusyNanos()
	suiteSpan := obs.Default.Span(obs.SpanSuite)
	suiteStart := time.Now()
	if !*serial {
		for i, d := range defs {
			if d.Timing {
				continue
			}
			results[i] = make(chan outcome, 1)
			go func(ch chan<- outcome, d exp.Def) { ch <- runDef(d) }(results[i], d)
		}
	}
	for i, d := range defs {
		var o outcome
		if results[i] != nil {
			o = <-results[i]
		} else {
			o = runDef(d)
		}
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.ID, o.err)
			failed = append(failed, fmt.Sprintf("%s: experiment error: %v", d.ID, o.err))
			continue
		}
		rep := o.rep
		fmt.Printf("\n######## %s — %s (%v)\n\n", rep.ID, rep.Name, o.elapsed.Round(time.Millisecond))
		for ti, tbl := range rep.Tables {
			if err := tbl.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = append(failed, fmt.Sprintf("%s: table %d render: %v", rep.ID, ti+1, err))
			}
			fmt.Println()
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_table%d.csv", rep.ID, ti+1))
				if err := writeCSV(path, tbl); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
					failed = append(failed, fmt.Sprintf("%s: csv %s: %v", rep.ID, path, err))
				}
			}
		}
		for _, fig := range rep.Figures {
			fmt.Println(fig)
		}
		for _, c := range rep.Checks {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
				failed = append(failed, fmt.Sprintf("%s: %s — %s", rep.ID, c.Name, c.Detail))
			}
			fmt.Printf("  [%s] %s — %s\n", mark, c.Name, c.Detail)
		}
		for _, n := range rep.Notes {
			fmt.Printf("  note: %s\n", n)
		}
	}
	suiteWall := time.Since(suiteStart)
	suiteSpan.End()

	fmt.Printf("\nsuite: %d experiment(s) in %v", len(defs), suiteWall.Round(time.Millisecond))
	if !*serial {
		util := 0.0
		if suiteWall > 0 {
			util = float64(pool.BusyNanos()-busy0) / (float64(pool.Width()) * float64(suiteWall.Nanoseconds()))
		}
		fmt.Printf(", pool width %d, utilization %.1f%%", pool.Width(), 100*util)
		if *minUtil > 0 && int(1000*util) < *minUtil {
			failed = append(failed, fmt.Sprintf("pool utilization %d‰ below floor %d‰", int(1000*util), *minUtil))
		}
	}
	hits, misses, evictions, bytes := graph.SharedCache().Stats()
	fmt.Printf("\ngraph cache: %d hits, %d misses, %d evictions, %.1f MB resident\n", hits, misses, evictions, float64(bytes)/(1<<20))
	fmt.Printf("blocked kernel: %d trials, %d rng stream refills\n",
		obs.Default.Counter("core_block_trials_total").Value(),
		obs.Default.Counter("rng_stream_refills_total").Value())
	if tw != nil {
		if err := tw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "divbench: trace:", err)
			failed = append(failed, fmt.Sprintf("trace: %v", err))
		} else {
			fmt.Printf("\ntrace: %d events -> %s\n", tw.Events(), *traceFile)
		}
	}
	if *metrics {
		fmt.Println("\nmetrics:")
		if err := obs.Default.Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "divbench:", err)
		}
		if peak, ok := obs.ReadPeakRSS(); ok {
			fmt.Printf("memory: peak RSS %.1f MB, total alloc %.1f MB\n",
				float64(peak)/(1<<20), float64(obs.HeapTotalAlloc())/(1<<20))
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "\nFAILED: %d check(s)\n", len(failed))
		for _, f := range failed {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
}

// runBenchJSON runs the engine perf matrix (plus, when widths are
// given, the multicore scaling section) and writes BENCH_engine.json,
// echoing the headline numbers to stdout.
func runBenchJSON(path string, widths []int, params exp.Params) error {
	start := time.Now()
	rep, err := exp.BenchEngine(params)
	if err != nil {
		return err
	}
	if len(widths) > 0 {
		scaling, err := exp.BenchScalingRun(params, widths)
		if err != nil {
			return err
		}
		rep.Scaling = scaling
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("bench: %d rows -> %s (%v)\n", len(rep.Rows), path, time.Since(start).Round(time.Millisecond))
	fmt.Printf("bench: E2 point n=%d: %.1f trials/sec reused, %.1f fresh, %.1f ns/step (baseline n=%d: %.1f trials/sec)\n",
		rep.E2.N, rep.E2.TrialsPerSecReused, rep.E2.TrialsPerSecFresh, rep.E2.NsPerStepReused,
		rep.Baseline.N, rep.Baseline.TrialsPerSec)
	fmt.Printf("bench: E2 blocked kernel: best block=%d at %.1f trials/sec (%.1f ns/step)\n",
		rep.E2.BestBlock, rep.E2.BestBlockTrialsPerSec, rep.E2.BestBlockNsPerStep)
	if rep.E2.SpeedupVsBaseline > 0 {
		fmt.Printf("bench: E2 speedup vs pre-blocked-kernel baseline: %.2fx\n", rep.E2.SpeedupVsBaseline)
	}
	if rep.Scaling != nil {
		fmt.Printf("bench: scaling: %d CPU(s) online\n", rep.Scaling.CPUsOnline)
		for _, pt := range rep.Scaling.Widths {
			fmt.Printf("bench: scaling width %d: %.2fs (%.2fx vs width 1), util %.1f%%, %d tasks, %d steals, %d parks\n",
				pt.Width, pt.Seconds, pt.SpeedupVsWidth1, 100*pt.PoolUtilization, pt.Tasks, pt.Steals, pt.Parks)
		}
		for _, win := range rep.Scaling.BlockedWins {
			fmt.Printf("bench: scaling: blocked kernel beats B=1 on %s\n", win)
		}
	}
	return nil
}

// runBenchBigN measures the big-n section and merges it into the JSON
// report at path, preserving any sections an earlier -bench-json run
// wrote there. It fails when the acceptance bounds are violated: the
// implicit/compact arm must be byte-identical to the materialized
// int32 arm, and its peak RSS at n=10⁶ must stay within 25% of the
// materialized baseline's.
func runBenchBigN(path string, params exp.Params) error {
	start := time.Now()
	sec, err := exp.BenchBigNRun(params)
	if err != nil {
		return err
	}
	rep := &exp.BenchReport{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, rep); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else {
		rep.Quick = params.Quick
		rep.Note = "bign section generated by divbench -bench-bign; run -bench-json for the engine matrix"
	}
	rep.BigN = sec
	prov := obs.CollectProvenance("divbench", params.Seed, params.Engine).WithMemStats()
	rep.Provenance = &prov
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, arm := range sec.Arms {
		fmt.Printf("bench: bign %-20s n=%-8d %6.1f ns/step, build %6.3fs, peak RSS %7.1f MB, alloc %7.1f MB, two-adjacent %.0f%%\n",
			arm.Label, arm.N, arm.NsPerStep, arm.BuildSeconds,
			float64(arm.PeakRSSBytes)/(1<<20), float64(arm.AllocBytes)/(1<<20), 100*arm.TwoAdjacentFrac)
	}
	if d := sec.Dissenter; d != nil {
		for _, arm := range d.Arms {
			fmt.Printf("bench: bign dissenter %-12s %d trial(s): %.3fs, %d steps, consensus %.0f%%, tail %.3fs/%d steps (to-90%% %.3fs/%d)\n",
				arm.Label, arm.Trials, arm.Seconds, arm.Steps, 100*arm.ConsensusFrac,
				arm.Phase.TailSeconds, arm.Phase.TailSteps, arm.Phase.SecondsTo90, arm.Phase.StepsTo90)
		}
		bound := ""
		if d.NaiveCapped {
			bound = " (naive step-capped: lower bound)"
		}
		fmt.Printf("bench: bign dissenter speedup auto/sparse vs naive = %.1fx%s (bound ≥ 2), sparse peak %.2f MB / CSR estimate %.1f MB = %.4f (bound ≤ 0.05)\n",
			d.Speedup, bound, float64(d.SparsePeakBytes)/(1<<20), float64(d.CSREstimateBytes)/(1<<20), d.SparsePeakRatio)
	}
	if eq := sec.SmallEq; eq != nil {
		fmt.Printf("bench: bign small-eq n=%d, %d trials/arm: winner χ²=%.2f (df %d, crit %.2f), steps KS=%.4f (crit %.4f), mean to-90%%/tail steps %.0f/%.0f -> pass=%v\n",
			eq.N, eq.Trials, eq.Chi2, eq.Chi2Df, eq.Chi2Crit, eq.KSSteps, eq.KSCrit,
			eq.MeanStepsTo90, eq.MeanTailSteps, eq.Pass)
	}
	fmt.Printf("bench: bign peak-RSS ratio implicit/materialized = %.3f (bound 0.25), results identical = %v -> %s (%v)\n",
		sec.RSSRatio, sec.Identical, path, time.Since(start).Round(time.Millisecond))
	if !sec.Identical {
		return fmt.Errorf("bign: implicit/compact results diverged from the materialized int32 arm")
	}
	if sec.RSSRatio > 0.25 {
		return fmt.Errorf("bign: peak RSS ratio %.3f exceeds the 0.25 bound", sec.RSSRatio)
	}
	if d := sec.Dissenter; d != nil {
		for _, arm := range d.Arms {
			if arm.Engine == core.EngineAuto.String() && arm.ConsensusFrac < 1 {
				return fmt.Errorf("bign dissenter: auto/sparse arm reached consensus in only %.0f%% of trials", 100*arm.ConsensusFrac)
			}
		}
		if d.Speedup < 2 {
			return fmt.Errorf("bign dissenter: speedup %.2fx below the 2x bound", d.Speedup)
		}
		if d.SparsePeakRatio > 0.05 {
			return fmt.Errorf("bign dissenter: sparse peak ratio %.4f exceeds the 0.05 bound", d.SparsePeakRatio)
		}
	}
	if eq := sec.SmallEq; eq != nil && !eq.Pass {
		return fmt.Errorf("bign small-eq: sparse vs naive distribution check failed (χ²=%.2f crit %.2f, KS=%.4f crit %.4f)",
			eq.Chi2, eq.Chi2Crit, eq.KSSteps, eq.KSCrit)
	}
	return nil
}

// runBenchBuild measures the graph-construction section and merges it
// into the JSON report at path, preserving the other sections. It
// fails when the acceptance bounds are violated: every point's
// parallel build must be byte-identical to its serial build; in full
// mode the n=10⁶ G(n,p) serial build must be ≥ 1.5× the frozen seed
// []Edge baseline, and the n=10⁷ G(n,p) build peak RSS must stay
// within 2× the final CSR size.
func runBenchBuild(path string, params exp.Params) error {
	start := time.Now()
	sec, err := exp.BenchBuildRun(params)
	if err != nil {
		return err
	}
	rep := &exp.BenchReport{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, rep); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else {
		rep.Quick = params.Quick
		rep.Note = "build section generated by divbench -bench-build; run -bench-json for the engine matrix"
	}
	rep.Build = sec
	prov := obs.CollectProvenance("divbench", params.Seed, params.Engine).WithMemStats()
	rep.Provenance = &prov
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	var failures []string
	for _, pt := range sec.Points {
		base := "baseline skipped"
		if pt.BaselineSeconds > 0 {
			base = fmt.Sprintf("baseline %6.2fs (%.2fx)", pt.BaselineSeconds, pt.SpeedupVsBaseline)
		}
		fmt.Printf("bench: build %-14s n=%-9d m=%-9d serial %6.2fs (%5.2fM edges/s), %s, parallel w=%d %6.2fs, peak RSS %7.1f MB / CSR %7.1f MB = %.2f, identical=%v\n",
			pt.Family, pt.N, pt.Edges, pt.SerialSeconds, pt.SerialEdgesPerSec/1e6, base,
			pt.Workers, pt.ParallelSeconds,
			float64(pt.PeakRSSBytes)/(1<<20), float64(pt.CSRBytes)/(1<<20), pt.RSSOverCSR, pt.Identical)
		fmt.Printf("bench: build %-14s phases: sample %v, count %v, offsets %v, scatter %v, sort %v\n",
			pt.Family,
			time.Duration(pt.SampleNanos), time.Duration(pt.CountNanos), time.Duration(pt.OffsetsNanos),
			time.Duration(pt.ScatterNanos), time.Duration(pt.SortNanos))
		if !pt.Identical {
			failures = append(failures, fmt.Sprintf("build %s n=%d: parallel build diverged from serial", pt.Family, pt.N))
		}
		if !params.Quick && pt.Family == "gnp" {
			if pt.N == 1_000_000 && pt.SpeedupVsBaseline < 1.5 {
				failures = append(failures, fmt.Sprintf("build gnp n=10⁶: speedup %.2fx below the 1.5x bound", pt.SpeedupVsBaseline))
			}
			if pt.N == 10_000_000 && pt.RSSOverCSR > 2 {
				failures = append(failures, fmt.Sprintf("build gnp n=10⁷: peak RSS %.2fx CSR exceeds the 2x bound", pt.RSSOverCSR))
			}
		}
	}
	fmt.Printf("bench: build section -> %s (%v)\n", path, time.Since(start).Round(time.Millisecond))
	if len(failures) > 0 {
		return fmt.Errorf("build gates failed: %s", strings.Join(failures, "; "))
	}
	return nil
}

// runCompare is the bench regression gate: it loads two -bench-json
// reports and returns the process exit code — 0 when the new report is
// within the noise threshold of the old, 1 when any metric regressed
// beyond it, 2 on usage or I/O problems.
func runCompare(oldPath, newPath string, threshold float64) int {
	if newPath == "" {
		fmt.Fprintln(os.Stderr, "divbench: -compare needs the new report as a positional argument: divbench -compare old.json new.json")
		return 2
	}
	load := func(path string) (*exp.BenchReport, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep exp.BenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &rep, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divbench:", err)
		return 2
	}
	newRep, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divbench:", err)
		return 2
	}
	opts := exp.CompareOptions{Threshold: threshold}
	res := exp.CompareReports(oldRep, newRep, opts)
	if err := res.WriteText(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "divbench:", err)
		return 2
	}
	if res.Regressions > 0 {
		return 1
	}
	return 0
}

// parseWidths parses the -widths flag: a comma-separated list of pool
// widths, where 0 means all online CPUs.
func parseWidths(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -widths entry %q (want a non-negative integer)", part)
		}
		out = append(out, w)
	}
	return out, nil
}

func selectExperiments(list string) ([]exp.Def, error) {
	if strings.EqualFold(list, "all") || list == "" {
		return exp.All, nil
	}
	var defs []exp.Def
	for _, id := range strings.Split(list, ",") {
		d, err := exp.ByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		defs = append(defs, d)
	}
	return defs, nil
}

func writeCSV(path string, tbl *sim.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// Command divsim runs a single voting process (or a small batch) and
// reports the outcome: the interactive explorer for the library.
//
// Examples:
//
//	divsim -graph complete:200 -k 5
//	divsim -graph regular:500,16 -k 9 -process edge -trials 100
//	divsim -graph path:30 -k 3 -trace
//	divsim -graph complete:150 -rule median -k 9
//	divsim -graph complete:120 -rule loadbalance -process edge -k 16
package main

import (
	"flag"
	"fmt"
	"os"

	"div/internal/cli"
	"div/internal/core"
	"div/internal/rng"
	"div/internal/stats"
	"div/internal/textplot"
)

func main() {
	var (
		graphSpec = flag.String("graph", "complete:100", "graph spec (complete:N, regular:N,D, gnp:N,P, ws:N,D,B, ba:N,M, path:N, cycle:N, star:N, torus:R,C, hypercube:D, …)")
		k         = flag.Int("k", 5, "opinions are drawn uniformly from {1..k}")
		procName  = flag.String("process", "vertex", "scheduler: vertex or edge")
		ruleName  = flag.String("rule", "div", "update rule: div, pull, median, bestofK, loadbalance")
		seed      = flag.Uint64("seed", 1, "random seed")
		trials    = flag.Int("trials", 1, "number of independent runs")
		engName   = flag.String("engine", "auto", "stepping engine: naive, fast, or auto")
		trace     = flag.Bool("trace", false, "print the opinion-support stage trace (first run only)")
		series    = flag.Bool("series", false, "print range/weight trajectory sparklines (first run only)")
		maxSteps  = flag.Int64("maxsteps", 0, "step cap (0 = 200·n²)")
	)
	flag.Parse()

	if err := run(*graphSpec, *k, *procName, *ruleName, *engName, *seed, *trials, *trace, *series, *maxSteps); err != nil {
		fmt.Fprintln(os.Stderr, "divsim:", err)
		os.Exit(1)
	}
}

func run(graphSpec string, k int, procName, ruleName, engName string, seed uint64, trials int, trace, series bool, maxSteps int64) error {
	g, err := cli.ParseGraph(graphSpec, rng.DeriveSeed(seed, 0x6a))
	if err != nil {
		return err
	}
	proc, err := cli.ParseProcess(procName)
	if err != nil {
		return err
	}
	rule, err := cli.ParseRule(ruleName)
	if err != nil {
		return err
	}
	engine, err := core.ParseEngine(engName)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %v  process: %v  rule: %s  engine: %v  k: %d  seed: %d\n", g, proc, rule.Name(), engine, k, seed)

	winners := stats.NewIntHistogram()
	var stepsAll, reduceAll []float64
	for t := 0; t < trials; t++ {
		trialSeed := rng.DeriveSeed(seed, uint64(t))
		r := rng.New(trialSeed)
		init := core.UniformOpinions(g.N(), k, r)
		var rec *core.Recorder
		cfg := core.Config{
			Graph:        g,
			Initial:      init,
			Process:      proc,
			Rule:         rule,
			Engine:       engine,
			Seed:         rng.SplitMix64(trialSeed),
			MaxSteps:     maxSteps,
			TraceSupport: trace && t == 0,
		}
		if series && t == 0 {
			rec = &core.Recorder{}
			cfg.Observer = rec.Observe
			cfg.ObserveEvery = int64(g.N())
		}
		res, err := core.Run(cfg)
		if err != nil {
			return err
		}
		if rec != nil && rec.Len() > 1 {
			width := 72
			fmt.Printf("range trajectory (one sample per %d steps):\n  %s\n",
				g.N(), textplot.Sparkline(downsample(rec.RangeFloat(), width)))
			fmt.Printf("weight S(t) trajectory:\n  %s\n",
				textplot.Sparkline(downsample(rec.SumFloat(), width)))
		}
		if t == 0 {
			fmt.Printf("initial: simple average %.4f, degree-weighted average %.4f\n",
				res.InitialAverage, res.InitialWeightedAverage)
			if trace {
				for _, st := range res.Stages {
					fmt.Printf("  step %10d: support %v\n", st.FromStep, st.Opinions)
				}
			}
		}
		if res.Consensus {
			winners.Add(res.Winner)
		}
		stepsAll = append(stepsAll, float64(res.Steps))
		if res.TwoAdjacentStep >= 0 {
			reduceAll = append(reduceAll, float64(res.TwoAdjacentStep))
		}
		if trials == 1 {
			if res.Consensus {
				fmt.Printf("consensus on %d after %d steps (two adjacent at step %d)\n",
					res.Winner, res.Steps, res.TwoAdjacentStep)
			} else {
				fmt.Printf("NO consensus after %d steps; final range [%d,%d]\n",
					res.Steps, res.FinalMin, res.FinalMax)
			}
		}
	}
	if trials > 1 {
		fmt.Printf("winners over %d trials: %s\n", trials, winners)
		fmt.Printf("mean steps to consensus: %.0f; mean steps to two adjacent: %.0f\n",
			stats.Mean(stepsAll), stats.Mean(reduceAll))
	}
	return nil
}

// downsample reduces xs to at most width points by striding.
func downsample(xs []float64, width int) []float64 {
	if len(xs) <= width {
		return xs
	}
	out := make([]float64, width)
	for i := range out {
		out[i] = xs[i*len(xs)/width]
	}
	return out
}

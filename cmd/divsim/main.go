// Command divsim runs a single voting process (or a small batch) and
// reports the outcome: the interactive explorer for the library.
//
// Examples:
//
//	divsim -graph complete:200 -k 5
//	divsim -graph regular:500,16 -k 9 -process edge -trials 100
//	divsim -graph path:30 -k 3 -trace-stages
//	divsim -graph complete:150 -rule median -k 9
//	divsim -graph complete:120 -rule loadbalance -process edge -k 16
//	divsim -graph regular:10000,8 -dissenters 20 -trace run.jsonl -metrics
//	divsim -graph regular:2000,8 -trials 50 -pprof localhost:6060
//	divsim -graph regular:2000,8 -trials 50 -serve :9090
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	_ "net/http/pprof"
	"os"

	"div/internal/cli"
	"div/internal/core"
	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
	"div/internal/stats"
	"div/internal/textplot"
)

func main() {
	var (
		graphSpec  = flag.String("graph", "complete:100", "graph spec (complete:N, regular:N,D, gnp:N,P, ws:N,D,B, ba:N,M, path:N, cycle:N, star:N, torus:R,C, hypercube:D, …)")
		k          = flag.Int("k", 5, "opinions are drawn uniformly from {1..k}")
		dissenters = flag.Int("dissenters", 0, "two-opinion split initial profile: N vertices at 2, the rest at 1 (overrides -k; the E20 final-stage workload)")
		procName   = flag.String("process", "vertex", "scheduler: vertex or edge")
		ruleName   = flag.String("rule", "div", "update rule: div, pull, median, bestofK, loadbalance")
		seed       = flag.Uint64("seed", 1, "random seed")
		trials     = flag.Int("trials", 1, "number of independent runs")
		engName    = flag.String("engine", "auto", "stepping engine: naive, fast, or auto; on -implicit/-compact runs fast and auto retire to the O(discordance)-memory sparse endgame engine (distribution-equivalent to naive; rejected on implicit complete graphs)")
		trace      = flag.Bool("trace-stages", false, "print the opinion-support stage trace (first run only)")
		series     = flag.Bool("series", false, "print range/weight/discordance trajectory sparklines (first run only)")
		maxSteps   = flag.Int64("maxsteps", 0, "step cap (0 = 200·n²)")
		block      = flag.Int("block", 0, "run trials through the blocked SoA stepping kernel, this many per block (0 = sequential runs); incompatible with -trace-stages and -series")
		implicit   = flag.Bool("implicit", false, "back the run with the O(1)-state implicit topology for the spec (complete, cycle, path, torus, hypercube, circulant, hashedregular) instead of a materialized CSR graph; implies -block 1")
		compact    = flag.Bool("compact", false, "store opinions in the compact byte slab (requires the initial opinion window to span ≤ 256 values); implies -block 1")
		traceFile  = flag.String("trace", "", "write a JSONL probe trace of every run to this file")
		metrics    = flag.Bool("metrics", false, "print the aggregated metrics snapshot on exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and the expvar metrics snapshot on this address (e.g. localhost:6060)")
		serveAddr  = flag.String("serve", "", "serve live /metrics (Prometheus text), /snapshot.json, and /progress on this address during the run (e.g. :9090)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		servePprof(*pprofAddr)
	}
	prov := obs.CollectProvenance("divsim", *seed, *engName)
	var progress *obs.Progress
	if *serveAddr != "" {
		progress = obs.NewProgress(*trials)
		obs.Serve(*serveAddr, obs.Default, &prov, progress, func(err error) {
			fmt.Fprintln(os.Stderr, "divsim: serve:", err)
		})
		fmt.Printf("serve: /metrics, /snapshot.json, /progress on http://%s\n", *serveAddr)
	}
	if err := run(*graphSpec, *k, *dissenters, *procName, *ruleName, *engName, *seed, *trials,
		*trace, *series, *maxSteps, *block, *implicit, *compact, *traceFile, *metrics, prov, progress); err != nil {
		fmt.Fprintln(os.Stderr, "divsim:", err)
		os.Exit(1)
	}
}

// servePprof publishes the metrics registry as the expvar "div_metrics"
// variable and serves /debug/pprof/ and /debug/vars in the background.
func servePprof(addr string) {
	obs.Default.PublishExpvar("div_metrics")
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "divsim: pprof:", err)
		}
	}()
	fmt.Printf("pprof: serving /debug/pprof/ and /debug/vars on http://%s\n", addr)
}

func run(graphSpec string, k, dissenters int, procName, ruleName, engName string, seed uint64, trials int,
	trace, series bool, maxSteps int64, block int, implicit, compact bool, traceFile string, metrics bool,
	prov obs.Provenance, progress *obs.Progress) error {
	// The sequential engines step a materialized CSR graph; the implicit
	// backends and the compact byte slab live in the blocked kernel, so
	// either flag routes the run through it.
	if (implicit || compact) && block == 0 {
		block = 1
	}
	var g *graph.Graph
	var topo graph.Topology
	var err error
	if implicit {
		topo, err = cli.ParseTopology(graphSpec, rng.DeriveSeed(seed, 0x6a))
	} else {
		g, err = cli.ParseGraph(graphSpec, rng.DeriveSeed(seed, 0x6a))
		topo = g
	}
	if err != nil {
		return err
	}
	proc, err := cli.ParseProcess(procName)
	if err != nil {
		return err
	}
	rule, err := cli.ParseRule(ruleName)
	if err != nil {
		return err
	}
	engine, err := core.ParseEngine(engName)
	if err != nil {
		return err
	}
	if dissenters > 0 {
		k = 2
	}
	desc := fmt.Sprintf("%v", topo)
	if implicit {
		desc = topo.Name() + " (implicit)"
	}
	if compact {
		desc += " [compact]"
	}
	fmt.Printf("graph: %s  process: %v  rule: %s  engine: %v  k: %d  seed: %d\n", desc, proc, rule.Name(), engine, k, seed)

	// Probe sinks: a JSONL trace writer and/or the metrics registry.
	// Trials run serially, so a seeded trace is byte-identical across
	// invocations.
	var tw *obs.TraceWriter
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tw = obs.NewTraceWriter(f)
		tw.WriteProvenance(prov)
	}
	var metricsProbe obs.Probe
	if metrics || progress != nil {
		// -serve implies the metrics probe, so the live /metrics page
		// carries the div_* engine counters, not just harness telemetry.
		metricsProbe = obs.MetricsProbe(obs.Default)
	}

	winners := stats.NewIntHistogram()
	var stepsAll, reduceAll []float64

	if block > 0 {
		// Blocked kernel path: all trials step together in SoA blocks,
		// each drawing from its own counter-based stream keyed by
		// (seed, trial) — results are independent of the block size.
		if trace || series {
			return fmt.Errorf("-block (and -implicit/-compact, which imply it) is incompatible with -trace-stages and -series (the blocked kernel has no observer hooks)")
		}
		cfg := core.BlockConfig{
			Graph:    g,
			Topology: topo,
			Compact:  compact,
			Process:  proc,
			Rule:     rule,
			Engine:   engine,
			Seed:     seed,
			MaxSteps: maxSteps,
			Block:    block,
			Init: func(trial int, dst []int, r *rand.Rand) error {
				if dissenters > 0 {
					_, err := core.TwoOpinionSplitInto(dst, dissenters, r)
					return err
				}
				core.UniformOpinionsInto(dst, k, r)
				return nil
			},
		}
		if tw != nil || metricsProbe != nil {
			cfg.Probe = func(trial int, probeSeed uint64) obs.Probe {
				var probes []obs.Probe
				if tw != nil {
					probes = append(probes, tw.Probe(trial, probeSeed))
				}
				if metricsProbe != nil {
					probes = append(probes, metricsProbe)
				}
				return obs.Multi(probes...)
			}
		}
		out := make([]core.Result, trials)
		if err := core.RunBlock(cfg, 0, trials, out); err != nil {
			return err
		}
		if progress != nil {
			for t := 0; t < trials; t++ {
				progress.Done(fmt.Sprintf("trial %d", t))
			}
		}
		for t, res := range out {
			if t == 0 {
				fmt.Printf("initial: simple average %.4f, degree-weighted average %.4f\n",
					res.InitialAverage, res.InitialWeightedAverage)
			}
			if res.Consensus {
				winners.Add(res.Winner)
			}
			stepsAll = append(stepsAll, float64(res.Steps))
			if res.TwoAdjacentStep >= 0 {
				reduceAll = append(reduceAll, float64(res.TwoAdjacentStep))
			}
			if trials == 1 {
				if res.Consensus {
					fmt.Printf("consensus on %d after %d steps (two adjacent at step %d)\n",
						res.Winner, res.Steps, res.TwoAdjacentStep)
				} else {
					fmt.Printf("NO consensus after %d steps; final range [%d,%d]\n",
						res.Steps, res.FinalMin, res.FinalMax)
				}
			}
		}
		return finish(winners, stepsAll, reduceAll, trials, tw, traceFile, metrics)
	}

	for t := 0; t < trials; t++ {
		if progress != nil {
			progress.Start(fmt.Sprintf("trial %d", t))
		}
		trialSeed := rng.DeriveSeed(seed, uint64(t))
		r := rng.New(trialSeed)
		var init []int
		if dissenters > 0 {
			init, err = core.TwoOpinionSplit(g.N(), dissenters, r)
			if err != nil {
				return err
			}
		} else {
			init = core.UniformOpinions(g.N(), k, r)
		}
		var rec interface {
			core.SampleSink
			RangeFloat() []float64
			SumFloat() []float64
			DiscordanceFloat() []float64
		}
		cfg := core.Config{
			Graph:        g,
			Initial:      init,
			Process:      proc,
			Rule:         rule,
			Engine:       engine,
			Seed:         rng.SplitMix64(trialSeed),
			MaxSteps:     maxSteps,
			TraceSupport: trace && t == 0,
		}
		var probes []obs.Probe
		if tw != nil {
			probes = append(probes, tw.Probe(t, cfg.Seed))
		}
		if metricsProbe != nil {
			probes = append(probes, metricsProbe)
		}
		cfg.Probe = obs.Multi(probes...)
		if series && t == 0 {
			// Above the sample budget (or with an open-ended horizon)
			// this yields a fixed-memory StreamRecorder instead of the
			// exact append-per-sample Recorder.
			auto := core.NewAutoRecorder(maxSteps, int64(g.N()), 0)
			rec = auto.(interface {
				core.SampleSink
				RangeFloat() []float64
				SumFloat() []float64
				DiscordanceFloat() []float64
			})
			cfg.Observer = rec.Observe
			cfg.ObserveEvery = int64(g.N())
		}
		res, err := core.Run(cfg)
		if err != nil {
			return err
		}
		if rec != nil && rec.Len() > 1 {
			width := 72
			per := int64(g.N())
			if sr, ok := rec.(*core.StreamRecorder); ok {
				per *= sr.Stride()
			}
			fmt.Printf("range trajectory (one sample per %d steps):\n  %s\n",
				per, textplot.Sparkline(downsample(rec.RangeFloat(), width)))
			fmt.Printf("weight S(t) trajectory:\n  %s\n",
				textplot.Sparkline(downsample(rec.SumFloat(), width)))
			fmt.Printf("discordant-edge trajectory:\n  %s\n",
				textplot.Sparkline(downsample(rec.DiscordanceFloat(), width)))
		}
		if t == 0 {
			fmt.Printf("initial: simple average %.4f, degree-weighted average %.4f\n",
				res.InitialAverage, res.InitialWeightedAverage)
			if trace {
				for _, st := range res.Stages {
					fmt.Printf("  step %10d: support %v\n", st.FromStep, st.Opinions)
				}
			}
		}
		if res.Consensus {
			winners.Add(res.Winner)
		}
		stepsAll = append(stepsAll, float64(res.Steps))
		if res.TwoAdjacentStep >= 0 {
			reduceAll = append(reduceAll, float64(res.TwoAdjacentStep))
		}
		if trials == 1 {
			if res.Consensus {
				fmt.Printf("consensus on %d after %d steps (two adjacent at step %d)\n",
					res.Winner, res.Steps, res.TwoAdjacentStep)
			} else {
				fmt.Printf("NO consensus after %d steps; final range [%d,%d]\n",
					res.Steps, res.FinalMin, res.FinalMax)
			}
		}
		if progress != nil {
			progress.Done(fmt.Sprintf("trial %d", t))
		}
	}
	return finish(winners, stepsAll, reduceAll, trials, tw, traceFile, metrics)
}

// finish prints the batch summary and flushes the probe sinks — the
// common tail of the sequential and blocked trial paths.
func finish(winners *stats.IntHistogram, stepsAll, reduceAll []float64, trials int, tw *obs.TraceWriter, traceFile string, metrics bool) error {
	if trials > 1 {
		fmt.Printf("winners over %d trials: %s\n", trials, winners)
		fmt.Printf("mean steps to consensus: %.0f; mean steps to two adjacent: %.0f\n",
			stats.Mean(stepsAll), stats.Mean(reduceAll))
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("trace: %d events -> %s\n", tw.Events(), traceFile)
	}
	if metrics {
		fmt.Println("metrics:")
		if err := obs.Default.Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
		if peak, ok := obs.ReadPeakRSS(); ok {
			fmt.Printf("memory: peak RSS %.1f MB, total alloc %.1f MB\n",
				float64(peak)/(1<<20), float64(obs.HeapTotalAlloc())/(1<<20))
		}
	}
	return nil
}

// downsample reduces xs to at most width points by striding.
func downsample(xs []float64, width int) []float64 {
	if len(xs) <= width {
		return xs
	}
	out := make([]float64, width)
	for i := range out {
		out[i] = xs[i*len(xs)/width]
	}
	return out
}

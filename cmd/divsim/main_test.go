package main

import (
	"strings"
	"testing"

	"div/internal/obs"
)

// TestRunEngineImplicitCompact pins the CLI contract for combining
// -engine with -implicit/-compact: fast and auto route through the
// blocked kernel's sparse endgame hand-off (these used to run naive
// silently, then error), and the one genuinely unsupported combination
// — the fast engine on an implicit complete graph — surfaces the core
// error instead of degrading.
func TestRunEngineImplicitCompact(t *testing.T) {
	base := func(spec, eng string, implicit, compact bool) error {
		return run(spec, 3, 0, "vertex", "div", eng, 7, 2,
			false, false, 2_000_000, 0, implicit, compact, "", false,
			obs.Provenance{}, nil)
	}
	cases := []struct {
		name              string
		spec              string
		eng               string
		implicit, compact bool
		wantErr           string
	}{
		{"fast on implicit circulant", "circulant:600,1+2", "fast", true, false, ""},
		{"fast on implicit compact", "circulant:600,1+2", "fast", true, true, ""},
		{"fast on compact csr", "cycle:600", "fast", false, true, ""},
		{"auto on implicit hashedregular", "hashedregular:512,4", "auto", true, false, ""},
		{"fast on implicit complete", "complete:64", "fast", true, false, "sparse"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := base(tc.spec, tc.eng, tc.implicit, tc.compact)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("run() failed: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run() error = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

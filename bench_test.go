package div_test

import (
	"testing"

	"div"
	"div/internal/core"
	"div/internal/exp"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/spectral"
)

// ---------------------------------------------------------------------------
// Experiment benchmarks: one per entry in the E1–E20 index (DESIGN.md §3).
// Each iteration regenerates the experiment's tables at quick sizes and
// reports the number of paper-claim checks that passed as a metric.
// Run a single one with e.g. `go test -bench=E1 -benchtime=1x`.
// ---------------------------------------------------------------------------

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	def, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	passed, failed := 0, 0
	for i := 0; i < b.N; i++ {
		rep, err := def.Run(exp.Params{Quick: true, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		failed += len(rep.Failed())
		passed += len(rep.Checks) - len(rep.Failed())
	}
	b.ReportMetric(float64(passed)/float64(b.N), "checks-passed/op")
	if failed > 0 {
		b.Logf("%s: %d check failures across %d runs (statistical thresholds; see divbench)", id, failed, b.N)
	}
}

func BenchmarkE1WinnerDistribution(b *testing.B)  { benchmarkExperiment(b, "E1") }
func BenchmarkE2ReductionTime(b *testing.B)       { benchmarkExperiment(b, "E2") }
func BenchmarkE3Martingale(b *testing.B)          { benchmarkExperiment(b, "E3") }
func BenchmarkE4TwoOpinionPull(b *testing.B)      { benchmarkExperiment(b, "E4") }
func BenchmarkE5Concentration(b *testing.B)       { benchmarkExperiment(b, "E5") }
func BenchmarkE6StageEvolution(b *testing.B)      { benchmarkExperiment(b, "E6") }
func BenchmarkE7ModeMedianMean(b *testing.B)      { benchmarkExperiment(b, "E7") }
func BenchmarkE8LoadBalancing(b *testing.B)       { benchmarkExperiment(b, "E8") }
func BenchmarkE9PathCounterexample(b *testing.B)  { benchmarkExperiment(b, "E9") }
func BenchmarkE10EdgeVsVertex(b *testing.B)       { benchmarkExperiment(b, "E10") }
func BenchmarkE11Eigenvalues(b *testing.B)        { benchmarkExperiment(b, "E11") }
func BenchmarkE12ExtremeElimination(b *testing.B) { benchmarkExperiment(b, "E12") }
func BenchmarkE13LambdaKThreshold(b *testing.B)   { benchmarkExperiment(b, "E13") }
func BenchmarkE14Distributed(b *testing.B)        { benchmarkExperiment(b, "E14") }
func BenchmarkE15StepSizeAblation(b *testing.B)   { benchmarkExperiment(b, "E15") }
func BenchmarkE16Synchronous(b *testing.B)        { benchmarkExperiment(b, "E16") }
func BenchmarkE17PushPull(b *testing.B)           { benchmarkExperiment(b, "E17") }
func BenchmarkE18Zealots(b *testing.B)            { benchmarkExperiment(b, "E18") }
func BenchmarkE19CoalescingDuality(b *testing.B)  { benchmarkExperiment(b, "E19") }
func BenchmarkE20FastEngine(b *testing.B)         { benchmarkExperiment(b, "E20") }

// ---------------------------------------------------------------------------
// Engine micro-benchmarks: the per-step costs that dominate everything
// above.
// ---------------------------------------------------------------------------

func benchmarkSteps(b *testing.B, g *graph.Graph, proc core.Process) {
	b.Helper()
	r := rng.New(1)
	s := core.MustState(g, core.UniformOpinions(g.N(), 9, r))
	sched, err := core.NewScheduler(s, proc)
	if err != nil {
		b.Fatal(err)
	}
	rule := core.DIV{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, w := sched.Pair(r)
		rule.Step(s, r, v, w)
	}
}

func BenchmarkDIVStepVertexComplete(b *testing.B) {
	benchmarkSteps(b, graph.Complete(1000), core.VertexProcess)
}

func BenchmarkDIVStepVertexRegular(b *testing.B) {
	g, err := graph.RandomRegular(10000, 16, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	benchmarkSteps(b, g, core.VertexProcess)
}

func BenchmarkDIVStepEdgeRegular(b *testing.B) {
	g, err := graph.RandomRegular(10000, 16, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	benchmarkSteps(b, g, core.EdgeProcess)
}

func BenchmarkFullRunToConsensus(b *testing.B) {
	g := graph.Complete(200)
	r := rng.New(2)
	init := core.UniformOpinions(200, 5, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{Graph: g, Initial: init, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consensus {
			b.Fatal("no consensus")
		}
	}
}

func BenchmarkLambdaSparse(b *testing.B) {
	g, err := graph.RandomRegular(2000, 16, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.Lambda(g, spectral.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomRegularGen(b *testing.B) {
	r := rng.New(4)
	for i := 0; i < b.N; i++ {
		if _, err := graph.RandomRegular(5000, 8, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGnpGen(b *testing.B) {
	r := rng.New(5)
	for i := 0; i < b.N; i++ {
		if _, err := graph.Gnp(5000, 0.01, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedRun(b *testing.B) {
	g := div.Complete(60)
	init := div.UniformOpinions(60, 4, div.NewRand(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := div.RunDistributed(div.NetConfig{
			Graph:           g,
			Initial:         init,
			Seed:            uint64(i + 1),
			StopOnConsensus: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consensus {
			b.Fatal("no consensus")
		}
	}
}

// Ensure every experiment has a benchmark: a compile-time-ish guard
// that fails fast if the index grows without a matching bench.
func TestBenchCoverageOfExperimentIndex(t *testing.T) {
	covered := map[string]bool{
		"E1": true, "E2": true, "E3": true, "E4": true, "E5": true,
		"E6": true, "E7": true, "E8": true, "E9": true, "E10": true,
		"E11": true, "E12": true, "E13": true, "E14": true, "E15": true,
		"E16": true, "E17": true, "E18": true, "E19": true, "E20": true,
	}
	for _, d := range exp.All {
		if !covered[d.ID] {
			t.Errorf("experiment %s has no benchmark in bench_test.go", d.ID)
		}
	}
	if len(covered) != len(exp.All) {
		t.Errorf("bench list (%d) out of sync with experiment index (%d)", len(covered), len(exp.All))
	}
}

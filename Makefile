GO ?= go

.PHONY: help check vet build test race invariants bench bench-engine bench-bign bench-scaling bench-compare serve-smoke full-suite cover trace-artifact

help: ## list targets
	@grep -E '^[a-z-]+:.*##' $(MAKEFILE_LIST) | awk -F':.*## ' '{printf "  %-12s %s\n", $$1, $$2}'

check: vet build test race invariants ## tier-1 gate: everything that must stay green

vet: ## static analysis
	$(GO) vet ./...

build: ## compile every package and command
	$(GO) build ./...

test: ## full unit/property/integration suite
	$(GO) test ./...

race: ## race detector over the concurrent packages (suite-determinism tests run the quick suite repeatedly, so allow beyond go test's 10m default)
	$(GO) test -race -timeout 30m ./internal/core ./internal/sim ./internal/exp

invariants: ## recompute the fast engine's discordance index from scratch after every update
	$(GO) test -tags divtestinvariants ./internal/core

cover: ## coverage profile + HTML report (cover.out, cover.html)
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -html=cover.out -o cover.html
	$(GO) tool cover -func=cover.out | tail -1

trace-artifact: ## regenerate results/observability.txt (traced dissenter run)
	./scripts/trace_artifact.sh

bench: ## every experiment as a testing.B benchmark, one iteration each
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

bench-engine: ## regenerate the fast-engine speedup table (results/fast_engine.txt) and the perf matrix incl. the E2 block-size sweep B∈{1,4,8,16} (BENCH_engine.json)
	$(GO) run ./cmd/divbench -exp E20 -full
	$(GO) run ./cmd/divbench -bench-json BENCH_engine.json -full

bench-bign: ## regenerate the 'bign' section of BENCH_engine.json: million-vertex E2-style runs on an implicit circulant with compact byte slabs vs the materialized-CSR int32 baseline (n=10⁶ pair + n=10⁷ implicit arm), with ns/step, build time, and per-phase peak RSS
	$(GO) run ./cmd/divbench -bench-bign BENCH_engine.json -full

bench-scaling: ## regenerate BENCH_engine.json with the multicore 'scaling' section: quick suite at widths {1,2,4,all} (GOMAXPROCS matched) + the CSR blocked-kernel block sweep B∈{1,2,4,8}
	$(GO) run ./cmd/divbench -bench-json BENCH_engine.json -full -widths 1,2,4,0

bench-build: ## regenerate the 'build' section of BENCH_engine.json: seeded parallel graph construction (gnp + randomRegular at n=10⁵,10⁶,10⁷) vs the frozen seed []Edge path, with per-phase nanos, edges/s, peak RSS, and the byte-identity + speedup + RSS gates
	$(GO) run ./cmd/divbench -bench-build BENCH_engine.json -full

bench-compare: ## measure a fresh full perf matrix and gate it against the checked-in BENCH_engine.json (exit 1 on >10% regressions; noise-prone on shared hardware, informative in CI)
	$(GO) run ./cmd/divbench -bench-json /tmp/BENCH_new.json -full
	$(GO) run ./cmd/divbench -compare BENCH_engine.json /tmp/BENCH_new.json

serve-smoke: ## run the quick suite under -serve and assert the live /metrics, /progress, /snapshot.json surface
	./scripts/serve_smoke.sh

full-suite: ## publication-size experiment suite (minutes)
	$(GO) run ./cmd/divbench -full

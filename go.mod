module div

go 1.22

// Package markov implements the simple-random-walk machinery the
// paper's analysis is built on: the observation driving Lemma 10 is
// that the DIV update probability (equation (2)) is exactly 1/n times
// the walk transition probability P(v,w) = 1/d(v), so the mixing
// behaviour of the walk — governed by λ and the expander mixing lemma —
// controls how fast extreme-opinion mass contracts.
//
// Provided: exact distribution evolution under P (sparse vector-matrix
// products), total-variation distance to stationarity, Monte-Carlo walk
// simulation, hitting-time estimation, and the ergodic flow Q(S,U)
// appearing in the expander mixing lemma (Lemma 9).
package markov

import (
	"fmt"
	"math"
	"math/rand/v2"

	"div/internal/graph"
)

// Walker performs simple random walks on a fixed graph.
type Walker struct {
	g *graph.Graph
}

// NewWalker returns a Walker over g; every vertex must have a
// neighbour.
func NewWalker(g *graph.Graph) (*Walker, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("markov: empty graph")
	}
	if g.MinDegree() == 0 {
		return nil, fmt.Errorf("markov: graph has an isolated vertex")
	}
	return &Walker{g: g}, nil
}

// Step moves the walker one step from v.
func (w *Walker) Step(v int, r *rand.Rand) int {
	return w.g.Neighbor(v, r.IntN(w.g.Degree(v)))
}

// Walk runs t steps from start and returns the end vertex.
func (w *Walker) Walk(start, t int, r *rand.Rand) int {
	v := start
	for i := 0; i < t; i++ {
		v = w.Step(v, r)
	}
	return v
}

// HittingTime runs a walk from start until it first reaches target and
// returns the number of steps, or an error after maxSteps.
func (w *Walker) HittingTime(start, target int, maxSteps int64, r *rand.Rand) (int64, error) {
	v := start
	for t := int64(0); t <= maxSteps; t++ {
		if v == target {
			return t, nil
		}
		v = w.Step(v, r)
	}
	return 0, fmt.Errorf("markov: target %d not hit from %d within %d steps", target, start, maxSteps)
}

// EvolveStep computes dst = src·P exactly (one step of the distribution
// under the walk), where (src·P)_u = Σ_{v∈N(u)} src_v/d(v). dst and src
// must have length g.N() and may not alias.
func (w *Walker) EvolveStep(dst, src []float64) {
	g := w.g
	for u := 0; u < g.N(); u++ {
		var sum float64
		for _, v := range g.Neighbors(u) {
			sum += src[v] / float64(g.Degree(int(v)))
		}
		dst[u] = sum
	}
}

// Evolve returns the exact distribution after t steps starting from the
// point mass at start.
func (w *Walker) Evolve(start, t int) []float64 {
	n := w.g.N()
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[start] = 1
	for i := 0; i < t; i++ {
		w.EvolveStep(next, cur)
		cur, next = next, cur
	}
	return cur
}

// TVDistance returns the total-variation distance ½‖p−q‖₁.
func TVDistance(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("markov: TV distance over mismatched lengths %d, %d", len(p), len(q))
	}
	var sum float64
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2, nil
}

// MixingTV returns the exact TV distance to stationarity after t steps
// from the given start vertex.
func (w *Walker) MixingTV(start, t int) (float64, error) {
	return TVDistance(w.Evolve(start, t), w.g.Stationary())
}

// EmpiricalDistribution runs walks independent t-step walks from start
// and returns the empirical end-vertex distribution.
func (w *Walker) EmpiricalDistribution(start, t, walks int, r *rand.Rand) []float64 {
	counts := make([]float64, w.g.N())
	for i := 0; i < walks; i++ {
		counts[w.Walk(start, t, r)]++
	}
	for i := range counts {
		counts[i] /= float64(walks)
	}
	return counts
}

// ErgodicFlow returns Q(S,U) = Σ_{v∈S} π_v P(v,U), the quantity bounded
// by the expander mixing lemma (Lemma 9):
// |Q(S,U) − π(S)π(U)| ≤ λ √(π(S)π(S^c)π(U)π(U^c)).
func ErgodicFlow(g *graph.Graph, s, u []int) float64 {
	inU := make([]bool, g.N())
	for _, v := range u {
		inU[v] = true
	}
	total := float64(g.DegreeSum())
	var q float64
	for _, v := range s {
		cnt := 0
		for _, w := range g.Neighbors(v) {
			if inU[w] {
				cnt++
			}
		}
		// π_v · P(v,U) = (d(v)/2m) · (cnt/d(v)) = cnt/2m.
		q += float64(cnt) / total
	}
	return q
}

// PiMass returns π(S) for a vertex set.
func PiMass(g *graph.Graph, s []int) float64 {
	var d int64
	for _, v := range s {
		d += int64(g.Degree(v))
	}
	return float64(d) / float64(g.DegreeSum())
}

// MixingLemmaBound returns the right-hand side of Lemma 9 for the two
// sets, given λ.
func MixingLemmaBound(g *graph.Graph, lambda float64, s, u []int) float64 {
	ps, pu := PiMass(g, s), PiMass(g, u)
	return lambda * math.Sqrt(ps*(1-ps)*pu*(1-pu))
}

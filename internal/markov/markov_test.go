package markov

import (
	"math"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
	"div/internal/spectral"
	"div/internal/stats"
)

func TestNewWalkerErrors(t *testing.T) {
	if _, err := NewWalker(graph.MustFromEdges(0, nil)); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := NewWalker(graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})); err == nil {
		t.Error("isolated vertex accepted")
	}
}

func TestEvolveConservesMass(t *testing.T) {
	g := graph.Barbell(5, 3)
	w, err := NewWalker(g)
	if err != nil {
		t.Fatal(err)
	}
	dist := w.Evolve(0, 25)
	var sum float64
	for _, p := range dist {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("mass %v after evolution", sum)
	}
}

func TestStationaryIsFixedPoint(t *testing.T) {
	g := graph.Star(7)
	w, err := NewWalker(g)
	if err != nil {
		t.Fatal(err)
	}
	pi := g.Stationary()
	next := make([]float64, g.N())
	// The star is bipartite so the walk is periodic, but π·P = π still.
	w.EvolveStep(next, pi)
	for v := range pi {
		if math.Abs(next[v]-pi[v]) > 1e-12 {
			t.Errorf("π not stationary at %d: %v vs %v", v, next[v], pi[v])
		}
	}
}

func TestCompleteGraphMixesInOneStepish(t *testing.T) {
	// On K_n the walk is within TV = 1/(n-1)-ish of π after one step.
	g := graph.Complete(50)
	w, err := NewWalker(g)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := w.MixingTV(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.03 {
		t.Errorf("TV after one step on K_50 = %v", tv)
	}
}

func TestTVDecayRateMatchesLambda(t *testing.T) {
	// On a non-bipartite cycle, TV distance decays like λ^t
	// asymptotically; the measured per-step ratio should approach λ.
	g := graph.Cycle(15)
	w, err := NewWalker(g)
	if err != nil {
		t.Fatal(err)
	}
	lam, err := spectral.LambdaExact(g)
	if err != nil {
		t.Fatal(err)
	}
	tv200, err := w.MixingTV(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	tv210, err := w.MixingTV(0, 210)
	if err != nil {
		t.Fatal(err)
	}
	rate := math.Pow(tv210/tv200, 1.0/10)
	if math.Abs(rate-lam) > 0.02 {
		t.Errorf("TV decay rate %v vs λ = %v", rate, lam)
	}
}

func TestTVDistanceErrors(t *testing.T) {
	if _, err := TVDistance([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	d, err := TVDistance([]float64{1, 0}, []float64{0, 1})
	if err != nil || d != 1 {
		t.Errorf("disjoint TV = %v, %v", d, err)
	}
}

func TestEmpiricalMatchesExact(t *testing.T) {
	g := graph.Cycle(9)
	w, err := NewWalker(g)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	exact := w.Evolve(0, 6)
	emp := w.EmpiricalDistribution(0, 6, 200000, r)
	tv, err := TVDistance(exact, emp)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.01 {
		t.Errorf("empirical vs exact TV = %v", tv)
	}
}

func TestHittingTimePathScalesQuadratically(t *testing.T) {
	// Expected hitting time of the far end of a path is Θ(n²); check
	// the ratio between n=16 and n=32 is ≈ 4.
	r := rng.New(6)
	mean := func(n int) float64 {
		g := graph.Path(n)
		w, err := NewWalker(g)
		if err != nil {
			t.Fatal(err)
		}
		var times []float64
		for i := 0; i < 400; i++ {
			h, err := w.HittingTime(0, n-1, int64(n)*int64(n)*1000, r)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, float64(h))
		}
		return stats.Mean(times)
	}
	m16, m32 := mean(16), mean(32)
	ratio := m32 / m16
	if ratio < 2.8 || ratio > 6 {
		t.Errorf("hitting time ratio %v (m16=%v, m32=%v), want ≈ 4", ratio, m16, m32)
	}
}

func TestHittingTimeTimeout(t *testing.T) {
	g := graph.Path(10)
	w, err := NewWalker(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.HittingTime(0, 9, 3, rng.New(7)); err == nil {
		t.Error("timeout not reported")
	}
	h, err := w.HittingTime(4, 4, 0, rng.New(8))
	if err != nil || h != 0 {
		t.Errorf("self-hit = %v, %v", h, err)
	}
}

// TestExpanderMixingLemma verifies Lemma 9 numerically: for random
// vertex sets on expanders, |Q(S,U) − π(S)π(U)| stays below the bound.
func TestExpanderMixingLemma(t *testing.T) {
	r := rng.New(9)
	g, err := graph.RandomRegular(200, 12, r)
	if err != nil {
		t.Fatal(err)
	}
	lam, err := spectral.Lambda(g, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		s := randomSubset(g.N(), 1+r.IntN(g.N()-1), r)
		u := randomSubset(g.N(), 1+r.IntN(g.N()-1), r)
		q := ErgodicFlow(g, s, u)
		gap := math.Abs(q - PiMass(g, s)*PiMass(g, u))
		bound := MixingLemmaBound(g, lam, s, u)
		if gap > bound+1e-9 {
			t.Fatalf("trial %d: |Q−ππ| = %v exceeds bound %v (|S|=%d |U|=%d)", trial, gap, bound, len(s), len(u))
		}
	}
}

func TestErgodicFlowSymmetry(t *testing.T) {
	// Detailed balance: Q(S,U) = Q(U,S) for any sets.
	r := rng.New(10)
	g, err := graph.ConnectedGnp(60, 0.15, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		s := randomSubset(g.N(), 1+r.IntN(30), r)
		u := randomSubset(g.N(), 1+r.IntN(30), r)
		qsu, qus := ErgodicFlow(g, s, u), ErgodicFlow(g, u, s)
		if math.Abs(qsu-qus) > 1e-12 {
			t.Fatalf("Q(S,U)=%v != Q(U,S)=%v", qsu, qus)
		}
	}
}

func randomSubset(n, size int, r interface{ IntN(int) int }) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	if size > n {
		size = n
	}
	return perm[:size]
}

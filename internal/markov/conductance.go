package markov

import (
	"fmt"
	"math"
	"sort"

	"div/internal/graph"
	"div/internal/spectral"
)

// Conductance returns Φ(S) = Q(S, S^c)/min(π(S), π(S^c)), the
// bottleneck ratio of the vertex set S under the simple random walk.
// Expanders are exactly the graphs whose every-set conductance is
// bounded below, which via Cheeger's inequality is equivalent (up to
// squaring) to the spectral-gap condition the paper's theorems assume.
func Conductance(g *graph.Graph, s []int) (float64, error) {
	if len(s) == 0 || len(s) == g.N() {
		return 0, fmt.Errorf("markov: conductance of trivial set (|S|=%d of %d)", len(s), g.N())
	}
	inS := make([]bool, g.N())
	for _, v := range s {
		if v < 0 || v >= g.N() {
			return 0, fmt.Errorf("markov: vertex %d out of range", v)
		}
		inS[v] = true
	}
	var cut, degS int64
	for _, v := range s {
		degS += int64(g.Degree(v))
		for _, w := range g.Neighbors(v) {
			if !inS[w] {
				cut++
			}
		}
	}
	total := float64(g.DegreeSum())
	piS := float64(degS) / total
	q := float64(cut) / total // Q(S,S^c) = (#cut edges)/2m
	return q / math.Min(piS, 1-piS), nil
}

// SweepCut scans the prefixes S_i = {order[0..i]} of a vertex ordering
// and returns the prefix with the smallest conductance, in O(n + m).
type SweepCut struct {
	// Set is the best prefix (a copy).
	Set []int
	// Phi is its conductance.
	Phi float64
}

// Sweep computes the best prefix cut of the given ordering.
func Sweep(g *graph.Graph, order []int) (SweepCut, error) {
	n := g.N()
	if len(order) != n {
		return SweepCut{}, fmt.Errorf("markov: sweep order has %d entries for %d vertices", len(order), n)
	}
	if n < 2 {
		return SweepCut{}, fmt.Errorf("markov: sweep needs at least two vertices")
	}
	inS := make([]bool, n)
	total := float64(g.DegreeSum())
	var cut, degS int64
	best := SweepCut{Phi: math.Inf(1)}
	for i := 0; i < n-1; i++ {
		v := order[i]
		inS[v] = true
		degS += int64(g.Degree(v))
		for _, w := range g.Neighbors(v) {
			if inS[w] {
				cut-- // edge absorbed into S
			} else {
				cut++
			}
		}
		piS := float64(degS) / total
		phi := (float64(cut) / total) / math.Min(piS, 1-piS)
		if phi < best.Phi {
			best.Phi = phi
			best.Set = append([]int(nil), order[:i+1]...)
		}
	}
	return best, nil
}

// CheegerSweep runs the classic spectral partitioning pipeline: compute
// the second eigenvector of the walk matrix, sort vertices by it, and
// sweep. Cheeger's inequality guarantees the result Φ* satisfies
//
//	(1-λ₂)/2  ≤  Φ_G  ≤  Φ*  ≤  √(2(1-λ₂))
//
// so the returned cut certifies the graph's expansion two-sidedly.
func CheegerSweep(g *graph.Graph) (SweepCut, float64, error) {
	lambda2, vec, err := spectral.SecondEigen(g, spectral.Options{})
	if err != nil {
		return SweepCut{}, 0, err
	}
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vec[order[i]] < vec[order[j]] })
	cut, err := Sweep(g, order)
	if err != nil {
		return SweepCut{}, 0, err
	}
	return cut, lambda2, nil
}

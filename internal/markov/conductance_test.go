package markov

import (
	"math"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
	"div/internal/spectral"
)

func TestConductanceErrors(t *testing.T) {
	g := graph.Complete(4)
	if _, err := Conductance(g, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Conductance(g, []int{0, 1, 2, 3}); err == nil {
		t.Error("full set accepted")
	}
	if _, err := Conductance(g, []int{7}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestConductanceCycleArc(t *testing.T) {
	// A contiguous arc of k vertices on C_n has Φ = 1/k for k ≤ n/2:
	// 2 cut edges over 2m = 2n arc mass k/n.
	g := graph.Cycle(20)
	for _, k := range []int{1, 3, 7, 10} {
		s := make([]int, k)
		for i := range s {
			s[i] = i
		}
		phi, err := Conductance(g, s)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / float64(k)
		if math.Abs(phi-want) > 1e-12 {
			t.Errorf("arc k=%d: Φ = %v, want %v", k, phi, want)
		}
	}
}

func TestConductanceCompleteHalf(t *testing.T) {
	// Half of K_n: cut = (n/2)², deg mass = (n/2)(n-1); Φ = (n/2)/(n-1).
	n := 10
	g := graph.Complete(n)
	s := []int{0, 1, 2, 3, 4}
	phi, err := Conductance(g, s)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n/2) / float64(n-1)
	if math.Abs(phi-want) > 1e-12 {
		t.Errorf("Φ = %v, want %v", phi, want)
	}
}

func TestConductanceBarbellBridge(t *testing.T) {
	// One clique of the barbell: a single bridge edge crosses.
	g := graph.Barbell(6, 0)
	s := []int{0, 1, 2, 3, 4, 5}
	phi, err := Conductance(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if phi > 0.05 {
		t.Errorf("barbell clique Φ = %v, want tiny", phi)
	}
}

func TestSweepMatchesDirectConductance(t *testing.T) {
	g := graph.Cycle(12)
	order := make([]int, 12)
	for i := range order {
		order[i] = i
	}
	cut, err := Sweep(g, order)
	if err != nil {
		t.Fatal(err)
	}
	// Best prefix of the natural cycle order is the half arc: Φ = 1/6.
	if math.Abs(cut.Phi-1.0/6) > 1e-12 {
		t.Errorf("sweep Φ = %v, want 1/6", cut.Phi)
	}
	if len(cut.Set) != 6 {
		t.Errorf("sweep set size %d, want 6", len(cut.Set))
	}
	direct, err := Conductance(g, cut.Set)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct-cut.Phi) > 1e-12 {
		t.Errorf("sweep Φ %v != direct Φ %v", cut.Phi, direct)
	}
}

func TestSweepErrors(t *testing.T) {
	g := graph.Complete(3)
	if _, err := Sweep(g, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := Sweep(graph.MustFromEdges(1, nil), []int{0}); err == nil {
		t.Error("singleton accepted")
	}
}

func TestCheegerSweepFindsBarbellBottleneck(t *testing.T) {
	g := graph.Barbell(8, 0)
	cut, lambda2, err := CheegerSweep(g)
	if err != nil {
		t.Fatal(err)
	}
	// The spectral sweep must find (essentially) the bridge cut.
	if len(cut.Set) < 7 || len(cut.Set) > 9 {
		t.Errorf("sweep set size %d, want ≈ 8", len(cut.Set))
	}
	if cut.Phi > 0.05 {
		t.Errorf("sweep Φ = %v, want tiny", cut.Phi)
	}
	if lambda2 < 0.9 {
		t.Errorf("λ₂ = %v, want near 1 for the barbell", lambda2)
	}
}

// TestCheegerInequalities verifies both sides of Cheeger's inequality
// on a spread of graphs: (1-λ₂)/2 ≤ Φ* and Φ* ≤ √(2(1-λ₂)), where Φ*
// is the spectral sweep cut (an upper bound on Φ_G that the sweep
// construction guarantees meets the right-hand side).
func TestCheegerInequalities(t *testing.T) {
	r := rng.New(51)
	reg, err := graph.RandomRegular(120, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	gnp, err := graph.ConnectedGnp(100, 0.1, r, 200)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{
		graph.Cycle(40),
		graph.Complete(30),
		graph.Barbell(10, 2),
		graph.Grid(8, 8),
		reg,
		gnp,
	}
	for _, g := range graphs {
		cut, lambda2, err := CheegerSweep(g)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		lower := (1 - lambda2) / 2
		upper := math.Sqrt(2 * (1 - lambda2))
		if cut.Phi < lower-1e-9 {
			t.Errorf("%v: sweep Φ %v below Cheeger lower bound %v", g, cut.Phi, lower)
		}
		if cut.Phi > upper+1e-9 {
			t.Errorf("%v: sweep Φ %v above Cheeger sweep guarantee %v", g, cut.Phi, upper)
		}
	}
}

func TestSecondEigenMatchesOracle(t *testing.T) {
	// λ₂ (signed) from the sparse routine vs the dense spectrum.
	r := rng.New(52)
	gnp, err := graph.ConnectedGnp(50, 0.2, r, 200)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{
		graph.Complete(20),
		graph.Cycle(17),
		graph.Barbell(6, 1),
		graph.Path(15),
		gnp,
	}
	for _, g := range graphs {
		lambda2, vec, err := spectral.SecondEigen(g, spectral.Options{MaxIters: 100000, Tol: 1e-14})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		vals, err := spectral.WalkSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		want := vals[len(vals)-2]
		if math.Abs(lambda2-want) > 1e-6 {
			t.Errorf("%v: λ₂ = %v, want %v", g, lambda2, want)
		}
		if len(vec) != g.N() {
			t.Errorf("%v: eigenvector length %d", g, len(vec))
		}
		// Check the eigenvector equation P·vec ≈ λ₂·vec.
		var worst float64
		for v := 0; v < g.N(); v++ {
			var sum float64
			for _, w := range g.Neighbors(v) {
				sum += vec[w]
			}
			sum /= float64(g.Degree(v))
			if d := math.Abs(sum - lambda2*vec[v]); d > worst {
				worst = d
			}
		}
		if worst > 1e-5 {
			t.Errorf("%v: eigenvector residual %v", g, worst)
		}
	}
}

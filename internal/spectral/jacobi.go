// Package spectral computes the spectral quantities the paper's
// theorems are parameterized by — above all λ, the second largest
// eigenvalue in absolute value of the transition matrix P of the simple
// random walk — together with closed forms for standard graph families
// and mixing-time estimates.
//
// Two engines are provided: a dense cyclic-Jacobi eigensolver used as
// an exact oracle on small graphs, and a sparse deflated power method
// that scales to the graph sizes used in the experiments. The random
// walk matrix P = D⁻¹A is not symmetric, but it is similar to the
// symmetric N = D^{-1/2} A D^{-1/2}, so both engines work on N and
// share P's spectrum.
package spectral

import (
	"fmt"
	"math"
)

// SymMatrix is a dense symmetric matrix stored in row-major order.
type SymMatrix struct {
	N    int
	Data []float64 // len N*N
}

// NewSymMatrix allocates an n×n zero matrix.
func NewSymMatrix(n int) *SymMatrix {
	return &SymMatrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i,j).
func (m *SymMatrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set sets elements (i,j) and (j,i).
func (m *SymMatrix) Set(i, j int, v float64) {
	m.Data[i*m.N+j] = v
	m.Data[j*m.N+i] = v
}

// Jacobi diagonalizes the symmetric matrix m with the cyclic Jacobi
// method and returns all eigenvalues in ascending order. The input is
// not modified. Accuracy is near machine precision for well-scaled
// inputs; cost is O(n³) per sweep with typically < 15 sweeps.
func Jacobi(m *SymMatrix) ([]float64, error) {
	n := m.N
	if n == 0 {
		return nil, nil
	}
	if len(m.Data) != n*n {
		return nil, fmt.Errorf("spectral: matrix data length %d != n²=%d", len(m.Data), n*n)
	}
	a := make([]float64, len(m.Data))
	copy(a, m.Data)
	at := func(i, j int) float64 { return a[i*n+j] }
	set := func(i, j int, v float64) { a[i*n+j] = v }

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += 2 * at(i, j) * at(i, j)
			}
		}
		if math.Sqrt(off) < 1e-13*float64(n) {
			vals := make([]float64, n)
			for i := 0; i < n; i++ {
				vals[i] = at(i, i)
			}
			sortFloats(vals)
			return vals, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := at(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := at(p, p), at(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation G(p,q,θ)ᵀ A G(p,q,θ).
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip, aiq := at(i, p), at(i, q)
					set(i, p, c*aip-s*aiq)
					set(p, i, at(i, p))
					set(i, q, s*aip+c*aiq)
					set(q, i, at(i, q))
				}
				set(p, p, app-t*apq)
				set(q, q, aqq+t*apq)
				set(p, q, 0)
				set(q, p, 0)
			}
		}
	}
	return nil, fmt.Errorf("spectral: Jacobi failed to converge in %d sweeps", maxSweeps)
}

func sortFloats(xs []float64) {
	// Insertion sort would be quadratic; use a simple heapsort to stay
	// dependency-light inside the hot-free oracle path.
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(xs, i, n)
	}
	for end := n - 1; end > 0; end-- {
		xs[0], xs[end] = xs[end], xs[0]
		siftDown(xs, 0, end)
	}
}

func siftDown(xs []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && xs[child+1] > xs[child] {
			child++
		}
		if xs[root] >= xs[child] {
			return
		}
		xs[root], xs[child] = xs[child], xs[root]
		root = child
	}
}

package spectral

import (
	"math"
	"testing"

	"div/internal/graph"
)

// TestLambdaTopology checks every closed-form branch against the exact
// Jacobi eigensolve of the materialized twin, and that the memo and the
// not-covered fallbacks behave.
func TestLambdaTopology(t *testing.T) {
	mk := func(topo graph.Topology, err error) graph.Topology {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return topo
	}
	topos := []graph.Topology{
		mk(graph.NewImplicitComplete(7)),
		mk(graph.NewImplicitCycle(9)),
		mk(graph.NewImplicitCycle(10)),
		mk(graph.NewImplicitPath(8)),
		mk(graph.NewImplicitTorus(3, 5)),
		mk(graph.NewImplicitTorus(4, 6)),
		mk(graph.NewImplicitTorus(4, 5)),
		mk(graph.NewImplicitHypercube(3)),
		mk(graph.NewImplicitCirculant(11, []int{1, 3})),
		mk(graph.NewImplicitCirculant(16, []int{1, 2, 5})),
	}
	for _, topo := range topos {
		t.Run(topo.Name(), func(t *testing.T) {
			got, ok := LambdaTopology(topo)
			if !ok {
				t.Fatalf("no closed form for %s", topo.Name())
			}
			want, err := LambdaExact(graph.MustMaterialize(topo))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("λ = %.12f, exact %.12f", got, want)
			}
			// Memoized second lookup agrees.
			again, ok := LambdaTopology(topo)
			if !ok || again != got {
				t.Errorf("memo returned (%.12f, %v), want (%.12f, true)", again, ok, got)
			}
		})
	}
	// Families without a closed form report ok=false: a materialized
	// *Graph and the hashed-matching multigraph.
	if _, ok := LambdaTopology(graph.Cycle(8)); ok {
		t.Error("LambdaTopology claimed a closed form for a materialized *Graph")
	}
	h, err := graph.NewHashedRegular(16, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := LambdaTopology(h); ok {
		t.Error("LambdaTopology claimed a closed form for HashedRegular")
	}
}

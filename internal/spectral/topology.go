package spectral

import (
	"sync"

	"div/internal/graph"
)

// topoLambdaMemo caches λ per implicit-topology name. Implicit families
// never enter the byte-bounded graph artifact cache — there is no
// adjacency to cache or evict — so the one derived scalar experiments
// ask for is memoized here instead: for a circulant the closed form is
// an O(n·L) frequency scan, worth computing exactly once per family.
var topoLambdaMemo sync.Map // graph.Topology.Name() -> float64

// LambdaTopology returns λ = max(|λ₂|, |λ_n|) of the walk matrix for
// implicit topologies with a closed form (complete, cycle, path, torus,
// hypercube, circulant), memoized per topology name. ok is false for
// topologies without one: materialized *Graphs (use LambdaExact or the
// power iteration) and HashedRegular (only the w.h.p. bound
// LambdaRandomRegularBound applies).
func LambdaTopology(t graph.Topology) (lambda float64, ok bool) {
	key := t.Name()
	if v, hit := topoLambdaMemo.Load(key); hit {
		return v.(float64), true
	}
	switch tt := t.(type) {
	case *graph.ImplicitComplete:
		lambda = LambdaComplete(tt.N())
	case *graph.ImplicitCycle:
		lambda = LambdaCycle(tt.N())
	case *graph.ImplicitPath:
		lambda = LambdaPath(tt.N())
	case *graph.ImplicitHypercube:
		lambda = LambdaHypercube(tt.Dim())
	case *graph.ImplicitCirculant:
		lambda = LambdaCirculant(tt.N(), tt.Strides())
	case *graph.ImplicitTorus:
		lambda = LambdaTorus(tt.Rows(), tt.Cols())
	default:
		return 0, false
	}
	topoLambdaMemo.Store(key, lambda)
	return lambda, true
}

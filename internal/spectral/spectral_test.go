package spectral

import (
	"math"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
)

func TestJacobiDiagonal(t *testing.T) {
	m := NewSymMatrix(3)
	m.Set(0, 0, 3)
	m.Set(1, 1, -1)
	m.Set(2, 2, 2)
	vals, err := Jacobi(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("eigenvalue %d = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestJacobi2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewSymMatrix(2)
	m.Set(0, 0, 2)
	m.Set(1, 1, 2)
	m.Set(0, 1, 1)
	vals, err := Jacobi(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Errorf("eigenvalues %v, want [1 3]", vals)
	}
}

func TestJacobiTraceAndEmpty(t *testing.T) {
	vals, err := Jacobi(NewSymMatrix(0))
	if err != nil || vals != nil {
		t.Errorf("empty matrix: %v, %v", vals, err)
	}
	// Trace is preserved: random symmetric matrix.
	r := rng.New(5)
	n := 20
	m := NewSymMatrix(n)
	var trace float64
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.Float64()*2 - 1
			m.Set(i, j, v)
			if i == j {
				trace += v
			}
		}
	}
	vals, err = Jacobi(m)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum-trace) > 1e-9 {
		t.Errorf("eigenvalue sum %v != trace %v", sum, trace)
	}
}

func TestWalkSpectrumTopEigenvalueIsOne(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Complete(8), graph.Cycle(9), graph.Path(6), graph.Star(7),
	} {
		vals, err := WalkSpectrum(g)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		top := vals[len(vals)-1]
		if math.Abs(top-1) > 1e-10 {
			t.Errorf("%v: top walk eigenvalue %v, want 1", g, top)
		}
		for _, v := range vals {
			if v < -1-1e-10 || v > 1+1e-10 {
				t.Errorf("%v: walk eigenvalue %v outside [-1,1]", g, v)
			}
		}
	}
}

func TestLambdaExactClosedForms(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"K5", graph.Complete(5), LambdaComplete(5)},
		{"K20", graph.Complete(20), LambdaComplete(20)},
		{"C9", graph.Cycle(9), LambdaCycle(9)},
		{"C8 (bipartite)", graph.Cycle(8), 1},
		{"P10 (bipartite)", graph.Path(10), LambdaPath(10)},
		{"Q3 (bipartite)", graph.Hypercube(3), LambdaHypercube(3)},
		{"K33", graph.CompleteBipartite(3, 3), LambdaCompleteBipartite(3, 3)},
		{"C10(1,2)", graph.Circulant(10, []int{1, 2}), LambdaCirculant(10, []int{1, 2})},
		{"C11(1,2,3)", graph.Circulant(11, []int{1, 2, 3}), LambdaCirculant(11, []int{1, 2, 3})},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := LambdaExact(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("λ = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestLambdaSparseMatchesExact(t *testing.T) {
	r := rng.New(7)
	gnp, err := graph.ConnectedGnp(60, 0.15, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := graph.RandomRegular(50, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*graph.Graph{
		graph.Complete(30),
		graph.Cycle(25),
		graph.Star(20),
		graph.Barbell(8, 2),
		gnp,
		reg,
	}
	for _, g := range graphs {
		if !graph.IsConnected(g) {
			t.Fatalf("%v disconnected", g)
		}
		exact, err := LambdaExact(g)
		if err != nil {
			t.Fatalf("%v: exact: %v", g, err)
		}
		approx, err := Lambda(g, Options{})
		if err != nil {
			t.Fatalf("%v: sparse: %v", g, err)
		}
		if math.Abs(exact-approx) > 1e-6 {
			t.Errorf("%v: sparse λ=%v vs exact %v", g, approx, exact)
		}
	}
}

func TestLambdaErrors(t *testing.T) {
	if _, err := Lambda(graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}), Options{}); err == nil {
		t.Error("Lambda on disconnected graph succeeded")
	}
	if _, err := Lambda(graph.MustFromEdges(1, nil), Options{}); err == nil {
		t.Error("Lambda on singleton succeeded")
	}
	if _, err := WalkMatrix(graph.MustFromEdges(2, nil)); err == nil {
		t.Error("WalkMatrix with degree-zero vertex succeeded")
	}
}

func TestLambdaRandomRegularNearBound(t *testing.T) {
	// λ of a random d-regular graph should be near 2√(d-1)/d and far
	// below 1.
	r := rng.New(8)
	g, err := graph.RandomRegular(400, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	lam, err := Lambda(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := LambdaRandomRegularBound(8)
	if lam > 1.2*bound {
		t.Errorf("λ = %v exceeds 1.2× Friedman bound %v", lam, bound)
	}
	if lam < 0.5*bound {
		t.Errorf("λ = %v suspiciously below bound %v", lam, bound)
	}
}

func TestLambdaGnpNearBound(t *testing.T) {
	r := rng.New(9)
	g, err := graph.ConnectedGnp(500, 0.05, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	lam, err := Lambda(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := LambdaGnpBound(500, 0.05)
	if lam > 1.5*bound {
		t.Errorf("λ = %v exceeds 1.5× bound %v", lam, bound)
	}
}

func TestMixingTimeBound(t *testing.T) {
	if !math.IsInf(MixingTimeBound(1, 0.01, 0.25), 1) {
		t.Error("λ=1 should give infinite mixing bound")
	}
	got := MixingTimeBound(0.5, 0.01, 0.25)
	want := math.Log(1/(0.25*0.01)) / 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MixingTimeBound = %v, want %v", got, want)
	}
}

func TestLambdaCirculantMatchesCycle(t *testing.T) {
	// C_n(1) is the cycle.
	for _, n := range []int{5, 9, 15} {
		if got, want := LambdaCirculant(n, []int{1}), LambdaCycle(n); math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d: circulant closed form %v vs cycle %v", n, got, want)
		}
	}
}

func TestLambdaPetersenOracle(t *testing.T) {
	// Petersen adjacency eigenvalues are 3, 1 (×5), -2 (×4); the walk
	// spectrum is 1, 1/3, -2/3 so λ = 2/3 exactly.
	g := graph.Petersen()
	exact, err := LambdaExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-2.0/3) > 1e-10 {
		t.Errorf("dense λ(Petersen) = %v, want 2/3", exact)
	}
	sparse, err := Lambda(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sparse-2.0/3) > 1e-8 {
		t.Errorf("sparse λ(Petersen) = %v, want 2/3", sparse)
	}
	l2, _, err := SecondEigen(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-1.0/3) > 1e-6 {
		t.Errorf("λ₂(Petersen) = %v, want 1/3", l2)
	}
}

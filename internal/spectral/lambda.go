package spectral

import (
	"fmt"
	"math"

	"div/internal/graph"
	"div/internal/rng"
)

// WalkMatrix returns the dense symmetrized walk matrix
// N = D^{-1/2} A D^{-1/2} of g, which shares the spectrum of the
// transition matrix P = D⁻¹A. Vertices of degree zero are rejected.
func WalkMatrix(g *graph.Graph) (*SymMatrix, error) {
	n := g.N()
	for v := 0; v < n; v++ {
		if g.Degree(v) == 0 {
			return nil, fmt.Errorf("spectral: vertex %d has degree zero", v)
		}
	}
	m := NewSymMatrix(n)
	for v := 0; v < n; v++ {
		dv := math.Sqrt(float64(g.Degree(v)))
		for _, w := range g.Neighbors(v) {
			if int(w) < v {
				continue
			}
			dw := math.Sqrt(float64(g.Degree(int(w))))
			m.Set(v, int(w), 1/(dv*dw))
		}
	}
	return m, nil
}

// WalkSpectrum returns all eigenvalues of the walk matrix P in
// ascending order via the dense Jacobi oracle. O(n³); intended for
// n up to a few hundred.
func WalkSpectrum(g *graph.Graph) ([]float64, error) {
	m, err := WalkMatrix(g)
	if err != nil {
		return nil, err
	}
	return Jacobi(m)
}

// LambdaExact returns λ = max(|λ₂|, |λ_n|) of the walk matrix using
// the dense oracle. The graph must be connected so λ₁ = 1 is simple.
func LambdaExact(g *graph.Graph) (float64, error) {
	if !graph.IsConnected(g) {
		return 0, fmt.Errorf("spectral: graph is disconnected")
	}
	vals, err := WalkSpectrum(g)
	if err != nil {
		return 0, err
	}
	n := len(vals)
	if n < 2 {
		return 0, fmt.Errorf("spectral: need at least two vertices")
	}
	// vals ascending; λ₁ = vals[n-1] ≈ 1.
	return math.Max(math.Abs(vals[0]), math.Abs(vals[n-2])), nil
}

// Options configures the sparse Lambda power method.
type Options struct {
	// MaxIters bounds the number of B² applications (default 5000).
	MaxIters int
	// Tol is the relative convergence tolerance on the λ² estimate
	// (default 1e-10).
	Tol float64
	// Seed seeds the random start vector (default 1).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 5000
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Lambda estimates λ = max(|λ₂|, |λ_n|) of the walk matrix of a
// connected graph with a sparse deflated power method: the known top
// eigenvector φ₁(v) ∝ √d(v) is projected out, and the power iteration
// runs on B² (B = N - φ₁φ₁ᵀ) so that paired eigenvalues ±λ cannot make
// the iteration oscillate. Each iteration costs O(n + m).
//
// The returned estimate converges from below at rate (λ'/λ)² where λ'
// is the next-largest modulus; Tol controls the stopping criterion.
func Lambda(g *graph.Graph, opts Options) (float64, error) {
	opts = opts.withDefaults()
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("spectral: need at least two vertices")
	}
	if !graph.IsConnected(g) {
		return 0, fmt.Errorf("spectral: graph is disconnected")
	}

	invSqrtDeg := make([]float64, n)
	phi := make([]float64, n) // top eigenvector of N, unit norm
	var norm float64
	for v := 0; v < n; v++ {
		d := float64(g.Degree(v))
		invSqrtDeg[v] = 1 / math.Sqrt(d)
		phi[v] = math.Sqrt(d)
		norm += d
	}
	norm = math.Sqrt(norm)
	for v := range phi {
		phi[v] /= norm
	}

	x := make([]float64, n)
	y := make([]float64, n)
	r := rng.New(opts.Seed)
	for v := range x {
		x[v] = r.Float64() - 0.5
	}
	deflate(x, phi)
	if normalize(x) == 0 {
		return 0, fmt.Errorf("spectral: degenerate start vector")
	}

	applyB := func(dst, src []float64) {
		// dst = N·src with N = D^{-1/2} A D^{-1/2}, then deflate φ₁.
		for v := 0; v < n; v++ {
			var sum float64
			for _, w := range g.Neighbors(v) {
				sum += src[w] * invSqrtDeg[w]
			}
			dst[v] = sum * invSqrtDeg[v]
		}
		deflate(dst, phi)
	}

	prev := 0.0
	for iter := 0; iter < opts.MaxIters; iter++ {
		applyB(y, x)
		applyB(x, y)
		// Rayleigh quotient of B² at the (pre-normalization) iterate:
		// since ‖x_in‖ = 1, λ² ≈ x_in · B²x_in, but B²x ≥ 0 alignment
		// is cleaner through the norm which equals ‖B²x_in‖ → λ².
		lamSq := normalize(x)
		if lamSq == 0 {
			// x fell entirely into the kernel of B²; λ is 0 only for
			// graphs whose walk matrix is a rank-one perturbation.
			return 0, nil
		}
		if iter > 4 && math.Abs(lamSq-prev) <= opts.Tol*lamSq {
			return math.Sqrt(lamSq), nil
		}
		prev = lamSq
	}
	return math.Sqrt(prev), nil
}

// deflate removes the phi component from x in place.
func deflate(x, phi []float64) {
	var dot float64
	for i := range x {
		dot += x[i] * phi[i]
	}
	for i := range x {
		x[i] -= dot * phi[i]
	}
}

// normalize scales x to unit 2-norm in place and returns the previous
// norm (0 if x was zero, in which case x is unchanged).
func normalize(x []float64) float64 {
	var sq float64
	for _, v := range x {
		sq += v * v
	}
	norm := math.Sqrt(sq)
	if norm == 0 {
		return 0
	}
	for i := range x {
		x[i] /= norm
	}
	return norm
}

// MixingTimeBound returns the standard upper bound on the ε-mixing time
// of a reversible aperiodic chain: t_mix(ε) ≤ log(1/(ε·π_min))/(1-λ).
// It returns +Inf when λ ≥ 1.
func MixingTimeBound(lambda, piMin, eps float64) float64 {
	if lambda >= 1 {
		return math.Inf(1)
	}
	return math.Log(1/(eps*piMin)) / (1 - lambda)
}

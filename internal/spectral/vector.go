package spectral

import (
	"fmt"
	"math"

	"div/internal/graph"
	"div/internal/rng"
)

// SecondEigen computes the SIGNED second-largest eigenvalue λ₂ of the
// walk matrix P together with its eigenvector (in the vertex basis of
// P, i.e. the Fiedler-style vector used for spectral sweep cuts).
//
// Method: shifted deflated power iteration on M = (I+N)/2 where
// N = D^{-1/2}AD^{-1/2}. The shift maps the spectrum [-1,1] to [0,1]
// monotonically, so after deflating the top eigenvector the dominant
// eigenvalue of M is (1+λ₂)/2 regardless of how negative λ_n is — this
// is what distinguishes SecondEigen from Lambda, which targets
// max(|λ₂|,|λ_n|).
func SecondEigen(g *graph.Graph, opts Options) (lambda2 float64, vec []float64, err error) {
	opts = opts.withDefaults()
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("spectral: need at least two vertices")
	}
	if !graph.IsConnected(g) {
		return 0, nil, fmt.Errorf("spectral: graph is disconnected")
	}

	invSqrtDeg := make([]float64, n)
	phi := make([]float64, n)
	var norm float64
	for v := 0; v < n; v++ {
		d := float64(g.Degree(v))
		invSqrtDeg[v] = 1 / math.Sqrt(d)
		phi[v] = math.Sqrt(d)
		norm += d
	}
	norm = math.Sqrt(norm)
	for v := range phi {
		phi[v] /= norm
	}

	x := make([]float64, n)
	y := make([]float64, n)
	r := rng.New(opts.Seed)
	for v := range x {
		x[v] = r.Float64() - 0.5
	}
	deflate(x, phi)
	if normalize(x) == 0 {
		return 0, nil, fmt.Errorf("spectral: degenerate start vector")
	}

	applyM := func(dst, src []float64) {
		for v := 0; v < n; v++ {
			var sum float64
			for _, w := range g.Neighbors(v) {
				sum += src[w] * invSqrtDeg[w]
			}
			dst[v] = (src[v] + sum*invSqrtDeg[v]) / 2
		}
		deflate(dst, phi)
	}

	prev := 0.0
	mu := 0.0
	for iter := 0; iter < opts.MaxIters; iter++ {
		applyM(y, x)
		mu = normalize(y)
		x, y = y, x
		if iter > 4 && math.Abs(mu-prev) <= opts.Tol*math.Max(mu, 1e-300) {
			break
		}
		prev = mu
	}
	lambda2 = 2*mu - 1
	// Convert the eigenvector of N back to the P basis: if N u = λ u
	// then P (D^{-1/2}u) = λ (D^{-1/2}u).
	vec = make([]float64, n)
	for v := 0; v < n; v++ {
		vec[v] = x[v] * invSqrtDeg[v]
	}
	return lambda2, vec, nil
}

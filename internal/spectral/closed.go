package spectral

import (
	"math"
)

// Closed-form λ values for the standard families, used as oracles in
// tests and as the "paper" column in the E11 eigenvalue experiment.

// LambdaComplete returns λ(K_n) = 1/(n-1) (paper, §"Graphs with small
// second eigenvalue").
func LambdaComplete(n int) float64 {
	return 1 / float64(n-1)
}

// LambdaCycle returns λ(C_n). The walk eigenvalues are cos(2πj/n),
// j = 0..n-1. For even n the cycle is bipartite (λ_n = -1, so λ = 1);
// for odd n the largest modulus below 1 comes from the most negative
// eigenvalue cos(π(n-1)/n) = -cos(π/n), giving λ = cos(π/n).
func LambdaCycle(n int) float64 {
	if n%2 == 0 {
		return 1
	}
	return math.Cos(math.Pi / float64(n))
}

// LambdaHypercube returns λ(Q_d) = 1 - 2/d... with a subtlety: the walk
// eigenvalues are 1-2i/d for i=0..d, so λ_n = -1 (bipartite) and the
// absolute second eigenvalue is 1.
func LambdaHypercube(d int) float64 {
	return 1
}

// LambdaCompleteBipartite returns λ(K_{a,b}) = 1: the walk alternates
// sides, so -1 is an eigenvalue.
func LambdaCompleteBipartite(a, b int) float64 {
	return 1
}

// LambdaPath returns λ of the path P_n. The walk eigenvalues are
// cos(πj/(n-1)), j = 0..n-1, which include -1: the path is bipartite,
// so λ = 1 exactly. The paper's "λ = 1-O(1/n²)" for the path refers to
// the lazy/second eigenvalue λ₂, available as Lambda2Path.
func LambdaPath(n int) float64 {
	return 1
}

// Lambda2Path returns the second-largest (signed) walk eigenvalue of
// the path P_n, cos(π/(n-1)) = 1 - O(1/n²).
func Lambda2Path(n int) float64 {
	return math.Cos(math.Pi / float64(n-1))
}

// LambdaCirculant returns λ of the circulant graph C_n(strides): the
// adjacency eigenvalues are Σ_s 2cos(2πsj/n) (plus 1 if the antipodal
// stride n/2 is present, which contributes cos(πj) once), divided by
// the degree.
func LambdaCirculant(n int, strides []int) float64 {
	deg := 0
	for _, s := range strides {
		if 2*s == n {
			deg++
		} else {
			deg += 2
		}
	}
	lambda := 0.0
	for j := 1; j < n; j++ {
		sum := 0.0
		for _, s := range strides {
			c := math.Cos(2 * math.Pi * float64(s) * float64(j) / float64(n))
			if 2*s == n {
				sum += c
			} else {
				sum += 2 * c
			}
		}
		if v := math.Abs(sum / float64(deg)); v > lambda {
			lambda = v
		}
	}
	return lambda
}

// LambdaTorus returns λ of the rows×cols torus grid. The walk
// eigenvalues are (cos(2πa/rows) + cos(2πb/cols))/2 over frequency
// pairs (a, b); the largest nonzero one takes a single minimal-angle
// frequency, the most negative takes both half frequencies (exactly -1
// when both dimensions are even, i.e. the bipartite case).
func LambdaTorus(rows, cols int) float64 {
	r, c := float64(rows), float64(cols)
	long := r
	if c > long {
		long = c
	}
	pos := (1 + math.Cos(2*math.Pi/long)) / 2
	neg := (math.Cos(2*math.Pi*math.Floor(r/2)/r) + math.Cos(2*math.Pi*math.Floor(c/2)/c)) / 2
	return math.Max(pos, math.Abs(neg))
}

// LambdaRandomRegularBound returns the Friedman-style w.h.p. upper
// bound for random d-regular graphs, λ ≲ 2√(d-1)/d, i.e. O(1/√d)
// (paper's second example family; see [9, 23]).
func LambdaRandomRegularBound(d int) float64 {
	return 2 * math.Sqrt(float64(d-1)) / float64(d)
}

// LambdaGnpBound returns the w.h.p. upper bound (1+o(1))·2/√(np) for
// G(n,p) with np ≥ 2(1+o(1))log n (paper's third example family, [8]).
func LambdaGnpBound(n int, p float64) float64 {
	return 2 / math.Sqrt(float64(n)*p)
}

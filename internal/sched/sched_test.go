package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsAllTasks submits many tasks from outside the pool and
// checks every one runs exactly once.
func TestPoolRunsAllTasks(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 1000
	var ran [n]atomic.Int32
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.Submit(Task{Tag: Tag{Exp: "test", Trial: i}, Run: func(*Worker) {
			ran[i].Add(1)
			wg.Done()
		}})
	}
	wg.Wait()
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, got)
		}
	}
}

// TestWorkerSubmitExpansion mirrors the sweep pattern: one injected
// point task expands into trial tasks on the worker's local deque;
// with more trials than workers, all must still complete.
func TestWorkerSubmitExpansion(t *testing.T) {
	p := New(3)
	defer p.Close()
	const trials = 200
	var done atomic.Int32
	var wg sync.WaitGroup
	wg.Add(trials)
	p.Submit(Task{Tag: Tag{Exp: "expand"}, Run: func(w *Worker) {
		ts := make([]Task, trials)
		for i := range ts {
			ts[i] = Task{Tag: Tag{Exp: "expand", Trial: i}, Run: func(*Worker) {
				time.Sleep(100 * time.Microsecond)
				done.Add(1)
				wg.Done()
			}}
		}
		w.Submit(ts...)
	}})
	wg.Wait()
	if got := done.Load(); got != trials {
		t.Fatalf("completed %d trials, want %d", got, trials)
	}
}

// TestStealing verifies that tasks pushed onto one worker's deque get
// executed by other workers too: a single expansion of slow tasks on a
// 4-wide pool must involve more than one distinct worker.
func TestStealing(t *testing.T) {
	p := New(4)
	defer p.Close()
	const trials = 64
	var mu sync.Mutex
	seen := map[int]int{}
	var wg sync.WaitGroup
	wg.Add(trials)
	p.Submit(Task{Run: func(w *Worker) {
		ts := make([]Task, trials)
		for i := range ts {
			ts[i] = Task{Run: func(w *Worker) {
				time.Sleep(time.Millisecond)
				mu.Lock()
				seen[w.ID()]++
				mu.Unlock()
				wg.Done()
			}}
		}
		w.Submit(ts...)
	}})
	wg.Wait()
	if len(seen) < 2 {
		t.Fatalf("all %d trials ran on one worker: %v (stealing broken)", trials, seen)
	}
}

// TestWorkerLocal checks worker-local storage builds once per worker
// and returns the same value on reuse.
func TestWorkerLocal(t *testing.T) {
	p := New(2)
	defer p.Close()
	type key struct{}
	var builds atomic.Int32
	var wg sync.WaitGroup
	const tasks = 50
	wg.Add(tasks)
	var mismatch atomic.Int32
	for i := 0; i < tasks; i++ {
		p.Submit(Task{Run: func(w *Worker) {
			defer wg.Done()
			v1 := w.Local(key{}, func() any { builds.Add(1); return new(int) })
			v2 := w.Local(key{}, func() any { builds.Add(1); return new(int) })
			if v1 != v2 {
				mismatch.Add(1)
			}
		}})
	}
	wg.Wait()
	if mismatch.Load() != 0 {
		t.Fatal("Local returned different values for the same key on the same worker")
	}
	if b := builds.Load(); b < 1 || b > int64Width(p) {
		t.Fatalf("built %d locals, want between 1 and pool width %d", b, p.Width())
	}
}

func int64Width(p *Pool) int32 { return int32(p.Width()) }

// TestPanicRecovery: a panicking task must not kill its worker.
func TestPanicRecovery(t *testing.T) {
	p := New(1)
	defer p.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	p.Submit(Task{Run: func(*Worker) { defer wg.Done(); panic("boom") }})
	wg.Wait()
	// The single worker must still be alive to run this.
	wg.Add(1)
	ok := false
	p.Submit(Task{Run: func(*Worker) { ok = true; wg.Done() }})
	wg.Wait()
	if !ok {
		t.Fatal("worker died after task panic")
	}
}

// TestBusyNanos: busy time accumulates roughly the slept duration.
func TestBusyNanos(t *testing.T) {
	p := New(2)
	defer p.Close()
	var wg sync.WaitGroup
	wg.Add(4)
	for i := 0; i < 4; i++ {
		p.Submit(Task{Run: func(*Worker) { time.Sleep(5 * time.Millisecond); wg.Done() }})
	}
	wg.Wait()
	if got := p.BusyNanos(); got < (15 * time.Millisecond).Nanoseconds() {
		t.Fatalf("BusyNanos = %d, want >= 15ms of work", got)
	}
}

// TestSharedReturnsSamePool: same width → same pool; width 0 resolves
// to GOMAXPROCS.
func TestSharedReturnsSamePool(t *testing.T) {
	a := Shared(2)
	b := Shared(2)
	if a != b {
		t.Fatal("Shared(2) returned two distinct pools")
	}
	if got := Shared(0).Width(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Shared(0).Width() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestCloseIdempotentDrain: Close returns even when workers are parked.
func TestCloseIdempotentDrain(t *testing.T) {
	p := New(4)
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with parked workers")
	}
}

// TestStressSubmitWhileRunning hammers concurrent external submission
// and local expansion; meant to run under -race.
func TestStressSubmitWhileRunning(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	const outer = 40
	for o := 0; o < outer; o++ {
		wg.Add(1)
		p.Submit(Task{Run: func(w *Worker) {
			const inner = 25
			wg.Add(inner)
			ts := make([]Task, inner)
			for i := range ts {
				ts[i] = Task{Run: func(*Worker) { total.Add(1); wg.Done() }}
			}
			w.Submit(ts...)
			total.Add(1)
			wg.Done()
		}})
	}
	wg.Wait()
	if got := total.Load(); got != outer*26 {
		t.Fatalf("ran %d tasks, want %d", got, outer*26)
	}
}

// Package sched is the suite-level work-stealing scheduler: a global
// pool of worker goroutines, each owning a deque of tasks, with idle
// workers stealing from busy ones. Experiments submit work at *trial*
// granularity (tagged experiment/point/trial), so long-tail grid
// points no longer serialize the suite behind per-point barriers —
// trials from one experiment's big point overlap with every other
// experiment's work until the hardware is saturated.
//
// Scheduling never affects results: trial seeds are derived from
// (point, trial) and results are written into index-addressed slots,
// so any interleaving of workers produces byte-identical output (the
// exp package's determinism regression test enforces this).
//
// The pool exports its behaviour through obs.Default:
//
//	sched_tasks_total       tasks executed
//	sched_steals_total      tasks taken from another worker's deque
//	sched_injects_total     tasks submitted from outside the pool
//	sched_parks_total       times a worker went to sleep empty-handed
//	sched_busy_nanos_total  Σ task wall time (utilization numerator)
//	sched_pool_width        workers in the most recently created pool
//	sched_task_nanos        task latency histogram (log₂ buckets)
//	sched_steal_nanos       own-deque miss → successful steal latency
//	sched_park_nanos        time actually spent parked per sleep
//	sched_queue_depth       live queued-not-running tasks across the
//	                        shared pools (callback gauge, evaluated at
//	                        scrape/snapshot time)
//
// Hot-path counter updates use the worker's ID as an obs shard hint,
// and the submission barrier (notify) is lock-free when no worker is
// parked, so per-task bookkeeping never serializes a wide pool on a
// mutex or a single cache line.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"div/internal/obs"
)

var (
	tasksTotal   = obs.Default.Counter("sched_tasks_total")
	stealsTotal  = obs.Default.Counter("sched_steals_total")
	injectsTotal = obs.Default.Counter("sched_injects_total")
	parksTotal   = obs.Default.Counter("sched_parks_total")
	busyNanos    = obs.Default.Counter("sched_busy_nanos_total")
	widthGauge   = obs.Default.Gauge("sched_pool_width")

	// Latency histograms (log₂ nanosecond buckets). Task latency is
	// observed once per task in the worker loop — the loop already
	// takes the two time.Now() readings for busy accounting, so the
	// histogram adds only the Observe. Steal latency covers the search
	// from a worker's own-deque miss to a successful steal; park
	// latency is the time a worker actually slept. None of these touch
	// the own-deque fast path.
	taskNanos  = obs.Default.Histogram("sched_task_nanos")
	stealNanos = obs.Default.Histogram("sched_steal_nanos")
	parkNanos  = obs.Default.Histogram("sched_park_nanos")
)

func init() {
	// Live queue depth across the shared pools: pending injector
	// submissions plus every worker deque's backlog. Evaluated only at
	// snapshot/scrape time, so maintaining it costs the hot paths
	// nothing.
	obs.Default.GaugeFunc("sched_queue_depth", func() int64 {
		sharedMu.Lock()
		defer sharedMu.Unlock()
		var depth int64
		for _, p := range sharedPools {
			depth += p.QueueDepth()
		}
		return depth
	})
}

// Tag identifies a task for diagnostics: which experiment submitted
// it, which sweep point it belongs to, and its trial index. Span is
// the number of consecutive trials the task covers starting at Trial
// (0 or 1 for single-trial tasks; > 1 for the blocked kernel's span
// tasks, which step several trials of one point in lockstep).
type Tag struct {
	Exp   string
	Point int
	Trial int
	Span  int
}

// Task is one unit of work. Run receives the worker executing it, for
// access to worker-local storage and local (stealable) submission.
// Run must not panic: the pool recovers to keep the worker alive, but
// it cannot complete whatever bookkeeping the task owed its submitter
// — wrap trial bodies with their own recovery (sim.Instrumented does).
type Task struct {
	Tag Tag
	Run func(w *Worker)
}

// deque is a growable ring buffer owned by one worker: the owner
// pushes and pops at the tail (LIFO, so a worker finishes its newest
// point before moving on), thieves steal from the head (FIFO, so the
// oldest — typically longest-queued — work migrates first). A mutex
// is fine at trial granularity: tasks run for micro- to milliseconds,
// the lock for nanoseconds.
type deque struct {
	mu   sync.Mutex
	buf  []Task
	head int // index of oldest element
	n    int // number of elements
}

func (d *deque) push(ts ...Task) {
	d.mu.Lock()
	if d.n+len(ts) > len(d.buf) {
		size := len(d.buf) * 2
		if size < d.n+len(ts) {
			size = d.n + len(ts)
		}
		if size < 8 {
			size = 8
		}
		nb := make([]Task, size)
		for i := 0; i < d.n; i++ {
			nb[i] = d.buf[(d.head+i)%len(d.buf)]
		}
		d.buf, d.head = nb, 0
	}
	for _, t := range ts {
		d.buf[(d.head+d.n)%len(d.buf)] = t
		d.n++
	}
	d.mu.Unlock()
}

// pop removes the newest task (owner side).
func (d *deque) pop() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return Task{}, false
	}
	d.n--
	i := (d.head + d.n) % len(d.buf)
	t := d.buf[i]
	d.buf[i] = Task{}
	return t, true
}

// size returns the number of queued tasks (any side).
func (d *deque) size() int {
	d.mu.Lock()
	n := d.n
	d.mu.Unlock()
	return n
}

// steal removes the oldest task (thief side).
func (d *deque) steal() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return Task{}, false
	}
	t := d.buf[d.head]
	d.buf[d.head] = Task{}
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return t, true
}

// Worker is one pool goroutine. Its methods must only be called from
// the task currently running on it.
type Worker struct {
	pool   *Pool
	id     int
	dq     deque
	locals map[any]any
	busy   atomic.Int64 // Σ task wall nanos; written only by the owner
}

// Submit pushes tasks onto this worker's own deque, where they run
// LIFO unless stolen. A point-granularity task uses this to expand
// into its trial tasks: the expanding worker keeps cache/scratch
// affinity with the point while idle workers steal the tail.
func (w *Worker) Submit(ts ...Task) {
	if len(ts) == 0 {
		return
	}
	w.dq.push(ts...)
	w.pool.notify(len(ts))
}

// Local returns the worker-local value under key, building it on
// first use. Only the worker's own goroutine touches the map, so no
// locking is needed. This is the hook for per-worker reusable state
// (the exp package keeps per-graph core.Scratch arenas here).
func (w *Worker) Local(key any, build func() any) any {
	if v, ok := w.locals[key]; ok {
		return v
	}
	v := build()
	w.locals[key] = v
	return v
}

// ID returns the worker's index in [0, pool width).
func (w *Worker) ID() int { return w.id }

// Pool is a fixed-width work-stealing worker pool.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inject   []Task // FIFO submissions from outside the pool
	injHead  int
	sleeping int // workers parked on cond; guarded by mu

	// version is bumped (atomically, outside the mutex) on every
	// submission; a parking worker re-reads it under the mutex after a
	// fruitless scan, which closes the race between scanning and
	// sleeping without making submitters take the lock.
	version atomic.Uint64
	// sleepers mirrors sleeping so notify can skip the mutex entirely
	// when nobody is parked — the common case while the pool is busy,
	// and previously the dominant contention point: every worker-local
	// Submit serialized on the pool mutex just to discover there was
	// nobody to wake.
	sleepers atomic.Int32
	// injLen mirrors the injector backlog so idle workers scanning for
	// work skip the mutex when there is nothing to pop.
	injLen atomic.Int64
	closed atomic.Bool

	workers []*Worker
	wg      sync.WaitGroup
}

// New starts a pool of the given width (≤ 0 means GOMAXPROCS).
func New(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.workers = make([]*Worker, width)
	for i := range p.workers {
		p.workers[i] = &Worker{pool: p, id: i, locals: make(map[any]any)}
	}
	widthGauge.Set(int64(width))
	p.wg.Add(width)
	for _, w := range p.workers {
		go w.loop()
	}
	return p
}

// Width returns the number of workers.
func (p *Pool) Width() int { return len(p.workers) }

// BusyNanos returns the cumulative wall time workers have spent
// executing tasks. Utilization over a window of wall-clock length W is
// Δbusy / (W · Width()).
func (p *Pool) BusyNanos() int64 {
	var s int64
	for _, w := range p.workers {
		s += w.busy.Load()
	}
	return s
}

// QueueDepth returns the number of tasks queued but not yet running:
// the injector backlog plus every worker deque's length. It is a
// diagnostic read (each deque is locked briefly, one at a time), used
// by the sched_queue_depth callback gauge at scrape time.
func (p *Pool) QueueDepth() int64 {
	depth := p.injLen.Load()
	for _, w := range p.workers {
		depth += int64(w.dq.size())
	}
	return depth
}

// Submit enqueues tasks from outside the pool (experiment goroutines).
// Safe for concurrent use. Submitting to a closed pool panics.
func (p *Pool) Submit(ts ...Task) {
	if len(ts) == 0 {
		return
	}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		panic("sched: Submit on closed pool")
	}
	p.inject = append(p.inject, ts...)
	p.injLen.Add(int64(len(ts)))
	injectsTotal.Add(int64(len(ts)))
	p.version.Add(1)
	p.wakeLocked(len(ts))
	p.mu.Unlock()
}

// notify is the submission barrier for worker-local pushes: it bumps
// the version (so a parking worker rescans instead of sleeping) and
// wakes sleepers. The fast path — nobody parked — is a single atomic
// add plus an atomic load; the mutex is taken only when a sleeper must
// actually be signalled.
func (p *Pool) notify(k int) {
	p.version.Add(1)
	if p.sleepers.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.wakeLocked(k)
	p.mu.Unlock()
}

// wakeLocked signals up to k sleepers (all of them when k covers the
// whole set). Callers must hold p.mu.
func (p *Pool) wakeLocked(k int) {
	for i := 0; i < k && i < p.sleeping; i++ {
		p.cond.Signal()
	}
	if k >= p.sleeping {
		p.cond.Broadcast()
	}
}

func (p *Pool) popInjectLocked() (Task, bool) {
	if p.injHead >= len(p.inject) {
		if len(p.inject) > 0 {
			p.inject = p.inject[:0]
			p.injHead = 0
		}
		return Task{}, false
	}
	t := p.inject[p.injHead]
	p.inject[p.injHead] = Task{}
	p.injHead++
	p.injLen.Add(-1)
	return t, true
}

// Close shuts the pool down. Pending tasks are abandoned, so only
// close after every submitted sweep has completed. Close blocks until
// all workers exit; a closed pool must not be reused.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed.Store(true)
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func (w *Worker) loop() {
	defer w.pool.wg.Done()
	for {
		t, ok := w.next()
		if !ok {
			return
		}
		start := time.Now()
		w.run(t)
		el := time.Since(start).Nanoseconds()
		w.busy.Add(el)
		busyNanos.AddShard(w.id, el)
		tasksTotal.IncShard(w.id)
		taskNanos.Observe(el)
	}
}

// run executes one task, recovering panics so a single bad task
// cannot take down the worker (and with it, the whole suite).
func (w *Worker) run(t Task) {
	defer func() {
		if r := recover(); r != nil {
			obs.Default.Counter("sched_task_panics_total").Inc()
		}
	}()
	t.Run(w)
}

// next finds the next task: own deque, then the injector, then a
// steal sweep over the other workers, then park. The version is read
// before any emptiness check and re-read under the mutex before
// sleeping, which closes the race between a fruitless scan and going
// to sleep: any submission after the first read bumps the version and
// the worker rescans instead of parking. The injector is only locked
// when its atomic backlog mirror says there is something to pop, so an
// idle scan with no injected work touches no mutex at all.
func (w *Worker) next() (Task, bool) {
	if t, ok := w.dq.pop(); ok {
		return t, true
	}
	p := w.pool
	// searchStart anchors the steal-latency measurement: the worker's
	// own deque is dry, so everything from here to a successful steal
	// is time the task spent waiting on work distribution. The
	// own-deque pop above stays free of timestamp reads.
	searchStart := time.Now()
	for {
		v0 := p.version.Load()
		if p.injLen.Load() > 0 {
			p.mu.Lock()
			t, ok := p.popInjectLocked()
			p.mu.Unlock()
			if ok {
				return t, true
			}
		}
		if p.closed.Load() {
			return Task{}, false
		}
		for off := 1; off < len(p.workers); off++ {
			victim := p.workers[(w.id+off)%len(p.workers)]
			if t, ok := victim.dq.steal(); ok {
				stealsTotal.IncShard(w.id)
				stealNanos.Observe(time.Since(searchStart).Nanoseconds())
				return t, true
			}
		}
		p.mu.Lock()
		if p.closed.Load() {
			p.mu.Unlock()
			return Task{}, false
		}
		if p.version.Load() == v0 {
			p.sleeping++
			p.sleepers.Store(int32(p.sleeping))
			parksTotal.IncShard(w.id)
			parkStart := time.Now()
			p.cond.Wait()
			parkNanos.Observe(time.Since(parkStart).Nanoseconds())
			p.sleeping--
			p.sleepers.Store(int32(p.sleeping))
		}
		p.mu.Unlock()
	}
}

// shared pools, one per width: every experiment asking for the same
// parallelism shares a pool, which is what lets trials from different
// experiments overlap.
var (
	sharedMu    sync.Mutex
	sharedPools = map[int]*Pool{}
)

// Shared returns the process-wide pool of the given width (≤ 0 means
// GOMAXPROCS), creating it on first use. Shared pools are never
// closed.
func Shared(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	p, ok := sharedPools[width]
	if !ok {
		p = New(width)
		sharedPools[width] = p
	}
	return p
}

package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests are the concurrency battery for the pool's parking path
// and lock-free submission barrier. They are written to be run under
// -race (the CI race matrix runs them at GOMAXPROCS 2 and 4): the
// assertions are "no task lost, clean drain", and the race detector
// checks the atomic version/sleepers/injLen mirrors really synchronize
// with the mutex-guarded state they shadow.

// drained reports whether the pool has no queued work left anywhere:
// the injector is empty and every worker deque is empty.
func drained(p *Pool) bool {
	if p.injLen.Load() != 0 {
		return false
	}
	p.mu.Lock()
	inj := len(p.inject) - p.injHead
	p.mu.Unlock()
	if inj > 0 {
		return false
	}
	for _, w := range p.workers {
		w.dq.mu.Lock()
		n := w.dq.n
		w.dq.mu.Unlock()
		if n > 0 {
			return false
		}
	}
	return true
}

// TestStressBurstyInjection drives the pool with several submitter
// goroutines that alternate bursts of external Submits with idle gaps
// long enough for workers to park — so every burst exercises the
// park/wake handoff, not just the busy-pool fast path. Every task must
// run exactly once and the pool must drain clean.
func TestStressBurstyInjection(t *testing.T) {
	p := New(4)
	defer p.Close()
	const submitters = 4
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	const burst = 50
	total := submitters * rounds * burst
	ran := make([]atomic.Int32, total)
	var wg sync.WaitGroup
	wg.Add(total)
	var sub sync.WaitGroup
	for s := 0; s < submitters; s++ {
		sub.Add(1)
		go func(s int) {
			defer sub.Done()
			r := rand.New(rand.NewSource(int64(s)))
			for round := 0; round < rounds; round++ {
				ts := make([]Task, burst)
				for i := range ts {
					id := s*rounds*burst + round*burst + i
					ts[i] = Task{Tag: Tag{Exp: "burst", Trial: id}, Run: func(*Worker) {
						ran[id].Add(1)
						wg.Done()
					}}
				}
				p.Submit(ts...)
				// Gap long enough for the pool to go fully idle and park.
				time.Sleep(time.Duration(100+r.Intn(400)) * time.Microsecond)
			}
		}(s)
	}
	sub.Wait()
	wg.Wait()
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times, want exactly 1", i, got)
		}
	}
	if !drained(p) {
		t.Fatal("pool not drained after all tasks completed")
	}
}

// TestStressStealStorm piles a large expansion onto a single worker's
// deque while every other worker is idle, so the whole pool descends
// on one deque at once. All tasks must complete, work must actually
// migrate off the owner, and the pool must drain clean.
func TestStressStealStorm(t *testing.T) {
	p := New(8)
	defer p.Close()
	tasks := 800
	if testing.Short() {
		tasks = 200
	}
	steals0 := stealsTotal.Value()
	var ran atomic.Int64
	var mu sync.Mutex
	seen := map[int]int{}
	var wg sync.WaitGroup
	wg.Add(tasks)
	p.Submit(Task{Tag: Tag{Exp: "storm"}, Run: func(w *Worker) {
		ts := make([]Task, tasks)
		for i := range ts {
			ts[i] = Task{Tag: Tag{Exp: "storm", Trial: i}, Run: func(w *Worker) {
				time.Sleep(50 * time.Microsecond) // yield so thieves get a turn
				ran.Add(1)
				mu.Lock()
				seen[w.ID()]++
				mu.Unlock()
				wg.Done()
			}}
		}
		w.Submit(ts...)
	}})
	wg.Wait()
	if got := ran.Load(); got != int64(tasks) {
		t.Fatalf("ran %d tasks, want %d", got, tasks)
	}
	if len(seen) < 2 {
		t.Fatalf("steal storm stayed on one worker: %v", seen)
	}
	if d := stealsTotal.Value() - steals0; d == 0 {
		t.Error("no steals recorded during a steal storm")
	}
	if !drained(p) {
		t.Fatal("pool not drained after steal storm")
	}
}

// TestStressParkUnparkChurn forces maximal churn through the
// version-counter wakeup: single tasks arrive with gaps that let all
// workers park between arrivals, and each task locally expands one
// follow-up (exercising notify's with-sleepers slow path while the
// rest of the pool sleeps). Parks must actually happen, and no task
// may be lost across thousands of park/unpark transitions.
func TestStressParkUnparkChurn(t *testing.T) {
	p := New(4)
	defer p.Close()
	rounds := 300
	if testing.Short() {
		rounds = 60
	}
	parks0 := parksTotal.Value()
	var ran atomic.Int64
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		wg.Add(2)
		p.Submit(Task{Tag: Tag{Exp: "churn", Trial: round}, Run: func(w *Worker) {
			ran.Add(1)
			// Local expansion while siblings are (likely) parked: the
			// notify must wake one of them or run it here — either way
			// it must not be lost.
			w.Submit(Task{Tag: Tag{Exp: "churn-child", Trial: round}, Run: func(*Worker) {
				ran.Add(1)
				wg.Done()
			}})
			wg.Done()
		}})
		wg.Wait()
		if round%8 == 0 {
			// Let the pool go fully idle so the next round starts from
			// parked workers.
			time.Sleep(300 * time.Microsecond)
		}
	}
	if got := ran.Load(); got != int64(2*rounds) {
		t.Fatalf("ran %d tasks, want %d", got, 2*rounds)
	}
	if d := parksTotal.Value() - parks0; d == 0 {
		t.Error("no parks recorded during park/unpark churn")
	}
	if !drained(p) {
		t.Fatal("pool not drained after churn")
	}
}

// TestStressMixedSubmitSteal combines all three pressures at once:
// external bursts, local expansions, and idle thieves, with enough
// tasks that any lost-wakeup or lost-task bug has room to show up.
func TestStressMixedSubmitSteal(t *testing.T) {
	p := New(6)
	defer p.Close()
	outer := 120
	if testing.Short() {
		outer = 30
	}
	const inner = 16
	var ran atomic.Int64
	var wg sync.WaitGroup
	for o := 0; o < outer; o++ {
		wg.Add(1)
		p.Submit(Task{Tag: Tag{Exp: "mixed", Point: o}, Run: func(w *Worker) {
			wg.Add(inner)
			ts := make([]Task, inner)
			for i := range ts {
				ts[i] = Task{Tag: Tag{Exp: "mixed", Trial: i}, Run: func(*Worker) {
					if i%4 == 0 {
						time.Sleep(20 * time.Microsecond)
					}
					ran.Add(1)
					wg.Done()
				}}
			}
			w.Submit(ts...)
			ran.Add(1)
			wg.Done()
		}})
		if o%16 == 0 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	wg.Wait()
	if got := ran.Load(); got != int64(outer*(inner+1)) {
		t.Fatalf("ran %d tasks, want %d", got, outer*(inner+1))
	}
	if !drained(p) {
		t.Fatal("pool not drained after mixed stress")
	}
}

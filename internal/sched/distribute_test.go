package sched

import (
	"sync/atomic"
	"testing"
)

// TestDistributeCoversRange checks every element is visited exactly
// once, across widths, grain sizes, and awkward range/grain ratios.
func TestDistributeCoversRange(t *testing.T) {
	for _, width := range []int{1, 2, 4, 8} {
		p := New(width)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 64, 1024} {
				hits := make([]int32, n)
				Distribute(p, n, grain, Tag{Exp: "test"}, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("width=%d n=%d grain=%d: bad chunk [%d,%d)", width, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("width=%d n=%d grain=%d: element %d visited %d times", width, n, grain, i, h)
					}
				}
			}
		}
		p.Close()
	}
}

// TestDistributeNilPool runs inline without a pool.
func TestDistributeNilPool(t *testing.T) {
	var sum int
	Distribute(nil, 100, 7, Tag{}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

// TestDistributeFromWorker nests a Distribute inside a task running on
// the same pool — the cold-cache-build-from-a-trial-task shape. The
// caller-participation design must complete it even at width 1, where
// no second worker can ever pick up the helpers.
func TestDistributeFromWorker(t *testing.T) {
	for _, width := range []int{1, 2} {
		p := New(width)
		done := make(chan int64, 1)
		p.Submit(Task{Tag: Tag{Exp: "outer"}, Run: func(*Worker) {
			var sum atomic.Int64
			Distribute(p, 500, 16, Tag{Exp: "inner"}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sum.Add(int64(i))
				}
			})
			done <- sum.Load()
		}})
		if got := <-done; got != 500*499/2 {
			t.Fatalf("width=%d: nested sum = %d, want %d", width, got, 500*499/2)
		}
		p.Close()
	}
}

// TestDistributeChunkBoundariesDeterministic pins that chunk
// boundaries depend only on (n, grain), not on width — builders derive
// per-chunk state from lo, so this is what makes their output
// width-independent.
func TestDistributeChunkBoundariesDeterministic(t *testing.T) {
	collect := func(p *Pool) map[int]int {
		bounds := make(map[int]int)
		ch := make(chan [2]int, 64)
		Distribute(p, 1000, 96, Tag{}, func(lo, hi int) { ch <- [2]int{lo, hi} })
		close(ch)
		for b := range ch {
			bounds[b[0]] = b[1]
		}
		return bounds
	}
	p1 := New(1)
	p4 := New(4)
	b1, b4 := collect(p1), collect(p4)
	p1.Close()
	p4.Close()
	if len(b1) != len(b4) {
		t.Fatalf("chunk counts differ: %d vs %d", len(b1), len(b4))
	}
	for lo, hi := range b1 {
		if b4[lo] != hi {
			t.Fatalf("chunk at %d: width1 hi=%d width4 hi=%d", lo, hi, b4[lo])
		}
	}
}

package sched

import "sync"
import "sync/atomic"

// Distribute is a caller-participating parallel-for over [0, n): it
// splits the range into chunks of at most grain elements, claims them
// off a shared atomic cursor, and returns once every fn(lo, hi) call
// has completed. The calling goroutine is always one of the executors,
// and helper tasks are submitted to the pool only as accelerators, so
// Distribute is deadlock-free at any pool width and from any calling
// context — including from inside a task already running on the same
// pool (a cold graph-cache build triggered by a trial task does exactly
// that). Helpers that reach the cursor after the range is drained
// return without side effects, so completion never waits on pool
// scheduling — only on the chunks actually being processed.
//
// fn must be safe for concurrent invocation on disjoint ranges. Chunk
// boundaries are a pure function of (n, grain), so any per-chunk
// state a caller derives from lo is identical at every width.
//
// A nil pool, a single-chunk range, or a width-1 pool with nothing to
// overlap runs entirely inline on the caller.
func Distribute(p *Pool, n, grain int, tag Tag, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if p == nil || chunks == 1 {
		fn(0, n)
		return
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(chunks)
	body := func() {
		for {
			i := int(cursor.Add(1) - 1)
			if i >= chunks {
				return
			}
			lo := i * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			func() {
				// The Done is deferred so a panicking fn (recovered by
				// the worker loop) cannot strand the caller in Wait.
				defer wg.Done()
				fn(lo, hi)
			}()
		}
	}

	helpers := p.Width()
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	if helpers > 0 {
		ts := make([]Task, helpers)
		for i := range ts {
			ts[i] = Task{Tag: tag, Run: func(*Worker) { body() }}
		}
		p.Submit(ts...)
	}
	body()
	wg.Wait()
}

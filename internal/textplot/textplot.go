// Package textplot renders small ASCII plots so the benchmark harness
// can regenerate the paper's "figures" directly in the terminal:
// scatter/line plots for scaling curves and sparklines for
// trajectories.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Plot is a fixed-size character canvas with data-space axes.
type Plot struct {
	Width, Height int
	Title         string
	XLabel        string
	YLabel        string
	// LogX / LogY plot the corresponding axis on a log10 scale
	// (points must then be positive on that axis).
	LogX, LogY bool

	series []series
}

type series struct {
	marker byte
	xs, ys []float64
}

// New returns a plot canvas of the given size (minimum 16×4).
func New(width, height int) *Plot {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	return &Plot{Width: width, Height: height}
}

// Add appends a data series drawn with the given marker character.
func (p *Plot) Add(marker byte, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("textplot: series length mismatch %d vs %d", len(xs), len(ys))
	}
	p.series = append(p.series, series{marker: marker, xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)})
	return nil
}

func (p *Plot) transform(x, y float64) (float64, float64, bool) {
	if p.LogX {
		if x <= 0 {
			return 0, 0, false
		}
		x = math.Log10(x)
	}
	if p.LogY {
		if y <= 0 {
			return 0, 0, false
		}
		y = math.Log10(y)
	}
	return x, y, true
}

// Render draws the canvas with axis annotations.
func (p *Plot) Render() string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	type pt struct {
		x, y   float64
		marker byte
	}
	var pts []pt
	for _, s := range p.series {
		for i := range s.xs {
			x, y, ok := p.transform(s.xs[i], s.ys[i])
			if !ok || math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			pts = append(pts, pt{x, y, s.marker})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	if len(pts) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, p.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.Width))
	}
	for _, q := range pts {
		col := int((q.x - minX) / (maxX - minX) * float64(p.Width-1))
		row := p.Height - 1 - int((q.y-minY)/(maxY-minY)*float64(p.Height-1))
		grid[row][col] = q.marker
	}
	yLo, yHi := p.axisLabel(minY, p.LogY), p.axisLabel(maxY, p.LogY)
	labelW := len(yLo)
	if len(yHi) > labelW {
		labelW = len(yHi)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = pad(yHi, labelW)
		case p.Height - 1:
			label = pad(yLo, labelW)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(line))
	}
	xLo, xHi := p.axisLabel(minX, p.LogX), p.axisLabel(maxX, p.LogX)
	fmt.Fprintf(&b, "%s  %s%s%s\n",
		strings.Repeat(" ", labelW), xLo,
		strings.Repeat(" ", max(1, p.Width-len(xLo)-len(xHi))), xHi)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelW), p.XLabel, p.YLabel)
	}
	return b.String()
}

func (p *Plot) axisLabel(v float64, logged bool) string {
	if logged {
		v = math.Pow(10, v)
	}
	return fmt.Sprintf("%.3g", v)
}

func pad(s string, w int) string {
	for len(s) < w {
		s = " " + s
	}
	return s
}

// Sparkline renders xs as a one-line bar profile using eighth-block
// characters, for compact trajectory summaries.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := xs[0], xs[0]
	for _, x := range xs {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if max > min {
			i = int((x - min) / (max - min) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[i])
	}
	return b.String()
}

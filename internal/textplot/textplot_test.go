package textplot

import (
	"strings"
	"testing"
)

func TestPlotRenderBasic(t *testing.T) {
	p := New(40, 8)
	p.Title = "demo"
	if err := p.Add('*', []float64{1, 2, 3}, []float64{1, 4, 9}); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if strings.Count(out, "*") != 3 {
		t.Errorf("want 3 markers, got %d in:\n%s", strings.Count(out, "*"), out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := New(20, 5)
	if out := p.Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty plot rendered %q", out)
	}
}

func TestPlotLogAxesSkipNonPositive(t *testing.T) {
	p := New(30, 6)
	p.LogX, p.LogY = true, true
	if err := p.Add('o', []float64{0, 10, 100}, []float64{-1, 10, 100}); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if strings.Count(out, "o") != 2 {
		t.Errorf("want 2 markers after filtering, got:\n%s", out)
	}
}

func TestPlotLengthMismatch(t *testing.T) {
	p := New(20, 5)
	if err := p.Add('x', []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPlotMinimumSize(t *testing.T) {
	p := New(1, 1)
	if p.Width < 16 || p.Height < 4 {
		t.Errorf("minimum size not enforced: %dx%d", p.Width, p.Height)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := New(20, 5)
	if err := p.Add('#', []float64{1, 2}, []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if strings.Count(out, "#") == 0 {
		t.Errorf("constant series lost:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline not empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline %q has wrong length", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	flat := []rune(Sparkline([]float64{2, 2, 2}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline = %q", string(flat))
		}
	}
}

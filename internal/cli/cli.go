// Package cli holds shared plumbing for the command-line tools: a
// compact graph-specification mini-language and rule lookup, so
// cmd/divsim, cmd/divbench and cmd/graphinfo stay thin.
package cli

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"div/internal/baseline"
	"div/internal/core"
	"div/internal/graph"
)

// ParseGraph builds a graph from a spec string:
//
//	complete:N          path:N            cycle:N
//	star:N              hypercube:D       torus:R,C
//	grid:R,C            binarytree:N      barbell:C,P
//	regular:N,D         gnp:N,P           ws:N,D,BETA
//	ba:N,M              circulant:N,S1+S2+...
//
// Random families are seed-keyed — the built graph is a pure function
// of (spec, seed), independent of machine width — and retry until
// connected where applicable. Construction stripes over all cores; use
// ParseGraphOpts to control build parallelism.
func ParseGraph(spec string, seed uint64) (*graph.Graph, error) {
	return ParseGraphOpts(spec, seed, graph.BuildOpts{Workers: runtime.GOMAXPROCS(0)})
}

// ParseGraphOpts is ParseGraph with an explicit assembler
// configuration for the random families (worker count, stats capture).
// Deterministic families ignore opts.
func ParseGraphOpts(spec string, seed uint64, opts graph.BuildOpts) (*graph.Graph, error) {
	name, argStr, _ := strings.Cut(spec, ":")
	args := strings.Split(argStr, ",")
	argInt := func(i int) (int, error) {
		if i >= len(args) || args[i] == "" {
			return 0, fmt.Errorf("cli: %s needs argument %d", name, i+1)
		}
		return strconv.Atoi(strings.TrimSpace(args[i]))
	}
	argFloat := func(i int) (float64, error) {
		if i >= len(args) || args[i] == "" {
			return 0, fmt.Errorf("cli: %s needs argument %d", name, i+1)
		}
		return strconv.ParseFloat(strings.TrimSpace(args[i]), 64)
	}
	switch strings.ToLower(name) {
	case "complete":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return graph.Complete(n), nil
	case "path":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return graph.Path(n), nil
	case "cycle":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return graph.Cycle(n), nil
	case "star":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return graph.Star(n), nil
	case "hypercube":
		d, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return graph.Hypercube(d), nil
	case "torus":
		rows, err := argInt(0)
		if err != nil {
			return nil, err
		}
		cols, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return graph.Torus(rows, cols), nil
	case "grid":
		rows, err := argInt(0)
		if err != nil {
			return nil, err
		}
		cols, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return graph.Grid(rows, cols), nil
	case "binarytree":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return graph.BinaryTree(n), nil
	case "barbell":
		c, err := argInt(0)
		if err != nil {
			return nil, err
		}
		p, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return graph.Barbell(c, p), nil
	case "regular":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		d, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return graph.RandomRegularSeeded(n, d, seed, opts)
	case "gnp":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		p, err := argFloat(1)
		if err != nil {
			return nil, err
		}
		return graph.ConnectedGnpSeeded(n, p, seed, 200, opts)
	case "ws":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		d, err := argInt(1)
		if err != nil {
			return nil, err
		}
		beta, err := argFloat(2)
		if err != nil {
			return nil, err
		}
		return graph.WattsStrogatzSeeded(n, d, beta, seed, opts)
	case "ba":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		m, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return graph.BarabasiAlbertSeeded(n, m, seed, opts)
	case "circulant":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("cli: circulant needs strides, e.g. circulant:12,1+2")
		}
		strides, err := parseStrides(args[1])
		if err != nil {
			return nil, err
		}
		return graph.Circulant(n, strides), nil
	default:
		return nil, fmt.Errorf("cli: unknown graph family %q (try complete:N, regular:N,D, gnp:N,P, …)", name)
	}
}

// parseStrides splits a "+"-separated circulant connection set.
func parseStrides(arg string) ([]int, error) {
	var strides []int
	for _, s := range strings.Split(arg, "+") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("cli: circulant stride %q: %w", s, err)
		}
		strides = append(strides, v)
	}
	return strides, nil
}

// ParseTopology builds an O(1)-state implicit topology from a spec
// string, for runs too large to materialize:
//
//	complete:N          cycle:N           path:N
//	torus:R,C           hypercube:D       circulant:N,S1+S2+...
//	hashedregular:N,D
//
// The families mirror ParseGraph's syntax, so a spec that works with
// -graph works unchanged when routed through the implicit path. The
// hashedregular family is seed-keyed: the same (N, D, seed) names the
// same pseudorandom d-regular multigraph on every call.
func ParseTopology(spec string, seed uint64) (graph.Topology, error) {
	name, argStr, _ := strings.Cut(spec, ":")
	args := strings.Split(argStr, ",")
	argInt := func(i int) (int, error) {
		if i >= len(args) || args[i] == "" {
			return 0, fmt.Errorf("cli: %s needs argument %d", name, i+1)
		}
		return strconv.Atoi(strings.TrimSpace(args[i]))
	}

	switch strings.ToLower(name) {
	case "complete":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return graph.NewImplicitComplete(n)
	case "cycle":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return graph.NewImplicitCycle(n)
	case "path":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return graph.NewImplicitPath(n)
	case "torus":
		rows, err := argInt(0)
		if err != nil {
			return nil, err
		}
		cols, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return graph.NewImplicitTorus(rows, cols)
	case "hypercube":
		d, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return graph.NewImplicitHypercube(d)
	case "circulant":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("cli: circulant needs strides, e.g. circulant:12,1+2")
		}
		strides, err := parseStrides(args[1])
		if err != nil {
			return nil, err
		}
		return graph.NewImplicitCirculant(n, strides)
	case "hashedregular":
		n, err := argInt(0)
		if err != nil {
			return nil, err
		}
		d, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return graph.NewHashedRegular(n, d, seed)
	default:
		return nil, fmt.Errorf("cli: no implicit backend for graph family %q (try complete:N, cycle:N, path:N, torus:R,C, hypercube:D, circulant:N,S1+S2+…, hashedregular:N,D)", name)
	}
}

// ParseRule returns the update rule named by s.
func ParseRule(s string) (core.Rule, error) {
	switch strings.ToLower(s) {
	case "div", "":
		return core.DIV{}, nil
	case "pull":
		return baseline.Pull{}, nil
	case "median":
		return baseline.Median{}, nil
	case "loadbalance", "lb":
		return baseline.LoadBalance{}, nil
	default:
		if rest, ok := strings.CutPrefix(strings.ToLower(s), "bestof"); ok {
			k, err := strconv.Atoi(rest)
			if err != nil || k < 1 {
				return nil, fmt.Errorf("cli: bad best-of rule %q", s)
			}
			return baseline.BestOfK{K: k}, nil
		}
		return nil, fmt.Errorf("cli: unknown rule %q (div, pull, median, bestofK, loadbalance)", s)
	}
}

// ParseProcess returns the scheduler named by s.
func ParseProcess(s string) (core.Process, error) {
	switch strings.ToLower(s) {
	case "vertex", "":
		return core.VertexProcess, nil
	case "edge":
		return core.EdgeProcess, nil
	default:
		return 0, fmt.Errorf("cli: unknown process %q (vertex, edge)", s)
	}
}

package cli

import (
	"testing"

	"div/internal/baseline"
	"div/internal/core"
	"div/internal/graph"
)

func TestParseGraphFamilies(t *testing.T) {
	tests := []struct {
		spec  string
		wantN int
		wantM int // -1 to skip
	}{
		{"complete:6", 6, 15},
		{"path:9", 9, 8},
		{"cycle:7", 7, 7},
		{"star:5", 5, 4},
		{"hypercube:3", 8, 12},
		{"torus:3,4", 12, 24},
		{"grid:2,3", 6, 7},
		{"binarytree:7", 7, 6},
		{"barbell:3,1", 7, 8},
		{"regular:20,3", 20, 30},
		{"gnp:30,0.4", 30, -1},
		{"ws:20,4,0.1", 20, 40},
		{"ba:25,2", 25, -1},
		{"circulant:10,1+2", 10, 20},
	}
	for _, tc := range tests {
		t.Run(tc.spec, func(t *testing.T) {
			g, err := ParseGraph(tc.spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != tc.wantN {
				t.Errorf("N = %d, want %d", g.N(), tc.wantN)
			}
			if tc.wantM >= 0 && g.M() != tc.wantM {
				t.Errorf("M = %d, want %d", g.M(), tc.wantM)
			}
		})
	}
}

func TestParseTopologyFamilies(t *testing.T) {
	tests := []struct {
		spec    string
		wantN   int
		wantSum int64
	}{
		{"complete:6", 6, 30},
		{"cycle:7", 7, 14},
		{"path:9", 9, 16},
		{"torus:3,4", 12, 48},
		{"hypercube:3", 8, 24},
		{"circulant:10,1+2", 10, 40},
		{"hashedregular:64,4", 64, 256},
	}
	for _, tc := range tests {
		t.Run(tc.spec, func(t *testing.T) {
			topo, err := ParseTopology(tc.spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			if topo.N() != tc.wantN {
				t.Errorf("N = %d, want %d", topo.N(), tc.wantN)
			}
			if topo.DegreeSum() != tc.wantSum {
				t.Errorf("DegreeSum = %d, want %d", topo.DegreeSum(), tc.wantSum)
			}
		})
	}
}

// TestParseTopologyMatchesParseGraph pins that a spec names the same
// structure whichever parser handles it: the implicit topology's
// materialization equals the ParseGraph CSR edge for edge.
func TestParseTopologyMatchesParseGraph(t *testing.T) {
	for _, spec := range []string{
		"complete:6", "cycle:7", "path:9", "torus:3,4", "hypercube:3", "circulant:10,1+2",
	} {
		t.Run(spec, func(t *testing.T) {
			topo, err := ParseTopology(spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			g, err := ParseGraph(spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			twin := graph.MustMaterialize(topo)
			et, eg := twin.Edges(), g.Edges()
			if len(et) != len(eg) {
				t.Fatalf("edge count %d vs %d", len(et), len(eg))
			}
			for i := range et {
				if et[i] != eg[i] {
					t.Fatalf("edge %d: %v vs %v", i, et[i], eg[i])
				}
			}
		})
	}
}

func TestParseTopologySeedKeyed(t *testing.T) {
	a, err := ParseTopology("hashedregular:128,6", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseTopology("hashedregular:128,6", 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseTopology("hashedregular:128,6", 8)
	if err != nil {
		t.Fatal(err)
	}
	same, diff := true, true
	for v := 0; v < 128; v++ {
		for i := 0; i < 6; i++ {
			if a.Neighbor(v, i) != b.Neighbor(v, i) {
				same = false
			}
			if a.Neighbor(v, i) != c.Neighbor(v, i) {
				diff = false
			}
		}
	}
	if !same {
		t.Error("same seed must name the same hashed-regular matching")
	}
	if diff {
		t.Error("different seeds should name different matchings")
	}
}

func TestParseTopologyErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus:5", "star:5", "regular:20,3", "gnp:30,0.4",
		"complete:", "complete:x", "torus:3", "circulant:10", "circulant:10,a",
		"hashedregular:64", "hashedregular:63,4", "hashedregular:64,64",
	} {
		if _, err := ParseTopology(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseGraphErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus:5", "complete:", "complete:x", "torus:3", "regular:5,3",
		"gnp:10", "circulant:10", "circulant:10,a",
	} {
		if _, err := ParseGraph(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseGraphDeterministic(t *testing.T) {
	a, err := ParseGraph("regular:30,4", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseGraph("regular:30,4", 42)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed, different graph")
		}
	}
}

func TestParseRule(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"div", "div"}, {"", "div"}, {"pull", "pull"},
		{"median", "median"}, {"bestof3", "best-of-3"},
		{"loadbalance", "loadbalance"}, {"lb", "loadbalance"},
		{"DIV", "div"},
	}
	for _, tc := range tests {
		r, err := ParseRule(tc.in)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", tc.in, err)
			continue
		}
		if r.Name() != tc.want {
			t.Errorf("ParseRule(%q) = %q, want %q", tc.in, r.Name(), tc.want)
		}
	}
	if _, err := ParseRule("bogus"); err == nil {
		t.Error("bogus rule accepted")
	}
	if _, err := ParseRule("bestofx"); err == nil {
		t.Error("bestofx accepted")
	}
	if r, _ := ParseRule("bestof5"); r.(baseline.BestOfK).K != 5 {
		t.Error("bestof5 K wrong")
	}
}

func TestParseProcess(t *testing.T) {
	if p, err := ParseProcess("vertex"); err != nil || p != core.VertexProcess {
		t.Error("vertex parse failed")
	}
	if p, err := ParseProcess(""); err != nil || p != core.VertexProcess {
		t.Error("default parse failed")
	}
	if p, err := ParseProcess("edge"); err != nil || p != core.EdgeProcess {
		t.Error("edge parse failed")
	}
	if _, err := ParseProcess("both"); err == nil {
		t.Error("bogus process accepted")
	}
}

package exp

import (
	"fmt"
	"math"

	"div/internal/baseline"
	"div/internal/coalesce"
	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E19CoalescingDuality verifies the classical duality behind the
// consensus-time results the paper builds on: running asynchronous pull
// voting backwards in time, the opinion lineages are coalescing random
// walks. Concretely, with all-distinct initial opinions, the
// vertex-process pull-voting consensus time and the vertex-clock
// coalescing time are equal IN DISTRIBUTION on every graph — not just
// in expectation — and the winning opinion is the surviving particle's
// origin, uniform on regular graphs.
//
// Checked with a two-sample Kolmogorov–Smirnov test on K_n and on the
// cycle (two very different time scales), plus a chi-square uniformity
// test of the survivor origin. The voting runs, the coalescing runs,
// and the origin census are all independent futures on the scheduler.
func E19CoalescingDuality(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E19", Name: "pull voting ↔ coalescing walks duality"}
	trials := p.pick(300, 800)
	gs := newGraphs()
	defer gs.Release()

	graphs := []*graph.Graph{
		gs.Complete(p.pick(40, 80)),
		gs.Cycle(p.pick(24, 40)),
	}
	inits := make([][]int, len(graphs))
	for gi, g := range graphs {
		init := make([]int, g.N())
		for v := range init {
			init[v] = v + 1
		}
		inits[gi] = init
	}

	consPoints := make([]Point, len(graphs))
	coalPoints := make([]Point, len(graphs))
	for gi, g := range graphs {
		consPoints[gi] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0x1900+gi)), Trials: trials}
		coalPoints[gi] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0x1920+gi)), Trials: trials}
	}
	futCons := StartSweep(p, "E19cons", consPoints, func(gi, trial int, seed uint64, sc *core.Scratch) (float64, error) {
		g := graphs[gi]
		n := g.N()
		res, err := core.Run(core.Config{
			Engine:   p.coreEngine(),
			Probe:    p.probeFor(trial, seed),
			Graph:    g,
			Initial:  inits[gi],
			Process:  core.VertexProcess,
			Rule:     baseline.Pull{},
			MaxSteps: 5000 * int64(n) * int64(n),
			Seed:     seed,
			Scratch:  sc,
		})
		if err != nil {
			return 0, err
		}
		if !res.Consensus {
			return 0, fmt.Errorf("no consensus after %d steps", res.Steps)
		}
		return float64(res.Steps), nil
	})
	futCoal := StartSweep(p, "E19coal", coalPoints, func(gi, trial int, seed uint64, _ *core.Scratch) (float64, error) {
		g := graphs[gi]
		n := g.N()
		sys, err := coalesce.New(g)
		if err != nil {
			return 0, err
		}
		steps, err := sys.RunToOneVertexClock(5000*int64(n)*int64(n), rng.New(seed))
		if err != nil {
			return 0, err
		}
		return float64(steps), nil
	})

	// Survivor origin uniform on a regular graph.
	gU := gs.Cycle(p.pick(15, 24))
	originTrials := p.pick(1500, 5000)
	futOrig := StartSweep(p, "E19orig",
		[]Point{{G: gU, Seed: rng.DeriveSeed(p.Seed, 0x1950), Trials: originTrials}},
		func(_, trial int, seed uint64, _ *core.Scratch) (int, error) {
			sys, err := coalesce.New(gU)
			if err != nil {
				return 0, err
			}
			if _, err := sys.RunToOneVertexClock(1<<40, rng.New(seed)); err != nil {
				return 0, err
			}
			origin, ok := sys.Survivor()
			if !ok {
				return 0, fmt.Errorf("no survivor")
			}
			return origin, nil
		})

	tbl := sim.NewTable(
		"E19: consensus time (pull voting, distinct opinions) vs vertex-clock coalescing time",
		"graph", "trials", "mean τ_cons", "mean τ_coal", "ratio", "KS distance", "KS threshold",
	)
	consRes, err := futCons.Wait()
	if err != nil {
		return nil, err
	}
	coalRes, err := futCoal.Wait()
	if err != nil {
		return nil, err
	}
	for gi, g := range graphs {
		consT, coalT := consRes[gi], coalRes[gi]
		sc := stats.Summarize(consT)
		sl := stats.Summarize(coalT)
		ks, err := stats.KS2Sample(consT, coalT)
		if err != nil {
			return nil, err
		}
		// Two-sample KS 0.1%-level critical value: 1.95·√(2/trials).
		thresh := 1.95 * sqrt2Over(trials)
		tbl.AddRow(g.Name(), trials, sc.Mean, sl.Mean, sc.Mean/sl.Mean, ks, thresh)
		rep.check(ks <= thresh,
			fmt.Sprintf("equality in distribution on %s", g.Name()),
			"two-sample KS distance %.4f ≤ %.4f (α = 0.001) between τ_cons and τ_coal over %d+%d trials", ks, thresh, trials, trials)
	}
	rep.Tables = append(rep.Tables, tbl)

	origRes, err := futOrig.Wait()
	if err != nil {
		return nil, err
	}
	counts := make([]int64, gU.N())
	for _, o := range origRes[0] {
		counts[o]++
	}
	expected := make([]float64, gU.N())
	for i := range expected {
		expected[i] = float64(originTrials) / float64(gU.N())
	}
	chi2, dof, err := stats.ChiSquare(counts, expected)
	if err != nil {
		return nil, err
	}
	// χ² mean = dof, sd = √(2·dof); allow 5 sd.
	limit := float64(dof) + 5*math.Sqrt(2*float64(dof))
	rep.check(chi2 <= limit,
		"survivor origin uniform on regular graphs",
		"χ² = %.1f on %d dof over %d runs (limit %.1f) — the dual statement of eq. (3)'s P[i wins] = N_i/n", chi2, dof, originTrials, limit)
	rep.note("Duality: reversing the update sequence turns 'v copies a random neighbour' into 'the particle at v moves to a random neighbour'; coalescence of all lineages is exactly consensus.")
	return rep, nil
}

func sqrt2Over(n int) float64 { return math.Sqrt(2 / float64(n)) }

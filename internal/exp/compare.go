package exp

import (
	"fmt"
	"io"
	"sort"
)

// This file is the bench regression gate behind `divbench -compare
// old.json new.json` (and `make bench-compare`): it pairs up the rows
// of two BENCH_engine.json reports and flags throughput or allocation
// regressions beyond a noise threshold. Wall-clock metrics on shared
// CI hardware are noisy, so the gate is deliberately tolerant: a
// relative threshold (default 10%) on the throughput ratios, and an
// absolute floor on allocation counts (which are near-deterministic —
// a step from 0 to 1 alloc/step is real, a 0.01 flutter is not).

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// Threshold is the tolerated relative degradation, e.g. 0.10 means
	// a metric may be up to 10% worse before it counts as a regression.
	// Zero means the default 0.10.
	Threshold float64
	// AllocFloor is the absolute allocation-count slack: an allocs
	// metric regresses only when new > old + AllocFloor. Zero means the
	// default 0.5 (half an allocation per step/trial — below any real
	// code change, above measurement flutter).
	AllocFloor float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Threshold == 0 {
		o.Threshold = 0.10
	}
	if o.AllocFloor == 0 {
		o.AllocFloor = 0.5
	}
	return o
}

// CompareMetric is one paired measurement.
type CompareMetric struct {
	// Name identifies the metric, e.g.
	// "rows[complete(n=256)|vertex|fast].trials_per_sec_reused".
	Name string
	Old  float64
	New  float64
	// Change is the relative change in the direction of "worse": for
	// higher-is-better metrics (old-new)/old, for lower-is-better
	// (new-old)/old. Positive means the new report is worse.
	Change    float64
	Regressed bool
}

// CompareResult is the outcome of CompareReports.
type CompareResult struct {
	Metrics []CompareMetric
	// Skipped lists row keys present in only one report (and the E2
	// section when its configuration differs) — compared against
	// nothing, flagged so a silently shrunk report can't pass as clean.
	Skipped     []string
	Regressions int
}

// compareCtx accumulates paired metrics.
type compareCtx struct {
	opts CompareOptions
	res  *CompareResult
}

// higherBetter records a throughput-style metric: regression when the
// new value drops more than Threshold below the old.
func (c *compareCtx) higherBetter(name string, old, new float64) {
	m := CompareMetric{Name: name, Old: old, New: new}
	if old > 0 {
		m.Change = (old - new) / old
		m.Regressed = m.Change > c.opts.Threshold
	}
	if m.Regressed {
		c.res.Regressions++
	}
	c.res.Metrics = append(c.res.Metrics, m)
}

// lowerBetter records a latency-style metric: regression when the new
// value rises more than Threshold above the old.
func (c *compareCtx) lowerBetter(name string, old, new float64) {
	m := CompareMetric{Name: name, Old: old, New: new}
	if old > 0 {
		m.Change = (new - old) / old
		m.Regressed = m.Change > c.opts.Threshold
	}
	if m.Regressed {
		c.res.Regressions++
	}
	c.res.Metrics = append(c.res.Metrics, m)
}

// allocs records an allocation-count metric with the absolute floor.
func (c *compareCtx) allocs(name string, old, new float64) {
	m := CompareMetric{Name: name, Old: old, New: new}
	if old > 0 {
		m.Change = (new - old) / old
	}
	m.Regressed = new > old+c.opts.AllocFloor
	if m.Regressed {
		c.res.Regressions++
	}
	c.res.Metrics = append(c.res.Metrics, m)
}

// CompareReports pairs the rows of two bench reports and flags
// regressions beyond the noise threshold. Rows are matched by
// graph × process × engine; rows present in only one report are
// recorded in Skipped, never silently dropped. The E2 section is
// compared only when both reports measured the same point (N and K
// match — quick and full reports use different sizes).
func CompareReports(old, new *BenchReport, opts CompareOptions) *CompareResult {
	c := &compareCtx{opts: opts.withDefaults(), res: &CompareResult{}}

	oldRows := make(map[string]BenchRow, len(old.Rows))
	for _, r := range old.Rows {
		oldRows[r.Graph+"|"+r.Process+"|"+r.Engine] = r
	}
	seen := make(map[string]bool, len(new.Rows))
	for _, nr := range new.Rows {
		key := nr.Graph + "|" + nr.Process + "|" + nr.Engine
		seen[key] = true
		or, ok := oldRows[key]
		if !ok {
			c.res.Skipped = append(c.res.Skipped, "rows["+key+"]: only in new report")
			continue
		}
		pfx := "rows[" + key + "]."
		c.higherBetter(pfx+"trials_per_sec_reused", or.TrialsPerSecReused, nr.TrialsPerSecReused)
		c.lowerBetter(pfx+"ns_per_step_reused", or.NsPerStepReused, nr.NsPerStepReused)
		c.allocs(pfx+"allocs_per_step", or.AllocsPerStep, nr.AllocsPerStep)
		c.allocs(pfx+"allocs_per_trial_reused", or.AllocsPerTrialReused, nr.AllocsPerTrialReused)
	}
	for key := range oldRows {
		if !seen[key] {
			c.res.Skipped = append(c.res.Skipped, "rows["+key+"]: only in old report")
		}
	}

	if old.E2.N == new.E2.N && old.E2.K == new.E2.K {
		c.higherBetter("e2.trials_per_sec_reused", old.E2.TrialsPerSecReused, new.E2.TrialsPerSecReused)
		c.higherBetter("e2.best_block_trials_per_sec", old.E2.BestBlockTrialsPerSec, new.E2.BestBlockTrialsPerSec)
		c.lowerBetter("e2.best_block_ns_per_step", old.E2.BestBlockNsPerStep, new.E2.BestBlockNsPerStep)
	} else {
		c.res.Skipped = append(c.res.Skipped,
			fmt.Sprintf("e2: points differ (old n=%d k=%d, new n=%d k=%d)", old.E2.N, old.E2.K, new.E2.N, new.E2.K))
	}

	// The bign dissenter subsection guards the sparse-endgame tail win:
	// the naive/auto speedup ratio (wall-noise partially cancels in the
	// ratio) and the auto arm's tail seconds, plus the near-deterministic
	// sparse working-set ratio. Compared only when both reports measured
	// the same point.
	switch od, nd := dissenterOf(old), dissenterOf(new); {
	case od == nil && nd == nil:
	case od == nil || nd == nil || od.N != nd.N || od.Dissenters != nd.Dissenters:
		c.res.Skipped = append(c.res.Skipped, "bign.dissenter: present or sized differently in only one report")
	default:
		c.higherBetter("bign.dissenter.speedup", od.Speedup, nd.Speedup)
		c.lowerBetter("bign.dissenter.sparse_peak_ratio", od.SparsePeakRatio, nd.SparsePeakRatio)
		for _, oa := range od.Arms {
			for _, na := range nd.Arms {
				if oa.Label == na.Label && oa.Trials == na.Trials {
					c.lowerBetter("bign.dissenter.arms["+oa.Label+"].tail_seconds",
						oa.Phase.TailSeconds, na.Phase.TailSeconds)
				}
			}
		}
	}

	// The build section guards graph-construction throughput and the
	// transient-memory bound. Points are matched by family × n × param;
	// points present in only one report are flagged like rows. The
	// serial/baseline speedup ratio is compared rather than raw wall
	// seconds (shared-hardware noise partially cancels in the ratio).
	compareBuild(c, buildOf(old), buildOf(new))

	sort.Slice(c.res.Metrics, func(i, j int) bool { return c.res.Metrics[i].Name < c.res.Metrics[j].Name })
	sort.Strings(c.res.Skipped)
	return c.res
}

// dissenterOf extracts the bign dissenter subsection, nil-safe at
// every level (reports without a bign section compare as absent).
func dissenterOf(r *BenchReport) *BenchBigNDissenter {
	if r == nil || r.BigN == nil {
		return nil
	}
	return r.BigN.Dissenter
}

// buildOf extracts the build section, nil-safe.
func buildOf(r *BenchReport) *BenchBuild {
	if r == nil {
		return nil
	}
	return r.Build
}

// compareBuild pairs the build-section points of two reports.
func compareBuild(c *compareCtx, old, new *BenchBuild) {
	if old == nil && new == nil {
		return
	}
	if old == nil || new == nil {
		c.res.Skipped = append(c.res.Skipped, "build: section present in only one report")
		return
	}
	oldPts := make(map[string]BenchBuildPoint, len(old.Points))
	for _, pt := range old.Points {
		oldPts[buildPointKey(pt)] = pt
	}
	seen := make(map[string]bool, len(new.Points))
	for _, np := range new.Points {
		key := buildPointKey(np)
		seen[key] = true
		op, ok := oldPts[key]
		if !ok {
			c.res.Skipped = append(c.res.Skipped, "build.points["+key+"]: only in new report")
			continue
		}
		pfx := "build.points[" + key + "]."
		c.higherBetter(pfx+"serial_edges_per_sec", op.SerialEdgesPerSec, np.SerialEdgesPerSec)
		c.higherBetter(pfx+"parallel_edges_per_sec", op.ParallelEdgesPerSec, np.ParallelEdgesPerSec)
		if op.SpeedupVsBaseline > 0 && np.SpeedupVsBaseline > 0 {
			c.higherBetter(pfx+"speedup_vs_baseline", op.SpeedupVsBaseline, np.SpeedupVsBaseline)
		}
		c.lowerBetter(pfx+"rss_over_csr", op.RSSOverCSR, np.RSSOverCSR)
	}
	for key := range oldPts {
		if !seen[key] {
			c.res.Skipped = append(c.res.Skipped, "build.points["+key+"]: only in old report")
		}
	}
}

func buildPointKey(pt BenchBuildPoint) string {
	return fmt.Sprintf("%s|n=%d|param=%g", pt.Family, pt.N, pt.Param)
}

// WriteText renders the comparison as a human-readable table:
// regressions first, then improvements/no-change, then skips.
func (r *CompareResult) WriteText(w io.Writer, opts CompareOptions) error {
	opts = opts.withDefaults()
	write := func(only bool) {
		for _, m := range r.Metrics {
			if m.Regressed != only {
				continue
			}
			mark := "ok  "
			if m.Regressed {
				mark = "FAIL"
			}
			fmt.Fprintf(w, "%s %-60s old=%-12.4g new=%-12.4g worse=%+.1f%%\n",
				mark, m.Name, m.Old, m.New, 100*m.Change)
		}
	}
	write(true)
	write(false)
	for _, s := range r.Skipped {
		fmt.Fprintf(w, "skip %s\n", s)
	}
	if r.Regressions > 0 {
		_, err := fmt.Fprintf(w, "%d regression(s) beyond %.0f%% threshold\n", r.Regressions, 100*opts.Threshold)
		return err
	}
	_, err := fmt.Fprintf(w, "no regressions beyond %.0f%% threshold (%d metrics compared, %d skipped)\n",
		100*opts.Threshold, len(r.Metrics), len(r.Skipped))
	return err
}

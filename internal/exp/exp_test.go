package exp

import (
	"math"
	"strings"
	"testing"
)

// TestExperimentsQuick runs every experiment end-to-end in Quick mode
// and asserts that all paper-claim checks pass. This is the
// repository's primary integration test: it exercises graphs, spectral
// analysis, the core process, baselines, netsim, and the harness
// against the paper's predictions in one sweep.
func TestExperimentsQuick(t *testing.T) {
	for _, d := range All {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := d.Run(Params{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", d.ID, err)
			}
			if rep.ID != d.ID {
				t.Errorf("report ID %q, want %q", rep.ID, d.ID)
			}
			if len(rep.Checks) == 0 {
				t.Errorf("%s produced no checks", d.ID)
			}
			if len(rep.Tables) == 0 {
				t.Errorf("%s produced no tables", d.ID)
			}
			for _, c := range rep.Failed() {
				t.Errorf("%s check %q failed: %s", d.ID, c.Name, c.Detail)
			}
			for _, tbl := range rep.Tables {
				if out := tbl.String(); !strings.Contains(out, d.ID) {
					t.Errorf("%s table title %q does not carry the experiment ID", d.ID, tbl.Title)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	d, err := ByID("E5")
	if err != nil || d.ID != "E5" {
		t.Errorf("ByID(E5) = %+v, %v", d, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestAllHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All {
		if seen[d.ID] {
			t.Errorf("duplicate experiment ID %s", d.ID)
		}
		seen[d.ID] = true
		if d.Run == nil {
			t.Errorf("%s has nil Run", d.ID)
		}
		if d.Name == "" {
			t.Errorf("%s has empty name", d.ID)
		}
	}
}

func TestProfileWithMean(t *testing.T) {
	tests := []struct {
		n, k   int
		target float64
	}{
		{100, 8, 4.3},
		{100, 8, 1.0},
		{100, 8, 8.0},
		{100, 2, 1.5},
		{7, 5, 3.21},
		{1000, 20, 7.77},
	}
	for _, tc := range tests {
		counts, err := profileWithMean(tc.n, tc.k, tc.target)
		if err != nil {
			t.Errorf("profileWithMean(%d,%d,%v): %v", tc.n, tc.k, tc.target, err)
			continue
		}
		total := 0
		for _, c := range counts {
			if c < 0 {
				t.Errorf("profileWithMean(%d,%d,%v) negative count: %v", tc.n, tc.k, tc.target, counts)
			}
			total += c
		}
		if total != tc.n {
			t.Errorf("profileWithMean(%d,%d,%v) sums to %d", tc.n, tc.k, tc.target, total)
		}
		got := meanOfCounts(counts)
		if math.Abs(got-tc.target) > 1.0/float64(tc.n)+1e-9 {
			t.Errorf("profileWithMean(%d,%d,%v) mean = %v", tc.n, tc.k, tc.target, got)
		}
	}
}

func TestProfileWithMeanErrors(t *testing.T) {
	if _, err := profileWithMean(10, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := profileWithMean(10, 5, 0.5); err == nil {
		t.Error("target below 1 accepted")
	}
	if _, err := profileWithMean(10, 5, 9); err == nil {
		t.Error("target above k accepted")
	}
}

func TestMedianOfCounts(t *testing.T) {
	tests := []struct {
		counts []int
		want   int
	}{
		{[]int{3, 0, 2}, 1},       // 1,1,1,3,3 -> median 1
		{[]int{1, 3, 1}, 2},       // 1,2,2,2,3 -> 2
		{[]int{2, 2}, 1},          // 1,1,2,2 -> lower median 1
		{[]int{0, 0, 5}, 3},       // all 3s
		{[]int{1, 1, 1, 1, 1}, 3}, // 1..5 -> 3
	}
	for _, tc := range tests {
		if got := medianOfCounts(tc.counts); got != tc.want {
			t.Errorf("medianOfCounts(%v) = %d, want %d", tc.counts, got, tc.want)
		}
	}
}

func TestRoundedHelpers(t *testing.T) {
	lo, hi := roundedPair(4.3)
	if lo != 4 || hi != 5 {
		t.Errorf("roundedPair(4.3) = %d,%d", lo, hi)
	}
	lo, hi = roundedPair(6)
	if lo != 6 || hi != 6 {
		t.Errorf("roundedPair(6) = %d,%d", lo, hi)
	}
	if !isRoundedAverage(4, 4.3) || !isRoundedAverage(5, 4.3) || isRoundedAverage(6, 4.3) {
		t.Error("isRoundedAverage wrong around 4.3")
	}
}

func TestParamsPick(t *testing.T) {
	q := Params{Quick: true}
	f := Params{}
	if q.pick(1, 2) != 1 || f.pick(1, 2) != 2 {
		t.Error("pick wrong")
	}
	if q.withDefaults().Seed == 0 {
		t.Error("withDefaults left zero seed")
	}
	withSeed := Params{Seed: 7}.withDefaults()
	if withSeed.Seed != 7 {
		t.Error("withDefaults clobbered explicit seed")
	}
}

func TestReportHelpers(t *testing.T) {
	rep := &Report{ID: "X"}
	rep.check(true, "good", "fine %d", 1)
	rep.check(false, "bad", "broken %s", "here")
	rep.note("a note %d", 2)
	if len(rep.Checks) != 2 || len(rep.Failed()) != 1 {
		t.Errorf("checks %v", rep.Checks)
	}
	if rep.Failed()[0].Detail != "broken here" {
		t.Errorf("detail %q", rep.Failed()[0].Detail)
	}
	if rep.Notes[0] != "a note 2" {
		t.Errorf("note %q", rep.Notes[0])
	}
}

package exp

import (
	"fmt"
	"math"

	"div/internal/baseline"
	"div/internal/core"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E7ModeMedianMean reproduces the paper's positioning claim: "pull
// voting, median voting and our discrete incremental voting mirror
// (respectively) the statistical measures of Mode, Median and Mean."
//
// All three dynamics (plus best-of-3 plurality) run on the same skewed
// profile whose mode (1), median (2) and mean (≈3.07) are three
// different values. Quantitative checks: DIV lands on the rounded mean;
// median dynamics lands on the median; pull voting's win frequencies
// match the k-opinion generalization of eq. (3), P[i wins] = N_i/n —
// making the mode the single most likely outcome.
func E7ModeMedianMean(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E7", Name: "mode/median/mean separation"}

	n := p.pick(300, 600)
	trials := p.pick(250, 800)
	gs := newGraphs()
	defer gs.Release()
	g := gs.Complete(n)
	// Opinions 1..9; mass at 1 (mode), 2 (median), 3, 9 (tail).
	counts := make([]int, 9)
	counts[0] = n / 3      // opinion 1
	counts[1] = 4 * n / 15 // opinion 2
	counts[2] = 7 * n / 30 // opinion 3
	counts[8] = n - counts[0] - counts[1] - counts[2]

	mode := 1
	median := medianOfCounts(counts)
	mean := meanOfCounts(counts)
	lo, hi := roundedPair(mean)

	rules := []core.Rule{core.DIV{}, baseline.Pull{}, baseline.Median{}, baseline.BestOfK{K: 3}}
	tbl := sim.NewTable(
		fmt.Sprintf("E7: consensus value by dynamics on %s (mode=%d median=%d mean=%.3f)", g.Name(), mode, median, mean),
		"rule", "trials", "winner histogram", "modal winner", "frac at rounded mean", "frac at median", "frac at mode",
	)

	fracMean := map[string]float64{}
	fracMedian := map[string]float64{}
	hists := map[string]*stats.IntHistogram{}
	points := make([]Point, len(rules))
	for ri := range rules {
		points[ri] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0x700+ri)), Trials: trials}
	}
	results, err := Sweep(p, "E7", points, func(ri, trial int, seed uint64, sc *core.Scratch) (int, error) {
		rule := rules[ri]
		r := rng.New(seed)
		init, err := core.BlockOpinions(n, counts, r)
		if err != nil {
			return 0, err
		}
		res, err := core.Run(core.Config{
			Engine:  p.coreEngine(),
			Probe:   p.probeFor(trial, seed),
			Graph:   g,
			Initial: init,
			Process: core.EdgeProcess,
			Rule:    rule,
			Seed:    rng.SplitMix64(seed),
			Scratch: sc,
		})
		if err != nil {
			return 0, err
		}
		if !res.Consensus {
			return 0, fmt.Errorf("%s: no consensus after %d steps", rule.Name(), res.Steps)
		}
		return res.Winner, nil
	})
	if err != nil {
		return nil, err
	}
	for ri, rule := range rules {
		h := stats.NewIntHistogram()
		for _, w := range results[ri] {
			h.Add(w)
		}
		hists[rule.Name()] = h
		modal, _, _ := h.Mode()
		atMean := h.Proportion(lo) + h.Proportion(hi)
		if lo == hi {
			atMean = h.Proportion(lo)
		}
		atMedian := h.Proportion(median)
		atMode := h.Proportion(mode)
		fracMean[rule.Name()] = atMean
		fracMedian[rule.Name()] = atMedian
		tbl.AddRow(rule.Name(), trials, h.String(), modal, atMean, atMedian, atMode)
	}
	rep.Tables = append(rep.Tables, tbl)

	rep.check(fracMean["div"] >= 0.85,
		"DIV converges to the mean",
		"DIV landed on {%d,%d} in %.1f%% of runs (mean %.3f)", lo, hi, 100*fracMean["div"], mean)
	rep.check(fracMedian["median"] >= 0.6,
		"median dynamics converges to the median",
		"median dynamics landed on %d in %.1f%% of runs", median, 100*fracMedian["median"])
	rep.check(fracMean["median"] < 0.3 && fracMedian["div"] < 0.3,
		"targets are distinct",
		"median dynamics at mean: %.1f%%, DIV at median: %.1f%% — the dynamics do not chase each other's statistic",
		100*fracMean["median"], 100*fracMedian["div"])

	// Pull voting: win frequency of each opinion must match N_i/n
	// (k-opinion eq. (3) on a regular graph).
	pull := hists["pull"]
	worstZ := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		pred := float64(c) / float64(n)
		z := stats.BinomialZ(int(pull.Count(i+1)), trials, pred)
		if math.Abs(z) > math.Abs(worstZ) {
			worstZ = z
		}
	}
	rep.check(math.Abs(worstZ) <= 5,
		"pull voting wins ∝ initial mass",
		"worst-case deviation from P[i wins] = N_i/n across opinions: z = %.2f (want |z| ≤ 5)", worstZ)
	return rep, nil
}

// medianOfCounts returns the median opinion of a counts profile
// (lower median for even totals).
func medianOfCounts(counts []int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	pos := (total + 1) / 2
	cum := 0
	for i, c := range counts {
		cum += c
		if cum >= pos {
			return i + 1
		}
	}
	return len(counts)
}

package exp

import (
	"bytes"
	"strings"
	"testing"
)

func compareFixture() *BenchReport {
	return &BenchReport{
		E2: BenchE2{
			N: 800, K: 8,
			TrialsPerSecReused:    1000,
			BestBlockTrialsPerSec: 1500,
			BestBlockNsPerStep:    40,
		},
		Rows: []BenchRow{
			{Graph: "complete(n=256)", Process: "vertex", Engine: "fast",
				TrialsPerSecReused: 5000, NsPerStepReused: 30, AllocsPerStep: 0, AllocsPerTrialReused: 2},
			{Graph: "rr(n=512,d=8)", Process: "edge", Engine: "auto",
				TrialsPerSecReused: 800, NsPerStepReused: 55, AllocsPerStep: 0, AllocsPerTrialReused: 3},
		},
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	rep := compareFixture()
	res := CompareReports(rep, rep, CompareOptions{})
	if res.Regressions != 0 {
		t.Fatalf("self-compare found %d regressions: %+v", res.Regressions, res.Metrics)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("self-compare skipped %v", res.Skipped)
	}
	// 2 rows × 4 metrics + 3 E2 metrics.
	if len(res.Metrics) != 11 {
		t.Fatalf("compared %d metrics, want 11", len(res.Metrics))
	}
}

func TestCompareWithinNoiseIsClean(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	cur.Rows[0].TrialsPerSecReused *= 0.95 // 5% slower: inside the 10% default
	cur.Rows[0].NsPerStepReused *= 1.05
	cur.E2.BestBlockTrialsPerSec *= 0.92
	if res := CompareReports(old, cur, CompareOptions{}); res.Regressions != 0 {
		t.Fatalf("noise-level drift flagged: %+v", res.Metrics)
	}
}

func TestCompareFlagsInjectedRegressions(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	cur.Rows[0].TrialsPerSecReused *= 0.5 // 2× slower
	cur.Rows[1].NsPerStepReused *= 1.5    // 50% more per step
	cur.Rows[1].AllocsPerStep = 2         // new allocations on the hot path
	cur.E2.BestBlockTrialsPerSec *= 0.7
	res := CompareReports(old, cur, CompareOptions{})
	if res.Regressions != 4 {
		t.Fatalf("found %d regressions, want 4: %+v", res.Regressions, res.Metrics)
	}
	wantFlagged := map[string]bool{
		"rows[complete(n=256)|vertex|fast].trials_per_sec_reused": true,
		"rows[rr(n=512,d=8)|edge|auto].ns_per_step_reused":        true,
		"rows[rr(n=512,d=8)|edge|auto].allocs_per_step":           true,
		"e2.best_block_trials_per_sec":                            true,
	}
	for _, m := range res.Metrics {
		if m.Regressed != wantFlagged[m.Name] {
			t.Errorf("%s regressed=%v, want %v", m.Name, m.Regressed, wantFlagged[m.Name])
		}
	}
}

func TestCompareImprovementIsNotRegression(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	cur.Rows[0].TrialsPerSecReused *= 3
	cur.Rows[0].NsPerStepReused /= 3
	cur.Rows[0].AllocsPerTrialReused = 0
	if res := CompareReports(old, cur, CompareOptions{}); res.Regressions != 0 {
		t.Fatalf("improvements flagged: %+v", res.Metrics)
	}
}

func TestCompareThresholdOption(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	cur.Rows[0].TrialsPerSecReused *= 0.8 // 20% slower
	if res := CompareReports(old, cur, CompareOptions{Threshold: 0.30}); res.Regressions != 0 {
		t.Fatalf("20%% drop flagged under a 30%% threshold: %+v", res.Metrics)
	}
	if res := CompareReports(old, cur, CompareOptions{Threshold: 0.10}); res.Regressions != 1 {
		t.Fatalf("20%% drop not flagged under a 10%% threshold")
	}
}

func TestCompareAllocFloorTolleratesFlutter(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	cur.Rows[1].AllocsPerTrialReused += 0.3 // measurement flutter, under the 0.5 floor
	if res := CompareReports(old, cur, CompareOptions{}); res.Regressions != 0 {
		t.Fatalf("alloc flutter flagged: %+v", res.Metrics)
	}
	cur.Rows[1].AllocsPerTrialReused = old.Rows[1].AllocsPerTrialReused + 1
	if res := CompareReports(old, cur, CompareOptions{}); res.Regressions != 1 {
		t.Fatal("a whole extra allocation per trial not flagged")
	}
}

func TestCompareSkipsUnmatched(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	cur.Rows = cur.Rows[:1]                                   // one row vanished
	cur.Rows = append(cur.Rows, BenchRow{Graph: "star(n=64)", // one row appeared
		Process: "vertex", Engine: "naive", TrialsPerSecReused: 1})
	cur.E2.N = 3200 // different E2 point
	res := CompareReports(old, cur, CompareOptions{})
	if res.Regressions != 0 {
		t.Fatalf("unmatched sections must skip, not regress: %+v", res.Metrics)
	}
	if len(res.Skipped) != 3 {
		t.Fatalf("skipped = %v, want the vanished row, the new row, and e2", res.Skipped)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf, CompareOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.Contains(got, "skip ") || !strings.Contains(got, "no regressions") {
		t.Fatalf("WriteText output:\n%s", got)
	}
}

func TestCompareDissenterGuard(t *testing.T) {
	withDiss := func(speedup, autoTailSec, peakRatio float64) *BenchReport {
		rep := compareFixture()
		rep.BigN = &BenchBigN{Dissenter: &BenchBigNDissenter{
			N: 1_000_000, Dissenters: 256,
			Speedup: speedup, SparsePeakRatio: peakRatio,
			Arms: []BenchBigNDissenterArm{
				{Label: "naive", Trials: 3, Phase: BenchBigNPhase{TailSeconds: 12}},
				{Label: "auto/sparse", Trials: 3, Phase: BenchBigNPhase{TailSeconds: autoTailSec}},
			},
		}}
		return rep
	}
	old := withDiss(19, 0.6, 0.033)
	if res := CompareReports(old, withDiss(19, 0.6, 0.033), CompareOptions{}); res.Regressions != 0 || len(res.Skipped) != 0 {
		t.Fatalf("self-compare of dissenter section not clean: %+v %v", res.Metrics, res.Skipped)
	}
	// Speedup halved, auto tail 2.5× slower, peak ratio inflated: three
	// regressions (the naive arm's tail is unchanged).
	if res := CompareReports(old, withDiss(8, 1.5, 0.06), CompareOptions{}); res.Regressions != 3 {
		t.Fatalf("found %d regressions, want 3: %+v", res.Regressions, res.Metrics)
	}
	// A report without the subsection skips, never silently passes.
	res := CompareReports(old, compareFixture(), CompareOptions{})
	if res.Regressions != 0 || len(res.Skipped) != 1 {
		t.Fatalf("one-sided dissenter section: regressions=%d skipped=%v", res.Regressions, res.Skipped)
	}
}

func TestCompareBuildGuard(t *testing.T) {
	withBuild := func(serialEps, parEps, speedup, rssRatio float64) *BenchReport {
		rep := compareFixture()
		rep.Build = &BenchBuild{GOMAXPROCS: 1, Points: []BenchBuildPoint{
			{Family: "gnp", N: 1_000_000, Param: 1.6e-5,
				SerialEdgesPerSec: serialEps, ParallelEdgesPerSec: parEps,
				SpeedupVsBaseline: speedup, RSSOverCSR: rssRatio, Identical: true},
			{Family: "randomRegular", N: 1_000_000, Param: 8,
				SerialEdgesPerSec: 2e6, ParallelEdgesPerSec: 2e6,
				RSSOverCSR: 2.8, Identical: true},
		}}
		return rep
	}
	old := withBuild(9e6, 9e6, 1.8, 1.5)
	if res := CompareReports(old, withBuild(9e6, 9e6, 1.8, 1.5), CompareOptions{}); res.Regressions != 0 || len(res.Skipped) != 0 {
		t.Fatalf("self-compare of build section not clean: %+v %v", res.Metrics, res.Skipped)
	}
	// Serial throughput halved, speedup collapsed, RSS ratio inflated:
	// three regressions on the gnp point (parallel throughput held).
	if res := CompareReports(old, withBuild(4e6, 9e6, 1.1, 2.2), CompareOptions{}); res.Regressions != 3 {
		t.Fatalf("found %d regressions, want 3: %+v", res.Regressions, res.Metrics)
	}
	// The rr point recorded no baseline (SpeedupVsBaseline 0 on both
	// sides): the speedup metric must not be compared for it.
	for _, m := range CompareReports(old, withBuild(9e6, 9e6, 1.8, 1.5), CompareOptions{}).Metrics {
		if strings.Contains(m.Name, "randomRegular") && strings.Contains(m.Name, "speedup_vs_baseline") {
			t.Fatalf("baseline-less point compared a speedup: %s", m.Name)
		}
	}
	// A report without the section skips, never silently passes; so do
	// points present on only one side.
	if res := CompareReports(old, compareFixture(), CompareOptions{}); res.Regressions != 0 || len(res.Skipped) != 1 {
		t.Fatalf("one-sided build section: regressions=%d skipped=%v", res.Regressions, res.Skipped)
	}
	shrunk := withBuild(9e6, 9e6, 1.8, 1.5)
	shrunk.Build.Points = shrunk.Build.Points[:1]
	if res := CompareReports(old, shrunk, CompareOptions{}); len(res.Skipped) != 1 || !strings.Contains(res.Skipped[0], "only in old report") {
		t.Fatalf("vanished build point not flagged: %v", res.Skipped)
	}
}

func TestCompareWriteTextRegressionsFirst(t *testing.T) {
	old, cur := compareFixture(), compareFixture()
	cur.Rows[1].TrialsPerSecReused *= 0.4
	res := CompareReports(old, cur, CompareOptions{})
	var buf bytes.Buffer
	if err := res.WriteText(&buf, CompareOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "FAIL ") {
		t.Fatalf("regressions must lead the rendering:\n%s", out)
	}
	if !strings.Contains(out, "1 regression(s) beyond 10% threshold") {
		t.Fatalf("missing verdict line:\n%s", out)
	}
}

package exp

import (
	"fmt"
	"math"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E3Martingale reproduces Lemma 3: S(t) is a martingale under the edge
// process and Z(t) under the vertex process, on arbitrary graphs.
//
// Part (a) is exact: for random (graph, opinion) configurations the
// one-step drift is enumerated in integer arithmetic and must be zero.
// Part (b) is dynamic: over many independent runs of fixed length the
// sampled weight change must be statistically centred at zero.
// Part (c) shows the complementary *non*-martingales: on irregular
// graphs S drifts under the vertex process and Z_raw under the edge
// process, with exactly computed one-step drifts.
func E3Martingale(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E3", Name: "weight martingales (Lemma 3)"}

	// (a) Exact zero drift over random configurations.
	configs := p.pick(100, 500)
	r := rng.New(rng.DeriveSeed(p.Seed, 0xe3))
	nonzero := 0
	var maxAbs int64
	for i := 0; i < configs; i++ {
		n := 5 + r.IntN(60)
		g, err := graph.ConnectedGnp(n, 0.2+0.6*r.Float64(), r, 300)
		if err != nil {
			return nil, err
		}
		k := 2 + r.IntN(12)
		s := core.MustState(g, core.UniformOpinions(n, k, r))
		d := core.SignedArcSum(s)
		if d != 0 {
			nonzero++
		}
		if a := abs64(d); a > maxAbs {
			maxAbs = a
		}
	}
	rep.check(nonzero == 0,
		"exact one-step drift is zero",
		"%d/%d random configurations had nonzero signed-arc sum (max |drift·2m| = %d)", nonzero, configs, maxAbs)

	// (b) Sampled long-run drift on K_n: one sweep, one point per
	// process.
	n := p.pick(120, 300)
	k := 10
	steps := int64(20 * n)
	trials := p.pick(150, 600)
	gs := newGraphs()
	defer gs.Release()
	g := gs.Complete(n)
	tbl := sim.NewTable(
		fmt.Sprintf("E3: weight change over %d steps on %s, k=%d", steps, g.Name(), k),
		"process", "weight", "trials", "mean Δ", "stderr", "|z|",
	)
	procs := []core.Process{core.EdgeProcess, core.VertexProcess}
	points := make([]Point, len(procs))
	for i, proc := range procs {
		points[i] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, 0x300+uint64(proc)), Trials: trials}
	}
	results, err := Sweep(p, "E3", points, func(pi, trial int, seed uint64, sc *core.Scratch) (float64, error) {
		proc := procs[pi]
		r := rng.New(seed)
		init := core.UniformOpinions(n, k, r)
		var w0, w1 float64
		_, err := core.Run(core.Config{
			Engine:   p.coreEngine(),
			Probe:    p.probeFor(trial, seed),
			Graph:    g,
			Initial:  init,
			Process:  proc,
			Stop:     core.UntilMaxSteps,
			MaxSteps: steps,
			Seed:     rng.SplitMix64(seed),
			Observer: func(s *core.State) bool {
				if s.Steps() == 0 {
					w0 = weightOf(s, proc)
				}
				w1 = weightOf(s, proc)
				return true
			},
			ObserveEvery: steps,
			Scratch:      sc,
		})
		if err != nil {
			return 0, err
		}
		return w1 - w0, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, proc := range procs {
		s := stats.Summarize(results[pi])
		z := 0.0
		if s.Stderr() > 0 {
			z = s.Mean / s.Stderr()
		}
		name := "S = Σ X_v"
		if proc == core.VertexProcess {
			name = "Z = n Σ π_v X_v"
		}
		tbl.AddRow(proc.String(), name, trials, s.Mean, s.Stderr(), math.Abs(z))
		rep.check(math.Abs(z) <= 5,
			fmt.Sprintf("%s-process weight centred", proc),
			"mean Δ%s = %.3f ± %.3f over %d trials (|z| = %.2f, want ≤ 5)", name, s.Mean, s.Stderr(), trials, math.Abs(z))
	}
	rep.Tables = append(rep.Tables, tbl)

	// (c) The cross pairings are NOT martingales on irregular graphs.
	star := graph.Star(6)
	s := core.MustState(star, []int{4, 1, 1, 1, 1, 1})
	vDrift := core.VertexProcessSumDrift(s)
	eDrift := core.EdgeProcessDegSumDrift(s)
	tblC := sim.NewTable(
		"E3c: exact one-step drifts of the cross pairings on star(6), centre=4, leaves=1",
		"process", "weight", "exact E[Δ | X]",
	)
	tblC.AddRow("vertex", "S (plain sum)", vDrift)
	tblC.AddRow("edge", "Σ d(v)X_v", eDrift)
	rep.Tables = append(rep.Tables, tblC)
	rep.check(vDrift != 0 && eDrift != 0,
		"cross pairings drift on irregular graphs",
		"vertex/S drift = %.4f, edge/ΣdX drift = %.4f (both must be nonzero)", vDrift, eDrift)
	return rep, nil
}

func weightOf(s *core.State, proc core.Process) float64 {
	if proc == core.EdgeProcess {
		return float64(s.Sum())
	}
	// Z(t) = n Σ π_v X_v = n · DegSum / 2m.
	return float64(s.N()) * float64(s.DegSum()) / float64(s.Graph().DegreeSum())
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

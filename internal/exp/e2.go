package exp

import (
	"fmt"
	"math"
	"math/rand/v2"

	"div/internal/core"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
	"div/internal/textplot"
)

// E2ReductionTime reproduces Theorem 1 / equation (4): on expanders the
// opinion range collapses to two adjacent values within T = o(n²)
// steps, with E[T] = O(kn log n + n^{5/3} log n + λkn² + √λ n²).
//
// Two sweeps on K_n with worst-case (extremes-only) initial profiles:
// T vs n at fixed k, and T vs k at fixed n. Both are launched as
// futures so their trials overlap on the scheduler — the long n=800
// (or n=3200) tail no longer blocks the k sweep. Both the fitted
// scaling exponent of T(n) (must stay below 2) and the vanishing of
// T/n² are checked; the k sweep verifies roughly linear growth of T
// with k.
func E2ReductionTime(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E2", Name: "reduction time scaling (Theorem 1)"}
	gs := newGraphs()
	defer gs.Release()

	// --- Sweep 1: T vs n on K_n, k fixed. ---
	k := 8
	ns := sim.GeometricInts(p.pick(100, 200), p.pick(800, 3200), p.pick(4, 5))
	trials := p.pick(12, 40)

	pointsN := make([]Point, len(ns))
	for i, n := range ns {
		pointsN[i] = Point{G: gs.Complete(n), Seed: rng.DeriveSeed(p.Seed, uint64(0x200+i)), Trials: trials}
	}
	futN := StartSweepBlocked(p, "E2a", pointsN, BlockTrial{
		Process: core.VertexProcess,
		Stop:    core.UntilTwoAdjacent,
		Init: func(_, _ int, dst []int, r *rand.Rand) error {
			core.ExtremesOpinionsInto(dst, k, r)
			return nil
		},
	}, func(pi, _ int, res core.Result) (float64, error) {
		if res.TwoAdjacentStep < 0 {
			return 0, fmt.Errorf("n=%d: reduction incomplete after %d steps", ns[pi], res.Steps)
		}
		return float64(res.TwoAdjacentStep), nil
	})

	// --- Sweep 2: T vs k on fixed K_n (overlaps with sweep 1). ---
	n := p.pick(150, 400)
	// k = 2 is excluded: two adjacent extremes are already a completed
	// reduction (T ≡ 0), which both trivializes the point and breaks
	// the log-log fit.
	ks := []int{3, 6, 12, 24}
	if !p.Quick {
		ks = append(ks, 48, 96)
	}
	g := gs.Complete(n)
	pointsK := make([]Point, len(ks))
	for i := range ks {
		pointsK[i] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0x280+i)), Trials: trials}
	}
	futK := StartSweepBlocked(p, "E2b", pointsK, BlockTrial{
		Process: core.VertexProcess,
		Stop:    core.UntilTwoAdjacent,
		Init: func(pi, _ int, dst []int, r *rand.Rand) error {
			core.ExtremesOpinionsInto(dst, ks[pi], r)
			return nil
		},
	}, func(_, _ int, res core.Result) (float64, error) {
		return float64(res.TwoAdjacentStep), nil
	})

	resN, err := futN.Wait()
	if err != nil {
		return nil, err
	}
	meanT := make([]float64, len(ns))
	tblN := sim.NewTable(
		fmt.Sprintf("E2a: steps to two adjacent opinions on K_n, k=%d, extremes profile", k),
		"n", "trials", "mean T", "stderr", "T/n^2", "T/(n log n)",
	)
	for i, n := range ns {
		s := stats.Summarize(resN[i])
		meanT[i] = s.Mean
		nf := float64(n)
		tblN.AddRow(n, trials, s.Mean, s.Stderr(), s.Mean/(nf*nf), s.Mean/(nf*math.Log(nf)))
	}
	rep.Tables = append(rep.Tables, tblN)

	nsF := make([]float64, len(ns))
	for i, n := range ns {
		nsF[i] = float64(n)
	}
	expo, _, r2, err := stats.PowerLawFit(nsF, meanT)
	if err != nil {
		return nil, err
	}
	rep.check(expo < 1.95,
		"T = o(n^2)",
		"fitted T ∝ n^%.2f (R²=%.3f); paper bound requires exponent < 2", expo, r2)
	first := meanT[0] / (nsF[0] * nsF[0])
	last := meanT[len(ns)-1] / (nsF[len(ns)-1] * nsF[len(ns)-1])
	rep.check(last < first,
		"T/n^2 decreasing",
		"T/n² fell from %.4g (n=%d) to %.4g (n=%d)", first, ns[0], last, ns[len(ns)-1])

	plot := textplot.New(60, 14)
	plot.Title = "E2 figure: reduction time T vs n on K_n (log-log; * measured)"
	plot.XLabel = "n"
	plot.YLabel = "T"
	plot.LogX, plot.LogY = true, true
	if err := plot.Add('*', nsF, meanT); err != nil {
		return nil, err
	}
	rep.Figures = append(rep.Figures, plot.Render())

	resK, err := futK.Wait()
	if err != nil {
		return nil, err
	}
	meanTk := make([]float64, len(ks))
	tblK := sim.NewTable(
		fmt.Sprintf("E2b: steps to two adjacent opinions on K_%d vs k, extremes profile", n),
		"k", "trials", "mean T", "stderr", "T/(k n log n)",
	)
	for i, kk := range ks {
		s := stats.Summarize(resK[i])
		meanTk[i] = s.Mean
		tblK.AddRow(kk, trials, s.Mean, s.Stderr(), s.Mean/(float64(kk)*float64(n)*math.Log(float64(n))))
	}
	rep.Tables = append(rep.Tables, tblK)

	ksF := make([]float64, len(ks))
	for i, kk := range ks {
		ksF[i] = float64(kk)
	}
	expoK, _, r2k, err := stats.PowerLawFit(ksF, meanTk)
	if err != nil {
		return nil, err
	}
	rep.check(expoK > 0.3 && expoK < 1.6,
		"T roughly linear in k",
		"fitted T ∝ k^%.2f (R²=%.3f); eq. (4)'s k-dependence is the kn log n term", expoK, r2k)
	rep.note("Extremes-only profiles (half at 1, half at k) are the worst case: the range must collapse through every intermediate value.")
	return rep, nil
}

package exp

import (
	"fmt"
	"math"

	"div/internal/baseline"
	"div/internal/core"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E8LoadBalancing reproduces the introduction's comparison between DIV
// and the edge-averaging load-balancing protocol of Berenbrink et al.
// [5]: load balancing needs a coordinated two-endpoint update and
// conserves the total exactly, reaching a ⌊c⌋/⌈c⌉ *mixture* in
// O(n log n + n log k) steps; DIV uses one-sided pull interactions,
// conserves the total only in expectation, and reaches a single
// consensus value in {⌊c⌋, ⌈c⌉}.
//
// Both run on identical graphs and initial loads; measured: steps until
// ≤ 3 consecutive values remain, steps until ≤ 2 adjacent values
// remain, exact/approximate conservation, and the final accuracy
// relative to the initial average.
func E8LoadBalancing(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E8", Name: "DIV vs load-balancing averaging [5]"}

	n := p.pick(120, 300)
	k := 16
	trials := p.pick(60, 250)
	gs := newGraphs()
	defer gs.Release()
	g := gs.Complete(n)

	type metrics struct {
		threeStep, twoStep float64
		sumShift           float64 // |S(end) - S(0)|
		accurate           bool    // final values ⊆ {⌊c⌋, ⌈c⌉}
	}
	run := func(rule core.Rule, streamBase uint64) ([]metrics, error) {
		return SweepTrials(p, "E8", g, rng.DeriveSeed(p.Seed, streamBase), trials,
			func(trial int, seed uint64, sc *core.Scratch) (metrics, error) {
				r := rng.New(seed)
				init := core.UniformOpinions(n, k, r)
				var s0 int64
				for _, x := range init {
					s0 += int64(x)
				}
				c := float64(s0) / float64(n)
				var sEnd int64
				res, err := core.Run(core.Config{
					Engine:  p.coreEngine(),
					Probe:   p.probeFor(trial, seed),
					Graph:   g,
					Initial: init,
					Process: core.EdgeProcess,
					Rule:    rule,
					Stop:    core.UntilTwoAdjacent,
					Seed:    rng.SplitMix64(seed),
					Observer: func(s *core.State) bool {
						sEnd = s.Sum()
						return true
					},
					ObserveEvery: 1,
					Scratch:      sc,
				})
				if err != nil {
					return metrics{}, err
				}
				if res.TwoAdjacentStep < 0 {
					return metrics{}, fmt.Errorf("%s: reduction incomplete after %d steps", rule.Name(), res.Steps)
				}
				lo, hi := roundedPair(c)
				return metrics{
					threeStep: float64(res.ThreeStep),
					twoStep:   float64(res.TwoAdjacentStep),
					sumShift:  math.Abs(float64(sEnd - s0)),
					accurate:  res.FinalMin >= lo && res.FinalMax <= hi,
				}, nil
			})
	}

	divM, err := run(core.DIV{}, 0x800)
	if err != nil {
		return nil, err
	}
	lbM, err := run(baseline.LoadBalance{}, 0x801)
	if err != nil {
		return nil, err
	}

	summarize := func(ms []metrics) (three, two stats.Summary, maxShift float64, accFrac float64) {
		var threes, twos []float64
		acc := 0
		for _, m := range ms {
			threes = append(threes, m.threeStep)
			twos = append(twos, m.twoStep)
			if m.sumShift > maxShift {
				maxShift = m.sumShift
			}
			if m.accurate {
				acc++
			}
		}
		return stats.Summarize(threes), stats.Summarize(twos), maxShift, float64(acc) / float64(len(ms))
	}
	d3, d2, dShift, dAcc := summarize(divM)
	l3, l2, lShift, lAcc := summarize(lbM)

	tbl := sim.NewTable(
		fmt.Sprintf("E8: DIV vs load balancing on %s, k=%d uniform loads, edge process", g.Name(), k),
		"rule", "mean steps to ≤3 values", "mean steps to ≤2 adjacent", "max |ΔS|", "frac final ⊆ {⌊c⌋,⌈c⌉}",
	)
	tbl.AddRow("div", d3.Mean, d2.Mean, dShift, dAcc)
	tbl.AddRow("loadbalance", l3.Mean, l2.Mean, lShift, lAcc)
	rep.Tables = append(rep.Tables, tbl)

	rep.check(lShift == 0,
		"load balancing conserves the sum exactly",
		"max |ΔS| = %.0f across %d trials", lShift, trials)
	rep.check(dShift > 0,
		"DIV conserves only in expectation",
		"max |ΔS| = %.0f — nonzero pathwise, zero in expectation (Lemma 3)", dShift)
	rep.check(l2.Mean < d2.Mean,
		"load balancing contracts faster",
		"LB reached two adjacent values in %.0f steps vs DIV's %.0f — the price of DIV's weaker one-sided interaction", l2.Mean, d2.Mean)
	rep.check(lAcc >= 0.95,
		"load balancing always lands on the rounded average",
		"LB final values ⊆ {⌊c⌋,⌈c⌉} in %.1f%% of trials — guaranteed by exact conservation", 100*lAcc)
	divAccMin := 0.7
	if p.Quick {
		divAccMin = 0.55 // at quick sizes √T/n drift makes the *pair* test noisy
	}
	rep.check(dAcc >= divAccMin,
		"DIV usually lands on the rounded average",
		"DIV final pair ⊆ {⌊c⌋,⌈c⌉} in %.1f%% of trials (martingale drift of scale √T/n shifts the pair by one in the rest; the *winner* statement of Theorem 2 is the E1 experiment)", 100*dAcc)
	rep.note("After reaching {⌊c⌋,⌈c⌉}, DIV's final stage (two-opinion pull voting) picks a single value; load balancing freezes in a mixture unless the total is divisible by n.")
	return rep, nil
}

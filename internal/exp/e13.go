package exp

import (
	"fmt"
	"sort"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/spectral"
	"div/internal/textplot"
)

// E13LambdaKThreshold maps the boundary of Theorem 2's hypothesis
// λk = o(1): across graph families spanning λ from 1/n to ≈1, with k
// fixed, the probability that the consensus lands on {⌊c⌋, ⌈c⌉}
// degrades as λk grows — sharply so under adversarial contiguous
// placement of opinions, which is what the known counterexamples use.
//
// For each family the experiment reports λ, λk, and the accuracy under
// (a) uniformly shuffled and (b) contiguous-block initial placement.
func E13LambdaKThreshold(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E13", Name: "accuracy across the λk threshold"}
	k := 10
	trials := p.pick(60, 250)
	gs := newGraphs()
	defer gs.Release()

	var graphs []*graph.Graph
	nBig := p.pick(120, 240)
	nSmall := p.pick(48, 96)
	graphs = append(graphs, gs.Complete(nBig))
	for _, d := range []int{32, 8, 4} {
		g, err := gs.RandomRegular(nBig, d, rng.DeriveSeed(p.Seed, 0xe1300+uint64(d)))
		if err != nil {
			return nil, err
		}
		graphs = append(graphs, g)
	}
	side := 1
	for side*side < nSmall {
		side++
	}
	if side%2 == 0 {
		side++
	}
	graphs = append(graphs, gs.Torus(side, side))
	oddSmall := nSmall + 1 - nSmall%2
	graphs = append(graphs, gs.Cycle(oddSmall))

	// Contiguous-block initial profile per graph; the shuffled variant
	// permutes it per trial.
	blockInits := make([][]int, len(graphs))
	for gi, g := range graphs {
		n := g.N()
		blockInit := make([]int, n)
		span := (n + k - 1) / k
		for v := 0; v < n; v++ {
			blockInit[v] = 1 + v/span
			if blockInit[v] > k {
				blockInit[v] = k
			}
		}
		blockInits[gi] = blockInit
	}

	// One sweep over (graph, placement) pairs: point 2·gi is the
	// shuffled run (stream 0xd00+2gi), 2·gi+1 the contiguous one.
	points := make([]Point, 2*len(graphs))
	for gi, g := range graphs {
		points[2*gi] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0xd00+2*gi)), Trials: trials}
		points[2*gi+1] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0xd00+2*gi+1)), Trials: trials}
	}
	results, err := Sweep(p, "E13", points, func(fi, trial int, seed uint64, sc *core.Scratch) (int, error) {
		gi, shuffle := fi/2, fi%2 == 0
		g := graphs[gi]
		n := g.N()
		rr := sc.Rand(seed)
		init := append([]int(nil), blockInits[gi]...)
		if shuffle {
			rng.Shuffle(rr, init)
		}
		st := core.MustState(g, init)
		c := st.WeightedAverage()
		res, err := core.Run(core.Config{
			Engine:   p.coreEngine(),
			Probe:    p.probeFor(trial, seed),
			Graph:    g,
			Initial:  init,
			Process:  core.VertexProcess,
			MaxSteps: 500 * int64(n) * int64(n),
			Seed:     rng.SplitMix64(seed),
			Scratch:  sc,
		})
		if err != nil {
			return 0, err
		}
		if !res.Consensus {
			return 0, fmt.Errorf("%v: no consensus after %d steps", g, res.Steps)
		}
		if isRoundedAverage(res.Winner, c) {
			return 1, nil
		}
		return 0, nil
	})
	if err != nil {
		return nil, err
	}
	acc := func(fi int) float64 {
		hits := 0
		for _, x := range results[fi] {
			hits += x
		}
		return float64(hits) / float64(trials)
	}

	type row struct {
		name                    string
		n                       int
		lambda, lambdaK         float64
		accShuffled, accBlocked float64
	}
	rows := make([]row, 0, len(graphs))
	for gi, g := range graphs {
		lam, err := gs.Lambda(g, spectral.Options{})
		if err != nil {
			return nil, fmt.Errorf("E13: λ(%v): %w", g, err)
		}
		rows = append(rows, row{g.Name(), g.N(), lam, lam * float64(k), acc(2 * gi), acc(2*gi + 1)})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].lambdaK < rows[j].lambdaK })
	tbl := sim.NewTable(
		fmt.Sprintf("E13: P[winner ∈ {⌊c⌋,⌈c⌉}] vs λk (k=%d, DIV vertex process)", k),
		"graph", "n", "lambda", "lambda*k", "acc (shuffled)", "acc (contiguous blocks)",
	)
	var xs, ys []float64
	for _, rw := range rows {
		tbl.AddRow(rw.name, rw.n, rw.lambda, rw.lambdaK, rw.accShuffled, rw.accBlocked)
		xs = append(xs, rw.lambdaK)
		ys = append(ys, rw.accBlocked)
	}
	rep.Tables = append(rep.Tables, tbl)

	plot := textplot.New(60, 12)
	plot.Title = "E13 figure: accuracy (contiguous placement) vs λk"
	plot.XLabel = "λk (log)"
	plot.YLabel = "P[winner ∈ {⌊c⌋,⌈c⌉}]"
	plot.LogX = true
	if err := plot.Add('o', xs, ys); err != nil {
		return nil, err
	}
	rep.Figures = append(rep.Figures, plot.Render())

	best, worst := rows[0], rows[len(rows)-1]
	rep.check(best.accBlocked >= 0.9,
		"small λk: accurate even under adversarial placement",
		"%s (λk=%.3f): blocked accuracy %.2f", best.name, best.lambdaK, best.accBlocked)
	rep.check(worst.accBlocked <= best.accBlocked-0.12,
		"large λk: guarantee degrades",
		"%s (λk=%.2f): blocked accuracy %.2f vs %.2f at λk=%.3f", worst.name, worst.lambdaK, worst.accBlocked, best.accBlocked, best.lambdaK)
	rep.note("Shuffled placement is kind even to poor expanders — the known failures (and [13]'s counterexample) need structured placement, which the 'contiguous blocks' column supplies.")
	return rep, nil
}

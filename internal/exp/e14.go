package exp

import (
	"fmt"
	"math"
	"sync"

	"div/internal/core"
	"div/internal/netsim"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E14Distributed is the repository's deployment extension: DIV run as a
// real message-passing pull protocol over a simulated asynchronous
// network (internal/netsim) with Poisson node clocks and exponential
// message latencies.
//
// With zero latency the protocol is provably the paper's vertex process
// (Poisson thinning), so its winner accuracy must match the sequential
// engine's; the latency sweep then quantifies robustness of the
// rounded-average guarantee to stale reads, a regime outside the
// paper's model. The sequential reference and the latency sweep are
// independent futures, so their trials overlap on the scheduler.
func E14Distributed(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E14", Name: "distributed message-passing deployment"}
	gs := newGraphs()
	defer gs.Release()

	n := p.pick(90, 150)
	k := 5
	const target = 3.4
	trials := p.pick(80, 300)
	g := gs.Complete(n)
	counts, err := profileWithMean(n, k, target)
	if err != nil {
		return nil, err
	}
	c := meanOfCounts(counts)

	// Sequential reference accuracy.
	futRef := StartSweep(p, "E14ref", []Point{{G: g, Seed: rng.DeriveSeed(p.Seed, 0xe14), Trials: trials}},
		func(_, trial int, seed uint64, sc *core.Scratch) (int, error) {
			r := sc.Rand(seed)
			init, err := core.BlockOpinionsInto(sc.Initial(), counts, r)
			if err != nil {
				return 0, err
			}
			res, err := core.Run(core.Config{
				Engine:  p.coreEngine(),
				Probe:   p.probeFor(trial, seed),
				Graph:   g,
				Initial: init,
				Process: core.VertexProcess,
				Seed:    rng.SplitMix64(seed),
				Scratch: sc,
			})
			if err != nil {
				return 0, err
			}
			if res.Consensus && isRoundedAverage(res.Winner, c) {
				return 1, nil
			}
			return 0, nil
		})

	latencies := []float64{0, 0.5, 2}
	if !p.Quick {
		latencies = append(latencies, 8)
	}
	type out struct {
		good, consensus int
		firings         float64
		messages        float64
	}
	latPoints := make([]Point, len(latencies))
	for li := range latencies {
		latPoints[li] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0xf00+li)), Trials: trials}
	}
	// Event-queue and opinion buffers are reused across trials via a
	// pool (netsim reuse never changes results; trials draw all
	// randomness from their seeds).
	var nsScratch sync.Pool
	futLat := StartSweep(p, "E14lat", latPoints, func(li, trial int, seed uint64, _ *core.Scratch) (out, error) {
		r := rng.New(seed)
		init, err := core.BlockOpinions(n, counts, r)
		if err != nil {
			return out{}, err
		}
		nsc, _ := nsScratch.Get().(*netsim.Scratch)
		if nsc == nil {
			nsc = &netsim.Scratch{}
		}
		defer nsScratch.Put(nsc)
		res, err := netsim.Run(netsim.Config{
			Graph:           g,
			Initial:         init,
			Latency:         latencies[li],
			Seed:            rng.SplitMix64(seed),
			StopOnConsensus: true,
			Scratch:         nsc,
		})
		if err != nil {
			return out{}, err
		}
		o := out{
			firings:  float64(res.Firings) / float64(n),
			messages: float64(res.Messages),
		}
		if res.Consensus {
			o.consensus = 1
			if isRoundedAverage(res.Winner, c) {
				o.good = 1
			}
		}
		return o, nil
	})

	refRes, err := futRef.Wait()
	if err != nil {
		return nil, err
	}
	refAcc := fracOnes(refRes[0])

	tbl := sim.NewTable(
		fmt.Sprintf("E14: distributed DIV on %s, k=%d, c=%.3f (sequential reference accuracy %.3f)", g.Name(), k, c, refAcc),
		"mean latency (firing periods)", "trials", "accuracy", "mean firings/node", "mean messages", "consensus rate",
	)

	latRes, err := futLat.Wait()
	if err != nil {
		return nil, err
	}
	accs := make([]float64, len(latencies))
	for li, lat := range latencies {
		var good, cons int
		var fir, msg []float64
		for _, o := range latRes[li] {
			good += o.good
			cons += o.consensus
			fir = append(fir, o.firings)
			msg = append(msg, o.messages)
		}
		acc := float64(good) / float64(trials)
		accs[li] = acc
		tbl.AddRow(lat, trials, acc, stats.Mean(fir), stats.Mean(msg), float64(cons)/float64(trials))
	}
	rep.Tables = append(rep.Tables, tbl)

	rep.check(math.Abs(accs[0]-refAcc) <= 0.12,
		"zero latency ≡ vertex process",
		"message-passing accuracy %.3f vs sequential %.3f (Poisson thinning equivalence)", accs[0], refAcc)
	rep.check(accs[0] >= 0.85,
		"distributed DIV hits the rounded average",
		"accuracy %.3f at zero latency", accs[0])
	rep.check(accs[len(accs)-1] >= 0.5,
		"graceful degradation under stale reads",
		"accuracy %.3f at mean latency %.1f firing periods", accs[len(accs)-1], latencies[len(latencies)-1])
	rep.note("Latency is measured in units of a node's mean firing period; at latency 2 every observation is on average two updates stale.")
	return rep, nil
}

func fracOnes(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

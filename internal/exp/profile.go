package exp

import (
	"fmt"
	"math"
)

// profileWithMean builds exact opinion counts over {1..k} summing to n
// whose average is exactly round(target·n)/n ≈ target. Mass sits at the
// two extreme opinions (plus at most one interior value to absorb the
// rounding residue), which is simultaneously the worst case for the
// reduction phase and an exact pin on the initial average c that
// Theorem 2's winner-split prediction is stated in terms of.
func profileWithMean(n, k int, target float64) ([]int, error) {
	if k < 2 || n < 1 {
		return nil, fmt.Errorf("exp: profileWithMean needs k >= 2, n >= 1 (got k=%d n=%d)", k, n)
	}
	if target < 1 || target > float64(k) {
		return nil, fmt.Errorf("exp: target mean %v outside [1,%d]", target, k)
	}
	total := int(math.Round(target * float64(n)))
	if total < n {
		total = n
	}
	if total > k*n {
		total = k * n
	}
	counts := make([]int, k)
	counts[0] = n
	sum := n
	// Bulk: move vertices 1 → k, each adds k-1 to the sum.
	moves := (total - sum) / (k - 1)
	if moves > counts[0] {
		moves = counts[0]
	}
	counts[0] -= moves
	counts[k-1] += moves
	sum += moves * (k - 1)
	// Residue: move one vertex 1 → 1+rem.
	if rem := total - sum; rem > 0 {
		if counts[0] == 0 {
			// All mass at k already; pull one back instead: k → k-rem.
			counts[k-1]--
			counts[k-1-rem]++
		} else {
			counts[0]--
			counts[rem]++
		}
	}
	return counts, nil
}

// meanOfCounts returns the exact average opinion of a counts profile.
func meanOfCounts(counts []int) float64 {
	var sum, n int
	for i, c := range counts {
		sum += (i + 1) * c
		n += c
	}
	return float64(sum) / float64(n)
}

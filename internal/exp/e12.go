package exp

import (
	"fmt"
	"math"

	"div/internal/core"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/spectral"
	"div/internal/stats"
)

// E12ExtremeElimination reproduces the two-phase mechanism inside the
// proof of Theorem 1 (Lemmas 10–14): first the π-mass of one extreme
// opinion drops below a threshold ε within T₁(ε) = ⌈2n·log(1/(2ε²))⌉
// steps with probability ≥ 1/2 (expander mixing, Lemma 10(i)), then
// the small extreme dies within T_p·√ε steps with probability ≥ 1/2
// (coupling with pull voting, Lemmas 11–12).
//
// Measured per trial: τ_ε (hitting time of mass ≤ ε for an extreme)
// and τ_extr (death of the first extreme). Lemma 10 with η = 1/2
// implies median(τ_ε) ≤ T₁(ε) — checked directly — and Lemma 14 bounds
// E[τ_extr] ≤ 4(T₁ + T_p√ε), whose (enormous) slack the table reports.
func E12ExtremeElimination(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E12", Name: "extreme-opinion elimination (Lemmas 10-14)"}

	n := p.pick(150, 400)
	k := 5
	const eps = 0.05
	trials := p.pick(100, 400)
	gs := newGraphs()
	defer gs.Release()
	g := gs.Complete(n)
	lam := spectral.LambdaComplete(n)
	if eps < 4*lam*lam {
		return nil, fmt.Errorf("E12: ε=%v violates Lemma 10's ε ≥ 4λ² at n=%d", eps, n)
	}

	type outcome struct {
		tauEps, tauExtr float64
	}
	outs, err := SweepTrials(p, "E12", g, rng.DeriveSeed(p.Seed, 0xe12), trials,
		func(trial int, seed uint64, sc *core.Scratch) (outcome, error) {
			r := sc.Rand(seed)
			s := core.MustState(g, core.UniformOpinions(n, k, r))
			sched, err := core.NewScheduler(s, core.VertexProcess)
			if err != nil {
				return outcome{}, err
			}
			rr := rng.New(rng.SplitMix64(seed))
			minOp, maxOp := s.Min(), s.Max()
			var tauEps, tauExtr float64 = -1, -1
			limit := int64(200) * int64(n) * int64(n)
			var step int64
			for ; step < limit; step++ {
				if tauEps < 0 && math.Min(s.PiMass(s.Min()), s.PiMass(s.Max())) <= eps {
					tauEps = float64(step)
				}
				if s.Min() != minOp || s.Max() != maxOp {
					tauExtr = float64(step)
					break
				}
				v, w := sched.Pair(rr)
				core.DIV{}.Step(s, rr, v, w)
			}
			if tauExtr < 0 {
				return outcome{}, fmt.Errorf("extreme never eliminated in %d steps", limit)
			}
			if tauEps < 0 {
				tauEps = tauExtr
			}
			return outcome{tauEps: tauEps, tauExtr: tauExtr}, nil
		})
	if err != nil {
		return nil, err
	}

	var epsTimes, extrTimes []float64
	for _, o := range outs {
		epsTimes = append(epsTimes, o.tauEps)
		extrTimes = append(extrTimes, o.tauExtr)
	}
	medEps, err := stats.Median(epsTimes)
	if err != nil {
		return nil, err
	}
	meanExtr := stats.Summarize(extrTimes).Mean

	nf := float64(n)
	t1 := math.Ceil(2 * nf * math.Log(1/(2*eps*eps)))
	piMin := 1 / nf
	tp := math.Ceil(64 * nf / (math.Sqrt2 * (1 - lam) * piMin))
	lemma14Bound := 4 * (t1 + tp*math.Sqrt(eps))

	tbl := sim.NewTable(
		fmt.Sprintf("E12: extreme-opinion elimination on %s, k=%d, uniform initial, ε=%.2f", g.Name(), k, eps),
		"quantity", "measured", "paper bound", "ratio",
	)
	tbl.AddRow("median τ_ε (mass of an extreme ≤ ε)", medEps, t1, medEps/t1)
	tbl.AddRow("mean τ_extr (first extreme dies)", meanExtr, lemma14Bound, meanExtr/lemma14Bound)
	rep.Tables = append(rep.Tables, tbl)

	rep.check(medEps <= t1,
		"Lemma 10(i): median hitting time within T₁(ε)",
		"median τ_ε = %.0f ≤ T₁ = %.0f (η = 1/2)", medEps, t1)
	rep.check(meanExtr <= lemma14Bound,
		"Lemma 14(i): expected elimination within 4(T₁+T_p√ε)",
		"mean τ_extr = %.0f ≤ %.0f (ratio %.4f — the pull-voting coupling bound is very loose on K_n)",
		meanExtr, lemma14Bound, meanExtr/lemma14Bound)
	rep.check(meanExtr < 0.1*nf*nf,
		"elimination is o(n²) in practice",
		"mean τ_extr = %.0f vs n² = %.0f", meanExtr, nf*nf)
	return rep, nil
}

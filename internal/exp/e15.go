package exp

import (
	"fmt"
	"math"

	"div/internal/baseline"
	"div/internal/core"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E15StepSizeAblation is the repository's design ablation: DIV's "move
// exactly one unit" choice, swept through the step-size knob that
// interpolates to pull voting.
//
//	s = 1      the paper's DIV rule
//	s = 2,4,8  larger discrete nudges
//	s = ∞      pull voting (wholesale adoption)
//
// The trade measured on a fixed non-integer-average profile: steps to
// consensus fall with s, while P[winner ∈ {⌊c⌋,⌈c⌉}] decays from ≈ 1
// (Theorem 2) toward pull voting's support lottery (eq. 3). The s = 1
// endpoint is what buys the averaging semantics.
func E15StepSizeAblation(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E15", Name: "step-size ablation (DIV → pull)"}
	gs := newGraphs()
	defer gs.Release()

	n := p.pick(200, 400)
	k := 9
	const target = 5.4
	trials := p.pick(200, 800)
	g := gs.Complete(n)
	counts, err := profileWithMean(n, k, target)
	if err != nil {
		return nil, err
	}
	c := meanOfCounts(counts)

	type variant struct {
		label string
		rule  core.Rule
	}
	variants := []variant{
		{"s=1 (DIV)", core.DIV{}},
		{"s=2", core.IncrementalStep{S: 2}},
		{"s=4", core.IncrementalStep{S: 4}},
		{"s=8", core.IncrementalStep{S: 8}},
		{"s=inf (pull)", baseline.Pull{}},
	}

	type out struct {
		good  int
		steps float64
		dev   float64
	}
	points := make([]Point, len(variants))
	for vi := range variants {
		points[vi] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0x1500+vi)), Trials: trials}
	}
	results, err := Sweep(p, "E15", points, func(vi, trial int, seed uint64, sc *core.Scratch) (out, error) {
		vt := variants[vi]
		r := sc.Rand(seed)
		init, err := core.BlockOpinionsInto(sc.Initial(), counts, r)
		if err != nil {
			return out{}, err
		}
		res, err := core.Run(core.Config{
			Engine:  p.coreEngine(),
			Probe:   p.probeFor(trial, seed),
			Graph:   g,
			Initial: init,
			Process: core.EdgeProcess,
			Rule:    vt.rule,
			Seed:    rng.SplitMix64(seed),
			Scratch: sc,
		})
		if err != nil {
			return out{}, err
		}
		if !res.Consensus {
			return out{}, fmt.Errorf("%s: no consensus after %d steps", vt.label, res.Steps)
		}
		o := out{steps: float64(res.Steps)}
		o.dev = math.Abs(float64(res.Winner)*float64(n) - c*float64(n))
		if isRoundedAverage(res.Winner, c) {
			o.good = 1
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := sim.NewTable(
		fmt.Sprintf("E15: step-size ablation on %s, k=%d, c=%.3f", g.Name(), k, c),
		"rule", "trials", "acc = P[winner ∈ {⌊c⌋,⌈c⌉}]", "mean steps", "mean |ΔW| at consensus",
	)
	accs := make([]float64, len(variants))
	steps := make([]float64, len(variants))
	for vi, vt := range variants {
		good := 0
		var stepList, devList []float64
		for _, o := range results[vi] {
			good += o.good
			stepList = append(stepList, o.steps)
			devList = append(devList, o.dev)
		}
		accs[vi] = float64(good) / float64(trials)
		steps[vi] = stats.Mean(stepList)
		tbl.AddRow(vt.label, trials, accs[vi], steps[vi], stats.Mean(devList))
	}
	rep.Tables = append(rep.Tables, tbl)

	rep.check(accs[0] >= 0.95,
		"s=1 (the paper's rule) is accurate",
		"accuracy %.3f at unit steps", accs[0])
	last := len(variants) - 1
	rep.check(accs[last] <= accs[0]-0.3,
		"pull endpoint loses the averaging semantics",
		"accuracy falls from %.3f (s=1) to %.3f (pull): the rounded-average guarantee is specific to small steps", accs[0], accs[last])
	unitBest := true
	for i := 1; i < len(accs); i++ {
		if accs[0] < accs[i]+0.05 {
			unitBest = false
		}
	}
	rep.check(unitBest,
		"unit steps dominate every larger step size",
		"accuracy %v along s = 1,2,4,8,∞ — s=1 beats each by ≥ 5pp", accs)
	within := steps[last] < 2*steps[0] && steps[0] < 2*steps[last]
	rep.check(within,
		"no speed payoff for larger steps",
		"mean steps: %.0f (s=1) vs %.0f (pull) — the Θ(n²)-ish final two-opinion stage dominates every rule, so larger steps buy no asymptotic speed while forfeiting accuracy", steps[0], steps[last])
	rep.note("The mean |ΔW| column shows the mechanism: per-update weight increments grow with s, inflating the Azuma envelope of eq. (5) until concentration around c is lost.")
	rep.note("Even step sizes also show parity resonance (s=2 below s=4 here): moves of fixed even size can strand opinion mass on one residue class until clamping at an observed value breaks parity.")
	return rep, nil
}

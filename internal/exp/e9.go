package exp

import (
	"fmt"
	"math/rand/v2"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E9PathCounterexample reproduces the negative result quoted from [13]
// (Theorem 3 there): when λk = Ω(1) — the path has λ = 1 - O(1/n²) —
// an opinion other than ⌊c⌋/⌈c⌉ can win with constant probability.
//
// The path carries three contiguous blocks 1|2|3 with proportions
// 40/30/30, so c = 1.9 and Theorem 2's target is {1,2}; opinion 3 is
// the off-average outcome. On the path the block interfaces perform
// random walks and 3 wins with constant probability; the same
// proportions shuffled onto a complete graph push P[3 wins] to ≈ 0,
// isolating expansion as the operative assumption.
func E9PathCounterexample(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E9", Name: "path counterexample ([13] Thm 3)"}

	nPath := p.pick(20, 30)
	nK := p.pick(150, 240)
	trials := p.pick(300, 800)

	blocks := func(n int) []int {
		init := make([]int, n)
		b1 := 2 * n / 5
		b2 := b1 + 3*n/10
		for v := 0; v < n; v++ {
			switch {
			case v < b1:
				init[v] = 1
			case v < b2:
				init[v] = 2
			default:
				init[v] = 3
			}
		}
		return init
	}

	gs := newGraphs()
	defer gs.Release()

	// Both graphs run on the blocked multi-trial kernel: the path point
	// exercises the generic CSR lane loops (the K_n point the complete
	// kernel), so E9's slow Θ(n³) trials get SoA memory-level
	// parallelism instead of one cache miss at a time.
	run := func(g *graph.Graph, shuffle bool, stream uint64) (*SweepFuture[int], float64) {
		n := g.N()
		base := blocks(n)
		c := core.MustState(g, base).Average()
		fut := StartSweepBlocked(p, "E9", []Point{{G: g, Seed: rng.DeriveSeed(p.Seed, stream), Trials: trials}},
			BlockTrial{
				Process:  core.VertexProcess,
				MaxSteps: 400 * int64(n) * int64(n) * int64(n), // path consensus is Θ(n³)-ish
				Init: func(_, _ int, dst []int, r *rand.Rand) error {
					copy(dst, base)
					if shuffle {
						rng.Shuffle(r, dst)
					}
					return nil
				},
			},
			func(_, _ int, res core.Result) (int, error) {
				if !res.Consensus {
					return 0, fmt.Errorf("no consensus after %d steps", res.Steps)
				}
				return res.Winner, nil
			})
		return fut, c
	}

	hist := func(fut *SweepFuture[int]) (*stats.IntHistogram, error) {
		res, err := fut.Wait()
		if err != nil {
			return nil, err
		}
		h := stats.NewIntHistogram()
		for _, w := range res[0] {
			h.Add(w)
		}
		return h, nil
	}

	// Both sweeps overlap on the scheduler; the slow Θ(n³) path trials
	// interleave with the K_n ones.
	futPath, cPath := run(gs.Path(nPath), false, 0x900)
	futK, cK := run(gs.Complete(nK), true, 0x901)
	pathHist, err := hist(futPath)
	if err != nil {
		return nil, err
	}
	completeHist, err := hist(futK)
	if err != nil {
		return nil, err
	}

	tbl := sim.NewTable(
		"E9: winner with blocks 1|2|3 (40/30/30) — contiguous on the path vs shuffled on K_n",
		"graph", "c", "trials", "P[1 wins]", "P[2 wins]", "P[3 wins] (off-average)",
	)
	tbl.AddRow(fmt.Sprintf("path(%d), contiguous", nPath), cPath, trials,
		pathHist.Proportion(1), pathHist.Proportion(2), pathHist.Proportion(3))
	tbl.AddRow(fmt.Sprintf("complete(%d), shuffled", nK), cK, trials,
		completeHist.Proportion(1), completeHist.Proportion(2), completeHist.Proportion(3))
	rep.Tables = append(rep.Tables, tbl)

	pOff := pathHist.Proportion(3)
	cOff := completeHist.Proportion(3)
	rep.check(pOff >= 0.1,
		"off-average opinion wins on the path",
		"P[3 wins] = %.3f despite c = %.2f (target {1,2})", pOff, cPath)
	rep.check(cOff <= 0.08,
		"expander restores the guarantee",
		"on K_%d the off-average opinion won only %.1f%% of runs", nK, 100*cOff)
	rep.check(pOff > cOff+0.08,
		"expansion is the operative assumption",
		"off-average win rate: path %.1f%% vs K_n %.1f%%", 100*pOff, 100*cOff)
	rep.note("The path has λ = 1 - Θ(1/n²): λk = Ω(1) violates Theorem 2's hypothesis, and the contiguous-block profile realizes [13]'s counterexample.")
	return rep, nil
}

package exp

import (
	"fmt"
	"strings"

	"div/internal/core"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E6StageEvolution reproduces the paper's introductory worked example:
// starting from opinion support {1,2,5}, the system evolves through
// stages such as {1,2,5} → {1,2,4} → {1,2,3,4} → {2,3,4} → {2,4} →
// {2,3} → {3}, where extremes disappear irreversibly and intermediate
// values may vanish and reappear.
//
// One run's full trace is printed; aggregates over many runs record the
// elimination order of extremes, the stage counts, and how often an
// interior opinion reappears after vanishing (the paper's "opinion 3
// disappears in stage four and appears again in stage five").
func E6StageEvolution(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E6", Name: "stage evolution (intro example)"}

	n := p.pick(60, 120)
	trials := p.pick(150, 600)
	gs := newGraphs()
	defer gs.Release()
	g := gs.Complete(n)
	// A third of the vertices each at 1, 2, 5 — the paper's example
	// support set; c = 8/3 ≈ 2.67, so {2,3} should fight the final.
	counts := []int{n / 3, n / 3, 0, 0, n - 2*(n/3)}

	type outcome struct {
		winner        int
		stages        int
		firstExtreme  int  // which extreme vanished first (1 or 5)
		reappeared    bool // some opinion vanished then reappeared
		validSupports bool
	}
	outs, err := SweepTrials(p, "E6", g, rng.DeriveSeed(p.Seed, 0xe6), trials,
		func(trial int, seed uint64, sc *core.Scratch) (outcome, error) {
			r := rng.New(seed)
			init, err := core.BlockOpinions(n, counts, r)
			if err != nil {
				return outcome{}, err
			}
			res, err := core.Run(core.Config{
				Engine:       p.coreEngine(),
				Probe:        p.probeFor(trial, seed),
				Graph:        g,
				Initial:      init,
				Process:      core.VertexProcess,
				Seed:         rng.SplitMix64(seed),
				TraceSupport: true,
				Scratch:      sc,
			})
			if err != nil {
				return outcome{}, err
			}
			if !res.Consensus {
				return outcome{}, fmt.Errorf("no consensus after %d steps", res.Steps)
			}
			o := outcome{winner: res.Winner, stages: len(res.Stages), validSupports: true}
			seen := map[int]bool{}
			gone := map[int]bool{}
			for _, st := range res.Stages {
				if len(st.Opinions) == 0 || st.Opinions[0] < 1 || st.Opinions[len(st.Opinions)-1] > 5 {
					o.validSupports = false
				}
				present := map[int]bool{}
				for _, op := range st.Opinions {
					present[op] = true
					if gone[op] {
						o.reappeared = true
					}
					seen[op] = true
				}
				for op := range seen {
					if !present[op] {
						gone[op] = true
					} else {
						delete(gone, op)
					}
				}
				if o.firstExtreme == 0 {
					if !present[1] {
						o.firstExtreme = 1
					} else if !present[5] {
						o.firstExtreme = 5
					}
				}
			}
			return o, nil
		})
	if err != nil {
		return nil, err
	}

	winners := stats.NewIntHistogram()
	firstOut := stats.NewIntHistogram()
	reappearances := 0
	valid := 0
	var stageLens []float64
	for _, o := range outs {
		winners.Add(o.winner)
		if o.firstExtreme != 0 {
			firstOut.Add(o.firstExtreme)
		}
		if o.reappeared {
			reappearances++
		}
		if o.validSupports {
			valid++
		}
		stageLens = append(stageLens, float64(o.stages))
	}
	sLen := stats.Summarize(stageLens)

	tbl := sim.NewTable(
		fmt.Sprintf("E6: stage statistics on %s, initial support {1,2,5} (c = %.3f)", g.Name(), meanOfCounts(counts)),
		"metric", "value",
	)
	tbl.AddRow("trials", trials)
	tbl.AddRow("winner histogram", winners.String())
	tbl.AddRow("first extreme eliminated (1 vs 5)", firstOut.String())
	tbl.AddRow("mean stage count", sLen.Mean)
	tbl.AddRow("runs with a reappearing opinion", fmt.Sprintf("%d (%.1f%%)", reappearances, 100*float64(reappearances)/float64(trials)))
	rep.Tables = append(rep.Tables, tbl)

	// One illustrative trace.
	r := rng.New(rng.DeriveSeed(p.Seed, 0x601))
	init, err := core.BlockOpinions(n, counts, r)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(core.Config{
		Engine:       p.coreEngine(),
		Probe:        p.probeFor(trials, rng.DeriveSeed(p.Seed, 0x602)),
		Graph:        g,
		Initial:      init,
		Process:      core.VertexProcess,
		Seed:         rng.DeriveSeed(p.Seed, 0x602),
		TraceSupport: true,
	})
	if err != nil {
		return nil, err
	}
	var parts []string
	maxShown := 14
	for i, st := range res.Stages {
		if i >= maxShown {
			parts = append(parts, fmt.Sprintf("… (%d more)", len(res.Stages)-maxShown))
			break
		}
		parts = append(parts, fmt.Sprintf("%v", st.Opinions))
	}
	rep.Figures = append(rep.Figures, "E6 sample trace: "+strings.Join(parts, " → "))

	c := meanOfCounts(counts)
	goodWinner := winners.Count(2) + winners.Count(3)
	rep.check(valid == trials,
		"supports stay inside [1,5]",
		"%d/%d traces valid", valid, trials)
	rep.check(float64(goodWinner) >= 0.9*float64(trials),
		"winner is ⌊c⌋ or ⌈c⌉",
		"winner ∈ {2,3} in %d/%d runs (c = %.3f)", goodWinner, trials, c)
	rep.check(firstOut.Count(5) > firstOut.Count(1),
		"farther extreme dies first",
		"5 (distance 2.33 from c) eliminated first in %d runs vs %d for 1 (distance 1.67)", firstOut.Count(5), firstOut.Count(1))
	rep.check(reappearances > 0,
		"interior opinions can reappear",
		"observed in %d/%d runs, matching the paper's example", reappearances, trials)
	return rep, nil
}

package exp

import (
	"fmt"
	"math/rand/v2"
	"runtime/debug"
	"time"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
)

// The big-n section: an E2-style convergence workload at n = 10⁶ (and,
// outside quick mode, 10⁷) exercising the million-vertex machinery end
// to end — an implicit 8-regular circulant topology, the compact byte
// opinion slab, and the blocked kernel — against the materialized-CSR
// int32 configuration of the same point. Each arm runs in its own
// measured phase: the heap is released to the OS first
// (debug.FreeOSMemory), then a sampling obs.PeakTracker brackets the
// arm, so the recorded peaks are per-phase resident footprints, not
// the process-lifetime high-water mark. The implicit arm runs first so
// its peak cannot inherit the materialized arm's pages.

// BenchBigNArm is one measured phase of the big-n section.
type BenchBigNArm struct {
	// Label identifies the configuration: "implicit/compact" or
	// "csr/int32" at n = 10⁶, "implicit/compact-10M" at 10⁷.
	Label  string `json:"label"`
	N      int    `json:"n"`
	Trials int    `json:"trials"`
	// Steps is the total step count across trials; NsPerStep the
	// measured stepping cost.
	Steps     int64   `json:"steps"`
	Seconds   float64 `json:"seconds"`
	NsPerStep float64 `json:"ns_per_step"`
	// BuildSeconds is the structure-construction time for the arm:
	// CSR materialization (and its arc arrays) for the materialized
	// arm, effectively zero for implicit families.
	BuildSeconds float64 `json:"build_seconds"`
	// PeakRSSBytes is the phase's sampled resident-set peak;
	// AllocBytes the heap allocated during the phase.
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
	AllocBytes   int64 `json:"alloc_bytes"`
	// TwoAdjacentFrac is the fraction of trials that reached the
	// two-adjacent stage within the step cap.
	TwoAdjacentFrac float64 `json:"two_adjacent_frac"`
}

// BenchBigN is the bign section of BENCH_engine.json.
type BenchBigN struct {
	// Graph names the topology family of the point.
	Graph   string `json:"graph"`
	K       int    `json:"k"`
	Process string `json:"process"`
	// MaxStepsPerTrial is the per-trial cap; at n = 10⁶–10⁷ a run is
	// bounded deterministically rather than run to consensus.
	MaxStepsPerTrial int64          `json:"max_steps_per_trial"`
	Arms             []BenchBigNArm `json:"arms"`
	// RSSRatio is implicit/compact peak RSS over csr/int32 peak RSS at
	// n = 10⁶ — the acceptance bound is ≤ 0.25.
	RSSRatio float64 `json:"rss_ratio"`
	// Identical reports whether the implicit/compact arm's Results were
	// byte-identical to the csr/int32 arm's, trial for trial.
	Identical bool `json:"identical"`
}

// bigNStrides is the circulant connection set: strides 1..4 give a
// connected 8-regular vertex-transitive family at any n ≥ 10.
var bigNStrides = []int{1, 2, 3, 4}

// bigNPoint is one arm's workload: trials of the extremes profile on
// the given structure under the vertex process, capped at maxSteps.
func bigNPoint(topo graph.Topology, compact bool, k int, seed uint64, trials int, maxSteps int64) ([]core.Result, int64, time.Duration, error) {
	n := topo.N()
	out := make([]core.Result, trials)
	start := time.Now()
	err := core.RunBlock(core.BlockConfig{
		Topology: topo,
		Compact:  compact,
		Process:  core.VertexProcess,
		Engine:   core.EngineNaive,
		Stop:     core.UntilTwoAdjacent,
		MaxSteps: maxSteps,
		Seed:     seed,
		Init: func(trial int, dst []int, r *rand.Rand) error {
			core.ExtremesOpinionsInto(dst[:n], k, r)
			return nil
		},
	}, 0, trials, out)
	el := time.Since(start)
	if err != nil {
		return nil, 0, 0, err
	}
	var steps int64
	for _, r := range out {
		steps += r.Steps
	}
	return out, steps, el, nil
}

// bigNArm measures one phase: release the heap, bracket the workload
// with an RSS sampler, and fold the measurements into an arm record.
func bigNArm(label string, build func() (graph.Topology, error), compact bool, k int, seed uint64, trials int, maxSteps int64) (BenchBigNArm, []core.Result, error) {
	debug.FreeOSMemory()
	tracker := obs.TrackPeakRSS(5 * time.Millisecond)
	alloc0 := obs.HeapTotalAlloc()
	buildStart := time.Now()
	topo, err := build()
	if err != nil {
		tracker.Stop()
		return BenchBigNArm{}, nil, fmt.Errorf("bign %s: build: %w", label, err)
	}
	buildSecs := time.Since(buildStart).Seconds()
	out, steps, el, err := bigNPoint(topo, compact, k, seed, trials, maxSteps)
	peak := tracker.Stop()
	if err != nil {
		return BenchBigNArm{}, nil, fmt.Errorf("bign %s: %w", label, err)
	}
	reached := 0
	for _, r := range out {
		if r.TwoAdjacentStep >= 0 {
			reached++
		}
	}
	arm := BenchBigNArm{
		Label:           label,
		N:               topo.N(),
		Trials:          trials,
		Steps:           steps,
		Seconds:         el.Seconds(),
		NsPerStep:       float64(el.Nanoseconds()) / float64(steps),
		BuildSeconds:    buildSecs,
		PeakRSSBytes:    peak,
		AllocBytes:      obs.HeapTotalAlloc() - alloc0,
		TwoAdjacentFrac: float64(reached) / float64(trials),
	}
	return arm, out, nil
}

// BenchBigNRun measures the big-n section. In quick mode the step cap
// shrinks and the 10⁷ arm is skipped; the 10⁶ implicit-vs-materialized
// pair — the acceptance comparison — always runs.
func BenchBigNRun(p Params) (*BenchBigN, error) {
	p = p.withDefaults()
	const n1 = 1_000_000
	k := 8
	trials := 2
	maxSteps := int64(p.pick(8, 40)) * int64(n1)
	seed := rng.DeriveSeed(p.Seed, 0xb16a)
	sec := &BenchBigN{
		Graph:            fmt.Sprintf("circulant(n=%d,strides=%v)", n1, bigNStrides),
		K:                k,
		Process:          core.VertexProcess.String(),
		MaxStepsPerTrial: maxSteps,
	}

	topo1, err := graph.NewImplicitCirculant(n1, bigNStrides)
	if err != nil {
		return nil, err
	}
	// Implicit arm first: its phase peak must not inherit the
	// materialized arm's pages.
	impArm, impOut, err := bigNArm("implicit/compact",
		func() (graph.Topology, error) { return topo1, nil },
		true, k, seed, trials, maxSteps)
	if err != nil {
		return nil, err
	}
	sec.Arms = append(sec.Arms, impArm)

	csrArm, csrOut, err := bigNArm("csr/int32",
		func() (graph.Topology, error) { return graph.Materialize(topo1) },
		false, k, seed, trials, maxSteps)
	if err != nil {
		return nil, err
	}
	sec.Arms = append(sec.Arms, csrArm)

	sec.Identical = len(impOut) == len(csrOut)
	for i := range impOut {
		if fmt.Sprintf("%+v", impOut[i]) != fmt.Sprintf("%+v", csrOut[i]) {
			sec.Identical = false
			break
		}
	}
	if csrArm.PeakRSSBytes > 0 {
		sec.RSSRatio = float64(impArm.PeakRSSBytes) / float64(csrArm.PeakRSSBytes)
	}

	if !p.Quick {
		const n2 = 10_000_000
		topo2, err := graph.NewImplicitCirculant(n2, bigNStrides)
		if err != nil {
			return nil, err
		}
		arm10, _, err := bigNArm("implicit/compact-10M",
			func() (graph.Topology, error) { return topo2, nil },
			true, k, rng.DeriveSeed(p.Seed, 0xb16b), 1, 2*int64(n2))
		if err != nil {
			return nil, err
		}
		sec.Arms = append(sec.Arms, arm10)
	}
	return sec, nil
}

package exp

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime/debug"
	"time"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
	"div/internal/stats"
)

// The big-n section: an E2-style convergence workload at n = 10⁶ (and,
// outside quick mode, 10⁷) exercising the million-vertex machinery end
// to end — an implicit 8-regular circulant topology, the compact byte
// opinion slab, and the blocked kernel — against the materialized-CSR
// int32 configuration of the same point. Each arm runs in its own
// measured phase: the heap is released to the OS first
// (debug.FreeOSMemory), then a sampling obs.PeakTracker brackets the
// arm, so the recorded peaks are per-phase resident footprints, not
// the process-lifetime high-water mark. The implicit arm runs first so
// its peak cannot inherit the materialized arm's pages.

// BenchBigNArm is one measured phase of the big-n section.
type BenchBigNArm struct {
	// Label identifies the configuration: "implicit/compact" or
	// "csr/int32" at n = 10⁶, "implicit/compact-10M" at 10⁷.
	Label  string `json:"label"`
	N      int    `json:"n"`
	Trials int    `json:"trials"`
	// Steps is the total step count across trials; NsPerStep the
	// measured stepping cost.
	Steps     int64   `json:"steps"`
	Seconds   float64 `json:"seconds"`
	NsPerStep float64 `json:"ns_per_step"`
	// BuildSeconds is the structure-construction time for the arm:
	// CSR materialization (and its arc arrays) for the materialized
	// arm, effectively zero for implicit families.
	BuildSeconds float64 `json:"build_seconds"`
	// PeakRSSBytes is the phase's sampled resident-set peak;
	// AllocBytes the heap allocated during the phase.
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
	AllocBytes   int64 `json:"alloc_bytes"`
	// TwoAdjacentFrac is the fraction of trials that reached the
	// two-adjacent stage within the step cap.
	TwoAdjacentFrac float64 `json:"two_adjacent_frac"`
}

// BenchBigN is the bign section of BENCH_engine.json.
type BenchBigN struct {
	// Graph names the topology family of the point.
	Graph   string `json:"graph"`
	K       int    `json:"k"`
	Process string `json:"process"`
	// MaxStepsPerTrial is the per-trial cap; at n = 10⁶–10⁷ a run is
	// bounded deterministically rather than run to consensus.
	MaxStepsPerTrial int64          `json:"max_steps_per_trial"`
	Arms             []BenchBigNArm `json:"arms"`
	// RSSRatio is implicit/compact peak RSS over csr/int32 peak RSS at
	// n = 10⁶ — the acceptance bound is ≤ 0.25.
	RSSRatio float64 `json:"rss_ratio"`
	// Identical reports whether the implicit/compact arm's Results were
	// byte-identical to the csr/int32 arm's, trial for trial.
	Identical bool `json:"identical"`
	// Dissenter is the sparse-endgame acceptance workload: a
	// near-consensus profile at n = 10⁶ where the naive scheduler
	// drowns in idle draws and the sparse skip-sampler runs the tail to
	// consensus.
	Dissenter *BenchBigNDissenter `json:"dissenter,omitempty"`
	// SmallEq is the runner-level distribution-equivalence check backing
	// the Dissenter speedup: sparse vs naive winner/steps laws at a
	// small n where both engines finish comfortably.
	SmallEq *BenchBigNEq `json:"small_eq,omitempty"`
}

// BenchBigNPhase splits one arm at the step where some opinion first
// held MajorityFrac·n vertices (Result.MajorityStep): the "to 90%"
// head versus the consensus tail. The dissenter profile starts above
// the majority fraction, so its crossing is at step 0 and the wall
// split is exact; a trial that never crossed charges its whole wall to
// the head, and a mid-run crossing is attributed step-proportionally
// (an approximation — only the two boundary cases occur here).
type BenchBigNPhase struct {
	MajorityFrac float64 `json:"majority_frac"`
	StepsTo90    int64   `json:"steps_to_90"`
	TailSteps    int64   `json:"tail_steps"`
	SecondsTo90  float64 `json:"seconds_to_90"`
	TailSeconds  float64 `json:"tail_seconds"`
}

// BenchBigNDissenterArm is one engine's run of the dissenter profile.
type BenchBigNDissenterArm struct {
	Label  string `json:"label"` // "naive" or "auto/sparse"
	Engine string `json:"engine"`
	Trials int    `json:"trials"`
	// ConsensusFrac is the fraction of trials that reached consensus
	// within the arm's step cap.
	ConsensusFrac float64 `json:"consensus_frac"`
	// MaxStepsPerTrial is this arm's cap: the naive arm is bounded so
	// the benchmark terminates, the auto arm keeps the core default.
	MaxStepsPerTrial int64          `json:"max_steps_per_trial"`
	Steps            int64          `json:"steps"`
	Seconds          float64        `json:"seconds"`
	Phase            BenchBigNPhase `json:"phase"`
}

// BenchBigNDissenter is the sparse-endgame acceptance subsection: the
// same n = 10⁶ implicit circulant as the main arms, initialized one
// vote short of consensus (Dissenters scattered vertices at opinion 2
// on a background of 1s), run under EngineNaive (bounded) and
// EngineAuto (to consensus via the sparse hand-off).
type BenchBigNDissenter struct {
	N          int                     `json:"n"`
	Dissenters int                     `json:"dissenters"`
	Arms       []BenchBigNDissenterArm `json:"arms"`
	// Speedup is naive wall seconds over auto wall seconds. When
	// NaiveCapped is set the naive arm hit its step cap without
	// consensus, so Speedup is a lower bound on the true end-to-end
	// ratio. The acceptance bound is ≥ 2.
	Speedup     float64 `json:"speedup"`
	NaiveCapped bool    `json:"naive_capped"`
	// SparsePeakBytes is the sparse engine's high-water working-set
	// bound (the core sparse_set_peak gauge: position index + member
	// and count slabs); CSREstimateBytes is what a materialized fast
	// hand-off would need instead (CSR adjacency + arc index, from
	// graph.CSRMemEstimate). The acceptance bound on the ratio is
	// ≤ 0.05.
	SparsePeakBytes  int64   `json:"sparse_peak_bytes"`
	CSREstimateBytes int64   `json:"csr_estimate_bytes"`
	SparsePeakRatio  float64 `json:"sparse_peak_ratio"`
}

// BenchBigNEq is a two-sample χ²/KS comparison of the sparse engine
// against the naive reference at a small n, mirroring the core
// equivalence tests but recorded in the report so the bench gate — not
// just `go test` — fails if the sparse law drifts. Both arms run the
// uniform two-opinion profile (pure endgame, the regime the sparse
// engine owns) with independent seeds.
type BenchBigNEq struct {
	N      int `json:"n"`
	K      int `json:"k"`
	Trials int `json:"trials"`
	// Chi2 compares the winner distributions (df bins − 1, α = 0.001).
	Chi2     float64 `json:"chi2"`
	Chi2Df   int     `json:"chi2_df"`
	Chi2Crit float64 `json:"chi2_crit"`
	// KSSteps compares the consensus-time distributions (α = 0.001).
	KSSteps float64 `json:"ks_steps"`
	KSCrit  float64 `json:"ks_crit"`
	// Phase is the steps-only head/tail split of the sparse arm (wall
	// is not split at this scale); at small n the 90% crossing falls
	// mid-run, so this is where the split carries information.
	MeanStepsTo90 float64 `json:"mean_steps_to_90"`
	MeanTailSteps float64 `json:"mean_tail_steps"`
	Pass          bool    `json:"pass"`
}

// bigNStrides is the circulant connection set: strides 1..4 give a
// connected 8-regular vertex-transitive family at any n ≥ 10.
var bigNStrides = []int{1, 2, 3, 4}

// bigNPoint is one arm's workload: trials of the extremes profile on
// the given structure under the vertex process, capped at maxSteps.
func bigNPoint(topo graph.Topology, compact bool, k int, seed uint64, trials int, maxSteps int64) ([]core.Result, int64, time.Duration, error) {
	n := topo.N()
	out := make([]core.Result, trials)
	start := time.Now()
	err := core.RunBlock(core.BlockConfig{
		Topology: topo,
		Compact:  compact,
		Process:  core.VertexProcess,
		Engine:   core.EngineNaive,
		Stop:     core.UntilTwoAdjacent,
		MaxSteps: maxSteps,
		Seed:     seed,
		Init: func(trial int, dst []int, r *rand.Rand) error {
			core.ExtremesOpinionsInto(dst[:n], k, r)
			return nil
		},
	}, 0, trials, out)
	el := time.Since(start)
	if err != nil {
		return nil, 0, 0, err
	}
	var steps int64
	for _, r := range out {
		steps += r.Steps
	}
	return out, steps, el, nil
}

// bigNArm measures one phase: release the heap, bracket the workload
// with an RSS sampler, and fold the measurements into an arm record.
func bigNArm(label string, build func() (graph.Topology, error), compact bool, k int, seed uint64, trials int, maxSteps int64) (BenchBigNArm, []core.Result, error) {
	debug.FreeOSMemory()
	tracker := obs.TrackPeakRSS(5 * time.Millisecond)
	alloc0 := obs.HeapTotalAlloc()
	buildStart := time.Now()
	topo, err := build()
	if err != nil {
		tracker.Stop()
		return BenchBigNArm{}, nil, fmt.Errorf("bign %s: build: %w", label, err)
	}
	buildSecs := time.Since(buildStart).Seconds()
	out, steps, el, err := bigNPoint(topo, compact, k, seed, trials, maxSteps)
	peak := tracker.Stop()
	if err != nil {
		return BenchBigNArm{}, nil, fmt.Errorf("bign %s: %w", label, err)
	}
	reached := 0
	for _, r := range out {
		if r.TwoAdjacentStep >= 0 {
			reached++
		}
	}
	arm := BenchBigNArm{
		Label:           label,
		N:               topo.N(),
		Trials:          trials,
		Steps:           steps,
		Seconds:         el.Seconds(),
		NsPerStep:       float64(el.Nanoseconds()) / float64(steps),
		BuildSeconds:    buildSecs,
		PeakRSSBytes:    peak,
		AllocBytes:      obs.HeapTotalAlloc() - alloc0,
		TwoAdjacentFrac: float64(reached) / float64(trials),
	}
	return arm, out, nil
}

// bigNMajorityFrac is the phase-split threshold: the step at which
// some opinion first holds 90% of the vertices separates the reduction
// head from the consensus tail.
const bigNMajorityFrac = 0.9

// bigNChi2Crit001 maps χ² degrees of freedom to the α = 0.001 critical
// value, mirroring the table the core equivalence tests use.
var bigNChi2Crit001 = map[int]float64{
	1: 10.828, 2: 13.816, 3: 16.266, 4: 18.467,
	5: 20.515, 6: 22.458, 7: 24.322, 8: 26.124,
}

// bigNKS2Crit001 is the two-sample Kolmogorov–Smirnov c(α) coefficient
// at α = 0.001: D_crit = c(α)·√((t₁+t₂)/(t₁·t₂)).
const bigNKS2Crit001 = 1.9495

// bigNDissenterInit scatters `dissenters` evenly spaced vertices at
// opinion 2 on a background of 1s: a near-consensus profile whose
// active-draw probability starts at ~2·dissenters/n, so the naive
// scheduler spends almost every draw idle from step 0.
func bigNDissenterInit(n, dissenters int) func(trial int, dst []int, r *rand.Rand) error {
	return func(trial int, dst []int, r *rand.Rand) error {
		for i := range dst[:n] {
			dst[i] = 1
		}
		stride := n / dissenters
		for i := 0; i < dissenters; i++ {
			dst[i*stride] = 2
		}
		return nil
	}
}

// bigNDissenterArm runs the dissenter profile under one engine, one
// trial per RunBlock call so wall clock attributes cleanly per trial.
// maxSteps 0 keeps the core default cap (effectively unbounded here).
func bigNDissenterArm(label string, engine core.Engine, topo graph.Topology, dissenters, trials int, seed uint64, maxSteps int64) (BenchBigNDissenterArm, error) {
	n := topo.N()
	arm := BenchBigNDissenterArm{
		Label:            label,
		Engine:           engine.String(),
		Trials:           trials,
		MaxStepsPerTrial: maxSteps,
		Phase:            BenchBigNPhase{MajorityFrac: bigNMajorityFrac},
	}
	if maxSteps == 0 {
		arm.MaxStepsPerTrial = 200 * int64(n) * int64(n)
	}
	consensus := 0
	for t := 0; t < trials; t++ {
		var out [1]core.Result
		start := time.Now()
		err := core.RunBlock(core.BlockConfig{
			Topology:     topo,
			Compact:      true,
			Process:      core.VertexProcess,
			Engine:       engine,
			Stop:         core.UntilConsensus,
			MaxSteps:     maxSteps,
			MajorityFrac: bigNMajorityFrac,
			Seed:         seed,
			Init:         bigNDissenterInit(n, dissenters),
		}, t, t+1, out[:])
		sec := time.Since(start).Seconds()
		if err != nil {
			return arm, fmt.Errorf("bign dissenter %s trial %d: %w", label, t, err)
		}
		r := out[0]
		if r.Consensus {
			consensus++
		}
		arm.Steps += r.Steps
		arm.Seconds += sec
		// Phase split. The dissenter profile starts above the majority
		// fraction, so MajorityStep is 0 and the whole trial is tail;
		// the other branches keep the split honest if the profile ever
		// changes (never crossed → all head; mid-run crossing → the
		// wall is attributed step-proportionally).
		switch {
		case r.MajorityStep == 0:
			arm.Phase.TailSteps += r.Steps
			arm.Phase.TailSeconds += sec
		case r.MajorityStep < 0:
			arm.Phase.StepsTo90 += r.Steps
			arm.Phase.SecondsTo90 += sec
		default:
			arm.Phase.StepsTo90 += r.MajorityStep
			arm.Phase.TailSteps += r.Steps - r.MajorityStep
			frac := float64(r.MajorityStep) / float64(r.Steps)
			arm.Phase.SecondsTo90 += sec * frac
			arm.Phase.TailSeconds += sec * (1 - frac)
		}
	}
	arm.ConsensusFrac = float64(consensus) / float64(trials)
	return arm, nil
}

// bigNDissenterRun measures the dissenter subsection: the naive arm is
// step-capped (it would otherwise idle for ~n draws per active step),
// the auto arm runs to consensus through the sparse hand-off, and the
// sparse working-set peak is read back from the core gauge and held
// against the CSR footprint a materialized fast hand-off would need.
func bigNDissenterRun(p Params, topo graph.Topology) (*BenchBigNDissenter, error) {
	n := topo.N()
	const dissenters = 256
	trials := p.pick(2, 3)
	naiveCap := int64(p.pick(50, 200)) * int64(n)
	seed := rng.DeriveSeed(p.Seed, 0xd155)
	sec := &BenchBigNDissenter{N: n, Dissenters: dissenters}

	naive, err := bigNDissenterArm("naive", core.EngineNaive, topo, dissenters, trials, seed, naiveCap)
	if err != nil {
		return nil, err
	}
	sec.Arms = append(sec.Arms, naive)
	auto, err := bigNDissenterArm("auto/sparse", core.EngineAuto, topo, dissenters, trials, seed, 0)
	if err != nil {
		return nil, err
	}
	sec.Arms = append(sec.Arms, auto)

	sec.NaiveCapped = naive.ConsensusFrac < 1
	if auto.Seconds > 0 {
		sec.Speedup = naive.Seconds / auto.Seconds
	}
	sec.SparsePeakBytes = obs.Default.Gauge("sparse_set_peak").Value()
	adj, arcIdx := graph.CSRMemEstimate(n, topo.DegreeSum())
	sec.CSREstimateBytes = adj + arcIdx
	sec.SparsePeakRatio = float64(sec.SparsePeakBytes) / float64(sec.CSREstimateBytes)
	return sec, nil
}

// bigNSmallEq runs the sparse-vs-naive law comparison at a small n:
// the uniform two-opinion profile (pure endgame) on a 4-regular
// circulant, naive and sparse arms on independent seeds, compared by a
// two-sample χ² on winners and a two-sample KS on consensus times.
func bigNSmallEq(p Params) (*BenchBigNEq, error) {
	const n, k = 64, 2
	trials := p.pick(250, 500)
	topo, err := graph.NewImplicitCirculant(n, []int{1, 2})
	if err != nil {
		return nil, err
	}
	gather := func(engine core.Engine, seed uint64) ([]core.Result, error) {
		out := make([]core.Result, trials)
		err := core.RunBlock(core.BlockConfig{
			Topology:     topo,
			Compact:      true,
			Process:      core.VertexProcess,
			Engine:       engine,
			Stop:         core.UntilConsensus,
			MajorityFrac: bigNMajorityFrac,
			Seed:         seed,
			Init: func(trial int, dst []int, r *rand.Rand) error {
				core.UniformOpinionsInto(dst[:n], k, r)
				return nil
			},
		}, 0, trials, out)
		return out, err
	}
	naive, err := gather(core.EngineNaive, rng.DeriveSeed(p.Seed, 0xe901))
	if err != nil {
		return nil, fmt.Errorf("bign small-eq naive: %w", err)
	}
	sparse, err := gather(core.EngineFast, rng.DeriveSeed(p.Seed, 0xe902))
	if err != nil {
		return nil, fmt.Errorf("bign small-eq sparse: %w", err)
	}

	eq := &BenchBigNEq{N: n, K: k, Trials: trials}
	// Two-sample χ² on winners: expected per-arm counts proportional to
	// the pooled winner frequencies, df = occupied bins − 1.
	winners := func(rs []core.Result) map[int]int64 {
		m := make(map[int]int64)
		for _, r := range rs {
			m[r.Winner]++
		}
		return m
	}
	wa, wb := winners(naive), winners(sparse)
	bins := make(map[int]bool)
	for w := range wa {
		bins[w] = true
	}
	for w := range wb {
		bins[w] = true
	}
	for w := range bins {
		pooled := float64(wa[w] + wb[w])
		ea := pooled * float64(trials) / float64(2*trials)
		eb := pooled - ea
		da, db := float64(wa[w])-ea, float64(wb[w])-eb
		eq.Chi2 += da*da/ea + db*db/eb
	}
	eq.Chi2Df = len(bins) - 1
	eq.Chi2Crit = bigNChi2Crit001[eq.Chi2Df]

	steps := func(rs []core.Result) []float64 {
		xs := make([]float64, len(rs))
		for i, r := range rs {
			xs[i] = float64(r.Steps)
		}
		return xs
	}
	eq.KSSteps, err = stats.KS2Sample(steps(naive), steps(sparse))
	if err != nil {
		return nil, fmt.Errorf("bign small-eq: %w", err)
	}
	eq.KSCrit = bigNKS2Crit001 * math.Sqrt(float64(2*trials)/float64(trials*trials))

	for _, r := range sparse {
		to90 := r.MajorityStep
		if to90 < 0 {
			to90 = r.Steps
		}
		eq.MeanStepsTo90 += float64(to90) / float64(trials)
		eq.MeanTailSteps += float64(r.Steps-to90) / float64(trials)
	}
	eq.Pass = eq.Chi2Df >= 1 && eq.Chi2Crit > 0 &&
		eq.Chi2 <= eq.Chi2Crit && eq.KSSteps <= eq.KSCrit
	return eq, nil
}

// BenchBigNRun measures the big-n section. In quick mode the step cap
// shrinks and the 10⁷ arm is skipped; the 10⁶ implicit-vs-materialized
// pair — the acceptance comparison — always runs.
func BenchBigNRun(p Params) (*BenchBigN, error) {
	p = p.withDefaults()
	const n1 = 1_000_000
	k := 8
	trials := 2
	maxSteps := int64(p.pick(8, 40)) * int64(n1)
	seed := rng.DeriveSeed(p.Seed, 0xb16a)
	sec := &BenchBigN{
		Graph:            fmt.Sprintf("circulant(n=%d,strides=%v)", n1, bigNStrides),
		K:                k,
		Process:          core.VertexProcess.String(),
		MaxStepsPerTrial: maxSteps,
	}

	topo1, err := graph.NewImplicitCirculant(n1, bigNStrides)
	if err != nil {
		return nil, err
	}
	// Implicit arm first: its phase peak must not inherit the
	// materialized arm's pages.
	impArm, impOut, err := bigNArm("implicit/compact",
		func() (graph.Topology, error) { return topo1, nil },
		true, k, seed, trials, maxSteps)
	if err != nil {
		return nil, err
	}
	sec.Arms = append(sec.Arms, impArm)

	csrArm, csrOut, err := bigNArm("csr/int32",
		func() (graph.Topology, error) { return graph.Materialize(topo1) },
		false, k, seed, trials, maxSteps)
	if err != nil {
		return nil, err
	}
	sec.Arms = append(sec.Arms, csrArm)

	sec.Identical = len(impOut) == len(csrOut)
	for i := range impOut {
		if fmt.Sprintf("%+v", impOut[i]) != fmt.Sprintf("%+v", csrOut[i]) {
			sec.Identical = false
			break
		}
	}
	if csrArm.PeakRSSBytes > 0 {
		sec.RSSRatio = float64(impArm.PeakRSSBytes) / float64(csrArm.PeakRSSBytes)
	}

	sec.Dissenter, err = bigNDissenterRun(p, topo1)
	if err != nil {
		return nil, err
	}
	sec.SmallEq, err = bigNSmallEq(p)
	if err != nil {
		return nil, err
	}

	if !p.Quick {
		const n2 = 10_000_000
		topo2, err := graph.NewImplicitCirculant(n2, bigNStrides)
		if err != nil {
			return nil, err
		}
		arm10, _, err := bigNArm("implicit/compact-10M",
			func() (graph.Topology, error) { return topo2, nil },
			true, k, rng.DeriveSeed(p.Seed, 0xb16b), 1, 2*int64(n2))
		if err != nil {
			return nil, err
		}
		sec.Arms = append(sec.Arms, arm10)
	}
	return sec, nil
}

package exp

import (
	"fmt"
	"math"
	"sort"

	"div/internal/baseline"
	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E4TwoOpinionPull reproduces equation (3), the win probabilities of
// the final stage of DIV (two-opinion pull voting):
//
//	P[i wins] = N_i/n      (edge process)
//	P[i wins] = d(A_i)/2m  (vertex process)
//
// Edge-process predictions are checked on K_n across a grid of split
// sizes; vertex-process predictions on maximally irregular graphs
// (star and Barabási–Albert) where the two formulas differ sharply.
func E4TwoOpinionPull(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E4", Name: "two-opinion pull voting (eq. 3)"}
	trials := p.pick(400, 2000)

	type scenario struct {
		name    string
		g       *graph.Graph
		proc    core.Process
		initial []int // opinions 1/2
		pred    float64
	}
	var scenarios []scenario

	gs := newGraphs()
	defer gs.Release()

	// Edge process on K_n: P[1 wins] = N_1/n.
	nK := p.pick(40, 80)
	gK := gs.Complete(nK)
	r := rng.New(rng.DeriveSeed(p.Seed, 0xe4))
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.8} {
		n1 := int(frac * float64(nK))
		init, err := core.TwoOpinionSplit(nK, n1, r)
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, scenario{
			name:    fmt.Sprintf("K_%d N1=%d (edge)", nK, n1),
			g:       gK,
			proc:    core.EdgeProcess,
			initial: init,
			pred:    float64(n1) / float64(nK),
		})
	}

	// Vertex process on the star: the lone centre holds half the
	// degree mass.
	nS := p.pick(15, 25)
	gS := gs.Star(nS)
	initStar := make([]int, nS)
	initStar[0] = 1
	for v := 1; v < nS; v++ {
		initStar[v] = 2
	}
	scenarios = append(scenarios, scenario{
		name:    fmt.Sprintf("star(%d) centre-only (vertex)", nS),
		g:       gS,
		proc:    core.VertexProcess,
		initial: initStar,
		pred:    0.5,
	})
	// Same split under the edge process: prediction drops to N_1/n.
	scenarios = append(scenarios, scenario{
		name:    fmt.Sprintf("star(%d) centre-only (edge)", nS),
		g:       gS,
		proc:    core.EdgeProcess,
		initial: initStar,
		pred:    1 / float64(nS),
	})

	// Vertex process on a BA graph with opinion 1 planted on the
	// top-degree decile: prediction is the planted set's π mass.
	nB := p.pick(60, 120)
	gB, err := gs.BarabasiAlbert(nB, 3, rng.DeriveSeed(p.Seed, 0xe4ba))
	if err != nil {
		return nil, err
	}
	order := make([]int, nB)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return gB.Degree(order[i]) > gB.Degree(order[j]) })
	top := order[:nB/10]
	initBA, err := core.PlantedSetOpinions(nB, top, 1, 2)
	if err != nil {
		return nil, err
	}
	var topDeg int64
	for _, v := range top {
		topDeg += int64(gB.Degree(v))
	}
	scenarios = append(scenarios, scenario{
		name:    fmt.Sprintf("BA(%d,3) top-decile (vertex)", nB),
		g:       gB,
		proc:    core.VertexProcess,
		initial: initBA,
		pred:    float64(topDeg) / float64(gB.DegreeSum()),
	})

	tbl := sim.NewTable(
		"E4: two-opinion pull voting win probability of opinion 1",
		"scenario", "trials", "predicted", "measured", "Wilson 95% CI", "z",
	)
	points := make([]Point, len(scenarios))
	for si, sc := range scenarios {
		points[si] = Point{G: sc.g, Seed: rng.DeriveSeed(p.Seed, uint64(0x400+si)), Trials: trials}
	}
	results, err := Sweep(p, "E4", points, func(si, trial int, seed uint64, _ *core.Scratch) (int, error) {
		sc := scenarios[si]
		res, err := core.Run(core.Config{
			Engine:  p.coreEngine(),
			Probe:   p.probeFor(trial, seed),
			Graph:   sc.g,
			Initial: sc.initial,
			Process: sc.proc,
			Rule:    baseline.Pull{},
			Seed:    seed,
		})
		if err != nil {
			return 0, err
		}
		if !res.Consensus {
			return 0, fmt.Errorf("no consensus after %d steps", res.Steps)
		}
		if res.Winner == 1 {
			return 1, nil
		}
		return 0, nil
	})
	if err != nil {
		return nil, err
	}
	for si, sc := range scenarios {
		hits := 0
		for _, w := range results[si] {
			hits += w
		}
		phat := float64(hits) / float64(trials)
		lo, hi := stats.WilsonCI(hits, trials, 1.96)
		z := stats.BinomialZ(hits, trials, sc.pred)
		tbl.AddRow(sc.name, trials, sc.pred, phat, fmt.Sprintf("[%.3f,%.3f]", lo, hi), z)
		rep.check(math.Abs(z) <= 5,
			fmt.Sprintf("win probability: %s", sc.name),
			"measured %.3f vs predicted %.3f over %d trials (z=%.2f, want |z| ≤ 5)", phat, sc.pred, trials, z)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.note("The star rows show the two formulas diverging on the same initial split: 1/2 under the vertex process vs 1/n under the edge process.")
	return rep, nil
}

package exp

import (
	"fmt"
	"math/rand/v2"
	"time"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E20FastEngine benchmarks the discordance-tracked fast engine
// (core/fast.go) and the adaptive hybrid behind EngineAuto against the
// naive per-invocation engine, on the workloads the fast path is built
// for: UntilConsensus on a sparse random regular graph. Two profiles:
//
//   - uniform k=5: the standard full run. Its draw count is dominated
//     by long concentrated stretches where almost every scheduler draw
//     is idle, which Auto detects and skip-samples.
//   - final stage n/100: a two-adjacent-opinion state with a small
//     minority — the paper's Lemma 5 regime, where only the boundary
//     arcs are discordant (p_active ≈ 2a/n) and the geometric skip
//     sampler leaps over runs of no-op draws.
//   - dissenters n/500: the same regime with a far smaller minority,
//     so the minority-size walk rarely wanders out of the
//     idle-dominated zone and the flip density per simulated draw is
//     minimal. This is the profile the acceptance floor is gated on:
//     its per-step cost is the most stable of the three, and it runs
//     the most trials.
//
// All engines run fixed trial seeds serially (no worker parallelism,
// so the wall-clock comparison is clean). The speedup check gates
// EngineAuto on the dissenter profile against the acceptance floor
// (≥ 3× quick, ≥ 5× full), comparing the *median per-step wall-clock
// cost* (per-trial elapsed/steps, medians across trials) rather than
// total times: consensus time has a fat upper tail (the minority size
// is an unbiased random walk, so rare trials take an excursion toward
// a balanced split and dwarf the sum), and engines realize independent
// trajectories, so totals compare trajectory luck, not stepping speed.
// Normalizing each trial by its own realized length isolates exactly
// what an engine controls — the wall-clock cost of simulating the
// trajectory it was dealt — and the median makes the ratio robust to
// the excursion tail. A second caveat is inherent and documented
// rather than gamed: pure EngineFast is *expected* to lose on
// discordance-heavy workloads — that is why EngineAuto exists and is
// the default.
//
// Result semantics are also checked deterministically on every trial
// of every engine: consensus reached, winner inside the initial
// opinion range, and the final support collapsed to the winner. The
// statistical claim that the engines realize the same law is *not*
// re-tested here; core/equivalence_test.go holds them to
// distribution-identity at α = 0.001.
func E20FastEngine(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E20", Name: "fast engine speedup (discordance tracking)"}

	// The graph is the same in quick and full mode: shrinking n would let
	// the O(n+m) FastState build dominate the short dissenter trials and
	// measure setup, not stepping. Quick mode economizes on trials instead.
	const n = 10000
	const d = 8
	floor := float64(p.pick(3, 5))

	g, err := graph.RandomRegular(n, d, rng.New(rng.DeriveSeed(p.Seed, 0x2000)))
	if err != nil {
		return nil, err
	}

	profiles := []struct {
		name   string
		gated  bool // this profile carries the speedup acceptance check
		trials int
		base   uint64
		k      int // winner must land in [1, k]
		init   func(r *rand.Rand) ([]int, error)
	}{
		{"uniform k=5", false, p.pick(2, 4), 0x2010, 5,
			func(r *rand.Rand) ([]int, error) { return core.UniformOpinions(n, 5, r), nil }},
		{"final stage n/100", false, p.pick(4, 8), 0x2080, 2,
			func(r *rand.Rand) ([]int, error) { return core.TwoOpinionSplit(n, n/100, r) }},
		{"dissenters n/500", true, p.pick(12, 16), 0x20f0, 2,
			func(r *rand.Rand) ([]int, error) { return core.TwoOpinionSplit(n, n/500, r) }},
	}
	engines := []core.Engine{core.EngineNaive, core.EngineFast, core.EngineAuto}

	var gate struct{ naive, auto float64 }
	for _, prof := range profiles {
		tbl := sim.NewTable(
			fmt.Sprintf("E20 %s: DIV to consensus on %s, vertex process, %d trials",
				prof.name, g, prof.trials),
			"engine", "median ms/trial", "total", "mean steps", "median ns/step", "speedup")
		var naiveMedian float64
		for _, engine := range engines {
			var steps, times, perStep []float64
			for trial := 0; trial < prof.trials; trial++ {
				seed := rng.DeriveSeed(p.Seed, prof.base+uint64(trial))
				init, err := prof.init(rng.New(seed))
				if err != nil {
					return nil, err
				}
				start := time.Now()
				res, err := core.Run(core.Config{
					Graph:   g,
					Initial: init,
					Process: core.VertexProcess,
					Engine:  engine,
					Seed:    rng.SplitMix64(rng.DeriveSeed(seed, uint64(engine))),
				})
				if err != nil {
					return nil, err
				}
				if !res.Consensus {
					return nil, fmt.Errorf("e20: %s/%v trial %d: no consensus after %d steps",
						prof.name, engine, trial, res.Steps)
				}
				if res.Winner < 1 || res.Winner > prof.k {
					return nil, fmt.Errorf("e20: %s/%v trial %d: winner %d outside [1,%d]",
						prof.name, engine, trial, res.Winner, prof.k)
				}
				if res.FinalMin != res.Winner || res.FinalMax != res.Winner {
					return nil, fmt.Errorf("e20: %s/%v trial %d: final support [%d,%d] not collapsed to winner %d",
						prof.name, engine, trial, res.FinalMin, res.FinalMax, res.Winner)
				}
				elapsed := float64(time.Since(start).Nanoseconds())
				steps = append(steps, float64(res.Steps))
				times = append(times, elapsed)
				perStep = append(perStep, elapsed/float64(res.Steps))
			}
			var total float64
			for _, t := range times {
				total += t
			}
			medTime, err := stats.Median(times)
			if err != nil {
				return nil, err
			}
			medPerStep, err := stats.Median(perStep)
			if err != nil {
				return nil, err
			}
			if engine == core.EngineNaive {
				naiveMedian = medPerStep
			}
			if prof.gated {
				switch engine {
				case core.EngineNaive:
					gate.naive = medPerStep
				case core.EngineAuto:
					gate.auto = medPerStep
				}
			}
			s := stats.Summarize(steps)
			tbl.AddRow(engine.String(),
				fmt.Sprintf("%.1f", medTime/1e6),
				time.Duration(total).Round(time.Millisecond),
				fmt.Sprintf("%.4g", s.Mean),
				fmt.Sprintf("%.2f", medPerStep),
				fmt.Sprintf("%.1fx", naiveMedian/medPerStep))
		}
		rep.Tables = append(rep.Tables, tbl)
	}

	speedup := gate.naive / gate.auto
	rep.check(speedup >= floor,
		fmt.Sprintf("auto engine ≥ %.0fx per step on the dissenter profile, RR(n=%d, d=%d)", floor, n, d),
		"median per-step cost: naive %.2fns / auto %.2fns = %.1fx",
		gate.naive, gate.auto, speedup)
	rep.note("Speedups compare the median per-step wall-clock cost (per-trial elapsed/steps): " +
		"consensus time has a fat upper tail (minority-size excursions) and engines realize " +
		"independent trajectories, so raw totals compare trajectory luck, not stepping " +
		"speed. Pure EngineFast loses on " +
		"discordance-heavy workloads by design — EngineAuto " +
		"switches regimes at measurable stopping times and is the one that must win here. " +
		"Distribution-identity of all three engines is enforced separately by " +
		"core/equivalence_test.go at α=0.001.")
	return rep, nil
}

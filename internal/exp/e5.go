package exp

import (
	"fmt"
	"math"

	"div/internal/core"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E5Concentration reproduces the Azuma–Hoeffding bound (5): for the DIV
// weight martingale with unit increments,
//
//	P[|W(t) - W(0)| ≥ h] ≤ 2·exp(-h²/2t).
//
// Runs of fixed length t on K_n record the final deviation |ΔW|; the
// empirical tail at each threshold h must lie below the bound (with
// sampling slack), and the paper's rounding argument — deviations stay
// far below the δn needed to move the rounded average — is checked
// directly.
func E5Concentration(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E5", Name: "Azuma concentration (eq. 5)"}

	n := p.pick(200, 400)
	k := 15
	t := int64(p.pick(10, 30)) * int64(n)
	trials := p.pick(300, 1000)
	gs := newGraphs()
	defer gs.Release()
	g := gs.Complete(n)

	devs, err := SweepTrials(p, "E5", g, rng.DeriveSeed(p.Seed, 0xe5), trials,
		func(trial int, seed uint64, sc *core.Scratch) (float64, error) {
			r := rng.New(seed)
			init := core.UniformOpinions(n, k, r)
			var w0 int64
			first := true
			var wEnd int64
			_, err := core.Run(core.Config{
				Engine:   p.coreEngine(),
				Probe:    p.probeFor(trial, seed),
				Graph:    g,
				Initial:  init,
				Process:  core.EdgeProcess,
				Stop:     core.UntilMaxSteps,
				MaxSteps: t,
				Seed:     rng.SplitMix64(seed),
				Observer: func(s *core.State) bool {
					if first {
						w0 = s.Sum()
						first = false
					}
					wEnd = s.Sum()
					return true
				},
				ObserveEvery: t,
				Scratch:      sc,
			})
			if err != nil {
				return 0, err
			}
			return math.Abs(float64(wEnd - w0)), nil
		})
	if err != nil {
		return nil, err
	}

	sqT := math.Sqrt(float64(t))
	tbl := sim.NewTable(
		fmt.Sprintf("E5: |W(t)-W(0)| tail on %s, k=%d, t=%d (√t = %.0f)", g.Name(), k, t, sqT),
		"h", "h/√t", "empirical P[|ΔW| ≥ h]", "Azuma bound", "ok",
	)
	allBelow := true
	for _, mult := range []float64{1, 1.5, 2, 2.5, 3, 4} {
		h := mult * sqT
		exceed := 0
		for _, d := range devs {
			if d >= h {
				exceed++
			}
		}
		emp := float64(exceed) / float64(trials)
		bound := 2 * math.Exp(-h*h/(2*float64(t)))
		// Sampling slack: one-sided binomial fluctuation around the
		// bound itself.
		slack := 5 * math.Sqrt(math.Max(bound, 1.0/float64(trials))/float64(trials))
		ok := emp <= math.Min(1, bound)+slack
		allBelow = allBelow && ok
		tbl.AddRow(h, mult, emp, math.Min(1, bound), ok)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.check(allBelow,
		"empirical tails below Azuma bound",
		"all thresholds satisfied P̂[|ΔW| ≥ h] ≤ 2exp(-h²/2t) + sampling slack")

	s := stats.Summarize(devs)
	medDev, err := stats.Median(devs)
	if err != nil {
		return nil, err
	}
	rep.check(medDev < float64(n)/2,
		"typical deviation below rounding scale",
		"median |ΔW| = %.0f over %d trials, vs δn = n/2 = %d needed to move the rounded average past an endpoint (paper's strong-concentration remark; max observed %.0f)",
		medDev, trials, n/2, s.Max)
	rep.note(fmt.Sprintf("mean |ΔW| = %.1f, i.e. %.2f·√t — the martingale is much tighter than the worst-case unit-increment bound because most steps change nothing.", s.Mean, s.Mean/sqT))
	return rep, nil
}

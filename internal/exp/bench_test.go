package exp

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// sampleBenchReport is a hand-built report exercising every field the
// JSON schema promises, without running the (slow) benchmark matrix.
func sampleBenchReport() *BenchReport {
	return &BenchReport{
		Quick: true,
		Note:  "test",
		Baseline: BenchBaseline{
			N: e2BaselineN, TrialsPerSec: e2BaselineTrialsPerSec, NsPerStep: e2BaselineNsPerStep, Note: "baseline",
		},
		E2: BenchE2{
			N: 800, K: 8, Trials: 10, Steps: 123456,
			TrialsPerSecFresh: 100, TrialsPerSecReused: 120, NsPerStepReused: 50,
			BlockTrialsPerSec: map[int]float64{1: 110, 8: 130},
			BestBlock:         8, BestBlockTrialsPerSec: 130, BestBlockNsPerStep: 45,
		},
		Suite: BenchSuite{
			Experiments: []string{"E1", "E2"}, GOMAXPROCS: 1, PoolWidth: 1,
			SerialSeconds: 2.0, ScheduledSeconds: 1.5, Speedup: 4.0 / 3.0,
			PoolUtilization: 0.9, CacheHits: 3, CacheMisses: 5,
		},
		Scaling: &BenchScaling{
			CPUsOnline: 1,
			Widths: []BenchWidthPoint{
				{Width: 1, GOMAXPROCS: 1, Seconds: 2.0, SpeedupVsWidth1: 1.0,
					PoolUtilization: 0.95, Tasks: 100, Steals: 2, Injects: 40, Parks: 7,
					CacheHits: 3, CacheMisses: 5},
				{Width: 2, GOMAXPROCS: 2, Seconds: 1.9, SpeedupVsWidth1: 2.0 / 1.9,
					PoolUtilization: 0.5, Tasks: 100, Steals: 9, Injects: 40, Parks: 15,
					CacheHits: 8, CacheMisses: 0},
			},
			Blocked: []BenchBlockRow{
				{Graph: "rr(n=32768,d=8)", Process: "vertex", Block: 1, Trials: 6, Steps: 786432,
					Seconds: 0.02, NsPerStep: 25, TrialsPerSec: 300, SpeedupVsBlock1: 1.0},
				{Graph: "rr(n=32768,d=8)", Process: "vertex", Block: 8, Trials: 6, Steps: 786432,
					Seconds: 0.015, NsPerStep: 19, TrialsPerSec: 400, SpeedupVsBlock1: 4.0 / 3.0},
			},
			BlockedWins: []string{"rr(n=32768,d=8)/vertex"},
			Note:        "test",
		},
		Rows: []BenchRow{
			{Graph: "complete(n=256)", Process: "vertex", Engine: "fast", Trials: 6, Steps: 1000,
				NsPerStepReused: 40, TrialsPerSecFresh: 90, TrialsPerSecReused: 110,
				AllocsPerStep: 0, AllocsPerTrialReused: 2},
		},
	}
}

// TestBenchReportJSONSchema pins the wire format of BENCH_engine.json:
// every key downstream tooling reads must be present under its exact
// name, and every numeric value must be finite (NaN/Inf silently
// become invalid JSON or nulls depending on the encoder).
func TestBenchReportJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleBenchReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	for _, key := range []string{"quick", "note", "baseline_pre_pipeline", "e2_point", "suite", "scaling", "rows"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("top-level key %q missing", key)
		}
	}
	e2, ok := doc["e2_point"].(map[string]any)
	if !ok {
		t.Fatalf("e2_point is %T, want object", doc["e2_point"])
	}
	for _, key := range []string{"n", "k", "trials", "steps", "trials_per_sec_fresh", "trials_per_sec_reused", "ns_per_step_reused", "speedup_vs_baseline", "block_trials_per_sec", "best_block", "best_block_trials_per_sec", "best_block_ns_per_step"} {
		if _, ok := e2[key]; !ok {
			t.Errorf("e2_point key %q missing", key)
		}
	}
	suite, ok := doc["suite"].(map[string]any)
	if !ok {
		t.Fatalf("suite is %T, want object", doc["suite"])
	}
	for _, key := range []string{"experiments", "gomaxprocs", "pool_width", "serial_seconds", "scheduled_seconds", "speedup", "pool_utilization", "graph_cache_hits", "graph_cache_misses"} {
		if _, ok := suite[key]; !ok {
			t.Errorf("suite key %q missing", key)
		}
	}
	scaling, ok := doc["scaling"].(map[string]any)
	if !ok {
		t.Fatalf("scaling is %T, want object", doc["scaling"])
	}
	for _, key := range []string{"cpus_online", "widths", "blocked", "blocked_wins", "note"} {
		if _, ok := scaling[key]; !ok {
			t.Errorf("scaling key %q missing", key)
		}
	}
	widths, ok := scaling["widths"].([]any)
	if !ok || len(widths) == 0 {
		t.Fatalf("scaling.widths = %#v, want non-empty array", scaling["widths"])
	}
	for _, key := range []string{"width", "gomaxprocs", "seconds", "speedup_vs_width1", "pool_utilization", "sched_tasks", "sched_steals", "sched_injects", "sched_parks", "graph_cache_hits", "graph_cache_misses"} {
		if _, ok := widths[0].(map[string]any)[key]; !ok {
			t.Errorf("scaling.widths key %q missing", key)
		}
	}
	blockedRows, ok := scaling["blocked"].([]any)
	if !ok || len(blockedRows) == 0 {
		t.Fatalf("scaling.blocked = %#v, want non-empty array", scaling["blocked"])
	}
	for _, key := range []string{"graph", "process", "block", "trials", "steps", "seconds", "ns_per_step", "trials_per_sec", "speedup_vs_block1"} {
		if _, ok := blockedRows[0].(map[string]any)[key]; !ok {
			t.Errorf("scaling.blocked key %q missing", key)
		}
	}

	rows, ok := doc["rows"].([]any)
	if !ok || len(rows) != 1 {
		t.Fatalf("rows = %#v, want 1-element array", doc["rows"])
	}
	row := rows[0].(map[string]any)
	for _, key := range []string{"graph", "process", "engine", "trials", "steps", "ns_per_step_reused", "trials_per_sec_fresh", "trials_per_sec_reused", "allocs_per_step", "allocs_per_trial_reused"} {
		if _, ok := row[key]; !ok {
			t.Errorf("row key %q missing", key)
		}
	}
	var assertFinite func(path string, v any)
	assertFinite = func(path string, v any) {
		switch x := v.(type) {
		case float64:
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("%s is not finite: %v", path, x)
			}
		case map[string]any:
			for k, vv := range x {
				assertFinite(path+"."+k, vv)
			}
		case []any:
			for i, vv := range x {
				assertFinite(path+"["+itoa(i)+"]", vv)
			}
		}
	}
	assertFinite("$", map[string]any(doc))
}

// TestBenchReportJSONRoundTrip checks the document decodes back into
// the same struct (no lossy field tags) and that a NaN anywhere makes
// WriteJSON fail loudly rather than emit a broken document.
func TestBenchReportJSONRoundTrip(t *testing.T) {
	in := sampleBenchReport()
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out BenchReport
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// BenchE2 holds a map (block -> trials/sec), so compare with DeepEqual.
	if !reflect.DeepEqual(out.E2, in.E2) || out.Baseline != in.Baseline {
		t.Errorf("round trip changed E2/Baseline: %+v vs %+v", out, in)
	}
	if len(out.Rows) != len(in.Rows) || out.Rows[0] != in.Rows[0] {
		t.Errorf("round trip changed Rows: %+v", out.Rows)
	}
	if out.Suite.PoolWidth != in.Suite.PoolWidth || out.Suite.Speedup != in.Suite.Speedup {
		t.Errorf("round trip changed Suite: %+v", out.Suite)
	}
	if !reflect.DeepEqual(out.Scaling, in.Scaling) {
		t.Errorf("round trip changed Scaling: %+v vs %+v", out.Scaling, in.Scaling)
	}

	bad := sampleBenchReport()
	bad.E2.SpeedupVsBaseline = math.NaN()
	if err := bad.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("WriteJSON accepted NaN; downstream JSON consumers would break")
	}
}

// TestBenchFamiliesMonotoneSizes checks the benchmark workload scales
// with -full: every family's graph is at least as large at publication
// sizes as at quick sizes.
func TestBenchFamiliesMonotoneSizes(t *testing.T) {
	quick, err := benchFamilies(Params{Quick: true}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	full, err := benchFamilies(Params{Quick: false}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(quick) != len(full) {
		t.Fatalf("family count differs: %d quick vs %d full", len(quick), len(full))
	}
	for i := range quick {
		if quick[i].g.N() > full[i].g.N() {
			t.Errorf("family %d: quick n=%d exceeds full n=%d", i, quick[i].g.N(), full[i].g.N())
		}
	}
}

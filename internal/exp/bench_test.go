package exp

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// sampleBenchReport is a hand-built report exercising every field the
// JSON schema promises, without running the (slow) benchmark matrix.
func sampleBenchReport() *BenchReport {
	return &BenchReport{
		Quick: true,
		Note:  "test",
		Baseline: BenchBaseline{
			N: e2BaselineN, TrialsPerSec: e2BaselineTrialsPerSec, NsPerStep: e2BaselineNsPerStep, Note: "baseline",
		},
		E2: BenchE2{
			N: 800, K: 8, Trials: 10, Steps: 123456,
			TrialsPerSecFresh: 100, TrialsPerSecReused: 120, NsPerStepReused: 50,
			BlockTrialsPerSec: map[int]float64{1: 110, 8: 130},
			BestBlock:         8, BestBlockTrialsPerSec: 130, BestBlockNsPerStep: 45,
		},
		Suite: BenchSuite{
			Experiments: []string{"E1", "E2"}, GOMAXPROCS: 1, PoolWidth: 1,
			SerialSeconds: 2.0, ScheduledSeconds: 1.5, Speedup: 4.0 / 3.0,
			PoolUtilization: 0.9, CacheHits: 3, CacheMisses: 5,
		},
		Rows: []BenchRow{
			{Graph: "complete(n=256)", Process: "vertex", Engine: "fast", Trials: 6, Steps: 1000,
				NsPerStepReused: 40, TrialsPerSecFresh: 90, TrialsPerSecReused: 110,
				AllocsPerStep: 0, AllocsPerTrialReused: 2},
		},
	}
}

// TestBenchReportJSONSchema pins the wire format of BENCH_engine.json:
// every key downstream tooling reads must be present under its exact
// name, and every numeric value must be finite (NaN/Inf silently
// become invalid JSON or nulls depending on the encoder).
func TestBenchReportJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleBenchReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	for _, key := range []string{"quick", "note", "baseline_pre_pipeline", "e2_point", "suite", "rows"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("top-level key %q missing", key)
		}
	}
	e2, ok := doc["e2_point"].(map[string]any)
	if !ok {
		t.Fatalf("e2_point is %T, want object", doc["e2_point"])
	}
	for _, key := range []string{"n", "k", "trials", "steps", "trials_per_sec_fresh", "trials_per_sec_reused", "ns_per_step_reused", "speedup_vs_baseline", "block_trials_per_sec", "best_block", "best_block_trials_per_sec", "best_block_ns_per_step"} {
		if _, ok := e2[key]; !ok {
			t.Errorf("e2_point key %q missing", key)
		}
	}
	suite, ok := doc["suite"].(map[string]any)
	if !ok {
		t.Fatalf("suite is %T, want object", doc["suite"])
	}
	for _, key := range []string{"experiments", "gomaxprocs", "pool_width", "serial_seconds", "scheduled_seconds", "speedup", "pool_utilization", "graph_cache_hits", "graph_cache_misses"} {
		if _, ok := suite[key]; !ok {
			t.Errorf("suite key %q missing", key)
		}
	}
	rows, ok := doc["rows"].([]any)
	if !ok || len(rows) != 1 {
		t.Fatalf("rows = %#v, want 1-element array", doc["rows"])
	}
	row := rows[0].(map[string]any)
	for _, key := range []string{"graph", "process", "engine", "trials", "steps", "ns_per_step_reused", "trials_per_sec_fresh", "trials_per_sec_reused", "allocs_per_step", "allocs_per_trial_reused"} {
		if _, ok := row[key]; !ok {
			t.Errorf("row key %q missing", key)
		}
	}
	var assertFinite func(path string, v any)
	assertFinite = func(path string, v any) {
		switch x := v.(type) {
		case float64:
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("%s is not finite: %v", path, x)
			}
		case map[string]any:
			for k, vv := range x {
				assertFinite(path+"."+k, vv)
			}
		case []any:
			for i, vv := range x {
				assertFinite(path+"["+itoa(i)+"]", vv)
			}
		}
	}
	assertFinite("$", map[string]any(doc))
}

// TestBenchReportJSONRoundTrip checks the document decodes back into
// the same struct (no lossy field tags) and that a NaN anywhere makes
// WriteJSON fail loudly rather than emit a broken document.
func TestBenchReportJSONRoundTrip(t *testing.T) {
	in := sampleBenchReport()
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out BenchReport
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// BenchE2 holds a map (block -> trials/sec), so compare with DeepEqual.
	if !reflect.DeepEqual(out.E2, in.E2) || out.Baseline != in.Baseline {
		t.Errorf("round trip changed E2/Baseline: %+v vs %+v", out, in)
	}
	if len(out.Rows) != len(in.Rows) || out.Rows[0] != in.Rows[0] {
		t.Errorf("round trip changed Rows: %+v", out.Rows)
	}
	if out.Suite.PoolWidth != in.Suite.PoolWidth || out.Suite.Speedup != in.Suite.Speedup {
		t.Errorf("round trip changed Suite: %+v", out.Suite)
	}

	bad := sampleBenchReport()
	bad.E2.SpeedupVsBaseline = math.NaN()
	if err := bad.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("WriteJSON accepted NaN; downstream JSON consumers would break")
	}
}

// TestBenchFamiliesMonotoneSizes checks the benchmark workload scales
// with -full: every family's graph is at least as large at publication
// sizes as at quick sizes.
func TestBenchFamiliesMonotoneSizes(t *testing.T) {
	quick, err := benchFamilies(Params{Quick: true}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	full, err := benchFamilies(Params{Quick: false}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(quick) != len(full) {
		t.Fatalf("family count differs: %d quick vs %d full", len(quick), len(full))
	}
	for i := range quick {
		if quick[i].g.N() > full[i].g.N() {
			t.Errorf("family %d: quick n=%d exceeds full n=%d", i, quick[i].g.N(), full[i].g.N())
		}
	}
}

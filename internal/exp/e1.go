package exp

import (
	"fmt"
	"math"
	"math/rand/v2"

	"div/internal/core"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/spectral"
	"div/internal/stats"
)

// E1WinnerDistribution reproduces Theorem 2 on the paper's three
// expander families (K_n, random d-regular, G(n,p)): with opinions from
// [k] and initial average c, the consensus value is ⌊c⌋ with
// probability ~ ⌈c⌉-c and ⌈c⌉ with probability ~ c-⌊c⌋.
//
// The initial profile pins c = 4.3 exactly, so the predicted split is
// P[4] = 0.7, P[5] = 0.3.
func E1WinnerDistribution(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E1", Name: "winner distribution (Theorem 2)"}
	gs := newGraphs()
	defer gs.Release()

	n := p.pick(150, 400)
	k := 8
	const target = 4.3
	trials := p.pick(300, 1500)

	d := p.pick(16, 24)
	regular, err := gs.RandomRegular(n, d, rng.DeriveSeed(p.Seed, 0xe1a))
	if err != nil {
		return nil, err
	}
	gnpP := math.Max(0.1, 4*math.Log(float64(n))/float64(n))
	gnp, err := gs.ConnectedGnp(n, gnpP, rng.DeriveSeed(p.Seed, 0xe1b))
	if err != nil {
		return nil, err
	}
	points := []Point{
		{G: gs.Complete(n), Seed: rng.DeriveSeed(p.Seed, 0x100), Trials: trials},
		{G: regular, Seed: rng.DeriveSeed(p.Seed, 0x101), Trials: trials},
		{G: gnp, Seed: rng.DeriveSeed(p.Seed, 0x102), Trials: trials},
	}

	counts, err := profileWithMean(n, k, target)
	if err != nil {
		return nil, err
	}
	c := meanOfCounts(counts)
	lo, hi := roundedPair(c)
	qPred := c - float64(lo) // P[⌈c⌉]

	tbl := sim.NewTable(
		fmt.Sprintf("E1: DIV winner distribution, k=%d, c=%.3f (predict P[%d]=%.3f, P[%d]=%.3f)", k, c, lo, 1-qPred, hi, qPred),
		"graph", "n", "lambda", "trials", "frac winner in {lo,hi}", "P[hi] measured", "P[hi] predicted", "z",
	)

	results, err := SweepBlocked(p, "E1", points, BlockTrial{
		Process: core.VertexProcess,
		Init: func(_, _ int, dst []int, r *rand.Rand) error {
			_, err := core.BlockOpinionsInto(dst, counts, r)
			return err
		},
	}, func(_, _ int, res core.Result) (int, error) {
		if !res.Consensus {
			return 0, fmt.Errorf("no consensus after %d steps", res.Steps)
		}
		return res.Winner, nil
	})
	if err != nil {
		return nil, err
	}

	for pi, pt := range points {
		g := pt.G
		lam, err := gs.Lambda(g, spectral.Options{})
		if err != nil {
			return nil, fmt.Errorf("E1: λ(%v): %w", g, err)
		}
		winners := results[pi]
		inPair, hits := 0, 0
		for _, w := range winners {
			if isRoundedAverage(w, c) {
				inPair++
			}
			if w == hi {
				hits++
			}
		}
		frac := float64(inPair) / float64(trials)
		pHi := float64(hits) / float64(inPair)
		z := stats.BinomialZ(hits, inPair, qPred)
		tbl.AddRow(g.Name(), n, lam, trials, frac, pHi, qPred, z)

		rep.check(frac >= 0.95,
			fmt.Sprintf("rounded-average winner on %s", g.Name()),
			"winner ∈ {⌊c⌋,⌈c⌉} in %.1f%% of %d trials (want ≥ 95%%)", 100*frac, trials)
		rep.check(math.Abs(z) <= 5,
			fmt.Sprintf("winner split on %s", g.Name()),
			"P[⌈c⌉] = %.3f vs predicted %.3f (z=%.2f, want |z| ≤ 5)", pHi, qPred, z)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.note("Theorem 2 asserts the split asymptotically (c' ~ c); the finite-n drift of the weight martingale adds O(√T/n) slack absorbed by the z threshold.")
	return rep, nil
}

package exp

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"time"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
	"div/internal/sched"
)

// This file is the multicore scaling harness behind `divbench -widths`
// and `make bench-scaling`: it reruns the quick suite once per
// requested pool width — setting GOMAXPROCS to match, so the Go
// scheduler really has that many Ps — and records the wall clock,
// pool utilization, and the scheduler/cache counter deltas of each
// pass, then sweeps the generic CSR blocked kernel over block sizes on
// the non-complete families (expander, torus, path) to locate where
// SoA lane interleaving beats one-trial-at-a-time stepping. The result
// is the `scaling` section of BENCH_engine.json.
//
// The width curve is only meaningful relative to CPUsOnline: on a
// single-core host every width > 1 timeslices one core, so speedups
// sit near (or below) 1× and the interesting signal is the contention
// counters (steals, parks) staying sane. The numbers are recorded as
// measured, never extrapolated.

// BenchWidthPoint is one width of the suite scaling curve: the quick
// suite run once on a pool of Width workers with GOMAXPROCS=Width.
// Counter fields are deltas over the pass, from obs.Default.
type BenchWidthPoint struct {
	Width           int     `json:"width"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Seconds         float64 `json:"seconds"`
	SpeedupVsWidth1 float64 `json:"speedup_vs_width1"`
	PoolUtilization float64 `json:"pool_utilization"`
	Tasks           int64   `json:"sched_tasks"`
	Steals          int64   `json:"sched_steals"`
	Injects         int64   `json:"sched_injects"`
	Parks           int64   `json:"sched_parks"`
	CacheHits       int64   `json:"graph_cache_hits"`
	CacheMisses     int64   `json:"graph_cache_misses"`
}

// BenchBlockRow is one family × process × block-size measurement of
// the generic CSR blocked kernel: a fixed-step workload (no consensus
// dependence, so every block size executes identical step counts)
// timed on a reused scratch arena.
type BenchBlockRow struct {
	Graph           string  `json:"graph"`
	Process         string  `json:"process"`
	Block           int     `json:"block"`
	Trials          int     `json:"trials"`
	Steps           int64   `json:"steps"`
	Seconds         float64 `json:"seconds"`
	NsPerStep       float64 `json:"ns_per_step"`
	TrialsPerSec    float64 `json:"trials_per_sec"`
	SpeedupVsBlock1 float64 `json:"speedup_vs_block1"`
}

// BenchScaling is the `scaling` section of BENCH_engine.json.
type BenchScaling struct {
	CPUsOnline int `json:"cpus_online"`
	// Widths is the per-width suite scaling curve, in request order.
	Widths []BenchWidthPoint `json:"widths"`
	// Blocked is the CSR blocked-kernel block-size sweep.
	Blocked []BenchBlockRow `json:"blocked"`
	// BlockedWins lists "family/process" groups where some block size
	// B > 1 beat B = 1 on the fixed-step workload.
	BlockedWins []string `json:"blocked_wins"`
	Note        string   `json:"note"`
}

// scalingCounterNames are the obs counters whose per-pass deltas the
// width curve records.
var scalingCounterNames = []string{
	"sched_tasks_total",
	"sched_steals_total",
	"sched_injects_total",
	"sched_parks_total",
	"graph_cache_hits_total",
	"graph_cache_misses_total",
}

func scalingCounterSnapshot() map[string]int64 {
	out := make(map[string]int64, len(scalingCounterNames))
	for _, name := range scalingCounterNames {
		out[name] = obs.Default.Counter(name).Value()
	}
	return out
}

// BenchScalingRun measures the scaling section: one quick-suite pass
// per width (0 means all online CPUs), then the blocked-kernel block
// sweep. GOMAXPROCS is restored to its entry value before returning.
func BenchScalingRun(p Params, widths []int) (*BenchScaling, error) {
	p = p.withDefaults()
	s := &BenchScaling{CPUsOnline: runtime.NumCPU()}
	if s.CPUsOnline > 1 {
		s.Note = "width curve measured with GOMAXPROCS=width per pass; counters are per-pass deltas; blocked rows are interleaved min-of-N seconds"
	} else {
		s.Note = "single-CPU host: widths > 1 timeslice one core, so speedup_vs_width1 ≈ 1 is the honest ceiling; counters are per-pass deltas; blocked rows are interleaved min-of-N seconds"
	}

	var defs []Def
	for _, d := range All {
		if !d.Timing {
			defs = append(defs, d)
		}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	seen := map[int]bool{}
	for _, w := range widths {
		if w <= 0 {
			w = runtime.NumCPU()
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		runtime.GOMAXPROCS(w)
		pool := sched.Shared(w)
		busy0 := pool.BusyNanos()
		before := scalingCounterSnapshot()
		start := time.Now()
		_, errs := RunAll(Params{Quick: true, Seed: p.Seed, Engine: p.Engine, Block: p.Block, Parallelism: w}, defs)
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("scaling width %d: %s: %w", w, defs[i].ID, err)
			}
		}
		wall := time.Since(start)
		after := scalingCounterSnapshot()
		pt := BenchWidthPoint{
			Width:       w,
			GOMAXPROCS:  w,
			Seconds:     wall.Seconds(),
			Tasks:       after["sched_tasks_total"] - before["sched_tasks_total"],
			Steals:      after["sched_steals_total"] - before["sched_steals_total"],
			Injects:     after["sched_injects_total"] - before["sched_injects_total"],
			Parks:       after["sched_parks_total"] - before["sched_parks_total"],
			CacheHits:   after["graph_cache_hits_total"] - before["graph_cache_hits_total"],
			CacheMisses: after["graph_cache_misses_total"] - before["graph_cache_misses_total"],
		}
		if wall > 0 {
			pt.PoolUtilization = float64(pool.BusyNanos()-busy0) / (float64(w) * float64(wall.Nanoseconds()))
		}
		s.Widths = append(s.Widths, pt)
	}
	for i := range s.Widths {
		if s.Widths[i].Width == 1 && s.Widths[i].Seconds > 0 {
			for j := range s.Widths {
				s.Widths[j].SpeedupVsWidth1 = s.Widths[i].Seconds / s.Widths[j].Seconds
			}
			break
		}
	}
	runtime.GOMAXPROCS(prev)

	blocked, wins, err := benchBlockedCSR(p)
	if err != nil {
		return nil, err
	}
	s.Blocked = blocked
	s.BlockedWins = wins
	return s, nil
}

// scalingBlockSizes is the block-size sweep of the CSR kernel bench.
var scalingBlockSizes = []int{1, 2, 4, 8}

// benchBlockedCSR times the generic CSR lane kernels across block
// sizes on the three non-complete families the experiment grid runs
// them on. The vertex count is fixed at 2^20 in both modes: the lane
// interleave targets exactly the regime where one lane's opinion row
// (4 MB at n=2^20) already overflows L2, so every op[v] access is an
// L3-latency load that independent lanes (and the lane loops' one-step
// lookahead) can overlap — at cache-resident sizes B > 1 only adds
// row-switch overhead and loses honestly. Quick mode trims trials and
// steps, not n. EngineNaive pins the rows to the inline lane loops (no
// hybrid hand-off), so the measurement is the kernel itself.
//
// Timing is interleaved min-of-N: after one warm pass per block size,
// the timed passes cycle B = 1, 2, 4, 8, 1, 2, ... and each row keeps
// its minimum. Back-to-back single-shot timings on a shared host swing
// far more than the effect under test (±5–10 % observed); interleaving
// spreads that drift evenly across block sizes and the minimum is the
// standard low-noise estimator for a deterministic workload. Effects
// inside the residual noise band still land where they land — the rows
// record measurements, not expectations.
func benchBlockedCSR(p Params) ([]BenchBlockRow, []string, error) {
	const n = 1 << 20
	const side = 1024
	stepsPerTrial := int64(p.pick(1<<16, 1<<17))
	trials := p.pick(4, 8)
	reps := p.pick(3, 5)
	rr, err := graph.RandomRegular(n, 8, rng.New(rng.DeriveSeed(p.Seed, 0x5ca1e)))
	if err != nil {
		return nil, nil, err
	}
	type workload struct {
		name string
		g    *graph.Graph
		proc core.Process
	}
	workloads := []workload{
		{fmt.Sprintf("rr(n=%d,d=8)", n), rr, core.VertexProcess},
		{fmt.Sprintf("rr(n=%d,d=8)", n), rr, core.EdgeProcess},
		{fmt.Sprintf("torus(%dx%d)", side, side), graph.Torus(side, side), core.VertexProcess},
		{fmt.Sprintf("path(n=%d)", n), graph.Path(n), core.VertexProcess},
	}

	var rows []BenchBlockRow
	var wins []string
	out := make([]core.Result, trials)
	for _, wl := range workloads {
		sc := core.NewScratch(wl.g)
		cfg := func(b int) core.BlockConfig {
			return core.BlockConfig{
				Graph:    wl.g,
				Process:  wl.proc,
				Engine:   core.EngineNaive,
				Stop:     core.UntilMaxSteps,
				MaxSteps: stepsPerTrial,
				Seed:     rng.DeriveSeed(p.Seed, 0xb10c),
				Init: func(trial int, dst []int, r *rand.Rand) error {
					core.UniformOpinionsInto(dst, 5, r)
					return nil
				},
				Scratch: sc,
				Block:   b,
			}
		}
		// One untimed pass per block size warms the arena, CSR pages,
		// and branch predictors; every timed pass repeats the same
		// trial indices, so the step counts are identical by the
		// determinism contract.
		for _, b := range scalingBlockSizes {
			if err := core.RunBlock(cfg(b), 0, trials, out); err != nil {
				return nil, nil, fmt.Errorf("scaling blocked %s/%v block=%d warmup: %w", wl.name, wl.proc, b, err)
			}
		}
		minSec := make(map[int]float64, len(scalingBlockSizes))
		for rep := 0; rep < reps; rep++ {
			for _, b := range scalingBlockSizes {
				start := time.Now()
				if err := core.RunBlock(cfg(b), 0, trials, out); err != nil {
					return nil, nil, fmt.Errorf("scaling blocked %s/%v block=%d: %w", wl.name, wl.proc, b, err)
				}
				el := time.Since(start).Seconds()
				if v, ok := minSec[b]; !ok || el < v {
					minSec[b] = el
				}
			}
		}
		var steps int64
		for _, r := range out {
			steps += r.Steps
		}
		var base, best float64
		for _, b := range scalingBlockSizes {
			sec := minSec[b]
			row := BenchBlockRow{
				Graph:        wl.name,
				Process:      wl.proc.String(),
				Block:        b,
				Trials:       trials,
				Steps:        steps,
				Seconds:      sec,
				NsPerStep:    sec * 1e9 / float64(steps),
				TrialsPerSec: float64(trials) / sec,
			}
			if b == 1 {
				base = row.TrialsPerSec
			}
			if base > 0 {
				row.SpeedupVsBlock1 = row.TrialsPerSec / base
			}
			if b > 1 && row.TrialsPerSec > best {
				best = row.TrialsPerSec
			}
			rows = append(rows, row)
		}
		if best > base {
			wins = append(wins, fmt.Sprintf("%s/%v", wl.name, wl.proc))
		}
	}
	return rows, wins, nil
}

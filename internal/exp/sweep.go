package exp

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
	"div/internal/sched"
	"div/internal/sim"
)

// This file is the declarative sweep layer that replaced the
// hand-rolled per-point loops in the e*.go files. A sweep is a list of
// grid points (graph, base seed, trial count) plus one trial function;
// StartSweep fans the trials out at *trial* granularity onto the
// process-wide work-stealing pool (internal/sched) and returns a
// future, so a long-tail point — or a whole experiment — no longer
// holds a barrier over idle cores: trials from E2's n=3200 point
// interleave with E5's small points and with every other experiment
// running concurrently.
//
// Determinism: the schedule cannot influence results. Each trial's
// seed is rng.DeriveSeed(point.Seed, trial) — exactly the derivation
// sim.TrialsWorker uses — every trial writes only results[point][trial],
// and per-worker Scratch reuse is distribution-neutral (byte-identity
// tests in internal/core). Params.Serial routes the same points
// through sim.TrialsWorker synchronously instead; the determinism
// regression test asserts the full suite report is byte-identical
// across Serial, Parallelism=1, and wide pools.

// Point is one grid point of a sweep: Trials trials on G with trial
// seeds derived from Seed. For blocked sweeps the structure may
// instead be an implicit topology in T (graph.ImplicitTorus,
// graph.HashedRegular, …), which never materializes adjacency; set
// exactly one of G and T. Sequential (non-blocked) sweeps require G.
type Point struct {
	G      *graph.Graph
	T      graph.Topology
	Seed   uint64
	Trials int
}

// topology returns the point's structure: T when set, else G.
func (pt Point) topology() graph.Topology {
	if pt.T != nil {
		return pt.T
	}
	return pt.G
}

// Span telemetry for the sweep layer (obs span hierarchy
// suite→experiment→point→block, DESIGN.md §12). Point latency is the
// wall time from a point's first trial starting to its last trial
// completing — under parallelism that is the real end-to-end latency
// of the grid point, stragglers included. Block latency is one blocked
// span task. Per-engine trial histograms slice sim_trial_micros by the
// stepping engine that ran the sweep.
var (
	pointTimer = obs.Default.Timer("suite_experiment_point")
	blockTimer = obs.Default.Timer("suite_experiment_point_block")
)

// engineTrialHist returns the per-engine trial duration histogram for
// the sweep's engine selection.
func engineTrialHist(p Params) *obs.Histogram {
	eng := p.Engine
	if eng == "" {
		eng = "auto"
	}
	return obs.Default.Histogram("sim_trial_nanos_engine_" + obs.SanitizeMetricName(eng))
}

// pointSpan tracks one point's completion across its concurrently
// executing trials: the last trial (or block) to finish observes the
// point's wall time.
type pointSpan struct {
	start     time.Time
	remaining atomic.Int32
}

func newPointSpan(units int) *pointSpan {
	ps := &pointSpan{start: time.Now()}
	ps.remaining.Store(int32(units))
	return ps
}

// unitDone marks one unit complete; the final unit records the span.
func (ps *pointSpan) unitDone() {
	if ps.remaining.Add(-1) == 0 {
		pointTimer.ObserveSince(ps.start)
	}
}

// SweepFuture is a pending sweep's result: one slice per point,
// indexed by trial.
type SweepFuture[T any] struct {
	done chan struct{}
	res  [][]T
	err  error
}

// Wait blocks until the sweep completes and returns results[point][trial]
// or the first trial error.
func (f *SweepFuture[T]) Wait() ([][]T, error) {
	<-f.done
	return f.res, f.err
}

// resolved returns an already-completed future (the Serial path).
func resolved[T any](res [][]T, err error) *SweepFuture[T] {
	f := &SweepFuture[T]{done: make(chan struct{}), res: res, err: err}
	close(f.done)
	return f
}

// StartSweep launches every trial of every point and returns a
// future. fn computes one trial; it must draw all randomness from
// seed (and may use the per-worker scratch, which is bound to the
// point's graph). In Serial mode the sweep runs to completion before
// StartSweep returns — old pre-scheduler behaviour, same results.
func StartSweep[T any](p Params, id string, points []Point, fn func(point, trial int, seed uint64, sc *core.Scratch) (T, error)) *SweepFuture[T] {
	if p.Serial {
		return resolved(runSweepSerial(p, points, fn))
	}
	pool := sched.Shared(p.Parallelism)
	f := &SweepFuture[T]{done: make(chan struct{})}
	res := make([][]T, len(points))
	engHist := engineTrialHist(p)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		canceled atomic.Bool
	)
	for pi, pt := range points {
		res[pi] = make([]T, pt.Trials)
		wg.Add(pt.Trials)
	}
	for pi := range points {
		pi := pi
		pt := points[pi]
		if pt.Trials == 0 {
			continue
		}
		// One point-granularity task per point: it expands into trial
		// tasks on the running worker's own deque, so that worker keeps
		// scratch affinity with the point while idle workers steal the
		// tail of the trial list.
		pool.Submit(sched.Task{Tag: sched.Tag{Exp: id, Point: pi}, Run: func(w *sched.Worker) {
			ps := newPointSpan(pt.Trials)
			ts := make([]sched.Task, pt.Trials)
			for t := range ts {
				t := t
				ts[t] = sched.Task{Tag: sched.Tag{Exp: id, Point: pi, Trial: t}, Run: func(w *sched.Worker) {
					defer wg.Done()
					defer ps.unitDone()
					if canceled.Load() {
						return
					}
					sc := workerScratch(w, pt.G)
					seed := rng.DeriveSeed(pt.Seed, uint64(t))
					v, elapsed, err := sim.Instrumented(func() (T, error) { return fn(pi, t, seed, sc) })
					engHist.Observe(elapsed.Nanoseconds())
					if err != nil {
						canceled.Store(true)
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("sim: trial %d: %w", t, err)
						}
						errMu.Unlock()
						return
					}
					res[pi][t] = v
				}}
			}
			w.Submit(ts...)
		}})
	}
	go func() {
		wg.Wait()
		if firstErr != nil {
			f.err = firstErr
		} else {
			f.res = res
		}
		close(f.done)
	}()
	return f
}

// Sweep is StartSweep + Wait: run every trial of every point, return
// results[point][trial].
func Sweep[T any](p Params, id string, points []Point, fn func(point, trial int, seed uint64, sc *core.Scratch) (T, error)) ([][]T, error) {
	return StartSweep(p, id, points, fn).Wait()
}

// SweepTrials is the single-point convenience: trials on one graph,
// results indexed by trial.
func SweepTrials[T any](p Params, id string, g *graph.Graph, baseSeed uint64, trials int, fn func(trial int, seed uint64, sc *core.Scratch) (T, error)) ([]T, error) {
	res, err := Sweep(p, id, []Point{{G: g, Seed: baseSeed, Trials: trials}},
		func(_, trial int, seed uint64, sc *core.Scratch) (T, error) { return fn(trial, seed, sc) })
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// BlockTrial is the per-trial core configuration of a blocked sweep:
// everything core.RunBlock needs beyond the grid point itself. Init
// fills dst with the initial opinions of (point, trial), drawing only
// from r; the zero values of Rule, Stop, and MaxSteps inherit the
// core defaults (DIV, run to consensus, 200n² steps).
type BlockTrial struct {
	Process  core.Process
	Rule     core.Rule
	Stop     core.StopCondition
	MaxSteps int64
	// Compact runs each trial on the byte opinion slab (window ≤ 256);
	// results are byte-identical to the int32 representation.
	Compact bool
	Init    func(point, trial int, dst []int, r *rand.Rand) error
}

// config assembles the core.BlockConfig for one point of a blocked
// sweep. The point's Seed becomes the kernel's stream base, so every
// trial's randomness is the counter stream keyed (Seed, trial) —
// independent of block size, span boundaries, and scheduling.
func (bt BlockTrial) config(p Params, pi int, pt Point, sc *core.Scratch) core.BlockConfig {
	return core.BlockConfig{
		Graph:    pt.G,
		Topology: pt.T,
		Compact:  bt.Compact,
		Process:  bt.Process,
		Rule:     bt.Rule,
		Engine:   p.coreEngine(),
		Stop:     bt.Stop,
		MaxSteps: bt.MaxSteps,
		Seed:     pt.Seed,
		Init: func(trial int, dst []int, r *rand.Rand) error {
			return bt.Init(pi, trial, dst, r)
		},
		Probe:   p.Probe,
		Scratch: sc,
		Block:   p.blockSize(),
	}
}

// StartSweepBlocked launches a sweep on the blocked multi-trial kernel
// and returns a future. Work is submitted at *span* granularity — each
// task runs one block of consecutive trials of one point through
// core.RunBlock on the worker's scratch arena — so the scheduler
// steals whole blocks and the SoA slab stays hot within each task.
// post maps each trial's core.Result to the sweep's element type (and
// may reject it with an error); it runs inside the span task, ordered
// by trial within the span.
func StartSweepBlocked[T any](p Params, id string, points []Point, bt BlockTrial, post func(point, trial int, res core.Result) (T, error)) *SweepFuture[T] {
	if p.Serial {
		return resolved(runSweepBlockedSerial(p, points, bt, post))
	}
	pool := sched.Shared(p.Parallelism)
	f := &SweepFuture[T]{done: make(chan struct{})}
	res := make([][]T, len(points))
	span := p.blockSize()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		canceled atomic.Bool
	)
	for pi, pt := range points {
		res[pi] = make([]T, pt.Trials)
		wg.Add((pt.Trials + span - 1) / span)
	}
	for pi := range points {
		pi := pi
		pt := points[pi]
		if pt.Trials == 0 {
			continue
		}
		pool.Submit(sched.Task{Tag: sched.Tag{Exp: id, Point: pi}, Run: func(w *sched.Worker) {
			ps := newPointSpan((pt.Trials + span - 1) / span)
			var ts []sched.Task
			for t0 := 0; t0 < pt.Trials; t0 += span {
				t0 := t0
				t1 := t0 + span
				if t1 > pt.Trials {
					t1 = pt.Trials
				}
				ts = append(ts, sched.Task{Tag: sched.Tag{Exp: id, Point: pi, Trial: t0, Span: t1 - t0}, Run: func(w *sched.Worker) {
					defer wg.Done()
					defer ps.unitDone()
					if canceled.Load() {
						return
					}
					sc := workerScratch(w, pt.topology())
					out := make([]core.Result, t1-t0)
					elapsed, err := sim.InstrumentedBlock(t1-t0, func() error {
						if err := core.RunBlock(bt.config(p, pi, pt, sc), t0, t1, out); err != nil {
							return err
						}
						for t := t0; t < t1; t++ {
							v, err := post(pi, t, out[t-t0])
							if err != nil {
								return fmt.Errorf("trial %d: %w", t, err)
							}
							res[pi][t] = v
						}
						return nil
					})
					blockTimer.Observe(elapsed)
					if err != nil {
						canceled.Store(true)
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("sim: trials [%d,%d): %w", t0, t1, err)
						}
						errMu.Unlock()
					}
				}})
			}
			w.Submit(ts...)
		}})
	}
	go func() {
		wg.Wait()
		if firstErr != nil {
			f.err = firstErr
		} else {
			f.res = res
		}
		close(f.done)
	}()
	return f
}

// SweepBlocked is StartSweepBlocked + Wait.
func SweepBlocked[T any](p Params, id string, points []Point, bt BlockTrial, post func(point, trial int, res core.Result) (T, error)) ([][]T, error) {
	return StartSweepBlocked(p, id, points, bt, post).Wait()
}

// runSweepBlockedSerial is the Serial path of a blocked sweep: points
// in order, each a sim.TrialBlocks batch of span-granularity tasks.
// Same kernel, same streams, hence byte-identical results.
func runSweepBlockedSerial[T any](p Params, points []Point, bt BlockTrial, post func(point, trial int, res core.Result) (T, error)) ([][]T, error) {
	out := make([][]T, len(points))
	for pi, pt := range points {
		pi, pt := pi, pt
		out[pi] = make([]T, pt.Trials)
		err := sim.TrialBlocks(pt.Trials, p.blockSize(), p.Parallelism,
			func() *core.Scratch { return core.NewScratchTopo(pt.topology()) },
			func(t0, t1 int, sc *core.Scratch) error {
				buf := make([]core.Result, t1-t0)
				if err := core.RunBlock(bt.config(p, pi, pt, sc), t0, t1, buf); err != nil {
					return err
				}
				for t := t0; t < t1; t++ {
					v, err := post(pi, t, buf[t-t0])
					if err != nil {
						return fmt.Errorf("trial %d: %w", t, err)
					}
					out[pi][t] = v
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runSweepSerial is the pre-scheduler path: points in order, each a
// sim.TrialsWorker batch (identical seed derivation and scratch
// semantics, hence identical results).
func runSweepSerial[T any](p Params, points []Point, fn func(point, trial int, seed uint64, sc *core.Scratch) (T, error)) ([][]T, error) {
	out := make([][]T, len(points))
	for pi, pt := range points {
		pi, pt := pi, pt
		res, err := sim.TrialsWorker(pt.Trials, pt.Seed, p.Parallelism,
			func() *core.Scratch { return core.NewScratch(pt.G) },
			func(trial int, seed uint64, sc *core.Scratch) (T, error) {
				return fn(pi, trial, seed, sc)
			})
		if err != nil {
			return nil, err
		}
		out[pi] = res
	}
	return out, nil
}

// workerScratch returns the worker's Scratch for g, reusing across
// trials and points. A tiny per-worker LRU (a handful of graphs) is
// enough: a worker that bounces between graphs is stealing across
// points anyway, and Scratch reuse only pays within a graph.
const workerScratchCap = 4

type workerScratchKey struct{}

type scratchLRU struct {
	entries []scratchEntry
}

type scratchEntry struct {
	t  graph.Topology
	sc *core.Scratch
}

func workerScratch(w *sched.Worker, t graph.Topology) *core.Scratch {
	lru := w.Local(workerScratchKey{}, func() any { return &scratchLRU{} }).(*scratchLRU)
	for i, e := range lru.entries {
		if e.t == t {
			if i != 0 {
				copy(lru.entries[1:i+1], lru.entries[:i])
				lru.entries[0] = e
			}
			return e.sc
		}
	}
	sc := core.NewScratchTopo(t)
	if len(lru.entries) < workerScratchCap {
		lru.entries = append(lru.entries, scratchEntry{})
	}
	copy(lru.entries[1:], lru.entries)
	lru.entries[0] = scratchEntry{t: t, sc: sc}
	return sc
}

package exp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sched"
	"div/internal/sim"
)

// This file is the declarative sweep layer that replaced the
// hand-rolled per-point loops in the e*.go files. A sweep is a list of
// grid points (graph, base seed, trial count) plus one trial function;
// StartSweep fans the trials out at *trial* granularity onto the
// process-wide work-stealing pool (internal/sched) and returns a
// future, so a long-tail point — or a whole experiment — no longer
// holds a barrier over idle cores: trials from E2's n=3200 point
// interleave with E5's small points and with every other experiment
// running concurrently.
//
// Determinism: the schedule cannot influence results. Each trial's
// seed is rng.DeriveSeed(point.Seed, trial) — exactly the derivation
// sim.TrialsWorker uses — every trial writes only results[point][trial],
// and per-worker Scratch reuse is distribution-neutral (byte-identity
// tests in internal/core). Params.Serial routes the same points
// through sim.TrialsWorker synchronously instead; the determinism
// regression test asserts the full suite report is byte-identical
// across Serial, Parallelism=1, and wide pools.

// Point is one grid point of a sweep: Trials trials on G with trial
// seeds derived from Seed.
type Point struct {
	G      *graph.Graph
	Seed   uint64
	Trials int
}

// SweepFuture is a pending sweep's result: one slice per point,
// indexed by trial.
type SweepFuture[T any] struct {
	done chan struct{}
	res  [][]T
	err  error
}

// Wait blocks until the sweep completes and returns results[point][trial]
// or the first trial error.
func (f *SweepFuture[T]) Wait() ([][]T, error) {
	<-f.done
	return f.res, f.err
}

// resolved returns an already-completed future (the Serial path).
func resolved[T any](res [][]T, err error) *SweepFuture[T] {
	f := &SweepFuture[T]{done: make(chan struct{}), res: res, err: err}
	close(f.done)
	return f
}

// StartSweep launches every trial of every point and returns a
// future. fn computes one trial; it must draw all randomness from
// seed (and may use the per-worker scratch, which is bound to the
// point's graph). In Serial mode the sweep runs to completion before
// StartSweep returns — old pre-scheduler behaviour, same results.
func StartSweep[T any](p Params, id string, points []Point, fn func(point, trial int, seed uint64, sc *core.Scratch) (T, error)) *SweepFuture[T] {
	if p.Serial {
		return resolved(runSweepSerial(p, points, fn))
	}
	pool := sched.Shared(p.Parallelism)
	f := &SweepFuture[T]{done: make(chan struct{})}
	res := make([][]T, len(points))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		canceled atomic.Bool
	)
	for pi, pt := range points {
		res[pi] = make([]T, pt.Trials)
		wg.Add(pt.Trials)
	}
	for pi := range points {
		pi := pi
		pt := points[pi]
		if pt.Trials == 0 {
			continue
		}
		// One point-granularity task per point: it expands into trial
		// tasks on the running worker's own deque, so that worker keeps
		// scratch affinity with the point while idle workers steal the
		// tail of the trial list.
		pool.Submit(sched.Task{Tag: sched.Tag{Exp: id, Point: pi}, Run: func(w *sched.Worker) {
			ts := make([]sched.Task, pt.Trials)
			for t := range ts {
				t := t
				ts[t] = sched.Task{Tag: sched.Tag{Exp: id, Point: pi, Trial: t}, Run: func(w *sched.Worker) {
					defer wg.Done()
					if canceled.Load() {
						return
					}
					sc := workerScratch(w, pt.G)
					seed := rng.DeriveSeed(pt.Seed, uint64(t))
					v, _, err := sim.Instrumented(func() (T, error) { return fn(pi, t, seed, sc) })
					if err != nil {
						canceled.Store(true)
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("sim: trial %d: %w", t, err)
						}
						errMu.Unlock()
						return
					}
					res[pi][t] = v
				}}
			}
			w.Submit(ts...)
		}})
	}
	go func() {
		wg.Wait()
		if firstErr != nil {
			f.err = firstErr
		} else {
			f.res = res
		}
		close(f.done)
	}()
	return f
}

// Sweep is StartSweep + Wait: run every trial of every point, return
// results[point][trial].
func Sweep[T any](p Params, id string, points []Point, fn func(point, trial int, seed uint64, sc *core.Scratch) (T, error)) ([][]T, error) {
	return StartSweep(p, id, points, fn).Wait()
}

// SweepTrials is the single-point convenience: trials on one graph,
// results indexed by trial.
func SweepTrials[T any](p Params, id string, g *graph.Graph, baseSeed uint64, trials int, fn func(trial int, seed uint64, sc *core.Scratch) (T, error)) ([]T, error) {
	res, err := Sweep(p, id, []Point{{G: g, Seed: baseSeed, Trials: trials}},
		func(_, trial int, seed uint64, sc *core.Scratch) (T, error) { return fn(trial, seed, sc) })
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// runSweepSerial is the pre-scheduler path: points in order, each a
// sim.TrialsWorker batch (identical seed derivation and scratch
// semantics, hence identical results).
func runSweepSerial[T any](p Params, points []Point, fn func(point, trial int, seed uint64, sc *core.Scratch) (T, error)) ([][]T, error) {
	out := make([][]T, len(points))
	for pi, pt := range points {
		pi, pt := pi, pt
		res, err := sim.TrialsWorker(pt.Trials, pt.Seed, p.Parallelism,
			func() *core.Scratch { return core.NewScratch(pt.G) },
			func(trial int, seed uint64, sc *core.Scratch) (T, error) {
				return fn(pi, trial, seed, sc)
			})
		if err != nil {
			return nil, err
		}
		out[pi] = res
	}
	return out, nil
}

// workerScratch returns the worker's Scratch for g, reusing across
// trials and points. A tiny per-worker LRU (a handful of graphs) is
// enough: a worker that bounces between graphs is stealing across
// points anyway, and Scratch reuse only pays within a graph.
const workerScratchCap = 4

type workerScratchKey struct{}

type scratchLRU struct {
	entries []scratchEntry
}

type scratchEntry struct {
	g  *graph.Graph
	sc *core.Scratch
}

func workerScratch(w *sched.Worker, g *graph.Graph) *core.Scratch {
	lru := w.Local(workerScratchKey{}, func() any { return &scratchLRU{} }).(*scratchLRU)
	for i, e := range lru.entries {
		if e.g == g {
			if i != 0 {
				copy(lru.entries[1:i+1], lru.entries[:i])
				lru.entries[0] = e
			}
			return e.sc
		}
	}
	sc := core.NewScratch(g)
	if len(lru.entries) < workerScratchCap {
		lru.entries = append(lru.entries, scratchEntry{})
	}
	copy(lru.entries[1:], lru.entries)
	lru.entries[0] = scratchEntry{g: g, sc: sc}
	return sc
}

package exp

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E10EdgeVsVertex reproduces the footnote and Remark 1: "the edge
// process returns a simple average while the vertex process returns a
// degree weighted average" — and the two coincide only on (near-)
// regular graphs.
//
// On irregular graphs with degree-correlated opinions the two targets
// separate by several opinion values. The sharpest check exploits the
// optional-stopping consequence of Lemma 3, valid on EVERY connected
// graph: E[winner] equals the initial simple average under the edge
// process and the initial degree-weighted average under the vertex
// process, exactly.
func E10EdgeVsVertex(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E10", Name: "edge vs vertex process (Remark 1)"}
	trials := p.pick(300, 1000)

	gs := newGraphs()
	defer gs.Release()

	// Scenario A: Barabási–Albert graph, hubs opinionated high.
	nB := p.pick(150, 400)
	gB, err := gs.BarabasiAlbert(nB, 4, rng.DeriveSeed(p.Seed, 0xe10))
	if err != nil {
		return nil, err
	}
	order := make([]int, nB)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return gB.Degree(order[i]) > gB.Degree(order[j]) })
	initBA, err := core.PlantedSetOpinions(nB, order[:nB/4], 9, 1)
	if err != nil {
		return nil, err
	}

	// Scenario B: star, centre opinionated high (assumptions of
	// Theorem 2 fail — π_max = 1/2 — but Lemma 3's expectation claim
	// still binds exactly).
	nS := p.pick(101, 201)
	gS := gs.Star(nS)
	initStar := make([]int, nS)
	initStar[0] = 5
	for v := 1; v < nS; v++ {
		initStar[v] = 1
	}

	tbl := sim.NewTable(
		"E10: consensus value vs the process's conserved average",
		"graph", "process", "target avg", "mean winner", "stderr", "|z|", "winner histogram",
	)

	type scen struct {
		g    *graph.Graph
		init []int
		tag  string
	}
	var meanWinner [2]map[string]float64
	meanWinner[0] = map[string]float64{}
	meanWinner[1] = map[string]float64{}
	scens := []scen{{gB, initBA, "BA"}, {gS, initStar, "star"}}
	procs := []core.Process{core.EdgeProcess, core.VertexProcess}
	// One blocked sweep per process (a blocked sweep fixes Process for
	// all its points); the two futures overlap on the scheduler, and the
	// BA/star points run the generic CSR lane kernels — exactly the
	// irregular-graph regime where SoA memory-level parallelism pays.
	var futs [2]*SweepFuture[float64]
	for pi, proc := range procs {
		points := make([]Point, len(scens))
		for si := range scens {
			points[si] = Point{
				G:      scens[si].g,
				Seed:   rng.DeriveSeed(p.Seed, uint64(0xa00+10*si+pi)),
				Trials: trials,
			}
		}
		futs[pi] = StartSweepBlocked(p, "E10", points, BlockTrial{
			Process: proc,
			Init: func(si, _ int, dst []int, _ *rand.Rand) error {
				copy(dst, scens[si].init)
				return nil
			},
		}, func(_, _ int, res core.Result) (float64, error) {
			if !res.Consensus {
				return 0, fmt.Errorf("no consensus after %d steps", res.Steps)
			}
			return float64(res.Winner), nil
		})
	}
	var results [2][][]float64 // results[process][scenario][trial]
	for pi := range futs {
		r, err := futs[pi].Wait()
		if err != nil {
			return nil, err
		}
		results[pi] = r
	}
	for si, sc := range scens {
		st := core.MustState(sc.g, sc.init)
		targets := map[core.Process]float64{
			core.EdgeProcess:   st.Average(),
			core.VertexProcess: st.WeightedAverage(),
		}
		for pi, proc := range procs {
			winners := results[pi][si]
			s := stats.Summarize(winners)
			h := stats.NewIntHistogram()
			for _, w := range winners {
				h.Add(int(w))
			}
			target := targets[proc]
			z := 0.0
			if s.Stderr() > 0 {
				z = (s.Mean - target) / s.Stderr()
			}
			meanWinner[pi][sc.tag] = s.Mean
			tbl.AddRow(sc.g.Name(), proc.String(), target, s.Mean, s.Stderr(), math.Abs(z), h.String())
			rep.check(math.Abs(z) <= 5,
				fmt.Sprintf("E[winner] = conserved average (%s, %s)", sc.tag, proc),
				"mean winner %.3f vs target %.3f (|z| = %.2f, want ≤ 5; optional stopping on Lemma 3)", s.Mean, target, math.Abs(z))
		}
	}
	rep.Tables = append(rep.Tables, tbl)

	sepBA := meanWinner[1]["BA"] - meanWinner[0]["BA"]
	rep.check(sepBA >= 1,
		"processes separate on irregular graphs",
		"BA graph: mean winner differs by %.2f opinion values between vertex (degree-weighted) and edge (simple) processes", sepBA)
	rep.note("On the star the spread of winners is wide (π_max = 1/2 breaks Theorem 2's concentration), but the expectation identity holds exactly — the experiment separates Lemma 3 from Theorem 2.")
	return rep, nil
}

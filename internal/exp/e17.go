package exp

import (
	"fmt"
	"math"

	"div/internal/baseline"
	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E17PushPull extends the paper's footnote ("the type of average
// returned depends on the algorithm") along the push/pull axis. Under
// the same vertex-process scheduler, flipping WHICH endpoint updates
// flips the conserved weighting of the opinion vector:
//
//	pull DIV (v updates):  Σ d(v)X_v    — degree-weighted average
//	push DIV (w updates):  Σ X_v/d(v)   — inverse-degree-weighted average
//
// Both identities follow from the arc-antisymmetry argument of Lemma 3
// (core.SignedArcSum resp. core.PushDIVInvDegDrift enumerate them
// exactly), and optional stopping makes E[winner] equal the respective
// average on ANY connected graph. On the star with an opinionated
// centre the two targets differ by almost the full opinion range.
func E17PushPull(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E17", Name: "push vs pull: which average survives"}
	trials := p.pick(300, 1000)
	gs := newGraphs()
	defer gs.Release()

	// Exact drift identities over random configurations.
	r := rng.New(rng.DeriveSeed(p.Seed, 0xe17))
	configs := p.pick(80, 300)
	bad := 0
	for i := 0; i < configs; i++ {
		n := 5 + r.IntN(50)
		g, err := graph.ConnectedGnp(n, 0.25+0.5*r.Float64(), r, 300)
		if err != nil {
			return nil, err
		}
		s := core.MustState(g, core.UniformOpinions(n, 2+r.IntN(9), r))
		if core.SignedArcSum(s) != 0 || math.Abs(core.PushDIVInvDegDrift(s)) > 1e-13 {
			bad++
		}
	}
	rep.check(bad == 0,
		"both conservation identities hold exactly",
		"%d/%d random configurations violated a drift identity", bad, configs)

	// Winner expectations on the star: centre=k, leaves=1.
	n := p.pick(81, 161)
	k := 5
	g := gs.Star(n)
	init := make([]int, n)
	init[0] = k
	for v := 1; v < n; v++ {
		init[v] = 1
	}
	st := core.MustState(g, init)
	targets := map[string]float64{
		"div (pull)": st.WeightedAverage(),
		"push-div":   core.InvDegAverage(st),
	}

	tbl := sim.NewTable(
		fmt.Sprintf("E17: push vs pull incremental voting on %s (centre=%d, leaves=1), vertex process", g.Name(), k),
		"rule", "conserved average", "target", "mean winner", "stderr", "|z|",
	)
	rules := []struct {
		rule core.Rule
		kind string
	}{
		{core.DIV{}, "div (pull)"},
		{baseline.PushDIV{}, "push-div"},
	}
	points := make([]Point, len(rules))
	for ri := range rules {
		points[ri] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0x1700+ri)), Trials: trials}
	}
	results, err := Sweep(p, "E17", points, func(ri, trial int, seed uint64, sc *core.Scratch) (float64, error) {
		rl := rules[ri]
		res, err := core.Run(core.Config{
			Engine:  p.coreEngine(),
			Probe:   p.probeFor(trial, seed),
			Graph:   g,
			Initial: init,
			Process: core.VertexProcess,
			Rule:    rl.rule,
			Seed:    seed,
			Scratch: sc,
		})
		if err != nil {
			return 0, err
		}
		if !res.Consensus {
			return 0, fmt.Errorf("%s: no consensus after %d steps", rl.rule.Name(), res.Steps)
		}
		return float64(res.Winner), nil
	})
	if err != nil {
		return nil, err
	}
	means := map[string]float64{}
	for ri, rl := range rules {
		s := stats.Summarize(results[ri])
		target := targets[rl.kind]
		z := 0.0
		if s.Stderr() > 0 {
			z = (s.Mean - target) / s.Stderr()
		}
		means[rl.kind] = s.Mean
		weightName := "Σ d(v)X_v / 2m"
		if rl.kind == "push-div" {
			weightName = "Σ X_v/d(v) / Σ 1/d(v)"
		}
		tbl.AddRow(rl.rule.Name(), weightName, target, s.Mean, s.Stderr(), math.Abs(z))
		rep.check(math.Abs(z) <= 5,
			fmt.Sprintf("E[winner] matches the %s target", rl.kind),
			"mean winner %.3f vs %.3f (|z| = %.2f)", s.Mean, target, math.Abs(z))
	}
	rep.Tables = append(rep.Tables, tbl)

	sep := means["div (pull)"] - means["push-div"]
	rep.check(sep >= 1,
		"direction flip moves the consensus target",
		"pull mean %.2f vs push mean %.2f on the same graph, scheduler and initial opinions (targets %.2f vs %.2f)",
		means["div (pull)"], means["push-div"], targets["div (pull)"], targets["push-div"])
	rep.note("One bit — which endpoint of the interaction updates — selects between the degree-weighted and inverse-degree-weighted averages; the simple average requires the edge process (E10).")
	return rep, nil
}

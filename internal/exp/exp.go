// Package exp implements the repository's experiment suite E1–E20: one
// experiment per theorem, lemma, closed-form probability, or worked
// example in the paper (plus the E14 distributed-deployment extension
// and the E20 fast-engine benchmark).
// DESIGN.md §3 is the index. Each experiment produces text tables (and
// the scaling ones ASCII figures), together with named pass/fail checks
// asserted by the integration tests, so "paper claim vs. measured"
// lives in code rather than prose.
//
// Every experiment accepts Params and respects Quick mode, which
// scales sizes down to seconds for use in `go test` and `go test
// -bench`; the full mode behind `divbench -full` uses larger n and
// trial counts.
package exp

import (
	"fmt"
	"io"
	"math"
	"sync"

	"div/internal/core"
	"div/internal/obs"
	"div/internal/sim"
)

// Params configures an experiment run.
type Params struct {
	// Quick selects reduced sizes/trials (seconds instead of minutes).
	Quick bool
	// Seed is the master seed; every trial derives from it.
	Seed uint64
	// Parallelism caps worker goroutines; 0 means GOMAXPROCS.
	Parallelism int
	// Engine selects the core stepping engine ("naive", "fast",
	// "auto"); empty means "auto". Experiments pass it through to every
	// core.Run so `divbench -engine` applies suite-wide.
	Engine string
	// Probe, when non-nil, is invoked once per core.Run with that run's
	// trial index and derived seed, and the returned probe is attached
	// to the run's Config (nil keeps the engine's zero-cost fast path).
	// Experiments pass it through every Config so `divbench -trace`
	// and `-metrics` see the whole suite.
	Probe obs.ProbeMaker
	// Serial disables the suite work-stealing scheduler: sweeps run
	// their points in order through sim.TrialsWorker, the pre-scheduler
	// behaviour behind `divbench -serial`. Results are byte-identical
	// either way (seeds derive per point and trial); only scheduling
	// and wall-clock change.
	Serial bool
	// Block is the blocked kernel's trials-per-block B for sweeps on
	// the blocked pipeline (core.RunBlock: E1's winner sweep and both
	// E2 sweeps); 0 means core.DefaultBlock. Each trial draws from its
	// own counter-based RNG stream keyed by (point seed, trial), so
	// reports are byte-identical across block sizes and scheduling —
	// `divbench -block` is purely a performance knob.
	Block int
}

// blockSize resolves Block, defaulting to core.DefaultBlock.
func (p Params) blockSize() int {
	if p.Block > 0 {
		return p.Block
	}
	return core.DefaultBlock
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 0x5eed
	}
	if p.Engine == "" {
		p.Engine = "auto"
	}
	return p
}

// coreEngine resolves the Engine string, defaulting to EngineAuto on
// empty or unparseable values (experiments validate the flag at the
// CLI boundary; here a bad value must not abort a suite run).
func (p Params) coreEngine() core.Engine {
	e, err := core.ParseEngine(p.Engine)
	if err != nil {
		return core.EngineAuto
	}
	return e
}

// probeFor builds the probe for one core run; nil when no maker is
// installed, preserving the engine's nil-probe fast path.
func (p Params) probeFor(trial int, seed uint64) obs.Probe {
	if p.Probe == nil {
		return nil
	}
	return p.Probe(trial, seed)
}

// pick returns quick in Quick mode and full otherwise.
func (p Params) pick(quick, full int) int {
	if p.Quick {
		return quick
	}
	return full
}

// Check is a named verdict comparing a paper claim against measurement.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Name   string
	Tables []*sim.Table
	// Figures holds pre-rendered ASCII plots.
	Figures []string
	Checks  []Check
	Notes   []string
}

// Failed returns the failing checks.
func (r *Report) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

func (r *Report) check(pass bool, name, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

func (r *Report) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders the full report — tables, figures, checks, notes
// — to w, exactly as divbench prints it. It is the canonical textual
// form the determinism regression test compares across scheduling
// modes.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "######## %s — %s\n\n", r.ID, r.Name); err != nil {
		return err
	}
	for _, tbl := range r.Tables {
		if err := tbl.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, fig := range r.Figures {
		if _, err := fmt.Fprintln(w, fig); err != nil {
			return err
		}
	}
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "  [%s] %s — %s\n", mark, c.Name, c.Detail); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Func runs one experiment.
type Func func(Params) (*Report, error)

// Def pairs an experiment with its metadata.
type Def struct {
	ID   string
	Name string
	Run  Func
	// Timing marks experiments whose tables report wall-clock
	// measurements (E20's engine benchmark): their output legitimately
	// varies run to run, so the determinism regression test and the
	// suite-timing benchmark skip them.
	Timing bool
}

// All lists every experiment in index order.
var All = []Def{
	{ID: "E1", Name: "winner distribution (Theorem 2)", Run: E1WinnerDistribution},
	{ID: "E2", Name: "reduction time scaling (Theorem 1, eq. 4)", Run: E2ReductionTime},
	{ID: "E3", Name: "weight martingales (Lemma 3)", Run: E3Martingale},
	{ID: "E4", Name: "two-opinion pull voting (eq. 3)", Run: E4TwoOpinionPull},
	{ID: "E5", Name: "Azuma concentration (eq. 5)", Run: E5Concentration},
	{ID: "E6", Name: "stage evolution (intro example)", Run: E6StageEvolution},
	{ID: "E7", Name: "mode/median/mean separation", Run: E7ModeMedianMean},
	{ID: "E8", Name: "DIV vs load-balancing averaging [5]", Run: E8LoadBalancing},
	{ID: "E9", Name: "path counterexample ([13] Thm 3)", Run: E9PathCounterexample},
	{ID: "E10", Name: "edge vs vertex process (Remark 1)", Run: E10EdgeVsVertex},
	{ID: "E11", Name: "second eigenvalues of example families", Run: E11Eigenvalues},
	{ID: "E12", Name: "extreme-opinion elimination (Lemmas 10-14)", Run: E12ExtremeElimination},
	{ID: "E13", Name: "accuracy across the λk threshold", Run: E13LambdaKThreshold},
	{ID: "E14", Name: "distributed message-passing deployment", Run: E14Distributed},
	{ID: "E15", Name: "step-size ablation (DIV → pull)", Run: E15StepSizeAblation},
	{ID: "E16", Name: "synchronous rounds (extension)", Run: E16Synchronous},
	{ID: "E17", Name: "push vs pull: which average survives", Run: E17PushPull},
	{ID: "E18", Name: "zealots / stubborn vertices (extension)", Run: E18Zealots},
	{ID: "E19", Name: "pull voting ↔ coalescing walks duality", Run: E19CoalescingDuality},
	{ID: "E20", Name: "fast engine speedup (discordance tracking)", Run: E20FastEngine, Timing: true},
}

// RunAll runs the given experiments (all of them when defs is empty)
// and returns reports in definition order. Unless p.Serial, the
// experiments' goroutines run concurrently and their sweeps share the
// work-stealing pool, so trials from different experiments interleave;
// with p.Serial they run strictly one after another — the two paths
// the suite-timing benchmark compares. Experiment errors are collected
// per definition: the i-th error corresponds to the i-th def (nil on
// success), and reports[i] is nil exactly when errs[i] is non-nil.
func RunAll(p Params, defs []Def) (reports []*Report, errs []error) {
	if len(defs) == 0 {
		defs = All
	}
	reports = make([]*Report, len(defs))
	errs = make([]error, len(defs))
	if p.Serial {
		for i, d := range defs {
			reports[i], errs[i] = d.Run(p)
		}
		return reports, errs
	}
	var wg sync.WaitGroup
	for i, d := range defs {
		i, d := i, d
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i], errs[i] = d.Run(p)
		}()
	}
	wg.Wait()
	return reports, errs
}

// ByID returns the experiment definition with the given ID.
func ByID(id string) (Def, error) {
	for _, d := range All {
		if d.ID == id {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// roundedPair returns ⌊c⌋ and ⌈c⌉.
func roundedPair(c float64) (int, int) {
	return int(math.Floor(c)), int(math.Ceil(c))
}

// isRoundedAverage reports whether winner ∈ {⌊c⌋, ⌈c⌉}.
func isRoundedAverage(winner int, c float64) bool {
	lo, hi := roundedPair(c)
	return winner == lo || winner == hi
}

// Package exp implements the repository's experiment suite E1–E20: one
// experiment per theorem, lemma, closed-form probability, or worked
// example in the paper (plus the E14 distributed-deployment extension
// and the E20 fast-engine benchmark).
// DESIGN.md §3 is the index. Each experiment produces text tables (and
// the scaling ones ASCII figures), together with named pass/fail checks
// asserted by the integration tests, so "paper claim vs. measured"
// lives in code rather than prose.
//
// Every experiment accepts Params and respects Quick mode, which
// scales sizes down to seconds for use in `go test` and `go test
// -bench`; the full mode behind `divbench -full` uses larger n and
// trial counts.
package exp

import (
	"fmt"
	"math"

	"div/internal/core"
	"div/internal/obs"
	"div/internal/sim"
)

// Params configures an experiment run.
type Params struct {
	// Quick selects reduced sizes/trials (seconds instead of minutes).
	Quick bool
	// Seed is the master seed; every trial derives from it.
	Seed uint64
	// Parallelism caps worker goroutines; 0 means GOMAXPROCS.
	Parallelism int
	// Engine selects the core stepping engine ("naive", "fast",
	// "auto"); empty means "auto". Experiments pass it through to every
	// core.Run so `divbench -engine` applies suite-wide.
	Engine string
	// Probe, when non-nil, is invoked once per core.Run with that run's
	// trial index and derived seed, and the returned probe is attached
	// to the run's Config (nil keeps the engine's zero-cost fast path).
	// Experiments pass it through every Config so `divbench -trace`
	// and `-metrics` see the whole suite.
	Probe obs.ProbeMaker
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 0x5eed
	}
	if p.Engine == "" {
		p.Engine = "auto"
	}
	return p
}

// coreEngine resolves the Engine string, defaulting to EngineAuto on
// empty or unparseable values (experiments validate the flag at the
// CLI boundary; here a bad value must not abort a suite run).
func (p Params) coreEngine() core.Engine {
	e, err := core.ParseEngine(p.Engine)
	if err != nil {
		return core.EngineAuto
	}
	return e
}

// probeFor builds the probe for one core run; nil when no maker is
// installed, preserving the engine's nil-probe fast path.
func (p Params) probeFor(trial int, seed uint64) obs.Probe {
	if p.Probe == nil {
		return nil
	}
	return p.Probe(trial, seed)
}

// pick returns quick in Quick mode and full otherwise.
func (p Params) pick(quick, full int) int {
	if p.Quick {
		return quick
	}
	return full
}

// Check is a named verdict comparing a paper claim against measurement.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Name   string
	Tables []*sim.Table
	// Figures holds pre-rendered ASCII plots.
	Figures []string
	Checks  []Check
	Notes   []string
}

// Failed returns the failing checks.
func (r *Report) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

func (r *Report) check(pass bool, name, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

func (r *Report) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Func runs one experiment.
type Func func(Params) (*Report, error)

// Def pairs an experiment with its metadata.
type Def struct {
	ID   string
	Name string
	Run  Func
}

// All lists every experiment in index order.
var All = []Def{
	{"E1", "winner distribution (Theorem 2)", E1WinnerDistribution},
	{"E2", "reduction time scaling (Theorem 1, eq. 4)", E2ReductionTime},
	{"E3", "weight martingales (Lemma 3)", E3Martingale},
	{"E4", "two-opinion pull voting (eq. 3)", E4TwoOpinionPull},
	{"E5", "Azuma concentration (eq. 5)", E5Concentration},
	{"E6", "stage evolution (intro example)", E6StageEvolution},
	{"E7", "mode/median/mean separation", E7ModeMedianMean},
	{"E8", "DIV vs load-balancing averaging [5]", E8LoadBalancing},
	{"E9", "path counterexample ([13] Thm 3)", E9PathCounterexample},
	{"E10", "edge vs vertex process (Remark 1)", E10EdgeVsVertex},
	{"E11", "second eigenvalues of example families", E11Eigenvalues},
	{"E12", "extreme-opinion elimination (Lemmas 10-14)", E12ExtremeElimination},
	{"E13", "accuracy across the λk threshold", E13LambdaKThreshold},
	{"E14", "distributed message-passing deployment", E14Distributed},
	{"E15", "step-size ablation (DIV → pull)", E15StepSizeAblation},
	{"E16", "synchronous rounds (extension)", E16Synchronous},
	{"E17", "push vs pull: which average survives", E17PushPull},
	{"E18", "zealots / stubborn vertices (extension)", E18Zealots},
	{"E19", "pull voting ↔ coalescing walks duality", E19CoalescingDuality},
	{"E20", "fast engine speedup (discordance tracking)", E20FastEngine},
}

// ByID returns the experiment definition with the given ID.
func ByID(id string) (Def, error) {
	for _, d := range All {
		if d.ID == id {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// roundedPair returns ⌊c⌋ and ⌈c⌉.
func roundedPair(c float64) (int, int) {
	return int(math.Floor(c)), int(math.Ceil(c))
}

// isRoundedAverage reports whether winner ∈ {⌊c⌋, ⌈c⌉}.
func isRoundedAverage(winner int, c float64) bool {
	lo, hi := roundedPair(c)
	return winner == lo || winner == hi
}

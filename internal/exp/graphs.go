package exp

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"div/internal/graph"
	"div/internal/spectral"
)

// Graphs is an experiment-scoped view of the process-wide graph
// artifact cache (graph.SharedCache): every graph it hands out is
// pinned — guaranteed resident, with its ArcIndex and memoized λ —
// until Release, which experiments defer so artifacts outlive exactly
// one run and become evictable afterwards. Two experiments asking for
// the same (family, size, params, seed) share one *Graph instance, so
// the O(n+m) CSR arrays, the ArcIndex, and any spectral estimates are
// built once per suite instead of once per grid point.
//
// Random families take an explicit build seed (derive it from
// Params.Seed) rather than a live *rand.Rand: the seed is part of the
// cache key, which is what makes "the same random graph" a shareable,
// reproducible artifact.
type Graphs struct {
	mu  sync.Mutex
	hs  []*graph.Handle
	byG map[*graph.Graph]*graph.Handle
}

func newGraphs() *Graphs {
	return &Graphs{byG: make(map[*graph.Graph]*graph.Handle)}
}

// Release unpins every graph handed out. Idempotent per handle.
func (gs *Graphs) Release() {
	gs.mu.Lock()
	hs := gs.hs
	gs.hs = nil
	gs.mu.Unlock()
	for _, h := range hs {
		h.Release()
	}
}

// get resolves key through the shared cache and pins the result for
// the lifetime of this Graphs.
func (gs *Graphs) get(key graph.Key, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	h, err := graph.SharedCache().Get(key, build)
	if err != nil {
		return nil, err
	}
	gs.mu.Lock()
	gs.hs = append(gs.hs, h)
	if _, ok := gs.byG[h.Graph()]; !ok {
		gs.byG[h.Graph()] = h
	}
	gs.mu.Unlock()
	return h.Graph(), nil
}

// mustGet is get for deterministic builders that cannot fail.
func (gs *Graphs) mustGet(key graph.Key, build func() *graph.Graph) *graph.Graph {
	g, err := gs.get(key, func() (*graph.Graph, error) { return build(), nil })
	if err != nil {
		panic(err) // unreachable: build never errors
	}
	return g
}

// Complete returns the cached K_n.
func (gs *Graphs) Complete(n int) *graph.Graph {
	return gs.mustGet(graph.Key{Family: "complete", N: n}, func() *graph.Graph { return graph.Complete(n) })
}

// Star returns the cached star S_n.
func (gs *Graphs) Star(n int) *graph.Graph {
	return gs.mustGet(graph.Key{Family: "star", N: n}, func() *graph.Graph { return graph.Star(n) })
}

// Path returns the cached path P_n.
func (gs *Graphs) Path(n int) *graph.Graph {
	return gs.mustGet(graph.Key{Family: "path", N: n}, func() *graph.Graph { return graph.Path(n) })
}

// Cycle returns the cached cycle C_n.
func (gs *Graphs) Cycle(n int) *graph.Graph {
	return gs.mustGet(graph.Key{Family: "cycle", N: n}, func() *graph.Graph { return graph.Cycle(n) })
}

// buildOpts is the assembler configuration for cache builds: stripes
// run on the GOMAXPROCS-wide shared pool (the ready-channel dedup pins
// a cold build to one caller, but the build itself saturates the
// machine). Worker count never affects the built graph, so the cache
// key needs no build-parallelism component.
func buildOpts() graph.BuildOpts {
	return graph.BuildOpts{Workers: runtime.GOMAXPROCS(0)}
}

// RandomRegular returns the cached uniform random d-regular graph
// built from seed.
func (gs *Graphs) RandomRegular(n, d int, seed uint64) (*graph.Graph, error) {
	return gs.get(graph.Key{Family: "rr", N: n, A: d, Seed: seed}, func() (*graph.Graph, error) {
		return graph.RandomRegularSeeded(n, d, seed, buildOpts())
	})
}

// ConnectedGnp returns the cached connected Erdős–Rényi G(n,p) built
// from seed.
func (gs *Graphs) ConnectedGnp(n int, p float64, seed uint64) (*graph.Graph, error) {
	return gs.get(graph.Key{Family: "gnp", N: n, F: math.Float64bits(p), Seed: seed}, func() (*graph.Graph, error) {
		return graph.ConnectedGnpSeeded(n, p, seed, 200, buildOpts())
	})
}

// BarabasiAlbert returns the cached preferential-attachment graph
// (m edges per arrival) built from seed.
func (gs *Graphs) BarabasiAlbert(n, m int, seed uint64) (*graph.Graph, error) {
	return gs.get(graph.Key{Family: "ba", N: n, A: m, Seed: seed}, func() (*graph.Graph, error) {
		return graph.BarabasiAlbertSeeded(n, m, seed, buildOpts())
	})
}

// WattsStrogatz returns the cached small-world graph (degree d,
// rewiring probability beta) built from seed.
func (gs *Graphs) WattsStrogatz(n, d int, beta float64, seed uint64) (*graph.Graph, error) {
	return gs.get(graph.Key{Family: "ws", N: n, A: d, F: math.Float64bits(beta), Seed: seed}, func() (*graph.Graph, error) {
		return graph.WattsStrogatzSeeded(n, d, beta, seed, buildOpts())
	})
}

// Torus returns the cached w×h torus.
func (gs *Graphs) Torus(w, h int) *graph.Graph {
	return gs.mustGet(graph.Key{Family: "torus", N: w * h, A: w, B: h}, func() *graph.Graph { return graph.Torus(w, h) })
}

// Lambda returns spectral.Lambda(g, o), memoized on the cache entry
// when g came from this Graphs (power iteration with fixed Options is
// deterministic, so the memo is exact, not approximate). Graphs not
// handed out by the cache fall through to a direct computation.
func (gs *Graphs) Lambda(g *graph.Graph, o spectral.Options) (float64, error) {
	gs.mu.Lock()
	h, ok := gs.byG[g]
	gs.mu.Unlock()
	if !ok {
		return spectral.Lambda(g, o)
	}
	var buildErr error
	v := h.Float(lambdaMemoKey(o), func(g *graph.Graph) float64 {
		l, err := spectral.Lambda(g, o)
		if err != nil {
			buildErr = err
			return math.NaN()
		}
		return l
	})
	if buildErr != nil {
		return 0, buildErr
	}
	if math.IsNaN(v) {
		// A concurrent builder hit the error and memoized NaN; recompute
		// directly to surface it.
		return spectral.Lambda(g, o)
	}
	return v, nil
}

func lambdaMemoKey(o spectral.Options) string {
	return fmt.Sprintf("lambda:%d:%g:%d", o.MaxIters, o.Tol, o.Seed)
}

package exp

import (
	"runtime"
	"strings"
	"testing"
)

// suiteText renders the full quick suite (every non-timing experiment)
// as one canonical text document under the given parameters.
func suiteText(t *testing.T, p Params) string {
	t.Helper()
	var defs []Def
	for _, d := range All {
		if !d.Timing {
			defs = append(defs, d)
		}
	}
	reports, errs := RunAll(p, defs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", defs[i].ID, err)
		}
	}
	var b strings.Builder
	for _, rep := range reports {
		if err := rep.WriteText(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestSuiteDeterministicAcrossScheduling is the determinism regression
// gate for the work-stealing sweep scheduler: at a fixed seed the full
// quick-suite report must be byte-identical whether sweeps run on the
// pre-scheduler serial path, on a single-worker pool, or on a wide
// pool with trials interleaving across experiments and points. Trial
// seeds depend only on (point seed, trial index) and every result is
// written to its own index-addressed slot, so scheduling order must
// not be observable.
func TestSuiteDeterministicAcrossScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite three times")
	}
	base := Params{Quick: true, Seed: 7}

	serialP := base
	serialP.Serial = true
	serial := suiteText(t, serialP)

	oneP := base
	oneP.Parallelism = 1
	one := suiteText(t, oneP)

	wideP := base
	wideP.Parallelism = runtime.GOMAXPROCS(0)
	if wideP.Parallelism < 4 {
		wideP.Parallelism = 4
	}
	wide := suiteText(t, wideP)

	if one != serial {
		t.Errorf("parallelism=1 report differs from serial report:\n%s", firstDiff(serial, one))
	}
	if wide != serial {
		t.Errorf("parallelism=%d report differs from serial report:\n%s", wideP.Parallelism, firstDiff(serial, wide))
	}
}

// TestSuiteDeterministicAcrossBlockSizes is the determinism gate for
// the blocked stepping kernel: at a fixed seed the full quick-suite
// report must be byte-identical whether the blocked sweeps run one
// trial per block on the work-stealing pool or eight trials per block
// interleaved in SoA slabs on the serial (pre-scheduler) path. Each
// trial's randomness is a counter-based stream keyed only by (point
// seed, trial index), so neither block geometry nor span scheduling
// may be observable in the results. This single comparison varies both
// axes at once; combined with TestSuiteDeterministicAcrossScheduling
// (scheduled vs serial at the default block size) it pins all four
// configurations to one document, and two suite runs instead of three
// keeps the race-detector pass inside its time budget.
func TestSuiteDeterministicAcrossBlockSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite twice")
	}
	base := Params{Quick: true, Seed: 7}

	b1 := base
	b1.Block = 1
	one := suiteText(t, b1)

	bs := base
	bs.Block = 8
	bs.Serial = true
	serial := suiteText(t, bs)

	if serial != one {
		t.Errorf("serial block=8 report differs from scheduled block=1 report:\n%s", firstDiff(one, serial))
	}
}

// TestSuiteByteIdentityWidthBlockMatrix extends the two gates above to
// the full width × block grid: pool widths {1, 2, 4} crossed with
// block sizes {1, 8} must all reproduce the serial block=8 reference
// byte for byte, so suite reports are proven identical at any
// parallelism, not just width 1. The (width 1, block 1) corner is
// already pinned by TestSuiteDeterministicAcrossBlockSizes and is
// skipped here. Under -short the matrix shrinks to width 2 at both
// block sizes — the CI race matrix runs that trimmed form at
// GOMAXPROCS 2 and 4, which varies the real scheduling interleave
// underneath the same two-pass comparison.
func TestSuiteByteIdentityWidthBlockMatrix(t *testing.T) {
	base := Params{Quick: true, Seed: 7}

	ref := base
	ref.Serial = true
	ref.Block = 8
	want := suiteText(t, ref)

	type cell struct{ width, block int }
	cells := []cell{{1, 8}, {2, 1}, {2, 8}, {4, 1}, {4, 8}}
	if testing.Short() {
		cells = []cell{{2, 1}, {2, 8}}
	}
	for _, c := range cells {
		p := base
		p.Parallelism = c.width
		p.Block = c.block
		got := suiteText(t, p)
		if got != want {
			t.Errorf("width=%d block=%d report differs from serial block=8 reference:\n%s",
				c.width, c.block, firstDiff(want, got))
		}
	}
}

// firstDiff locates the first differing line, for a readable failure.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + itoa(i+1) + ":\n  a: " + al[i] + "\n  b: " + bl[i]
		}
	}
	return "documents differ in length: " + itoa(len(al)) + " vs " + itoa(len(bl)) + " lines"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
	"div/internal/sched"
)

// This file is the machine-readable perf harness behind
// `divbench -bench-json` (and `make bench-engine`): it measures the
// trial pipeline — per-step cost, allocations per step, and trials per
// second with and without per-worker Scratch reuse — for every
// engine × process × graph family, plus the E2 reference point the
// acceptance criteria track across PRs. Probes are deliberately nil
// throughout: the numbers characterize the zero-instrumentation hot
// path.

// The E2 reference point (K_n, k=8, extremes profile, vertex process,
// auto engine, run to two adjacent opinions) measured immediately
// before the blocked SoA stepping kernel landed, on the repository's
// CI hardware — i.e. the sequential zero-allocation pipeline's
// throughput. Recorded here so BENCH_engine.json always carries the
// pre-change baseline the speedup criterion is judged against.
const (
	e2BaselineN            = 3200
	e2BaselineTrialsPerSec = 425.9
	e2BaselineNsPerStep    = 34.4
)

// e2BlockSizes is the block-size sweep measured on the E2 point.
var e2BlockSizes = []int{1, 4, 8, 16}

// BenchRow is one engine × process × graph-family measurement.
type BenchRow struct {
	Graph                string  `json:"graph"`
	Process              string  `json:"process"`
	Engine               string  `json:"engine"`
	Trials               int     `json:"trials"`
	Steps                int64   `json:"steps"`
	NsPerStepReused      float64 `json:"ns_per_step_reused"`
	TrialsPerSecFresh    float64 `json:"trials_per_sec_fresh"`
	TrialsPerSecReused   float64 `json:"trials_per_sec_reused"`
	AllocsPerStep        float64 `json:"allocs_per_step"`
	AllocsPerTrialReused float64 `json:"allocs_per_trial_reused"`
}

// BenchBaseline is the recorded pre-change reference measurement.
type BenchBaseline struct {
	N            int     `json:"n"`
	TrialsPerSec float64 `json:"trials_per_sec"`
	NsPerStep    float64 `json:"ns_per_step"`
	Note         string  `json:"note"`
}

// BenchE2 is the current E2 reference-point measurement.
type BenchE2 struct {
	N                 int     `json:"n"`
	K                 int     `json:"k"`
	Trials            int     `json:"trials"`
	Steps             int64   `json:"steps"`
	TrialsPerSecFresh float64 `json:"trials_per_sec_fresh"`
	// TrialsPerSecReused is the sequential pipeline's throughput with
	// per-worker Scratch reuse — the pre-blocked-kernel configuration,
	// kept for continuity with earlier reports.
	TrialsPerSecReused float64 `json:"trials_per_sec_reused"`
	NsPerStepReused    float64 `json:"ns_per_step_reused"`
	// BlockTrialsPerSec maps block size B to the blocked kernel's
	// throughput on the same point (scratch arena reused, nil probes).
	BlockTrialsPerSec map[int]float64 `json:"block_trials_per_sec"`
	// BestBlock and BestBlockTrialsPerSec identify the headline number:
	// the fastest block size of the sweep. SpeedupVsBaseline compares
	// it against the recorded pre-blocked-kernel baseline (valid when N
	// matches the baseline's N).
	BestBlock             int     `json:"best_block"`
	BestBlockTrialsPerSec float64 `json:"best_block_trials_per_sec"`
	BestBlockNsPerStep    float64 `json:"best_block_ns_per_step"`
	SpeedupVsBaseline     float64 `json:"speedup_vs_baseline"`
}

// BenchSuite compares one full quick-suite pass run serially (the
// pre-scheduler path: experiments in order, every sweep through
// sim.TrialsWorker) against the same pass on the work-stealing
// scheduler (experiments concurrent, trials interleaved across
// experiments and points). Timing-sensitive experiments (Def.Timing)
// are excluded from both passes. The two passes produce byte-identical
// reports; only the wall clock differs.
type BenchSuite struct {
	Experiments      []string `json:"experiments"`
	GOMAXPROCS       int      `json:"gomaxprocs"`
	PoolWidth        int      `json:"pool_width"`
	SerialSeconds    float64  `json:"serial_seconds"`
	ScheduledSeconds float64  `json:"scheduled_seconds"`
	// Speedup is serial/scheduled wall clock; ≈1 on a single-core
	// runner, and the acceptance target (≥1.3×) applies to multi-core
	// hardware.
	Speedup float64 `json:"speedup"`
	// PoolUtilization is busy-worker-nanos / (width · scheduled wall),
	// in [0,1], for the scheduled pass.
	PoolUtilization float64 `json:"pool_utilization"`
	CacheHits       int64   `json:"graph_cache_hits"`
	CacheMisses     int64   `json:"graph_cache_misses"`
}

// BenchReport is the document written to BENCH_engine.json.
type BenchReport struct {
	Quick bool   `json:"quick"`
	Note  string `json:"note"`
	// Provenance attributes the numbers to the code, configuration, and
	// machine that produced them — without it a checked-in report is
	// uninterpretable once the hardware or commit changes.
	Provenance *obs.Provenance `json:"provenance,omitempty"`
	Baseline   BenchBaseline   `json:"baseline_pre_pipeline"`
	E2         BenchE2         `json:"e2_point"`
	Suite      BenchSuite      `json:"suite"`
	// Scaling is the multicore section (scaling.go), present when the
	// run requested a width sweep (`divbench -widths`).
	Scaling *BenchScaling `json:"scaling,omitempty"`
	// BigN is the million-vertex section (bign.go), present when the
	// run requested it (`divbench -bench-bign` / `make bench-bign`).
	BigN *BenchBigN `json:"bign,omitempty"`
	// Build is the graph-construction section (build.go), present when
	// the run requested it (`divbench -bench-build` / `make bench-build`).
	Build *BenchBuild `json:"build,omitempty"`
	Rows  []BenchRow  `json:"rows"`
}

// benchFamily is one graph under test.
type benchFamily struct {
	name string
	g    *graph.Graph
}

// benchFamilies builds the benchmark graphs: a complete graph (dense,
// implicit adjacency), a random regular graph (the expander workload),
// and a star (the degree-bucketed sampler's worst case for the old
// rejection loop).
func benchFamilies(p Params) ([]benchFamily, error) {
	r := rng.New(rng.DeriveSeed(p.Seed, 0xbe7c))
	nK := p.pick(256, 2000)
	nRR := p.pick(512, 10000)
	nStar := p.pick(512, 10000)
	rr, err := graph.RandomRegular(nRR, 8, r)
	if err != nil {
		return nil, err
	}
	return []benchFamily{
		{fmt.Sprintf("complete(n=%d)", nK), graph.Complete(nK)},
		{fmt.Sprintf("rr(n=%d,d=8)", nRR), rr},
		{fmt.Sprintf("star(n=%d)", nStar), graph.Star(nStar)},
	}, nil
}

// benchTrial runs one consensus-bound trial of the standard benchmark
// workload (extremes profile, k=4, run to two adjacent opinions) and
// returns the realized step count. With a non-nil scratch the trial
// reuses it; the trajectory is byte-identical either way.
func benchTrial(g *graph.Graph, proc core.Process, eng core.Engine, k int, seed uint64, sc *core.Scratch) (int64, error) {
	var init []int
	if sc != nil {
		init = core.ExtremesOpinionsInto(sc.Initial(), k, sc.Rand(seed))
	} else {
		init = core.ExtremesOpinions(g.N(), k, rng.New(seed))
	}
	res, err := core.Run(core.Config{
		Engine:  eng,
		Graph:   g,
		Initial: init,
		Process: proc,
		Stop:    core.UntilTwoAdjacent,
		Seed:    rng.SplitMix64(seed),
		Scratch: sc,
	})
	if err != nil {
		return 0, err
	}
	return res.Steps, nil
}

// benchSteadyAllocs measures allocations per steady-state step: two
// fixed-step runs on a reused scratch whose lengths differ by
// span steps; the difference isolates the per-step allocation rate
// from the per-trial constant. The target (asserted by the
// allocation-regression tests) is exactly 0.
func benchSteadyAllocs(g *graph.Graph, proc core.Process, eng core.Engine, seed uint64, sc *core.Scratch, short, long int64) (float64, error) {
	var trialErr error
	runFor := func(maxSteps int64) float64 {
		return testing.AllocsPerRun(2, func() {
			init := core.UniformOpinionsInto(sc.Initial(), 5, sc.Rand(seed))
			_, err := core.Run(core.Config{
				Engine:   eng,
				Graph:    g,
				Initial:  init,
				Process:  proc,
				Stop:     core.UntilMaxSteps,
				MaxSteps: maxSteps,
				Seed:     rng.SplitMix64(seed),
				Scratch:  sc,
			})
			if err != nil && trialErr == nil {
				trialErr = err
			}
		})
	}
	aShort := runFor(short)
	aLong := runFor(long)
	if trialErr != nil {
		return 0, trialErr
	}
	return (aLong - aShort) / float64(long-short), nil
}

// BenchEngine measures the whole matrix and returns the report.
func BenchEngine(p Params) (*BenchReport, error) {
	p = p.withDefaults()
	prov := obs.CollectProvenance("divbench", p.Seed, p.Engine)
	rep := &BenchReport{
		Quick:      p.Quick,
		Provenance: &prov,
		Note:       "generated by divbench -bench-json; trials_per_sec_* compare per-trial construction (fresh) vs per-worker Scratch reuse (reused); nil probes throughout",
		Baseline: BenchBaseline{
			N:            e2BaselineN,
			TrialsPerSec: e2BaselineTrialsPerSec,
			NsPerStep:    e2BaselineNsPerStep,
			Note:         "E2 point measured at the commit before the zero-allocation pipeline",
		},
	}
	fams, err := benchFamilies(p)
	if err != nil {
		return nil, err
	}
	engines := []core.Engine{core.EngineNaive, core.EngineFast, core.EngineAuto}
	procs := []core.Process{core.VertexProcess, core.EdgeProcess}
	trials := p.pick(6, 10)
	k := 4
	shortSteps, longSteps := int64(p.pick(2048, 8192)), int64(p.pick(16384, 65536))

	for _, fam := range fams {
		for _, proc := range procs {
			for _, eng := range engines {
				sc := core.NewScratch(fam.g)
				seedBase := rng.DeriveSeed(p.Seed, 0xbe00)
				// Warm the scratch (and the shared ArcIndex) outside the clock.
				if _, err := benchTrial(fam.g, proc, eng, k, rng.DeriveSeed(seedBase, 0), sc); err != nil {
					return nil, fmt.Errorf("bench %s/%v/%v: %w", fam.name, proc, eng, err)
				}
				var steps int64
				start := time.Now()
				for t := 0; t < trials; t++ {
					st, err := benchTrial(fam.g, proc, eng, k, rng.DeriveSeed(seedBase, uint64(t)), sc)
					if err != nil {
						return nil, fmt.Errorf("bench %s/%v/%v: %w", fam.name, proc, eng, err)
					}
					steps += st
				}
				reused := time.Since(start)
				start = time.Now()
				for t := 0; t < trials; t++ {
					if _, err := benchTrial(fam.g, proc, eng, k, rng.DeriveSeed(seedBase, uint64(t)), nil); err != nil {
						return nil, fmt.Errorf("bench %s/%v/%v: %w", fam.name, proc, eng, err)
					}
				}
				fresh := time.Since(start)
				allocsPerStep, err := benchSteadyAllocs(fam.g, proc, eng, rng.DeriveSeed(seedBase, 0xa110c), sc, shortSteps, longSteps)
				if err != nil {
					return nil, fmt.Errorf("bench allocs %s/%v/%v: %w", fam.name, proc, eng, err)
				}
				allocsPerTrial := testing.AllocsPerRun(3, func() {
					_, _ = benchTrial(fam.g, proc, eng, k, rng.DeriveSeed(seedBase, 1), sc)
				})
				rep.Rows = append(rep.Rows, BenchRow{
					Graph:                fam.name,
					Process:              proc.String(),
					Engine:               eng.String(),
					Trials:               trials,
					Steps:                steps,
					NsPerStepReused:      float64(reused.Nanoseconds()) / float64(steps),
					TrialsPerSecFresh:    float64(trials) / fresh.Seconds(),
					TrialsPerSecReused:   float64(trials) / reused.Seconds(),
					AllocsPerStep:        allocsPerStep,
					AllocsPerTrialReused: allocsPerTrial,
				})
			}
		}
	}

	// The E2 reference point: the sweep endpoint of E2a, exactly as the
	// experiment runs it (same profile, stop condition, and seeds).
	e2n := p.pick(800, e2BaselineN)
	e2trials := p.pick(10, 30)
	e2k := 8
	g := graph.Complete(e2n)
	sc := core.NewScratch(g)
	seedBase := rng.DeriveSeed(p.Seed, 0xe2be)
	if _, err := benchTrial(g, core.VertexProcess, core.EngineAuto, e2k, rng.DeriveSeed(seedBase, 0), sc); err != nil {
		return nil, err
	}
	var steps int64
	start := time.Now()
	for t := 0; t < e2trials; t++ {
		st, err := benchTrial(g, core.VertexProcess, core.EngineAuto, e2k, rng.DeriveSeed(seedBase, uint64(t)), sc)
		if err != nil {
			return nil, err
		}
		steps += st
	}
	reused := time.Since(start)
	start = time.Now()
	for t := 0; t < e2trials; t++ {
		if _, err := benchTrial(g, core.VertexProcess, core.EngineAuto, e2k, rng.DeriveSeed(seedBase, uint64(t)), nil); err != nil {
			return nil, err
		}
	}
	fresh := time.Since(start)
	rep.E2 = BenchE2{
		N:                  e2n,
		K:                  e2k,
		Trials:             e2trials,
		Steps:              steps,
		TrialsPerSecFresh:  float64(e2trials) / fresh.Seconds(),
		TrialsPerSecReused: float64(e2trials) / reused.Seconds(),
		NsPerStepReused:    float64(reused.Nanoseconds()) / float64(steps),
		BlockTrialsPerSec:  map[int]float64{},
	}

	// Block-size sweep on the same point: the blocked kernel with a
	// reused arena, one warm-up block outside the clock per size. The
	// Results are byte-identical across sizes; only wall clock moves.
	e2blockCfg := func(sc *core.Scratch, b int) core.BlockConfig {
		return core.BlockConfig{
			Engine:  core.EngineAuto,
			Graph:   g,
			Process: core.VertexProcess,
			Stop:    core.UntilTwoAdjacent,
			Seed:    seedBase,
			Init: func(trial int, dst []int, r *rand.Rand) error {
				core.ExtremesOpinionsInto(dst, e2k, r)
				return nil
			},
			Scratch: sc,
			Block:   b,
		}
	}
	// All sizes warm on, then time, the same trial indices, so every
	// size measures an identical workload.
	warmN := e2BlockSizes[len(e2BlockSizes)-1]
	warm := make([]core.Result, warmN)
	blockOut := make([]core.Result, e2trials)
	for _, b := range e2BlockSizes {
		cfg := e2blockCfg(sc, b)
		if err := core.RunBlock(cfg, 0, warmN, warm); err != nil {
			return nil, fmt.Errorf("bench E2 block=%d warmup: %w", b, err)
		}
		start := time.Now()
		if err := core.RunBlock(cfg, warmN, warmN+e2trials, blockOut); err != nil {
			return nil, fmt.Errorf("bench E2 block=%d: %w", b, err)
		}
		el := time.Since(start)
		var blockSteps int64
		for _, r := range blockOut {
			blockSteps += r.Steps
		}
		tps := float64(e2trials) / el.Seconds()
		rep.E2.BlockTrialsPerSec[b] = tps
		if tps > rep.E2.BestBlockTrialsPerSec {
			rep.E2.BestBlock = b
			rep.E2.BestBlockTrialsPerSec = tps
			rep.E2.BestBlockNsPerStep = float64(el.Nanoseconds()) / float64(blockSteps)
		}
	}
	if e2n == e2BaselineN {
		rep.E2.SpeedupVsBaseline = rep.E2.BestBlockTrialsPerSec / e2BaselineTrialsPerSec
	}

	suite, err := benchSuite(p)
	if err != nil {
		return nil, err
	}
	rep.Suite = *suite
	prov = prov.WithMemStats()
	return rep, nil
}

// benchSuite runs the quick suite twice — serial, then scheduled — and
// records both wall clocks. Quick sizes regardless of p.Quick: the
// point is the scheduling comparison, not the workload size.
func benchSuite(p Params) (*BenchSuite, error) {
	var defs []Def
	s := &BenchSuite{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, d := range All {
		if d.Timing {
			continue
		}
		defs = append(defs, d)
		s.Experiments = append(s.Experiments, d.ID)
	}
	sp := Params{Quick: true, Seed: p.Seed, Parallelism: p.Parallelism, Engine: p.Engine}
	run := func(serial bool) (time.Duration, error) {
		rp := sp
		rp.Serial = serial
		start := time.Now()
		_, errs := RunAll(rp, defs)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	serialDur, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("bench suite (serial): %w", err)
	}
	pool := sched.Shared(sp.Parallelism)
	busy0 := pool.BusyNanos()
	schedDur, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("bench suite (scheduled): %w", err)
	}
	s.PoolWidth = pool.Width()
	s.SerialSeconds = serialDur.Seconds()
	s.ScheduledSeconds = schedDur.Seconds()
	if schedDur > 0 {
		s.Speedup = serialDur.Seconds() / schedDur.Seconds()
		s.PoolUtilization = float64(pool.BusyNanos()-busy0) / (float64(pool.Width()) * float64(schedDur.Nanoseconds()))
	}
	s.CacheHits, s.CacheMisses, _, _ = graph.SharedCache().Stats()
	return s, nil
}

// WriteJSON renders the report as one indented JSON document.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

package exp

import (
	"fmt"

	"div/internal/baseline"
	"div/internal/core"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E18Zealots is the fault-tolerance extension: DIV with stubborn
// vertices that never update (crashed sensors, zealots). Two regimes:
//
//   - Agreeing zealots: with every zealot at z, all-z is the unique
//     absorbing state, so however few zealots there are the network
//     eventually converges to z — the martingale prediction is
//     overridden by absorption. Time falls as the zealot count grows.
//   - Disagreeing zealots: no absorbing state exists; the network
//     hovers in a quasi-stationary mixture spanning the zealot values.
//
// Both regimes run as overlapping sweep futures.
func E18Zealots(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E18", Name: "zealots / stubborn vertices (extension)"}
	gs := newGraphs()
	defer gs.Release()

	n := p.pick(100, 200)
	k := 9
	trials := p.pick(40, 150)
	g := gs.Complete(n)

	// --- Regime 1: agreeing zealots at the top opinion. ---
	counts := []int{1, 4, 16}
	type out struct {
		zwin  int
		steps float64
	}
	zPoints := make([]Point, len(counts))
	for ci := range counts {
		zPoints[ci] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0x1800+ci)), Trials: trials}
	}
	futZ := StartSweep(p, "E18a", zPoints, func(ci, trial int, seed uint64, sc *core.Scratch) (out, error) {
		zc := counts[ci]
		r := sc.Rand(seed)
		init := core.UniformOpinions(n, k, r)
		zealots := make([]int, zc)
		perm := make([]int, n)
		rng.Perm(r, perm)
		copy(zealots, perm[:zc])
		for _, z := range zealots {
			init[z] = k
		}
		rule, err := baseline.NewStubborn(core.DIV{}, n, zealots)
		if err != nil {
			return out{}, err
		}
		res, err := core.Run(core.Config{
			Engine:   p.coreEngine(),
			Probe:    p.probeFor(trial, rng.DeriveSeed(p.Seed, uint64(0x1860+trial))),
			Graph:    g,
			Initial:  init,
			Process:  core.VertexProcess,
			Rule:     rule,
			MaxSteps: 2000 * int64(n) * int64(n),
			Seed:     rng.SplitMix64(seed),
			Scratch:  sc,
		})
		if err != nil {
			return out{}, err
		}
		if !res.Consensus {
			return out{}, fmt.Errorf("zealots=%d: no consensus after %d steps", zc, res.Steps)
		}
		o := out{steps: float64(res.Steps)}
		if res.Winner == k {
			o.zwin = 1
		}
		return o, nil
	})

	// --- Regime 2: disagreeing zealots pin the network open. ---
	// The config seed has always been derived straight from p.Seed and
	// the trial index (not from a per-point stream), so the sweep's
	// derived seed is ignored in favour of the historical one.
	zLow, zHigh := 0, 1 // vertex ids
	init := core.UniformOpinions(n, k, rng.New(rng.DeriveSeed(p.Seed, 0x1850)))
	init[zLow] = 1
	init[zHigh] = k
	rule, err := baseline.NewStubborn(core.DIV{}, n, []int{zLow, zHigh})
	if err != nil {
		return nil, err
	}
	budget := int64(50) * int64(n) * int64(n)
	openTrials := p.pick(20, 60)
	type openOut struct {
		noCons     int
		finalRange float64
	}
	futOpen := StartSweep(p, "E18b",
		[]Point{{G: g, Seed: rng.DeriveSeed(p.Seed, 0x1850), Trials: openTrials}},
		func(_, trial int, _ uint64, sc *core.Scratch) (openOut, error) {
			trialSeed := rng.DeriveSeed(p.Seed, uint64(0x1860+trial))
			res, err := core.Run(core.Config{
				Engine:   p.coreEngine(),
				Probe:    p.probeFor(trial, trialSeed),
				Graph:    g,
				Initial:  init,
				Process:  core.VertexProcess,
				Rule:     rule,
				Stop:     core.UntilMaxSteps,
				MaxSteps: budget,
				Seed:     trialSeed,
				Scratch:  sc,
			})
			if err != nil {
				return openOut{}, err
			}
			o := openOut{finalRange: float64(res.FinalMax - res.FinalMin)}
			if !res.Consensus {
				o.noCons = 1
			}
			return o, nil
		})

	zRes, err := futZ.Wait()
	if err != nil {
		return nil, err
	}
	tbl := sim.NewTable(
		fmt.Sprintf("E18a: zealots pinned at %d on %s, others uniform in 1..%d", k, g.Name(), k),
		"zealots", "trials", "P[consensus = zealot value]", "mean steps", "mean steps / n²",
	)
	meanSteps := make([]float64, len(counts))
	allZealot := true
	for ci, zc := range counts {
		zwins := 0
		var steps []float64
		for _, o := range zRes[ci] {
			zwins += o.zwin
			steps = append(steps, o.steps)
		}
		meanSteps[ci] = stats.Mean(steps)
		frac := float64(zwins) / float64(trials)
		if frac < 1 {
			allZealot = false
		}
		nf := float64(n)
		tbl.AddRow(zc, trials, frac, meanSteps[ci], meanSteps[ci]/(nf*nf))
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.check(allZealot,
		"agreeing zealots always win",
		"consensus equalled the zealot value in every trial at every zealot count — all-z is the unique absorbing state")
	rep.check(meanSteps[len(counts)-1] < meanSteps[0],
		"more zealots, faster capture",
		"mean steps fell from %.0f (1 zealot) to %.0f (%d zealots)", meanSteps[0], meanSteps[len(counts)-1], counts[len(counts)-1])

	openRes, err := futOpen.Wait()
	if err != nil {
		return nil, err
	}
	noConsensus := 0
	var finalRanges []float64
	for _, o := range openRes[0] {
		noConsensus += o.noCons
		finalRanges = append(finalRanges, o.finalRange)
	}
	meanRange := stats.Mean(finalRanges)
	tbl2 := sim.NewTable(
		fmt.Sprintf("E18b: disagreeing zealots (1 and %d) on %s, %d steps budget", k, g.Name(), budget),
		"metric", "value",
	)
	tbl2.AddRow("trials without consensus", fmt.Sprintf("%d/%d", noConsensus, len(finalRanges)))
	tbl2.AddRow("mean final opinion range", meanRange)
	rep.Tables = append(rep.Tables, tbl2)
	rep.check(noConsensus == len(finalRanges),
		"disagreeing zealots prevent consensus",
		"no trial reached consensus within %d steps; mean surviving range %.1f", budget, meanRange)
	rep.check(meanRange >= float64(k-1),
		"the full zealot span survives",
		"mean final range %.1f spans the zealot values 1..%d", meanRange, k)
	rep.note("With stubborn vertices the weight martingale still holds between zealot interactions, but absorption analysis replaces Theorem 2: agreeing zealots are an absorbing boundary, disagreeing zealots remove absorption entirely.")
	return rep, nil
}

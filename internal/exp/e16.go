package exp

import (
	"fmt"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/stats"
)

// E16Synchronous probes the extension beyond the paper's asynchronous
// model: DIV with synchronous rounds, where every vertex updates
// simultaneously against a snapshot.
//
// Two phenomena are pinned down. (a) Pure synchrony can fail: on K_2
// with adjacent opinions the vertices swap forever — a period-2 orbit —
// so the asynchrony in the paper's model is load-bearing. (b) The
// standard cure, laziness (skip a round w.p. q), restores convergence
// AND the rounded-average outcome, with each round performing ≈ (1-q)n
// updates in parallel: the round count is ≈ async-steps/((1-q)·n), an
// n-fold parallel speedup at the same total work.
func E16Synchronous(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E16", Name: "synchronous rounds (extension)"}
	gs := newGraphs()
	defer gs.Release()

	// (a) The K_2 period-2 orbit.
	osc, err := core.RunSync(core.SyncConfig{
		Graph:     graph.Complete(2),
		Initial:   []int{1, 2},
		Lazy:      0,
		Seed:      rng.DeriveSeed(p.Seed, 0x1600),
		MaxRounds: 1000,
	})
	if err != nil {
		return nil, err
	}
	rep.check(!osc.Consensus && osc.Oscillating,
		"pure synchrony oscillates on K_2",
		"after %d rounds: consensus=%v, period-2 orbit detected=%v — asynchrony is load-bearing",
		osc.Rounds, osc.Consensus, osc.Oscillating)

	// (b) Lazy synchrony: accuracy and round counts vs q, against the
	// asynchronous reference. Reference and laziness sweep run as
	// overlapping futures.
	n := p.pick(150, 300)
	k := 7
	const target = 4.3
	trials := p.pick(120, 500)
	g := gs.Complete(n)
	counts, err := profileWithMean(n, k, target)
	if err != nil {
		return nil, err
	}
	c := meanOfCounts(counts)

	type refOut struct {
		good  int
		steps float64
	}
	futRef := StartSweep(p, "E16ref", []Point{{G: g, Seed: rng.DeriveSeed(p.Seed, 0x1601), Trials: trials}},
		func(_, trial int, seed uint64, sc *core.Scratch) (refOut, error) {
			r := sc.Rand(seed)
			init, err := core.BlockOpinionsInto(sc.Initial(), counts, r)
			if err != nil {
				return refOut{}, err
			}
			res, err := core.Run(core.Config{
				Engine:  p.coreEngine(),
				Probe:   p.probeFor(trial, seed),
				Graph:   g,
				Initial: init,
				Process: core.VertexProcess,
				Seed:    rng.SplitMix64(seed),
				Scratch: sc,
			})
			if err != nil {
				return refOut{}, err
			}
			o := refOut{steps: float64(res.Steps)}
			if res.Consensus && isRoundedAverage(res.Winner, c) {
				o.good = 1
			}
			return o, nil
		})

	lazies := []float64{0.1, 0.3, 0.5}
	type out struct {
		good, cons int
		rounds     float64
		updates    float64
	}
	lazyPoints := make([]Point, len(lazies))
	for li := range lazies {
		lazyPoints[li] = Point{G: g, Seed: rng.DeriveSeed(p.Seed, uint64(0x1610+li)), Trials: trials}
	}
	futLazy := StartSweep(p, "E16lazy", lazyPoints, func(li, trial int, seed uint64, _ *core.Scratch) (out, error) {
		r := rng.New(seed)
		init, err := core.BlockOpinions(n, counts, r)
		if err != nil {
			return out{}, err
		}
		res, err := core.RunSync(core.SyncConfig{
			Graph:   g,
			Initial: init,
			Lazy:    lazies[li],
			Seed:    rng.SplitMix64(seed),
		})
		if err != nil {
			return out{}, err
		}
		o := out{rounds: float64(res.Rounds), updates: float64(res.Updates)}
		if res.Consensus {
			o.cons = 1
			if isRoundedAverage(res.Winner, c) {
				o.good = 1
			}
		}
		return o, nil
	})

	tbl := sim.NewTable(
		fmt.Sprintf("E16: lazy synchronous DIV on %s, k=%d, c=%.3f", g.Name(), k, c),
		"variant", "trials", "accuracy", "mean rounds", "mean updates", "consensus rate",
	)

	refs, err := futRef.Wait()
	if err != nil {
		return nil, err
	}
	refGood := 0
	var refSteps []float64
	for _, o := range refs[0] {
		refGood += o.good
		refSteps = append(refSteps, o.steps)
	}
	refAcc := float64(refGood) / float64(trials)
	tbl.AddRow("async (reference)", trials, refAcc, stats.Mean(refSteps)/float64(n), stats.Mean(refSteps), 1.0)

	lazyRes, err := futLazy.Wait()
	if err != nil {
		return nil, err
	}
	accs := make([]float64, len(lazies))
	for li, lazy := range lazies {
		good, cons := 0, 0
		var rounds, updates []float64
		for _, o := range lazyRes[li] {
			good += o.good
			cons += o.cons
			rounds = append(rounds, o.rounds)
			updates = append(updates, o.updates)
		}
		accs[li] = float64(good) / float64(trials)
		tbl.AddRow(fmt.Sprintf("sync lazy=%.1f", lazy), trials, accs[li],
			stats.Mean(rounds), stats.Mean(updates), float64(cons)/float64(trials))
	}
	rep.Tables = append(rep.Tables, tbl)

	rep.check(accs[1] >= refAcc-0.1,
		"lazy synchrony keeps the rounded-average guarantee",
		"accuracy %.3f at lazy=0.3 vs async reference %.3f", accs[1], refAcc)
	rep.check(accs[0] >= 0.8 && accs[2] >= 0.8,
		"guarantee robust across laziness",
		"accuracy %.3f (lazy=0.1), %.3f (lazy=0.5)", accs[0], accs[2])
	rep.note("Rounds column ≈ async steps/((1−q)·n): synchronous rounds execute the same total work n-way in parallel once laziness breaks the parity orbit.")
	return rep, nil
}

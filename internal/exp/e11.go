package exp

import (
	"fmt"
	"math"

	"div/internal/graph"
	"div/internal/rng"
	"div/internal/sim"
	"div/internal/spectral"
)

// E11Eigenvalues reproduces the paper's "Graphs with small second
// eigenvalue" section: measured λ against the closed forms and w.h.p.
// bounds it quotes —
//
//	K_n:              λ = 1/(n-1)                      (exact)
//	random d-regular: λ = O(1/√d), ≲ 2√(d-1)/d         ([9, 23])
//	G(n,p):           λ ≤ (1+o(1))·2/√(np)             ([8])
//
// plus the non-expanders the paper contrasts with (path, cycle, torus)
// and the resulting λk feasibility and mixing-time bounds.
func E11Eigenvalues(p Params) (*Report, error) {
	p = p.withDefaults()
	rep := &Report{ID: "E11", Name: "second eigenvalues of example families"}
	gs := newGraphs()
	defer gs.Release()
	n := p.pick(256, 1024)

	type entry struct {
		g         *graph.Graph
		reference float64
		kind      string // "exact" or "bound"
	}
	var entries []entry
	add := func(g *graph.Graph, ref float64, kind string) {
		entries = append(entries, entry{g, ref, kind})
	}

	add(gs.Complete(n), spectral.LambdaComplete(n), "exact")
	rrSeed := func(d int) uint64 { return rng.DeriveSeed(p.Seed, 0xe1100+uint64(d)) }
	for _, d := range []int{4, 16, 64} {
		g, err := gs.RandomRegular(n, d, rrSeed(d))
		if err != nil {
			return nil, err
		}
		add(g, spectral.LambdaRandomRegularBound(d), "bound")
	}
	for i, np := range []float64{16, 64} {
		g, err := gs.ConnectedGnp(n, np/float64(n), rng.DeriveSeed(p.Seed, 0xe1180+uint64(i)))
		if err != nil {
			return nil, err
		}
		add(g, spectral.LambdaGnpBound(n, np/float64(n)), "bound")
	}
	oddN := n + 1 - n%2
	add(gs.Cycle(oddN), spectral.LambdaCycle(oddN), "exact")
	side := int(math.Sqrt(float64(n)))
	if side%2 == 0 {
		side++ // odd sides keep the torus non-bipartite
	}
	add(gs.Torus(side, side), 1, "non-expander")
	ws, err := gs.WattsStrogatz(n, 8, 0.2, rng.DeriveSeed(p.Seed, 0xe11c0))
	if err != nil {
		return nil, err
	}
	add(ws, math.NaN(), "measured only")

	tbl := sim.NewTable(
		fmt.Sprintf("E11: absolute second eigenvalue λ of the walk matrix (n ≈ %d)", n),
		"graph", "lambda measured", "reference", "kind", "max k with λk ≤ 0.5", "t_mix bound (ε=1/4)",
	)
	for _, e := range entries {
		lam, err := gs.Lambda(e.g, spectral.Options{MaxIters: 200000, Tol: 1e-13})
		if err != nil {
			return nil, fmt.Errorf("E11: λ(%v): %w", e.g, err)
		}
		piMin := float64(e.g.MinDegree()) / float64(e.g.DegreeSum())
		maxK := "∞"
		if lam > 0 {
			maxK = fmt.Sprintf("%.0f", math.Floor(0.5/lam))
		}
		tbl.AddRow(e.g.Name(), lam, e.reference, e.kind, maxK, spectral.MixingTimeBound(lam, piMin, 0.25))

		switch e.kind {
		case "exact":
			rep.check(math.Abs(lam-e.reference) < 1e-5,
				fmt.Sprintf("closed form: %s", e.g.Name()),
				"measured λ = %.8f vs exact %.8f", lam, e.reference)
		case "bound":
			rep.check(lam <= 1.25*e.reference,
				fmt.Sprintf("w.h.p. bound: %s", e.g.Name()),
				"measured λ = %.4f vs bound %.4f (allow 25%% finite-n slack)", lam, e.reference)
		}
	}
	rep.Tables = append(rep.Tables, tbl)

	// Scaling of λ with d for random regular graphs: fit λ ∝ d^e,
	// expect e ≈ -1/2. The same derived seeds as the table loop make
	// these cache hits rather than fresh builds.
	ds := []float64{4, 16, 64}
	lams := make([]float64, len(ds))
	for i, d := range ds {
		g, err := gs.RandomRegular(n, int(d), rrSeed(int(d)))
		if err != nil {
			return nil, err
		}
		lams[i], err = gs.Lambda(g, spectral.Options{})
		if err != nil {
			return nil, err
		}
	}
	num := math.Log(lams[len(lams)-1]/lams[0]) / math.Log(ds[len(ds)-1]/ds[0])
	rep.check(num > -0.75 && num < -0.3,
		"λ(random d-regular) scales like d^{-1/2}",
		"fitted exponent %.2f across d ∈ {4,16,64} (theory: -0.5)", num)
	return rep, nil
}

package exp

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"runtime/debug"
	"slices"
	"sort"
	"time"

	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
)

// The build section: construction benchmarks for the stripe-keyed
// parallel graph builders (graph.BuildCSR and the *Seeded families)
// against the seed commit's []Edge + NewFromEdges path, which is
// replicated verbatim below — frozen, so the recorded speedup keeps
// meaning as the live builders evolve. Each point measures the frozen
// baseline, the seeded serial configuration (the speedup numerator the
// acceptance gate tracks, bracketed by an RSS sampler after releasing
// the heap, like the bign arms), and the seeded parallel
// configuration, and asserts the parallel build is byte-identical to
// the serial one — the determinism claim, checked where the perf
// numbers are produced and not just in unit tests.

// BenchBuildPoint is one family × n construction measurement.
type BenchBuildPoint struct {
	// Family is "gnp" or "randomRegular"; Param is p or d.
	Family string  `json:"family"`
	N      int     `json:"n"`
	Param  float64 `json:"param"`
	// Edges is the seeded build's undirected edge count (the baseline's
	// differs slightly: the seed→graph mapping changed, the law did not).
	Edges int64 `json:"edges"`
	// BaselineSeconds is the frozen seed path ([]Edge append sampling +
	// per-vertex sort.Slice assembly); 0 when skipped (the map-dedup
	// random-regular baseline is prohibitive above n = 10⁶).
	BaselineSeconds float64 `json:"baseline_seconds"`
	// SerialSeconds is the seeded build at Workers = 1; the speedup gate
	// compares it against the baseline on the same core.
	SerialSeconds     float64 `json:"serial_seconds"`
	SerialEdgesPerSec float64 `json:"serial_edges_per_sec"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline"`
	// Per-phase breakdown of the serial arm (graph.BuildStats).
	SampleNanos  int64 `json:"sample_nanos"`
	CountNanos   int64 `json:"count_nanos"`
	OffsetsNanos int64 `json:"offsets_nanos"`
	ScatterNanos int64 `json:"scatter_nanos"`
	SortNanos    int64 `json:"sort_nanos"`
	// The parallel arm: Workers ≥ 2 always, so the striped/atomic paths
	// are exercised even on a single-core runner (where SpeedupVsSerial
	// ≈ 1 is expected, not a regression).
	Workers             int     `json:"workers"`
	ParallelSeconds     float64 `json:"parallel_seconds"`
	ParallelEdgesPerSec float64 `json:"parallel_edges_per_sec"`
	SpeedupVsSerial     float64 `json:"speedup_vs_serial"`
	// Identical reports offsets- and adjacency-level byte identity of
	// the parallel build against the serial one.
	Identical bool `json:"identical"`
	// PeakRSSBytes brackets the serial build with the heap released
	// first and nothing else live; CSRBytes is the final artifact size.
	// Their ratio bounds the build's transient memory overhead — the
	// n = 10⁷ G(n,p) acceptance bound is ≤ 2×.
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
	CSRBytes     int64   `json:"csr_bytes"`
	RSSOverCSR   float64 `json:"rss_over_csr"`
}

// BenchBuild is the build section of BENCH_engine.json.
type BenchBuild struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	Points     []BenchBuildPoint `json:"points"`
}

// buildBaselineGnp replays the seed commit's G(n,p) path — Batagelj–
// Brandes skipping from one PCG stream appending to []Edge, then the
// original NewFromEdges assembly (count, offsets, scatter, per-vertex
// sort.Slice) — against local slices, since only the wall time is
// wanted. Do not "modernize" this: it is the frozen comparator.
func buildBaselineGnp(n int, p float64, seed uint64) int64 {
	r := rng.New(seed)
	var edges []graph.Edge
	v, w := 1, -1
	lq := logOneMinusBaseline(p)
	for v < n {
		w += 1 + baselineGeometricSkip(r, lq)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			edges = append(edges, graph.Edge{U: w, V: v})
		}
	}
	baselineAssemble(n, edges)
	return int64(len(edges))
}

// buildBaselineRegular replays the seed commit's RandomRegular path:
// configuration-model pairing with a map-keyed dedup into []Edge, then
// the sort.Slice assembly.
func buildBaselineRegular(n, d int, seed uint64) bool {
	r := rng.New(seed)
	for attempt := 0; attempt < 1000; attempt++ {
		edges, ok := baselineTryPairing(n, d, r)
		if !ok {
			continue
		}
		baselineAssemble(n, edges)
		return true
	}
	return false
}

func logOneMinusBaseline(p float64) float64 { return math.Log1p(-p) }

// baselineGeometricSkip is the seed's geometric skip (no overflow
// clamp needed at benchmark parameters).
func baselineGeometricSkip(r *rand.Rand, lq float64) int {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / lq)
}

func baselineTryPairing(n, d int, r *rand.Rand) ([]graph.Edge, bool) {
	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle(r, stubs)
	adj := make(map[int64]bool, n*d/2)
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	edges := make([]graph.Edge, 0, n*d/2)
	for len(stubs) > 0 {
		u := stubs[len(stubs)-1]
		stubs = stubs[:len(stubs)-1]
		paired := false
		for try := 0; try < 4*len(stubs)+16 && len(stubs) > 0; try++ {
			j := r.IntN(len(stubs))
			v := stubs[j]
			if v == u || adj[key(u, v)] {
				continue
			}
			stubs[j] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			adj[key(u, v)] = true
			edges = append(edges, graph.Edge{U: int(u), V: int(v)})
			paired = true
			break
		}
		if !paired {
			return nil, false
		}
	}
	return edges, true
}

// baselineAssemble is the seed NewFromEdges body (validation elided:
// generated edges are valid by construction) against local slices.
func baselineAssemble(n int, edges []graph.Edge) {
	deg := make([]int64, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, 2*len(edges))
	fill := make([]int64, n)
	copy(fill, offsets[:n])
	for _, e := range edges {
		adj[fill[e.U]] = int32(e.V)
		fill[e.U]++
		adj[fill[e.V]] = int32(e.U)
		fill[e.V]++
	}
	for v := 0; v < n; v++ {
		nb := adj[offsets[v]:offsets[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		for i := 1; i < len(nb); i++ {
			if nb[i] == nb[i-1] {
				panic(fmt.Sprintf("baseline: duplicate edge (%d,%d)", v, nb[i]))
			}
		}
	}
}

// benchBuildFamily abstracts a point's two builders.
type benchBuildFamily struct {
	name     string
	param    float64
	seeded   func(n int, seed uint64, opts graph.BuildOpts) (*graph.Graph, error)
	baseline func(n int, seed uint64) // nil = skip
}

func benchBuildFamilies(n int) []benchBuildFamily {
	p := 16.0 / float64(n)
	const d = 8
	fams := []benchBuildFamily{
		{
			name:  "gnp",
			param: p,
			seeded: func(n int, seed uint64, opts graph.BuildOpts) (*graph.Graph, error) {
				return graph.GnpSeeded(n, p, seed, opts)
			},
			baseline: func(n int, seed uint64) { buildBaselineGnp(n, p, seed) },
		},
		{
			name:  "randomRegular",
			param: d,
			seeded: func(n int, seed uint64, opts graph.BuildOpts) (*graph.Graph, error) {
				return graph.RandomRegularSeeded(n, d, seed, opts)
			},
			baseline: func(n int, seed uint64) { buildBaselineRegular(n, d, seed) },
		},
	}
	// The map-dedup random-regular baseline is prohibitive above 10⁶
	// (the map alone outweighs every other structure combined).
	if n > 1_000_000 {
		fams[1].baseline = nil
	}
	return fams
}

// benchBuildPoint measures one family × n point. The gated arms
// (baseline and serial) run twice at n ≤ 10⁶ and keep the minimum —
// min-of-N is the standard shared-hardware noise filter, and the
// speedup gate rides on this ratio.
func benchBuildPoint(fam benchBuildFamily, n int, seed uint64) (BenchBuildPoint, error) {
	pt := BenchBuildPoint{Family: fam.name, N: n, Param: fam.param}
	reps := 2
	if n > 1_000_000 {
		reps = 1
	}

	if fam.baseline != nil {
		for rep := 0; rep < reps; rep++ {
			debug.FreeOSMemory()
			start := time.Now()
			fam.baseline(n, seed)
			if sec := time.Since(start).Seconds(); rep == 0 || sec < pt.BaselineSeconds {
				pt.BaselineSeconds = sec
			}
		}
	}

	// The serial arm is the RSS bracket: heap released first, nothing
	// else live, so the peak is the build's own transient (CSR + memo +
	// cursors), not comparison bookkeeping.
	var serial *graph.Graph
	var err error
	for rep := 0; rep < reps; rep++ {
		serial = nil
		debug.FreeOSMemory()
		var stats graph.BuildStats
		tracker := obs.TrackPeakRSS(5 * time.Millisecond)
		start := time.Now()
		serial, err = fam.seeded(n, seed, graph.BuildOpts{Workers: 1, Stats: &stats})
		sec := time.Since(start).Seconds()
		rss := tracker.Stop()
		if err != nil {
			return pt, fmt.Errorf("bench build %s n=%d serial: %w", fam.name, n, err)
		}
		if rep == 0 || sec < pt.SerialSeconds {
			pt.SerialSeconds = sec
			pt.SampleNanos = stats.SampleNanos
			pt.CountNanos = stats.CountNanos
			pt.OffsetsNanos = stats.OffsetsNanos
			pt.ScatterNanos = stats.ScatterNanos
			pt.SortNanos = stats.SortNanos
		}
		if rss > pt.PeakRSSBytes {
			pt.PeakRSSBytes = rss
		}
	}
	pt.Edges = int64(serial.M())
	pt.SerialEdgesPerSec = float64(pt.Edges) / pt.SerialSeconds
	if pt.BaselineSeconds > 0 {
		pt.SpeedupVsBaseline = pt.BaselineSeconds / pt.SerialSeconds
	}
	pt.CSRBytes = 8*int64(len(serial.Offsets())) + 4*int64(len(serial.Arcs()))
	if pt.CSRBytes > 0 {
		pt.RSSOverCSR = float64(pt.PeakRSSBytes) / float64(pt.CSRBytes)
	}

	// The parallel arm always runs with ≥ 2 workers so the atomic
	// count/scatter paths and pool distribution are what gets measured
	// (and identity-checked), even on a single-core runner.
	pt.Workers = max(2, runtime.GOMAXPROCS(0))
	debug.FreeOSMemory()
	start := time.Now()
	parallel, err := fam.seeded(n, seed, graph.BuildOpts{Workers: pt.Workers})
	pt.ParallelSeconds = time.Since(start).Seconds()
	if err != nil {
		return pt, fmt.Errorf("bench build %s n=%d parallel: %w", fam.name, n, err)
	}
	pt.ParallelEdgesPerSec = float64(pt.Edges) / pt.ParallelSeconds
	pt.SpeedupVsSerial = pt.SerialSeconds / pt.ParallelSeconds
	pt.Identical = slices.Equal(serial.Offsets(), parallel.Offsets()) &&
		slices.Equal(serial.Arcs(), parallel.Arcs())
	return pt, nil
}

// BenchBuildRun measures the build section: gnp and randomRegular at
// n = 10⁵ (quick), plus 10⁶ and 10⁷ with -full. Sizes ascend so a
// point's RSS bracket cannot inherit a larger predecessor's pages.
func BenchBuildRun(p Params) (*BenchBuild, error) {
	p = p.withDefaults()
	sizes := []int{100_000}
	if !p.Quick {
		sizes = append(sizes, 1_000_000, 10_000_000)
	}
	sec := &BenchBuild{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	seed := rng.DeriveSeed(p.Seed, 0xb01d)
	for _, n := range sizes {
		for _, fam := range benchBuildFamilies(n) {
			pt, err := benchBuildPoint(fam, n, seed)
			if err != nil {
				return nil, err
			}
			sec.Points = append(sec.Points, pt)
		}
	}
	return sec, nil
}

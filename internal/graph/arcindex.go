package graph

import (
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"div/internal/obs"
	"div/internal/sched"
)

// vertexUnitsOverflowTotal counts graphs whose distinct-degree LCM
// exceeded MaxDegreeLCM, i.e. every time VertexUnits' !ok fallback path
// was taken and the fast vertex-process engine had to be refused.
var vertexUnitsOverflowTotal = obs.Default.Counter("graph_vertex_units_overflow_total")

// MaxDegreeLCM caps the least common multiple of the distinct degrees
// used for exact integer reciprocal-degree weights (units L/d(v)). A
// graph whose degree LCM exceeds the cap gets no vertex units; callers
// (the fast vertex-process engine) must fall back to naive stepping.
const MaxDegreeLCM = int64(1) << 30

// ArcIndex is the shared, immutable arc-level view of a Graph: the
// tail vertex and reverse arc of every directed arc, plus (lazily) the
// exact integer reciprocal-degree weights and the degree buckets used
// by the fast engines' discordant-arc sampling. It is built once per
// Graph and shared by every trial and engine, so per-trial state never
// re-derives O(n+m) structure.
//
// All returned slices alias the index's storage and must be treated as
// read-only.
type ArcIndex struct {
	g     *Graph
	tails []int32 // tail vertex of each directed arc
	rev   []int32 // rev[a] = index of the opposite-direction arc

	unitOnce sync.Once
	units    []int64 // units[v] = lcm/d(v); nil when lcm overflows
	lcm      int64   // lcm of the distinct degrees; 0 when it overflows
	vbucket  []uint8 // vbucket[v] = floor(log2 d(v)); 0 for isolated v
	ones     []int64 // shared all-ones per-vertex weights (edge process)
}

// ArcIndex returns the graph's shared arc index, building it on first
// use. The result is cached on the graph (all WithName copies share
// the cache), so concurrent callers receive the same index.
func (g *Graph) ArcIndex() *ArcIndex {
	cell := g.arc
	if cell == nil {
		// Zero-value Graph (no construction site): nothing to cache on.
		return buildArcIndex(g)
	}
	if ix := cell.Load(); ix != nil {
		return ix
	}
	ix := buildArcIndex(g)
	if cell.CompareAndSwap(nil, ix) {
		return ix
	}
	return cell.Load()
}

// arcIndexParallelMinArcs gates the parallel rev build: below it the
// serial cursor pass wins on setup cost alone.
const arcIndexParallelMinArcs = 1 << 21

// buildArcIndex computes tails and rev in O(n + m). The serial path
// exploits CSR sortedness: scanning arcs in order, the canonical arcs
// (v,w) with v < w arrive, for each fixed w, in ascending v — which is
// exactly the order of w's sorted neighbour prefix of heads below w —
// so one cursor per vertex pairs every arc with its reverse in a
// single pass. Large graphs on multicore hosts use the row-striped
// path instead (buildArcIndexRows), which computes the same pairing
// without the serial cursor chain.
func buildArcIndex(g *Graph) *ArcIndex {
	n := g.N()
	arcs := len(g.adj)
	ix := &ArcIndex{
		g:     g,
		tails: make([]int32, arcs),
		rev:   make([]int32, arcs),
	}
	if arcs >= arcIndexParallelMinArcs && runtime.GOMAXPROCS(0) > 1 {
		grain := n / 256
		if grain < 2048 {
			grain = 2048
		}
		sched.Distribute(sched.Shared(0), n, grain, sched.Tag{Exp: "graph_build"},
			func(lo, hi int) { buildArcIndexRows(g, ix, lo, hi) })
		return ix
	}
	for v := 0; v < n; v++ {
		for a := g.offsets[v]; a < g.offsets[v+1]; a++ {
			ix.tails[a] = int32(v)
		}
	}
	cursor := make([]int64, n)
	for v := 0; v < n; v++ {
		cursor[v] = g.offsets[v]
	}
	for a := 0; a < arcs; a++ {
		v, w := ix.tails[a], g.adj[a]
		if v < w {
			b := cursor[w]
			cursor[w]++
			ix.rev[a] = int32(b)
			ix.rev[b] = int32(a)
		}
	}
	return ix
}

// buildArcIndexRows fills tails and rev for rows [lo, hi) without
// cross-row state: for a canonical arc a = (v,w), v < w, the reverse
// arc's slot is v's position in w's sorted neighbour list, found by
// binary search. The owner (the v < w side) writes both rev cells, so
// every cell is written exactly once with a schedule-independent value
// — the striped build is race-free and bit-identical to the serial
// cursor pass (the cursor hands w's prefix slots to ascending v, which
// is precisely sorted order).
func buildArcIndexRows(g *Graph, ix *ArcIndex, lo, hi int) {
	adj, offsets := g.adj, g.offsets
	for v := lo; v < hi; v++ {
		rowLo, rowHi := offsets[v], offsets[v+1]
		for a := rowLo; a < rowHi; a++ {
			ix.tails[a] = int32(v)
			w := adj[a]
			if int32(v) >= w {
				continue
			}
			nb := adj[offsets[w]:offsets[w+1]]
			j, _ := slices.BinarySearch(nb, int32(v))
			b := offsets[w] + int64(j)
			ix.rev[a] = int32(b)
			ix.rev[b] = int32(a)
		}
	}
}

// Tails returns the tail vertex of each directed arc (read-only).
func (ix *ArcIndex) Tails() []int32 { return ix.tails }

// Rev returns the reverse-arc map: Rev()[a] is the arc with tail and
// head swapped (read-only).
func (ix *ArcIndex) Rev() []int32 { return ix.rev }

// FirstArc returns the index of vertex v's first outgoing arc; v's
// arcs are FirstArc(v)..FirstArc(v)+Degree(v)-1 in Neighbors order.
func (ix *ArcIndex) FirstArc(v int) int64 { return ix.g.offsets[v] }

// buildUnits computes the lazy weight block: degree LCM, per-vertex
// units lcm/d(v), degree buckets, and the shared all-ones weights.
func (ix *ArcIndex) buildUnits() {
	n := ix.g.N()
	ix.ones = make([]int64, n)
	ix.vbucket = make([]uint8, n)
	lcm := int64(1)
	for v := 0; v < n; v++ {
		ix.ones[v] = 1
		d := int64(ix.g.Degree(v))
		if d == 0 {
			continue
		}
		ix.vbucket[v] = uint8(bits.Len64(uint64(d)) - 1)
		if lcm > 0 {
			l := lcm / gcd64(lcm, d) * d
			if l > MaxDegreeLCM || l < 0 {
				lcm = 0 // overflow: no exact vertex units for this graph
			} else {
				lcm = l
			}
		}
	}
	if lcm == 0 || n == 0 {
		if lcm == 0 {
			vertexUnitsOverflowTotal.Inc()
		}
		return
	}
	ix.lcm = lcm
	ix.units = make([]int64, n)
	for v := 0; v < n; v++ {
		if d := int64(ix.g.Degree(v)); d > 0 {
			ix.units[v] = lcm / d
		}
	}
}

// VertexUnits returns the exact integer reciprocal-degree weights for
// vertex-process arc sampling — units[v] = L/d(v) with L the LCM of
// the distinct degrees — together with L itself. ok is false when L
// would exceed MaxDegreeLCM, in which case units is nil and callers
// must fall back to naive stepping. The slice is read-only.
func (ix *ArcIndex) VertexUnits() (units []int64, lcm int64, ok bool) {
	ix.unitOnce.Do(ix.buildUnits)
	return ix.units, ix.lcm, ix.units != nil
}

// UnitOnes returns the shared all-ones per-vertex weights used by the
// edge process (every arc counts 1). The slice is read-only.
func (ix *ArcIndex) UnitOnes() []int64 {
	ix.unitOnce.Do(ix.buildUnits)
	return ix.ones
}

// DegreeBuckets returns per-vertex degree buckets ⌊log2 d(v)⌋, the
// partition behind the bucketed discordant sampler: within bucket b
// every degree lies in [2^b, 2^(b+1)), so the exact unit L/d(v) lies
// in (L/2^(b+1), L/2^b] and rejection against the bound L>>b accepts
// with probability > 1/2. The slice is read-only.
func (ix *ArcIndex) DegreeBuckets() []uint8 {
	ix.unitOnce.Do(ix.buildUnits)
	return ix.vbucket
}

// gcd64 returns the greatest common divisor of a, b > 0.
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// arcCell is the heap-allocated cache slot for a graph's ArcIndex. It
// lives behind a plain pointer on Graph so WithName's shallow copy
// shares (rather than copies) the atomic value.
type arcCell = atomic.Pointer[ArcIndex]

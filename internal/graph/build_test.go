package graph

import (
	"fmt"
	"math"
	"testing"

	"div/internal/rng"
)

// graphBytesEqual reports byte-level equality of the CSR arrays.
func graphBytesEqual(a, b *Graph) bool {
	if len(a.offsets) != len(b.offsets) || len(a.adj) != len(b.adj) {
		return false
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	for i := range a.adj {
		if a.adj[i] != b.adj[i] {
			return false
		}
	}
	return true
}

// seededBuilders enumerates the seeded families at test sizes, so the
// identity matrix below covers every one of them.
var seededBuilders = []struct {
	name  string
	build func(seed uint64, opts BuildOpts) (*Graph, error)
}{
	{"gnp", func(seed uint64, opts BuildOpts) (*Graph, error) {
		return GnpSeeded(500, 0.02, seed, opts)
	}},
	{"gnpDense", func(seed uint64, opts BuildOpts) (*Graph, error) {
		return GnpSeeded(120, 0.6, seed, opts)
	}},
	{"connectedGnp", func(seed uint64, opts BuildOpts) (*Graph, error) {
		return ConnectedGnpSeeded(300, 0.03, seed, 200, opts)
	}},
	{"randomRegular", func(seed uint64, opts BuildOpts) (*Graph, error) {
		return RandomRegularSeeded(400, 6, seed, opts)
	}},
	{"wattsStrogatz", func(seed uint64, opts BuildOpts) (*Graph, error) {
		return WattsStrogatzSeeded(400, 6, 0.2, seed, opts)
	}},
	{"barabasiAlbert", func(seed uint64, opts BuildOpts) (*Graph, error) {
		return BarabasiAlbertSeeded(400, 3, seed, opts)
	}},
}

// TestBuildIdentityAcrossWorkersAndStripes is the tentpole determinism
// matrix: every seeded family must produce byte-identical CSR arrays
// at every worker count {1,2,4,8} and across stripe granularities.
func TestBuildIdentityAcrossWorkersAndStripes(t *testing.T) {
	for _, fam := range seededBuilders {
		t.Run(fam.name, func(t *testing.T) {
			ref, err := fam.build(42, BuildOpts{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Validate(); err != nil {
				t.Fatalf("reference graph invalid: %v", err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				for _, grain := range []int{0, 7, 64, 1 << 20} {
					g, err := fam.build(42, BuildOpts{Workers: workers, Grain: grain})
					if err != nil {
						t.Fatalf("workers=%d grain=%d: %v", workers, grain, err)
					}
					if !graphBytesEqual(ref, g) {
						t.Fatalf("workers=%d grain=%d: CSR differs from serial reference", workers, grain)
					}
				}
			}
		})
	}
}

// TestBuildSeedSensitivity guards against a degenerate keying bug:
// different seeds must give different graphs (overwhelmingly likely
// for these sizes).
func TestBuildSeedSensitivity(t *testing.T) {
	a, err := GnpSeeded(500, 0.02, 1, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GnpSeeded(500, 0.02, 2, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if graphBytesEqual(a, b) {
		t.Fatal("seeds 1 and 2 produced identical G(500,0.02) — keying broken")
	}
}

// TestBuildCSRMatchesNewFromEdges: the parallel assembler over an edge
// list must equal the serial NewFromEdges output byte for byte.
func TestBuildCSRMatchesNewFromEdges(t *testing.T) {
	r := rng.New(7)
	const n = 300
	var edges []Edge
	seen := map[[2]int]bool{}
	for len(edges) < 2000 {
		u, v := r.IntN(n), r.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, Edge{U: u, V: v})
	}
	ref, err := NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		for _, grain := range []int{0, 13, 257} {
			g, err := BuildCSR(n, EdgeList(n, edges), BuildOpts{Workers: workers, Grain: grain})
			if err != nil {
				t.Fatalf("workers=%d grain=%d: %v", workers, grain, err)
			}
			if !graphBytesEqual(ref, g) {
				t.Fatalf("workers=%d grain=%d: differs from NewFromEdges", workers, grain)
			}
		}
	}
}

// TestBuildCSRErrors pins the exact legacy error strings and that
// error selection is deterministic under parallelism (earliest row
// wins, not fastest worker).
func TestBuildCSRErrors(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
		want  string
	}{
		{"negative n", -1, nil, "graph: negative vertex count -1"},
		{"out of range", 3, []Edge{{0, 1}, {1, 5}}, "graph: edge 1 (1,5) out of range [0,3)"},
		{"negative vertex", 3, []Edge{{-1, 2}}, "graph: edge 0 (-1,2) out of range [0,3)"},
		{"self loop", 3, []Edge{{0, 1}, {2, 2}}, "graph: edge 1 is a self-loop at 2"},
		{"duplicate", 3, []Edge{{0, 1}, {1, 2}, {1, 0}}, "graph: duplicate edge (0,1)"},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			_, err := BuildCSR(tc.n, EdgeList(tc.n, tc.edges), BuildOpts{Workers: workers, Grain: 1})
			if err == nil || err.Error() != tc.want {
				t.Errorf("%s (workers=%d): err = %v, want %q", tc.name, workers, err, tc.want)
			}
		}
	}
	// Two errors in different stripes: the earliest row's error must win
	// at every width and grain.
	edges := []Edge{{0, 1}, {1, 1}, {2, 9}, {3, 3}}
	for _, workers := range []int{1, 2, 8} {
		_, err := BuildCSR(4, EdgeList(4, edges), BuildOpts{Workers: workers, Grain: 1})
		want := "graph: edge 1 is a self-loop at 1"
		if err == nil || err.Error() != want {
			t.Errorf("workers=%d: err = %v, want %q", workers, err, want)
		}
	}
}

// TestBuildStats checks per-phase accounting is populated.
func TestBuildStats(t *testing.T) {
	var st BuildStats
	if _, err := GnpSeeded(20000, 0.004, 3, BuildOpts{Workers: 2, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 {
		t.Errorf("Workers = %d, want 2", st.Workers)
	}
	if st.Stripes == 0 {
		t.Error("Stripes = 0, want > 0")
	}
	if st.CountNanos <= 0 || st.ScatterNanos <= 0 || st.SortNanos <= 0 {
		t.Errorf("phase nanos not populated: %+v", st)
	}
	if st.TotalNanos() < st.CountNanos {
		t.Errorf("TotalNanos %d < CountNanos %d", st.TotalNanos(), st.CountNanos)
	}

	var rrSt BuildStats
	if _, err := RandomRegularSeeded(2000, 4, 3, BuildOpts{Stats: &rrSt}); err != nil {
		t.Fatal(err)
	}
	if rrSt.SampleNanos <= 0 {
		t.Errorf("RandomRegular SampleNanos = %d, want > 0 (pairing phase)", rrSt.SampleNanos)
	}
}

// TestGnpSeededEdgeCases covers the p extremes and empty sizes.
func TestGnpSeededEdgeCases(t *testing.T) {
	g, err := GnpSeeded(100, 0, 1, BuildOpts{})
	if err != nil || g.M() != 0 || g.N() != 100 {
		t.Fatalf("p=0: g=%v err=%v", g, err)
	}
	g, err = GnpSeeded(50, 1, 1, BuildOpts{})
	if err != nil || !g.IsComplete() {
		t.Fatalf("p=1: not complete, err=%v", err)
	}
	if _, err := GnpSeeded(10, 1.5, 1, BuildOpts{}); err == nil {
		t.Fatal("p=1.5 accepted")
	}
	g, err = GnpSeeded(0, 0.5, 1, BuildOpts{})
	if err != nil || g.N() != 0 {
		t.Fatalf("n=0: g=%v err=%v", g, err)
	}
	if got := g.Name(); got != "gnp(n=0,p=0.5)" {
		t.Fatalf("name = %q", got)
	}
}

// TestGeometricSkipClamp is the satellite regression test: a
// vanishingly small p makes log(u)/lq astronomically large, and the
// skip must clamp instead of wrapping negative through the float→int
// conversion (which previously could walk the edge cursor backwards).
func TestGeometricSkipClamp(t *testing.T) {
	lq := logOneMinus(1e-300) // ≈ -1e-300
	if got := skipFromUniform(0.5, lq); got != maxGeometricSkip {
		t.Errorf("skipFromUniform(0.5, %g) = %d, want clamp %d", lq, got, maxGeometricSkip)
	}
	if got := skipFromUniform(math.SmallestNonzeroFloat64, logOneMinus(0.5)); got < 0 {
		t.Errorf("tiny u gave negative skip %d", got)
	}
	// Sane small skips are untouched.
	if got := skipFromUniform(0.25, logOneMinus(0.5)); got != 2 {
		t.Errorf("skipFromUniform(0.25, log(0.5)) = %d, want 2", got)
	}
	// End to end: a tiny-p build terminates with an (almost surely)
	// empty edge set instead of hanging, on both generations.
	g, err := Gnp(1000, 1e-18, rng.New(1))
	if err != nil || g.M() != 0 {
		t.Fatalf("legacy tiny-p: m=%d err=%v", g.M(), err)
	}
	g, err = GnpSeeded(1000, 1e-18, 1, BuildOpts{})
	if err != nil || g.M() != 0 {
		t.Fatalf("seeded tiny-p: m=%d err=%v", g.M(), err)
	}
}

// TestRandomRegularSeededPairingEquivalence replays the seeded
// pairing's exact draw sequence through a map-dedup reference
// implementation: the flat-table dedup must change nothing about
// which edges get paired. This is the serial-equivalence proof for
// the stream-keyed pairing.
func TestRandomRegularSeededPairingEquivalence(t *testing.T) {
	const n, d = 500, 6
	for seed := uint64(0); seed < 5; seed++ {
		g, err := RandomRegularSeeded(n, d, seed, BuildOpts{})
		if err != nil {
			t.Fatal(err)
		}
		ref, attempts := mapPairingReference(n, d, seed)
		if ref == nil {
			t.Fatalf("seed %d: reference pairing failed where builder succeeded", seed)
		}
		refG, err := NewFromEdges(n, ref)
		if err != nil {
			t.Fatal(err)
		}
		if !graphBytesEqual(g, refG) {
			t.Fatalf("seed %d: flat-table pairing differs from map reference (after %d attempts)", seed, attempts)
		}
	}
}

// mapPairingReference mirrors tryPairingTable draw for draw, with the
// legacy map dedup instead of the neighbour table.
func mapPairingReference(n, d int, seed uint64) ([]Edge, int) {
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		s := rng.NewStream(seed, uint64(attempt))
		stubs := make([]int32, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, int32(v))
			}
		}
		for i := len(stubs) - 1; i > 0; i-- {
			j := int(s.Uint64n(uint64(i + 1)))
			stubs[i], stubs[j] = stubs[j], stubs[i]
		}
		adj := make(map[int64]bool, n*d/2)
		edges := make([]Edge, 0, n*d/2)
		ok := true
		for len(stubs) > 0 {
			u := stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			paired := false
			for try := 0; try < 4*len(stubs)+16 && len(stubs) > 0; try++ {
				j := int(s.Uint64n(uint64(len(stubs))))
				v := stubs[j]
				if v == u || adj[key(u, v)] {
					continue
				}
				stubs[j] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				adj[key(u, v)] = true
				edges = append(edges, Edge{U: int(u), V: int(v)})
				paired = true
				break
			}
			if !paired {
				ok = false
				break
			}
		}
		if ok {
			return edges, attempt + 1
		}
	}
	return nil, 0
}

// TestWattsStrogatzSeededLattice: with beta = 0 there is no
// randomness, so the seeded and legacy builders must agree exactly —
// this pins the parallel lattice fill to the serial loop.
func TestWattsStrogatzSeededLattice(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{20, 4}, {101, 6}, {64, 2}} {
		legacy, err := WattsStrogatz(tc.n, tc.d, 0, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			seeded, err := WattsStrogatzSeeded(tc.n, tc.d, 0, 99, BuildOpts{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !graphBytesEqual(legacy, seeded) {
				t.Fatalf("n=%d d=%d workers=%d: beta=0 lattice differs from legacy", tc.n, tc.d, workers)
			}
		}
	}
}

// TestSeededBuildersValidate runs the structural validator and basic
// family invariants over every seeded family.
func TestSeededBuildersValidate(t *testing.T) {
	g, err := RandomRegularSeeded(300, 8, 5, BuildOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular() || g.MaxDegree() != 8 {
		t.Fatalf("not 8-regular: min=%d max=%d", g.MinDegree(), g.MaxDegree())
	}

	g, err = ConnectedGnpSeeded(300, 0.03, 5, 200, BuildOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(g) {
		t.Fatal("ConnectedGnpSeeded returned a disconnected graph")
	}

	g, err = BarabasiAlbertSeeded(500, 3, 5, BuildOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if want := int64(4*3/2 + (500-4)*3); int64(g.M()) != want {
		t.Fatalf("BA edge count %d, want %d", g.M(), want)
	}

	g, err = WattsStrogatzSeeded(300, 6, 0.3, 5, BuildOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if int64(g.M()) != 300*3 {
		t.Fatalf("WS edge count %d, want %d", g.M(), 300*3)
	}
}

// TestBuildCSRReplayMismatchPanics pins the assembler's contract
// violation behaviour: a source that emits different edges in the two
// passes must fail loudly (cursor overrun), never return a silently
// corrupt graph.
func TestBuildCSRReplayMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from replay-contract violation")
		}
	}()
	src := &flakySource{}
	_, _ = BuildCSR(4, src, BuildOpts{})
}

// flakySource violates the replay contract: the first enumeration
// (count) emits one edge, the second (scatter) emits two.
type flakySource struct{ calls int }

func (s *flakySource) Rows() int { return 1 }

func (s *flakySource) EmitRows(lo, hi int, emit func(v, w int32)) error {
	s.calls++
	emit(0, 1)
	if s.calls > 1 {
		emit(2, 3)
	}
	return nil
}

// TestEdgeListSourceRows sanity-checks the EdgeList view.
func TestEdgeListSourceRows(t *testing.T) {
	src := EdgeList(5, []Edge{{0, 1}, {2, 3}})
	if src.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", src.Rows())
	}
	var got []string
	err := src.EmitRows(0, 2, func(v, w int32) { got = append(got, fmt.Sprintf("%d-%d", v, w)) })
	if err != nil || len(got) != 2 || got[0] != "0-1" || got[1] != "2-3" {
		t.Fatalf("emitted %v err %v", got, err)
	}
}

// FuzzBuildStripes fuzzes stripe boundaries and worker counts against
// the serial reference: any (n, p, seed, grain, workers) must build
// the same graph as the serial default-grain build.
func FuzzBuildStripes(f *testing.F) {
	f.Add(uint16(100), uint16(50), uint64(1), uint16(7), uint8(4))
	f.Add(uint16(2), uint16(999), uint64(0), uint16(1), uint8(2))
	f.Add(uint16(257), uint16(10), uint64(123), uint16(64), uint8(8))
	f.Fuzz(func(t *testing.T, nRaw, pMille uint16, seed uint64, grainRaw uint16, workersRaw uint8) {
		n := int(nRaw%400) + 1
		p := float64(pMille%1000) / 1000
		grain := int(grainRaw%512) + 1
		workers := int(workersRaw%8) + 1
		ref, err := GnpSeeded(n, p, seed, BuildOpts{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := GnpSeeded(n, p, seed, BuildOpts{Workers: workers, Grain: grain})
		if err != nil {
			t.Fatal(err)
		}
		if !graphBytesEqual(ref, g) {
			t.Fatalf("n=%d p=%g grain=%d workers=%d: differs from serial build", n, p, grain, workers)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

package graph

import (
	"fmt"
	"testing"
)

func TestBuilderShapes(t *testing.T) {
	tests := []struct {
		name      string
		g         *Graph
		wantN     int
		wantM     int
		regular   bool
		bipartite bool
	}{
		{"complete5", Complete(5), 5, 10, true, false},
		{"complete2", Complete(2), 2, 1, true, true},
		{"path6", Path(6), 6, 5, false, true},
		{"cycle6", Cycle(6), 6, 6, true, true},
		{"cycle7", Cycle(7), 7, 7, true, false},
		{"star8", Star(8), 8, 7, false, true},
		{"bipartite34", CompleteBipartite(3, 4), 7, 12, false, true},
		{"grid34", Grid(3, 4), 12, 17, false, true},
		{"torus44", Torus(4, 4), 16, 32, true, true},
		{"torus35", Torus(3, 5), 15, 30, true, false},
		{"hypercube3", Hypercube(3), 8, 12, true, true},
		{"binaryTree7", BinaryTree(7), 7, 6, false, true},
		{"barbell4_2", Barbell(4, 2), 10, 15, false, false},
		{"barbell3_0", Barbell(3, 0), 6, 7, false, false},
		{"lollipop4_3", Lollipop(4, 3), 7, 9, false, false},
		{"circulant8_12", Circulant(8, []int{1, 2}), 8, 16, true, false},
		// C_6(1,3) is K_{3,3}: the hexagon plus antipodal chords.
		{"circulant6_13", Circulant(6, []int{1, 3}), 6, 9, true, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.wantN {
				t.Errorf("N = %d, want %d", tc.g.N(), tc.wantN)
			}
			if tc.g.M() != tc.wantM {
				t.Errorf("M = %d, want %d", tc.g.M(), tc.wantM)
			}
			if got := tc.g.IsRegular(); got != tc.regular {
				t.Errorf("IsRegular = %v, want %v", got, tc.regular)
			}
			if got := IsBipartite(tc.g); got != tc.bipartite {
				t.Errorf("IsBipartite = %v, want %v", got, tc.bipartite)
			}
			if !IsConnected(tc.g) {
				t.Error("builder produced disconnected graph")
			}
			if err := tc.g.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestCompleteDegrees(t *testing.T) {
	for _, n := range []int{2, 3, 10, 50} {
		g := Complete(n)
		for v := 0; v < n; v++ {
			if g.Degree(v) != n-1 {
				t.Fatalf("K_%d degree(%d) = %d", n, v, g.Degree(v))
			}
		}
	}
}

func TestHypercubeNeighbors(t *testing.T) {
	g := Hypercube(4)
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			diff := v ^ int(w)
			if diff&(diff-1) != 0 {
				t.Fatalf("hypercube edge (%d,%d) differs in more than one bit", v, w)
			}
		}
	}
}

func TestTorusDegree(t *testing.T) {
	g := Torus(5, 7)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestBarbellStructure(t *testing.T) {
	g := Barbell(5, 3)
	// The two cliques plus path: vertices 0..4 clique, 5..7 path, 8..12 clique.
	if !g.HasEdge(0, 4) || !g.HasEdge(8, 12) {
		t.Error("cliques missing edges")
	}
	if !g.HasEdge(4, 5) || !g.HasEdge(5, 6) || !g.HasEdge(6, 7) || !g.HasEdge(7, 8) {
		t.Error("bridge path missing edges")
	}
	if g.HasEdge(0, 8) {
		t.Error("cross-clique edge present")
	}
}

func TestCirculantPanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"stride zero", func() { Circulant(6, []int{0}) }},
		{"stride too large", func() { Circulant(6, []int{4}) }},
		{"duplicate stride", func() { Circulant(8, []int{2, 2}) }},
		{"cycle small", func() { Cycle(2) }},
		{"torus small", func() { Torus(2, 5) }},
		{"barbell small", func() { Barbell(1, 0) }},
		{"hypercube dim", func() { Hypercube(0) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestCirculantAntipodal(t *testing.T) {
	// Stride n/2 contributes exactly one edge per antipodal pair.
	g := Circulant(6, []int{3})
	if g.M() != 3 {
		t.Fatalf("C_6(3) has %d edges, want 3", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("C_6(3) degree(%d) = %d, want 1", v, g.Degree(v))
		}
	}
}

func TestBuilderNames(t *testing.T) {
	tests := []struct {
		g    *Graph
		want string
	}{
		{Complete(3), "complete(n=3)"},
		{Path(4), "path(n=4)"},
		{Cycle(5), "cycle(n=5)"},
		{Star(6), "star(n=6)"},
	}
	for _, tc := range tests {
		if tc.g.Name() != tc.want {
			t.Errorf("name = %q, want %q", tc.g.Name(), tc.want)
		}
		wantPrefix := fmt.Sprintf("%s{n=%d m=%d}", tc.want, tc.g.N(), tc.g.M())
		if tc.g.String() != wantPrefix {
			t.Errorf("String = %q, want %q", tc.g.String(), wantPrefix)
		}
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("Petersen n=%d m=%d", g.N(), g.M())
	}
	if !g.IsRegular() || g.Degree(0) != 3 {
		t.Error("Petersen not 3-regular")
	}
	if IsBipartite(g) {
		t.Error("Petersen reported bipartite")
	}
	if d, err := Diameter(g); err != nil || d != 2 {
		t.Errorf("Petersen diameter = %d, %v; want 2", d, err)
	}
	// Girth 5: no triangles.
	if Triangles(g) != 0 {
		t.Error("Petersen has triangles")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCompleteMultipartite(t *testing.T) {
	g := CompleteMultipartite([]int{2, 3, 4})
	if g.N() != 9 {
		t.Fatalf("n = %d", g.N())
	}
	// m = 2·3 + 2·4 + 3·4 = 26.
	if g.M() != 26 {
		t.Fatalf("m = %d, want 26", g.M())
	}
	// Within-part pairs are non-adjacent.
	if g.HasEdge(0, 1) || g.HasEdge(2, 3) || g.HasEdge(5, 6) {
		t.Error("within-part edge present")
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(4, 8) {
		t.Error("across-part edge missing")
	}
	// K_{a,b} special case.
	kab := CompleteMultipartite([]int{3, 4})
	ref := CompleteBipartite(3, 4)
	if kab.M() != ref.M() || kab.N() != ref.N() {
		t.Error("two-part multipartite != complete bipartite")
	}
	defer func() {
		if recover() == nil {
			t.Error("empty part accepted")
		}
	}()
	CompleteMultipartite([]int{0, 2})
}

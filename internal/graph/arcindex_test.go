package graph

import (
	"math/bits"
	"testing"

	"div/internal/rng"
)

func arcIndexGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	rr, err := RandomRegular(14, 4, rng.New(0xa1))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"path":     Path(9),
		"cycle":    Cycle(12),
		"complete": Complete(8),
		"star":     Star(11),
		"regular":  rr,
	}
}

// TestArcIndexStructure checks tails and rev against the CSR layout:
// tails follow the offset table, rev is an involution that swaps tail
// and head, and FirstArc agrees with Neighbors order.
func TestArcIndexStructure(t *testing.T) {
	for name, g := range arcIndexGraphs(t) {
		ix := g.ArcIndex()
		tails, rev, adj := ix.Tails(), ix.Rev(), g.Arcs()
		if len(tails) != len(adj) || len(rev) != len(adj) {
			t.Fatalf("%s: index sizes tails=%d rev=%d, want %d", name, len(tails), len(rev), len(adj))
		}
		for v := 0; v < g.N(); v++ {
			base := ix.FirstArc(v)
			nb := g.Neighbors(v)
			for i, w := range nb {
				a := base + int64(i)
				if tails[a] != int32(v) || adj[a] != w {
					t.Fatalf("%s: arc %d is (%d→%d), want (%d→%d)", name, a, tails[a], adj[a], v, w)
				}
			}
		}
		for a := range adj {
			r := rev[a]
			if rev[r] != int32(a) {
				t.Fatalf("%s: rev not an involution at arc %d", name, a)
			}
			if tails[r] != adj[a] || adj[r] != tails[a] {
				t.Fatalf("%s: rev[%d]=%d is (%d→%d), want (%d→%d)",
					name, a, r, tails[r], adj[r], adj[a], tails[a])
			}
		}
	}
}

// TestArcIndexShared: the index is built once per graph and shared by
// WithName copies, and ArcTails is a read-only view of its storage.
func TestArcIndexShared(t *testing.T) {
	g := Cycle(10)
	ix := g.ArcIndex()
	if g.ArcIndex() != ix {
		t.Error("second ArcIndex call rebuilt the index")
	}
	if g.WithName("renamed").ArcIndex() != ix {
		t.Error("WithName copy does not share the arc index")
	}
	tails := g.ArcTails()
	if &tails[0] != &ix.Tails()[0] {
		t.Error("ArcTails does not alias the shared index storage")
	}
}

// TestVertexUnits: units[v]·d(v) = L for every vertex, with L exactly
// the LCM of the distinct degrees.
func TestVertexUnits(t *testing.T) {
	for name, g := range arcIndexGraphs(t) {
		units, lcm, ok := g.ArcIndex().VertexUnits()
		if !ok {
			t.Fatalf("%s: vertex units unavailable", name)
		}
		want := int64(1)
		for v := 0; v < g.N(); v++ {
			d := int64(g.Degree(v))
			want = want / gcd64(want, d) * d
		}
		if lcm != want {
			t.Errorf("%s: lcm=%d, want %d", name, lcm, want)
		}
		for v := 0; v < g.N(); v++ {
			if got := units[v] * int64(g.Degree(v)); got != lcm {
				t.Errorf("%s: units[%d]·d = %d, want %d", name, v, got, lcm)
			}
		}
	}
}

// TestVertexUnitsOverflow: a degree sequence of many distinct primes
// pushes the LCM over MaxDegreeLCM; the index must report !ok rather
// than wrap, while the edge process's all-ones weights stay available.
func TestVertexUnitsOverflow(t *testing.T) {
	// Caterpillar spine with prime-ish degrees: lcm(3,5,…,47) > 2^30.
	primes := []int{3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
	var edges []Edge
	next := len(primes)
	for i, want := range primes {
		if i > 0 {
			edges = append(edges, Edge{U: i - 1, V: i})
		}
		have := 0
		if i > 0 {
			have++
		}
		if i < len(primes)-1 {
			have++
		}
		for have < want {
			edges = append(edges, Edge{U: i, V: next})
			next++
			have++
		}
	}
	g := MustFromEdges(next, edges)
	if units, lcm, ok := g.ArcIndex().VertexUnits(); ok || units != nil || lcm != 0 {
		t.Errorf("expected lcm overflow, got units=%v lcm=%d ok=%v", units != nil, lcm, ok)
	}
	ones := g.ArcIndex().UnitOnes()
	if len(ones) != g.N() {
		t.Fatalf("UnitOnes length %d, want %d", len(ones), g.N())
	}
	for v, u := range ones {
		if u != 1 {
			t.Fatalf("UnitOnes[%d] = %d, want 1", v, u)
		}
	}
}

// TestVertexUnitsOverflowCirculant: the overflow fallback exercised on
// an implicit-family graph rather than a bespoke caterpillar — an
// implicit circulant is materialized, then pendant chains push a prefix
// of its vertices to distinct prime degrees whose LCM exceeds the cap.
// The !ok path must also be visible in obs: the shared registry's
// graph_vertex_units_overflow_total counter advances exactly once per
// graph (the units block is built under a sync.Once).
func TestVertexUnitsOverflowCirculant(t *testing.T) {
	topo, err := NewImplicitCirculant(16, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	base := MustMaterialize(topo)
	// lcm(4, 5, 7, 11, …, 47) > 2^30: every circulant vertex starts at
	// degree 4; pendants raise vertex i to primes[i].
	primes := []int{5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
	edges := base.Edges()
	next := base.N()
	for i, want := range primes {
		for have := base.Degree(i); have < want; have++ {
			edges = append(edges, Edge{U: i, V: next})
			next++
		}
	}
	g := MustFromEdges(next, edges)

	counter := vertexUnitsOverflowTotal
	before := counter.Value()
	units, lcm, ok := g.ArcIndex().VertexUnits()
	if ok || units != nil || lcm != 0 {
		t.Errorf("expected lcm overflow, got units=%v lcm=%d ok=%v", units != nil, lcm, ok)
	}
	if got := counter.Value(); got != before+1 {
		t.Errorf("overflow counter advanced by %d, want 1", got-before)
	}
	// Repeat lookups reuse the once-built block: no double count.
	g.ArcIndex().VertexUnits()
	if got := counter.Value(); got != before+1 {
		t.Errorf("overflow counter advanced again on cached lookup: %d", got-before)
	}
	// The edge process's all-ones weights survive the overflow.
	for v, u := range g.ArcIndex().UnitOnes() {
		if u != 1 {
			t.Fatalf("UnitOnes[%d] = %d, want 1", v, u)
		}
	}
	// A pure circulant (regular, single degree) must NOT trip the
	// fallback: its LCM is just the degree.
	if _, lcm, ok := base.ArcIndex().VertexUnits(); !ok || lcm != 4 {
		t.Errorf("circulant units: lcm=%d ok=%v, want lcm=4 ok=true", lcm, ok)
	}
	if got := counter.Value(); got != before+1 {
		t.Errorf("non-overflowing circulant moved the counter: %d", got-before)
	}
}

// TestDegreeBuckets: vbucket[v] = ⌊log2 d(v)⌋, so units within a bucket
// stay within a factor 2 of the bucket bound L>>b.
func TestDegreeBuckets(t *testing.T) {
	for name, g := range arcIndexGraphs(t) {
		ix := g.ArcIndex()
		vb := ix.DegreeBuckets()
		units, lcm, ok := ix.VertexUnits()
		if !ok {
			t.Fatalf("%s: vertex units unavailable", name)
		}
		for v := 0; v < g.N(); v++ {
			d := g.Degree(v)
			if want := uint8(bits.Len64(uint64(d)) - 1); vb[v] != want {
				t.Errorf("%s: bucket[%d] = %d for degree %d, want %d", name, v, vb[v], d, want)
			}
			ub := lcm >> uint(vb[v])
			if units[v] > ub || 2*units[v] <= ub {
				t.Errorf("%s: unit[%d] = %d outside (%d/2, %d]", name, v, units[v], ub, ub)
			}
		}
	}
}

// TestIsComplete: the arc-count criterion 2m = n(n-1) holds exactly for
// complete graphs (a simple graph meeting it must have every degree at
// its maximum).
func TestIsComplete(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		if !Complete(n).IsComplete() {
			t.Errorf("Complete(%d).IsComplete() = false", n)
		}
	}
	for name, g := range map[string]*Graph{
		"path":  Path(5),
		"star":  Star(6),
		"cycle": Cycle(3) /* K_3 as cycle */} {
		want := name == "cycle"
		if got := g.IsComplete(); got != want {
			t.Errorf("%s.IsComplete() = %v, want %v", name, got, want)
		}
	}
}

// TestArcIndexRowBuildMatchesSerial pins the striped rev build
// (binary-search pairing, used above arcIndexParallelMinArcs on
// multicore hosts) to the serial cursor pass, across families and row
// partitions — including partitions that split a vertex's arcs from
// its reverse partners'.
func TestArcIndexRowBuildMatchesSerial(t *testing.T) {
	gs := arcIndexGraphs(t)
	gnp, err := GnpSeeded(300, 0.05, 9, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	gs["gnp"] = gnp
	for name, g := range gs {
		want := g.ArcIndex()
		for _, grain := range []int{1, 3, 1 << 20} {
			got := &ArcIndex{g: g, tails: make([]int32, len(g.adj)), rev: make([]int32, len(g.adj))}
			for lo := 0; lo < g.N(); lo += grain {
				hi := lo + grain
				if hi > g.N() {
					hi = g.N()
				}
				buildArcIndexRows(g, got, lo, hi)
			}
			for a := range want.rev {
				if got.rev[a] != want.rev[a] || got.tails[a] != want.tails[a] {
					t.Fatalf("%s grain=%d: arc %d rev/tails (%d,%d) want (%d,%d)",
						name, grain, a, got.rev[a], got.tails[a], want.rev[a], want.tails[a])
				}
			}
		}
	}
}

package graph

import (
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"div/internal/obs"
	"div/internal/sched"
)

// This file is the direct-to-CSR assembler: graphs are built straight
// into their final offsets/adj slabs with no intermediate []Edge, in
// four phases —
//
//	count    enumerate every edge once, accumulating degrees
//	offsets  exclusive prefix sum of the degrees
//	scatter  enumerate the same edges again, writing both arc cells
//	sort     per-vertex neighbour sort + duplicate detection
//
// Each phase runs striped over row ranges on the work-stealing pool
// (sched.Distribute), with the calling goroutine participating, so a
// cold graph-cache build saturates the pool instead of serializing on
// one goroutine. The count and scatter passes replay the same
// enumeration, which is what lets a generated family (G(n,p)) avoid
// ever materializing 16 bytes/edge of edge list — peak memory is the
// final CSR plus one int64 cursor per vertex, plus whatever the source
// keeps to make its replay cheap (gnpSource memoizes 4 bytes/edge
// between the passes rather than re-running the skip chain).
//
// Determinism: an EdgeSource's emissions are a pure function of the
// row range, and the scatter pass's nondeterministic within-row arc
// order is canonicalized by the sort phase, so the built graph is
// byte-identical at every worker count and every stripe size. Errors
// are selected by row order (smallest stripe index, first error
// within it), never by which worker tripped first.
//
// Telemetry on obs.Default:
//
//	span_graph_build_sample_nanos   a builder's serial sampling phase
//	                                (pairing, attachment, rewiring);
//	                                G(n,p) samples inside the count pass
//	span_graph_build_count_nanos    count pass wall time
//	span_graph_build_offsets_nanos  prefix-sum wall time
//	span_graph_build_scatter_nanos  scatter pass wall time
//	span_graph_build_sort_nanos     sort + dup-check wall time
//	graph_build_workers             worker hint of the latest build
//	graph_build_stripes_total       row stripes processed across passes

var (
	buildSampleTimer  = obs.Default.Timer("graph_build_sample")
	buildCountTimer   = obs.Default.Timer("graph_build_count")
	buildOffsetsTimer = obs.Default.Timer("graph_build_offsets")
	buildScatterTimer = obs.Default.Timer("graph_build_scatter")
	buildSortTimer    = obs.Default.Timer("graph_build_sort")
	buildWorkersGauge = obs.Default.Gauge("graph_build_workers")
	buildStripesTotal = obs.Default.Counter("graph_build_stripes_total")
)

// EdgeSource enumerates the undirected edges of a graph, partitioned
// into rows. EmitRows must call emit(v, w) exactly once per edge {v,w}
// owned by a row in [lo, hi), with both endpoints already validated
// (in range, no self-loop) — emit goes straight into degree counters
// and arc slabs with no bounds checks of its own. The enumeration must
// be a pure function of the row range: BuildCSR calls EmitRows twice
// per range (count, then scatter), possibly from different goroutines
// per call, and disjoint ranges concurrently.
type EdgeSource interface {
	// Rows returns the number of rows the edge set is partitioned into
	// (the vertex count for generated families, the edge count for an
	// edge list).
	Rows() int
	// EmitRows emits every edge owned by rows [lo, hi). A non-nil error
	// aborts the build; the error from the earliest row range wins.
	EmitRows(lo, hi int, emit func(v, w int32)) error
}

// BuildStats reports per-phase wall time for one build. Nanos fields
// accumulate, so one BuildStats can total several builds (retries in
// ConnectedGnp, attempts in RandomRegular).
type BuildStats struct {
	// SampleNanos covers a builder's serial sampling work outside the
	// assembler: configuration-model pairing, preferential attachment,
	// Watts–Strogatz rewiring. Zero for G(n,p), whose sampling runs
	// inside the count pass (the scatter pass replays a memo).
	SampleNanos  int64
	CountNanos   int64
	OffsetsNanos int64
	ScatterNanos int64
	SortNanos    int64
	// Workers is the normalized worker hint of the last build; Stripes
	// counts row stripes processed across all passes.
	Workers int
	Stripes int64
}

// TotalNanos returns the summed wall time of all phases.
func (s *BuildStats) TotalNanos() int64 {
	return s.SampleNanos + s.CountNanos + s.OffsetsNanos + s.ScatterNanos + s.SortNanos
}

// BuildOpts tunes the assembler. The zero value builds serially on the
// calling goroutine, which is also the NewFromEdges configuration.
type BuildOpts struct {
	// Workers is the parallelism hint: > 1 runs the build's phases
	// striped over sched.Shared(Workers) (the calling goroutine
	// participates). ≤ 1 builds serially. The built graph is identical
	// either way.
	Workers int
	// Grain overrides the rows-per-stripe granularity (0 = automatic).
	// Like Workers it never affects the built graph, only scheduling.
	Grain int
	// Pool overrides the pool used when Workers > 1 (nil = shared).
	Pool *sched.Pool
	// Stats, when non-nil, accumulates per-phase timings.
	Stats *BuildStats
}

func (o BuildOpts) pool() *sched.Pool {
	if o.Workers <= 1 {
		return nil
	}
	if o.Pool != nil {
		return o.Pool
	}
	return sched.Shared(o.Workers)
}

func (o BuildOpts) workers() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

// grainFor resolves the stripe granularity for a row count. It is a
// pure function of (rows, o.Grain) — never of Workers — so stripe
// boundaries, and with them error selection, are identical at every
// width.
func (o BuildOpts) grainFor(rows int) int {
	if o.Grain > 0 {
		return o.Grain
	}
	g := rows / 256
	if g < 2048 {
		g = 2048
	}
	return g
}

// observeSample records a builder's serial sampling phase.
func (o BuildOpts) observeSample(d time.Duration) {
	buildSampleTimer.Observe(d)
	if o.Stats != nil {
		o.Stats.SampleNanos += d.Nanoseconds()
	}
}

// EdgeList returns the EdgeSource view of an explicit edge list: row i
// owns edges[i], validated against vertex count n on emission with
// NewFromEdges's error reporting.
func EdgeList(n int, edges []Edge) EdgeSource {
	return edgeListSource{n: n, edges: edges}
}

type edgeListSource struct {
	n     int
	edges []Edge
}

func (s edgeListSource) Rows() int { return len(s.edges) }

func (s edgeListSource) EmitRows(lo, hi int, emit func(v, w int32)) error {
	for i := lo; i < hi; i++ {
		e := s.edges[i]
		if e.U < 0 || e.U >= s.n || e.V < 0 || e.V >= s.n {
			return fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, s.n)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop at %d", i, e.U)
		}
		emit(int32(e.U), int32(e.V))
	}
	return nil
}

// serialRowsSource is an optional EdgeSource fast path taken only by
// the serial (pool-less) build: the source runs the count and scatter
// inner loops natively over its rows, eliminating the per-edge closure
// dispatch that a func(v, w) emit costs twice per edge. Parallel
// builds always go through EmitRows (their accumulation is atomic);
// the built graph is identical either way, which
// TestBuildIdentityAcrossWorkersAndStripes pins.
type serialRowsSource interface {
	// CountRowsSerial must increment counts[v+1] and counts[w+1] once
	// per owned edge {v, w} of rows [lo, hi) — the same +1 convention
	// as the count pass's in-place prefix sum. Counters are int32 (a
	// simple graph's degree is below the int32 vertex bound) so the
	// pass's random-access working set is half the offsets array's.
	CountRowsSerial(lo, hi int, counts []int32) error
	// ScatterRowsSerial must, for each owned edge {v, w} of rows
	// [lo, hi), write both arc cells through the fill cursors:
	// adj[fill[v]] = w, adj[fill[w]] = v, post-incrementing each cursor.
	// The count pass vetted the rows, so this pass cannot fail.
	ScatterRowsSerial(lo, hi int, fill []int64, adj []int32)
	// SortedRowsSerial reports whether the serial scatter leaves every
	// adjacency already sorted ascending — true when rows emit their
	// neighbour draws in ascending order and every edge is owned by its
	// larger endpoint (then vertex x receives its smaller neighbours,
	// ascending, from its own row before rows x+1, x+2, … append
	// theirs). When true the sort phase degrades to a strict-ascending
	// verify that doubles as the duplicate check.
	SortedRowsSerial() bool
}

// stripedErrs collects one error per stripe; First returns the error
// of the earliest stripe, which is deterministic regardless of which
// worker processed what.
type stripedErrs struct {
	errs []error
}

func newStripedErrs(rows, grain int) *stripedErrs {
	if rows <= 0 {
		return &stripedErrs{}
	}
	return &stripedErrs{errs: make([]error, (rows+grain-1)/grain)}
}

func (se *stripedErrs) set(lo, grain int, err error) { se.errs[lo/grain] = err }

func (se *stripedErrs) first() error {
	for _, err := range se.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runStripes executes fn over row stripes of the given grain, on the
// pool when non-nil (caller participating) or inline otherwise, and
// returns the wall time. Stripe boundaries depend only on (rows,
// grain).
func runStripes(p *sched.Pool, rows, grain int, stats *BuildStats, fn func(lo, hi int)) time.Duration {
	start := time.Now()
	stripes := 0
	if rows > 0 {
		stripes = (rows + grain - 1) / grain
	}
	if p == nil {
		for lo := 0; lo < rows; lo += grain {
			hi := lo + grain
			if hi > rows {
				hi = rows
			}
			fn(lo, hi)
		}
	} else {
		sched.Distribute(p, rows, grain, sched.Tag{Exp: "graph_build"}, fn)
	}
	buildStripesTotal.Add(int64(stripes))
	if stats != nil {
		stats.Stripes += int64(stripes)
	}
	return time.Since(start)
}

// BuildCSR assembles a Graph with n vertices directly into CSR form
// from the edges src enumerates. The result carries no name; builders
// label it with WithName. See the file comment for the phase plan and
// the determinism argument.
func BuildCSR(n int, src EdgeSource, opts BuildOpts) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	p := opts.pool()
	stats := opts.Stats
	if stats != nil {
		stats.Workers = opts.workers()
	}
	buildWorkersGauge.Set(int64(opts.workers()))

	rows := src.Rows()
	rowGrain := opts.grainFor(rows)
	vtxGrain := opts.grainFor(n)

	// Count pass: offsets[v+1] accumulates deg(v). The parallel variant
	// uses atomic adds — stripes owned by different workers share head
	// vertices freely.
	offsets := make([]int64, n+1)
	countErrs := newStripedErrs(rows, rowGrain)
	fastSrc, fastOK := src.(serialRowsSource)
	fast := p == nil && fastOK
	var counts32 []int32
	if fast {
		counts32 = make([]int32, n+1)
	}
	var countEmit func(v, w int32)
	if p == nil {
		countEmit = func(v, w int32) {
			offsets[v+1]++
			offsets[w+1]++
		}
	} else {
		countEmit = func(v, w int32) {
			atomic.AddInt64(&offsets[v+1], 1)
			atomic.AddInt64(&offsets[w+1], 1)
		}
	}
	d := runStripes(p, rows, rowGrain, stats, func(lo, hi int) {
		var err error
		if fast {
			err = fastSrc.CountRowsSerial(lo, hi, counts32)
		} else {
			err = src.EmitRows(lo, hi, countEmit)
		}
		if err != nil {
			countErrs.set(lo, rowGrain, err)
		}
	})
	buildCountTimer.Observe(d)
	if stats != nil {
		stats.CountNanos += d.Nanoseconds()
	}
	if err := countErrs.first(); err != nil {
		return nil, err
	}

	// Offsets phase: exclusive prefix sum in place, blocked so wide
	// machines scan stripes concurrently (stripe totals, serial scan of
	// the totals, then stripe-local running sums).
	start := time.Now()
	if fast {
		var run int64
		for v := 0; v < n; v++ {
			run += int64(counts32[v+1])
			offsets[v+1] = run
		}
		counts32 = nil
	} else if p == nil || n < 2*vtxGrain {
		var run int64
		for v := 0; v < n; v++ {
			run += offsets[v+1]
			offsets[v+1] = run
		}
	} else {
		stripes := (n + vtxGrain - 1) / vtxGrain
		sums := make([]int64, stripes)
		runStripes(p, n, vtxGrain, nil, func(lo, hi int) {
			var s int64
			for v := lo; v < hi; v++ {
				s += offsets[v+1]
			}
			sums[lo/vtxGrain] = s
		})
		var base int64
		for i, s := range sums {
			sums[i] = base
			base += s
		}
		runStripes(p, n, vtxGrain, nil, func(lo, hi int) {
			run := sums[lo/vtxGrain]
			for v := lo; v < hi; v++ {
				run += offsets[v+1]
				offsets[v+1] = run
			}
		})
	}
	total := offsets[n]
	fill := make([]int64, n)
	copy(fill, offsets[:n])
	d = time.Since(start)
	buildOffsetsTimer.Observe(d)
	if stats != nil {
		stats.OffsetsNanos += d.Nanoseconds()
	}

	// Scatter pass: replay the enumeration, writing both directed arcs
	// through per-vertex fill cursors. Under parallelism the cursors
	// advance atomically, so within-row arc order depends on scheduling
	// — the sort phase canonicalizes it.
	adj := make([]int32, total)
	var scatterEmit func(v, w int32)
	if p == nil {
		scatterEmit = func(v, w int32) {
			a := fill[v]
			fill[v] = a + 1
			adj[a] = w
			b := fill[w]
			fill[w] = b + 1
			adj[b] = v
		}
	} else {
		scatterEmit = func(v, w int32) {
			adj[atomic.AddInt64(&fill[v], 1)-1] = w
			adj[atomic.AddInt64(&fill[w], 1)-1] = v
		}
	}
	d = runStripes(p, rows, rowGrain, stats, func(lo, hi int) {
		if fast {
			fastSrc.ScatterRowsSerial(lo, hi, fill, adj)
			return
		}
		// The count pass vetted every row, so a second error here would
		// mean the source violated its replay contract; emission-count
		// mismatches surface as a cursor overrun panic rather than a
		// silent bad graph.
		_ = src.EmitRows(lo, hi, scatterEmit)
	})
	buildScatterTimer.Observe(d)
	if stats != nil {
		stats.ScatterNanos += d.Nanoseconds()
	}

	// Sort phase: per-vertex neighbour sort + duplicate detection,
	// striped over vertices. A fast source whose serial scatter is
	// already sorted only needs the strict-ascending verify (equality =
	// duplicate, inversion = broken SortedRowsSerial contract).
	sortErrs := newStripedErrs(n, vtxGrain)
	presorted := fast && fastSrc.SortedRowsSerial()
	d = runStripes(p, n, vtxGrain, stats, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			nb := adj[offsets[v]:offsets[v+1]]
			if !presorted {
				slices.Sort(nb)
			}
			for i := 1; i < len(nb); i++ {
				if nb[i] <= nb[i-1] {
					sortErrs.set(lo, vtxGrain, fmt.Errorf("graph: duplicate edge (%d,%d)", v, nb[i]))
					return
				}
			}
		}
	})
	buildSortTimer.Observe(d)
	if stats != nil {
		stats.SortNanos += d.Nanoseconds()
	}
	if err := sortErrs.first(); err != nil {
		return nil, err
	}

	return &Graph{offsets: offsets, adj: adj, arc: new(arcCell)}, nil
}

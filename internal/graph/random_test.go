package graph

import (
	"math"
	"testing"

	"div/internal/rng"
)

func TestGnpEdgeCount(t *testing.T) {
	r := rng.New(1)
	const n, p = 400, 0.05
	g, err := Gnp(n, p, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mean := p * float64(n) * float64(n-1) / 2
	sd := math.Sqrt(mean * (1 - p))
	if d := math.Abs(float64(g.M()) - mean); d > 6*sd {
		t.Errorf("G(%d,%g) has %d edges, want %.0f ± %.0f", n, p, g.M(), mean, 6*sd)
	}
}

func TestGnpEdgeProbabilityPerPair(t *testing.T) {
	// Each fixed pair should appear with probability ≈ p across samples.
	r := rng.New(2)
	const n, p, samples = 12, 0.3, 4000
	count := 0
	for i := 0; i < samples; i++ {
		g, err := Gnp(n, p, r)
		if err != nil {
			t.Fatal(err)
		}
		if g.HasEdge(3, 7) {
			count++
		}
	}
	z := (float64(count) - p*samples) / math.Sqrt(samples*p*(1-p))
	if math.Abs(z) > 5 {
		t.Errorf("pair (3,7) present in %d/%d samples (z=%.1f)", count, samples, z)
	}
}

func TestGnpExtremes(t *testing.T) {
	r := rng.New(3)
	g0, err := Gnp(10, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if g0.M() != 0 {
		t.Errorf("G(10,0) has %d edges", g0.M())
	}
	g1, err := Gnp(10, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if g1.M() != 45 {
		t.Errorf("G(10,1) has %d edges, want 45", g1.M())
	}
	if _, err := Gnp(10, 1.5, r); err == nil {
		t.Error("Gnp accepted p > 1")
	}
	if _, err := Gnp(10, -0.1, r); err == nil {
		t.Error("Gnp accepted p < 0")
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(4)
	for _, tc := range []struct{ n, d int }{{10, 3}, {50, 4}, {100, 7}, {64, 16}, {8, 2}} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("RandomRegular(%d,%d) invalid: %v", tc.n, tc.d, err)
		}
		for v := 0; v < tc.n; v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("RandomRegular(%d,%d) degree(%d)=%d", tc.n, tc.d, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	r := rng.New(5)
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, r); err == nil {
		t.Error("d >= n accepted")
	}
	if _, err := RandomRegular(4, -1, r); err == nil {
		t.Error("negative d accepted")
	}
	g, err := RandomRegular(5, 0, r)
	if err != nil || g.M() != 0 {
		t.Errorf("RandomRegular(5,0) = %v, %v", g, err)
	}
}

func TestRandomRegularConnectedWhp(t *testing.T) {
	// Random 3-regular graphs are connected w.h.p.; at n=100 a
	// disconnected sample over 20 draws would be extraordinary.
	r := rng.New(6)
	connected := 0
	for i := 0; i < 20; i++ {
		g, err := RandomRegular(100, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		if IsConnected(g) {
			connected++
		}
	}
	if connected < 18 {
		t.Errorf("only %d/20 random 3-regular graphs connected", connected)
	}
}

func TestWattsStrogatz(t *testing.T) {
	r := rng.New(7)
	g, err := WattsStrogatz(200, 6, 0.1, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 600 {
		t.Errorf("WS(200,6) has %d edges, want 600", g.M())
	}
	// beta = 0 is the pure ring lattice.
	ring, err := WattsStrogatz(50, 4, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ring.IsRegular() || ring.Degree(0) != 4 {
		t.Error("WS(beta=0) is not the 4-regular ring lattice")
	}
	if !g.IsRegular() {
		// With rewiring, degrees deviate — only the far endpoint moves.
		t.Log("rewired WS irregular as expected")
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	r := rng.New(8)
	if _, err := WattsStrogatz(10, 3, 0.1, r); err == nil {
		t.Error("odd d accepted")
	}
	if _, err := WattsStrogatz(10, 4, 1.5, r); err == nil {
		t.Error("beta > 1 accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	r := rng.New(9)
	g, err := BarabasiAlbert(300, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !IsConnected(g) {
		t.Error("BA graph disconnected")
	}
	// m0 clique edges + m per subsequent vertex.
	wantM := 3*4/2 + (300-4)*3
	if g.M() != wantM {
		t.Errorf("BA(300,3) has %d edges, want %d", g.M(), wantM)
	}
	// Preferential attachment produces a hub: max degree far above m.
	if g.MaxDegree() < 10 {
		t.Errorf("BA max degree %d suspiciously small", g.MaxDegree())
	}
	if _, err := BarabasiAlbert(3, 5, r); err == nil {
		t.Error("BA with m >= n accepted")
	}
}

func TestConnectedGnp(t *testing.T) {
	r := rng.New(10)
	g, err := ConnectedGnp(100, 0.08, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(g) {
		t.Error("ConnectedGnp returned disconnected graph")
	}
	// Hopeless density must error out rather than loop forever.
	if _, err := ConnectedGnp(100, 0.001, r, 3); err == nil {
		t.Error("ConnectedGnp at hopeless density succeeded")
	}
}

func TestRandomBuildersDeterministic(t *testing.T) {
	g1, err := RandomRegular(60, 4, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomRegular(60, 4, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("same-seed graphs differ in size")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same-seed graphs differ at edge %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

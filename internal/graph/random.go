package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"div/internal/rng"
)

// Gnp returns an Erdős–Rényi random graph G(n,p): each of the n(n-1)/2
// possible edges is present independently with probability p. For
// p ≥ 2(1+ε)log(n)/n these are expanders with λ ≲ 2/√(np) w.h.p.
// (paper, "Graphs with small second eigenvalue").
//
// Sparse p uses geometric skipping so the cost is O(n + m) rather than
// O(n²).
func Gnp(n int, p float64, r *rand.Rand) (*Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: Gnp probability %v out of [0,1]", p)
	}
	var edges []Edge
	switch {
	case p == 0:
		// no edges
	case p == 1:
		return Complete(n).WithName(fmt.Sprintf("gnp(n=%d,p=1)", n)), nil
	default:
		// Batagelj–Brandes skipping over the lexicographic edge order.
		v, w := 1, -1
		lq := logOneMinus(p)
		for v < n {
			w += 1 + geometricSkip(r, lq)
			for w >= v && v < n {
				w -= v
				v++
			}
			if v < n {
				edges = append(edges, Edge{U: w, V: v})
			}
		}
	}
	g, err := NewFromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return g.WithName(fmt.Sprintf("gnp(n=%d,p=%g)", n, p)), nil
}

// logOneMinus returns log(1-p) computed stably for the skipping trick.
func logOneMinus(p float64) float64 {
	return math.Log1p(-p)
}

// maxGeometricSkip caps the skip count: large enough to jump past any
// representable pair range in one step, small enough that a caller's
// position + 1 + skip can never overflow int. Without the cap, tiny p
// (lq → 0⁻) makes log(u)/lq exceed the int64 range and the float→int
// conversion is undefined (on amd64 it wraps negative, which would
// walk the Batagelj–Brandes cursor backwards forever).
const maxGeometricSkip = 1 << 62

// skipFromUniform converts a uniform u ∈ (0,1) into a Geometric
// skip count given lq = log(1-p) < 0, clamped to maxGeometricSkip.
func skipFromUniform(u, lq float64) int {
	f := math.Log(u) / lq
	if f >= maxGeometricSkip {
		return maxGeometricSkip
	}
	return int(f)
}

// geometricSkip returns a Geometric(p)-distributed skip count given
// lq = log(1-p), i.e. the number of failures before the next success.
func geometricSkip(r *rand.Rand, lq float64) int {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return skipFromUniform(u, lq)
}

// geometricSkipCounter is geometricSkip driven by a per-row Philox
// counter stream.
func geometricSkipCounter(c *rng.Counter, lq float64) int {
	u := c.Float64()
	for u == 0 {
		u = c.Float64()
	}
	return skipFromUniform(u, lq)
}

// RandomRegular returns a uniform-ish random d-regular simple graph on
// n vertices via the configuration model with rejection: d·n half-edges
// are paired uniformly; pairings creating self-loops or multi-edges are
// rerolled, and the whole pairing is restarted if it gets stuck. For
// d = o(√n) the result is asymptotically uniform, and random d-regular
// graphs satisfy λ = O(1/√d) w.h.p. (paper's second example family).
//
// Requires 0 ≤ d < n and d·n even.
func RandomRegular(n, d int, r *rand.Rand) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular requires 0 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular requires n*d even, got n=%d d=%d", n, d)
	}
	if d == 0 {
		g, err := NewFromEdges(n, nil)
		if err != nil {
			return nil, err
		}
		return g.WithName(fmt.Sprintf("randomRegular(n=%d,d=0)", n)), nil
	}
	const maxAttempts = 1000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		edges, ok := tryPairing(n, d, r)
		if !ok {
			continue
		}
		g, err := NewFromEdges(n, edges)
		if err != nil {
			// Should be impossible: tryPairing guarantees simplicity.
			return nil, fmt.Errorf("graph: RandomRegular produced invalid pairing: %w", err)
		}
		return g.WithName(fmt.Sprintf("randomRegular(n=%d,d=%d)", n, d)), nil
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d,d=%d) failed after %d attempts", n, d, maxAttempts)
}

// tryPairing attempts one configuration-model pairing that avoids
// self-loops and multi-edges by local retries, giving up (ok=false)
// when the remaining half-edges admit no valid pair.
func tryPairing(n, d int, r *rand.Rand) ([]Edge, bool) {
	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle(r, stubs)
	adj := make(map[int64]bool, n*d/2)
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	edges := make([]Edge, 0, n*d/2)
	// Repeatedly take the last stub and pair it with a random earlier
	// stub; on conflict retry a bounded number of times.
	for len(stubs) > 0 {
		u := stubs[len(stubs)-1]
		stubs = stubs[:len(stubs)-1]
		paired := false
		for try := 0; try < 4*len(stubs)+16 && len(stubs) > 0; try++ {
			j := r.IntN(len(stubs))
			v := stubs[j]
			if v == u || adj[key(u, v)] {
				continue
			}
			stubs[j] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			adj[key(u, v)] = true
			edges = append(edges, Edge{U: int(u), V: int(v)})
			paired = true
			break
		}
		if !paired {
			return nil, false
		}
	}
	return edges, true
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex connects to its d/2 nearest neighbours on each side, with each
// edge independently rewired to a uniform random non-conflicting
// endpoint with probability beta. d must be even, 2 ≤ d < n.
func WattsStrogatz(n, d int, beta float64, r *rand.Rand) (*Graph, error) {
	if d%2 != 0 || d < 2 || d >= n {
		return nil, fmt.Errorf("graph: WattsStrogatz requires even 2 <= d < n, got d=%d n=%d", d, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: WattsStrogatz beta %v out of [0,1]", beta)
	}
	adj := make(map[int64]bool, n*d/2)
	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	var edges []Edge
	add := func(u, v int) {
		adj[key(u, v)] = true
		edges = append(edges, Edge{U: u, V: v})
	}
	for v := 0; v < n; v++ {
		for s := 1; s <= d/2; s++ {
			add(v, (v+s)%n)
		}
	}
	for i := range edges {
		if !rng.Bernoulli(r, beta) {
			continue
		}
		e := edges[i]
		// Rewire the far endpoint to a uniform valid target.
		for try := 0; try < 64; try++ {
			t := r.IntN(n)
			if t == e.U || t == e.V || adj[key(e.U, t)] {
				continue
			}
			delete(adj, key(e.U, e.V))
			adj[key(e.U, t)] = true
			edges[i].V = t
			break
		}
	}
	g, err := NewFromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return g.WithName(fmt.Sprintf("wattsStrogatz(n=%d,d=%d,beta=%g)", n, d, beta)), nil
}

// BarabasiAlbert returns a preferential-attachment graph: starting from
// a small clique on m0 = m+1 vertices, each new vertex attaches to m
// distinct existing vertices chosen with probability proportional to
// degree. Heavy-tailed degrees; the canonical irregular test bed for
// the vertex vs. edge process comparison (E10).
func BarabasiAlbert(n, m int, r *rand.Rand) (*Graph, error) {
	if m < 1 || m+1 > n {
		return nil, fmt.Errorf("graph: BarabasiAlbert requires 1 <= m < n, got m=%d n=%d", m, n)
	}
	// targets holds one entry per half-edge endpoint, so a uniform draw
	// from it is a degree-proportional draw.
	var targets []int32
	var edges []Edge
	m0 := m + 1
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			edges = append(edges, Edge{U: u, V: v})
			targets = append(targets, int32(u), int32(v))
		}
	}
	chosen := make(map[int32]bool, m)
	picks := make([]int32, 0, m)
	for v := m0; v < n; v++ {
		clear(chosen)
		for len(chosen) < m {
			t := targets[r.IntN(len(targets))]
			chosen[t] = true
		}
		// Drain the set in sorted order: map iteration order is
		// randomized per range, and the order entries land in targets
		// feeds back into every later degree-proportional draw, so the
		// same seed would otherwise build a different graph each run.
		// Sorting fixes the order without changing the attachment law
		// (the chosen set is identical; only list layout was random).
		picks = picks[:0]
		for t := range chosen {
			picks = append(picks, t)
		}
		slices.Sort(picks)
		for _, t := range picks {
			edges = append(edges, Edge{U: v, V: int(t)})
			targets = append(targets, int32(v), t)
		}
	}
	g, err := NewFromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return g.WithName(fmt.Sprintf("barabasiAlbert(n=%d,m=%d)", n, m)), nil
}

// ConnectedGnp draws G(n,p) repeatedly until the sample is connected,
// up to maxTries attempts. It exists because the voting processes are
// defined on connected graphs.
func ConnectedGnp(n int, p float64, r *rand.Rand, maxTries int) (*Graph, error) {
	for i := 0; i < maxTries; i++ {
		g, err := Gnp(n, p, r)
		if err != nil {
			return nil, err
		}
		if IsConnected(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: ConnectedGnp(n=%d,p=%g) not connected after %d tries", n, p, maxTries)
}

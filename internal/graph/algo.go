package graph

import (
	"fmt"
	"sync"
)

// BFS performs a breadth-first search from src and returns the distance
// (in edges) to every vertex, with -1 for unreachable vertices.
func BFS(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// connScratch is the reusable state behind IsConnected: a visited
// bitset (1 bit/vertex instead of BFS's 8-byte distance) and a queue
// slab, pooled so ConnectedGnp's retry loop at n = 10⁶–10⁷ probes each
// candidate without churning ~80 MB of heap per attempt.
type connScratch struct {
	visited []uint64
	queue   []int32
}

var connPool = sync.Pool{New: func() any { return &connScratch{} }}

// IsConnected reports whether g is connected. The empty graph and the
// single vertex are connected by convention. Scratch state is pooled
// and reused across calls, so steady-state invocations do not
// allocate.
func IsConnected(g *Graph) bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	sc := connPool.Get().(*connScratch)
	defer connPool.Put(sc)
	words := (n + 63) / 64
	if cap(sc.visited) < words {
		sc.visited = make([]uint64, words)
	}
	visited := sc.visited[:words]
	clear(visited)
	if cap(sc.queue) < n {
		sc.queue = make([]int32, n)
	}
	queue := sc.queue[:n]

	visited[0] |= 1
	queue[0] = 0
	head, tail := 0, 1
	for head < tail {
		v := queue[head]
		head++
		for _, w := range g.Neighbors(int(v)) {
			if visited[w>>6]&(1<<(uint(w)&63)) == 0 {
				visited[w>>6] |= 1 << (uint(w) & 63)
				queue[tail] = w
				tail++
			}
		}
	}
	return tail == n
}

// Components returns the connected components of g as vertex lists,
// ordered by smallest contained vertex.
func Components(g *Graph) [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int32{int32(s)}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, int(v))
			for _, w := range g.Neighbors(int(v)) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Eccentricity returns the maximum BFS distance from v to any reachable
// vertex, or an error if some vertex is unreachable.
func Eccentricity(g *Graph, v int) (int, error) {
	dist := BFS(g, v)
	ecc := 0
	for u, d := range dist {
		if d == -1 {
			return 0, fmt.Errorf("graph: vertex %d unreachable from %d", u, v)
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}

// Diameter returns the exact diameter by running a BFS from every
// vertex: O(n·m). Intended for the modest sizes used in tests and
// reports, not for the largest simulations.
func Diameter(g *Graph) (int, error) {
	diam := 0
	for v := 0; v < g.N(); v++ {
		ecc, err := Eccentricity(g, v)
		if err != nil {
			return 0, err
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// IsBipartite reports whether g is 2-colourable. Bipartite graphs make
// the random walk periodic (λ_n = -1), violating the paper's
// aperiodicity assumption.
func IsBipartite(g *Graph) bool {
	color := make([]int8, g.N()) // 0 unseen, 1/2 sides
	for s := 0; s < g.N(); s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		stack := []int32{int32(s)}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(int(v)) {
				if color[w] == 0 {
					color[w] = 3 - color[v]
					stack = append(stack, w)
				} else if color[w] == color[v] {
					return false
				}
			}
		}
	}
	return true
}

// DegreeStats summarizes the degree sequence of a graph.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// PiMin and PiMax are the extreme stationary probabilities
	// π_v = d(v)/2m; the paper assumes π_min = Θ(1/n).
	PiMin, PiMax float64
}

// Degrees computes degree statistics. The graph must have at least one
// edge for the stationary fields to be meaningful.
func Degrees(g *Graph) DegreeStats {
	s := DegreeStats{Min: g.MinDegree(), Max: g.MaxDegree()}
	if g.N() > 0 {
		s.Mean = float64(g.DegreeSum()) / float64(g.N())
	}
	if g.M() > 0 {
		total := float64(g.DegreeSum())
		s.PiMin = float64(s.Min) / total
		s.PiMax = float64(s.Max) / total
	}
	return s
}

// Triangles returns the number of triangles in g, counted once each.
// O(Σ_v d(v)²) via neighbourhood intersection; fine for test sizes.
func Triangles(g *Graph) int64 {
	var count int64
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		for i, u := range nb {
			if int(u) <= v {
				continue
			}
			for _, w := range nb[i+1:] {
				if g.HasEdge(int(u), int(w)) {
					count++
				}
			}
		}
	}
	return count
}

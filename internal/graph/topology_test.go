package graph

import (
	"fmt"
	"sort"
	"testing"
)

// implicitCase pairs an implicit topology with its materializing
// builder so the twin tests can compare them edge for edge.
type implicitCase struct {
	topo Topology
	twin *Graph
}

func implicitCases(t testing.TB) []implicitCase {
	t.Helper()
	mk := func(topo Topology, err error, twin *Graph) implicitCase {
		t.Helper()
		if err != nil {
			t.Fatalf("constructing implicit topology: %v", err)
		}
		return implicitCase{topo: topo, twin: twin.WithName(topo.Name())}
	}
	var cases []implicitCase
	for _, n := range []int{2, 3, 5, 16} {
		c, err := NewImplicitComplete(n)
		cases = append(cases, mk(c, err, Complete(n)))
	}
	for _, n := range []int{3, 4, 7, 24} {
		c, err := NewImplicitCycle(n)
		cases = append(cases, mk(c, err, Cycle(n)))
	}
	for _, n := range []int{2, 3, 8, 25} {
		c, err := NewImplicitPath(n)
		cases = append(cases, mk(c, err, Path(n)))
	}
	for _, rc := range [][2]int{{3, 3}, {3, 5}, {4, 4}, {6, 8}} {
		c, err := NewImplicitTorus(rc[0], rc[1])
		cases = append(cases, mk(c, err, Torus(rc[0], rc[1])))
	}
	for _, d := range []int{1, 2, 3, 5} {
		c, err := NewImplicitHypercube(d)
		cases = append(cases, mk(c, err, Hypercube(d)))
	}
	for _, sc := range []struct {
		n       int
		strides []int
	}{
		{7, []int{1}},
		{12, []int{1, 3}},
		{30, []int{2, 5, 7}},
		{48, []int{1, 2, 3, 4}},
	} {
		c, err := NewImplicitCirculant(sc.n, sc.strides)
		cases = append(cases, mk(c, err, Circulant(sc.n, sc.strides)))
	}
	return cases
}

// checkTopologyTwin asserts the full Topology contract of topo against
// a materialized CSR twin: vertex count, per-vertex degree, sorted
// neighbour enumeration entry for entry, aggregate degree statistics
// (handshake sum), and — when both sides expose the arc hook — the
// vertex-major arc map.
func checkTopologyTwin(t *testing.T, topo Topology, twin *Graph) {
	t.Helper()
	if topo.N() != twin.N() {
		t.Fatalf("N: implicit %d, twin %d", topo.N(), twin.N())
	}
	if topo.DegreeSum() != twin.DegreeSum() {
		t.Errorf("DegreeSum: implicit %d, twin %d", topo.DegreeSum(), twin.DegreeSum())
	}
	if topo.MinDegree() != twin.MinDegree() {
		t.Errorf("MinDegree: implicit %d, twin %d", topo.MinDegree(), twin.MinDegree())
	}
	n := topo.N()
	var handshake int64
	for v := 0; v < n; v++ {
		d := topo.Degree(v)
		if d != twin.Degree(v) {
			t.Fatalf("Degree(%d): implicit %d, twin %d", v, d, twin.Degree(v))
		}
		handshake += int64(d)
		for i := 0; i < d; i++ {
			if got, want := topo.Neighbor(v, i), twin.Neighbor(v, i); got != want {
				t.Fatalf("Neighbor(%d, %d): implicit %d, twin %d", v, i, got, want)
			}
		}
	}
	if handshake != topo.DegreeSum() {
		t.Errorf("handshake sum %d != DegreeSum %d", handshake, topo.DegreeSum())
	}
	if handshake%2 != 0 {
		t.Errorf("handshake sum %d is odd", handshake)
	}
	at, ok := topo.(ArcTopology)
	if !ok {
		return
	}
	for a := int64(0); a < topo.DegreeSum(); a++ {
		v, w := at.Arc(a)
		tv, tw := twin.Arc(a)
		if v != tv || w != tw {
			t.Fatalf("Arc(%d): implicit (%d,%d), twin (%d,%d)", a, v, w, tv, tw)
		}
	}
}

func TestImplicitTopologyTwins(t *testing.T) {
	for _, tc := range implicitCases(t) {
		tc := tc
		t.Run(tc.topo.Name(), func(t *testing.T) {
			checkTopologyTwin(t, tc.topo, tc.twin)
			if tc.topo.Name() != tc.twin.Name() {
				t.Errorf("name mismatch: implicit %q, twin %q", tc.topo.Name(), tc.twin.Name())
			}
		})
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	for _, tc := range implicitCases(t) {
		tc := tc
		t.Run(tc.topo.Name(), func(t *testing.T) {
			g, err := Materialize(tc.topo)
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			if g.N() != tc.twin.N() || g.M() != tc.twin.M() {
				t.Fatalf("materialized n=%d m=%d, twin n=%d m=%d", g.N(), g.M(), tc.twin.N(), tc.twin.M())
			}
			for v := 0; v < g.N(); v++ {
				a := g.Neighbors(v)
				b := tc.twin.Neighbors(v)
				if len(a) != len(b) {
					t.Fatalf("vertex %d: %d vs %d neighbours", v, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("vertex %d neighbour %d: %d vs %d", v, i, a[i], b[i])
					}
				}
			}
		})
	}
	// A *Graph materializes to itself, not a copy.
	g := Torus(3, 4)
	if got, err := Materialize(g); err != nil || got != g {
		t.Fatalf("Materialize(*Graph) = (%p, %v), want identity %p", got, err, g)
	}
}

func TestImplicitConstructorValidation(t *testing.T) {
	bad := []struct {
		name string
		err  error
	}{
		{"complete n=1", errOf(NewImplicitComplete(1))},
		{"cycle n=2", errOf(NewImplicitCycle(2))},
		{"path n=1", errOf(NewImplicitPath(1))},
		{"torus 2x5", errOf(NewImplicitTorus(2, 5))},
		{"hypercube d=0", errOf(NewImplicitHypercube(0))},
		{"hypercube d=26", errOf(NewImplicitHypercube(26))},
		{"circulant no strides", errOf(NewImplicitCirculant(8, nil))},
		{"circulant antipodal", errOf(NewImplicitCirculant(8, []int{4}))},
		{"circulant duplicate", errOf(NewImplicitCirculant(9, []int{2, 2}))},
		{"circulant stride 0", errOf(NewImplicitCirculant(9, []int{0}))},
		{"hashedregular odd n", errOf(NewHashedRegular(7, 3, 1))},
		{"hashedregular n=2", errOf(NewHashedRegular(2, 1, 1))},
		{"hashedregular d=0", errOf(NewHashedRegular(8, 0, 1))},
		{"hashedregular d=n", errOf(NewHashedRegular(8, 8, 1))},
	}
	for _, tc := range bad {
		if tc.err == nil {
			t.Errorf("%s: expected constructor error", tc.name)
		}
	}
}

func errOf[T any](_ T, err error) error { return err }

// TestHashedRegular checks the structural properties the matching
// construction guarantees: every matching is a fixed-point-free
// involution (so the multigraph is symmetric and exactly d-regular),
// and the construction is deterministic in (n, d, seed).
func TestHashedRegular(t *testing.T) {
	for _, tc := range []struct {
		n, d int
		seed uint64
	}{
		{4, 1, 1}, {10, 3, 7}, {64, 4, 42}, {100, 6, 3}, {254, 5, 99},
	} {
		name := fmt.Sprintf("n=%d,d=%d,seed=%d", tc.n, tc.d, tc.seed)
		t.Run(name, func(t *testing.T) {
			h, err := NewHashedRegular(tc.n, tc.d, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			if h.N() != tc.n || h.MinDegree() != tc.d || h.DegreeSum() != int64(tc.n)*int64(tc.d) {
				t.Fatalf("aggregate mismatch: N=%d MinDegree=%d DegreeSum=%d", h.N(), h.MinDegree(), h.DegreeSum())
			}
			for v := 0; v < tc.n; v++ {
				for i := 0; i < tc.d; i++ {
					w := h.Neighbor(v, i)
					if w < 0 || w >= tc.n {
						t.Fatalf("Neighbor(%d,%d) = %d out of range", v, i, w)
					}
					if w == v {
						t.Fatalf("matching %d has fixed point %d", i, v)
					}
					if back := h.Neighbor(w, i); back != v {
						t.Fatalf("matching %d not an involution: %d -> %d -> %d", i, v, w, back)
					}
				}
			}
			// Arc map is consistent with Neighbor.
			for a := int64(0); a < h.DegreeSum(); a++ {
				v, w := h.Arc(a)
				if want := h.Neighbor(v, int(a%int64(tc.d))); w != want {
					t.Fatalf("Arc(%d) head %d, want %d", a, w, want)
				}
			}
			// Determinism: a second instance with the same key agrees.
			h2, _ := NewHashedRegular(tc.n, tc.d, tc.seed)
			hOther, _ := NewHashedRegular(tc.n, tc.d, tc.seed+1)
			same, diff := true, false
			for v := 0; v < tc.n; v++ {
				for i := 0; i < tc.d; i++ {
					if h.Neighbor(v, i) != h2.Neighbor(v, i) {
						same = false
					}
					if h.Neighbor(v, i) != hOther.Neighbor(v, i) {
						diff = true
					}
				}
			}
			if !same {
				t.Error("same (n,d,seed) produced different matchings")
			}
			if !diff && tc.n > 4 {
				t.Error("different seeds produced identical matchings")
			}
		})
	}
}

func TestCSRMemEstimate(t *testing.T) {
	for _, tc := range implicitCases(t) {
		adj, arc := CSRMemEstimate(tc.topo.N(), tc.topo.DegreeSum())
		if adj <= 0 || arc <= 0 {
			t.Fatalf("%s: non-positive estimate adj=%d arc=%d", tc.topo.Name(), adj, arc)
		}
		// The estimate must price at least the twin's actual CSR arrays.
		actual := 8*int64(tc.twin.N()+1) + 4*int64(len(tc.twin.Arcs()))
		if adj != actual {
			t.Errorf("%s: adjacency estimate %d != actual CSR bytes %d", tc.topo.Name(), adj, actual)
		}
	}
}

// FuzzTopologyTwin drives randomized family parameters through the full
// twin contract.
func FuzzTopologyTwin(f *testing.F) {
	f.Add(uint8(0), uint8(12), uint8(3))
	f.Add(uint8(1), uint8(9), uint8(0))
	f.Add(uint8(2), uint8(17), uint8(0))
	f.Add(uint8(3), uint8(4), uint8(5))
	f.Add(uint8(4), uint8(4), uint8(0))
	f.Add(uint8(5), uint8(20), uint8(7))
	f.Fuzz(func(t *testing.T, fam, p1, p2 uint8) {
		var topo Topology
		var twin *Graph
		switch fam % 6 {
		case 0:
			n := 2 + int(p1)%30
			c, err := NewImplicitComplete(n)
			if err != nil {
				t.Fatal(err)
			}
			topo, twin = c, Complete(n)
		case 1:
			n := 3 + int(p1)%30
			c, err := NewImplicitCycle(n)
			if err != nil {
				t.Fatal(err)
			}
			topo, twin = c, Cycle(n)
		case 2:
			n := 2 + int(p1)%30
			c, err := NewImplicitPath(n)
			if err != nil {
				t.Fatal(err)
			}
			topo, twin = c, Path(n)
		case 3:
			r, c := 3+int(p1)%6, 3+int(p2)%6
			tt, err := NewImplicitTorus(r, c)
			if err != nil {
				t.Fatal(err)
			}
			topo, twin = tt, Torus(r, c)
		case 4:
			d := 1 + int(p1)%6
			c, err := NewImplicitHypercube(d)
			if err != nil {
				t.Fatal(err)
			}
			topo, twin = c, Hypercube(d)
		case 5:
			n := 7 + int(p1)%40
			smax := (n - 1) / 2
			seen := map[int]bool{}
			var strides []int
			for _, s := range []int{1 + int(p2)%smax, 1 + int(p1/3)%smax, 1 + int(p2/5)%smax} {
				if !seen[s] {
					seen[s] = true
					strides = append(strides, s)
				}
			}
			sort.Ints(strides)
			c, err := NewImplicitCirculant(n, strides)
			if err != nil {
				t.Fatal(err)
			}
			topo, twin = c, Circulant(n, strides)
		}
		checkTopologyTwin(t, topo, twin.WithName(topo.Name()))
	})
}

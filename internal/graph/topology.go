package graph

import (
	"fmt"
	"math/bits"
	"sort"
)

// Topology is the read-only graph view the stepping kernels actually
// consume: vertex count, per-vertex degree, and indexed neighbour
// lookup. A materialized *Graph satisfies it (CSR-backed), and the
// implicit families below satisfy it with O(1) state — no adjacency is
// ever built — which is what makes n = 10⁶–10⁷ runs affordable: the
// per-vertex structures drop from O(n + m) CSR plus ArcIndex to a
// handful of integers.
//
// Contract: Neighbor(v, i) for i in [0, Degree(v)) must enumerate v's
// neighbours in ascending vertex order, matching the CSR twin's sorted
// neighbour lists entry for entry, so that a kernel drawing a uniform
// neighbour *index* sees the same vertex on the implicit backend and on
// Materialize(t) — the byte-identity contract the blocked kernels pin.
// (HashedRegular is the one exception: its enumeration is ordered by
// matching, not by vertex; see its doc comment.)
//
// Implementations must be immutable and safe for concurrent use.
type Topology interface {
	N() int
	Degree(v int) int
	Neighbor(v, i int) int
	DegreeSum() int64
	MinDegree() int
	Name() string
}

// ArcTopology is the optional arc-unit hook: a Topology that can map a
// directed-arc index a in [0, DegreeSum()) to its (tail, head) pair in
// CSR arc order (vertex-major, neighbours ascending). The edge-process
// kernels need it; regular families implement it by v = a/d, i = a mod d.
type ArcTopology interface {
	Topology
	Arc(a int64) (v, w int)
}

// *Graph satisfies ArcTopology: Arc reads the shared ArcIndex tails.
func (g *Graph) Arc(a int64) (v, w int) {
	return int(g.ArcTails()[a]), int(g.adj[a])
}

// Materialize builds the CSR twin of a topology by enumerating every
// neighbour list. A *Graph materializes to itself. Topologies that are
// multigraphs (HashedRegular can repeat an edge across matchings)
// return the duplicate-edge error from NewFromEdges.
func Materialize(t Topology) (*Graph, error) {
	if g, ok := t.(*Graph); ok {
		return g, nil
	}
	n := t.N()
	edges := make([]Edge, 0, t.DegreeSum()/2)
	for v := 0; v < n; v++ {
		d := t.Degree(v)
		for i := 0; i < d; i++ {
			if w := t.Neighbor(v, i); v < w {
				edges = append(edges, Edge{U: v, V: w})
			}
		}
	}
	g, err := NewFromEdges(n, edges)
	if err != nil {
		return nil, fmt.Errorf("graph: materialize %s: %w", t.Name(), err)
	}
	return g.WithName(t.Name()), nil
}

// MustMaterialize is Materialize that panics on error, for tests and
// statically known-good families.
func MustMaterialize(t Topology) *Graph {
	g, err := Materialize(t)
	if err != nil {
		panic(err)
	}
	return g
}

// CSRMemEstimate predicts the resident bytes a topology would cost if
// materialized: the CSR adjacency (offsets at 8 bytes/vertex, heads at
// 4 bytes/arc) and the shared ArcIndex (tails and rev at 4 bytes/arc
// each, the lazy weight block at 17 bytes/vertex) — the same pricing
// Graph.MemBytes charges the artifact cache. An implicit backend costs
// none of it; cmd/graphinfo prints predicted vs actual so the saving is
// visible before a run.
func CSRMemEstimate(n int, degreeSum int64) (adjBytes, arcIndexBytes int64) {
	adjBytes = 8*int64(n+1) + 4*degreeSum
	arcIndexBytes = 8*degreeSum + 17*int64(n)
	return adjBytes, arcIndexBytes
}

// ---------------------------------------------------------------------
// Implicit families. Each holds O(1) state (plus the parameter list)
// and is constructed by a New* function that validates the parameters
// the corresponding materializing builder would panic on.
// ---------------------------------------------------------------------

// ImplicitComplete is K_n without the n(n-1) adjacency entries: the
// sorted neighbour list of v is 0..n-1 with v removed, so the i-th
// neighbour is i + (i ≥ v) — the same arithmetic the complete-graph
// schedulers already use.
type ImplicitComplete struct{ n int }

// NewImplicitComplete returns the implicit K_n. n must be ≥ 2.
func NewImplicitComplete(n int) (*ImplicitComplete, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: implicit complete requires n >= 2, got %d", n)
	}
	return &ImplicitComplete{n: n}, nil
}

func (t *ImplicitComplete) N() int         { return t.n }
func (t *ImplicitComplete) Degree(int) int { return t.n - 1 }
func (t *ImplicitComplete) Neighbor(v, i int) int {
	if i >= v {
		return i + 1
	}
	return i
}
func (t *ImplicitComplete) DegreeSum() int64 { return int64(t.n) * int64(t.n-1) }
func (t *ImplicitComplete) MinDegree() int   { return t.n - 1 }
func (t *ImplicitComplete) Name() string     { return fmt.Sprintf("complete(n=%d)", t.n) }
func (t *ImplicitComplete) Arc(a int64) (v, w int) {
	d := int64(t.n - 1)
	return int(a / d), t.Neighbor(int(a/d), int(a%d))
}

// ImplicitCycle is C_n: each vertex's sorted neighbours are
// {v-1 mod n, v+1 mod n}.
type ImplicitCycle struct{ n int }

// NewImplicitCycle returns the implicit n-cycle. n must be ≥ 3.
func NewImplicitCycle(n int) (*ImplicitCycle, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: implicit cycle requires n >= 3, got %d", n)
	}
	return &ImplicitCycle{n: n}, nil
}

func (t *ImplicitCycle) N() int         { return t.n }
func (t *ImplicitCycle) Degree(int) int { return 2 }
func (t *ImplicitCycle) Neighbor(v, i int) int {
	a := v - 1
	if a < 0 {
		a = t.n - 1
	}
	b := v + 1
	if b == t.n {
		b = 0
	}
	if a > b {
		a, b = b, a
	}
	if i == 0 {
		return a
	}
	return b
}
func (t *ImplicitCycle) DegreeSum() int64 { return 2 * int64(t.n) }
func (t *ImplicitCycle) MinDegree() int   { return 2 }
func (t *ImplicitCycle) Name() string     { return fmt.Sprintf("cycle(n=%d)", t.n) }
func (t *ImplicitCycle) Arc(a int64) (v, w int) {
	return int(a / 2), t.Neighbor(int(a/2), int(a%2))
}

// ImplicitPath is P_n: endpoint degrees 1, interior degrees 2, sorted
// neighbours {v-1, v+1}.
type ImplicitPath struct{ n int }

// NewImplicitPath returns the implicit n-path. n must be ≥ 2.
func NewImplicitPath(n int) (*ImplicitPath, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: implicit path requires n >= 2, got %d", n)
	}
	return &ImplicitPath{n: n}, nil
}

func (t *ImplicitPath) N() int { return t.n }
func (t *ImplicitPath) Degree(v int) int {
	if v == 0 || v == t.n-1 {
		return 1
	}
	return 2
}
func (t *ImplicitPath) Neighbor(v, i int) int {
	if v == 0 {
		return 1
	}
	if v == t.n-1 {
		return t.n - 2
	}
	return v - 1 + 2*i
}
func (t *ImplicitPath) DegreeSum() int64 { return 2 * int64(t.n-1) }
func (t *ImplicitPath) MinDegree() int   { return 1 }
func (t *ImplicitPath) Name() string     { return fmt.Sprintf("path(n=%d)", t.n) }

// Arc exploits P_n's CSR layout directly: vertex 0 owns arc 0, vertex
// v ≥ 1 owns arcs 2v-1 .. 2v-1+Degree(v)-1.
func (t *ImplicitPath) Arc(a int64) (v, w int) {
	if a == 0 {
		return 0, 1
	}
	v = int((a + 1) / 2)
	i := int(a - int64(2*v-1))
	return v, t.Neighbor(v, i)
}

// ImplicitTorus is the rows×cols torus grid (wrap-around in both
// dimensions), 4-regular for rows, cols ≥ 3. Vertex (r, c) is
// r·cols + c, matching the materializing builder.
type ImplicitTorus struct {
	rows, cols int
}

// NewImplicitTorus returns the implicit torus. rows and cols must be ≥ 3.
func NewImplicitTorus(rows, cols int) (*ImplicitTorus, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: implicit torus requires rows,cols >= 3, got %dx%d", rows, cols)
	}
	return &ImplicitTorus{rows: rows, cols: cols}, nil
}

func (t *ImplicitTorus) N() int         { return t.rows * t.cols }
func (t *ImplicitTorus) Degree(int) int { return 4 }
func (t *ImplicitTorus) Neighbor(v, i int) int {
	r, c := v/t.cols, v%t.cols
	up := r - 1
	if up < 0 {
		up = t.rows - 1
	}
	down := r + 1
	if down == t.rows {
		down = 0
	}
	left := c - 1
	if left < 0 {
		left = t.cols - 1
	}
	right := c + 1
	if right == t.cols {
		right = 0
	}
	// Sort the four neighbours with a fixed network; rows,cols ≥ 3
	// guarantees they are distinct.
	a := up*t.cols + c
	b := r*t.cols + left
	x := r*t.cols + right
	y := down*t.cols + c
	if a > b {
		a, b = b, a
	}
	if x > y {
		x, y = y, x
	}
	if a > x {
		a, x = x, a
	}
	if b > y {
		b, y = y, b
	}
	if b > x {
		b, x = x, b
	}
	switch i {
	case 0:
		return a
	case 1:
		return b
	case 2:
		return x
	default:
		return y
	}
}
func (t *ImplicitTorus) DegreeSum() int64 { return 4 * int64(t.rows) * int64(t.cols) }
func (t *ImplicitTorus) MinDegree() int   { return 4 }
func (t *ImplicitTorus) Name() string     { return fmt.Sprintf("torus(%dx%d)", t.rows, t.cols) }
func (t *ImplicitTorus) Arc(a int64) (v, w int) {
	return int(a / 4), t.Neighbor(int(a/4), int(a%4))
}

// ImplicitHypercube is the d-dimensional hypercube Q_d on n = 2^d
// vertices: v's neighbours are v with one bit flipped. In ascending
// order those are the set bits of v flipped from highest to lowest
// (each flip subtracts a power of two, larger powers first), then the
// unset bits flipped from lowest to highest.
type ImplicitHypercube struct{ d int }

// NewImplicitHypercube returns the implicit Q_d. d must be in [1, 25]
// (the materializing builder's range).
func NewImplicitHypercube(d int) (*ImplicitHypercube, error) {
	if d < 1 || d > 25 {
		return nil, fmt.Errorf("graph: implicit hypercube dimension %d out of range [1,25]", d)
	}
	return &ImplicitHypercube{d: d}, nil
}

func (t *ImplicitHypercube) N() int         { return 1 << t.d }
func (t *ImplicitHypercube) Degree(int) int { return t.d }
func (t *ImplicitHypercube) Neighbor(v, i int) int {
	pop := bits.OnesCount32(uint32(v))
	if i < pop {
		// (i+1)-th set bit from the top.
		x := uint32(v)
		for ; i > 0; i-- {
			x &^= 1 << (31 - bits.LeadingZeros32(x))
		}
		return v ^ 1<<(31-bits.LeadingZeros32(x))
	}
	// (i-pop+1)-th unset bit from the bottom, within d bits.
	x := ^uint32(v) & (1<<t.d - 1)
	for i -= pop; i > 0; i-- {
		x &= x - 1
	}
	return v ^ 1<<bits.TrailingZeros32(x)
}
func (t *ImplicitHypercube) DegreeSum() int64 { return int64(t.d) << t.d }
func (t *ImplicitHypercube) MinDegree() int   { return t.d }
func (t *ImplicitHypercube) Name() string     { return fmt.Sprintf("hypercube(d=%d)", t.d) }
func (t *ImplicitHypercube) Arc(a int64) (v, w int) {
	d := int64(t.d)
	return int(a / d), t.Neighbor(int(a/d), int(a%d))
}

// ImplicitCirculant is the circulant graph C_n(s_1..s_L): v is adjacent
// to v ± s_j mod n. Strides must be distinct and in [1, ⌈n/2⌉-1] — the
// antipodal stride n/2 is rejected so the family stays 2L-regular and
// the implicit arc map stays trivial. For interior vertices
// (s_max ≤ v < n-s_max, the overwhelming majority at large n) the
// sorted neighbour list is v + off[i] for the presorted offset table
// [-s_L..-s_1, s_1..s_L]; wrap-around vertices take a small sort.
type ImplicitCirculant struct {
	n       int
	strides []int // ascending
	offs    []int // sorted relative offsets, len 2L
	sMax    int
}

// NewImplicitCirculant returns the implicit circulant. It validates n
// ≥ 3 and the stride constraints above.
func NewImplicitCirculant(n int, strides []int) (*ImplicitCirculant, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: implicit circulant requires n >= 3, got %d", n)
	}
	if len(strides) == 0 {
		return nil, fmt.Errorf("graph: implicit circulant requires at least one stride")
	}
	ss := append([]int(nil), strides...)
	sort.Ints(ss)
	for i, s := range ss {
		if s < 1 || 2*s >= n {
			return nil, fmt.Errorf("graph: implicit circulant stride %d out of range [1,%d] (antipodal strides are not supported implicitly)", s, (n-1)/2)
		}
		if i > 0 && ss[i-1] == s {
			return nil, fmt.Errorf("graph: implicit circulant duplicate stride %d", s)
		}
	}
	l := len(ss)
	offs := make([]int, 2*l)
	for i, s := range ss {
		offs[l-1-i] = -s
		offs[l+i] = s
	}
	return &ImplicitCirculant{n: n, strides: ss, offs: offs, sMax: ss[l-1]}, nil
}

func (t *ImplicitCirculant) N() int         { return t.n }
func (t *ImplicitCirculant) Degree(int) int { return len(t.offs) }
func (t *ImplicitCirculant) Neighbor(v, i int) int {
	if v >= t.sMax && v < t.n-t.sMax {
		return v + t.offs[i]
	}
	// Wrap-around vertex (at most 2·s_max of them): materialize and sort
	// the 2L neighbours on the spot.
	nb := make([]int, len(t.offs))
	for j, o := range t.offs {
		w := v + o
		if w < 0 {
			w += t.n
		} else if w >= t.n {
			w -= t.n
		}
		nb[j] = w
	}
	sort.Ints(nb)
	return nb[i]
}
func (t *ImplicitCirculant) DegreeSum() int64 { return int64(len(t.offs)) * int64(t.n) }
func (t *ImplicitCirculant) MinDegree() int   { return len(t.offs) }
func (t *ImplicitCirculant) Name() string {
	return fmt.Sprintf("circulant(n=%d,strides=%v)", t.n, t.strides)
}
func (t *ImplicitCirculant) Arc(a int64) (v, w int) {
	d := int64(len(t.offs))
	return int(a / d), t.Neighbor(int(a/d), int(a%d))
}

// Strides returns the ascending stride list (read-only).
func (t *ImplicitCirculant) Strides() []int { return t.strides }

// HashedRegular is a d-regular multigraph on n vertices built from d
// pseudorandom perfect matchings, evaluated on the fly: matching m is
// the fixed-point-free involution v ↦ σ_m(σ_m⁻¹(v) XOR 1), where σ_m
// is a keyed format-preserving permutation of [0, n) (a 4-round Feistel
// network cycle-walked down from the enclosing power of two). State is
// O(1); no matching is ever stored.
//
// Unlike the deterministic families, Neighbor(v, i) enumerates by
// matching index i, NOT in ascending vertex order, and two matchings
// may produce the same edge — so HashedRegular has no byte-identical
// CSR twin and Materialize can fail with a duplicate-edge error. The
// topology is still symmetric (w ∈ N(v) ⇔ v ∈ N(w), with matching
// multiplicity), which is all the voting processes need: a uniform
// (v, i) draw is a uniform directed arc of the multigraph.
type HashedRegular struct {
	n, d  int
	seed  uint64
	hbits uint // Feistel half-width: domain is 2^(2·hbits) ≥ n
	mask  uint32
}

// NewHashedRegular returns the implicit hashed d-regular multigraph.
// n must be even and ≥ 4, d in [1, n-1].
func NewHashedRegular(n, d int, seed uint64) (*HashedRegular, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("graph: hashed regular requires even n >= 4, got %d", n)
	}
	if d < 1 || d >= n {
		return nil, fmt.Errorf("graph: hashed regular degree %d out of range [1,%d]", d, n-1)
	}
	h := uint((bits.Len(uint(n-1)) + 1) / 2)
	if h == 0 {
		h = 1
	}
	return &HashedRegular{n: n, d: d, seed: seed, hbits: h, mask: 1<<h - 1}, nil
}

// feistelRound is the keyed round function: a SplitMix64-style mixer
// over (half, round, matching, seed), truncated to the half-width.
func (t *HashedRegular) feistelRound(x uint32, round, m int) uint32 {
	z := uint64(x) + t.seed + uint64(m)*0x9e3779b97f4a7c15 + uint64(round)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return uint32(z) & t.mask
}

// perm applies matching m's permutation to x < 2^(2·hbits).
func (t *HashedRegular) perm(x uint32, m int) uint32 {
	l, r := x>>t.hbits, x&t.mask
	for round := 0; round < 4; round++ {
		l, r = r, l^t.feistelRound(r, round, m)
	}
	return l<<t.hbits | r
}

// permInv inverts perm.
func (t *HashedRegular) permInv(x uint32, m int) uint32 {
	l, r := x>>t.hbits, x&t.mask
	for round := 3; round >= 0; round-- {
		l, r = r^t.feistelRound(l, round, m), l
	}
	return l<<t.hbits | r
}

// sigma is the cycle-walked permutation of [0, n): apply perm until the
// image lands below n. Termination: perm is a bijection of the finite
// domain, so the walk revisits the start before looping forever, and
// the expected length is domain/n < 4.
func (t *HashedRegular) sigma(x uint32, m int) uint32 {
	for {
		x = t.perm(x, m)
		if int(x) < t.n {
			return x
		}
	}
}

func (t *HashedRegular) sigmaInv(x uint32, m int) uint32 {
	for {
		x = t.permInv(x, m)
		if int(x) < t.n {
			return x
		}
	}
}

func (t *HashedRegular) N() int         { return t.n }
func (t *HashedRegular) Degree(int) int { return t.d }

// Neighbor returns v's partner in matching i: positions pair up by XOR
// 1 under σ_i, so the involution is fixed-point-free (x and x^1 always
// differ) and symmetric by construction.
func (t *HashedRegular) Neighbor(v, i int) int {
	return int(t.sigma(t.sigmaInv(uint32(v), i)^1, i))
}
func (t *HashedRegular) DegreeSum() int64 { return int64(t.n) * int64(t.d) }
func (t *HashedRegular) MinDegree() int   { return t.d }
func (t *HashedRegular) Name() string {
	return fmt.Sprintf("hashedregular(n=%d,d=%d,seed=%d)", t.n, t.d, t.seed)
}
func (t *HashedRegular) Arc(a int64) (v, w int) {
	d := int64(t.d)
	return int(a / d), t.Neighbor(int(a/d), int(a%d))
}

// Rows and Cols return the torus dimensions.
func (t *ImplicitTorus) Rows() int { return t.rows }
func (t *ImplicitTorus) Cols() int { return t.cols }

// Dim returns the hypercube dimension.
func (t *ImplicitHypercube) Dim() int { return t.d }

// Package graph provides the graph substrate for the voting processes:
// a compact immutable adjacency representation (CSR), deterministic and
// random graph families used throughout the paper (complete graphs,
// paths, cycles, random regular graphs, Erdős–Rényi graphs, and more),
// basic graph algorithms (connectivity, BFS, degree statistics), and a
// plain-text edge-list serialization.
//
// All processes in internal/core treat a *Graph as read-only, so a
// single Graph may be shared by many concurrent trials.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph in compressed sparse row form.
// Vertices are 0..N()-1. The zero value is the empty graph.
//
// A Graph is immutable after construction and safe for concurrent use.
type Graph struct {
	offsets []int64 // len n+1; neighbours of v are adj[offsets[v]:offsets[v+1]]
	adj     []int32 // concatenated sorted neighbour lists
	name    string  // human-readable family label, e.g. "complete(n=100)"

	// arc caches the lazily-built shared ArcIndex. It is a pointer to a
	// heap cell (not an inline atomic) so WithName's shallow copy shares
	// the cache instead of copying a lock-bearing value.
	arc *arcCell
}

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int
}

// NewFromEdges builds a Graph with n vertices from an edge list.
// Self-loops and duplicate edges are rejected: the voting processes are
// defined on simple graphs. It is the serial configuration of the
// direct-to-CSR assembler (BuildCSR over an EdgeList source).
func NewFromEdges(n int, edges []Edge) (*Graph, error) {
	return BuildCSR(n, EdgeList(n, edges), BuildOpts{})
}

// MustFromEdges is NewFromEdges that panics on error, for tests and
// statically known-good constructions.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := NewFromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbour list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Neighbor returns the i-th neighbour of v (0-indexed). It is the O(1)
// primitive behind "choose a random neighbour of v".
func (g *Graph) Neighbor(v, i int) int {
	return int(g.adj[g.offsets[v]+int64(i)])
}

// Offsets returns the CSR offset array: vertex v's neighbours occupy
// Arcs()[Offsets()[v]:Offsets()[v+1]]. The returned slice aliases the
// graph's internal storage and must not be modified. Hot kernels hoist
// it (together with Arcs) into locals so per-step degree and neighbour
// lookups compile to two indexed loads with no method calls.
func (g *Graph) Offsets() []int64 { return g.offsets }

// HasEdge reports whether {u,v} is an edge, via binary search.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() || u == v {
		return false
	}
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Edges returns all undirected edges with U < V, in vertex order.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.M())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				edges = append(edges, Edge{U: v, V: int(w)})
			}
		}
	}
	return edges
}

// EdgeAt returns the i-th entry of the directed-arc array as an
// undirected edge endpoint pair (tail, head). Arcs 0..2M-1 enumerate
// every (v,w) with {v,w} ∈ E in CSR order; a uniform arc index is a
// uniform directed edge, which is exactly the edge process's
// "random edge, random endpoint" draw.
func (g *Graph) EdgeAt(arc int) (tail, head int) {
	head = int(g.adj[arc])
	// Find the tail by binary search over offsets.
	tail = sort.Search(len(g.offsets)-1, func(v int) bool { return g.offsets[v+1] > int64(arc) })
	return tail, head
}

// Arcs returns the flat 2M-length adjacency array: entry a is the head
// vertex of directed arc a (arc indices follow Neighbors order,
// vertex-major). The slice is the graph's own storage — callers must
// not modify it.
func (g *Graph) Arcs() []int32 { return g.adj }

// ArcTails returns the 2M-length array mapping each directed-arc index
// to its tail vertex, for O(1) EdgeAt lookups in hot loops. The slice
// is the shared ArcIndex's storage — callers must not modify it.
func (g *Graph) ArcTails() []int32 {
	return g.ArcIndex().Tails()
}

// Name returns the human-readable family label, or "" if unset.
func (g *Graph) Name() string { return g.name }

// WithName returns g with its name label set. The adjacency storage is
// shared, not copied.
func (g *Graph) WithName(name string) *Graph {
	cp := *g
	cp.name = name
	return &cp
}

// String implements fmt.Stringer.
func (g *Graph) String() string {
	if g.name != "" {
		return fmt.Sprintf("%s{n=%d m=%d}", g.name, g.N(), g.M())
	}
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// DegreeSum returns the total degree 2m.
func (g *Graph) DegreeSum() int64 { return int64(len(g.adj)) }

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.N(); v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// IsRegular reports whether all vertices share the same degree.
func (g *Graph) IsRegular() bool {
	return g.N() == 0 || g.MinDegree() == g.MaxDegree()
}

// IsComplete reports whether g is the complete graph K_n. A simple
// graph is complete iff it has n(n-1)/2 edges, so no adjacency scan is
// needed; schedulers use this to draw neighbours arithmetically
// instead of through the CSR arrays.
func (g *Graph) IsComplete() bool {
	n := int64(g.N())
	return int64(len(g.adj)) == n*(n-1)
}

// MemBytes estimates the resident size of the graph together with its
// fully-built ArcIndex: CSR offsets (8 bytes/vertex) and adjacency
// (4 bytes/arc), plus the index's tails and rev arrays (4 bytes/arc
// each) and its lazy weight block (units + ones at 8 bytes/vertex,
// degree buckets at 1). The artifact cache uses this as the charge for
// byte-bounded eviction, so it deliberately prices the index even
// before it is built — the cache's whole point is that it will be.
func (g *Graph) MemBytes() int64 {
	n := int64(g.N())
	arcs := int64(len(g.adj))
	return 12*arcs + 25*n + 64
}

// Stationary returns the stationary distribution π_v = d(v)/2m of the
// simple random walk on g. It panics if the graph has no edges.
func (g *Graph) Stationary() []float64 {
	if g.M() == 0 {
		panic("graph: stationary distribution undefined without edges")
	}
	pi := make([]float64, g.N())
	total := float64(g.DegreeSum())
	for v := range pi {
		pi[v] = float64(g.Degree(v)) / total
	}
	return pi
}

// Validate performs internal-consistency checks (sortedness, symmetry,
// simplicity) and returns the first violation found. It exists for
// tests and for graphs decoded from external input.
func (g *Graph) Validate() error {
	n := g.N()
	if g.offsets[0] != 0 || g.offsets[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: corrupt offsets")
	}
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		for i, w := range nb {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: neighbour %d of %d out of range", w, v)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && nb[i-1] >= w {
				return fmt.Errorf("graph: neighbours of %d not strictly sorted", v)
			}
			if !g.HasEdge(int(w), v) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, w)
			}
		}
	}
	return nil
}

package graph

import (
	"testing"
)

func TestNewFromEdgesBasic(t *testing.T) {
	g, err := NewFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("got n=%d m=%d, want 4,4", g.N(), g.M())
	}
	for v := 0; v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewFromEdgesRejectsSelfLoop(t *testing.T) {
	if _, err := NewFromEdges(3, []Edge{{1, 1}}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestNewFromEdgesRejectsDuplicate(t *testing.T) {
	if _, err := NewFromEdges(3, []Edge{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if _, err := NewFromEdges(3, []Edge{{0, 1}, {0, 1}}); err == nil {
		t.Fatal("repeated edge accepted")
	}
}

func TestNewFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := NewFromEdges(3, []Edge{{0, 3}}); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := NewFromEdges(3, []Edge{{-1, 0}}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	if _, err := NewFromEdges(-1, nil); err == nil {
		t.Fatal("negative vertex count accepted")
	}
}

func TestHasEdge(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 2}, {2, 4}, {1, 3}})
	tests := []struct {
		u, v int
		want bool
	}{
		{0, 2, true}, {2, 0, true}, {2, 4, true}, {1, 3, true},
		{0, 1, false}, {3, 4, false}, {0, 0, false}, {-1, 2, false}, {0, 9, false},
	}
	for _, tc := range tests {
		if got := g.HasEdge(tc.u, tc.v); got != tc.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{0, 1}, {1, 2}, {0, 3}, {2, 3}}
	g := MustFromEdges(4, in)
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("Edges returned %d edges, want %d", len(out), len(in))
	}
	for _, e := range out {
		if e.U >= e.V {
			t.Errorf("edge %v not normalized U<V", e)
		}
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("edge %v not present", e)
		}
	}
}

func TestEdgeAtAndArcTails(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	tails := g.ArcTails()
	if len(tails) != int(g.DegreeSum()) {
		t.Fatalf("ArcTails length %d, want %d", len(tails), g.DegreeSum())
	}
	for arc := 0; arc < len(tails); arc++ {
		tail, head := g.EdgeAt(arc)
		if int(tails[arc]) != tail {
			t.Errorf("arc %d: ArcTails says %d, EdgeAt says %d", arc, tails[arc], tail)
		}
		if !g.HasEdge(tail, head) {
			t.Errorf("arc %d: (%d,%d) is not an edge", arc, tail, head)
		}
	}
	// Every directed arc appears exactly once.
	seen := map[[2]int]int{}
	for arc := 0; arc < len(tails); arc++ {
		tail, head := g.EdgeAt(arc)
		seen[[2]int{tail, head}]++
	}
	for k, c := range seen {
		if c != 1 {
			t.Errorf("arc %v enumerated %d times", k, c)
		}
	}
	if len(seen) != int(g.DegreeSum()) {
		t.Errorf("enumerated %d distinct arcs, want %d", len(seen), g.DegreeSum())
	}
}

func TestDegreeExtremes(t *testing.T) {
	g := Star(6)
	if g.MinDegree() != 1 || g.MaxDegree() != 5 {
		t.Errorf("star degrees min=%d max=%d, want 1,5", g.MinDegree(), g.MaxDegree())
	}
	if g.IsRegular() {
		t.Error("star reported regular")
	}
	if !Cycle(5).IsRegular() {
		t.Error("cycle reported irregular")
	}
}

func TestStationary(t *testing.T) {
	g := Star(4) // centre degree 3, leaves degree 1, 2m = 6
	pi := g.Stationary()
	if pi[0] != 0.5 {
		t.Errorf("pi[centre] = %v, want 0.5", pi[0])
	}
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if diff := sum - 1; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("stationary sums to %v", sum)
	}
}

func TestWithNameDoesNotMutate(t *testing.T) {
	g := Complete(4)
	h := g.WithName("other")
	if g.Name() == "other" {
		t.Error("WithName mutated receiver")
	}
	if h.Name() != "other" {
		t.Error("WithName did not set name")
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Error("WithName changed topology")
	}
}

func TestNeighborAccessor(t *testing.T) {
	g := MustFromEdges(4, []Edge{{2, 0}, {2, 3}, {2, 1}})
	// Neighbours are sorted.
	want := []int{0, 1, 3}
	for i, w := range want {
		if got := g.Neighbor(2, i); got != w {
			t.Errorf("Neighbor(2,%d) = %d, want %d", i, got, w)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}})
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph failed validation: %v", err)
	}
	// Corrupt a neighbour entry to break symmetry.
	g.adj[0] = 2 // vertex 0's only neighbour becomes 2, but 2 lists only 1
	if err := g.Validate(); err == nil {
		t.Error("corrupted graph passed validation")
	}
}

package graph

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"div/internal/rng"
	"div/internal/sched"
)

// This file holds the seeded random-family builders: the same sampling
// laws as the legacy *rand.Rand builders in random.go, but driven by
// Philox counter streams keyed on the build seed so each graph is a
// pure function of (family parameters, seed) — independent of worker
// count, stripe size, and everything else about scheduling — and
// assembled directly into CSR form (BuildCSR, no []Edge detour).
//
// The seed→graph mapping differs from the legacy builders (a PCG
// stream and a keyed Philox stream cannot agree), which is allowed:
// the law is what must not change, and the equivalence tests in
// random_seeded_test.go pin degree distributions and spectral-gap
// estimates of the two generations together (χ²/KS).
//
// How each family parallelizes:
//
//   - Gnp: embarrassingly row-parallel. Vertex row v (its edges to
//     smaller vertices, the Batagelj–Brandes lexicographic order
//     restarted per row) draws from a Counter keyed (seed, v), so any
//     partition of rows into stripes samples identical edges.
//   - RandomRegular: configuration-model pairing is a global sequential
//     chain (each pair conditions on the whole history), so sampling is
//     serial on one keyed stream; the CSR assembly of the paired
//     half-edge table is parallel.
//   - WattsStrogatz: the lattice slab fills in parallel (edge positions
//     are arithmetic); rewiring conditions on the evolving edge set and
//     stays serial; assembly is parallel.
//   - BarabasiAlbert: inherently sequential — every attachment draw
//     conditions on all earlier degrees — so sampling is serial on one
//     keyed stream and only the assembly parallelizes.

// GnpSeeded returns G(n,p) as a pure function of (n, p, seed): row v
// samples its edges {w, v} (w < v) by geometric skipping from a Philox
// counter stream keyed (seed, v). The same law as Gnp — restarting the
// skip chain at each row boundary still makes every pair an
// independent Bernoulli(p) — with construction striped across rows.
func GnpSeeded(n int, p float64, seed uint64, opts BuildOpts) (*Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: Gnp probability %v out of [0,1]", p)
	}
	name := fmt.Sprintf("gnp(n=%d,p=%g)", n, p)
	switch {
	case p == 0:
		g, err := BuildCSR(n, EdgeList(n, nil), opts)
		if err != nil {
			return nil, err
		}
		return g.WithName(name), nil
	case p == 1:
		return Complete(n).WithName(name), nil
	}
	g, err := BuildCSR(n, &gnpSource{n: n, p: p, lq: logOneMinus(p), seed: seed}, opts)
	if err != nil {
		return nil, err
	}
	return g.WithName(name), nil
}

// gnpSource emits row v's edges to smaller vertices from the row-keyed
// counter stream. Emissions are a pure function of the row range. The
// count pass's draws are memoized per stripe — just the neighbour
// values, 4 bytes per edge, since the owning vertex is implied by the
// per-row lengths — and the scatter pass replays the memo instead of
// re-running the geometric skip chain, so each edge is sampled exactly
// once. A memo is consumed (freed) by its replay, bounding the build's
// transient overhead at one int32 per edge between the two passes.
type gnpSource struct {
	n    int
	p    float64
	lq   float64
	seed uint64

	mu   sync.Mutex
	memo map[int]*gnpStripe // keyed by stripe lo
}

type gnpStripe struct {
	hi     int
	ws     []int32 // neighbour draws, rows lo..hi-1 concatenated
	rowLen []int32 // draws per row
}

func (s *gnpSource) Rows() int { return s.n }

// take removes and returns the memo for stripe lo, nil if absent.
func (s *gnpSource) take(lo int) *gnpStripe {
	s.mu.Lock()
	st := s.memo[lo]
	if st != nil {
		delete(s.memo, lo)
	}
	s.mu.Unlock()
	return st
}

func (s *gnpSource) put(lo int, st *gnpStripe) {
	s.mu.Lock()
	if s.memo == nil {
		s.memo = make(map[int]*gnpStripe)
	}
	s.memo[lo] = st
	s.mu.Unlock()
}

// newStripe allocates a memo sized to the stripe's expected edge count
// (p · #pairs owned, plus four standard deviations of Binomial slack)
// so count-pass appends almost never reallocate.
func (s *gnpSource) newStripe(lo, hi int) *gnpStripe {
	pairs := (float64(hi)*float64(hi-1) - float64(lo)*float64(lo-1)) / 2
	mean := s.p * pairs
	capHint := int(mean + 4*math.Sqrt(mean) + 16)
	return &gnpStripe{hi: hi, ws: make([]int32, 0, capHint), rowLen: make([]int32, hi-lo)}
}

func (s *gnpSource) EmitRows(lo, hi int, emit func(v, w int32)) error {
	if st := s.take(lo); st != nil && st.hi == hi {
		i := 0
		for v := lo; v < hi; v++ {
			for k := int32(0); k < st.rowLen[v-lo]; k++ {
				emit(int32(v), st.ws[i])
				i++
			}
		}
		return nil
	}
	st := s.newStripe(lo, hi)
	var c rng.Counter
	for v := lo; v < hi; v++ {
		if v == 0 {
			continue // no smaller vertices
		}
		c.Seed(s.seed, uint64(v))
		w := -1
		for {
			w += 1 + geometricSkipCounter(&c, s.lq)
			if w >= v || w < 0 {
				break
			}
			emit(int32(v), int32(w))
			st.ws = append(st.ws, int32(w))
			st.rowLen[v-lo]++
		}
	}
	s.put(lo, st)
	return nil
}

// CountRowsSerial is the serialRowsSource fast path: the same skip
// chain as EmitRows with the degree tallies inlined (the row side
// batched per row) and the memo filled as a side effect.
func (s *gnpSource) CountRowsSerial(lo, hi int, counts []int32) error {
	st := s.newStripe(lo, hi)
	var c rng.Counter
	for v := lo; v < hi; v++ {
		if v == 0 {
			continue
		}
		c.Seed(s.seed, uint64(v))
		w := -1
		var rl int32
		for {
			w += 1 + geometricSkipCounter(&c, s.lq)
			if w >= v || w < 0 {
				break
			}
			st.ws = append(st.ws, int32(w))
			counts[w+1]++
			rl++
		}
		st.rowLen[v-lo] = rl
		counts[v+1] += rl
	}
	s.put(lo, st)
	return nil
}

// SortedRowsSerial: the skip chain emits each row ascending and every
// edge is owned by its larger endpoint, so a serial scatter writes
// every adjacency already sorted.
func (s *gnpSource) SortedRowsSerial() bool { return true }

// ScatterRowsSerial replays the count pass's memo straight into the
// arc slab. A serial build always has the memo (the two passes run on
// one goroutine over identical stripes); the resample branch keeps the
// method total for robustness.
func (s *gnpSource) ScatterRowsSerial(lo, hi int, fill []int64, adj []int32) {
	if st := s.take(lo); st != nil && st.hi == hi {
		i := 0
		for v := lo; v < hi; v++ {
			vv := int32(v)
			for k := int32(0); k < st.rowLen[v-lo]; k++ {
				w := st.ws[i]
				i++
				a := fill[vv]
				fill[vv] = a + 1
				adj[a] = w
				b := fill[w]
				fill[w] = b + 1
				adj[b] = vv
			}
		}
		return
	}
	var c rng.Counter
	for v := lo; v < hi; v++ {
		if v == 0 {
			continue
		}
		c.Seed(s.seed, uint64(v))
		w := -1
		for {
			w += 1 + geometricSkipCounter(&c, s.lq)
			if w >= v || w < 0 {
				break
			}
			a := fill[v]
			fill[v] = a + 1
			adj[a] = int32(w)
			b := fill[w]
			fill[w] = b + 1
			adj[b] = int32(v)
		}
	}
}

// ConnectedGnpSeeded draws GnpSeeded repeatedly until the sample is
// connected, up to maxTries attempts; attempt i builds from
// DeriveSeed(seed, i), so the result is still a pure function of
// (n, p, seed).
func ConnectedGnpSeeded(n int, p float64, seed uint64, maxTries int, opts BuildOpts) (*Graph, error) {
	for i := 0; i < maxTries; i++ {
		g, err := GnpSeeded(n, p, rng.DeriveSeed(seed, uint64(i)), opts)
		if err != nil {
			return nil, err
		}
		if IsConnected(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: ConnectedGnp(n=%d,p=%g) not connected after %d tries", n, p, maxTries)
}

// RandomRegularSeeded returns a uniform-ish random d-regular simple
// graph built from a keyed stream: attempt a of the configuration-
// model pairing draws from Stream (seed, a), and the paired half-edge
// table assembles in parallel. The pairing logic is draw-for-draw the
// legacy tryPairing (shuffle, pair-with-retries, restart when stuck)
// with the map dedup replaced by a flat n×d neighbour table —
// TestRandomRegularSeededPairingEquivalence replays the same stream
// through a map-based reference to prove the table changes nothing.
func RandomRegularSeeded(n, d int, seed uint64, opts BuildOpts) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular requires 0 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular requires n*d even, got n=%d d=%d", n, d)
	}
	name := fmt.Sprintf("randomRegular(n=%d,d=%d)", n, d)
	if d == 0 {
		g, err := BuildCSR(n, EdgeList(n, nil), opts)
		if err != nil {
			return nil, err
		}
		return g.WithName(name), nil
	}
	const maxAttempts = 1000
	src := &regularTableSource{n: n, d: d}
	src.nbr = make([]int32, n*d)
	src.cnt = make([]int32, n)
	stubs := make([]int32, 0, n*d)
	var s rng.Stream
	for attempt := 0; attempt < maxAttempts; attempt++ {
		start := time.Now()
		s.Seed(seed, uint64(attempt))
		ok := tryPairingTable(n, d, &s, src, stubs)
		opts.observeSample(time.Since(start))
		if !ok {
			continue
		}
		g, err := BuildCSR(n, src, opts)
		if err != nil {
			// Should be impossible: the pairing guarantees simplicity.
			return nil, fmt.Errorf("graph: RandomRegular produced invalid pairing: %w", err)
		}
		return g.WithName(name), nil
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d,d=%d) failed after %d attempts", n, d, maxAttempts)
}

// regularTableSource is the paired half-edge table as an EdgeSource:
// row v owns its table entries with larger endpoint, so every edge is
// emitted exactly once.
type regularTableSource struct {
	n, d int
	nbr  []int32 // nbr[v*d : v*d+cnt[v]] = neighbours of v
	cnt  []int32
}

func (s *regularTableSource) Rows() int { return s.n }

func (s *regularTableSource) EmitRows(lo, hi int, emit func(v, w int32)) error {
	for v := lo; v < hi; v++ {
		row := s.nbr[v*s.d : v*s.d+int(s.cnt[v])]
		for _, w := range row {
			if w > int32(v) {
				emit(int32(v), w)
			}
		}
	}
	return nil
}

// hasNeighbor reports whether w already appears in v's table row: the
// O(d) flat-table replacement for the legacy map dedup, which at
// n = 10⁷ half-edges cost ~1 GB of map overhead against the table's
// 4·n·d bytes that double as the assembly input.
func (s *regularTableSource) hasNeighbor(v, w int32) bool {
	row := s.nbr[int(v)*s.d : int(v)*s.d+int(s.cnt[v])]
	for _, x := range row {
		if x == w {
			return true
		}
	}
	return false
}

func (s *regularTableSource) addEdge(u, v int32) {
	s.nbr[int(u)*s.d+int(s.cnt[u])] = v
	s.cnt[u]++
	s.nbr[int(v)*s.d+int(s.cnt[v])] = u
	s.cnt[v]++
}

// tryPairingTable is one configuration-model pairing attempt driven by
// the keyed stream, recording edges into src's table. The draw
// sequence — Fisher–Yates over the stub list, then repeatedly pair the
// last stub with a random earlier one, retrying conflicts — mirrors
// tryPairing exactly.
func tryPairingTable(n, d int, s *rng.Stream, src *regularTableSource, stubs []int32) bool {
	stubs = stubs[:0]
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	for i := len(stubs) - 1; i > 0; i-- {
		j := int(s.Uint64n(uint64(i + 1)))
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	clear(src.cnt)
	for len(stubs) > 0 {
		u := stubs[len(stubs)-1]
		stubs = stubs[:len(stubs)-1]
		paired := false
		for try := 0; try < 4*len(stubs)+16 && len(stubs) > 0; try++ {
			j := int(s.Uint64n(uint64(len(stubs))))
			v := stubs[j]
			if v == u || src.hasNeighbor(u, v) {
				continue
			}
			stubs[j] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			src.addEdge(u, v)
			paired = true
			break
		}
		if !paired {
			return false
		}
	}
	return true
}

// WattsStrogatzSeeded returns the small-world graph built from a keyed
// stream: the ring-lattice slab fills in parallel (edge i's endpoints
// are arithmetic in i), the rewiring pass replays the legacy
// sequential scan on Stream (seed, 0), and assembly is parallel.
func WattsStrogatzSeeded(n, d int, beta float64, seed uint64, opts BuildOpts) (*Graph, error) {
	if d%2 != 0 || d < 2 || d >= n {
		return nil, fmt.Errorf("graph: WattsStrogatz requires even 2 <= d < n, got d=%d n=%d", d, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: WattsStrogatz beta %v out of [0,1]", beta)
	}
	half := d / 2
	edges := make([]Edge, n*half)
	grain := opts.grainFor(n)
	sched.Distribute(opts.pool(), n, grain, sched.Tag{Exp: "graph_build"}, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			for s := 1; s <= half; s++ {
				edges[v*half+s-1] = Edge{U: v, V: (v + s) % n}
			}
		}
	})
	if beta > 0 {
		start := time.Now()
		rewireLattice(n, half, beta, seed, edges)
		opts.observeSample(time.Since(start))
	}
	g, err := BuildCSR(n, EdgeList(n, edges), opts)
	if err != nil {
		return nil, err
	}
	return g.WithName(fmt.Sprintf("wattsStrogatz(n=%d,d=%d,beta=%g)", n, d, beta)), nil
}

// rewireLattice is the sequential Watts–Strogatz rewiring pass. The
// legacy builder tracked the full edge set in a map; here lattice
// membership is arithmetic (ring distance ≤ half), so only the
// deviations from the lattice — edges removed by rewiring, edges added
// by it — need hashing.
func rewireLattice(n, half int, beta float64, seed uint64, edges []Edge) {
	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	isLattice := func(u, v int) bool {
		if u == v {
			return false
		}
		dist := u - v
		if dist < 0 {
			dist = -dist
		}
		if n-dist < dist {
			dist = n - dist
		}
		return dist <= half
	}
	removed := make(map[int64]bool)
	added := make(map[int64]bool)
	member := func(u, v int) bool {
		k := key(u, v)
		return added[k] || (isLattice(u, v) && !removed[k])
	}
	s := rng.NewStream(seed, 0)
	for i := range edges {
		if s.Float64() >= beta {
			continue
		}
		e := edges[i]
		// Rewire the far endpoint to a uniform valid target.
		for try := 0; try < 64; try++ {
			t := int(s.Uint64n(uint64(n)))
			if t == e.U || t == e.V || member(e.U, t) {
				continue
			}
			if k := key(e.U, e.V); added[k] {
				delete(added, k)
			} else {
				removed[k] = true
			}
			if k := key(e.U, t); removed[k] {
				delete(removed, k)
			} else {
				added[k] = true
			}
			edges[i].V = t
			break
		}
	}
}

// BarabasiAlbertSeeded returns the preferential-attachment graph built
// from Stream (seed, 0). Attachment is inherently sequential — each
// arrival's degree-proportional draws condition on every earlier edge
// — so sampling is serial (documented here deliberately; do not try to
// stripe it), and only the CSR assembly of the recorded picks
// parallelizes.
func BarabasiAlbertSeeded(n, m int, seed uint64, opts BuildOpts) (*Graph, error) {
	if m < 1 || m+1 > n {
		return nil, fmt.Errorf("graph: BarabasiAlbert requires 1 <= m < n, got m=%d n=%d", m, n)
	}
	start := time.Now()
	m0 := m + 1
	// targets holds one entry per half-edge endpoint, so a uniform draw
	// from it is a degree-proportional draw.
	targets := make([]int32, 0, int64(m0)*int64(m0-1)+2*int64(n-m0)*int64(m))
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			targets = append(targets, int32(u), int32(v))
		}
	}
	picks := make([]int32, 0, int64(n-m0)*int64(m))
	s := rng.NewStream(seed, 0)
	chosen := make(map[int32]bool, m)
	row := make([]int32, 0, m)
	for v := m0; v < n; v++ {
		clear(chosen)
		for len(chosen) < m {
			t := targets[int(s.Uint64n(uint64(len(targets))))]
			chosen[t] = true
		}
		// Drain the set in sorted order — the map-iteration determinism
		// fix from the legacy builder; see BarabasiAlbert.
		row = row[:0]
		for t := range chosen {
			row = append(row, t)
		}
		slices.Sort(row)
		for _, t := range row {
			picks = append(picks, t)
			targets = append(targets, int32(v), t)
		}
	}
	opts.observeSample(time.Since(start))
	g, err := BuildCSR(n, baSource{m0: m0, m: m, n: n, picks: picks}, opts)
	if err != nil {
		return nil, err
	}
	return g.WithName(fmt.Sprintf("barabasiAlbert(n=%d,m=%d)", n, m)), nil
}

// baSource is the recorded attachment picks as an EdgeSource: rows
// below m0 own the seed-clique edges to larger clique vertices, row
// v ≥ m0 owns its m attachment edges (targets always predate v).
type baSource struct {
	m0, m, n int
	picks    []int32
}

func (s baSource) Rows() int { return s.n }

func (s baSource) EmitRows(lo, hi int, emit func(v, w int32)) error {
	for v := lo; v < hi; v++ {
		if v < s.m0 {
			for u := v + 1; u < s.m0; u++ {
				emit(int32(v), int32(u))
			}
			continue
		}
		row := s.picks[(v-s.m0)*s.m : (v-s.m0+1)*s.m]
		for _, t := range row {
			emit(int32(v), t)
		}
	}
	return nil
}

package graph

import (
	"testing"
	"testing/quick"

	"div/internal/rng"
)

func TestBFSPath(t *testing.T) {
	g := Path(5)
	dist := BFS(g, 0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {2, 3}})
	dist := BFS(g, 0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable distances = %v", dist)
	}
}

func TestIsConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", MustFromEdges(0, nil), true},
		{"singleton", MustFromEdges(1, nil), true},
		{"two isolated", MustFromEdges(2, nil), false},
		{"path", Path(10), true},
		{"two components", MustFromEdges(4, []Edge{{0, 1}, {2, 3}}), false},
	}
	for _, tc := range tests {
		if got := IsConnected(tc.g); got != tc.want {
			t.Errorf("%s: IsConnected = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestComponents(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	comps := Components(g)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	want := []int{3, 2, 1}
	for i := range sizes {
		if sizes[i] != want[i] {
			t.Errorf("component %d size %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path10", Path(10), 9},
		{"cycle8", Cycle(8), 4},
		{"cycle9", Cycle(9), 4},
		{"complete7", Complete(7), 1},
		{"star9", Star(9), 2},
		{"hypercube4", Hypercube(4), 4},
		{"grid3x4", Grid(3, 4), 5},
	}
	for _, tc := range tests {
		d, err := Diameter(tc.g)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if d != tc.want {
			t.Errorf("%s: diameter %d, want %d", tc.name, d, tc.want)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}})
	if _, err := Diameter(g); err == nil {
		t.Error("Diameter of disconnected graph succeeded")
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(7)
	ecc, err := Eccentricity(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ecc != 3 {
		t.Errorf("eccentricity of centre = %d, want 3", ecc)
	}
}

func TestIsBipartiteOddEvenCycles(t *testing.T) {
	if !IsBipartite(Cycle(10)) {
		t.Error("even cycle not bipartite")
	}
	if IsBipartite(Cycle(9)) {
		t.Error("odd cycle bipartite")
	}
}

func TestDegreesStats(t *testing.T) {
	g := Star(5) // centre degree 4, four leaves degree 1, 2m = 8
	s := Degrees(g)
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("min/max = %d/%d, want 1/4", s.Min, s.Max)
	}
	if s.Mean != 8.0/5 {
		t.Errorf("mean = %v, want %v", s.Mean, 8.0/5)
	}
	if s.PiMin != 1.0/8 || s.PiMax != 0.5 {
		t.Errorf("piMin/piMax = %v/%v, want 0.125/0.5", s.PiMin, s.PiMax)
	}
}

func TestTriangles(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"K3", Complete(3), 1},
		{"K4", Complete(4), 4},
		{"K5", Complete(5), 10},
		{"C5", Cycle(5), 0},
		{"star", Star(10), 0},
	}
	for _, tc := range tests {
		if got := Triangles(tc.g); got != tc.want {
			t.Errorf("%s: %d triangles, want %d", tc.name, got, tc.want)
		}
	}
}

// TestQuickRandomGraphsValid checks structural invariants of random
// edge-set constructions: generated graphs always validate, BFS
// distances are consistent with connectivity, and component sizes
// partition the vertex set.
func TestQuickRandomGraphsValid(t *testing.T) {
	f := func(seed uint64, rawN uint8, rawP uint8) bool {
		n := int(rawN%40) + 2
		p := float64(rawP%100) / 100
		g, err := Gnp(n, p, rng.New(seed))
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		comps := Components(g)
		total := 0
		for _, c := range comps {
			total += len(c)
		}
		if total != n {
			return false
		}
		return IsConnected(g) == (len(comps) <= 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIsConnectedAllocs: the satellite gate for the pooled-bitset BFS.
// After a warm-up populates the scratch pool, connectivity probes must
// not allocate — ConnectedGnp retries at n = 10⁶⁺ lean on this.
func TestIsConnectedAllocs(t *testing.T) {
	g, err := GnpSeeded(20000, 0.0008, 11, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	IsConnected(g) // warm the scratch pool
	if allocs := testing.AllocsPerRun(20, func() { IsConnected(g) }); allocs != 0 {
		t.Errorf("IsConnected allocates %.1f per run, want 0", allocs)
	}
}

// TestIsConnectedCases pins the bitset BFS against the definitional
// corner cases the old distance-slice implementation covered.
func TestIsConnectedCases(t *testing.T) {
	if !IsConnected(MustFromEdges(0, nil)) || !IsConnected(MustFromEdges(1, nil)) {
		t.Error("empty and single-vertex graphs are connected by convention")
	}
	if IsConnected(MustFromEdges(2, nil)) {
		t.Error("two isolated vertices reported connected")
	}
	if !IsConnected(Path(100)) || !IsConnected(Star(65)) || !IsConnected(Cycle(64)) {
		t.Error("connected family reported disconnected")
	}
	if IsConnected(MustFromEdges(5, []Edge{{0, 1}, {2, 3}, {3, 4}})) {
		t.Error("two components reported connected")
	}
	// A vertex count straddling the 64-bit word boundary of the bitset.
	if !IsConnected(Path(64)) || !IsConnected(Path(65)) || IsConnected(MustFromEdges(65, []Edge{{0, 1}})) {
		t.Error("word-boundary sizes misreported")
	}
}

package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the parser: arbitrary input must either
// parse into a graph that passes Validate and round-trips, or return an
// error — never panic or produce a corrupt graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("3 2\n0 1\n1 2\n")
	f.Add("# name x\n2 1\n0 1\n")
	f.Add("")
	f.Add("0 0\n")
	f.Add("5 0\n")
	f.Add("2 1\n1 1\n")
	f.Add("1000000 1\n0 1\n")
	f.Add("3 2\n0 1\n# c\n\n1 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.N() > 1<<20 {
			t.Skip("oversized graph")
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph fails validation: %v (input %q)", err, input)
		}
		var b strings.Builder
		if err := WriteEdgeList(&b, g); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		g2, err := ReadEdgeList(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %v vs %v", g2, g)
		}
	})
}

package graph

import (
	"fmt"
	"strings"
	"testing"
)

func TestWriteDOTBasic(t *testing.T) {
	g := Path(3)
	var b strings.Builder
	if err := WriteDOT(&b, g, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "graph \"G\" {") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "0 -- 1;") || !strings.Contains(out, "1 -- 2;") {
		t.Errorf("missing edges: %q", out)
	}
	if strings.Count(out, "--") != g.M() {
		t.Errorf("edge lines = %d, want %d", strings.Count(out, "--"), g.M())
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("missing footer: %q", out)
	}
}

func TestWriteDOTLabels(t *testing.T) {
	g := Complete(3)
	var b strings.Builder
	err := WriteDOT(&b, g, DOTOptions{
		Name:  "opinions",
		Label: func(v int) string { return fmt.Sprintf("x=%d", v+10) },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `graph "opinions" {`) {
		t.Errorf("name not used: %q", out)
	}
	for v := 0; v < 3; v++ {
		want := fmt.Sprintf("%d [label=\"x=%d\"];", v, v+10)
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestWriteDOTIsolatedVertices(t *testing.T) {
	g := MustFromEdges(3, []Edge{{U: 0, V: 1}})
	var b strings.Builder
	if err := WriteDOT(&b, g, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "2;") {
		t.Errorf("isolated vertex 2 not declared: %q", b.String())
	}
}

package graph

import (
	"errors"
	"sync"
	"testing"
)

func TestCacheHitSharesInstance(t *testing.T) {
	c := NewCache(0)
	builds := 0
	build := func() (*Graph, error) { builds++; return Complete(10), nil }
	h1, err := c.Get(Key{Family: "complete", N: 10}, build)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Get(Key{Family: "complete", N: 10}, build)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("built %d times, want 1", builds)
	}
	if h1.Graph() != h2.Graph() {
		t.Fatal("same key returned distinct *Graph instances")
	}
	// Sharing the Graph shares its ArcIndex too.
	if h1.Graph().ArcIndex() != h2.Graph().ArcIndex() {
		t.Fatal("shared graph has distinct ArcIndexes")
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	h1.Release()
	h2.Release()
}

func TestCacheDistinctKeys(t *testing.T) {
	c := NewCache(0)
	h1, _ := c.Get(Key{Family: "complete", N: 10}, func() (*Graph, error) { return Complete(10), nil })
	h2, _ := c.Get(Key{Family: "complete", N: 20}, func() (*Graph, error) { return Complete(20), nil })
	if h1.Graph() == h2.Graph() {
		t.Fatal("distinct keys shared a graph")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	h1.Release()
	h2.Release()
}

// TestCacheEviction: a tiny byte bound evicts released entries in LRU
// order but never pinned ones.
func TestCacheEviction(t *testing.T) {
	one := Complete(50).MemBytes()
	c := NewCache(2 * one)
	get := func(n int) *Handle {
		h, err := c.Get(Key{Family: "complete", N: n}, func() (*Graph, error) { return Complete(n), nil })
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	hA, hB := get(50), get(49)
	hA.Release()
	hB.Release() // LRU order: A older than B
	// C displaces A (least recently used).
	get(48).Release()
	if _, _, ev, _ := stats4(c); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	builds := 0
	hA2, _ := c.Get(Key{Family: "complete", N: 50}, func() (*Graph, error) { builds++; return Complete(50), nil })
	if builds != 1 {
		t.Fatal("entry A should have been evicted and rebuilt")
	}
	// Pinned entries survive even when over budget.
	hD := get(47)
	if hA2.Graph().N() != 50 || hD.Graph().N() != 47 {
		t.Fatal("pinned graphs corrupted")
	}
	hA2.Release()
	hD.Release()
	if c.Bytes() > 2*one {
		t.Fatalf("resident %d bytes after releases, bound %d", c.Bytes(), 2*one)
	}
}

func stats4(c *Cache) (h, m, e, b int64) { return c.Stats() }

func TestCacheBuildErrorRetries(t *testing.T) {
	c := NewCache(0)
	boom := errors.New("boom")
	if _, err := c.Get(Key{Family: "x", N: 1}, func() (*Graph, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	h, err := c.Get(Key{Family: "x", N: 1}, func() (*Graph, error) { return Complete(3), nil })
	if err != nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	h.Release()
}

func TestCacheFloatMemo(t *testing.T) {
	c := NewCache(0)
	h, _ := c.Get(Key{Family: "complete", N: 8}, func() (*Graph, error) { return Complete(8), nil })
	defer h.Release()
	builds := 0
	f := func(g *Graph) float64 { builds++; return float64(g.N()) * 2 }
	if v := h.Float("lambda", f); v != 16 {
		t.Fatalf("Float = %v, want 16", v)
	}
	if v := h.Float("lambda", f); v != 16 || builds != 1 {
		t.Fatalf("memo miss: v=%v builds=%d", v, builds)
	}
	if v := h.Float("other", f); v != 16 || builds != 2 {
		t.Fatalf("distinct memo key: v=%v builds=%d", v, builds)
	}
	// A second handle to the same entry sees the memo.
	h2, _ := c.Get(Key{Family: "complete", N: 8}, func() (*Graph, error) { return Complete(8), nil })
	defer h2.Release()
	if v := h2.Float("lambda", f); v != 16 || builds != 2 {
		t.Fatalf("memo not shared across handles: v=%v builds=%d", v, builds)
	}
}

func TestCacheReleaseIdempotent(t *testing.T) {
	c := NewCache(0)
	h, _ := c.Get(Key{Family: "complete", N: 5}, func() (*Graph, error) { return Complete(5), nil })
	h.Release()
	h.Release() // must not double-unpin
	h2, _ := c.Get(Key{Family: "complete", N: 5}, func() (*Graph, error) { return Complete(5), nil })
	h2.Release()
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestCacheConcurrent hammers Get/Release/Float across goroutines for
// the race detector; concurrent first Gets of one key share one build.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(4 * Complete(30).MemBytes())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := 20 + (w+i)%6
				h, err := c.Get(Key{Family: "complete", N: n}, func() (*Graph, error) { return Complete(n), nil })
				if err != nil {
					t.Error(err)
					return
				}
				if h.Graph().N() != n {
					t.Errorf("got n=%d, want %d", h.Graph().N(), n)
				}
				h.Float("f", func(g *Graph) float64 { return float64(g.M()) })
				h.Release()
			}
		}(w)
	}
	wg.Wait()
}

func TestSharedCacheSingleton(t *testing.T) {
	if SharedCache() != SharedCache() {
		t.Fatal("SharedCache returned distinct caches")
	}
}

func TestMemBytesScales(t *testing.T) {
	small, big := Complete(10).MemBytes(), Complete(100).MemBytes()
	if small <= 0 || big <= small {
		t.Fatalf("MemBytes not monotone: %d vs %d", small, big)
	}
	// Complete(n): 12·n(n-1) arc bytes dominate.
	if want := int64(12 * 100 * 99); big < want {
		t.Fatalf("MemBytes(K_100) = %d, want >= %d", big, want)
	}
}

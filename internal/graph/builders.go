package graph

import "fmt"

// Complete returns the complete graph K_n. The paper's strongest
// expander example: λ = 1/(n-1).
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("complete(n=%d)", n))
}

// Path returns the path graph P_n (n-1 edges). The paper's canonical
// non-expander: λ = 1 - O(1/n²), used in the E9 counterexample.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, Edge{U: v, V: v + 1})
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("path(n=%d)", n))
}

// Cycle returns the cycle graph C_n (n ≥ 3). λ = cos(π/n) for odd n
// and 1 for even n (bipartite).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle requires n >= 3, got %d", n))
	}
	edges := make([]Edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, Edge{U: v, V: (v + 1) % n})
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("cycle(n=%d)", n))
}

// Star returns the star K_{1,n-1} with centre 0. Maximally irregular;
// used to separate the edge and vertex processes (Remark 1 fails).
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{U: 0, V: v})
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("star(n=%d)", n))
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
// Bipartite, so λ = |λ_n| = 1: the aperiodicity assumption fails, a
// useful stress case.
func CompleteBipartite(a, b int) *Graph {
	edges := make([]Edge, 0, a*b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			edges = append(edges, Edge{U: u, V: a + v})
		}
	}
	return MustFromEdges(a+b, edges).WithName(fmt.Sprintf("completeBipartite(a=%d,b=%d)", a, b))
}

// Grid returns the rows×cols 2-D lattice (no wraparound).
func Grid(rows, cols int) *Graph {
	n := rows * cols
	edges := make([]Edge, 0, 2*n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("grid(%dx%d)", rows, cols))
}

// Torus returns the rows×cols 2-D lattice with wraparound (4-regular
// when rows,cols ≥ 3). Poor expander: λ ≈ 1 - Θ(1/n).
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: Torus requires rows,cols >= 3, got %dx%d", rows, cols))
	}
	n := rows * cols
	edges := make([]Edge, 0, 2*n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges, Edge{U: id(r, c), V: id(r, (c+1)%cols)})
			edges = append(edges, Edge{U: id(r, c), V: id((r+1)%rows, c)})
		}
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("torus(%dx%d)", rows, cols))
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices.
// d-regular with λ₂ = 1 - 2/d, but bipartite (λ_n = -1, so λ = 1).
func Hypercube(d int) *Graph {
	if d < 1 || d > 25 {
		panic(fmt.Sprintf("graph: Hypercube dimension %d out of range [1,25]", d))
	}
	n := 1 << d
	edges := make([]Edge, 0, n*d/2)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if u > v {
				edges = append(edges, Edge{U: v, V: u})
			}
		}
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("hypercube(d=%d)", d))
}

// BinaryTree returns the complete binary tree with n vertices, rooted
// at 0 (children of v are 2v+1, 2v+2).
func BinaryTree(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{U: (v - 1) / 2, V: v})
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("binaryTree(n=%d)", n))
}

// Barbell returns two cliques K_c joined by a path of p intermediate
// vertices (p may be 0, giving a single bridging edge). A classic
// bottleneck graph with λ → 1.
func Barbell(c, p int) *Graph {
	if c < 2 {
		panic(fmt.Sprintf("graph: Barbell requires clique size >= 2, got %d", c))
	}
	n := 2*c + p
	var edges []Edge
	clique := func(base int) {
		for u := 0; u < c; u++ {
			for v := u + 1; v < c; v++ {
				edges = append(edges, Edge{U: base + u, V: base + v})
			}
		}
	}
	clique(0)
	clique(c + p)
	// Path from vertex c-1 (in first clique) through p middles to c+p
	// (first vertex of second clique).
	prev := c - 1
	for i := 0; i < p; i++ {
		edges = append(edges, Edge{U: prev, V: c + i})
		prev = c + i
	}
	edges = append(edges, Edge{U: prev, V: c + p})
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("barbell(c=%d,p=%d)", c, p))
}

// Lollipop returns a clique K_c with a pendant path of p vertices.
func Lollipop(c, p int) *Graph {
	if c < 2 {
		panic(fmt.Sprintf("graph: Lollipop requires clique size >= 2, got %d", c))
	}
	n := c + p
	var edges []Edge
	for u := 0; u < c; u++ {
		for v := u + 1; v < c; v++ {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	prev := c - 1
	for i := 0; i < p; i++ {
		edges = append(edges, Edge{U: prev, V: c + i})
		prev = c + i
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("lollipop(c=%d,p=%d)", c, p))
}

// Circulant returns the circulant graph on n vertices where v is
// adjacent to v±s (mod n) for each stride s in strides. Strides must be
// distinct values in [1, n/2]. Regular by construction; eigenvalues
// have the closed form (Σ_s 2cos(2πsj/n))/deg.
func Circulant(n int, strides []int) *Graph {
	seen := map[int]bool{}
	var edges []Edge
	for _, s := range strides {
		if s < 1 || s > n/2 {
			panic(fmt.Sprintf("graph: Circulant stride %d out of range [1,%d]", s, n/2))
		}
		if seen[s] {
			panic(fmt.Sprintf("graph: Circulant duplicate stride %d", s))
		}
		seen[s] = true
		for v := 0; v < n; v++ {
			u := (v + s) % n
			if 2*s == n && u < v {
				continue // antipodal stride contributes each edge once
			}
			edges = append(edges, Edge{U: v, V: u})
		}
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("circulant(n=%d,strides=%v)", n, strides))
}

// Petersen returns the Petersen graph: 10 vertices, 3-regular, with
// walk spectrum {1, (1/3)×5, (-2/3)×4} — a fixed, non-trivial spectral
// oracle (λ = 2/3) used to validate the eigensolvers.
func Petersen() *Graph {
	var edges []Edge
	// Outer 5-cycle 0..4, inner pentagram 5..9, spokes i—i+5.
	for i := 0; i < 5; i++ {
		edges = append(edges,
			Edge{U: i, V: (i + 1) % 5},
			Edge{U: 5 + i, V: 5 + (i+2)%5},
			Edge{U: i, V: 5 + i},
		)
	}
	return MustFromEdges(10, edges).WithName("petersen")
}

// CompleteMultipartite returns the complete multipartite graph with the
// given part sizes: vertices in different parts are adjacent, vertices
// within a part are not. K_{a,b} and Turán graphs are special cases.
func CompleteMultipartite(parts []int) *Graph {
	n := 0
	starts := make([]int, len(parts)+1)
	for i, p := range parts {
		if p < 1 {
			panic(fmt.Sprintf("graph: CompleteMultipartite part %d has size %d", i, p))
		}
		starts[i] = n
		n += p
	}
	starts[len(parts)] = n
	var edges []Edge
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			for u := starts[i]; u < starts[i+1]; u++ {
				for v := starts[j]; v < starts[j+1]; v++ {
					edges = append(edges, Edge{U: u, V: v})
				}
			}
		}
	}
	return MustFromEdges(n, edges).WithName(fmt.Sprintf("completeMultipartite(%v)", parts))
}

// Law-equivalence battery for the seeded builders: the seed→graph
// mapping changed (PCG streams → keyed Philox counter streams), which
// is allowed — the sampling law is not. These tests draw matched
// ensembles from the legacy *rand.Rand builders and the seeded
// builders and require the degree distributions (two-sample χ²) and
// spectral-gap estimates (two-sample KS) to be statistically
// indistinguishable at α = 0.001.
//
// External test package: the λ checks need internal/spectral, which
// imports graph — an internal test would cycle.
package graph_test

import (
	"math"
	"sort"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
	"div/internal/spectral"
	"div/internal/stats"
)

// chi2Crit001 returns the α = 0.001 critical value of χ²(df), exact
// for the small dfs and Wilson–Hilferty for the rest (accurate to well
// under the margins these tests run at).
func chi2Crit001(df int) float64 {
	switch df {
	case 1:
		return 10.83
	case 2:
		return 13.82
	}
	const z = 3.0902 // z_{0.001}
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// chi2TwoSampleDegrees pools two degree samples into cells (merging
// sparse neighbours, the house pattern from the engine equivalence
// suites) and returns the two-sample χ² statistic and df.
func chi2TwoSampleDegrees(a, b []int) (stat float64, df int) {
	count := map[int][2]float64{}
	for _, d := range a {
		c := count[d]
		c[0]++
		count[d] = c
	}
	for _, d := range b {
		c := count[d]
		c[1]++
		count[d] = c
	}
	cats := make([]int, 0, len(count))
	for d := range count {
		cats = append(cats, d)
	}
	sort.Ints(cats)
	cells := make([][2]float64, 0, len(cats))
	for _, d := range cats {
		cells = append(cells, count[d])
	}
	for len(cells) > 1 {
		idx := -1
		for i, c := range cells {
			if c[0]+c[1] < 10 {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		j := idx - 1
		if j < 0 {
			j = idx + 1
		}
		cells[j][0] += cells[idx][0]
		cells[j][1] += cells[idx][1]
		cells = append(cells[:idx], cells[idx+1:]...)
	}
	if len(cells) < 2 {
		return 0, 0
	}
	na, nb := float64(len(a)), float64(len(b))
	grand := na + nb
	for _, c := range cells {
		rowTotal := c[0] + c[1]
		ea := rowTotal * na / grand
		eb := rowTotal * nb / grand
		stat += (c[0]-ea)*(c[0]-ea)/ea + (c[1]-eb)*(c[1]-eb)/eb
	}
	return stat, len(cells) - 1
}

func degreesOf(g *graph.Graph) []int {
	ds := make([]int, g.N())
	for v := range ds {
		ds[v] = g.Degree(v)
	}
	return ds
}

// ksCrit001 is the asymptotic two-sample KS critical value at
// α = 0.001 (conservative under discreteness/ties).
func ksCrit001(m, n int) float64 {
	return 1.95 * math.Sqrt(float64(m+n)/float64(m)/float64(n))
}

// TestSeededLawEquivalenceDegrees draws R graphs per generation per
// family and compares pooled degree distributions.
func TestSeededLawEquivalenceDegrees(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical battery")
	}
	const R = 24
	families := []struct {
		name   string
		legacy func(seed uint64) (*graph.Graph, error)
		seeded func(seed uint64) (*graph.Graph, error)
	}{
		{
			"gnp(600,0.02)",
			func(seed uint64) (*graph.Graph, error) { return graph.Gnp(600, 0.02, rng.New(seed)) },
			func(seed uint64) (*graph.Graph, error) { return graph.GnpSeeded(600, 0.02, seed, graph.BuildOpts{}) },
		},
		{
			"ba(600,3)",
			func(seed uint64) (*graph.Graph, error) { return graph.BarabasiAlbert(600, 3, rng.New(seed)) },
			func(seed uint64) (*graph.Graph, error) {
				return graph.BarabasiAlbertSeeded(600, 3, seed, graph.BuildOpts{})
			},
		},
		{
			"ws(600,6,0.3)",
			func(seed uint64) (*graph.Graph, error) { return graph.WattsStrogatz(600, 6, 0.3, rng.New(seed)) },
			func(seed uint64) (*graph.Graph, error) {
				return graph.WattsStrogatzSeeded(600, 6, 0.3, seed, graph.BuildOpts{})
			},
		},
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			var legacyDs, seededDs []int
			for r := 0; r < R; r++ {
				lg, err := fam.legacy(uint64(1000 + r))
				if err != nil {
					t.Fatal(err)
				}
				sg, err := fam.seeded(uint64(1000 + r))
				if err != nil {
					t.Fatal(err)
				}
				legacyDs = append(legacyDs, degreesOf(lg)...)
				seededDs = append(seededDs, degreesOf(sg)...)
			}
			stat, df := chi2TwoSampleDegrees(legacyDs, seededDs)
			if df > 0 && stat > chi2Crit001(df) {
				t.Errorf("degree χ²(%d) = %.2f > %.2f (α=0.001): seeded law differs from legacy", df, stat, chi2Crit001(df))
			}
		})
	}
	// RandomRegular degrees are deterministic (all d); the law check
	// that matters is λ, below. Still pin regularity here.
	g, err := graph.RandomRegularSeeded(600, 6, 7, graph.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular() || g.MaxDegree() != 6 {
		t.Fatalf("RandomRegularSeeded not 6-regular")
	}
}

// TestSeededLawEquivalenceLambda compares the spectral-gap estimate
// distributions of the two generations (two-sample KS): for G(n,p)
// and random-regular ensembles λ concentrates, so a law change shows
// up as a location shift KS catches quickly.
func TestSeededLawEquivalenceLambda(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical battery")
	}
	const R = 20
	families := []struct {
		name   string
		legacy func(seed uint64) (*graph.Graph, error)
		seeded func(seed uint64) (*graph.Graph, error)
	}{
		{
			"gnp(400,0.04)",
			func(seed uint64) (*graph.Graph, error) { return graph.ConnectedGnp(400, 0.04, rng.New(seed), 200) },
			func(seed uint64) (*graph.Graph, error) {
				return graph.ConnectedGnpSeeded(400, 0.04, seed, 200, graph.BuildOpts{})
			},
		},
		{
			"rr(400,6)",
			func(seed uint64) (*graph.Graph, error) { return graph.RandomRegular(400, 6, rng.New(seed)) },
			func(seed uint64) (*graph.Graph, error) {
				return graph.RandomRegularSeeded(400, 6, seed, graph.BuildOpts{})
			},
		},
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			var legacyL, seededL []float64
			for r := 0; r < R; r++ {
				lg, err := fam.legacy(uint64(2000 + r))
				if err != nil {
					t.Fatal(err)
				}
				sg, err := fam.seeded(uint64(2000 + r))
				if err != nil {
					t.Fatal(err)
				}
				ll, err := spectral.Lambda(lg, spectral.Options{})
				if err != nil {
					t.Fatal(err)
				}
				sl, err := spectral.Lambda(sg, spectral.Options{})
				if err != nil {
					t.Fatal(err)
				}
				legacyL = append(legacyL, ll)
				seededL = append(seededL, sl)
			}
			d, err := stats.KS2Sample(legacyL, seededL)
			if err != nil {
				t.Fatal(err)
			}
			if crit := ksCrit001(len(legacyL), len(seededL)); d > crit {
				t.Errorf("λ KS = %.3f > %.3f (α=0.001): seeded λ law differs from legacy", d, crit)
			}
		})
	}
}

package graph

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"div/internal/obs"
)

// This file is the suite-level graph-artifact cache: a ref-counted,
// byte-bounded LRU keyed by (family, n, params, build seed) that hands
// out shared *Graph instances — and with them the per-graph ArcIndex
// and any memoized scalars (spectral λ estimates) — so experiments
// that revisit the same grid point stop rebuilding O(n+m) structure.
//
// Concurrency model: Get resolves the key under the cache lock but
// builds outside it; concurrent requests for the same key share one
// build via a ready channel. The dedup pins each cold build to one
// calling goroutine, but the build itself is no longer serial: the
// seeded builders stripe their phases over the work-stealing pool
// (BuildOpts.Workers), so a single cold miss can still saturate the
// machine. Entries referenced by a live Handle
// (refs > 0) are pinned and never evicted. Eviction only forgets the
// cache's pointer — Graphs are immutable, so evicted-but-referenced
// instances stay valid and are reclaimed by GC when released.
//
// Metrics on obs.Default:
//
//	graph_cache_hits_total    Get calls resolved from the cache
//	graph_cache_misses_total  Get calls that built the artifact
//	graph_cache_bytes         resident bytes after the last Get/Release
//	graph_cache_evictions_total entries evicted to stay under the bound
//	graph_cache_build_nanos   artifact build duration per miss
//	graph_cache_wait_nanos    time a hit waited on an in-flight build
//	graph_cache_evict_nanos   duration of each eviction pass that
//	                          actually evicted something

var (
	cacheHits      = obs.Default.Counter("graph_cache_hits_total")
	cacheMisses    = obs.Default.Counter("graph_cache_misses_total")
	cacheBytes     = obs.Default.Gauge("graph_cache_bytes")
	cacheEvictions = obs.Default.Counter("graph_cache_evictions_total")

	cacheBuildNanos = obs.Default.Histogram("graph_cache_build_nanos")
	cacheWaitNanos  = obs.Default.Histogram("graph_cache_wait_nanos")
	cacheEvictNanos = obs.Default.Histogram("graph_cache_evict_nanos")
)

// Key identifies one cached graph artifact. Family is the builder name
// ("complete", "rr", ...); N the vertex count; A and B integer
// parameters (degree, second part size, attachment count — builder
// specific, zero when unused); F a float parameter as IEEE bits
// (rewiring probability); Seed the build seed for random families
// (zero for deterministic ones).
type Key struct {
	Family string
	N      int
	A, B   int
	F      uint64
	Seed   uint64
}

func (k Key) String() string {
	return fmt.Sprintf("%s(n=%d,a=%d,b=%d,f=%#x,seed=%#x)", k.Family, k.N, k.A, k.B, k.F, k.Seed)
}

type entry struct {
	key   Key
	g     *Graph
	bytes int64
	refs  int
	elem  *list.Element // position in the LRU list; nil while pinned or building

	ready chan struct{} // closed when the build completes
	err   error

	memoMu sync.Mutex
	memo   map[string]float64
}

// Cache is a ref-counted byte-bounded LRU of built graph artifacts.
// The hit/miss/eviction tallies are atomics updated outside the lock,
// so Stats readers and the per-Get bookkeeping never extend the
// critical section that guards the entry map.
type Cache struct {
	mu       sync.Mutex
	entries  map[Key]*entry
	lru      *list.List // front = most recent; only unpinned entries
	bytes    int64      // Σ bytes of resident entries
	capacity int64

	hits, misses, evictions atomic.Int64
}

// NewCache returns a cache bounded to roughly capBytes of graph +
// ArcIndex storage (MemBytes estimates). capBytes <= 0 means unbounded.
func NewCache(capBytes int64) *Cache {
	return &Cache{
		entries:  make(map[Key]*entry),
		lru:      list.New(),
		capacity: capBytes,
	}
}

// Handle is a pinned reference to a cached artifact. The graph is
// guaranteed to stay cached until Release; after Release the Handle's
// Graph pointer remains valid (Graphs are immutable) but the cache may
// forget it.
type Handle struct {
	c    *Cache
	e    *entry
	once sync.Once
}

// Graph returns the cached graph.
func (h *Handle) Graph() *Graph { return h.e.g }

// Release unpins the artifact. Idempotent.
func (h *Handle) Release() {
	h.once.Do(func() { h.c.release(h.e) })
}

// Float returns the memoized scalar under key, computing it with build
// on first request. Concurrent callers may race to build; the first
// stored value wins and all callers observe it — build must therefore
// be deterministic (spectral.Lambda with fixed Options is). This is
// how experiments share λ estimates without the graph package
// importing the spectral package.
func (h *Handle) Float(key string, build func(*Graph) float64) float64 {
	e := h.e
	e.memoMu.Lock()
	if v, ok := e.memo[key]; ok {
		e.memoMu.Unlock()
		cacheHits.Inc()
		return v
	}
	e.memoMu.Unlock()
	v := build(e.g)
	e.memoMu.Lock()
	if prev, ok := e.memo[key]; ok {
		v = prev
	} else {
		if e.memo == nil {
			e.memo = make(map[string]float64)
		}
		e.memo[key] = v
	}
	e.memoMu.Unlock()
	return v
}

// Get returns a pinned handle for the artifact under key, building it
// with build on a miss. Concurrent Gets for the same key share one
// build. The build runs outside the cache lock; its error is returned
// to every waiter and the entry is forgotten so a later Get retries.
func (c *Cache) Get(key Key, build func() (*Graph, error)) (*Handle, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		e.refs++
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		c.mu.Unlock()
		c.hits.Add(1)
		cacheHits.Inc()
		select {
		case <-e.ready:
			// Built already: the overwhelmingly common hit, kept free of
			// timestamp reads.
		default:
			waitStart := time.Now()
			<-e.ready
			cacheWaitNanos.Observe(time.Since(waitStart).Nanoseconds())
		}
		if e.err != nil {
			// Failed build: drop our pin and report.
			c.release(e)
			return nil, e.err
		}
		return &Handle{c: c, e: e}, nil
	}
	e := &entry{key: key, refs: 1, ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	cacheMisses.Inc()

	buildStart := time.Now()
	g, err := build()
	cacheBuildNanos.Observe(time.Since(buildStart).Nanoseconds())
	c.mu.Lock()
	if err != nil {
		e.err = err
		delete(c.entries, key)
		close(e.ready)
		c.mu.Unlock()
		return nil, err
	}
	e.g = g
	e.bytes = g.MemBytes()
	c.bytes += e.bytes
	c.evictLocked()
	resident := c.bytes
	close(e.ready)
	c.mu.Unlock()
	cacheBytes.Set(resident)
	return &Handle{c: c, e: e}, nil
}

// release drops one pin; the last release moves the entry onto the
// LRU list where it becomes evictable.
func (c *Cache) release(e *entry) {
	c.mu.Lock()
	e.refs--
	if e.refs == 0 && c.entries[e.key] == e {
		e.elem = c.lru.PushFront(e)
		c.evictLocked()
	}
	resident := c.bytes
	c.mu.Unlock()
	cacheBytes.Set(resident)
}

// evictLocked drops least-recently-used unpinned entries until the
// resident total fits the bound. Pinned entries never appear on the
// LRU list, so a working set larger than the bound simply overshoots
// until handles are released.
func (c *Cache) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	var passStart time.Time
	evicted := false
	for c.bytes > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		if !evicted {
			passStart = time.Now()
			evicted = true
		}
		e := back.Value.(*entry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evictions.Add(1)
		cacheEvictions.Inc()
	}
	if evicted {
		cacheEvictNanos.Observe(time.Since(passStart).Nanoseconds())
	}
}

// Bytes returns the resident size of all cached entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns cumulative hit/miss/eviction counts and resident size.
func (c *Cache) Stats() (hits, misses, evictions, bytes int64) {
	c.mu.Lock()
	b := c.bytes
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), b
}

// Len returns the number of resident entries (pinned + unpinned).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// sharedCacheBytes bounds the process-wide cache. The suite's largest
// artifact is the -full E2 endpoint K_3200 (≈ 12·n(n-1) ≈ 123 MB with
// ArcIndex), so 256 MiB holds it plus the rest of the working set
// while still forcing LRU turnover on pathological sweeps.
const sharedCacheBytes = 256 << 20

var (
	sharedCacheOnce sync.Once
	sharedCache     *Cache
)

// SharedCache returns the process-wide artifact cache used by the
// experiment suite.
func SharedCache() *Cache {
	sharedCacheOnce.Do(func() { sharedCache = NewCache(sharedCacheBytes) })
	return sharedCache
}

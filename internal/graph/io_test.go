package graph

import (
	"strings"
	"testing"

	"div/internal/rng"
)

func TestEdgeListRoundTrip(t *testing.T) {
	graphs := []*Graph{
		Complete(5),
		Path(7),
		Star(4),
		MustFromEdges(3, nil),
	}
	for _, g := range graphs {
		var b strings.Builder
		if err := WriteEdgeList(&b, g); err != nil {
			t.Fatalf("%v: write: %v", g, err)
		}
		got, err := ReadEdgeList(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("%v: read: %v", g, err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Errorf("%v: round trip changed shape to n=%d m=%d", g, got.N(), got.M())
		}
		if got.Name() != g.Name() {
			t.Errorf("%v: round trip changed name to %q", g, got.Name())
		}
		for _, e := range g.Edges() {
			if !got.HasEdge(e.U, e.V) {
				t.Errorf("%v: round trip lost edge %v", g, e)
			}
		}
	}
}

func TestEdgeListRoundTripRandom(t *testing.T) {
	r := rng.New(11)
	g, err := Gnp(60, 0.1, r)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteEdgeList(&b, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != g.M() {
		t.Fatalf("edge count changed: %d -> %d", g.M(), got.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"missing edges", "3 2\n0 1\n"},
		{"extra edges", "3 1\n0 1\n1 2\n"},
		{"three fields", "2 1\n0 1 9\n"},
		{"self loop", "2 1\n1 1\n"},
		{"out of range", "2 1\n0 5\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.input)); err == nil {
				t.Errorf("input %q accepted", tc.input)
			}
		})
	}
}

func TestReadEdgeListSkipsCommentsAndBlanks(t *testing.T) {
	input := "# a comment\n\n# name test\n3 2\n\n0 1\n# mid comment\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || g.Name() != "test" {
		t.Errorf("parsed n=%d m=%d name=%q", g.N(), g.M(), g.Name())
	}
}

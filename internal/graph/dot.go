package graph

import (
	"bufio"
	"fmt"
	"io"
)

// DOTOptions customizes WriteDOT output.
type DOTOptions struct {
	// Name is the graph name in the DOT header (default "G").
	Name string
	// Label, when non-nil, supplies a per-vertex label (e.g. the
	// current opinion) rendered as the node's label attribute.
	Label func(v int) string
}

// WriteDOT serializes g in Graphviz DOT format, for visual inspection
// of small instances (e.g. `divsim`-sized runs rendered with neato).
func WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n", name); err != nil {
		return err
	}
	if opts.Label != nil {
		for v := 0; v < g.N(); v++ {
			if _, err := fmt.Fprintf(bw, "  %d [label=%q];\n", v, opts.Label(v)); err != nil {
				return err
			}
		}
	} else {
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) == 0 {
				if _, err := fmt.Fprintf(bw, "  %d;\n", v); err != nil {
					return err
				}
			}
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

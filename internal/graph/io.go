package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g in a plain-text format:
//
//	# name <label>        (optional comment lines)
//	n m
//	u v                   (one line per edge, u < v)
//
// The format round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if g.Name() != "" {
		if _, err := fmt.Fprintf(bw, "# name %s\n", g.Name()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	name := ""
	var n, m int
	header := false
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# name "); ok {
				name = strings.TrimSpace(rest)
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected two fields, got %q", line, text)
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		if !header {
			n, m = a, b
			header = true
			edges = make([]Edge, 0, m)
			continue
		}
		edges = append(edges, Edge{U: a, V: b})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if !header {
		return nil, fmt.Errorf("graph: missing header line")
	}
	if len(edges) != m {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", m, len(edges))
	}
	g, err := NewFromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	if name != "" {
		g = g.WithName(name)
	}
	return g, nil
}

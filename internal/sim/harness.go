// Package sim is the experiment harness: it fans Monte-Carlo trials
// across a worker pool with deterministic per-trial seeds, aggregates
// results, and renders the tables that regenerate the paper's claims
// (see DESIGN.md §3 for the experiment index E1–E20).
package sim

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"div/internal/obs"
	"div/internal/rng"
)

// Metrics is the registry the harness aggregates into (obs.Default
// unless a test swaps it): per-trial wall-time histograms
// (sim_trial_micros), per-span wall times of the blocked kernel's
// work units (sim_block_micros), trial counters (sim_trials_total,
// sim_trial_errors_total), the current pool width (sim_workers), and
// the worker-utilization of the last batch in permille
// (sim_worker_utilization_permille = Σ trial time / (wall · workers) ·
// 1000 — 1000 means every worker was busy the whole batch, low values
// mean the pool was starved by stragglers).
var Metrics = obs.Default

// TrialFunc computes one trial. The trial index and a derived seed are
// supplied; the function must draw all randomness from the seed so
// trials are reproducible and order-independent.
type TrialFunc[T any] func(trial int, seed uint64) (T, error)

// WorkerTrialFunc computes one trial with access to its worker's
// reusable scratch value W. As with TrialFunc, all randomness must
// derive from seed; the scratch carries reusable *memory* (e.g. a
// *core.Scratch), never randomness or results, so trials stay
// reproducible and order-independent regardless of which worker runs
// them.
type WorkerTrialFunc[T, W any] func(trial int, seed uint64, scratch W) (T, error)

// Instrumented executes one trial body with the harness's standard
// instrumentation and containment: wall time observed in
// sim_trial_micros, sim_trials_total incremented, a panic recovered
// into an error (with stack attached) and errors counted in
// sim_trial_errors_total. Both the in-package worker pool and the
// suite scheduler's trial tasks (internal/exp's sweeps) run trial
// bodies through this, so per-trial metrics mean the same thing on
// every execution path.
func Instrumented[T any](fn func() (T, error)) (res T, elapsed time.Duration, err error) {
	start := time.Now()
	res, err = func() (res T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
			}
		}()
		return fn()
	}()
	elapsed = time.Since(start)
	Metrics.Histogram("sim_trial_micros").Observe(elapsed.Microseconds())
	Metrics.Counter("sim_trials_total").Inc()
	if err != nil {
		Metrics.Counter("sim_trial_errors_total").Inc()
	}
	return res, elapsed, err
}

// InstrumentedBlock executes one span of trials with the same
// instrumentation and containment as Instrumented, amortized over the
// span: the body runs once for all `trials` trials (the blocked
// kernel steps them together, so per-trial wall times are not
// individually observable), sim_trial_micros records the per-trial
// mean, sim_trials_total advances by the span size, and a panic is
// recovered into an error counted once in sim_trial_errors_total.
func InstrumentedBlock(trials int, fn func() error) (elapsed time.Duration, err error) {
	start := time.Now()
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
			}
		}()
		return fn()
	}()
	elapsed = time.Since(start)
	if trials > 0 {
		h := Metrics.Histogram("sim_trial_micros")
		per := (elapsed / time.Duration(trials)).Microseconds()
		for i := 0; i < trials; i++ {
			h.Observe(per)
		}
		Metrics.Counter("sim_trials_total").Add(int64(trials))
		// The span itself — the blocked kernel's unit of work — gets its
		// own latency distribution, undivided.
		Metrics.Histogram("sim_block_micros").Observe(elapsed.Microseconds())
	}
	if err != nil {
		Metrics.Counter("sim_trial_errors_total").Inc()
	}
	return elapsed, err
}

// TrialBlocks partitions trials 0..trials-1 into consecutive spans of
// `block` trials and runs fn once per span across the worker pool —
// the span-granularity analog of TrialsWorker, for trial bodies that
// step a whole span together (core.RunBlock). Spans are claimed
// dynamically, so the worker-to-span assignment is load-dependent; fn
// must derive all randomness from its trial indices (counter-based
// streams do) so results stay reproducible regardless. The scratch
// rules match TrialsWorker: newScratch runs once per worker, carries
// memory only.
func TrialBlocks[W any](trials, block, parallelism int, newScratch func() W, fn func(t0, t1 int, scratch W) error) error {
	if trials < 0 {
		return fmt.Errorf("sim: negative trial count %d", trials)
	}
	if block <= 0 {
		block = 1
	}
	spans := (trials + block - 1) / block
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > spans {
		parallelism = spans
	}
	if spans == 0 {
		return nil
	}
	var (
		mu       sync.Mutex
		firstErr error
		next     int
		wg       sync.WaitGroup

		busyNanos int64
	)
	Metrics.Gauge("sim_workers").Set(int64(parallelism))
	batchStart := time.Now()
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= spans {
			return 0, false
		}
		s := next
		next++
		return s, true
	}
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch W
			haveScratch := false
			for {
				s, ok := take()
				if !ok {
					return
				}
				if !haveScratch {
					scratch = newScratch()
					haveScratch = true
				}
				t0 := s * block
				t1 := t0 + block
				if t1 > trials {
					t1 = trials
				}
				elapsed, err := InstrumentedBlock(t1-t0, func() error { return fn(t0, t1, scratch) })
				mu.Lock()
				busyNanos += elapsed.Nanoseconds()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("sim: trials [%d,%d): %w", t0, t1, err)
				}
				abort := firstErr != nil
				mu.Unlock()
				if abort {
					return
				}
			}
		}()
	}
	wg.Wait()
	if wall := time.Since(batchStart).Nanoseconds(); wall > 0 {
		util := 1000 * busyNanos / (wall * int64(parallelism))
		Metrics.Gauge("sim_worker_utilization_permille").Set(util)
	}
	return firstErr
}

// Trials runs fn for trial = 0..trials-1 in parallel and returns the
// results indexed by trial. Parallelism 0 means GOMAXPROCS. The first
// error aborts outstanding work and is returned. A panic inside fn is
// recovered and surfaced the same way (with the trial index and stack
// attached) instead of tearing down the whole process from a worker
// goroutine — a single bad trial out of thousands should fail the
// experiment, not lose every other experiment sharing the run.
func Trials[T any](trials int, baseSeed uint64, parallelism int, fn TrialFunc[T]) ([]T, error) {
	return TrialsWorker(trials, baseSeed, parallelism,
		func() struct{} { return struct{}{} },
		func(trial int, seed uint64, _ struct{}) (T, error) { return fn(trial, seed) })
}

// TrialsWorker is Trials with a per-worker scratch: newScratch runs
// once per worker goroutine (lazily, before its first trial) and the
// returned value is passed to every trial that worker executes. This
// is the allocation-reuse hook behind the zero-allocation trial
// pipeline — a worker's core.Scratch amortizes all O(n+m) state across
// its trials — while keeping the result distribution independent of
// the worker-to-trial assignment.
func TrialsWorker[T, W any](trials int, baseSeed uint64, parallelism int, newScratch func() W, fn WorkerTrialFunc[T, W]) ([]T, error) {
	if trials < 0 {
		return nil, fmt.Errorf("sim: negative trial count %d", trials)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > trials {
		parallelism = trials
	}
	results := make([]T, trials)
	if trials == 0 {
		return results, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		next     int
		wg       sync.WaitGroup

		busyNanos int64 // Σ per-trial wall time, for utilization
	)
	Metrics.Gauge("sim_workers").Set(int64(parallelism))
	batchStart := time.Now()
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= trials {
			return 0, false
		}
		t := next
		next++
		return t, true
	}
	fail := func(t int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = fmt.Errorf("sim: trial %d: %w", t, err)
		}
	}
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch W
			haveScratch := false
			for {
				t, ok := take()
				if !ok {
					return
				}
				if !haveScratch {
					scratch = newScratch()
					haveScratch = true
				}
				seed := rng.DeriveSeed(baseSeed, uint64(t))
				res, elapsed, err := Instrumented(func() (T, error) { return fn(t, seed, scratch) })
				mu.Lock()
				busyNanos += elapsed.Nanoseconds()
				mu.Unlock()
				if err != nil {
					fail(t, err)
					return
				}
				results[t] = res
			}
		}()
	}
	wg.Wait()
	if wall := time.Since(batchStart).Nanoseconds(); wall > 0 {
		util := 1000 * busyNanos / (wall * int64(parallelism))
		Metrics.Gauge("sim_worker_utilization_permille").Set(util)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Map applies fn to every element of xs in parallel (same pool
// semantics as Trials), for sweeps whose points are independent.
func Map[X, Y any](xs []X, baseSeed uint64, parallelism int, fn func(i int, x X, seed uint64) (Y, error)) ([]Y, error) {
	return Trials(len(xs), baseSeed, parallelism, func(trial int, seed uint64) (Y, error) {
		return fn(trial, xs[trial], seed)
	})
}

// GeometricInts returns approximately count integers spaced
// geometrically from lo to hi inclusive, deduplicated and ascending —
// the standard n-sweep for scaling experiments.
func GeometricInts(lo, hi, count int) []int {
	if count < 2 || hi <= lo {
		return []int{lo}
	}
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(count-1))
	out := make([]int, 0, count)
	x := float64(lo)
	last := 0
	for i := 0; i < count; i++ {
		v := int(x + 0.5)
		if v > hi {
			v = hi
		}
		if v != last {
			out = append(out, v)
			last = v
		}
		x *= ratio
	}
	if out[len(out)-1] != hi {
		out = append(out, hi)
	}
	return out
}

package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"div/internal/obs"
)

func swapMetrics(t *testing.T) *obs.Registry {
	t.Helper()
	old := Metrics
	reg := obs.NewRegistry()
	Metrics = reg
	t.Cleanup(func() { Metrics = old })
	return reg
}

func TestTrialsMetrics(t *testing.T) {
	reg := swapMetrics(t)
	const trials = 12
	_, err := Trials(trials, 1, 3, func(trial int, seed uint64) (int, error) {
		time.Sleep(time.Millisecond)
		return trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sim_trials_total").Value(); got != trials {
		t.Fatalf("sim_trials_total = %d, want %d", got, trials)
	}
	if got := reg.Counter("sim_trial_errors_total").Value(); got != 0 {
		t.Fatalf("sim_trial_errors_total = %d", got)
	}
	if got := reg.Gauge("sim_workers").Value(); got != 3 {
		t.Fatalf("sim_workers = %d, want 3", got)
	}
	h := reg.Histogram("sim_trial_micros")
	if h.Count() != trials {
		t.Fatalf("trial-time histogram count = %d, want %d", h.Count(), trials)
	}
	if h.Sum() < trials*1000 {
		t.Fatalf("trial-time histogram sum = %dµs, below %d sleeps of 1ms", h.Sum(), trials)
	}
	util := reg.Gauge("sim_worker_utilization_permille").Value()
	if util <= 0 || util > 1100 { // small scheduling slack above 1000
		t.Fatalf("worker utilization = %d‰, outside (0, 1100]", util)
	}
}

func TestTrialsMetricsOnError(t *testing.T) {
	reg := swapMetrics(t)
	boom := errors.New("boom")
	_, err := Trials(8, 1, 2, func(trial int, seed uint64) (int, error) {
		if trial == 3 {
			return 0, boom
		}
		return trial, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := reg.Counter("sim_trial_errors_total").Value(); got == 0 {
		t.Fatal("error counter not incremented")
	}
}

func TestInstrumented(t *testing.T) {
	reg := swapMetrics(t)
	v, elapsed, err := Instrumented(func() (int, error) {
		time.Sleep(time.Millisecond)
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("Instrumented = (%d, %v), want (42, nil)", v, err)
	}
	if elapsed < time.Millisecond {
		t.Fatalf("elapsed = %v, want >= 1ms", elapsed)
	}
	if got := reg.Counter("sim_trials_total").Value(); got != 1 {
		t.Fatalf("sim_trials_total = %d, want 1", got)
	}
	if got := reg.Histogram("sim_trial_micros").Count(); got != 1 {
		t.Fatalf("sim_trial_micros count = %d, want 1", got)
	}

	// Error path counts.
	boom := errors.New("boom")
	if _, _, err := Instrumented(func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := reg.Counter("sim_trial_errors_total").Value(); got != 1 {
		t.Fatalf("sim_trial_errors_total = %d, want 1", got)
	}

	// A panic is contained into an error with the stack attached.
	_, _, err = Instrumented(func() (int, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	if got := reg.Counter("sim_trial_errors_total").Value(); got != 2 {
		t.Fatalf("sim_trial_errors_total = %d, want 2", got)
	}
}

package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned results table: the common output
// format of every experiment generator (text for the terminal, CSV for
// downstream tooling).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v == 0:
		return "0"
	case absf(v) >= 1e6 || absf(v) < 1e-4:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string, for logs and tests.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV emits the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package sim

import (
	"errors"
	"strings"
	"testing"

	"div/internal/rng"
)

func TestTrialsDeterministicAcrossParallelism(t *testing.T) {
	fn := func(trial int, seed uint64) (uint64, error) {
		return rng.New(seed).Uint64() + uint64(trial), nil
	}
	serial, err := Trials(64, 7, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Trials(64, 7, 8, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("trial %d differs: %d vs %d", i, serial[i], parallel[i])
		}
	}
}

func TestTrialsErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Trials(100, 1, 4, func(trial int, seed uint64) (int, error) {
		if trial == 37 {
			return 0, boom
		}
		return trial, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "trial 37") {
		t.Errorf("error %q does not name the failing trial", err)
	}
}

func TestTrialsEdgeCases(t *testing.T) {
	res, err := Trials(0, 1, 4, func(int, uint64) (int, error) { return 0, nil })
	if err != nil || len(res) != 0 {
		t.Errorf("zero trials: %v, %v", res, err)
	}
	if _, err := Trials[int](-1, 1, 4, nil); err == nil {
		t.Error("negative trials accepted")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	xs := []int{10, 20, 30, 40}
	ys, err := Map(xs, 1, 4, func(i int, x int, seed uint64) (int, error) {
		return x * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range ys {
		if y != xs[i]*2 {
			t.Fatalf("ys = %v", ys)
		}
	}
}

func TestGeometricInts(t *testing.T) {
	got := GeometricInts(100, 1600, 5)
	if got[0] != 100 || got[len(got)-1] != 1600 {
		t.Errorf("endpoints: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("not strictly increasing: %v", got)
		}
	}
	// Roughly doubling.
	for i := 1; i < len(got); i++ {
		ratio := float64(got[i]) / float64(got[i-1])
		if ratio < 1.5 || ratio > 2.5 {
			t.Errorf("ratio %v at %d: %v", ratio, i, got)
		}
	}
	if one := GeometricInts(50, 50, 5); len(one) != 1 || one[0] != 50 {
		t.Errorf("degenerate sweep: %v", one)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo", "n", "value")
	tbl.AddRow(10, 3.14159)
	tbl.AddRow(2000, "x")
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "3.1416") {
		t.Errorf("float not formatted: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines: %q", len(lines), out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(0.0)
	tbl.AddRow(1e-9)
	tbl.AddRow(2.5e7)
	tbl.AddRow(nanv())
	rows := tbl.Rows
	if rows[0][0] != "0" {
		t.Errorf("zero = %q", rows[0][0])
	}
	if !strings.Contains(rows[1][0], "e-") {
		t.Errorf("tiny = %q", rows[1][0])
	}
	if !strings.Contains(rows[2][0], "e+") {
		t.Errorf("huge = %q", rows[2][0])
	}
	if rows[3][0] != "NaN" {
		t.Errorf("nan = %q", rows[3][0])
	}
}

func nanv() float64 {
	var z float64
	return z / z
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow(1, "x,y")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTrialsRecoversPanic(t *testing.T) {
	_, err := Trials(8, 1, 4, func(trial int, seed uint64) (int, error) {
		if trial == 3 {
			panic("boom in trial")
		}
		return trial, nil
	})
	if err == nil {
		t.Fatal("Trials returned nil error for a panicking trial")
	}
	for _, want := range []string{"trial 3", "panic", "boom in trial"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if !strings.Contains(err.Error(), "sim_test.go") {
		t.Errorf("error does not carry the panicking site's stack:\n%v", err)
	}
}

func TestTrialsRecoversPanicSerial(t *testing.T) {
	if _, err := Trials(4, 1, 1, func(trial int, seed uint64) (int, error) {
		panic(trial)
	}); err == nil || !strings.Contains(err.Error(), "trial 0") {
		t.Fatalf("serial panic not surfaced as first error: %v", err)
	}
}

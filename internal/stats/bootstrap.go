package stats

import (
	"fmt"
	"sort"

	"div/internal/rng"
)

// BootstrapCI computes a percentile bootstrap confidence interval for
// an arbitrary statistic of a sample: the statistic is evaluated on
// resamples drawn with replacement, and the (α/2, 1-α/2) percentiles of
// the resampled distribution are returned. Deterministic given the
// seed. Used by the harness for statistics (medians, ratios, fitted
// exponents) whose sampling distribution has no clean closed form.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, confidence float64, seed uint64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: bootstrap of empty sample")
	}
	if resamples < 10 {
		return 0, 0, fmt.Errorf("stats: need at least 10 resamples, got %d", resamples)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	r := rng.New(seed)
	buf := make([]float64, len(xs))
	vals := make([]float64, resamples)
	for i := 0; i < resamples; i++ {
		for j := range buf {
			buf[j] = xs[r.IntN(len(xs))]
		}
		vals[i] = stat(buf)
	}
	sort.Float64s(vals)
	alpha := (1 - confidence) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return vals[loIdx], vals[hiIdx], nil
}

// BootstrapMeanCI is BootstrapCI specialized to the mean.
func BootstrapMeanCI(xs []float64, resamples int, confidence float64, seed uint64) (lo, hi float64, err error) {
	return BootstrapCI(xs, Mean, resamples, confidence, seed)
}

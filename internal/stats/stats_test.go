package stats

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !approx(s.Mean, 5, 1e-12) {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample variance with n-1: Σ(x-5)² = 32, /7.
	if !approx(s.Variance, 32.0/7, 1e-12) {
		t.Errorf("variance = %v", s.Variance)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if !approx(s.Stderr(), s.Stddev()/math.Sqrt(8), 1e-12) {
		t.Errorf("stderr = %v", s.Stderr())
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	e := Summarize(nil)
	if e.N != 0 || e.Mean != 0 || e.Variance != 0 || e.Min != 0 || e.Max != 0 {
		t.Errorf("empty summary = %+v", e)
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Variance != 0 || s.Min != 3 || s.Max != 3 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3, 2},
	}
	for _, tc := range tests {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q > 1 accepted")
	}
	med, err := Median([]float64{5})
	if err != nil || med != 5 {
		t.Errorf("Median singleton = %v, %v", med, err)
	}
}

func TestWilsonCI(t *testing.T) {
	lo, hi := WilsonCI(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("Wilson CI [%v,%v] excludes 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("Wilson CI [%v,%v] too wide", lo, hi)
	}
	lo, hi = WilsonCI(0, 100, 1.96)
	if lo != 0 || hi < 0.01 || hi > 0.1 {
		t.Errorf("Wilson CI for 0/100 = [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("Wilson CI for 0 trials = [%v,%v]", lo, hi)
	}
}

func TestBinomialZ(t *testing.T) {
	// 60/100 at p0=0.5: z = 10/5 = 2.
	if z := BinomialZ(60, 100, 0.5); !approx(z, 2, 1e-12) {
		t.Errorf("z = %v, want 2", z)
	}
	if z := BinomialZ(10, 0, 0.5); z != 0 {
		t.Errorf("zero trials z = %v", z)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a, 3, 1e-12) || !approx(b, 2, 1e-12) || !approx(r2, 1, 1e-12) {
		t.Errorf("fit a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestPowerLawFitExact(t *testing.T) {
	// y = 3·x².
	xs := []float64{1, 2, 4, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	e, c, r2, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(e, 2, 1e-10) || !approx(c, 3, 1e-9) || !approx(r2, 1, 1e-12) {
		t.Errorf("fit e=%v c=%v r2=%v", e, c, r2)
	}
	if _, _, _, err := PowerLawFit([]float64{0, 1}, []float64{1, 1}); err == nil {
		t.Error("non-positive data accepted")
	}
}

func TestChiSquare(t *testing.T) {
	stat, dof, err := ChiSquare([]int64{10, 20, 30}, []float64{15, 15, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := 25.0/15 + 25.0/15
	if !approx(stat, want, 1e-12) || dof != 2 {
		t.Errorf("chi2 = %v dof %d, want %v dof 2", stat, dof, want)
	}
	if _, _, err := ChiSquare([]int64{1}, []float64{0}); err == nil {
		t.Error("zero expected accepted")
	}
	if _, _, err := ChiSquare([]int64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestKSDistanceUniform(t *testing.T) {
	// Perfectly spaced sample against the uniform CDF: distance 1/2n.
	xs := []float64{0.125, 0.375, 0.625, 0.875}
	cdf := func(x float64) float64 { return x }
	d, err := KSDistance(xs, cdf)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, 0.125, 1e-12) {
		t.Errorf("KS distance = %v, want 0.125", d)
	}
	if _, err := KSDistance(nil, cdf); err == nil {
		t.Error("empty sample accepted")
	}
}

package stats

import (
	"testing"

	"div/internal/rng"
)

func TestBootstrapCIErrors(t *testing.T) {
	if _, _, err := BootstrapMeanCI(nil, 100, 0.95, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := BootstrapMeanCI([]float64{1, 2}, 5, 0.95, 1); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, _, err := BootstrapMeanCI([]float64{1, 2}, 100, 1.5, 1); err == nil {
		t.Error("confidence > 1 accepted")
	}
}

func TestBootstrapMeanCICoversTruth(t *testing.T) {
	// Samples from Uniform(0,10): the 95% CI of the mean should cover
	// 5 in the vast majority of repetitions.
	r := rng.New(3)
	covered := 0
	const reps = 100
	for rep := 0; rep < reps; rep++ {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = r.Float64() * 10
		}
		lo, hi, err := BootstrapMeanCI(xs, 500, 0.95, rng.DeriveSeed(4, uint64(rep)))
		if err != nil {
			t.Fatal(err)
		}
		if lo > hi {
			t.Fatalf("inverted interval [%v,%v]", lo, hi)
		}
		if lo <= 5 && 5 <= hi {
			covered++
		}
	}
	if covered < 85 {
		t.Errorf("true mean covered in only %d/%d repetitions", covered, reps)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	lo1, hi1, err := BootstrapMeanCI(xs, 200, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapMeanCI(xs, 200, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("bootstrap not deterministic by seed")
	}
}

func TestBootstrapCustomStatistic(t *testing.T) {
	// One outlier among 16 points: resampled medians essentially never
	// reach it, unlike resampled means.
	xs := []float64{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 100}
	med := func(v []float64) float64 {
		m, _ := Median(v)
		return m
	}
	lo, hi, err := BootstrapCI(xs, med, 500, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 1 || hi > 100 {
		t.Errorf("median CI [%v,%v] out of data range", lo, hi)
	}
	if hi >= 100 {
		t.Errorf("median CI [%v,%v] dominated by the outlier", lo, hi)
	}
}

// Package stats provides the statistical machinery the experiment
// harness relies on: summary statistics, quantiles, binomial confidence
// intervals, histograms, least-squares fits (including log-log scaling
// exponents), chi-square goodness of fit, and empirical CDF distances.
// Everything is plain, allocation-conscious stdlib Go.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator); 0 for n < 2
	Min, Max float64
}

// Summarize computes a Summary with Welford's online algorithm.
func Summarize(xs []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	var m, m2 float64
	for _, x := range xs {
		s.N++
		d := x - m
		m += d / float64(s.N)
		m2 += d * (x - m)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = m
	if s.N >= 2 {
		s.Variance = m2 / float64(s.N-1)
	}
	if s.N == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

// Stddev returns the sample standard deviation.
func (s Summary) Stddev() float64 { return math.Sqrt(s.Variance) }

// Stderr returns the standard error of the mean (0 for empty samples).
func (s Summary) Stderr() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(s.N))
}

// Mean is a convenience over Summarize.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, nil
}

// Median returns the 0.5 quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// WilsonCI returns the Wilson score interval for a binomial proportion
// with successes out of trials at the given z (1.96 for 95%).
func WilsonCI(successes, trials int, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	centre := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = centre - half
	hi = centre + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// BinomialZ returns the z-score of observing successes out of trials
// when the true proportion is p0. |z| > 3 at reasonable trial counts
// flags a significant deviation; statistical tests in this repository
// use generous thresholds (4-5) to keep flake probability negligible.
func BinomialZ(successes, trials int, p0 float64) float64 {
	if trials == 0 || p0 <= 0 || p0 >= 1 {
		return 0
	}
	n := float64(trials)
	return (float64(successes) - n*p0) / math.Sqrt(n*p0*(1-p0))
}

// LinearFit fits y = a + b·x by ordinary least squares and returns the
// intercept a, slope b, and coefficient of determination R².
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("stats: LinearFit length mismatch %d vs %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if n < 2 {
		return 0, 0, 0, fmt.Errorf("stats: LinearFit needs at least 2 points")
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, fmt.Errorf("stats: LinearFit degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return a, b, r2, nil
}

// PowerLawFit fits y = C·x^e on log-log scale and returns the exponent
// e, prefactor C, and R² of the log-log fit. All inputs must be > 0.
func PowerLawFit(xs, ys []float64) (exponent, prefactor, r2 float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || i >= len(ys) || ys[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: PowerLawFit requires positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	a, b, r2, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return b, math.Exp(a), r2, nil
}

// ChiSquare returns the chi-square statistic of observed counts against
// expected counts (same length; expected entries must be positive), and
// the degrees of freedom len-1.
func ChiSquare(observed []int64, expected []float64) (stat float64, dof int, err error) {
	if len(observed) != len(expected) {
		return 0, 0, fmt.Errorf("stats: ChiSquare length mismatch")
	}
	for i := range observed {
		if expected[i] <= 0 {
			return 0, 0, fmt.Errorf("stats: ChiSquare expected[%d] not positive", i)
		}
		d := float64(observed[i]) - expected[i]
		stat += d * d / expected[i]
	}
	return stat, len(observed) - 1, nil
}

// KSDistance returns the two-sided Kolmogorov–Smirnov distance between
// the empirical CDF of xs and the reference CDF function.
func KSDistance(xs []float64, cdf func(float64) float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: KSDistance on empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var maxD float64
	for i, x := range sorted {
		f := cdf(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if d := math.Abs(f - lo); d > maxD {
			maxD = d
		}
		if d := math.Abs(f - hi); d > maxD {
			maxD = d
		}
	}
	return maxD, nil
}

// KS2Sample returns the two-sample Kolmogorov–Smirnov distance between
// the empirical CDFs of xs and ys. Ties are handled exactly: both
// empirical CDFs only jump *at* sample values, so the distance is
// evaluated after consuming every observation equal to the current
// value from both samples. (Evaluating mid-tie-block would compare one
// CDF mid-jump against the other pre-jump and inflate the distance by
// up to the largest atom's probability mass, which matters for the
// discrete step-count distributions this is applied to.)
func KS2Sample(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, fmt.Errorf("stats: KS2Sample on empty sample")
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var maxD float64
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var x float64
		switch {
		case i >= len(a):
			x = b[j]
		case j >= len(b):
			x = a[i]
		case a[i] <= b[j]:
			x = a[i]
		default:
			x = b[j]
		}
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		d := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if d > maxD {
			maxD = d
		}
	}
	return maxD, nil
}

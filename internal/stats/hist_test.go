package stats

import (
	"testing"
)

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram()
	h.Add(3)
	h.Add(3)
	h.Add(5)
	h.AddN(1, 4)
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Count(3) != 2 || h.Count(5) != 1 || h.Count(1) != 4 || h.Count(9) != 0 {
		t.Errorf("counts wrong: %s", h)
	}
	if p := h.Proportion(3); p != 2.0/7 {
		t.Errorf("proportion(3) = %v", p)
	}
	keys := h.Keys()
	want := []int{1, 3, 5}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
	v, c, ok := h.Mode()
	if !ok || v != 1 || c != 4 {
		t.Errorf("mode = %d,%d,%v", v, c, ok)
	}
	if h.String() != "1:4 3:2 5:1" {
		t.Errorf("String = %q", h.String())
	}
}

func TestIntHistogramEmpty(t *testing.T) {
	h := NewIntHistogram()
	if _, _, ok := h.Mode(); ok {
		t.Error("empty histogram has a mode")
	}
	if h.Proportion(1) != 0 {
		t.Error("empty histogram proportion nonzero")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(0.5) // bucket 0
	h.Add(9.5) // bucket 4
	h.Add(-3)  // clamps to 0
	h.Add(42)  // clamps to 4
	h.Add(5)   // bucket 2
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
	want := []int64{2, 0, 1, 0, 2}
	for i, w := range want {
		if h.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Buckets[i], w)
		}
	}
	if c := h.BucketCenter(2); c != 5 {
		t.Errorf("center(2) = %v", c)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram accepted")
		}
	}()
	NewHistogram(5, 5, 3)
}

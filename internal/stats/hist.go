package stats

import (
	"fmt"
	"sort"
	"strings"
)

// IntHistogram counts occurrences of integer outcomes (e.g. winning
// opinions across trials).
type IntHistogram struct {
	counts map[int]int64
	total  int64
}

// NewIntHistogram returns an empty histogram.
func NewIntHistogram() *IntHistogram {
	return &IntHistogram{counts: make(map[int]int64)}
}

// Add records one observation of x.
func (h *IntHistogram) Add(x int) { h.AddN(x, 1) }

// AddN records n observations of x.
func (h *IntHistogram) AddN(x int, n int64) {
	h.counts[x] += n
	h.total += n
}

// Count returns the number of observations of x.
func (h *IntHistogram) Count(x int) int64 { return h.counts[x] }

// Total returns the number of observations.
func (h *IntHistogram) Total() int64 { return h.total }

// Proportion returns Count(x)/Total (0 for an empty histogram).
func (h *IntHistogram) Proportion(x int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[x]) / float64(h.total)
}

// Keys returns the observed values in ascending order.
func (h *IntHistogram) Keys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Mode returns the most frequent value (smallest on ties) and its
// count; ok is false for an empty histogram.
func (h *IntHistogram) Mode() (value int, count int64, ok bool) {
	for _, k := range h.Keys() {
		if h.counts[k] > count {
			value, count, ok = k, h.counts[k], true
		}
	}
	return value, count, ok
}

// String renders "value:count" pairs in ascending value order.
func (h *IntHistogram) String() string {
	var b strings.Builder
	for i, k := range h.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", k, h.counts[k])
	}
	return b.String()
}

// Histogram bins float64 observations into uniform-width buckets over
// [Lo, Hi); out-of-range observations clamp to the boundary buckets.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
	total   int64
}

// NewHistogram returns a histogram with the given bucket count over
// [lo, hi). It panics for invalid shapes, which are programmer errors.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) x%d", lo, hi, buckets))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + w*(float64(i)+0.5)
}

package baseline

import (
	"math/rand/v2"

	"div/internal/core"
)

// Push-flavoured dynamics: the scheduler still draws "v chooses w", but
// the OBSERVED vertex w is the one that updates — v pushes its opinion
// at w. Push and pull differ only on irregular graphs, where they
// conserve different weightings of the opinion vector:
//
//	pull DIV, vertex process:  Σ d(v)·X_v   (the paper's Z(t))
//	push DIV, vertex process:  Σ X_v/d(v)   (inverse-degree weighted)
//
// The inverse-degree identity follows from the same antisymmetry
// argument as Lemma 3: the (v,w) term of the expected one-step change
// of Σ X_u/d(u) is sign(X_v−X_w)/(n·d(v)·d(w)), symmetric in v,w up to
// the antisymmetric sign — so the sum over arcs cancels exactly.
// core.PushDIVInvDegDrift exposes the exact enumeration, and the E17
// experiment confirms consensus tracks the inverse-degree average.

// PushDIV is incremental voting with the update direction reversed:
// the scheduled neighbour w moves one unit toward v's opinion.
type PushDIV struct{}

// Name implements core.Rule.
func (PushDIV) Name() string { return "push-div" }

// Step implements core.Rule.
func (PushDIV) Step(s *core.State, _ *rand.Rand, v, w int) {
	xv, xw := s.Opinion(v), s.Opinion(w)
	switch {
	case xw < xv:
		s.SetOpinion(w, xw+1)
	case xw > xv:
		s.SetOpinion(w, xw-1)
	}
}

// Push is classic push voting: v imposes its opinion on the scheduled
// neighbour w wholesale.
type Push struct{}

// Name implements core.Rule.
func (Push) Name() string { return "push" }

// Step implements core.Rule.
func (Push) Step(s *core.State, _ *rand.Rand, v, w int) {
	s.SetOpinion(w, s.Opinion(v))
}

var (
	_ core.Rule = PushDIV{}
	_ core.Rule = Push{}
)

package baseline

import (
	"fmt"
	"math/rand/v2"

	"div/internal/core"
)

// Stubborn wraps a single-vertex update rule and freezes a set of
// zealot vertices: zealots are observed like anyone else but never
// change their own opinion. Zealots model stubborn agents, sensor
// anchors, or crash-faulty nodes stuck at a reading.
//
// With DIV inside, the dynamics change qualitatively: if every zealot
// holds the same value z, the unique absorbing state is all-z — the
// zealots eventually drag the entire network, however few they are. If
// zealots disagree, no consensus exists and the network hovers in a
// quasi-stationary mixture between the zealot values. The E18
// experiment measures both regimes.
//
// The wrapper is only meaningful for rules that update the scheduled
// vertex v (DIV, IncrementalStep, Pull, Median, BestOfK); rules that
// update other vertices (Push, PushDIV, LoadBalance) would bypass the
// freeze, so NewStubborn rejects them.
type Stubborn struct {
	inner  core.Rule
	frozen []bool
}

// NewStubborn freezes the given zealot vertices under the inner rule.
func NewStubborn(inner core.Rule, n int, zealots []int) (*Stubborn, error) {
	switch inner.(type) {
	case Push, PushDIV, LoadBalance:
		return nil, fmt.Errorf("baseline: Stubborn cannot wrap %s (it updates vertices other than the scheduled one)", inner.Name())
	}
	frozen := make([]bool, n)
	for _, z := range zealots {
		if z < 0 || z >= n {
			return nil, fmt.Errorf("baseline: zealot %d out of range [0,%d)", z, n)
		}
		frozen[z] = true
	}
	return &Stubborn{inner: inner, frozen: frozen}, nil
}

// Name implements core.Rule.
func (s *Stubborn) Name() string { return "stubborn-" + s.inner.Name() }

// Step implements core.Rule.
func (s *Stubborn) Step(st *core.State, r *rand.Rand, v, w int) {
	if s.frozen[v] {
		return
	}
	s.inner.Step(st, r, v, w)
}

var _ core.Rule = (*Stubborn)(nil)

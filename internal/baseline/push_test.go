package baseline

import (
	"math"
	"testing"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
)

func TestPushRuleNames(t *testing.T) {
	if (PushDIV{}).Name() != "push-div" || (Push{}).Name() != "push" {
		t.Error("push rule names wrong")
	}
}

func TestPushDIVUpdatesObservedVertex(t *testing.T) {
	g := graph.Path(3)
	tests := []struct {
		name    string
		initial []int
		v, w    int
		wantW   int
	}{
		{"pulls w up", []int{5, 2, 3}, 0, 1, 3},
		{"pulls w down", []int{1, 4, 3}, 0, 1, 3},
		{"equal no-op", []int{4, 4, 3}, 0, 1, 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := core.MustState(g, tc.initial)
			PushDIV{}.Step(s, nil, tc.v, tc.w)
			if got := s.Opinion(tc.w); got != tc.wantW {
				t.Errorf("opinion(w) = %d, want %d", got, tc.wantW)
			}
			if s.Opinion(tc.v) != tc.initial[tc.v] {
				t.Error("pushing vertex changed")
			}
		})
	}
}

func TestPushImposesOpinion(t *testing.T) {
	g := graph.Path(2)
	s := core.MustState(g, []int{7, 2})
	Push{}.Step(s, nil, 0, 1)
	if s.Opinion(1) != 7 || s.Opinion(0) != 7 {
		t.Errorf("opinions after push: %d, %d", s.Opinion(0), s.Opinion(1))
	}
}

func TestPushDIVInvDegDriftIsZero(t *testing.T) {
	// The inverse-degree weight is conserved in expectation on every
	// graph and configuration (the push mirror of Lemma 3).
	r := rng.New(41)
	for trial := 0; trial < 60; trial++ {
		n := 5 + r.IntN(40)
		g, err := graph.ConnectedGnp(n, 0.3, r, 300)
		if err != nil {
			t.Fatal(err)
		}
		s := core.MustState(g, core.UniformOpinions(n, 2+r.IntN(9), r))
		if d := core.PushDIVInvDegDrift(s); math.Abs(d) > 1e-14 {
			t.Fatalf("inverse-degree drift %v on %v", d, g)
		}
	}
}

func TestPushDIVSumDriftNonzeroOnStar(t *testing.T) {
	g := graph.Star(5)
	s := core.MustState(g, []int{3, 1, 1, 1, 1})
	// Under push, v=0 (deg 4) pushes at leaves: each arc (0,leaf) has
	// sign +1, /d(0)=4 → +1 total; each leaf pushes at the centre with
	// sign -1, /1 → -4. E[ΔS] = (1-4)/5 = -0.6.
	if d := core.PushDIVSumDrift(s); math.Abs(d-(-0.6)) > 1e-12 {
		t.Errorf("push sum drift = %v, want -0.6", d)
	}
}

func TestPushDIVConsensusTracksInvDegAverage(t *testing.T) {
	// Star with the centre at 5: the centre's inverse-degree weight is
	// negligible, so push-DIV consensus should almost always be 1 —
	// the opposite of pull-DIV's degree-weighted target of 3.
	const n, trials = 41, 300
	g := graph.Star(n)
	init := make([]int, n)
	init[0] = 5
	for v := 1; v < n; v++ {
		init[v] = 1
	}
	target := core.InvDegAverage(core.MustState(g, init))
	if target > 1.2 {
		t.Fatalf("inverse-degree average %v unexpectedly high", target)
	}
	var sum float64
	for trial := 0; trial < trials; trial++ {
		res, err := core.Run(core.Config{
			Graph:   g,
			Initial: init,
			Process: core.VertexProcess,
			Rule:    PushDIV{},
			Seed:    rng.DeriveSeed(42, uint64(trial)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus {
			t.Fatalf("trial %d: no consensus", trial)
		}
		sum += float64(res.Winner)
	}
	mean := sum / trials
	if math.Abs(mean-target) > 0.25 {
		t.Errorf("mean push-DIV winner %.3f vs inverse-degree average %.3f", mean, target)
	}
}

func TestInvDegHelpers(t *testing.T) {
	g := graph.Star(4) // centre deg 3, leaves deg 1
	s := core.MustState(g, []int{3, 1, 1, 1})
	wantSum := 3.0/3 + 3 // 1 + 3·(1/1)
	if got := core.InvDegSum(s); math.Abs(got-wantSum) > 1e-12 {
		t.Errorf("InvDegSum = %v, want %v", got, wantSum)
	}
	wantAvg := wantSum / (1.0/3 + 3)
	if got := core.InvDegAverage(s); math.Abs(got-wantAvg) > 1e-12 {
		t.Errorf("InvDegAverage = %v, want %v", got, wantAvg)
	}
}

func TestNewStubbornValidation(t *testing.T) {
	if _, err := NewStubborn(core.DIV{}, 5, []int{7}); err == nil {
		t.Error("out-of-range zealot accepted")
	}
	if _, err := NewStubborn(core.DIV{}, 5, []int{-1}); err == nil {
		t.Error("negative zealot accepted")
	}
	for _, bad := range []core.Rule{Push{}, PushDIV{}, LoadBalance{}} {
		if _, err := NewStubborn(bad, 5, nil); err == nil {
			t.Errorf("rule %s accepted by Stubborn", bad.Name())
		}
	}
	r, err := NewStubborn(core.DIV{}, 5, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "stubborn-div" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestStubbornVertexNeverMoves(t *testing.T) {
	g := graph.Complete(10)
	rr := rng.New(61)
	init := core.UniformOpinions(10, 5, rr)
	init[3] = 5
	rule, err := NewStubborn(core.DIV{}, 10, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	s := core.MustState(g, init)
	for i := 0; i < 50000; i++ {
		v := rr.IntN(10)
		w := g.Neighbor(v, rr.IntN(9))
		rule.Step(s, rr, v, w)
		if s.Opinion(3) != 5 {
			t.Fatalf("zealot moved to %d at step %d", s.Opinion(3), i)
		}
	}
}

func TestStubbornZealotAlwaysWins(t *testing.T) {
	g := graph.Complete(30)
	rr := rng.New(62)
	init := core.UniformOpinions(30, 4, rr)
	init[0] = 4
	rule, err := NewStubborn(core.DIV{}, 30, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		res, err := core.Run(core.Config{
			Graph:    g,
			Initial:  init,
			Rule:     rule,
			MaxSteps: 2000 * 30 * 30,
			Seed:     rng.DeriveSeed(63, uint64(trial)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus || res.Winner != 4 {
			t.Fatalf("trial %d: consensus=%v winner=%d, want zealot value 4", trial, res.Consensus, res.Winner)
		}
	}
}

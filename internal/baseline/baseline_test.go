package baseline

import (
	"math"
	"testing"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
)

func TestRuleNames(t *testing.T) {
	tests := []struct {
		rule core.Rule
		want string
	}{
		{Pull{}, "pull"},
		{Median{}, "median"},
		{BestOfK{K: 3}, "best-of-3"},
		{LoadBalance{}, "loadbalance"},
	}
	for _, tc := range tests {
		if got := tc.rule.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestPullAdoptsNeighbour(t *testing.T) {
	g := graph.Path(3)
	s := core.MustState(g, []int{1, 5, 3})
	Pull{}.Step(s, nil, 0, 1)
	if s.Opinion(0) != 5 {
		t.Errorf("opinion(0) = %d, want 5", s.Opinion(0))
	}
	if s.Opinion(1) != 5 {
		t.Errorf("observed vertex changed to %d", s.Opinion(1))
	}
}

func TestMedian3(t *testing.T) {
	tests := []struct {
		a, b, c, want int
	}{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 1, 3, 2},
		{5, 5, 1, 5}, {1, 5, 5, 5}, {5, 1, 5, 5},
		{4, 4, 4, 4},
	}
	for _, tc := range tests {
		if got := median3(tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("median3(%d,%d,%d) = %d, want %d", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestMedianRuleOnTriangle(t *testing.T) {
	// On K_3 with opinions {1,2,3}, vertex 0 (opinion 1) observing w=1
	// (opinion 2) and sampling u ∈ {1,2}: median(1,2,2)=2 or
	// median(1,2,3)=2. Either way vertex 0 moves to 2.
	g := graph.Complete(3)
	r := rng.New(1)
	s := core.MustState(g, []int{1, 2, 3})
	Median{}.Step(s, r, 0, 1)
	if s.Opinion(0) != 2 {
		t.Errorf("opinion(0) = %d, want 2", s.Opinion(0))
	}
}

func TestBestOfKDegeneratesToPull(t *testing.T) {
	g := graph.Path(3)
	r := rng.New(2)
	s := core.MustState(g, []int{1, 5, 3})
	BestOfK{K: 1}.Step(s, r, 0, 1)
	if s.Opinion(0) != 5 {
		t.Errorf("opinion(0) = %d, want 5", s.Opinion(0))
	}
}

func TestBestOfKKeepsOwnOnTie(t *testing.T) {
	// Vertex 0 on a path observes w=1 twice? No: K=2 samples w plus one
	// more neighbour. On path(2) vertex 0 has a single neighbour, so
	// both samples are vertex 1: unanimous, adopts.
	g := graph.Path(2)
	r := rng.New(3)
	s := core.MustState(g, []int{1, 2})
	BestOfK{K: 2}.Step(s, r, 0, 1)
	if s.Opinion(0) != 2 {
		t.Errorf("unanimous sample not adopted: %d", s.Opinion(0))
	}
}

func TestBestOfKMajority(t *testing.T) {
	// Star centre sampling many leaves: leaves all hold 3, so the
	// centre adopts 3 with K=5.
	g := graph.Star(6)
	r := rng.New(4)
	s := core.MustState(g, []int{1, 3, 3, 3, 3, 3})
	BestOfK{K: 5}.Step(s, r, 0, 1)
	if s.Opinion(0) != 3 {
		t.Errorf("centre = %d, want 3", s.Opinion(0))
	}
}

func TestLoadBalanceStep(t *testing.T) {
	g := graph.Path(2)
	tests := []struct {
		name  string
		a, b  int
		wantA int
		wantB int
	}{
		{"even split", 2, 4, 3, 3},
		{"odd split keeps larger high", 1, 4, 2, 3},
		{"reversed", 4, 1, 3, 2},
		{"equal", 3, 3, 3, 3},
		{"adjacent", 2, 3, 2, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := core.MustState(g, []int{tc.a, tc.b})
			LoadBalance{}.Step(s, nil, 0, 1)
			if s.Opinion(0) != tc.wantA || s.Opinion(1) != tc.wantB {
				t.Errorf("(%d,%d) -> (%d,%d), want (%d,%d)",
					tc.a, tc.b, s.Opinion(0), s.Opinion(1), tc.wantA, tc.wantB)
			}
		})
	}
}

func TestLoadBalanceConservesSumExactly(t *testing.T) {
	g := graph.Complete(20)
	r := rng.New(5)
	s := core.MustState(g, core.UniformOpinions(20, 9, r))
	want := s.Sum()
	for i := 0; i < 50000; i++ {
		v := r.IntN(20)
		w := g.Neighbor(v, r.IntN(19))
		LoadBalance{}.Step(s, r, v, w)
		if s.Sum() != want {
			t.Fatalf("sum changed from %d to %d at step %d", want, s.Sum(), i)
		}
	}
	// After many steps loads are within a 3-value band around the mean
	// (Berenbrink et al. reach ⌊c⌋/⌈c⌉ plus stragglers; generously: 3).
	if s.Max()-s.Min() > 2 {
		t.Errorf("load spread %d after mixing", s.Max()-s.Min())
	}
}

// TestPullTwoOpinionWinProbability reproduces equation (3): on the edge
// process P[1 wins] = N_1/n.
func TestPullTwoOpinionWinProbability(t *testing.T) {
	const n, n1, trials = 30, 10, 2000
	g := graph.Complete(n)
	r := rng.New(6)
	wins := 0
	for trial := 0; trial < trials; trial++ {
		init, err := core.TwoOpinionSplit(n, n1, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(core.Config{
			Graph:   g,
			Initial: init,
			Process: core.EdgeProcess,
			Rule:    Pull{},
			Seed:    rng.DeriveSeed(7, uint64(trial)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus {
			t.Fatalf("trial %d no consensus", trial)
		}
		if res.Winner == 1 {
			wins++
		}
	}
	p0 := float64(n1) / n
	z := (float64(wins) - p0*trials) / math.Sqrt(trials*p0*(1-p0))
	if math.Abs(z) > 4.5 {
		t.Errorf("opinion 1 won %d/%d, want p=%.3f (z=%.1f)", wins, trials, p0, z)
	}
}

// TestPullVertexProcessWinProbabilityDegreeWeighted reproduces the
// vertex-process side of equation (3): P[i wins] = d(A_i)/2m. On the
// star with the centre holding opinion 1 alone, d(A_1)/2m = 1/2 even
// though N_1/n = 1/n.
func TestPullVertexProcessWinProbabilityDegreeWeighted(t *testing.T) {
	const n, trials = 9, 3000
	g := graph.Star(n)
	init := make([]int, n)
	init[0] = 1
	for v := 1; v < n; v++ {
		init[v] = 2
	}
	wins := 0
	for trial := 0; trial < trials; trial++ {
		res, err := core.Run(core.Config{
			Graph:   g,
			Initial: init,
			Process: core.VertexProcess,
			Rule:    Pull{},
			Seed:    rng.DeriveSeed(8, uint64(trial)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner == 1 {
			wins++
		}
	}
	p0 := 0.5 // d(centre)/2m = (n-1)/(2(n-1))
	z := (float64(wins) - p0*trials) / math.Sqrt(trials*p0*(1-p0))
	if math.Abs(z) > 4.5 {
		t.Errorf("centre opinion won %d/%d, want 0.5 (z=%.1f)", wins, trials, z)
	}
}

func TestMedianConvergesToMedianishValue(t *testing.T) {
	// Strong majority at value 2 with minorities at 1 and 9: the median
	// dynamics must land on 2, never on the outlier 9 (mean ≈ 2.7).
	const n = 90
	g := graph.Complete(n)
	r := rng.New(9)
	counts := make([]int, 9)
	counts[0] = 20 // opinion 1
	counts[1] = 50 // opinion 2 (median)
	counts[8] = 20 // opinion 9
	for trial := 0; trial < 20; trial++ {
		init, err := core.BlockOpinions(n, counts, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(core.Config{
			Graph:   g,
			Initial: init,
			Rule:    Median{},
			Seed:    rng.DeriveSeed(10, uint64(trial)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus {
			t.Fatalf("median dynamics no consensus after %d steps", res.Steps)
		}
		if res.Winner != 2 {
			t.Errorf("trial %d: median dynamics won at %d, want 2", trial, res.Winner)
		}
	}
}

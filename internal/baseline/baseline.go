// Package baseline implements the comparison dynamics the paper
// positions DIV against: plain pull voting (converges to the *mode*
// with probability proportional to degree mass, Hassin–Peleg), median
// voting (Doerr et al., converges near the *median*), best-of-k
// plurality sampling, and the edge load-balancing averaging protocol of
// Berenbrink et al. [5] (the alternative integer-averaging primitive
// DIV is compared with in the introduction).
//
// Every baseline is a core.Rule over the same State and schedulers, so
// head-to-head experiments run on identical graphs, initial opinions,
// and random streams.
package baseline

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"div/internal/core"
)

// Pull is classic pull voting: the updating vertex adopts the observed
// neighbour's opinion wholesale. With two opinions this is the paper's
// final-stage process with win probabilities given by equation (3).
type Pull struct{}

// Name implements core.Rule.
func (Pull) Name() string { return "pull" }

// Step implements core.Rule.
func (Pull) Step(s *core.State, _ *rand.Rand, v, w int) {
	s.SetOpinion(v, s.Opinion(w))
}

// Target implements core.PairwiseRule: pull voting is a pure function
// of the scheduled pair, so it is eligible for the fast engine.
func (Pull) Target(xv, xw int) int { return xw }

var _ core.PairwiseRule = Pull{}

// Median is the median dynamics of Doerr et al. (SPAA'11): the
// updating vertex samples a second independent neighbour u and replaces
// its opinion with median(X_v, X_w, X_u). On the complete graph the
// consensus lands within O(√(n log n)) order-statistic positions of the
// true median.
type Median struct{}

// Name implements core.Rule.
func (Median) Name() string { return "median" }

// Step implements core.Rule.
func (Median) Step(s *core.State, r *rand.Rand, v, w int) {
	g := s.Graph()
	u := g.Neighbor(v, r.IntN(g.Degree(v)))
	s.SetOpinion(v, median3(s.Opinion(v), s.Opinion(w), s.Opinion(u)))
}

func median3(a, b, c int) int {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// BestOfK is plurality sampling: the updating vertex samples K
// neighbours with replacement (including the scheduled w as the first
// sample) and adopts the most frequent opinion in the sample; ties are
// kept if the vertex's own opinion is among the winners, otherwise
// broken uniformly at random.
type BestOfK struct {
	// K is the sample size (≥ 1). K=1 degenerates to Pull.
	K int
}

// Name implements core.Rule.
func (b BestOfK) Name() string { return fmt.Sprintf("best-of-%d", b.K) }

// Step implements core.Rule.
func (b BestOfK) Step(s *core.State, r *rand.Rand, v, w int) {
	k := b.K
	if k < 1 {
		k = 1
	}
	g := s.Graph()
	// Tally the sampled opinions. Sample values are bounded by the
	// state's current range, so a small map is fine at these k.
	tally := make(map[int]int, k)
	tally[s.Opinion(w)]++
	for i := 1; i < k; i++ {
		u := g.Neighbor(v, r.IntN(g.Degree(v)))
		tally[s.Opinion(u)]++
	}
	best := -1
	var winners []int
	for op, c := range tally {
		switch {
		case c > best:
			best = c
			winners = winners[:0]
			winners = append(winners, op)
		case c == best:
			winners = append(winners, op)
		}
	}
	own := s.Opinion(v)
	for _, op := range winners {
		if op == own {
			return // tie includes own opinion: keep it
		}
	}
	// winners was collected in map-iteration order, which Go randomizes
	// per range; sort so the seeded pick below is deterministic.
	sort.Ints(winners)
	s.SetOpinion(v, winners[r.IntN(len(winners))])
}

// LoadBalance is the population-protocol averaging step of Berenbrink
// et al. [5]: the two endpoints of the scheduled edge rebalance their
// integer loads to ⌊(a+b)/2⌋ and ⌈(a+b)/2⌉ (the larger share staying
// with the endpoint that held the larger load). Unlike DIV it needs a
// coordinated two-vertex update, and unlike DIV it conserves the total
// exactly rather than in expectation; it reaches a *mixture* of ⌊c⌋
// and ⌈c⌉ rather than consensus when c is not an integer.
//
// Use it with the EdgeProcess scheduler; under the vertex process the
// edge is the scheduled (v,w) pair, which biases edge selection by
// 1/d(v) — the experiments only schedule it on the edge process.
type LoadBalance struct{}

// Name implements core.Rule.
func (LoadBalance) Name() string { return "loadbalance" }

// Step implements core.Rule.
func (LoadBalance) Step(s *core.State, _ *rand.Rand, v, w int) {
	a, b := s.Opinion(v), s.Opinion(w)
	sum := a + b
	lo := floorDiv2(sum)
	hi := sum - lo
	if a <= b {
		s.SetOpinion(v, lo)
		s.SetOpinion(w, hi)
	} else {
		s.SetOpinion(v, hi)
		s.SetOpinion(w, lo)
	}
}

func floorDiv2(x int) int {
	if x >= 0 {
		return x / 2
	}
	return (x - 1) / 2
}

var (
	_ core.Rule = Pull{}
	_ core.Rule = Median{}
	_ core.Rule = BestOfK{}
	_ core.Rule = LoadBalance{}
)

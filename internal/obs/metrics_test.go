package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(3)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.SetMax(5)
	if got := g.Value(); got != 10 {
		t.Fatalf("SetMax(5) lowered gauge to %d", got)
	}
	g.SetMax(99)
	if got := g.Value(); got != 99 {
		t.Fatalf("SetMax(99) left gauge at %d", got)
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hw")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				g.SetMax(i*8 + int64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Value(); got != 999*8+7 {
		t.Fatalf("concurrent SetMax = %d, want %d", got, 999*8+7)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	// Observations chosen to pin the log₂ bucket layout: v ≤ 0 falls in
	// bucket 0, v in [2^(i-1), 2^i) in bucket i.
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 1 << 20} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != -5+1+2+3+4+1<<20 {
		t.Fatalf("sum = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("%d histograms in snapshot", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if hs.Max != 1<<20 {
		t.Fatalf("max = %d, want 2^20", hs.Max)
	}
	want := map[int64]int64{0: 2, 1: 1, 2: 2, 4: 1, 1 << 20: 1} // bucket lo -> count
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
		if c, ok := want[b.Lo]; ok {
			if b.Count != c {
				t.Errorf("bucket lo=%d count = %d, want %d", b.Lo, b.Count, c)
			}
			delete(want, b.Lo)
		}
		if b.Hi <= b.Lo && b.Lo > 0 {
			t.Errorf("bucket [%d,%d) is empty-ranged", b.Lo, b.Hi)
		}
	}
	if total != 7 {
		t.Fatalf("bucket counts sum to %d, want 7", total)
	}
	for lo := range want {
		t.Errorf("expected a bucket starting at %d", lo)
	}
	if mean := hs.Mean(); math.Abs(mean-float64(hs.Sum)/7) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramTopBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	maxInt64 := int64(^uint64(0) >> 1)
	h.Observe(maxInt64)
	snap := r.Snapshot()
	b := snap.Histograms[0].Buckets
	top := b[len(b)-1]
	if top.Count != 1 || top.Hi < top.Lo {
		t.Fatalf("top bucket %+v cannot hold MaxInt64", top)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	// Register in non-sorted order; snapshots must sort by name so
	// WriteText output is byte-stable.
	r.Counter("zeta").Inc()
	r.Counter("alpha").Inc()
	r.Gauge("mid").Set(3)
	r.Histogram("hist").Observe(9)

	var a, b strings.Builder
	if err := r.Snapshot().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two WriteText snapshots differ")
	}
	if !strings.Contains(a.String(), "alpha") || strings.Index(a.String(), "alpha") > strings.Index(a.String(), "zeta") {
		t.Fatalf("counters not sorted:\n%s", a.String())
	}

	var js strings.Builder
	if err := r.Snapshot().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v", err)
	}
	if len(decoded.Counters) != 2 || decoded.Counters[0].Name != "alpha" {
		t.Fatalf("decoded snapshot counters = %+v", decoded.Counters)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(5)
	g := r.Gauge("g")
	g.Set(5)
	h := r.Histogram("h")
	h.Observe(5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset left values behind")
	}
	// Handles stay live after Reset.
	c.Inc()
	if r.Counter("c").Value() != 1 {
		t.Fatal("counter handle detached by Reset")
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub_c").Add(3)
	r.PublishExpvar("test_obs_metrics")
	v := expvar.Get("test_obs_metrics")
	if v == nil {
		t.Fatal("expvar variable not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar payload is not a JSON snapshot: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Fatalf("expvar snapshot = %+v", snap)
	}
	// Publishing twice must not panic (expvar.Publish panics on
	// duplicate names; the registry must guard it).
	r.PublishExpvar("test_obs_metrics")
}

func TestSnapshotValueLookups(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(7)
	r.Gauge("width").Set(4)
	s := r.Snapshot()
	if got := s.CounterValue("hits"); got != 7 {
		t.Fatalf("CounterValue(hits) = %d, want 7", got)
	}
	if got := s.CounterValue("absent"); got != 0 {
		t.Fatalf("CounterValue(absent) = %d, want 0", got)
	}
	if got := s.GaugeValue("width"); got != 4 {
		t.Fatalf("GaugeValue(width) = %d, want 4", got)
	}
	if got := s.GaugeValue("absent"); got != 0 {
		t.Fatalf("GaugeValue(absent) = %d, want 0", got)
	}
}

package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestWritePromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tasks_total").Add(42)
	reg.Gauge("queue_depth").Set(3)
	h := reg.Histogram("latency_nanos")
	h.Observe(0) // bucket 0: ≤0
	h.Observe(1) // bucket 1: [1,2)
	h.Observe(5) // bucket 3: [4,8)
	h.Observe(5)
	h.Observe(100) // bucket 7: [64,128)

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE tasks_total counter
tasks_total 42
# TYPE queue_depth gauge
queue_depth 3
# TYPE latency_nanos histogram
latency_nanos_bucket{le="0"} 1
latency_nanos_bucket{le="1"} 2
latency_nanos_bucket{le="7"} 4
latency_nanos_bucket{le="127"} 5
latency_nanos_bucket{le="+Inf"} 5
latency_nanos_sum 111
latency_nanos_count 5
`
	if got := buf.String(); got != want {
		t.Fatalf("WriteProm output:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePromCumulativeBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h")
	for v := int64(1); v <= 1024; v *= 2 {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	// Bucket counts must be non-decreasing, and the +Inf bucket must
	// equal the total count (the format's cumulative invariant).
	var prev int64 = -1
	var inf int64
	for _, line := range strings.Split(buf.String(), "\n") {
		le, n, ok := parseBucketLine(line)
		if !ok {
			continue
		}
		if n < prev {
			t.Fatalf("bucket counts decreased at %q (prev %d)", line, prev)
		}
		prev = n
		if le == "+Inf" {
			inf = n
		}
	}
	if inf != h.Count() {
		t.Fatalf("+Inf bucket = %d, want total count %d", inf, h.Count())
	}
}

// parseBucketLine pulls the le label and count out of a _bucket line.
func parseBucketLine(line string) (le string, n int64, ok bool) {
	const open, clos = `_bucket{le="`, `"} `
	i := strings.Index(line, open)
	if i < 0 {
		return "", 0, false
	}
	rest := line[i+len(open):]
	j := strings.Index(rest, clos)
	if j < 0 {
		return "", 0, false
	}
	le = rest[:j]
	for _, c := range rest[j+len(clos):] {
		if c < '0' || c > '9' {
			return "", 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return le, n, true
}

func TestGaugeFuncAppearsInSnapshotAndProm(t *testing.T) {
	reg := NewRegistry()
	var depth int64 = 7
	reg.GaugeFunc("live_depth", func() int64 { return depth })
	if got := reg.Snapshot().GaugeValue("live_depth"); got != 7 {
		t.Fatalf("snapshot gauge = %d, want 7", got)
	}
	depth = 9
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE live_depth gauge\nlive_depth 9\n") {
		t.Fatalf("prom output missing callback gauge:\n%s", buf.String())
	}
	// Re-registration replaces.
	reg.GaugeFunc("live_depth", func() int64 { return -1 })
	if got := reg.Snapshot().GaugeValue("live_depth"); got != -1 {
		t.Fatalf("replaced gauge = %d, want -1", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	hs := reg.Snapshot().Histograms[0]
	// The log₂ estimate is an upper bound within 2× of the true order
	// statistic, capped at the max.
	if p50 := hs.Quantile(0.50); p50 < 50 || p50 > 100 {
		t.Errorf("p50 = %d, want in [50,100]", p50)
	}
	if p100 := hs.Quantile(1.0); p100 != 100 {
		t.Errorf("p100 = %d, want exactly the max 100", p100)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}

// TestRegistrySnapshotUnderConcurrentWriters drives writers on every
// instrument type while snapshots render both text formats, for the
// race detector: snapshots must stay internally consistent and
// deterministic in order regardless of writer interleaving.
func TestRegistrySnapshotUnderConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("fn_gauge", func() int64 { return 1 })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("c")
			g := reg.Gauge("g")
			h := reg.Histogram("h")
			tm := reg.Timer("work")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.AddShard(w, 1)
				g.Set(int64(i))
				h.Observe(int64(i % 1000))
				tm.Start().End()
				// Churn instrument creation to race the copy-on-write view.
				reg.Counter(string(rune('a' + i%8)))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		s := reg.Snapshot()
		for j := 1; j < len(s.Counters); j++ {
			if s.Counters[j-1].Name >= s.Counters[j].Name {
				t.Fatalf("counters out of order: %q >= %q", s.Counters[j-1].Name, s.Counters[j].Name)
			}
		}
		for _, h := range s.Histograms {
			var bucketSum int64
			for _, b := range h.Buckets {
				bucketSum += b.Count
			}
			// Observe increments the bucket before the total and Snapshot
			// reads the total before the buckets, so the bucket sum can
			// only run ahead of the count, never behind it.
			if bucketSum < h.Count {
				t.Fatalf("%s: bucket sum %d below count %d", h.Name, bucketSum, h.Count)
			}
		}
		var buf bytes.Buffer
		if err := s.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if err := s.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestWriteTextIncludesGaugesAndHistograms is the -metrics footer
// regression test: the text rendering must carry every instrument
// class with deterministic ordering and the quantile columns.
func TestWriteTextIncludesGaugesAndHistograms(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_counter").Inc()
	reg.Counter("a_counter").Inc()
	reg.Gauge("m_gauge").Set(5)
	reg.GaugeFunc("n_gauge_fn", func() int64 { return 6 })
	reg.Histogram("lat").Observe(100)

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"counter   a_counter",
		"counter   z_counter",
		"gauge     m_gauge",
		"gauge     n_gauge_fn",
		"histogram lat",
		"p50≤", "p90≤", "p99≤", "max=100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_counter") > strings.Index(out, "z_counter") {
		t.Error("counters not name-sorted")
	}
	if strings.Index(out, "m_gauge") > strings.Index(out, "n_gauge_fn") {
		t.Error("stored and callback gauges not merged in sorted order")
	}
}

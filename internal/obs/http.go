package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// This file is the live exposition surface behind the commands'
// -serve flag (and the surface the divd job service will mount):
//
//	/metrics        Prometheus text format (WriteProm)
//	/snapshot.json  {provenance, progress, metrics} as one JSON doc
//	/progress       the progress tracker alone, as JSON
//
// Handlers read the registry through Snapshot, so scraping a running
// sweep costs one registry mutex acquisition and never perturbs the
// hot paths.

// Progress tracks completion of a known-size batch of named units
// (experiments for divbench, trials for divsim). Safe for concurrent
// use.
type Progress struct {
	mu      sync.Mutex
	total   int
	done    int
	running map[string]struct{}
	start   time.Time
}

// NewProgress returns a tracker expecting total units.
func NewProgress(total int) *Progress {
	return &Progress{total: total, running: make(map[string]struct{}), start: time.Now()}
}

// Start marks the named unit as running.
func (p *Progress) Start(id string) {
	p.mu.Lock()
	p.running[id] = struct{}{}
	p.mu.Unlock()
}

// Done marks the named unit as finished (and no longer running).
func (p *Progress) Done(id string) {
	p.mu.Lock()
	delete(p.running, id)
	p.done++
	p.mu.Unlock()
}

// ProgressSnapshot is the JSON document served at /progress.
type ProgressSnapshot struct {
	Total          int      `json:"total"`
	Done           int      `json:"done"`
	Running        []string `json:"running,omitempty"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
}

// Snapshot freezes the tracker. Running units are sorted so the
// rendering is deterministic.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	s := ProgressSnapshot{Total: p.total, Done: p.done, ElapsedSeconds: time.Since(p.start).Seconds()}
	for id := range p.running {
		s.Running = append(s.Running, id)
	}
	p.mu.Unlock()
	sort.Strings(s.Running)
	return s
}

// ServeState is the full document served at /snapshot.json.
type ServeState struct {
	Provenance *Provenance       `json:"provenance,omitempty"`
	Progress   *ProgressSnapshot `json:"progress,omitempty"`
	Metrics    Snapshot          `json:"metrics"`
}

// NewServeMux builds the exposition mux over the given registry.
// prov and prog may be nil; the corresponding /snapshot.json fields
// are then omitted and /progress serves an empty tracker.
func NewServeMux(r *Registry, prov *Provenance, prog *Progress) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		if err := r.Snapshot().WriteProm(w); err != nil {
			// Too late for an HTTP error status; the next scrape retries.
			return
		}
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, req *http.Request) {
		state := ServeState{Provenance: prov, Metrics: r.Snapshot()}
		if prog != nil {
			ps := prog.Snapshot()
			state.Progress = &ps
		}
		writeJSON(w, state)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, req *http.Request) {
		var ps ProgressSnapshot
		if prog != nil {
			ps = prog.Snapshot()
		}
		writeJSON(w, ps)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve mounts NewServeMux on addr in a background goroutine and
// returns the listening server. Callers that outlive the run (the
// commands don't — the process exits with the suite) may Close it.
// Errors after startup are reported through errf (may be nil).
func Serve(addr string, r *Registry, prov *Provenance, prog *Progress, errf func(error)) *http.Server {
	srv := &http.Server{Addr: addr, Handler: NewServeMux(r, prov, prog)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && errf != nil {
			errf(err)
		}
	}()
	return srv
}

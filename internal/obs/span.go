package obs

import (
	"strings"
	"time"
)

// This file is the span layer: low-overhead wall-clock timing of
// hierarchical work units, recorded into the registry's log₂ latency
// histograms. A span is a value type (no allocation) holding a timer
// and a start instant; ending it observes the elapsed nanoseconds.
// Hierarchy is expressed in the histogram *name*: a child span of
// "suite" named "experiment" records into span_suite_experiment_nanos,
// so the suite→experiment→point→block nesting the experiment harness
// uses shows up as four separate latency distributions with
// self-describing names.
//
// Disabled telemetry is free by construction: a nil *Timer and the
// zero Span both make Start/End no-ops costing a single predictable
// branch, mirroring the nil-Probe contract.

// Standard hierarchy level names used by the suite commands. They are
// only conventions — any name works — but sharing them keeps divbench
// and divsim dashboards aligned.
const (
	SpanSuite      = "suite"
	SpanExperiment = "experiment"
	SpanPoint      = "point"
	SpanBlock      = "block"
)

// Timer is a named latency recorder: durations observed through it
// land in the registry histogram "span_<path>_nanos". Timers are
// cheap to hold and safe for concurrent use (the histogram is
// lock-free). A nil *Timer discards every observation.
type Timer struct {
	r    *Registry
	path string
	h    *Histogram
}

// Timer returns the latency timer for the given span path, creating
// its histogram ("span_<path>_nanos", path sanitized) on first use.
func (r *Registry) Timer(path string) *Timer {
	return &Timer{r: r, path: path, h: r.Histogram(spanHistName(path))}
}

// spanHistName maps a span path to its histogram name.
func spanHistName(path string) string {
	return "span_" + SanitizeMetricName(path) + "_nanos"
}

// SanitizeMetricName rewrites s into the metric-name alphabet
// [a-zA-Z0-9_]: every other rune (spaces, slashes, dots, colons)
// becomes '_'. Names the repository constructs from tags (experiment
// IDs, graph families) pass through this so the Prometheus exposition
// never emits an invalid name.
func SanitizeMetricName(s string) string {
	ok := func(c byte) bool {
		return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
	}
	clean := true
	for i := 0; i < len(s); i++ {
		if !ok(s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if ok(s[i]) {
			b.WriteByte(s[i])
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Start begins a span on the timer. Starting on a nil timer returns
// the zero Span, whose End is a no-op.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// Observe records an already-measured duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Nanoseconds())
}

// ObserveSince records the time elapsed since start.
func (t *Timer) ObserveSince(start time.Time) {
	if t == nil {
		return
	}
	t.h.Observe(time.Since(start).Nanoseconds())
}

// Span is one in-flight timed unit of work. The zero Span is valid
// and inert: End returns 0 and records nothing, Child returns another
// inert span. Spans are values — copy them freely, but End each one
// at most once (a second End would record a second observation).
type Span struct {
	t     *Timer
	start time.Time
}

// Span starts a top-level span on the registry: shorthand for
// r.Timer(path).Start(). The histogram is span_<path>_nanos.
func (r *Registry) Span(path string) Span {
	return r.Timer(path).Start()
}

// Active reports whether the span will record on End.
func (s Span) Active() bool { return s.t != nil }

// Child starts a nested span whose path extends the parent's:
// a child named "experiment" of a span at "suite" records into
// span_suite_experiment_nanos. The child's timer is resolved through
// the same registry; ending the child is independent of ending the
// parent.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.r.Timer(s.t.path + "_" + name).Start()
}

// End observes the span's elapsed wall-clock time into its latency
// histogram and returns the duration (0 for the zero Span).
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.start)
	s.t.h.Observe(d.Nanoseconds())
	return d
}

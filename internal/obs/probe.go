package obs

// Probe receives structured events from a running voting process. The
// core engines call it at semantic points — not on every scheduler
// draw — so a probe sees the *decisions* a run made: how many draws
// each engine regime simulated or skipped, when the hybrid engine
// switched regimes and why, how the discordant-edge mass evolved, when
// the opinion support changed, and how the run resolved.
//
// Implementations must be safe for use from a single goroutine per
// run; when runs execute in parallel (sim.Trials) each run gets its
// own context-stamped probe, and shared sinks (TraceWriter,
// MetricsProbe) synchronize internally.
//
// Probes must not mutate the process: they receive values, never the
// live state, and the engines guarantee they consume no randomness on
// a probe's behalf — attaching a probe to a seeded run does not change
// its trajectory.
type Probe interface {
	// StepBatch reports a contiguous run of scheduler invocations
	// [FromStep, ToStep) attributed to one engine regime.
	StepBatch(b StepBatch)
	// EngineSwitch reports a hybrid (EngineAuto) regime change,
	// including the initial-probe decision at step 0.
	EngineSwitch(sw EngineSwitch)
	// Discordance reports a sample of the exact discordant-edge mass.
	// Only engines that maintain the mass incrementally emit it (fast,
	// and hybrid while in fast mode).
	Discordance(d Discordance)
	// Stage reports a change of the opinion-support set.
	Stage(st Stage)
	// Done reports the run's resolution; it is the last event of a run.
	Done(d Done)
}

// Engine regime labels used in events. They match core.Engine's naive
// and fast strings; the hybrid engine attributes each batch to the
// regime that executed it.
const (
	RegimeNaive = "naive"
	RegimeFast  = "fast"
	// RegimeBlock labels step batches executed by the blocked multi-trial
	// kernel (core/block.go): naive-law stepping, interleaved across a
	// block of trials and flushed at chunk granularity.
	RegimeBlock = "block"
	// RegimeSparse labels step batches executed by the sparse endgame
	// engine (core/sparse.go): skip-sampled stepping over the
	// O(discordance) discordant-vertex set on implicit or compact
	// backends.
	RegimeSparse = "sparse"
)

// Switch reasons.
const (
	// SwitchProbe: the hybrid engine's initial probe found the start
	// state already idle-dominated and entered fast mode at step 0.
	SwitchProbe = "probe"
	// SwitchWindow: a windowed idle-fraction estimate triggered a
	// naive→fast entry.
	SwitchWindow = "window"
	// SwitchRebound: the exact discordance mass rebounded past the exit
	// threshold and the engine fell back to naive stepping.
	SwitchRebound = "rebound"
)

// StepBatch summarizes the scheduler invocations in [FromStep, ToStep):
// Active+Idle draws were simulated individually, Skipped idle draws
// were jumped in bulk by the geometric skip-sampler. Active+Idle+
// Skipped == ToStep-FromStep always holds, and summing batches over a
// run reproduces the run's total step count exactly.
type StepBatch struct {
	FromStep int64  `json:"from"`
	ToStep   int64  `json:"to"`
	Engine   string `json:"engine"` // RegimeNaive or RegimeFast
	Active   int64  `json:"active"`
	Idle     int64  `json:"idle,omitempty"`
	Skipped  int64  `json:"skipped,omitempty"`
}

// EngineSwitch records one hybrid regime change at Step. For
// naive→fast entries, WindowDraws/WindowActive carry the triggering
// window statistics (zero for the step-0 probe entry, which samples
// arcs instead of draws); for fast→naive exits CooldownWindows is the
// re-entry backoff that was scheduled. MassNum/MassDen is the exact
// active-draw probability at the switch point.
type EngineSwitch struct {
	Step         int64  `json:"step"`
	From         string `json:"from"`
	To           string `json:"to"`
	Reason       string `json:"reason"`
	WindowDraws  int64  `json:"window_draws,omitempty"`
	WindowActive int64  `json:"window_active,omitempty"`
	MassNum      int64  `json:"mass_num"`
	MassDen      int64  `json:"mass_den"`
	Cooldown     int64  `json:"cooldown,omitempty"` // windows
}

// Discordance is one sample of the discordance trajectory: Edges
// discordant edges, and the exact probability MassNum/MassDen that the
// next scheduler draw is active. This is the quantity the paper's
// potential-function analysis tracks (the discordant-edge mass of
// Cooper–Dyer–Frieze–Rivera).
type Discordance struct {
	Step    int64 `json:"step"`
	Edges   int64 `json:"edges"`
	MassNum int64 `json:"mass_num"`
	MassDen int64 `json:"mass_den"`
}

// Stage records a change of the support set: after the update at Step,
// Support distinct opinions remain in [Min, Max]. TwoAdjacent marks
// entry into the paper's final stage (at most two adjacent opinions),
// the boundary between the k-opinion reduction phase and the
// two-opinion endgame.
type Stage struct {
	Step        int64 `json:"step"`
	Support     int   `json:"support"`
	Min         int   `json:"min"`
	Max         int   `json:"max"`
	TwoAdjacent bool  `json:"two_adjacent,omitempty"`
}

// Done is the final event of a run.
type Done struct {
	Step      int64 `json:"step"`
	Winner    int   `json:"winner"`
	Consensus bool  `json:"consensus"`
	Aborted   bool  `json:"aborted,omitempty"`
}

// multiProbe fans events out to several probes in order.
type multiProbe []Probe

func (m multiProbe) StepBatch(b StepBatch) {
	for _, p := range m {
		p.StepBatch(b)
	}
}

func (m multiProbe) EngineSwitch(sw EngineSwitch) {
	for _, p := range m {
		p.EngineSwitch(sw)
	}
}

func (m multiProbe) Discordance(d Discordance) {
	for _, p := range m {
		p.Discordance(d)
	}
}

func (m multiProbe) Stage(st Stage) {
	for _, p := range m {
		p.Stage(st)
	}
}

func (m multiProbe) Done(d Done) {
	for _, p := range m {
		p.Done(d)
	}
}

// Multi combines probes into one that forwards every event to each of
// them in order. Nil entries are dropped; Multi() of zero non-nil
// probes returns nil (the no-probe fast path).
func Multi(probes ...Probe) Probe {
	var m multiProbe
	for _, p := range probes {
		if p != nil {
			m = append(m, p)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	default:
		return m
	}
}

// metricsProbe aggregates probe events into a Registry.
type metricsProbe struct {
	steps, active, idle, skipped        *Counter
	fastSteps, sparseSteps              *Counter
	switches, toFast, toSparse, toNaive *Counter
	stages, twoAdjacent                 *Counter
	runs, consensus, aborted            *Counter
	runSteps                            *Histogram
	discordEdges                        *Gauge
}

// MetricsProbe returns a Probe that aggregates events into reg under
// the div_* namespace: total/active/idle/skipped step counters (plus
// the fast- and sparse-regime shares), engine-switch counters by
// direction, stage and endgame-entry counters, per-run step
// histograms, and a gauge holding the last sampled discordant-edge
// count. It is safe to share across concurrent runs.
func MetricsProbe(reg *Registry) Probe {
	return &metricsProbe{
		steps:        reg.Counter("div_steps_total"),
		active:       reg.Counter("div_steps_active_total"),
		idle:         reg.Counter("div_steps_idle_total"),
		skipped:      reg.Counter("div_steps_skipped_total"),
		fastSteps:    reg.Counter("div_steps_fast_regime_total"),
		sparseSteps:  reg.Counter("div_steps_sparse_regime_total"),
		switches:     reg.Counter("div_engine_switches_total"),
		toFast:       reg.Counter("div_engine_switches_to_fast_total"),
		toSparse:     reg.Counter("div_engine_switches_to_sparse_total"),
		toNaive:      reg.Counter("div_engine_switches_to_naive_total"),
		stages:       reg.Counter("div_stage_transitions_total"),
		twoAdjacent:  reg.Counter("div_two_adjacent_entries_total"),
		runs:         reg.Counter("div_runs_total"),
		consensus:    reg.Counter("div_runs_consensus_total"),
		aborted:      reg.Counter("div_runs_aborted_total"),
		runSteps:     reg.Histogram("div_run_steps"),
		discordEdges: reg.Gauge("div_discordant_edges_last"),
	}
}

func (m *metricsProbe) StepBatch(b StepBatch) {
	total := b.ToStep - b.FromStep
	m.steps.Add(total)
	m.active.Add(b.Active)
	m.idle.Add(b.Idle)
	m.skipped.Add(b.Skipped)
	switch b.Engine {
	case RegimeFast:
		m.fastSteps.Add(total)
	case RegimeSparse:
		m.sparseSteps.Add(total)
	}
}

func (m *metricsProbe) EngineSwitch(sw EngineSwitch) {
	m.switches.Inc()
	switch sw.To {
	case RegimeFast:
		m.toFast.Inc()
	case RegimeSparse:
		m.toSparse.Inc()
	default:
		m.toNaive.Inc()
	}
}

func (m *metricsProbe) Discordance(d Discordance) { m.discordEdges.Set(d.Edges) }

func (m *metricsProbe) Stage(st Stage) {
	m.stages.Inc()
	if st.TwoAdjacent {
		m.twoAdjacent.Inc()
	}
}

func (m *metricsProbe) Done(d Done) {
	m.runs.Inc()
	if d.Consensus {
		m.consensus.Inc()
	}
	if d.Aborted {
		m.aborted.Inc()
	}
	m.runSteps.Observe(d.Step)
}

// ProbeMaker builds a per-run Probe from the run's trial index and
// seed. Harness layers (exp.Params, CLI batch drivers) carry makers
// rather than probes so every core.Run gets events stamped with its
// own context — TraceWriter.Probe is already maker-shaped. A nil
// maker, and a maker returning nil, both mean "no probe" and keep the
// engine's nil-probe fast path.
type ProbeMaker func(trial int, seed uint64) Probe

// ConstMaker wraps a context-free probe (e.g. MetricsProbe, whose
// counters don't care which run an event came from) as a maker that
// returns it for every run. ConstMaker(nil) is nil.
func ConstMaker(p Probe) ProbeMaker {
	if p == nil {
		return nil
	}
	return func(int, uint64) Probe { return p }
}

// MultiMaker fans each run's events out to every probe built by the
// given makers. nil makers are dropped; with none left the result is
// nil, so callers can unconditionally assign it to a Config field.
func MultiMaker(makers ...ProbeMaker) ProbeMaker {
	live := make([]ProbeMaker, 0, len(makers))
	for _, m := range makers {
		if m != nil {
			live = append(live, m)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(trial int, seed uint64) Probe {
		ps := make([]Probe, 0, len(live))
		for _, m := range live {
			ps = append(ps, m(trial, seed))
		}
		return Multi(ps...)
	}
}

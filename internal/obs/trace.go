package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Event kind tags used in the JSONL trace's "ev" field.
const (
	KindStepBatch   = "batch"
	KindSwitch      = "switch"
	KindDiscordance = "discordance"
	KindStage       = "stage"
	KindDone        = "done"
	// KindMeta is the run-provenance header: written once, first, by
	// commands that know their manifest. Its trial/seed stamps are
	// zero; the payload identifies the producing code and machine.
	KindMeta = "meta"
)

// Event is one line of a JSONL trace: a tagged union of the probe
// event types, stamped with the run context (trial index and seed) so
// traces from multi-trial commands remain attributable. Exactly one
// payload pointer is non-nil, matching Kind.
type Event struct {
	Kind        string        `json:"ev"`
	Trial       int           `json:"trial"`
	Seed        uint64        `json:"seed"`
	StepBatch   *StepBatch    `json:"batch,omitempty"`
	Switch      *EngineSwitch `json:"switch,omitempty"`
	Discordance *Discordance  `json:"discordance,omitempty"`
	Stage       *Stage        `json:"stage,omitempty"`
	Done        *Done         `json:"done,omitempty"`
	Meta        *Provenance   `json:"meta,omitempty"`
}

// TraceWriter serializes probe events to an io.Writer as JSON Lines.
// Writes are buffered and mutex-serialized, so one writer may be
// shared by probes on concurrent runs (each line stays intact; under
// parallelism the interleaving of lines across trials is
// scheduler-dependent, while a serial run's trace is byte-identical
// across invocations). Encoding errors are sticky: the first one is
// kept and returned by Close/Err, and later writes are dropped.
type TraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	events int64
	err    error
}

// NewTraceWriter wraps w in a buffered JSONL event sink.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one event line.
func (t *TraceWriter) Write(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(ev); err != nil {
		t.err = err
		return
	}
	t.events++
}

// Events returns the number of events written so far.
func (t *TraceWriter) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err returns the first write error, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes the buffer and returns the first error seen. It does
// not close the underlying writer (the caller owns the file handle).
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// WriteProvenance writes the run-provenance header event. Call it
// once, before any probe events. The manifest is stripped of its
// wall-clock time and argv (Provenance.ForTrace) so traces of the
// same seeded configuration stay byte-identical across invocations.
func (t *TraceWriter) WriteProvenance(p Provenance) {
	stripped := p.ForTrace()
	t.Write(Event{Kind: KindMeta, Meta: &stripped})
}

// Probe returns a Probe that serializes every event into the trace,
// stamped with the given trial index and seed. Create one per run.
func (t *TraceWriter) Probe(trial int, seed uint64) Probe {
	return &traceProbe{t: t, trial: trial, seed: seed}
}

type traceProbe struct {
	t     *TraceWriter
	trial int
	seed  uint64
}

func (p *traceProbe) event(kind string) Event {
	return Event{Kind: kind, Trial: p.trial, Seed: p.seed}
}

func (p *traceProbe) StepBatch(b StepBatch) {
	ev := p.event(KindStepBatch)
	ev.StepBatch = &b
	p.t.Write(ev)
}

func (p *traceProbe) EngineSwitch(sw EngineSwitch) {
	ev := p.event(KindSwitch)
	ev.Switch = &sw
	p.t.Write(ev)
}

func (p *traceProbe) Discordance(d Discordance) {
	ev := p.event(KindDiscordance)
	ev.Discordance = &d
	p.t.Write(ev)
}

func (p *traceProbe) Stage(st Stage) {
	ev := p.event(KindStage)
	ev.Stage = &st
	p.t.Write(ev)
}

func (p *traceProbe) Done(d Done) {
	ev := p.event(KindDone)
	ev.Done = &d
	p.t.Write(ev)
}

// Sentinel categories for trace decoding failures, matched with
// errors.Is against the *TraceError a failed ReadTrace returns.
var (
	// ErrTraceTruncated marks a trace whose final line is incomplete —
	// the writer was killed mid-line or the file was cut short. The
	// events before the cut are still returned.
	ErrTraceTruncated = errors.New("truncated trace")
	// ErrTraceBadEvent marks a complete line that is not a valid
	// event: unparseable JSON, an unknown kind tag, or a kind whose
	// payload is missing.
	ErrTraceBadEvent = errors.New("bad trace event")
)

// TraceError is the typed error ReadTrace returns on a malformed
// trace: the 1-based line number, the category (ErrTraceTruncated or
// ErrTraceBadEvent, matchable with errors.Is), and the underlying
// cause.
type TraceError struct {
	Line int
	Kind error // ErrTraceTruncated or ErrTraceBadEvent
	Err  error // underlying cause, nil for structural problems
}

func (e *TraceError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("obs: trace line %d: %v: %v", e.Line, e.Kind, e.Err)
	}
	return fmt.Sprintf("obs: trace line %d: %v", e.Line, e.Kind)
}

// Unwrap exposes both the category sentinel and the cause to
// errors.Is/errors.As.
func (e *TraceError) Unwrap() []error {
	if e.Err != nil {
		return []error{e.Kind, e.Err}
	}
	return []error{e.Kind}
}

// ReadTrace decodes a JSONL trace back into events, validating that
// each line's payload matches its kind tag. It is the inverse of
// TraceWriter up to JSON number formatting (which is canonical for the
// integer fields used here, so write→read→write round-trips bytes).
//
// Malformed input returns a *TraceError alongside every event decoded
// before the failure: a partial final line (no trailing newline, not
// parseable — the signature of a killed writer) categorizes as
// ErrTraceTruncated, while a complete-but-invalid line (bad JSON, an
// unknown "ev" tag, a payload that does not match its tag)
// categorizes as ErrTraceBadEvent.
func ReadTrace(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var out []Event
	for line := 1; ; line++ {
		raw, rerr := br.ReadBytes('\n')
		complete := rerr == nil
		if rerr != nil && rerr != io.EOF {
			return out, &TraceError{Line: line, Kind: ErrTraceTruncated, Err: rerr}
		}
		if len(bytes.TrimSpace(raw)) == 0 {
			if !complete {
				return out, nil
			}
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			kind := ErrTraceBadEvent
			if !complete {
				kind = ErrTraceTruncated
			}
			return out, &TraceError{Line: line, Kind: kind, Err: err}
		}
		var want bool
		switch ev.Kind {
		case KindStepBatch:
			want = ev.StepBatch != nil
		case KindSwitch:
			want = ev.Switch != nil
		case KindDiscordance:
			want = ev.Discordance != nil
		case KindStage:
			want = ev.Stage != nil
		case KindDone:
			want = ev.Done != nil
		case KindMeta:
			want = ev.Meta != nil
		default:
			return out, &TraceError{Line: line, Kind: ErrTraceBadEvent,
				Err: fmt.Errorf("unknown event kind %q", ev.Kind)}
		}
		if !want {
			return out, &TraceError{Line: line, Kind: ErrTraceBadEvent,
				Err: fmt.Errorf("kind %q with missing payload", ev.Kind)}
		}
		out = append(out, ev)
		if !complete {
			return out, nil
		}
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event kind tags used in the JSONL trace's "ev" field.
const (
	KindStepBatch   = "batch"
	KindSwitch      = "switch"
	KindDiscordance = "discordance"
	KindStage       = "stage"
	KindDone        = "done"
)

// Event is one line of a JSONL trace: a tagged union of the probe
// event types, stamped with the run context (trial index and seed) so
// traces from multi-trial commands remain attributable. Exactly one
// payload pointer is non-nil, matching Kind.
type Event struct {
	Kind        string        `json:"ev"`
	Trial       int           `json:"trial"`
	Seed        uint64        `json:"seed"`
	StepBatch   *StepBatch    `json:"batch,omitempty"`
	Switch      *EngineSwitch `json:"switch,omitempty"`
	Discordance *Discordance  `json:"discordance,omitempty"`
	Stage       *Stage        `json:"stage,omitempty"`
	Done        *Done         `json:"done,omitempty"`
}

// TraceWriter serializes probe events to an io.Writer as JSON Lines.
// Writes are buffered and mutex-serialized, so one writer may be
// shared by probes on concurrent runs (each line stays intact; under
// parallelism the interleaving of lines across trials is
// scheduler-dependent, while a serial run's trace is byte-identical
// across invocations). Encoding errors are sticky: the first one is
// kept and returned by Close/Err, and later writes are dropped.
type TraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	events int64
	err    error
}

// NewTraceWriter wraps w in a buffered JSONL event sink.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one event line.
func (t *TraceWriter) Write(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(ev); err != nil {
		t.err = err
		return
	}
	t.events++
}

// Events returns the number of events written so far.
func (t *TraceWriter) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err returns the first write error, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes the buffer and returns the first error seen. It does
// not close the underlying writer (the caller owns the file handle).
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Probe returns a Probe that serializes every event into the trace,
// stamped with the given trial index and seed. Create one per run.
func (t *TraceWriter) Probe(trial int, seed uint64) Probe {
	return &traceProbe{t: t, trial: trial, seed: seed}
}

type traceProbe struct {
	t     *TraceWriter
	trial int
	seed  uint64
}

func (p *traceProbe) event(kind string) Event {
	return Event{Kind: kind, Trial: p.trial, Seed: p.seed}
}

func (p *traceProbe) StepBatch(b StepBatch) {
	ev := p.event(KindStepBatch)
	ev.StepBatch = &b
	p.t.Write(ev)
}

func (p *traceProbe) EngineSwitch(sw EngineSwitch) {
	ev := p.event(KindSwitch)
	ev.Switch = &sw
	p.t.Write(ev)
}

func (p *traceProbe) Discordance(d Discordance) {
	ev := p.event(KindDiscordance)
	ev.Discordance = &d
	p.t.Write(ev)
}

func (p *traceProbe) Stage(st Stage) {
	ev := p.event(KindStage)
	ev.Stage = &st
	p.t.Write(ev)
}

func (p *traceProbe) Done(d Done) {
	ev := p.event(KindDone)
	ev.Done = &d
	p.t.Write(ev)
}

// ReadTrace decodes a JSONL trace back into events, validating that
// each line's payload matches its kind tag. It is the inverse of
// TraceWriter up to JSON number formatting (which is canonical for the
// integer fields used here, so write→read→write round-trips bytes).
func ReadTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for line := 1; ; line++ {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		var want bool
		switch ev.Kind {
		case KindStepBatch:
			want = ev.StepBatch != nil
		case KindSwitch:
			want = ev.Switch != nil
		case KindDiscordance:
			want = ev.Discordance != nil
		case KindStage:
			want = ev.Stage != nil
		case KindDone:
			want = ev.Done != nil
		default:
			return out, fmt.Errorf("obs: trace line %d: unknown event kind %q", line, ev.Kind)
		}
		if !want {
			return out, fmt.Errorf("obs: trace line %d: kind %q with missing payload", line, ev.Kind)
		}
		out = append(out, ev)
	}
}

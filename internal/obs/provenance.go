package obs

import (
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Provenance is the run manifest: everything needed to attribute a
// benchmark report or trace to the code, configuration, and machine
// that produced it. It is embedded in BENCH_engine.json, served at
// /snapshot.json, and written (time- and argv-stripped, so seeded
// traces stay byte-identical across reruns) as the first line of
// JSONL traces.
type Provenance struct {
	// Command is the producing binary ("divbench", "divsim", "divd").
	Command string `json:"command"`
	// Args is the raw command line (flags included), absent in trace
	// headers where it would break byte-identity across reruns that
	// differ only in output paths.
	Args []string `json:"args,omitempty"`
	// Seed is the master seed of the run; Engine the stepping-engine
	// selection string as given ("auto", "naive", "fast").
	Seed   uint64 `json:"seed"`
	Engine string `json:"engine,omitempty"`

	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Host       string `json:"host,omitempty"`

	// GitSHA is the VCS revision stamped into the binary by the go
	// toolchain ("unknown" when built without VCS metadata, e.g. test
	// binaries); GitDirty marks uncommitted changes at build time.
	GitSHA   string `json:"git_sha"`
	GitDirty bool   `json:"git_dirty,omitempty"`

	// Time is the RFC3339 wall-clock start of the run, absent in trace
	// headers.
	Time string `json:"time,omitempty"`

	// PeakRSSBytes is the process resident-set high-water mark and
	// TotalAllocBytes the cumulative heap allocation, both captured by
	// WithMemStats at the end of the run. Absent in trace headers —
	// memory footprints vary between reruns of the same seed.
	PeakRSSBytes    int64 `json:"peak_rss_bytes,omitempty"`
	TotalAllocBytes int64 `json:"total_alloc_bytes,omitempty"`
}

// CollectProvenance gathers the manifest for the current process.
func CollectProvenance(command string, seed uint64, engine string) Provenance {
	p := Provenance{
		Command:    command,
		Args:       os.Args[1:],
		Seed:       seed,
		Engine:     engine,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GitSHA:     "unknown",
		Time:       time.Now().UTC().Format(time.RFC3339),
	}
	if host, err := os.Hostname(); err == nil {
		p.Host = host
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				p.GitSHA = s.Value
			case "vcs.modified":
				p.GitDirty = s.Value == "true"
			}
		}
	}
	return p
}

// ForTrace returns a copy with the fields that legitimately vary
// between reruns of the same seeded configuration (wall-clock time,
// argv — which carries output file paths) cleared, so a trace header
// never breaks the byte-identity guarantee of seeded traces.
func (p Provenance) ForTrace() Provenance {
	p.Args = nil
	p.Time = ""
	p.PeakRSSBytes = 0
	p.TotalAllocBytes = 0
	return p
}

// WithMemStats returns a copy with the end-of-run memory footprint
// filled in: the kernel's resident-set high-water mark (when /proc is
// available) and Go's cumulative heap allocation. Call it just before
// serializing a report manifest.
func (p Provenance) WithMemStats() Provenance {
	if peak, ok := ReadPeakRSS(); ok {
		p.PeakRSSBytes = peak
	}
	p.TotalAllocBytes = HeapTotalAlloc()
	return p
}

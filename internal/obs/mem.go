package obs

import (
	"bytes"
	"os"
	"runtime"
	"sync"
	"time"
)

// Memory instrumentation for big-n runs: resident-set readers backed
// by /proc/self/status (Linux; other platforms degrade to ok=false)
// and a background peak sampler for phase-scoped high-water marks —
// the kernel's own VmHWM spans the whole process lifetime, so a
// comparison of two phases inside one process needs its own tracker.

// ReadRSS returns the process's current resident set size in bytes,
// or ok=false where /proc is unavailable.
func ReadRSS() (bytes int64, ok bool) { return readStatusKB("VmRSS:") }

// ReadPeakRSS returns the process-lifetime resident-set high-water
// mark (VmHWM) in bytes, or ok=false where /proc is unavailable.
func ReadPeakRSS() (bytes int64, ok bool) { return readStatusKB("VmHWM:") }

// readStatusKB extracts one "kB" field from /proc/self/status.
func readStatusKB(key string) (int64, bool) {
	buf, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	return parseStatusKB(buf, key)
}

// parseStatusKB scans status-file content for "key   <n> kB" and
// returns n·1024.
func parseStatusKB(buf []byte, key string) (int64, bool) {
	for len(buf) > 0 {
		line := buf
		if i := bytes.IndexByte(buf, '\n'); i >= 0 {
			line, buf = buf[:i], buf[i+1:]
		} else {
			buf = nil
		}
		rest, found := bytes.CutPrefix(line, []byte(key))
		if !found {
			continue
		}
		var kb int64
		seen := false
		for _, c := range rest {
			if c >= '0' && c <= '9' {
				kb = kb*10 + int64(c-'0')
				seen = true
			} else if seen {
				break
			}
		}
		if !seen {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}

// PeakTracker samples the current RSS on a fixed cadence and retains
// the maximum seen between Start and Stop, so one process can compare
// the footprints of successive phases (VmHWM cannot be reset without
// root). The sampler also folds in a final read at Stop, bounding the
// error to allocations both shorter than the interval and freed before
// Stop.
type PeakTracker struct {
	mu   sync.Mutex
	peak int64
	done chan struct{}
	wg   sync.WaitGroup
}

// TrackPeakRSS starts a sampler at the given interval (≤ 0 means
// 10ms). Call Stop to retrieve the peak and release the goroutine.
func TrackPeakRSS(interval time.Duration) *PeakTracker {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	t := &PeakTracker{done: make(chan struct{})}
	t.sample()
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.sample()
			case <-t.done:
				return
			}
		}
	}()
	return t
}

func (t *PeakTracker) sample() {
	if rss, ok := ReadRSS(); ok {
		t.mu.Lock()
		if rss > t.peak {
			t.peak = rss
		}
		t.mu.Unlock()
	}
}

// Peak returns the highest RSS observed so far, in bytes (0 where
// /proc is unavailable).
func (t *PeakTracker) Peak() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peak
}

// Stop takes a final sample, terminates the sampler, and returns the
// peak. Stop is idempotent.
func (t *PeakTracker) Stop() int64 {
	select {
	case <-t.done:
	default:
		close(t.done)
	}
	t.wg.Wait()
	t.sample()
	return t.Peak()
}

// HeapTotalAlloc returns the cumulative bytes allocated on the heap
// since process start (monotone; survives GC).
func HeapTotalAlloc() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.TotalAlloc)
}

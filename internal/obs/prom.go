package obs

import (
	"bufio"
	"fmt"
	"io"
)

// This file renders a Snapshot in the Prometheus text exposition
// format (version 0.0.4), so a running suite — or the future divd job
// service — can be scraped by any Prometheus-compatible collector.
// The rendering is a pure function of the snapshot: deterministic
// order (snapshots are name-sorted), no timestamps, no labels except
// the histogram `le` buckets.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders the snapshot as Prometheus text format:
//
//	# TYPE sched_tasks_total counter
//	sched_tasks_total 42
//	# TYPE sched_queue_depth gauge
//	sched_queue_depth 3
//	# TYPE sim_trial_micros histogram
//	sim_trial_micros_bucket{le="127"} 9
//	sim_trial_micros_bucket{le="+Inf"} 10
//	sim_trial_micros_sum 1042
//	sim_trial_micros_count 10
//
// Histogram buckets are cumulative, as the format requires. Our log₂
// buckets hold integer observations in [2^(i-1), 2^i), so the
// inclusive upper bound of bucket i is 2^i − 1 — that is the `le`
// value emitted (with le="0" for the ≤0 bucket). Metric names are
// sanitized into the exposition alphabet, but every name the
// repository registers is already clean.
func (s Snapshot) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		name := SanitizeMetricName(c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, g := range s.Gauges {
		name := SanitizeMetricName(g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
	}
	for _, h := range s.Histograms {
		name := SanitizeMetricName(h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := b.Hi - 1
			if b.Lo == 0 && b.Hi == 1 {
				le = 0 // the ≤0 bucket
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, le, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	return bw.Flush()
}

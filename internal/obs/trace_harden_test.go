package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestReadTraceTruncatedFinalLine(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	driveProbe(tw.Probe(0, 1))
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut the trace mid-way through its final line: the signature of a
	// writer killed before flushing a complete record.
	cut := full[:len(full)-10]
	events, err := ReadTrace(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("truncated trace accepted")
	}
	if !errors.Is(err, ErrTraceTruncated) {
		t.Fatalf("err = %v, want ErrTraceTruncated", err)
	}
	if errors.Is(err, ErrTraceBadEvent) {
		t.Fatal("truncation must not also categorize as a bad event")
	}
	var te *TraceError
	if !errors.As(err, &te) {
		t.Fatalf("err %T is not a *TraceError", err)
	}
	if te.Line != 5 {
		t.Fatalf("TraceError.Line = %d, want 5", te.Line)
	}
	if len(events) != 4 {
		t.Fatalf("returned %d events before the cut, want 4", len(events))
	}
}

func TestReadTraceBadEventTyped(t *testing.T) {
	good := `{"ev":"done","trial":0,"seed":0,"done":{"step":1,"winner":1,"consensus":true}}`
	for _, tc := range []struct {
		name string
		line string
	}{
		{"unknown kind", `{"ev":"bogus","trial":0,"seed":0}`},
		{"payload missing", `{"ev":"batch","trial":0,"seed":0}`},
		{"not json", `{{{`},
		{"wrong payload for kind", `{"ev":"stage","trial":0,"seed":0,"done":{"step":1}}`},
	} {
		input := good + "\n" + tc.line + "\n"
		events, err := ReadTrace(strings.NewReader(input))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrTraceBadEvent) {
			t.Errorf("%s: err = %v, want ErrTraceBadEvent", tc.name, err)
		}
		var te *TraceError
		if !errors.As(err, &te) || te.Line != 2 {
			t.Errorf("%s: want *TraceError at line 2, got %v", tc.name, err)
		}
		if len(events) != 1 {
			t.Errorf("%s: %d events before the bad line, want 1", tc.name, len(events))
		}
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	line := `{"ev":"done","trial":0,"seed":0,"done":{"step":1,"winner":1,"consensus":true}}`
	events, err := ReadTrace(strings.NewReader("\n" + line + "\n\n" + line + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events, want 2", len(events))
	}
}

func TestTraceProvenanceHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	prov := CollectProvenance("divsim", 99, "auto")
	tw.WriteProvenance(prov)
	driveProbe(tw.Probe(0, 99))
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Kind != KindMeta || events[0].Meta == nil {
		t.Fatalf("first event = %+v, want a meta header", events[0])
	}
	m := events[0].Meta
	if m.Command != "divsim" || m.Seed != 99 {
		t.Fatalf("meta identity = %+v", m)
	}
	if m.Time != "" || m.Args != nil {
		t.Fatalf("meta header must be time/argv-stripped: %+v", m)
	}
}

// TestTraceProvenanceByteIdentity guards the trace-artifact contract:
// two traces of the same seeded configuration must be byte-identical
// even when the processes differed in argv and wall-clock time.
func TestTraceProvenanceByteIdentity(t *testing.T) {
	render := func(args []string, when string) []byte {
		var buf bytes.Buffer
		tw := NewTraceWriter(&buf)
		prov := CollectProvenance("divsim", 7, "auto")
		prov.Args = args
		prov.Time = when
		tw.WriteProvenance(prov)
		driveProbe(tw.Probe(0, 7))
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render([]string{"-trace", "a.jsonl"}, "2026-01-01T00:00:00Z")
	b := render([]string{"-trace", "b.jsonl"}, "2026-06-30T12:00:00Z")
	if !bytes.Equal(a, b) {
		t.Fatalf("traces differ across argv/time:\n%s\nvs\n%s", a, b)
	}
}

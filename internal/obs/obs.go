// Package obs is the repository's zero-dependency observability layer:
// a metrics registry of atomic counters, gauges (stored and callback),
// and log-bucketed histograms with a deterministic snapshot
// (metrics.go); a low-overhead span API timing hierarchical work units
// into latency histograms (span.go); a Prometheus text-format
// exposition writer (prom.go) and the HTTP surface behind the
// commands' -serve flag — /metrics, /snapshot.json, /progress
// (http.go); a run-provenance manifest identifying the code,
// configuration, and machine behind a report or trace
// (provenance.go); a structured run-probe interface that the core
// stepping engines feed with semantic events — step batches, hybrid
// engine switches, discordance-mass samples, stage transitions, and
// winner resolution (probe.go); and a JSONL trace sink that serializes
// probe events with trial/seed context for offline analysis
// (trace.go).
//
// The package imports nothing but the standard library and is imported
// by every layer that emits telemetry (core, sim, netsim, the
// commands). Two invariants make it safe to leave wired in
// permanently:
//
//   - A nil Probe costs nothing. Emission sites are guarded by a single
//     predictable `probe != nil` branch; no event structs are built and
//     no counters maintained unless a probe is attached.
//   - A non-nil Probe never perturbs the run. Probes observe the
//     engines' decisions but never touch the RNG or the control flow,
//     so attaching one to a seeded run leaves the realized trajectory
//     byte-identical to the unobserved run.
package obs

package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestParseStatusKB(t *testing.T) {
	buf := []byte("Name:\tdivbench\nVmPeak:\t  123456 kB\nVmRSS:\t   20480 kB\nVmHWM:\t   40960 kB\n")
	if v, ok := parseStatusKB(buf, "VmRSS:"); !ok || v != 20480*1024 {
		t.Errorf("VmRSS = %d, %v; want %d, true", v, ok, 20480*1024)
	}
	if v, ok := parseStatusKB(buf, "VmHWM:"); !ok || v != 40960*1024 {
		t.Errorf("VmHWM = %d, %v; want %d, true", v, ok, 40960*1024)
	}
	if _, ok := parseStatusKB(buf, "VmSwap:"); ok {
		t.Error("missing key must report ok=false")
	}
	if _, ok := parseStatusKB([]byte("VmRSS:\tnothing\n"), "VmRSS:"); ok {
		t.Error("digit-free value must report ok=false")
	}
}

func TestReadRSS(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("/proc-based readers are Linux-only")
	}
	rss, ok := ReadRSS()
	if !ok || rss <= 0 {
		t.Fatalf("ReadRSS = %d, %v", rss, ok)
	}
	peak, ok := ReadPeakRSS()
	if !ok || peak < rss/2 {
		// The high-water mark can't be far below the current RSS; the
		// slack absorbs sampling races.
		t.Fatalf("ReadPeakRSS = %d, %v (current %d)", peak, ok, rss)
	}
}

func TestPeakTracker(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("/proc-based readers are Linux-only")
	}
	tr := TrackPeakRSS(time.Millisecond)
	if tr.Peak() <= 0 {
		t.Fatal("tracker must take an initial sample")
	}
	// Touch a slab large enough to move the RSS, then let the sampler
	// observe it.
	slab := make([]byte, 64<<20)
	for i := 0; i < len(slab); i += 4096 {
		slab[i] = 1
	}
	time.Sleep(20 * time.Millisecond)
	peak := tr.Stop()
	runtime.KeepAlive(slab)
	if peak <= 0 {
		t.Fatalf("peak = %d", peak)
	}
	if again := tr.Stop(); again != peak && again < peak {
		t.Errorf("Stop must be idempotent: %d then %d", peak, again)
	}
}

func TestProvenanceMemStats(t *testing.T) {
	p := CollectProvenance("test", 1, "auto").WithMemStats()
	if p.TotalAllocBytes <= 0 {
		t.Errorf("TotalAllocBytes = %d", p.TotalAllocBytes)
	}
	if runtime.GOOS == "linux" && p.PeakRSSBytes <= 0 {
		t.Errorf("PeakRSSBytes = %d on linux", p.PeakRSSBytes)
	}
	ft := p.ForTrace()
	if ft.PeakRSSBytes != 0 || ft.TotalAllocBytes != 0 {
		t.Errorf("ForTrace must strip memory fields: %+v", ft)
	}
}

package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// driveProbe feeds one event of every kind through p.
func driveProbe(p Probe) {
	p.StepBatch(StepBatch{FromStep: 0, ToStep: 100, Engine: RegimeNaive, Active: 60, Idle: 40})
	p.EngineSwitch(EngineSwitch{Step: 100, From: RegimeNaive, To: RegimeFast, Reason: SwitchProbe, MassNum: 3, MassDen: 80})
	p.Discordance(Discordance{Step: 150, Edges: 12, MassNum: 3, MassDen: 80})
	p.Stage(Stage{Step: 180, Support: 2, Min: 1, Max: 2, TwoAdjacent: true})
	p.Done(Done{Step: 200, Winner: 2, Consensus: true})
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	driveProbe(tw.Probe(3, 0xfeed))
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() != 5 {
		t.Fatalf("Events() = %d, want 5", tw.Events())
	}

	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("decoded %d events, want 5", len(events))
	}
	wantKinds := []string{KindStepBatch, KindSwitch, KindDiscordance, KindStage, KindDone}
	for i, ev := range events {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %q, want %q", i, ev.Kind, wantKinds[i])
		}
		if ev.Trial != 3 || ev.Seed != 0xfeed {
			t.Errorf("event %d context = (%d, %#x), want (3, 0xfeed)", i, ev.Trial, ev.Seed)
		}
	}
	if b := events[0].StepBatch; b == nil || b.Active != 60 || b.Idle != 40 || b.ToStep != 100 {
		t.Errorf("batch payload = %+v", events[0].StepBatch)
	}
	if sw := events[1].Switch; sw == nil || sw.Reason != SwitchProbe || sw.To != RegimeFast {
		t.Errorf("switch payload = %+v", events[1].Switch)
	}
	if d := events[3].Stage; d == nil || !d.TwoAdjacent {
		t.Errorf("stage payload = %+v", events[3].Stage)
	}

	// write → read → write round-trips bytes: integer JSON encoding is
	// canonical, so re-serializing the decoded events reproduces the
	// original trace exactly.
	var buf2 bytes.Buffer
	tw2 := NewTraceWriter(&buf2)
	for _, ev := range events {
		tw2.Write(ev)
	}
	if err := tw2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-encoded trace differs:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	for _, tc := range []struct{ name, line string }{
		{"unknown kind", `{"ev":"bogus","trial":0,"seed":0}`},
		{"missing payload", `{"ev":"batch","trial":0,"seed":0}`},
		{"not json", `nope`},
	} {
		if _, err := ReadTrace(strings.NewReader(tc.line + "\n")); err == nil {
			t.Errorf("%s: ReadTrace accepted %q", tc.name, tc.line)
		}
	}
}

// recordingProbe counts events per kind.
type recordingProbe struct {
	batches, switches, discords, stages, dones int
}

func (p *recordingProbe) StepBatch(StepBatch)       { p.batches++ }
func (p *recordingProbe) EngineSwitch(EngineSwitch) { p.switches++ }
func (p *recordingProbe) Discordance(Discordance)   { p.discords++ }
func (p *recordingProbe) Stage(Stage)               { p.stages++ }
func (p *recordingProbe) Done(Done)                 { p.dones++ }

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no live probes should be nil")
	}
	var solo recordingProbe
	if got := Multi(nil, &solo); got != Probe(&solo) {
		t.Fatal("Multi with one live probe should return it directly")
	}
	var a, b recordingProbe
	m := Multi(&a, nil, &b)
	driveProbe(m)
	for i, p := range []*recordingProbe{&a, &b} {
		if !reflect.DeepEqual(*p, recordingProbe{1, 1, 1, 1, 1}) {
			t.Errorf("probe %d saw %+v, want one event of each kind", i, *p)
		}
	}
}

func TestProbeMakers(t *testing.T) {
	if ConstMaker(nil) != nil {
		t.Fatal("ConstMaker(nil) should be nil")
	}
	if MultiMaker() != nil || MultiMaker(nil, nil) != nil {
		t.Fatal("MultiMaker of no live makers should be nil")
	}
	var solo recordingProbe
	sole := ConstMaker(&solo)
	if got := MultiMaker(nil, sole)(1, 2); got != Probe(&solo) {
		t.Fatalf("single-maker MultiMaker returned %v", got)
	}

	var a recordingProbe
	var gotTrial int
	var gotSeed uint64
	maker := MultiMaker(ConstMaker(&a), func(trial int, seed uint64) Probe {
		gotTrial, gotSeed = trial, seed
		return nil // a maker may decline; Multi must drop the nil
	})
	p := maker(7, 0xabc)
	if gotTrial != 7 || gotSeed != 0xabc {
		t.Fatalf("maker context = (%d, %#x)", gotTrial, gotSeed)
	}
	driveProbe(p)
	if a.batches != 1 || a.dones != 1 {
		t.Fatalf("constant probe saw %+v", a)
	}
}

func TestMetricsProbe(t *testing.T) {
	reg := NewRegistry()
	p := MetricsProbe(reg)
	p.StepBatch(StepBatch{FromStep: 0, ToStep: 100, Engine: RegimeFast, Active: 10, Skipped: 90})
	p.EngineSwitch(EngineSwitch{Step: 100, From: RegimeFast, To: RegimeNaive, Reason: SwitchRebound})
	p.Discordance(Discordance{Step: 100, Edges: 17})
	p.Done(Done{Step: 100, Winner: 1, Consensus: true})

	for name, want := range map[string]int64{
		"div_steps_total":             100,
		"div_steps_active_total":      10,
		"div_steps_skipped_total":     90,
		"div_steps_fast_regime_total": 100,
		"div_engine_switches_total":   1,
		"div_runs_total":              1,
		"div_runs_consensus_total":    1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("div_discordant_edges_last").Value(); got != 17 {
		t.Errorf("div_discordant_edges_last = %d", got)
	}
	if got := reg.Histogram("div_run_steps").Count(); got != 1 {
		t.Errorf("div_run_steps count = %d", got)
	}
}

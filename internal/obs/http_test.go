package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func serveTestMux(t *testing.T) (*httptest.Server, *Registry, *Progress) {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("tasks_total").Add(10)
	reg.Gauge("depth").Set(2)
	reg.Histogram("lat").Observe(50)
	prov := CollectProvenance("divtest", 42, "auto")
	prog := NewProgress(3)
	prog.Start("E1")
	prog.Start("E2")
	prog.Done("E1")
	srv := httptest.NewServer(NewServeMux(reg, &prov, prog))
	t.Cleanup(srv.Close)
	return srv, reg, prog
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

func TestServeMetricsEndpoint(t *testing.T) {
	srv, _, _ := serveTestMux(t)
	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content type %q, want %q", ct, PromContentType)
	}
	for _, want := range []string{
		"# TYPE tasks_total counter\ntasks_total 10\n",
		"# TYPE depth gauge\ndepth 2\n",
		`lat_bucket{le="63"} 1`,
		`lat_bucket{le="+Inf"} 1`,
		"lat_sum 50",
		"lat_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServeProgressEndpoint(t *testing.T) {
	srv, _, prog := serveTestMux(t)
	_, body := get(t, srv.URL+"/progress")
	var ps ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &ps); err != nil {
		t.Fatalf("progress not JSON: %v\n%s", err, body)
	}
	if ps.Total != 3 || ps.Done != 1 {
		t.Fatalf("progress = %+v, want total 3 done 1", ps)
	}
	if len(ps.Running) != 1 || ps.Running[0] != "E2" {
		t.Fatalf("running = %v, want [E2]", ps.Running)
	}
	prog.Done("E2")
	_, body = get(t, srv.URL+"/progress")
	var after ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	if after.Done != 2 || len(after.Running) != 0 {
		t.Fatalf("after Done: %+v", after)
	}
}

func TestServeSnapshotEndpoint(t *testing.T) {
	srv, _, _ := serveTestMux(t)
	_, body := get(t, srv.URL+"/snapshot.json")
	var state struct {
		Provenance *Provenance       `json:"provenance"`
		Progress   *ProgressSnapshot `json:"progress"`
		Metrics    Snapshot          `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &state); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, body)
	}
	if state.Provenance == nil || state.Provenance.Command != "divtest" || state.Provenance.Seed != 42 {
		t.Fatalf("provenance = %+v", state.Provenance)
	}
	if state.Progress == nil || state.Progress.Total != 3 {
		t.Fatalf("progress = %+v", state.Progress)
	}
	if state.Metrics.CounterValue("tasks_total") != 10 {
		t.Fatalf("metrics counters = %+v", state.Metrics.Counters)
	}
}

func TestServeMuxNilProvenanceAndProgress(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(NewServeMux(reg, nil, nil))
	defer srv.Close()
	resp, body := get(t, srv.URL+"/progress")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ps ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &ps); err != nil || ps.Total != 0 {
		t.Fatalf("nil-progress body %q (err %v)", body, err)
	}
	if _, body = get(t, srv.URL+"/snapshot.json"); strings.Contains(body, `"provenance"`) {
		t.Fatalf("nil provenance should be omitted:\n%s", body)
	}
}

func TestCollectProvenance(t *testing.T) {
	p := CollectProvenance("divbench", 7, "fast")
	if p.Command != "divbench" || p.Seed != 7 || p.Engine != "fast" {
		t.Fatalf("identity fields: %+v", p)
	}
	if p.GoVersion == "" || p.GOOS == "" || p.GOARCH == "" || p.GOMAXPROCS < 1 || p.NumCPU < 1 {
		t.Fatalf("runtime fields missing: %+v", p)
	}
	if p.GitSHA == "" {
		t.Fatal("GitSHA must never be empty (unknown when unstamped)")
	}
	if p.Time == "" {
		t.Fatal("Time must be stamped")
	}
	ft := p.ForTrace()
	if ft.Args != nil || ft.Time != "" {
		t.Fatalf("ForTrace must clear Args and Time: %+v", ft)
	}
	if ft.Command != p.Command || ft.Seed != p.Seed {
		t.Fatal("ForTrace must keep the identity fields")
	}
}

package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanRecordsIntoPathHistogram(t *testing.T) {
	reg := NewRegistry()
	sp := reg.Span("suite")
	if !sp.Active() {
		t.Fatal("span from a live registry should be active")
	}
	if d := sp.End(); d < 0 {
		t.Fatalf("End returned negative duration %v", d)
	}
	if got := reg.Histogram("span_suite_nanos").Count(); got != 1 {
		t.Fatalf("span_suite_nanos count = %d, want 1", got)
	}
}

func TestSpanChildExtendsPath(t *testing.T) {
	reg := NewRegistry()
	suite := reg.Span("suite")
	exp := suite.Child("experiment")
	point := exp.Child("point")
	point.End()
	exp.End()
	suite.End()
	for _, name := range []string{
		"span_suite_nanos",
		"span_suite_experiment_nanos",
		"span_suite_experiment_point_nanos",
	} {
		if got := reg.Histogram(name).Count(); got != 1 {
			t.Errorf("%s count = %d, want 1", name, got)
		}
	}
}

func TestSpanNesting(t *testing.T) {
	// A parent's wall time covers its children: sum of child durations
	// cannot exceed the parent's recorded duration.
	reg := NewRegistry()
	parent := reg.Span("outer")
	child := parent.Child("inner")
	time.Sleep(time.Millisecond)
	childDur := child.End()
	parentDur := parent.End()
	if childDur > parentDur {
		t.Fatalf("child duration %v exceeds parent %v", childDur, parentDur)
	}
	if childDur < time.Millisecond {
		t.Fatalf("child duration %v below the slept millisecond", childDur)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var tm *Timer
	sp := tm.Start()
	if sp.Active() {
		t.Fatal("span from a nil timer should be inert")
	}
	if d := sp.End(); d != 0 {
		t.Fatalf("inert End returned %v", d)
	}
	grand := sp.Child("x").Child("y")
	if grand.Active() || grand.End() != 0 {
		t.Fatal("children of an inert span should stay inert")
	}
	tm.Observe(time.Second)     // must not panic
	tm.ObserveSince(time.Now()) // must not panic
	var zero Span
	if zero.Active() || zero.End() != 0 {
		t.Fatal("the zero Span should be inert")
	}
}

func TestTimerObserve(t *testing.T) {
	reg := NewRegistry()
	tm := reg.Timer("suite/experiment point")
	tm.Observe(3 * time.Microsecond)
	tm.ObserveSince(time.Now().Add(-time.Microsecond))
	h := reg.Histogram("span_suite_experiment_point_nanos")
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2 (path should sanitize '/' and ' ' to '_')", got)
	}
	if h.Sum() < (3 * time.Microsecond).Nanoseconds() {
		t.Fatalf("sum = %d, below the observed 3µs", h.Sum())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"already_clean_09": "already_clean_09",
		"a/b c.d:e":        "a_b_c_d_e",
		"rr(n=512,d=8)":    "rr_n_512_d_8_",
		"":                 "",
	} {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
	if !strings.HasPrefix(spanHistName("x"), "span_") || !strings.HasSuffix(spanHistName("x"), "_nanos") {
		t.Errorf("spanHistName(x) = %q", spanHistName("x"))
	}
}

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// counterShards is the number of independent cells a Counter spreads
// updates over. Hot writers that know a stable small index (scheduler
// workers use their worker ID) call AddShard/IncShard so concurrent
// increments land on distinct cache lines instead of bouncing one line
// between cores. A power of two keeps the shard mask a single AND.
const counterShards = 8

// counterCell pads one shard out to a cache line so neighbouring
// shards never false-share.
type counterCell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing counter. Plain Add/Inc hit a
// fixed cell and stay as cheap as a single atomic; writers with a
// stable shard hint use AddShard/IncShard to spread contention. Value
// sums the cells, so reads are O(counterShards) — fine for snapshots,
// which is the only place counters are read.
type Counter struct {
	cells [counterShards]counterCell
}

// Add increments the counter by d (d may be any nonnegative amount).
func (c *Counter) Add(d int64) { c.cells[0].n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.cells[0].n.Add(1) }

// AddShard increments the counter by d on the cell selected by shard
// (reduced mod the shard count). Concurrent writers with distinct
// shard hints do not contend.
func (c *Counter) AddShard(shard int, d int64) {
	c.cells[uint(shard)%counterShards].n.Add(d)
}

// IncShard increments the counter by one on the cell selected by
// shard.
func (c *Counter) IncShard(shard int) {
	c.cells[uint(shard)%counterShards].n.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	var s int64
	for i := range c.cells {
		s += c.cells[i].n.Load()
	}
	return s
}

// Gauge is an atomic int64 that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value — the
// lock-free high-water-mark update.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of log₂ buckets: bucket 0 holds values
// ≤ 0, bucket i ≥ 1 holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a log₂-bucketed distribution of int64 observations.
// Observations are lock-free; buckets double in width so any int64
// range is covered by 65 cells with ≤ 2× relative resolution.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64 // valid only when count > 0
}

// bucketOf returns the bucket index for v.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Registry is a named collection of counters, gauges, and histograms.
// Instruments are created on first use and live forever; Snapshot
// renders them in deterministic (sorted-name) order.
//
// Lookups are lock-free after an instrument's first creation: the
// registry keeps an immutable copy-on-write view that readers load
// with a single atomic, so per-task instrument lookups on wide pools
// never serialize on the registry mutex. The mutex guards only
// creation (rare), Reset, and Snapshot.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// gaugeFns are callback gauges evaluated at snapshot time — the
	// hook for live values that would be too hot (or too awkward) to
	// maintain as stored gauges, like the scheduler's queue depth. The
	// callback must not create instruments on this registry (Snapshot
	// holds the mutex while evaluating it).
	gaugeFns map[string]func() int64

	view atomic.Pointer[registryView]
}

// registryView is an immutable snapshot of the instrument maps.
// Rebuilt (fully copied) under Registry.mu whenever an instrument is
// created; readers must never mutate it.
type registryView struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// rebuildViewLocked publishes a fresh immutable view of the maps.
// Callers must hold r.mu.
func (r *Registry) rebuildViewLocked() {
	v := &registryView{
		counters: make(map[string]*Counter, len(r.counters)),
		gauges:   make(map[string]*Gauge, len(r.gauges)),
		hists:    make(map[string]*Histogram, len(r.hists)),
	}
	for k, c := range r.counters {
		v.counters[k] = c
	}
	for k, g := range r.gauges {
		v.gauges[k] = g
	}
	for k, h := range r.hists {
		v.hists[k] = h
	}
	r.view.Store(v)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		gaugeFns: make(map[string]func() int64),
	}
}

// Default is the process-wide registry that the sim harness, netsim,
// and the commands' -metrics flags share.
var Default = NewRegistry()

// Counter returns the counter with the given name, creating it on
// first use. Hits on an existing name are lock-free.
func (r *Registry) Counter(name string) *Counter {
	if v := r.view.Load(); v != nil {
		if c, ok := v.counters[name]; ok {
			return c
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.rebuildViewLocked()
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first
// use. Hits on an existing name are lock-free.
func (r *Registry) Gauge(name string) *Gauge {
	if v := r.view.Load(); v != nil {
		if g, ok := v.gauges[name]; ok {
			return g
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.rebuildViewLocked()
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on
// first use. Hits on an existing name are lock-free.
func (r *Registry) Histogram(name string) *Histogram {
	if v := r.view.Load(); v != nil {
		if h, ok := v.hists[name]; ok {
			return h
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
		r.rebuildViewLocked()
	}
	return h
}

// GaugeFunc registers a callback gauge: fn is evaluated on every
// Snapshot and its result appears among the gauges under name. A
// second registration under the same name replaces the first. fn must
// be safe for concurrent use and must not touch this registry (it
// runs under the registry mutex). Reset does not affect callback
// gauges — they have no stored state.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Reset zeroes every instrument (the names survive). Tests use it to
// isolate assertions against the Default registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		for i := range c.cells {
			c.cells[i].n.Store(0)
		}
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
	}
}

// NamedValue is one counter or gauge in a snapshot.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnapshot is one nonempty histogram bucket: Count observations
// in [Lo, Hi).
type BucketSnapshot struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Name    string           `json:"name"`
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper estimate of the q-quantile (q in (0,1]):
// the upper edge of the log₂ bucket holding the ⌈q·Count⌉-th smallest
// observation, capped at the observed maximum. With ≤2× bucket
// resolution the estimate is within a factor of two of the true
// order statistic, which is what latency percentiles need. Returns 0
// for an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	rank := int64(q*float64(h.Count) + 0.9999999)
	if rank > h.Count {
		rank = h.Count
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			hi := b.Hi - 1
			if b.Lo == 0 && b.Hi == 1 {
				hi = 0 // bucket 0 holds values ≤ 0
			}
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// Snapshot is a frozen, deterministically ordered view of a registry.
type Snapshot struct {
	Counters   []NamedValue        `json:"counters"`
	Gauges     []NamedValue        `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. Instruments are sorted by name so the
// text and JSON renderings are deterministic.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{name, c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{name, g.Value()})
	}
	for name, fn := range r.gaugeFns {
		s.Gauges = append(s.Gauges, NamedValue{name, fn()})
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Name: name, Count: h.Count(), Sum: h.Sum(), Max: h.max.Load()}
		for i := 0; i < histBuckets; i++ {
			c := h.counts[i].Load()
			if c == 0 {
				continue
			}
			lo, hi := int64(0), int64(1)
			if i > 0 {
				lo = int64(1) << (i - 1)
				if i < 63 {
					hi = int64(1) << i
				} else {
					hi = int64(^uint64(0) >> 1) // 2^63-1 caps the top bucket
				}
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{Lo: lo, Hi: hi, Count: c})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// CounterValue returns the named counter's value in the snapshot, or
// 0 if absent (counters are created on first use, so "absent" and
// "never incremented" are the same observation).
func (s Snapshot) CounterValue(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// GaugeValue returns the named gauge's value in the snapshot, or 0 if
// absent.
func (s Snapshot) GaugeValue(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// WriteText renders the snapshot as aligned human-readable lines.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter   %-40s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge     %-40s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "histogram %-40s count=%d sum=%d mean=%.1f p50≤%d p90≤%d p99≤%d max=%d\n",
			h.Name, h.Count, h.Sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "          %-40s [%d,%d): %d\n", "", b.Lo, b.Hi, b.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as one indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// PublishExpvar publishes the registry's live snapshot under the given
// expvar name, making it visible at /debug/vars next to the pprof
// endpoints. A name that is already published is left untouched
// (expvar.Publish would panic on the duplicate), so calling it twice
// is harmless.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

package obs

import (
	"runtime"
	"sync"
	"testing"
)

// TestCounterShards checks the sharded write paths fold into one total
// and that Reset clears every shard, not just cell 0.
func TestCounterShards(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sharded")
	for shard := 0; shard < 3*counterShards; shard++ {
		c.IncShard(shard)
		c.AddShard(shard, 2)
	}
	c.Add(5)
	c.Inc()
	want := int64(3*counterShards*3 + 6)
	if got := c.Value(); got != want {
		t.Fatalf("Value = %d, want %d", got, want)
	}
	r.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset, Value = %d, want 0", got)
	}
	c.AddShard(-1, 1) // negative shard hints must reduce safely, not panic
	if got := c.Value(); got != 1 {
		t.Fatalf("after AddShard(-1), Value = %d, want 1", got)
	}
}

// TestCounterShardedConcurrent hammers one counter from many
// goroutines on distinct shards and checks nothing is lost (run under
// -race to check the cells really are independent).
func TestCounterShardedConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc")
	const (
		workers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.IncShard(id)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perW {
		t.Fatalf("Value = %d, want %d", got, workers*perW)
	}
}

// TestRegistryLookupLockFree checks the copy-on-write view returns the
// same instrument as the locked path, including across later
// creations that rebuild the view.
func TestRegistryLookupLockFree(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	g1 := r.Gauge("b")
	h1 := r.Histogram("c")
	r.Counter("later") // forces a view rebuild
	if r.Counter("a") != c1 || r.Gauge("b") != g1 || r.Histogram("c") != h1 {
		t.Fatal("view rebuild changed instrument identity")
	}
}

// BenchmarkCountersParallel guards the metrics-registry contention
// fix: every iteration does a registry lookup plus a sharded
// increment, the exact per-task pattern the scheduler's hot loop
// performs on every worker at once. Before the copy-on-write view and
// sharded cells this serialized all workers on the registry mutex and
// then on one cache line.
func BenchmarkCountersParallel(b *testing.B) {
	r := NewRegistry()
	r.Counter("bench_tasks_total") // pre-create, as the scheduler does
	var ids sync.Map
	next := 0
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		id := next
		next++
		mu.Unlock()
		ids.Store(id, true)
		c := r.Counter("bench_tasks_total")
		for pb.Next() {
			r.Counter("bench_tasks_total") // lookup on the hot path
			c.IncShard(id)
		}
	})
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
}

// BenchmarkCounterAddSingle is the uncontended baseline for the plain
// Add path, pinning that sharding did not slow the common case.
func BenchmarkCounterAddSingle(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("single")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != int64(b.N) {
		b.Fatal("lost updates")
	}
}

package netsim

import (
	"math"
	"testing"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/rng"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	g := graph.Complete(3)
	if _, err := Run(Config{Graph: g, Initial: []int{1}}); err == nil {
		t.Error("short initial accepted")
	}
	if _, err := Run(Config{Graph: g, Initial: []int{1, 2, 3}, Latency: -1}); err == nil {
		t.Error("negative latency accepted")
	}
	iso := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := Run(Config{Graph: iso, Initial: []int{1, 2, 3}}); err == nil {
		t.Error("isolated node accepted")
	}
}

func TestZeroLatencyReachesConsensus(t *testing.T) {
	g := graph.Complete(25)
	r := rng.New(1)
	res, err := Run(Config{
		Graph:           g,
		Initial:         core.UniformOpinions(25, 5, r),
		Seed:            2,
		StopOnConsensus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatalf("no consensus by time %v (firings %d)", res.Time, res.Firings)
	}
	if res.Winner < 1 || res.Winner > 5 {
		t.Errorf("winner %d outside range", res.Winner)
	}
	if res.Firings == 0 || res.Messages < 2*res.Firings {
		t.Errorf("firings=%d messages=%d inconsistent", res.Firings, res.Messages)
	}
}

func TestLatencyReachesConsensus(t *testing.T) {
	g := graph.Complete(20)
	r := rng.New(3)
	res, err := Run(Config{
		Graph:           g,
		Initial:         core.UniformOpinions(20, 4, r),
		Latency:         0.5,
		Seed:            4,
		StopOnConsensus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatalf("no consensus under latency by time %v", res.Time)
	}
}

func TestImmediateConsensus(t *testing.T) {
	g := graph.Complete(5)
	res, err := Run(Config{
		Graph:           g,
		Initial:         []int{3, 3, 3, 3, 3},
		Seed:            5,
		StopOnConsensus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus || res.Winner != 3 {
		t.Errorf("result %+v", res)
	}
}

func TestMaxTimeRespected(t *testing.T) {
	g := graph.Cycle(50)
	r := rng.New(6)
	res, err := Run(Config{
		Graph:   g,
		Initial: core.UniformOpinions(50, 9, r),
		MaxTime: 3,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time > 3 {
		t.Errorf("time %v exceeds MaxTime", res.Time)
	}
	// Each of 50 nodes fires ≈ 3 times in 3 time units.
	if res.Firings < 50 || res.Firings > 500 {
		t.Errorf("firings = %d, want ≈ 150", res.Firings)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	g := graph.Complete(15)
	r := rng.New(8)
	init := core.UniformOpinions(15, 4, r)
	cfg := Config{Graph: g, Initial: init, Latency: 0.2, Seed: 9, StopOnConsensus: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Winner != b.Winner || a.Firings != b.Firings || a.Time != b.Time {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestZeroLatencyMatchesVertexProcessPrediction checks Theorem 2
// through the message-passing implementation: on K_n the winner must be
// ⌊c⌋ or ⌈c⌉ in almost every run.
func TestZeroLatencyMatchesVertexProcessPrediction(t *testing.T) {
	const n, trials = 60, 60
	g := graph.Complete(n)
	r := rng.New(10)
	// c = (20·2 + 20·5 + 20·8)/60 = 5 exactly.
	init, err := core.BlockOpinions(n, []int{0, 20, 0, 0, 20, 0, 0, 20}, r)
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	for trial := 0; trial < trials; trial++ {
		res, err := Run(Config{
			Graph:           g,
			Initial:         init,
			Seed:            rng.DeriveSeed(11, uint64(trial)),
			StopOnConsensus: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus {
			t.Fatalf("trial %d no consensus", trial)
		}
		if res.Winner == 4 || res.Winner == 5 || res.Winner == 6 {
			good++
		}
	}
	// c = 5: winner should be 5 (or its floor/ceil neighbours under the
	// martingale's O(√t)/n fluctuation). Allow a small failure rate.
	if good < trials-6 {
		t.Errorf("only %d/%d runs landed near the average 5", good, trials)
	}
}

func TestFiringRateIsPoisson(t *testing.T) {
	// Over time T with n nodes at rate 1, firings ≈ n·T.
	g := graph.Cycle(30)
	r := rng.New(12)
	res, err := Run(Config{
		Graph:   g,
		Initial: core.UniformOpinions(30, 3, r),
		MaxTime: 50,
		Seed:    13,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 30.0 * 50
	z := (float64(res.Firings) - want) / math.Sqrt(want)
	if math.Abs(z) > 5 {
		t.Errorf("firings = %d, want ≈ %.0f (z=%.1f)", res.Firings, want, z)
	}
}

func TestLossValidation(t *testing.T) {
	g := graph.Complete(3)
	if _, err := Run(Config{Graph: g, Initial: []int{1, 2, 3}, Loss: 1}); err == nil {
		t.Error("Loss = 1 accepted")
	}
	if _, err := Run(Config{Graph: g, Initial: []int{1, 2, 3}, Loss: -0.1}); err == nil {
		t.Error("negative Loss accepted")
	}
}

func TestLossyNetworkStillConverges(t *testing.T) {
	g := graph.Complete(25)
	r := rng.New(20)
	res, err := Run(Config{
		Graph:           g,
		Initial:         core.UniformOpinions(25, 4, r),
		Loss:            0.4,
		Seed:            21,
		StopOnConsensus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatalf("no consensus under 40%% loss by time %v", res.Time)
	}
	if res.Dropped == 0 {
		t.Error("no messages dropped at Loss = 0.4")
	}
	if res.Dropped >= res.Messages {
		t.Errorf("dropped %d of %d messages", res.Dropped, res.Messages)
	}
}

func TestLossRateMatchesConfig(t *testing.T) {
	g := graph.Cycle(40)
	r := rng.New(22)
	const loss = 0.25
	res, err := Run(Config{
		Graph:   g,
		Initial: core.UniformOpinions(40, 8, r),
		Loss:    loss,
		MaxTime: 200,
		Seed:    23,
	})
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(res.Dropped) / float64(res.Messages)
	// Requests are dropped at rate loss; responses only exist for
	// surviving requests, so the overall rate is loss/(stuff) —
	// bracket it generously.
	if rate < loss/2 || rate > loss*1.5 {
		t.Errorf("drop rate %.3f vs configured %.2f", rate, loss)
	}
	if res.Dropped == 0 {
		t.Error("nothing dropped")
	}
}

func TestZeroLossDropsNothing(t *testing.T) {
	g := graph.Complete(10)
	r := rng.New(24)
	res, err := Run(Config{
		Graph:           g,
		Initial:         core.UniformOpinions(10, 3, r),
		Seed:            25,
		StopOnConsensus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Errorf("dropped %d at Loss = 0", res.Dropped)
	}
}

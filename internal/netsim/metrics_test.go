package netsim

import (
	"testing"

	"div/internal/core"
	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
)

// swapMetrics points the package at a fresh registry for one test.
func swapMetrics(t *testing.T) *obs.Registry {
	t.Helper()
	old := Metrics
	reg := obs.NewRegistry()
	Metrics = reg
	t.Cleanup(func() { Metrics = old })
	return reg
}

func TestResultMessageAccounting(t *testing.T) {
	reg := swapMetrics(t)
	g := graph.Complete(30)
	res, err := Run(Config{
		Graph:           g,
		Initial:         core.UniformOpinions(30, 4, rng.New(7)),
		Latency:         0.5,
		Seed:            8,
		StopOnConsensus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests+res.Responses != res.Messages {
		t.Fatalf("Requests %d + Responses %d != Messages %d", res.Requests, res.Responses, res.Messages)
	}
	if res.Requests < res.Responses {
		t.Fatalf("more responses (%d) than requests (%d)", res.Responses, res.Requests)
	}
	if res.QueueHighWater < g.N() {
		// n armed clocks alone occupy the queue at t=0.
		t.Fatalf("QueueHighWater = %d, below the %d armed clocks", res.QueueHighWater, g.N())
	}
	if res.MeanStaleness <= 0 {
		t.Fatalf("MeanStaleness = %v with latency 0.5", res.MeanStaleness)
	}
	if got := reg.Gauge("netsim_queue_highwater").Value(); got != int64(res.QueueHighWater) {
		t.Fatalf("gauge highwater %d != result %d", got, res.QueueHighWater)
	}
	if got := reg.Counter("netsim_requests_total").Value(); got != res.Requests {
		t.Fatalf("requests counter %d != result %d", got, res.Requests)
	}
	if got := reg.Counter("netsim_responses_total").Value(); got != res.Responses {
		t.Fatalf("responses counter %d != result %d", got, res.Responses)
	}
	if got := reg.Counter("netsim_firings_total").Value(); got != res.Firings {
		t.Fatalf("firings counter %d != result %d", got, res.Firings)
	}
	st := reg.Histogram("netsim_staleness_micro")
	if st.Count() == 0 {
		t.Fatal("staleness histogram empty with latency 0.5")
	}
	// Mean agreement between Result (in firing periods) and the
	// histogram (in millionths of a period), up to integer truncation.
	if mean := float64(st.Sum()) / float64(st.Count()) / 1e6; mean < res.MeanStaleness*0.99-1e-6 || mean > res.MeanStaleness*1.01+1e-6 {
		t.Fatalf("histogram mean staleness %v vs result %v", mean, res.MeanStaleness)
	}
}

func TestZeroLatencyHasZeroStaleness(t *testing.T) {
	swapMetrics(t)
	g := graph.Complete(20)
	res, err := Run(Config{
		Graph:           g,
		Initial:         core.UniformOpinions(20, 3, rng.New(3)),
		Seed:            4,
		StopOnConsensus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanStaleness != 0 {
		t.Fatalf("MeanStaleness = %v with zero latency", res.MeanStaleness)
	}
}

func TestQueueHighWaterAcrossRuns(t *testing.T) {
	reg := swapMetrics(t)
	// The gauge keeps the max across runs (SetMax): a big run followed
	// by a small one must not lower it.
	for _, n := range []int{60, 10} {
		g := graph.Complete(n)
		if _, err := Run(Config{
			Graph:           g,
			Initial:         core.UniformOpinions(n, 3, rng.New(uint64(n))),
			Latency:         1,
			Seed:            uint64(n),
			StopOnConsensus: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Gauge("netsim_queue_highwater").Value(); got < 60 {
		t.Fatalf("cross-run high-water gauge = %d, want ≥ 60", got)
	}
}

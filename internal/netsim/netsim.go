// Package netsim deploys the voting dynamics as an actual distributed
// message-passing protocol over a simulated asynchronous network, the
// way a practitioner would run DIV on real nodes.
//
// Model: every node carries an independent rate-1 Poisson clock
// (discrete-event simulation over a priority queue of timestamped
// events). When a node fires it sends a PULL request to a uniformly
// random neighbour; the neighbour replies with its current opinion; on
// receiving the response the requester applies the DIV update
// X_v += sign(X_w - X_v). Requests and responses each take an
// independent exponential network latency with mean Latency.
//
// With Latency = 0 the sequence of (firing node, observed neighbour)
// pairs is exactly the paper's asynchronous vertex process — Poisson
// thinning makes the k-th firing node uniform — so the package doubles
// as an independent implementation of the vertex process and the E14
// experiment checks the two agree. With Latency > 0 the observed
// opinion is *stale*, an effect outside the paper's model; DIV's
// one-step updates make it remarkably robust to this, which E14
// quantifies.
package netsim

import (
	"fmt"
	"time"

	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
)

// Metrics is the registry runs aggregate into (obs.Default unless a
// test swaps it): the event-queue high-water mark across runs
// (netsim_queue_highwater), message counters by kind
// (netsim_firings_total, netsim_requests_total,
// netsim_responses_total, netsim_dropped_total), the staleness
// histogram netsim_staleness_micro — the request-to-apply latency of
// each completed pull, in millionths of a firing period (the delay
// that makes an observed opinion stale relative to the paper's
// instantaneous model) — and netsim_run_nanos, the wall-clock
// duration of each run's event loop.
var Metrics = obs.Default

// eventKind discriminates queue entries.
type eventKind uint8

const (
	evFire eventKind = iota // node's local clock fires: issue a pull request
	evReq                   // request arrives at the target
	evResp                  // response arrives back at the requester
)

// event is one timestamped occurrence in the simulated network.
type event struct {
	at      float64
	seq     uint64 // tie-break for determinism
	kind    eventKind
	node    int     // the node the event happens at
	peer    int     // the counterparty (requester for evReq, responder for evResp)
	opinion int     // carried opinion (evResp)
	t0      float64 // when the originating pull fired (staleness accounting)
}

// eventQueue is a direct 4-ary min-heap on (at, seq), replacing the
// earlier container/heap binary heap: the wider fan-out halves the
// tree depth (fewer comparison levels per pop, and pops dominate — a
// simulated message is pushed once but sifted down log₄ levels on
// extraction) and the monomorphic methods avoid the interface
// boxing/indirection of heap.Push/heap.Pop. The key (at, seq) is a
// total order — seq is unique — so the extraction sequence, and hence
// every simulated trajectory, is identical to the binary heap's.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	h := append(*q, e)
	*q = h
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h.less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // keep stale payloads out of the reusable buffer
	h = h[:n]
	*q = h
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h.less(j, m) {
				m = j
			}
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// Config describes one distributed run.
type Config struct {
	// Graph is the (connected) network topology. Required.
	Graph *graph.Graph
	// Initial is the initial opinion per node. Required.
	Initial []int
	// Latency is the mean one-way message latency in units of the mean
	// inter-firing time of a single node (each node fires at rate 1).
	// 0 means messages are instantaneous and the run reproduces the
	// paper's vertex process exactly.
	Latency float64
	// Loss is the probability each message (request or response) is
	// dropped in transit. A dropped exchange is simply a skipped pull:
	// DIV needs no retransmission logic because a lost observation is
	// indistinguishable from the vertex not having fired.
	Loss float64
	// Seed seeds the run's private PCG stream.
	Seed uint64
	// MaxTime caps simulated time. 0 means 400·n, i.e. ≈ 400·n² firings
	// network-wide, matching core.Run's default step cap.
	MaxTime float64
	// StopOnConsensus halts once consensus is *stable*: all node states
	// agree and every in-flight response carries the consensus value
	// (pending requests are then harmless — their responses will carry
	// the consensus opinion too).
	StopOnConsensus bool
	// Scratch, when non-nil, lends reusable buffers (the event queue
	// and the opinion array) to the run, so repeated trials perform
	// O(1) slice allocations instead of re-growing the queue to its
	// high-water mark every time. Reuse never changes results. Not safe
	// for concurrent runs; own one per worker.
	Scratch *Scratch
}

// Scratch is a per-worker arena of reusable netsim run memory.
type Scratch struct {
	q        eventQueue
	opinions []int
}

// Result summarizes a distributed run.
type Result struct {
	// Winner is the consensus opinion; Consensus reports whether all
	// nodes agreed at halt time.
	Winner    int
	Consensus bool
	// Time is the simulated time at halt.
	Time float64
	// Firings counts local clock firings (comparable to the sequential
	// process's step count).
	Firings int64
	// Messages counts all network messages sent (requests + responses).
	Messages int64
	// Requests and Responses split Messages by kind.
	Requests, Responses int64
	// Dropped counts messages lost in transit.
	Dropped int64
	// QueueHighWater is the maximum length the event queue reached —
	// the simulator's memory bound and, physically, the peak number of
	// in-flight messages plus armed clocks.
	QueueHighWater int
	// MeanStaleness is the mean request-to-apply latency of completed
	// pulls, in firing periods (0 when no pull completed; exactly 0
	// with zero configured latency).
	MeanStaleness float64
	// FinalMin/FinalMax bound the surviving node opinions.
	FinalMin, FinalMax int
	// InitialAverage and InitialWeightedAverage mirror core.Result.
	InitialAverage         float64
	InitialWeightedAverage float64
}

// sim is the live run state.
type sim struct {
	cfg       Config
	g         *graph.Graph
	opinions  []int
	counts    map[int]int // opinion -> node count
	respBy    map[int]int // opinion -> in-flight responses carrying it
	respAll   int         // total in-flight responses
	q         eventQueue
	seq       uint64
	highWater int

	staleSum float64 // Σ request-to-apply latencies
	staleN   int64
}

// Run executes the distributed protocol to stable consensus or MaxTime.
func Run(cfg Config) (Result, error) {
	if cfg.Graph == nil {
		return Result{}, fmt.Errorf("netsim: Config.Graph is required")
	}
	g := cfg.Graph
	n := g.N()
	if len(cfg.Initial) != n {
		return Result{}, fmt.Errorf("netsim: %d initial opinions for %d nodes", len(cfg.Initial), n)
	}
	if g.MinDegree() == 0 {
		return Result{}, fmt.Errorf("netsim: every node needs a neighbour")
	}
	if cfg.Latency < 0 {
		return Result{}, fmt.Errorf("netsim: negative latency %v", cfg.Latency)
	}
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return Result{}, fmt.Errorf("netsim: loss probability %v outside [0,1)", cfg.Loss)
	}
	maxTime := cfg.MaxTime
	if maxTime == 0 {
		maxTime = 400 * float64(n)
	}

	r := rng.New(cfg.Seed)
	s := &sim{
		cfg:    cfg,
		g:      g,
		counts: make(map[int]int),
		respBy: make(map[int]int),
	}
	if sc := cfg.Scratch; sc != nil {
		s.q = sc.q[:0]
		if cap(sc.opinions) >= n {
			s.opinions = sc.opinions[:n]
			copy(s.opinions, cfg.Initial)
		}
	}
	if s.opinions == nil {
		s.opinions = append([]int(nil), cfg.Initial...)
	}
	if sc := cfg.Scratch; sc != nil {
		// Hand the (possibly re-grown) buffers back for the next trial.
		defer func() {
			sc.q = s.q[:0]
			sc.opinions = s.opinions
		}()
	}
	var res Result
	var sum, degSum int64
	for v, x := range s.opinions {
		s.counts[x]++
		sum += int64(x)
		degSum += int64(g.Degree(v)) * int64(x)
	}
	res.InitialAverage = float64(sum) / float64(n)
	res.InitialWeightedAverage = float64(degSum) / float64(g.DegreeSum())

	for v := 0; v < n; v++ {
		s.push(rng.Exponential(r, 1), evFire, v, -1, 0, 0)
	}
	latency := func() float64 {
		if cfg.Latency == 0 {
			return 0
		}
		return rng.Exponential(r, 1/cfg.Latency)
	}

	fires := Metrics.Counter("netsim_firings_total")
	reqs := Metrics.Counter("netsim_requests_total")
	resps := Metrics.Counter("netsim_responses_total")
	drops := Metrics.Counter("netsim_dropped_total")
	stale := Metrics.Histogram("netsim_staleness_micro")

	loopStart := time.Now()
	now := 0.0
	for len(s.q) > 0 {
		ev := s.q.pop()
		if ev.at > maxTime {
			now = maxTime
			break
		}
		now = ev.at
		switch ev.kind {
		case evFire:
			res.Firings++
			fires.Inc()
			v := ev.node
			w := g.Neighbor(v, r.IntN(g.Degree(v)))
			res.Messages++
			res.Requests++
			reqs.Inc()
			if rng.Bernoulli(r, cfg.Loss) {
				res.Dropped++ // the pull silently fails
				drops.Inc()
			} else {
				s.push(now+latency(), evReq, w, v, 0, now)
			}
			s.push(now+rng.Exponential(r, 1), evFire, v, -1, 0, 0)
		case evReq:
			// ev.node responds to requester ev.peer with its opinion.
			res.Messages++
			res.Responses++
			resps.Inc()
			if rng.Bernoulli(r, cfg.Loss) {
				res.Dropped++
				drops.Inc()
				break
			}
			op := s.opinions[ev.node]
			s.respBy[op]++
			s.respAll++
			s.push(now+latency(), evResp, ev.peer, ev.node, op, ev.t0)
		case evResp:
			s.respBy[ev.opinion]--
			if s.respBy[ev.opinion] == 0 {
				delete(s.respBy, ev.opinion)
			}
			s.respAll--
			s.staleSum += now - ev.t0
			s.staleN++
			stale.Observe(int64((now - ev.t0) * 1e6))
			v := ev.node
			xv, xw := s.opinions[v], ev.opinion
			nw := xv
			switch {
			case xv < xw:
				nw = xv + 1
			case xv > xw:
				nw = xv - 1
			}
			if nw != xv {
				s.counts[xv]--
				if s.counts[xv] == 0 {
					delete(s.counts, xv)
				}
				s.counts[nw]++
				s.opinions[v] = nw
			}
		}
		if cfg.StopOnConsensus && s.stableConsensus() {
			break
		}
	}
	Metrics.Histogram("netsim_run_nanos").Observe(time.Since(loopStart).Nanoseconds())
	return s.finish(res, now), nil
}

// stableConsensus reports whether all nodes agree and no in-flight
// response can break the agreement.
func (s *sim) stableConsensus() bool {
	if len(s.counts) != 1 {
		return false
	}
	if s.respAll == 0 {
		return true
	}
	for op := range s.counts {
		return s.respBy[op] == s.respAll
	}
	return false
}

func (s *sim) push(at float64, kind eventKind, node, peer, opinion int, t0 float64) {
	s.seq++
	s.q.push(event{at: at, seq: s.seq, kind: kind, node: node, peer: peer, opinion: opinion, t0: t0})
	if len(s.q) > s.highWater {
		s.highWater = len(s.q)
	}
}

func (s *sim) finish(res Result, now float64) Result {
	res.Time = now
	res.QueueHighWater = s.highWater
	if s.staleN > 0 {
		res.MeanStaleness = s.staleSum / float64(s.staleN)
	}
	Metrics.Gauge("netsim_queue_highwater").SetMax(int64(s.highWater))
	min, max := s.opinions[0], s.opinions[0]
	for _, x := range s.opinions {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	res.FinalMin, res.FinalMax = min, max
	res.Consensus = min == max
	if res.Consensus {
		res.Winner = min
	}
	return res
}

package rng

import "math/bits"

// Counter is an unbuffered Philox2x64-10 generator. It produces the
// exact word sequence a Stream with the same (base, stream) seed would
// produce — buffer word 2i is the first output of Philox2x64(key,
// stream, i), word 2i+1 the second — but holds only one spare word of
// state instead of a 512-byte refill buffer.
//
// It exists for consumers whose per-stream draw count is tiny: the
// parallel graph builders key one stream per vertex row, and a G(n,p)
// row at mean degree d consumes ~d words. Refilling a 64-word Stream
// buffer for that would do ~8× the Philox work and wash the buffer out
// of cache between rows; the Counter evaluates one block (two words)
// at a time, on demand. The zero value is not ready; call Seed.
// A Counter is a value type — embed or stack-allocate it, no heap
// state — and is not safe for concurrent use.
type Counter struct {
	key   uint64 // Philox key: DeriveSeed(base, stream)
	ctrHi uint64 // counter high word: the stream index
	ctrLo uint64 // counter low word of the NEXT block to evaluate
	spare uint64 // second word of the last block, if unconsumed
	odd   bool   // spare holds a pending word
}

// Seed (re)initializes the counter in place so that its output matches
// Stream.Seed(base, stream) word for word: key DeriveSeed(base,
// stream), 128-bit counter starting at (stream, 0).
func (c *Counter) Seed(base, stream uint64) {
	c.key = DeriveSeed(base, stream)
	c.ctrHi = stream
	c.ctrLo = 0
	c.odd = false
}

// Uint64 returns the next 64-bit output.
func (c *Counter) Uint64() uint64 {
	if c.odd {
		c.odd = false
		return c.spare
	}
	x0, x1 := Philox2x64(c.key, c.ctrHi, c.ctrLo)
	c.ctrLo++
	c.spare = x1
	c.odd = true
	return x0
}

// Uint64n returns a uniform value in [0, n) by the same Lemire
// multiply-shift debiasing Stream.Uint64n uses, consuming the same
// words. n must be nonzero.
func (c *Counter) Uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(c.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(c.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits, the
// same construction Stream.Float64 and rand/v2 use.
func (c *Counter) Float64() float64 {
	return float64(c.Uint64()<<11>>11) / (1 << 53)
}

package rng

import "math/bits"

// This file implements the counter-based RNG stream behind the blocked
// trial kernel (internal/core/block.go). A Stream is a Philox2x64-10
// generator: the i-th 128-bit output block is a pure function
// philox(key, counter=i), so the whole stream is determined by its key
// and a trial's key is DeriveSeed(pointSeed, trialIndex). Unlike the
// stateful PCG used by the sequential engines, a trial's stream
// therefore depends only on its own indices — never on which worker ran
// it, which block it was batched into, or how many draws its neighbours
// consumed — which is what makes suite reports byte-identical across
// block sizes and across the work-stealing pool.
//
// Philox (Salmon, Moraes, Dreitlein, Shaw: "Parallel Random Numbers: As
// Easy as 1, 2, 3", SC'11) passes BigCrush; the 2x64 variant does 10
// rounds of a multiply-hi/lo mix with a Weyl key schedule. Outputs are
// produced 64 words at a time into a buffer, so the hot-path cost of
// Uint64 is a load, an increment, and a bounds check; the block
// generation loop has independent iterations the hardware can overlap.
//
// Bounded draws use Lemire's multiply-shift method ("Fast Random
// Integer Generation in an Interval", ACM TOMACS 2019): hi of x·n is an
// unbiased sample of [0,n) whenever lo ≥ (2^64 - n) mod n, and the
// rare rejection loop is outlined so the fast path stays inlinable.
// This is the same debiasing the stdlib rand/v2 uses (minus its
// power-of-two special case), here applied directly to the buffered
// stream with no interface indirection.

const (
	// streamBufWords is the number of 64-bit outputs generated per
	// refill: 64 words = 32 Philox blocks = 512 bytes, small enough to
	// live in L1 next to the opinion rows it feeds.
	streamBufWords = 64

	philoxRounds = 10
	philoxM      = 0xD2B74407B1CE6E93 // PHILOX_M2x64
	philoxW      = 0x9E3779B97F4A7C15 // Weyl key increment (golden ratio)
)

// Philox2x64 returns the two 64-bit outputs of the Philox2x64-10 block
// cipher for the given key and 128-bit counter (hi, lo). It is the
// reference point for Stream: buffer word 2i of a stream with key k and
// counter-high h is Philox2x64(k, h, i)'s first output, word 2i+1 the
// second.
func Philox2x64(key, ctrHi, ctrLo uint64) (uint64, uint64) {
	x0, x1 := ctrLo, ctrHi
	k := key
	for r := 0; r < philoxRounds; r++ {
		hi, lo := bits.Mul64(philoxM, x0)
		x0 = hi ^ k ^ x1
		x1 = lo
		k += philoxW
	}
	return x0, x1
}

// Stream is a buffered counter-based generator for one trial. The zero
// value is not ready; call Seed (or NewStream). A Stream must not be
// copied after first use and is not safe for concurrent use. It
// implements math/rand/v2.Source, so rand.New(&stream) adapts it to the
// full *rand.Rand API for code that wants one (the blocked kernel's
// generic-rule path and its sequential hand-off do exactly that) —
// every draw still comes out of the same per-trial buffer.
type Stream struct {
	buf     [streamBufWords]uint64
	pos     int
	key     uint64 // Philox key: DeriveSeed(base, trial)
	ctrHi   uint64 // counter high word: the trial index, extra separation
	ctrLo   uint64 // counter low word of the NEXT block to generate
	refills int64  // buffer refills since the last TakeRefills
}

// NewStream returns the stream for trial index trial under base seed
// base.
func NewStream(base uint64, trial uint64) *Stream {
	s := &Stream{}
	s.Seed(base, trial)
	return s
}

// Seed (re)initializes the stream in place to the exact state
// NewStream(base, trial) would produce, reusing the buffer storage.
// The key is DeriveSeed(base, trial) and the 128-bit counter starts at
// (trial, 0), so distinct trials use disjoint counter ranges even under
// (astronomically unlikely) key collisions.
func (s *Stream) Seed(base uint64, trial uint64) {
	s.key = DeriveSeed(base, trial)
	s.ctrHi = trial
	s.ctrLo = 0
	s.pos = streamBufWords // buffer empty: first draw refills
	s.refills = 0
}

// refill regenerates the output buffer from the current counter. The
// iterations are independent (the only loop-carried state is the
// counter increment), so an out-of-order core overlaps the 10-round
// multiply chains of neighbouring blocks.
func (s *Stream) refill() {
	k0, hi := s.key, s.ctrHi
	c := s.ctrLo
	for i := 0; i < streamBufWords; i += 2 {
		x0, x1 := c, hi
		k := k0
		for r := 0; r < philoxRounds; r++ {
			mhi, mlo := bits.Mul64(philoxM, x0)
			x0 = mhi ^ k ^ x1
			x1 = mlo
			k += philoxW
		}
		s.buf[i] = x0
		s.buf[i+1] = x1
		c++
	}
	s.ctrLo = c
	s.pos = 0
	s.refills++
}

// Uint64 returns the next 64-bit output. It implements rand/v2.Source.
func (s *Stream) Uint64() uint64 {
	if s.pos == streamBufWords {
		s.refill()
	}
	x := s.buf[s.pos]
	s.pos++
	return x
}

// Uint64n returns a uniform value in [0, n) by Lemire multiply-shift
// debiasing: accept hi(x·n) unless lo(x·n) falls below the bias
// threshold (probability n/2^64), in which case the outlined slow path
// redraws. n must be nonzero.
//
// The method itself exceeds the compiler's inlining budget (it embeds
// the refill check and the slow-path call). Hot loops that cannot
// afford a call per draw replicate the fast path manually —
//
//	x := s.Uint64()            // inlinable
//	hi, lo := bits.Mul64(x, n)
//	if lo < n {
//		hi = s.Uint64nSlow(hi, lo, n)
//	}
//	// hi is the bounded draw
//
// — which consumes exactly the same words and yields exactly the same
// values as Uint64n(n); the blocked kernel's complete-graph loops do
// this.
func (s *Stream) Uint64n(n uint64) uint64 {
	if s.pos == streamBufWords {
		s.refill()
	}
	x := s.buf[s.pos]
	s.pos++
	hi, lo := bits.Mul64(x, n)
	if lo < n {
		return s.Uint64nSlow(hi, lo, n)
	}
	return hi
}

// Uint64nSlow finishes a bounded draw whose first sample landed in the
// ambiguous band lo < n: compute the exact threshold (2^64 - n) mod n
// and redraw until the low word clears it. Outlined so the fast path —
// both Uint64n's and a caller's manual replica of it — stays within
// the inlining budget. Exported only for that manual-inline pattern;
// ordinary callers use Uint64n.
func (s *Stream) Uint64nSlow(hi, lo, n uint64) uint64 {
	thresh := -n % n
	for lo < thresh {
		hi, lo = bits.Mul64(s.Uint64(), n)
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits, the
// same construction rand/v2 uses.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()<<11>>11) / (1 << 53)
}

// TakeRefills returns the number of buffer refills since the last call
// (or Seed) and resets the count — the flush-at-block-granularity hook
// behind the rng_stream_refills_total counter.
func (s *Stream) TakeRefills() int64 {
	r := s.refills
	s.refills = 0
	return r
}

package rng

import (
	"fmt"
	"math/rand/v2"
)

// Alias is a Walker/Vose alias-method sampler over {0, …, n-1} with
// arbitrary non-negative weights. Construction is O(n); each Sample is
// O(1) with exactly one uniform draw for the column and one for the
// coin. It is the workhorse behind π-weighted vertex selection in the
// edge process (π_v = d(v)/2m) and behind skewed initial-opinion
// profiles.
//
// An Alias is immutable after construction and safe for concurrent use
// as long as each goroutine supplies its own *rand.Rand.
type Alias struct {
	prob  []float64 // acceptance probability of the home symbol per column
	alias []int32   // fallback symbol per column
}

// NewAlias builds an alias table for the given weights. It returns an
// error if weights is empty, contains a negative or non-finite entry,
// or sums to zero.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: NewAlias requires at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || w != w || w > 1e308 {
			return nil, fmt.Errorf("rng: NewAlias weight %d is invalid (%v)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: NewAlias weights sum to zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities: p_i * n.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]

		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are all (approximately) 1.
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small {
		a.prob[s] = 1
		a.alias[s] = s
	}
	return a, nil
}

// MustAlias is NewAlias that panics on error, for static tables.
func MustAlias(weights []float64) *Alias {
	a, err := NewAlias(weights)
	if err != nil {
		panic(err)
	}
	return a
}

// Sample draws one index with probability proportional to its weight.
func (a *Alias) Sample(r *rand.Rand) int {
	i := r.IntN(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Len returns the number of symbols in the table.
func (a *Alias) Len() int { return len(a.prob) }

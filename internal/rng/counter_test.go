package rng

import "testing"

// TestCounterMatchesStream pins the Counter to the buffered Stream: for
// the same (base, stream) seed they must produce identical word
// sequences, across refill boundaries and regardless of how the draws
// interleave with reseeds.
func TestCounterMatchesStream(t *testing.T) {
	for _, seed := range []struct{ base, stream uint64 }{
		{0, 0}, {1, 0}, {0, 1}, {12345, 678}, {^uint64(0), ^uint64(0)},
	} {
		s := NewStream(seed.base, seed.stream)
		var c Counter
		c.Seed(seed.base, seed.stream)
		for i := 0; i < 3*streamBufWords+5; i++ {
			if got, want := c.Uint64(), s.Uint64(); got != want {
				t.Fatalf("seed (%d,%d) word %d: Counter %#x, Stream %#x", seed.base, seed.stream, i, got, want)
			}
		}
	}
}

// TestCounterMatchesPhiloxReference pins the word layout directly to
// the exported reference function: word 2i is the first output of
// Philox2x64(key, stream, i), word 2i+1 the second.
func TestCounterMatchesPhiloxReference(t *testing.T) {
	const base, stream = 99, 7
	var c Counter
	c.Seed(base, stream)
	key := DeriveSeed(base, stream)
	for blk := uint64(0); blk < 8; blk++ {
		x0, x1 := Philox2x64(key, stream, blk)
		if got := c.Uint64(); got != x0 {
			t.Fatalf("block %d word 0: got %#x want %#x", blk, got, x0)
		}
		if got := c.Uint64(); got != x1 {
			t.Fatalf("block %d word 1: got %#x want %#x", blk, got, x1)
		}
	}
}

// TestCounterUint64nMatchesStream checks that the bounded draw consumes
// the same words and produces the same values as Stream.Uint64n,
// including when the Lemire rejection path triggers.
func TestCounterUint64nMatchesStream(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 10, 1 << 32, (1 << 63) + 12345, ^uint64(0)} {
		s := NewStream(42, 9)
		var c Counter
		c.Seed(42, 9)
		for i := 0; i < 200; i++ {
			if got, want := c.Uint64n(n), s.Uint64n(n); got != want {
				t.Fatalf("n=%d draw %d: Counter %d, Stream %d", n, i, got, want)
			}
		}
	}
}

// TestCounterReseed verifies Seed fully resets state, including a
// pending spare word.
func TestCounterReseed(t *testing.T) {
	var a, b Counter
	a.Seed(5, 5)
	_ = a.Uint64() // leave a spare word pending
	a.Seed(5, 5)
	b.Seed(5, 5)
	for i := 0; i < 10; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d after reseed: %#x != %#x", i, x, y)
		}
	}
}

// TestCounterFloat64Range sanity-checks the unit-interval construction.
func TestCounterFloat64Range(t *testing.T) {
	var c Counter
	c.Seed(17, 3)
	for i := 0; i < 1000; i++ {
		f := c.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("draw %d: Float64 = %v out of [0,1)", i, f)
		}
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed sequence 0,1,2 from the SplitMix64
	// reference implementation (state advances by the golden gamma).
	tests := []struct {
		in   uint64
		want uint64
	}{
		{0, 0xe220a8397b1dcdaf},
		{1, 0x910a2dec89025cc1},
		{2, 0x975835de1c9756ce},
	}
	for _, tc := range tests {
		if got := SplitMix64(tc.in); got != tc.want {
			t.Errorf("SplitMix64(%d) = %#x, want %#x", tc.in, got, tc.want)
		}
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		if SplitMix64(seed) != SplitMix64(seed) {
			t.Fatalf("SplitMix64 not deterministic at %d", seed)
		}
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := make(map[uint64]string)
	for base := uint64(0); base < 50; base++ {
		for stream := uint64(0); stream < 50; stream++ {
			s := DeriveSeed(base, stream)
			key := string(rune(base)) + "/" + string(rune(stream))
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeed collision: %s and %s both map to %#x", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestNewDeterministicStreams(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestNewTrialIndependence(t *testing.T) {
	a, b := NewTrial(7, 0), NewTrial(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("trial streams coincide on %d of 1000 draws", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, 1, 2, 5, 100} {
		dst := make([]int, n)
		Perm(r, dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(n=%d) produced invalid permutation %v", n, dst)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformish(t *testing.T) {
	// Each position/value pair should appear with frequency ≈ 1/n.
	r := New(2)
	const n, trials = 4, 40000
	counts := [n][n]int{}
	dst := make([]int, n)
	for i := 0; i < trials; i++ {
		Perm(r, dst)
		for pos, val := range dst {
			counts[pos][val]++
		}
	}
	want := float64(trials) / n
	for pos := 0; pos < n; pos++ {
		for val := 0; val < n; val++ {
			z := (float64(counts[pos][val]) - want) / math.Sqrt(want*(1-1.0/n))
			if math.Abs(z) > 5 {
				t.Errorf("Perm position %d value %d count %d deviates (z=%.1f)", pos, val, counts[pos][val], z)
			}
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(3)
	xs := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), xs...)
	Shuffle(r, xs)
	// Multiset preserved.
	count := map[string]int{}
	for _, x := range xs {
		count[x]++
	}
	for _, x := range orig {
		count[x]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("Shuffle changed multiset: %s has residual %d", k, v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if Bernoulli(r, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(r, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if Bernoulli(r, -0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !Bernoulli(r, 1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliProportion(t *testing.T) {
	r := New(5)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if Bernoulli(r, p) {
			hits++
		}
	}
	z := (float64(hits) - p*trials) / math.Sqrt(trials*p*(1-p))
	if math.Abs(z) > 5 {
		t.Errorf("Bernoulli(%.1f): %d/%d hits (z=%.1f)", p, hits, trials, z)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(6)
	const rate, trials = 2.5, 200000
	var sum float64
	for i := 0; i < trials; i++ {
		x := Exponential(r, rate)
		if x < 0 {
			t.Fatalf("Exponential returned negative %v", x)
		}
		sum += x
	}
	mean := sum / trials
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exponential(rate=%v) mean = %v, want ≈ %v", rate, mean, 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(rate=0) did not panic")
		}
	}()
	Exponential(New(1), 0)
}

func TestDeriveSeedQuickNoTrivialCollisions(t *testing.T) {
	f := func(base, s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		return DeriveSeed(base, s1) != DeriveSeed(base, s2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package rng provides deterministic random-number utilities shared by
// every stochastic component of the repository: seed derivation for
// independent parallel trials, a thin wrapper over the stdlib PCG
// generator, and weighted discrete sampling via the alias method.
//
// Determinism contract: given the same base seed and trial index, every
// construction in this package yields an identical stream on every
// platform. All experiments in the repository derive their randomness
// exclusively through this package so that results are reproducible.
package rng

import (
	"math/rand/v2"
)

// SplitMix64 advances the SplitMix64 state x and returns the next
// 64-bit output. It is the standard seed-expansion function recommended
// for initializing other generators (Steele, Lea, Flood 2014).
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically combines a base seed with a stream index
// into a well-mixed 64-bit seed. Distinct (base, stream) pairs yield
// seeds that behave as independent; this is how parallel trials obtain
// non-overlapping randomness.
func DeriveSeed(base uint64, stream uint64) uint64 {
	// Two rounds of SplitMix64 over a mix of the inputs. The odd
	// multiplier decorrelates consecutive stream indices.
	h := SplitMix64(base ^ 0x9e3779b97f4a7c15)
	h = SplitMix64(h + stream*0xbf58476d1ce4e5b9)
	return h
}

// New returns a PCG-backed *rand.Rand seeded from seed. The second PCG
// word is derived from the first so a single 64-bit seed fully
// determines the stream.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, SplitMix64(seed)))
}

// NewTrial returns the generator for trial index trial under base seed
// base. Streams for distinct trials are decorrelated via DeriveSeed.
func NewTrial(base uint64, trial int) *rand.Rand {
	return New(DeriveSeed(base, uint64(trial)))
}

// Perm fills dst with a uniformly random permutation of 0..len(dst)-1
// using the Fisher–Yates shuffle.
func Perm(r *rand.Rand, dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Shuffle permutes xs uniformly at random in place.
func Shuffle[T any](r *rand.Rand, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Bernoulli reports true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exponential returns an Exp(rate) variate. It panics if rate <= 0.
func Exponential(r *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential requires rate > 0")
	}
	return r.ExpFloat64() / rate
}

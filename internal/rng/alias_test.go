package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAliasErrors(t *testing.T) {
	tests := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"negative", []float64{1, -0.5}},
		{"nan", []float64{1, math.NaN()}},
		{"inf", []float64{1, math.Inf(1)}},
		{"all zero", []float64{0, 0, 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewAlias(tc.weights); err == nil {
				t.Errorf("NewAlias(%v) succeeded, want error", tc.weights)
			}
		})
	}
}

func TestAliasSingleton(t *testing.T) {
	a := MustAlias([]float64{3.5})
	r := New(1)
	for i := 0; i < 100; i++ {
		if got := a.Sample(r); got != 0 {
			t.Fatalf("singleton alias sampled %d", got)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := MustAlias([]float64{1, 0, 2, 0})
	r := New(2)
	for i := 0; i < 20000; i++ {
		got := a.Sample(r)
		if got == 1 || got == 3 {
			t.Fatalf("zero-weight symbol %d sampled", got)
		}
	}
}

func TestAliasProportions(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := MustAlias(weights)
	r := New(3)
	const trials = 400000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	total := 10.0
	for i, w := range weights {
		p := w / total
		z := (float64(counts[i]) - p*trials) / math.Sqrt(trials*p*(1-p))
		if math.Abs(z) > 5 {
			t.Errorf("symbol %d: count %d, want ≈ %.0f (z=%.1f)", i, counts[i], p*trials, z)
		}
	}
}

func TestAliasSkewedProportions(t *testing.T) {
	// Extreme skew exercises the small/large worklist bookkeeping.
	weights := []float64{1e-6, 1, 1e-6, 1e-6}
	a := MustAlias(weights)
	r := New(4)
	const trials = 100000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	if counts[1] < trials-100 {
		t.Errorf("dominant symbol sampled only %d of %d", counts[1], trials)
	}
}

func TestAliasLen(t *testing.T) {
	if got := MustAlias([]float64{1, 2, 3}).Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
}

func TestAliasQuickValidSamples(t *testing.T) {
	// Property: for arbitrary positive weight vectors, samples are
	// always in range and strictly positive-weight symbols dominate.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		weights := make([]float64, len(raw))
		var total float64
		for i, w := range raw {
			weights[i] = float64(w)
			total += weights[i]
		}
		if total == 0 {
			return true // rejected by NewAlias; covered elsewhere
		}
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		r := New(99)
		for i := 0; i < 200; i++ {
			s := a.Sample(r)
			if s < 0 || s >= len(weights) {
				return false
			}
			if weights[s] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMustAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlias(nil) did not panic")
		}
	}()
	MustAlias(nil)
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float64, 10000)
	for i := range weights {
		weights[i] = float64(i%17) + 1
	}
	a := MustAlias(weights)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Sample(r)
	}
}

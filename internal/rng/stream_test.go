package rng

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
)

// refPhilox2x64 is an independent re-derivation of the Philox2x64-10
// block function, written against the published algorithm with big.Int
// arithmetic for the multiply, so a transcription error in the
// optimized bits.Mul64 version cannot hide.
func refPhilox2x64(key, ctrHi, ctrLo uint64) (uint64, uint64) {
	m := new(big.Int).SetUint64(0xD2B74407B1CE6E93)
	x0 := new(big.Int).SetUint64(ctrLo)
	x1 := new(big.Int).SetUint64(ctrHi)
	k := key
	for r := 0; r < 10; r++ {
		prod := new(big.Int).Mul(m, x0)
		lo := new(big.Int).And(prod, new(big.Int).SetUint64(math.MaxUint64))
		hi := new(big.Int).Rsh(prod, 64)
		nx0 := hi.Uint64() ^ k ^ x1.Uint64()
		x0 = new(big.Int).SetUint64(nx0)
		x1 = lo
		k += 0x9E3779B97F4A7C15
	}
	return x0.Uint64(), x1.Uint64()
}

func TestPhiloxMatchesReference(t *testing.T) {
	cases := []struct{ key, hi, lo uint64 }{
		{0, 0, 0},
		{1, 0, 0},
		{0, 0, 1},
		{0xdeadbeefcafef00d, 42, 7},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64},
		{DeriveSeed(0x5eed, 3), 3, 1000},
	}
	for _, c := range cases {
		a0, a1 := Philox2x64(c.key, c.hi, c.lo)
		b0, b1 := refPhilox2x64(c.key, c.hi, c.lo)
		if a0 != b0 || a1 != b1 {
			t.Errorf("Philox2x64(%#x,%#x,%#x) = (%#x,%#x), reference (%#x,%#x)",
				c.key, c.hi, c.lo, a0, a1, b0, b1)
		}
	}
}

// TestStreamBufferMatchesBlockFunction pins the Stream's buffered output
// to the pure block function: word 2i is the first output of counter
// block i, word 2i+1 the second, across refills.
func TestStreamBufferMatchesBlockFunction(t *testing.T) {
	const base, trial = 0x5eed, 11
	s := NewStream(base, trial)
	key := DeriveSeed(base, trial)
	for i := 0; i < 3*streamBufWords/2; i++ {
		w0, w1 := Philox2x64(key, trial, uint64(i))
		if got := s.Uint64(); got != w0 {
			t.Fatalf("word %d: got %#x, want %#x", 2*i, got, w0)
		}
		if got := s.Uint64(); got != w1 {
			t.Fatalf("word %d: got %#x, want %#x", 2*i+1, got, w1)
		}
	}
	if s.TakeRefills() != 3 {
		t.Errorf("expected 3 refills")
	}
	if s.TakeRefills() != 0 {
		t.Errorf("TakeRefills must reset the count")
	}
}

// TestStreamSeedResets checks Seed restores the exact NewStream state,
// the property the blocked kernel's row reuse depends on.
func TestStreamSeedResets(t *testing.T) {
	s := NewStream(1, 2)
	var first [10]uint64
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(9, 9) // dirty with another stream
	for i := 0; i < 777; i++ {
		s.Uint64()
	}
	s.Seed(1, 2)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("draw %d after reseed: got %#x, want %#x", i, got, first[i])
		}
	}
}

// TestStreamTrialIndependence: streams of different trials under the
// same base must not share outputs (disjoint counters and keys), and a
// trial's stream must not depend on any other stream's consumption.
func TestStreamTrialIndependence(t *testing.T) {
	seen := map[uint64]int{}
	for trial := uint64(0); trial < 64; trial++ {
		s := NewStream(0x5eed, trial)
		for i := 0; i < 32; i++ {
			x := s.Uint64()
			if prev, dup := seen[x]; dup {
				t.Fatalf("trial %d repeats output %#x of trial %d", trial, x, prev)
			}
			seen[x] = int(trial)
		}
	}
}

// TestStreamAsRandSource checks the rand/v2 adapter draws from the same
// buffer as the Stream's own methods.
func TestStreamAsRandSource(t *testing.T) {
	a := NewStream(3, 4)
	b := NewStream(3, 4)
	r := rand.New(a)
	for i := 0; i < 100; i++ {
		if got, want := r.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: rand adapter and Stream diverge: %#x vs %#x", i, got, want)
		}
	}
	if x := r.IntN(1000); x < 0 || x >= 1000 {
		t.Fatalf("r.IntN(1000) = %d out of range", x)
	}
	if a.pos == b.pos && a.ctrLo == b.ctrLo {
		t.Fatal("r.IntN consumed no words from the underlying stream")
	}
}

// TestUint64nRange: Lemire draws stay in [0, n) over awkward bounds.
func TestUint64nRange(t *testing.T) {
	s := NewStream(7, 0)
	for _, n := range []uint64{1, 2, 3, 5, 7, 63, 64, 65, 1000, 1 << 32, (1 << 63) + 12345, math.MaxUint64} {
		for i := 0; i < 200; i++ {
			if x := s.Uint64n(n); x >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, x)
			}
		}
	}
}

// TestUint64nUniformityChiSquare: a χ² goodness-of-fit test of the
// bounded draw over small moduli. 99.9th-percentile thresholds keep the
// fixed-seed test deterministic and non-flaky.
func TestUint64nUniformityChiSquare(t *testing.T) {
	cases := []struct {
		n      uint64
		draws  int
		thresh float64 // χ²_{n-1, 0.999}
	}{
		{3, 30000, 13.82},
		{7, 70000, 22.46},
		{10, 100000, 27.88},
		{17, 170000, 39.25},
	}
	for ci, c := range cases {
		s := NewStream(0xc41, uint64(ci))
		counts := make([]int64, c.n)
		for i := 0; i < c.draws; i++ {
			counts[s.Uint64n(c.n)]++
		}
		expected := float64(c.draws) / float64(c.n)
		var chi2 float64
		for _, cnt := range counts {
			d := float64(cnt) - expected
			chi2 += d * d / expected
		}
		if chi2 > c.thresh {
			t.Errorf("Uint64n(%d): χ² = %.2f over %d draws exceeds %.2f", c.n, chi2, c.draws, c.thresh)
		}
	}
}

// TestUint64nMatchesLemireReference replays the bounded draw against an
// independently coded multiply-shift rejection reference consuming the
// identical word sequence, including the exact rejection rule.
func TestUint64nMatchesLemireReference(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 6, 100, 1 << 20, (1 << 62) + 3} {
		a := NewStream(5, n)
		b := NewStream(5, n)
		for i := 0; i < 512; i++ {
			got := a.Uint64n(n)
			want := refBoundedDraw(b, n)
			if got != want {
				t.Fatalf("n=%d draw %d: got %d, want %d", n, i, got, want)
			}
			if a.pos != b.pos || a.ctrLo != b.ctrLo {
				t.Fatalf("n=%d draw %d: word consumption diverged", n, i)
			}
		}
	}
}

// refBoundedDraw is the reference Lemire debiasing written from the
// paper's definition: result = ⌊x·n/2^64⌋ for the first x whose low
// product word is ≥ (2^64 - n) mod n.
func refBoundedDraw(s *Stream, n uint64) uint64 {
	thresh := new(big.Int).Mod(
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 64), new(big.Int).SetUint64(n)),
		new(big.Int).SetUint64(n)).Uint64()
	for {
		x := s.Uint64()
		prod := new(big.Int).Mul(new(big.Int).SetUint64(x), new(big.Int).SetUint64(n))
		lo := new(big.Int).And(prod, new(big.Int).SetUint64(math.MaxUint64)).Uint64()
		if lo >= thresh {
			return new(big.Int).Rsh(prod, 64).Uint64()
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(1, 1)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func BenchmarkStreamUint64(b *testing.B) {
	s := NewStream(1, 0)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += s.Uint64()
	}
	_ = acc
}

func BenchmarkStreamUint64n(b *testing.B) {
	s := NewStream(1, 0)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += s.Uint64n(3199)
	}
	_ = acc
}

func BenchmarkPCGUint64n(b *testing.B) {
	r := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += r.Uint64N(3199)
	}
	_ = acc
}

package rng

import (
	"math/bits"
	"testing"
)

// FuzzStreamUint64n cross-checks the buffered Lemire bounded draw
// against the classical modulo-with-rejection reference on the same
// word stream: draw x, reject while x ≥ 2^64 - (2^64 mod n), return
// x mod n. Lemire's multiply-shift is that scheme composed with the
// measure-preserving map x ↦ ⌊x·n/2^64⌋ restricted to accepted words,
// so on any prefix both must consume the same number of words and both
// results must lie in range; additionally the Lemire output must equal
// hi(x·n) of the accepted word.
func FuzzStreamUint64n(f *testing.F) {
	f.Add(uint64(1), uint64(3))
	f.Add(uint64(0x5eed), uint64(1))
	f.Add(uint64(42), uint64(1)<<62)
	f.Add(uint64(7), ^uint64(0))
	f.Fuzz(func(t *testing.T, seed, n uint64) {
		if n == 0 {
			return
		}
		lem := NewStream(seed, 0)
		ref := NewStream(seed, 0)
		thresh := -n % n // (2^64 - n) mod n: identical accept set both ways
		for i := 0; i < 64; i++ {
			got := lem.Uint64n(n)
			if got >= n {
				t.Fatalf("n=%d: Uint64n out of range: %d", n, got)
			}
			// Reference: first word whose low product clears the threshold.
			var want uint64
			for {
				x := ref.Uint64()
				hi, lo := bits.Mul64(x, n)
				if lo >= thresh {
					want = hi
					break
				}
			}
			if got != want {
				t.Fatalf("n=%d draw %d: lemire %d, reference %d", n, i, got, want)
			}
			if lem.pos != ref.pos || lem.ctrLo != ref.ctrLo {
				t.Fatalf("n=%d draw %d: word consumption diverged (%d vs %d)", n, i, lem.pos, ref.pos)
			}
		}
	})
}

// FuzzAliasWeights hardens the alias-table builder: any finite
// non-negative weight vector with positive mass must build a sampler
// whose outputs are in range and never hit zero-weight symbols.
func FuzzAliasWeights(f *testing.F) {
	f.Add(uint64(1), []byte{1, 2, 3})
	f.Add(uint64(2), []byte{0, 0, 5})
	f.Add(uint64(3), []byte{255})
	f.Add(uint64(4), []byte{0})
	f.Add(uint64(5), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		if len(raw) > 1024 {
			raw = raw[:1024]
		}
		weights := make([]float64, len(raw))
		var total float64
		for i, b := range raw {
			weights[i] = float64(b)
			total += weights[i]
		}
		a, err := NewAlias(weights)
		if total <= 0 || len(weights) == 0 {
			if err == nil {
				t.Fatal("degenerate weights accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("valid weights rejected: %v", err)
		}
		r := New(seed)
		for i := 0; i < 64; i++ {
			s := a.Sample(r)
			if s < 0 || s >= len(weights) {
				t.Fatalf("sample %d out of range", s)
			}
			if weights[s] == 0 {
				t.Fatalf("zero-weight symbol %d sampled", s)
			}
		}
	})
}

package rng

import (
	"testing"
)

// FuzzAliasWeights hardens the alias-table builder: any finite
// non-negative weight vector with positive mass must build a sampler
// whose outputs are in range and never hit zero-weight symbols.
func FuzzAliasWeights(f *testing.F) {
	f.Add(uint64(1), []byte{1, 2, 3})
	f.Add(uint64(2), []byte{0, 0, 5})
	f.Add(uint64(3), []byte{255})
	f.Add(uint64(4), []byte{0})
	f.Add(uint64(5), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		if len(raw) > 1024 {
			raw = raw[:1024]
		}
		weights := make([]float64, len(raw))
		var total float64
		for i, b := range raw {
			weights[i] = float64(b)
			total += weights[i]
		}
		a, err := NewAlias(weights)
		if total <= 0 || len(weights) == 0 {
			if err == nil {
				t.Fatal("degenerate weights accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("valid weights rejected: %v", err)
		}
		r := New(seed)
		for i := 0; i < 64; i++ {
			s := a.Sample(r)
			if s < 0 || s >= len(weights) {
				t.Fatalf("sample %d out of range", s)
			}
			if weights[s] == 0 {
				t.Fatalf("zero-weight symbol %d sampled", s)
			}
		}
	})
}

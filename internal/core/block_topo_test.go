package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"div/internal/graph"
	"div/internal/stats"
)

// This file pins the topology/representation half of the blocked
// kernel's contract (block_topo.go):
//
//  1. Byte identity: the same (config, Seed, trial) yields bit-identical
//     Results across all four backend × representation combinations —
//     materialized CSR vs implicit topology, int32 vs compact byte
//     slab — because the generic kernels consume their streams exactly
//     as the tuned CSR loops do.
//  2. Law: the implicit path realizes the same process distribution as
//     the materialized one under independent seeds, held to the same
//     α = 0.001 χ²/KS standard as the engine-equivalence suite.

type topoCase struct {
	name string
	topo graph.Topology
	twin *graph.Graph
}

// blockTopoCases covers every implicit family with a CSR twin, chosen
// so both lane kernels and both complete-graph kernels run: complete(64)
// takes the magic-divide kernel, the rest take the lane loops.
func blockTopoCases(t testing.TB) []topoCase {
	t.Helper()
	mk := func(name string, topo graph.Topology, err error) topoCase {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return topoCase{name: name, topo: topo, twin: graph.MustMaterialize(topo)}
	}
	complete, errC := graph.NewImplicitComplete(64)
	cycle, errCy := graph.NewImplicitCycle(24)
	path, errP := graph.NewImplicitPath(17)
	torus, errT := graph.NewImplicitTorus(6, 8)
	cube, errH := graph.NewImplicitHypercube(4)
	circ, errR := graph.NewImplicitCirculant(48, []int{1, 2, 3})
	return []topoCase{
		mk("complete", complete, errC),
		mk("cycle", cycle, errCy),
		mk("path", path, errP),
		mk("torus", torus, errT),
		mk("hypercube", cube, errH),
		mk("circulant", circ, errR),
	}
}

// runTopoBlock runs trials of one point through RunBlock on an
// arbitrary topology (materialized or implicit) in either
// representation and returns the Results.
func runTopoBlock(t *testing.T, topo graph.Topology, compact bool, proc Process, engine Engine, k int, seed uint64, trials, block int) []Result {
	t.Helper()
	n := topo.N()
	counts := make([]int, k)
	for i := range counts {
		counts[i] = n / k
	}
	counts[k-1] += n - (n/k)*k
	out := make([]Result, trials)
	err := RunBlock(BlockConfig{
		Topology: topo,
		Compact:  compact,
		Process:  proc,
		Engine:   engine,
		Seed:     seed,
		Init: func(trial int, dst []int, r *rand.Rand) error {
			_, err := BlockOpinionsInto(dst, counts, r)
			return err
		},
		MaxSteps: 4 << 20,
		Block:    block,
	}, 0, trials, out)
	if err != nil {
		t.Fatalf("RunBlock(%s, compact=%v, %v, %v): %v", topo.Name(), compact, proc, engine, err)
	}
	return out
}

// TestBlockTopoByteIdentity is the acceptance pin for the tentpole:
// for every implicit family with a CSR twin and both processes, the
// four backend × representation combinations produce trial-for-trial
// bit-identical Results under EngineNaive, at unequal block sizes.
func TestBlockTopoByteIdentity(t *testing.T) {
	const trials = 10
	const k = 5
	for _, tc := range blockTopoCases(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			t.Run(fmt.Sprintf("%s/%v", tc.name, proc), func(t *testing.T) {
				seed := uint64(0x70b0) + uint64(tc.topo.N())
				base := runTopoBlock(t, tc.twin, false, proc, EngineNaive, k, seed, trials, 4)
				arms := []struct {
					label   string
					topo    graph.Topology
					compact bool
					block   int
				}{
					{"csr/compact", tc.twin, true, 4},
					{"implicit/int32", tc.topo, false, 3},
					{"implicit/compact", tc.topo, true, 1},
				}
				for _, arm := range arms {
					got := runTopoBlock(t, arm.topo, arm.compact, proc, EngineNaive, k, seed, trials, arm.block)
					for i := range base {
						if resultKey(got[i]) != resultKey(base[i]) {
							t.Errorf("%s trial %d diverged from csr/int32:\n  base %s\n  got  %s",
								arm.label, i, resultKey(base[i]), resultKey(got[i]))
						}
					}
				}
			})
		}
	}
}

// TestBlockTopoCompleteBig drives the full-word complete-graph kernel
// (n > 8192, no magic divide) on the implicit backend in both
// representations and pins their identity. There is no materialized arm
// — K_8300's adjacency is exactly the allocation the implicit path
// exists to avoid — so the int32 implicit run is the reference.
func TestBlockTopoCompleteBig(t *testing.T) {
	const n, trials, k = 8300, 3, 6
	topo, err := graph.NewImplicitComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	for i := range counts {
		counts[i] = n / k
	}
	counts[k-1] += n - (n/k)*k
	run := func(compact bool) []Result {
		out := make([]Result, trials)
		err := RunBlock(BlockConfig{
			Topology: topo,
			Compact:  compact,
			Stop:     UntilMaxSteps,
			MaxSteps: 30_000,
			Seed:     0xb16,
			Init: func(trial int, dst []int, r *rand.Rand) error {
				_, err := BlockOpinionsInto(dst, counts, r)
				return err
			},
			Block: 2,
		}, 0, trials, out)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	i32, b8 := run(false), run(true)
	for i := range i32 {
		if i32[i].Steps != 30_000 {
			t.Errorf("trial %d stopped at %d steps, want exactly 30000", i, i32[i].Steps)
		}
		if resultKey(i32[i]) != resultKey(b8[i]) {
			t.Errorf("trial %d: compact diverged:\n  int32 %s\n  byte  %s",
				i, resultKey(i32[i]), resultKey(b8[i]))
		}
	}
}

// gatherTopoBlock collects the same statistics as gatherBlock from a
// blocked run on an arbitrary topology.
func gatherTopoBlock(t *testing.T, topo graph.Topology, compact bool, proc Process, baseSeed uint64, trials int) eqSample {
	t.Helper()
	out := runTopoBlock(t, topo, compact, proc, EngineNaive, 3, baseSeed, trials, 0)
	sm := eqSample{
		winners: make([]int, trials),
		steps:   make([]float64, trials),
		twoAdj:  make([]float64, trials),
	}
	for i, r := range out {
		if !r.Consensus {
			t.Fatalf("trial %d did not reach consensus", i)
		}
		sm.winners[i] = r.Winner
		sm.steps[i] = float64(r.Steps)
		sm.twoAdj[i] = float64(r.TwoAdjacentStep)
	}
	return sm
}

// TestBlockTopoDistributionEquivalence is the χ²/KS arm: the blocked
// kernel on an implicit torus/hypercube, under seeds independent of the
// materialized arm's, must realize the same winner and stopping-time
// distributions as the materialized CSR run.
func TestBlockTopoDistributionEquivalence(t *testing.T) {
	trials := eqTrials(t)
	torus, err := graph.NewImplicitTorus(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := graph.NewImplicitHypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		topo graph.Topology
	}{{"torus", torus}, {"hypercube", cube}} {
		twin := graph.MustMaterialize(tc.topo)
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			t.Run(fmt.Sprintf("%s/%v", tc.name, proc), func(t *testing.T) {
				mat := gatherBlock(t, twin, proc, EngineNaive, 0x5eed, trials, 0, nil)
				imp := gatherTopoBlock(t, tc.topo, true, proc, 0xd15c, trials)
				if stat, df := chi2TwoSample(mat.winners, imp.winners); df > 0 && stat > chi2Crit001[df] {
					t.Errorf("winner χ²(%d) = %.2f > %.2f (α=0.001): implicit disagrees with materialized", df, stat, chi2Crit001[df])
				}
				ksCrit := ks2Crit001 * math.Sqrt(float64(2*trials)/float64(trials*trials))
				for _, series := range []struct {
					label  string
					ma, im []float64
				}{
					{"consensus steps", mat.steps, imp.steps},
					{"two-adjacent step", mat.twoAdj, imp.twoAdj},
				} {
					d, err := stats.KS2Sample(series.ma, series.im)
					if err != nil {
						t.Fatal(err)
					}
					if d > ksCrit {
						t.Errorf("%s KS distance %.4f > %.4f (α=0.001): implicit disagrees with materialized", series.label, d, ksCrit)
					}
				}
			})
		}
	}
}

// TestBlockTopoHashedRegular smokes the one implicit family without a
// CSR twin: naive, auto, and fast runs must all reach consensus on a
// winner inside the initial window. EngineAuto and EngineFast retire to
// the sparse endgame engine here, so they are distribution- not
// byte-equivalent to EngineNaive (TestSparseDistributionEquivalence
// holds them to the χ²/KS standard; this test pins the multigraph
// plumbing end to end).
func TestBlockTopoHashedRegular(t *testing.T) {
	topo, err := graph.NewHashedRegular(1024, 8, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range []Process{VertexProcess, EdgeProcess} {
		for _, eng := range []Engine{EngineNaive, EngineAuto, EngineFast} {
			out := runTopoBlock(t, topo, true, proc, eng, 4, 0xabc, 4, 2)
			for i := range out {
				if !out[i].Consensus {
					t.Errorf("%v/%v trial %d: no consensus", proc, eng, i)
				}
				if w := out[i].Winner; w < 1 || w > 4 {
					t.Errorf("%v/%v trial %d: winner %d outside initial window [1,4]", proc, eng, i, w)
				}
			}
		}
	}
}

// TestBlockTopoValidation pins the error surface of the new config
// combinations.
func TestBlockTopoValidation(t *testing.T) {
	torus, err := graph.NewImplicitTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	twin := graph.MustMaterialize(torus)
	other := graph.Cycle(16)
	wide, err := graph.NewImplicitCycle(300)
	if err != nil {
		t.Fatal(err)
	}
	initK := func(k int) func(int, []int, *rand.Rand) error {
		return func(trial int, dst []int, r *rand.Rand) error {
			for i := range dst {
				dst[i] = i % k
			}
			return nil
		}
	}
	out := make([]Result, 1)
	kn, err := graph.NewImplicitComplete(32)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  BlockConfig
	}{
		{"fast engine on implicit complete", BlockConfig{Topology: kn, Engine: EngineFast, Init: initK(3)}},
		{"graph and mismatched topology", BlockConfig{Graph: other, Topology: torus, Init: initK(3)}},
		{"edge process without arc map", BlockConfig{Topology: noArcTopo{torus}, Process: EdgeProcess, Init: initK(3)}},
		{"compact window over 256", BlockConfig{Topology: wide, Compact: true, Init: initK(300), MaxSteps: 10, Stop: UntilMaxSteps}},
	}
	for _, tc := range cases {
		if err := RunBlock(tc.cfg, 0, 1, out); err == nil {
			t.Errorf("%s: RunBlock accepted an invalid config", tc.name)
		}
	}
	// Graph == Topology (same pointer) is the one both-set combination
	// that must be accepted.
	if err := RunBlock(BlockConfig{Graph: twin, Topology: twin, Init: initK(3)}, 0, 1, out); err != nil {
		t.Errorf("Graph==Topology rejected: %v", err)
	}
	// EngineFast on non-complete implicit and compact DIV runs routes to
	// the sparse endgame engine and must be accepted (it used to error).
	for _, tc := range []struct {
		name string
		cfg  BlockConfig
	}{
		{"fast engine on implicit", BlockConfig{Topology: torus, Engine: EngineFast, Init: initK(3)}},
		{"fast engine on compact", BlockConfig{Graph: twin, Compact: true, Engine: EngineFast, Init: initK(3)}},
	} {
		if err := RunBlock(tc.cfg, 0, 1, out); err != nil {
			t.Errorf("%s: RunBlock rejected a sparse-eligible config: %v", tc.name, err)
		}
	}
}

// noArcTopo hides the embedded topology's Arc method, modelling a
// custom Topology implementation that cannot enumerate arcs.
type noArcTopo struct{ graph.Topology }

// FuzzBlockTopo fuzzes the identity claim across families, sizes, and
// seeds: one trial on the implicit backend in both representations must
// match the materialized int32 reference bit for bit.
func FuzzBlockTopo(f *testing.F) {
	f.Add(uint8(0), uint8(12), uint8(3), uint64(1))
	f.Add(uint8(1), uint8(9), uint8(5), uint64(2))
	f.Add(uint8(2), uint8(30), uint8(2), uint64(3))
	f.Add(uint8(3), uint8(16), uint8(4), uint64(4))
	f.Fuzz(func(t *testing.T, fam, size, kRaw uint8, seed uint64) {
		var topo graph.Topology
		var err error
		switch fam % 4 {
		case 0:
			topo, err = graph.NewImplicitCycle(3 + int(size)%30)
		case 1:
			topo, err = graph.NewImplicitTorus(3+int(size)%5, 3+int(size)%7)
		case 2:
			topo, err = graph.NewImplicitHypercube(1 + int(size)%5)
		case 3:
			n := 5 + int(size)%40
			topo, err = graph.NewImplicitCirculant(n, []int{1, 1 + n/4})
		}
		if err != nil {
			t.Skip()
		}
		twin := graph.MustMaterialize(topo)
		k := 2 + int(kRaw)%6
		proc := VertexProcess
		if seed%2 == 1 {
			proc = EdgeProcess
		}
		base := runTopoBlock(t, twin, false, proc, EngineNaive, k, seed, 2, 2)
		for _, arm := range []struct {
			label   string
			topo    graph.Topology
			compact bool
		}{{"csr/compact", twin, true}, {"implicit/int32", topo, false}, {"implicit/compact", topo, true}} {
			got := runTopoBlock(t, arm.topo, arm.compact, proc, EngineNaive, k, seed, 2, 2)
			for i := range base {
				if resultKey(got[i]) != resultKey(base[i]) {
					t.Errorf("%s trial %d diverged from csr/int32", arm.label, i)
				}
			}
		}
	})
}

package core

import (
	"testing"

	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
)

// collectingProbe records every event for inspection.
type collectingProbe struct {
	batches  []obs.StepBatch
	switches []obs.EngineSwitch
	discords []obs.Discordance
	stages   []obs.Stage
	dones    []obs.Done
}

func (p *collectingProbe) StepBatch(b obs.StepBatch)       { p.batches = append(p.batches, b) }
func (p *collectingProbe) EngineSwitch(s obs.EngineSwitch) { p.switches = append(p.switches, s) }
func (p *collectingProbe) Discordance(d obs.Discordance)   { p.discords = append(p.discords, d) }
func (p *collectingProbe) Stage(s obs.Stage)               { p.stages = append(p.stages, s) }
func (p *collectingProbe) Done(d obs.Done)                 { p.dones = append(p.dones, d) }

// dissenterConfig builds the E20-style final-stage workload: a random
// regular graph with a small minority at opinion 2 — the profile that
// exercises the hybrid engine's naive→fast→naive transitions.
func dissenterConfig(t *testing.T, n, d, dissenters int, seed uint64) Config {
	t.Helper()
	g, err := graph.RandomRegular(n, d, rng.New(rng.DeriveSeed(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	init, err := TwoOpinionSplit(n, dissenters, rng.New(rng.DeriveSeed(seed, 2)))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph:   g,
		Initial: init,
		Process: VertexProcess,
		Seed:    rng.DeriveSeed(seed, 3),
	}
}

// TestProbeStepAccounting checks, for each engine, that the step-batch
// events partition the run exactly: batches are contiguous from step 0
// to Result.Steps, Active+Idle+Skipped sums to the batch width, and
// the Done event carries the final totals. All three engines must
// therefore agree on the cumulative step count they report for their
// own run.
func TestProbeStepAccounting(t *testing.T) {
	for _, eng := range []Engine{EngineNaive, EngineFast, EngineAuto} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			cfg := dissenterConfig(t, 600, 8, 6, 0xacc1)
			cfg.Engine = eng
			var p collectingProbe
			cfg.Probe = &p
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var at, active, idle, skipped int64
			for i, b := range p.batches {
				if b.FromStep != at {
					t.Fatalf("batch %d starts at %d, want %d (gap or overlap)", i, b.FromStep, at)
				}
				if b.ToStep <= b.FromStep {
					t.Fatalf("batch %d is empty or reversed: %+v", i, b)
				}
				if got := b.Active + b.Idle + b.Skipped; got != b.ToStep-b.FromStep {
					t.Fatalf("batch %d: active %d + idle %d + skipped %d != width %d",
						i, b.Active, b.Idle, b.Skipped, b.ToStep-b.FromStep)
				}
				at = b.ToStep
				active += b.Active
				idle += b.Idle
				skipped += b.Skipped
			}
			if at != res.Steps {
				t.Fatalf("batches cover steps [0,%d), Result.Steps = %d", at, res.Steps)
			}
			if active+idle+skipped != res.Steps {
				t.Fatalf("batch partition sums to %d, Result.Steps = %d", active+idle+skipped, res.Steps)
			}
			if eng == EngineNaive && skipped != 0 {
				t.Fatalf("naive engine reported %d skipped steps", skipped)
			}
			if len(p.dones) != 1 {
				t.Fatalf("%d Done events", len(p.dones))
			}
			d := p.dones[0]
			if d.Step != res.Steps || d.Winner != res.Winner || d.Consensus != res.Consensus {
				t.Fatalf("Done %+v disagrees with Result{Steps:%d Winner:%d Consensus:%v}",
					d, res.Steps, res.Winner, res.Consensus)
			}
			// Stage events mirror the support trajectory: monotone step
			// order, and the last one (consensus) has support 1.
			for i := 1; i < len(p.stages); i++ {
				if p.stages[i].Step < p.stages[i-1].Step {
					t.Fatalf("stage events out of order at %d", i)
				}
			}
			if res.Consensus && len(p.stages) > 0 {
				last := p.stages[len(p.stages)-1]
				if last.Support != 1 {
					t.Fatalf("final stage event has support %d", last.Support)
				}
			}
		})
	}
}

// TestProbeDoesNotPerturb runs the same seed with and without a probe
// under every engine: the probe must never consume randomness or alter
// control flow, so the results must be identical.
func TestProbeDoesNotPerturb(t *testing.T) {
	for _, eng := range []Engine{EngineNaive, EngineFast, EngineAuto} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			run := func(probe obs.Probe) Result {
				cfg := dissenterConfig(t, 500, 8, 5, 0x9e27)
				cfg.Engine = eng
				cfg.Probe = probe
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			bare := run(nil)
			probed := run(&collectingProbe{})
			if bare.Steps != probed.Steps || bare.Winner != probed.Winner ||
				bare.Consensus != probed.Consensus || bare.TwoAdjacentStep != probed.TwoAdjacentStep ||
				bare.FinalMin != probed.FinalMin || bare.FinalMax != probed.FinalMax {
				t.Fatalf("probe perturbed the run:\nnil:    %+v\nprobed: %+v", bare, probed)
			}
		})
	}
}

// TestProbeEngineSwitches drives the hybrid engine on the dissenter
// profile and checks the switch events: at least one naive→fast
// transition, regimes alternating, legal reasons, and every switch
// landing inside the run.
func TestProbeEngineSwitches(t *testing.T) {
	cfg := dissenterConfig(t, 2000, 8, 4, 0x51c4)
	cfg.Engine = EngineAuto
	var p collectingProbe
	cfg.Probe = &p
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.switches) == 0 {
		t.Fatal("hybrid run on the dissenter profile produced no engine-switch events")
	}
	regime := obs.RegimeNaive
	for i, sw := range p.switches {
		if sw.From != regime || sw.To == sw.From {
			t.Fatalf("switch %d: %s→%s does not continue regime %s", i, sw.From, sw.To, regime)
		}
		regime = sw.To
		switch sw.Reason {
		case obs.SwitchProbe, obs.SwitchWindow:
			if sw.To != obs.RegimeFast {
				t.Fatalf("switch %d: reason %q must enter fast, got →%s", i, sw.Reason, sw.To)
			}
		case obs.SwitchRebound:
			if sw.To != obs.RegimeNaive {
				t.Fatalf("switch %d: reason %q must exit to naive, got →%s", i, sw.Reason, sw.To)
			}
		default:
			t.Fatalf("switch %d: unknown reason %q", i, sw.Reason)
		}
		if sw.Step < 0 || sw.Step > res.Steps {
			t.Fatalf("switch %d at step %d outside run of %d steps", i, sw.Step, res.Steps)
		}
		if sw.MassDen <= 0 || sw.MassNum < 0 || sw.MassNum > sw.MassDen {
			t.Fatalf("switch %d: mass %d/%d not a probability", i, sw.MassNum, sw.MassDen)
		}
	}
	if regime != obs.RegimeFast && len(p.discords) == 0 {
		t.Error("run ended in fast regime at least once but emitted no discordance events")
	}
	for i, d := range p.discords {
		if d.Edges < 0 || d.MassDen <= 0 {
			t.Fatalf("discordance %d malformed: %+v", i, d)
		}
	}
}

// TestRecorderBoundarySampling runs the hybrid engine with a
// non-default ObserveEvery and checks the Recorder sampled at exactly
// the multiples of the period — the skip-sampling engines must visit
// the same boundary steps the naive engine would.
func TestRecorderBoundarySampling(t *testing.T) {
	const every = 70 // deliberately not a power of two or the default n
	cfg := dissenterConfig(t, 400, 8, 4, 0xb0b)
	cfg.Engine = EngineAuto
	rec := &Recorder{}
	cfg.Observer = rec.Observe
	cfg.ObserveEvery = every
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no samples taken")
	}
	for i, s := range rec.Steps {
		if s%every != 0 {
			t.Fatalf("sample %d at step %d, not a multiple of %d", i, s, every)
		}
		if want := int64(i) * every; s != want { // sample 0 is the initial state
			t.Fatalf("sample %d at step %d, want %d (missed a boundary)", i, s, want)
		}
	}
	if last := rec.Steps[rec.Len()-1]; last > res.Steps {
		t.Fatalf("sampled step %d beyond run end %d", last, res.Steps)
	}
	if got := int64(rec.Len()); got != res.Steps/every+1 {
		t.Fatalf("%d samples for %d steps at period %d, want %d", got, res.Steps, every, res.Steps/every+1)
	}
}

// TestDiscordantEdgesExactVsRecount verifies the fast engine's O(1)
// discordance figure against a from-scratch recount at every observer
// boundary, under all three engines.
func TestDiscordantEdgesExactVsRecount(t *testing.T) {
	recount := func(s *State) int64 {
		g := s.Graph()
		var c int64
		for v := 0; v < s.N(); v++ {
			for i := 0; i < g.Degree(v); i++ {
				if w := g.Neighbor(v, i); v < w && s.Opinion(v) != s.Opinion(w) {
					c++
				}
			}
		}
		return c
	}
	for _, eng := range []Engine{EngineNaive, EngineFast, EngineAuto} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			cfg := dissenterConfig(t, 300, 6, 6, 0xd15c)
			cfg.Engine = eng
			checks := 0
			cfg.ObserveEvery = 64
			cfg.Observer = func(s *State) bool {
				if got, want := s.DiscordantEdges(), recount(s); got != want {
					t.Fatalf("step %d: DiscordantEdges() = %d, recount = %d", s.Steps(), got, want)
				}
				checks++
				return true
			}
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
			if checks == 0 {
				t.Fatal("observer never ran")
			}
		})
	}
}

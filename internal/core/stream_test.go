package core

import (
	"math"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
)

func TestStreamStat(t *testing.T) {
	var st StreamStat
	for _, x := range []float64{3, -1, 4, 1, 5} {
		st.Add(x)
	}
	if st.Count != 5 || st.Min != -1 || st.Max != 5 {
		t.Errorf("count/min/max = %d/%v/%v, want 5/-1/5", st.Count, st.Min, st.Max)
	}
	if math.Abs(st.Mean-2.4) > 1e-12 {
		t.Errorf("mean = %v, want 2.4", st.Mean)
	}
}

func TestNewAutoRecorder(t *testing.T) {
	if _, ok := NewAutoRecorder(1000, 1, 4096).(*Recorder); !ok {
		t.Error("small run: want exact *Recorder")
	}
	if _, ok := NewAutoRecorder(1_000_000_000, 1, 4096).(*StreamRecorder); !ok {
		t.Error("huge run: want *StreamRecorder")
	}
	if _, ok := NewAutoRecorder(0, 1, 4096).(*StreamRecorder); !ok {
		t.Error("unknown horizon: want *StreamRecorder")
	}
	// Budget counts samples, not steps: 10⁶ steps at ObserveEvery 10³
	// is only 10³ samples.
	if _, ok := NewAutoRecorder(1_000_000, 1000, 4096).(*Recorder); !ok {
		t.Error("coarse cadence: want exact *Recorder")
	}
	if rec, ok := NewAutoRecorder(0, 1, 0).(*StreamRecorder); !ok || rec.maxSamples != DefaultSampleBudget {
		t.Errorf("default budget: got %T cap %d", rec, rec.maxSamples)
	}
}

// TestStreamRecorderAgainstExact runs the same deterministic trial
// under the exact Recorder and a small-capacity StreamRecorder and
// checks every claim the streaming layer makes: checkpoint j is
// exactly observation j·stride of the exact series, Final is the last
// observation, the online stats match the exact series, and the buffer
// never exceeds its capacity.
func TestStreamRecorderAgainstExact(t *testing.T) {
	const maxSamples = 16
	g := graph.Cycle(64)
	init := UniformOpinions(g.N(), 8, rng.New(0x57))
	exact := &Recorder{}
	stream := NewStreamRecorder(maxSamples)
	for _, sink := range []SampleSink{exact, stream} {
		_, err := Run(Config{
			Graph:        g,
			Initial:      init,
			Seed:         99,
			Engine:       EngineNaive,
			Observer:     sink.Observe,
			ObserveEvery: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if stream.Seen() != int64(exact.Len()) {
		t.Fatalf("stream saw %d observations, exact recorder %d", stream.Seen(), exact.Len())
	}
	if exact.Len() <= maxSamples {
		t.Fatalf("run too short (%d samples) to exercise coarsening", exact.Len())
	}
	if stream.Len() > maxSamples {
		t.Errorf("retained %d checkpoints, cap %d", stream.Len(), maxSamples)
	}
	stride := stream.Stride()
	if stride&(stride-1) != 0 || stride < 2 {
		t.Errorf("stride %d: want a power of two ≥ 2 after coarsening", stride)
	}
	for j := 0; j < stream.Len(); j++ {
		i := int(stride) * j
		if i >= exact.Len() {
			t.Fatalf("checkpoint %d maps past the exact series", j)
		}
		if stream.Steps[j] != exact.Steps[i] ||
			stream.Range[j] != exact.Range[i] ||
			stream.Support[j] != exact.Support[i] ||
			stream.Sum[j] != exact.Sum[i] ||
			stream.DegSum[j] != exact.DegSum[i] ||
			stream.PiMin[j] != exact.PiMin[i] ||
			stream.PiMax[j] != exact.PiMax[i] ||
			stream.Discordance[j] != exact.Discordance[i] {
			t.Errorf("checkpoint %d ≠ exact sample %d", j, i)
		}
	}
	last := exact.Len() - 1
	if stream.Final.Steps != exact.Steps[last] || stream.Final.Sum != exact.Sum[last] ||
		stream.Final.Range != exact.Range[last] || stream.Final.Discordance != exact.Discordance[last] {
		t.Errorf("Final snapshot does not match the last exact sample")
	}
	checkStat := func(name string, st StreamStat, series []float64) {
		t.Helper()
		if st.Count != int64(len(series)) {
			t.Errorf("%s: count %d, want %d", name, st.Count, len(series))
		}
		mn, mx, sum := math.Inf(1), math.Inf(-1), 0.0
		for _, x := range series {
			mn, mx, sum = math.Min(mn, x), math.Max(mx, x), sum+x
		}
		if st.Min != mn || st.Max != mx {
			t.Errorf("%s: min/max %v/%v, want %v/%v", name, st.Min, st.Max, mn, mx)
		}
		if mean := sum / float64(len(series)); math.Abs(st.Mean-mean) > 1e-9*math.Max(1, math.Abs(mean)) {
			t.Errorf("%s: mean %v, want %v", name, st.Mean, mean)
		}
	}
	checkStat("range", stream.RangeStat, exact.RangeFloat())
	checkStat("sum", stream.SumStat, exact.SumFloat())
	checkStat("discordance", stream.DiscordanceStat, exact.DiscordanceFloat())
	supp := make([]float64, exact.Len())
	for i, v := range exact.Support {
		supp[i] = float64(v)
	}
	checkStat("support", stream.SupportStat, supp)
}

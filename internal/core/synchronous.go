package core

import (
	"fmt"

	"div/internal/graph"
	"div/internal/rng"
)

// Synchronous-rounds DIV: an extension beyond the paper's asynchronous
// model. In each round EVERY vertex (independently, unless made lazy)
// samples one random neighbour and all vertices apply the DIV update
// simultaneously against the pre-round snapshot.
//
// Pure synchrony can fail to converge: on K_2 with opinions {a, a+1}
// the two vertices swap forever (a 2-periodic orbit), the classic
// parity pathology of synchronous dynamics. The standard cure is
// laziness — each vertex skips a round with probability Lazy — which
// breaks the symmetry and restores convergence. The E16 experiment
// demonstrates both halves.

// SyncConfig describes a synchronous-rounds run.
type SyncConfig struct {
	// Graph is the (connected) interaction graph. Required.
	Graph *graph.Graph
	// Initial is the initial opinion per vertex. Required.
	Initial []int
	// Lazy is the probability a vertex skips a round (0 ≤ Lazy < 1).
	// Lazy = 0 is pure synchrony, which may oscillate.
	Lazy float64
	// Seed seeds the run's private PCG stream.
	Seed uint64
	// MaxRounds caps the run. 0 means 400·n rounds (≈ the async step
	// cap divided by the n updates a round performs).
	MaxRounds int64
}

// SyncResult summarizes a synchronous run.
type SyncResult struct {
	// Winner is the consensus opinion; Consensus reports whether one
	// was reached before MaxRounds.
	Winner    int
	Consensus bool
	// Rounds is the number of rounds executed.
	Rounds int64
	// Updates counts individual opinion changes across all rounds.
	Updates int64
	// Oscillating is set when the run ended at MaxRounds with the
	// final state identical to the state two rounds earlier — the
	// signature of a period-2 orbit.
	Oscillating bool
	// FinalMin/FinalMax bound the surviving opinions.
	FinalMin, FinalMax int
	// InitialAverage and InitialWeightedAverage mirror Result.
	InitialAverage         float64
	InitialWeightedAverage float64
}

// RunSync executes synchronous-rounds DIV.
func RunSync(cfg SyncConfig) (SyncResult, error) {
	if cfg.Graph == nil {
		return SyncResult{}, fmt.Errorf("core: SyncConfig.Graph is required")
	}
	g := cfg.Graph
	n := g.N()
	if len(cfg.Initial) != n {
		return SyncResult{}, fmt.Errorf("core: %d initial opinions for %d vertices", len(cfg.Initial), n)
	}
	if g.MinDegree() == 0 {
		return SyncResult{}, fmt.Errorf("core: synchronous DIV requires min degree >= 1")
	}
	if cfg.Lazy < 0 || cfg.Lazy >= 1 {
		return SyncResult{}, fmt.Errorf("core: Lazy %v outside [0,1)", cfg.Lazy)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 400 * int64(n)
	}

	r := rng.New(cfg.Seed)
	cur := make([]int32, n)
	next := make([]int32, n)
	prev2 := make([]int32, n) // state two rounds ago, for orbit detection
	var res SyncResult
	var sum, degSum int64
	minOp, maxOp := cfg.Initial[0], cfg.Initial[0]
	for v, x := range cfg.Initial {
		cur[v] = int32(x)
		sum += int64(x)
		degSum += int64(g.Degree(v)) * int64(x)
		if x < minOp {
			minOp = x
		}
		if x > maxOp {
			maxOp = x
		}
	}
	res.InitialAverage = float64(sum) / float64(n)
	res.InitialWeightedAverage = float64(degSum) / float64(g.DegreeSum())

	uniform := func(xs []int32) (int32, bool) {
		for _, x := range xs[1:] {
			if x != xs[0] {
				return 0, false
			}
		}
		return xs[0], true
	}

	for res.Rounds < maxRounds {
		if w, ok := uniform(cur); ok {
			res.Consensus = true
			res.Winner = int(w)
			break
		}
		copy(prev2, next) // next currently holds the state one round ago
		for v := 0; v < n; v++ {
			xv := cur[v]
			if cfg.Lazy > 0 && rng.Bernoulli(r, cfg.Lazy) {
				next[v] = xv
				continue
			}
			w := g.Neighbor(v, r.IntN(g.Degree(v)))
			xw := cur[w]
			switch {
			case xv < xw:
				next[v] = xv + 1
				res.Updates++
			case xv > xw:
				next[v] = xv - 1
				res.Updates++
			default:
				next[v] = xv
			}
		}
		cur, next = next, cur
		res.Rounds++
	}
	if !res.Consensus {
		res.Oscillating = equal32(cur, prev2)
	}
	min, max := cur[0], cur[0]
	for _, x := range cur {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	res.FinalMin, res.FinalMax = int(min), int(max)
	return res, nil
}

func equal32(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package core

import (
	"reflect"
	"testing"

	"div/internal/graph"
)

// FuzzFastEngine throws random small connected graphs and opinion
// vectors at both engines and checks that each run independently
// satisfies every deterministic consequence of the process laws — the
// properties that hold on *every* sample path, regardless of which
// random stream produced it:
//
//   - the run reaches consensus within the (generous) step budget;
//   - the winner lies in [min X(0), max X(0)] (opinions are confined to
//     the initial range because DIV only moves toward observed values);
//   - at consensus S(T) = n·Winner and FinalMin = FinalMax = Winner;
//   - the stopping times are ordered ThreeStep ≤ TwoAdjacentStep ≤
//     Steps (range ≤ 1 implies range ≤ 2);
//   - at every observation the martingale-conserved totals stay inside
//     their a.s. envelopes, n·min₀ ≤ S(t) ≤ n·max₀ and likewise the
//     degree-weighted Z(t) (the conservation Lemma 3 gives equality in
//     expectation; confinement gives these bounds surely), and the
//     state's internal invariants hold (State.CheckInvariants).
//
// Per-path equality of the two engines is *not* asserted — they consume
// randomness differently by design — but both are held to the identical
// pathwise contract; the distributional match is tested separately in
// equivalence_test.go.
func FuzzFastEngine(f *testing.F) {
	f.Add(uint8(5), uint64(0), []byte{0, 3, 6, 1, 2}, false, uint64(1))
	f.Add(uint8(7), uint64(0x5a5a5a5a), []byte{9, 9, 0}, true, uint64(42))
	f.Add(uint8(0), ^uint64(0), []byte{1}, false, uint64(7))
	f.Add(uint8(9), uint64(1)<<17, []byte{250, 0, 4, 4, 4, 130}, true, uint64(0xbeef))

	f.Fuzz(func(t *testing.T, nRaw uint8, mask uint64, ops []byte, edgeProc bool, seed uint64) {
		n := 3 + int(nRaw%8)
		// Path backbone keeps the graph connected; mask bits sprinkle
		// extra chords (i,j) with j > i+1.
		edges := make([]graph.Edge, 0, n+8)
		for i := 0; i+1 < n; i++ {
			edges = append(edges, graph.Edge{U: i, V: i + 1})
		}
		bit := 0
		for i := 0; i < n; i++ {
			for j := i + 2; j < n; j++ {
				if mask&(1<<(bit%64)) != 0 {
					edges = append(edges, graph.Edge{U: i, V: j})
				}
				bit++
			}
		}
		g, err := graph.NewFromEdges(n, edges)
		if err != nil {
			t.Fatalf("graph build: %v", err)
		}
		init := make([]int, n)
		for i := range init {
			if len(ops) > 0 {
				init[i] = int(ops[i%len(ops)] % 7)
			} else {
				init[i] = i % 3
			}
		}
		min0, max0 := init[0], init[0]
		var sum0 int64
		for _, x := range init {
			if x < min0 {
				min0 = x
			}
			if x > max0 {
				max0 = x
			}
			sum0 += int64(x)
		}
		proc := VertexProcess
		if edgeProc {
			proc = EdgeProcess
		}

		for _, engine := range []Engine{EngineNaive, EngineFast} {
			runOnce := func(seed uint64, sc *Scratch) (Result, error) {
				return Run(Config{
					Graph:        g,
					Initial:      init,
					Process:      proc,
					Engine:       engine,
					Seed:         seed,
					MaxSteps:     1 << 22,
					Scratch:      sc,
					ObserveEvery: 3,
					Observer: func(s *State) bool {
						if err := s.CheckInvariants(); err != nil {
							t.Errorf("%v: state invariants: %v", engine, err)
							return false
						}
						if s.Sum() < int64(min0)*int64(n) || s.Sum() > int64(max0)*int64(n) {
							t.Errorf("%v: S(t)=%d escaped [%d,%d]", engine, s.Sum(), int64(min0)*int64(n), int64(max0)*int64(n))
							return false
						}
						ds := g.DegreeSum()
						if s.DegSum() < int64(min0)*ds || s.DegSum() > int64(max0)*ds {
							t.Errorf("%v: Z-mass %d escaped [%d,%d]", engine, s.DegSum(), int64(min0)*ds, int64(max0)*ds)
							return false
						}
						return true
					},
				})
			}
			res, err := runOnce(seed, nil)
			if err != nil {
				t.Fatalf("%v: Run: %v", engine, err)
			}
			if res.Aborted {
				t.Fatalf("%v: aborted by failing observer", engine)
			}
			if !res.Consensus {
				t.Fatalf("%v: no consensus after %d steps (n=%d)", engine, res.Steps, n)
			}
			if res.Winner < min0 || res.Winner > max0 {
				t.Errorf("%v: winner %d outside initial range [%d,%d]", engine, res.Winner, min0, max0)
			}
			if res.FinalMin != res.Winner || res.FinalMax != res.Winner {
				t.Errorf("%v: final band [%d,%d] ≠ winner %d", engine, res.FinalMin, res.FinalMax, res.Winner)
			}
			if res.TwoAdjacentStep < 0 || res.ThreeStep < 0 {
				t.Errorf("%v: consensus reached but stopping times unset (%d, %d)", engine, res.ThreeStep, res.TwoAdjacentStep)
			}
			if res.ThreeStep > res.TwoAdjacentStep || res.TwoAdjacentStep > res.Steps {
				t.Errorf("%v: stopping times out of order: three=%d twoAdj=%d steps=%d",
					engine, res.ThreeStep, res.TwoAdjacentStep, res.Steps)
			}

			// Reused-scratch replay: dirty a Scratch with an unrelated
			// trial, then re-run the same seed through it. Reuse must be
			// invisible — the Result is byte-identical to the fresh run.
			sc := NewScratch(g)
			if _, err := runOnce(seed+1, sc); err != nil {
				t.Fatalf("%v: dirtying run: %v", engine, err)
			}
			res2, err := runOnce(seed, sc)
			if err != nil {
				t.Fatalf("%v: reused run: %v", engine, err)
			}
			if !reflect.DeepEqual(res, res2) {
				t.Errorf("%v: reused-scratch result diverged\nfresh:  %+v\nreused: %+v", engine, res, res2)
			}
		}
	})
}

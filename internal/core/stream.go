package core

// Streaming recorders: fixed-memory observers for runs whose step
// count makes the append-per-sample Recorder unaffordable. A
// StreamRecorder holds (a) O(1) online accumulators — count, min, max,
// mean — over every observation of each tracked quantity, and (b) a
// bounded checkpoint buffer that coarsens itself: when it fills, every
// other retained sample is dropped and the retention stride doubles,
// so the buffer always covers the whole run at ≤ MaxSamples points
// with at most 2× unevenness in spacing. NewAutoRecorder picks between
// the two implementations from the run's expected sample count, so
// callers can wire one observer regardless of scale.

// SampleSink is the common surface of Recorder and StreamRecorder:
// wire Observe as Config.Observer and read Len after the run.
type SampleSink interface {
	Observe(s *State) bool
	Len() int
}

// DefaultSampleBudget is the expected-sample threshold above which
// NewAutoRecorder switches from the exact Recorder to a StreamRecorder
// (and the StreamRecorder's default checkpoint capacity).
const DefaultSampleBudget = 4096

// NewAutoRecorder returns an exact Recorder when the run's expected
// number of observations — maxSteps/observeEvery — fits within budget
// (≤ 0 means DefaultSampleBudget), and a StreamRecorder capped at
// budget checkpoints otherwise. maxSteps ≤ 0 (an unknown horizon) is
// treated as over-budget: the streaming recorder is safe at any scale.
func NewAutoRecorder(maxSteps, observeEvery int64, budget int) SampleSink {
	if budget <= 0 {
		budget = DefaultSampleBudget
	}
	if observeEvery < 1 {
		observeEvery = 1
	}
	if maxSteps > 0 && maxSteps/observeEvery <= int64(budget) {
		return &Recorder{}
	}
	return NewStreamRecorder(budget)
}

// StreamStat is an O(1) online accumulator: count, min, max, and mean
// (Welford-style running mean, exact for the quantities we feed it).
type StreamStat struct {
	Count    int64
	Min, Max float64
	Mean     float64
}

// Add folds one observation into the accumulator.
func (st *StreamStat) Add(x float64) {
	st.Count++
	if st.Count == 1 {
		st.Min, st.Max, st.Mean = x, x, x
		return
	}
	if x < st.Min {
		st.Min = x
	}
	if x > st.Max {
		st.Max = x
	}
	st.Mean += (x - st.Mean) / float64(st.Count)
}

// StreamSample is one full snapshot of the tracked quantities.
type StreamSample struct {
	Steps       int64
	Range       int
	Support     int
	Sum         int64
	DegSum      int64
	PiMin       float64
	PiMax       float64
	Discordance int64
}

// StreamRecorder is the fixed-memory counterpart of Recorder. Every
// observation updates the online Stat accumulators and the Final
// snapshot; a coarsening subset of observations is retained as
// checkpoints in the same parallel-slice layout Recorder uses, bounded
// by MaxSamples. Checkpoint i was taken at step Steps[i]; Stride
// reports the current retention period in observations.
type StreamRecorder struct {
	// Checkpoints, in Recorder's layout but bounded by MaxSamples.
	Steps       []int64
	Range       []int
	Support     []int
	Sum         []int64
	DegSum      []int64
	PiMin       []float64
	PiMax       []float64
	Discordance []int64

	// Online accumulators over every observation (not just retained
	// checkpoints).
	RangeStat       StreamStat
	SupportStat     StreamStat
	SumStat         StreamStat
	DiscordanceStat StreamStat

	// Final is the most recent observation, which the coarsened
	// checkpoint buffer need not contain.
	Final StreamSample

	maxSamples int
	stride     int64 // keep every stride-th observation
	seen       int64 // observations so far
}

// NewStreamRecorder returns a streaming recorder retaining at most
// maxSamples checkpoints (≤ 0 means DefaultSampleBudget).
func NewStreamRecorder(maxSamples int) *StreamRecorder {
	if maxSamples <= 0 {
		maxSamples = DefaultSampleBudget
	}
	if maxSamples < 2 {
		maxSamples = 2
	}
	return &StreamRecorder{maxSamples: maxSamples, stride: 1}
}

// Observe implements the Config.Observer signature; it never aborts.
func (rec *StreamRecorder) Observe(s *State) bool {
	smp := StreamSample{
		Steps:       s.Steps(),
		Range:       s.Range(),
		Support:     s.SupportSize(),
		Sum:         s.Sum(),
		DegSum:      s.DegSum(),
		PiMin:       s.PiMass(s.Min()),
		PiMax:       s.PiMass(s.Max()),
		Discordance: s.DiscordantEdges(),
	}
	rec.RangeStat.Add(float64(smp.Range))
	rec.SupportStat.Add(float64(smp.Support))
	rec.SumStat.Add(float64(smp.Sum))
	rec.DiscordanceStat.Add(float64(smp.Discordance))
	rec.Final = smp
	keep := rec.seen%rec.stride == 0
	rec.seen++
	if !keep {
		return true
	}
	if len(rec.Steps) == rec.maxSamples {
		rec.coarsen()
	}
	rec.Steps = append(rec.Steps, smp.Steps)
	rec.Range = append(rec.Range, smp.Range)
	rec.Support = append(rec.Support, smp.Support)
	rec.Sum = append(rec.Sum, smp.Sum)
	rec.DegSum = append(rec.DegSum, smp.DegSum)
	rec.PiMin = append(rec.PiMin, smp.PiMin)
	rec.PiMax = append(rec.PiMax, smp.PiMax)
	rec.Discordance = append(rec.Discordance, smp.Discordance)
	return true
}

// coarsen halves the checkpoint buffer in place — keep the
// even-indexed samples, whose spacing is one doubled stride — and
// doubles the retention stride.
func (rec *StreamRecorder) coarsen() {
	half := (len(rec.Steps) + 1) / 2
	for i := 0; i < half; i++ {
		rec.Steps[i] = rec.Steps[2*i]
		rec.Range[i] = rec.Range[2*i]
		rec.Support[i] = rec.Support[2*i]
		rec.Sum[i] = rec.Sum[2*i]
		rec.DegSum[i] = rec.DegSum[2*i]
		rec.PiMin[i] = rec.PiMin[2*i]
		rec.PiMax[i] = rec.PiMax[2*i]
		rec.Discordance[i] = rec.Discordance[2*i]
	}
	rec.Steps = rec.Steps[:half]
	rec.Range = rec.Range[:half]
	rec.Support = rec.Support[:half]
	rec.Sum = rec.Sum[:half]
	rec.DegSum = rec.DegSum[:half]
	rec.PiMin = rec.PiMin[:half]
	rec.PiMax = rec.PiMax[:half]
	rec.Discordance = rec.Discordance[:half]
	rec.stride *= 2
}

// Len returns the number of retained checkpoints.
func (rec *StreamRecorder) Len() int { return len(rec.Steps) }

// Seen returns the total number of observations folded in, retained or
// not.
func (rec *StreamRecorder) Seen() int64 { return rec.seen }

// Stride returns the current retention period: one checkpoint per
// Stride observations.
func (rec *StreamRecorder) Stride() int64 { return rec.stride }

// SumFloat returns the retained Sum checkpoints as float64s.
func (rec *StreamRecorder) SumFloat() []float64 {
	out := make([]float64, len(rec.Sum))
	for i, v := range rec.Sum {
		out[i] = float64(v)
	}
	return out
}

// RangeFloat returns the retained Range checkpoints as float64s.
func (rec *StreamRecorder) RangeFloat() []float64 {
	out := make([]float64, len(rec.Range))
	for i, v := range rec.Range {
		out[i] = float64(v)
	}
	return out
}

// DiscordanceFloat returns the retained Discordance checkpoints as
// float64s.
func (rec *StreamRecorder) DiscordanceFloat() []float64 {
	out := make([]float64, len(rec.Discordance))
	for i, v := range rec.Discordance {
		out[i] = float64(v)
	}
	return out
}

package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
	"div/internal/stats"
)

// The blocked kernel's correctness contract has two halves, and this
// file tests both:
//
//  1. Determinism: a trial's Result is a pure function of (config,
//     Seed, trial index) — byte-identical across block sizes, across
//     batch splits, and across arena reuse.
//  2. Law: the blocked kernel realizes the same process distribution
//     as the sequential reference engine, held to the same α = 0.001
//     χ²/KS standard as the fast-engine equivalence suite
//     (equivalence_test.go). Samplewise agreement with Run is not
//     expected — the blocked path draws from counter streams, the
//     sequential path from PCG — so the comparison is distributional.

// gatherBlock runs trials of one point through RunBlock and collects
// the same statistics as gatherEq.
func gatherBlock(t *testing.T, g *graph.Graph, proc Process, engine Engine, baseSeed uint64, trials, block int, sc *Scratch) eqSample {
	t.Helper()
	n := g.N()
	counts := []int{n / 3, n / 3, n - 2*(n/3)}
	out := make([]Result, trials)
	err := RunBlock(BlockConfig{
		Graph:   g,
		Process: proc,
		Engine:  engine,
		Seed:    baseSeed,
		Init: func(trial int, dst []int, r *rand.Rand) error {
			_, err := BlockOpinionsInto(dst, counts, r)
			return err
		},
		MaxSteps: 4 << 20,
		Scratch:  sc,
		Block:    block,
	}, 0, trials, out)
	if err != nil {
		t.Fatal(err)
	}
	var smp eqSample
	for trial, res := range out {
		if !res.Consensus {
			t.Fatalf("%v/%v engine %v trial %d: no consensus after %d steps", g, proc, engine, trial, res.Steps)
		}
		smp.winners = append(smp.winners, res.Winner)
		smp.steps = append(smp.steps, float64(res.Steps))
		smp.twoAdj = append(smp.twoAdj, float64(res.TwoAdjacentStep))
	}
	return smp
}

// resultKey renders a Result to a comparable string. NaN fields
// (WeightAtTwoAdjacent on runs that never reached two opinions) render
// as "NaN", so identity comparison works where == would not.
func resultKey(r Result) string { return fmt.Sprintf("%+v", r) }

// TestBlockByteIdentity is the kernel's headline determinism claim:
// the same trial range at the same seed yields bit-identical Results
// for every block size, for a batch split into multiple RunBlock
// spans, and on a dirtied arena — because each trial draws only from
// its own counter stream and rows share no mutable state.
func TestBlockByteIdentity(t *testing.T) {
	const trials = 12
	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			for _, engine := range []Engine{EngineNaive, EngineFast, EngineAuto} {
				t.Run(fmt.Sprintf("%s/%v/%v", name, proc, engine), func(t *testing.T) {
					n := g.N()
					counts := []int{n / 3, n / 3, n - 2*(n/3)}
					cfg := BlockConfig{
						Graph:   g,
						Process: proc,
						Engine:  engine,
						Seed:    0xb10c,
						Init: func(trial int, dst []int, r *rand.Rand) error {
							_, err := BlockOpinionsInto(dst, counts, r)
							return err
						},
						MaxSteps: 4 << 20,
					}
					ref := make([]Result, trials)
					cfg.Block = 1
					if err := RunBlock(cfg, 0, trials, ref); err != nil {
						t.Fatal(err)
					}
					check := func(label string, got []Result) {
						t.Helper()
						for i := range ref {
							if resultKey(got[i]) != resultKey(ref[i]) {
								t.Fatalf("%s: trial %d diverged from block=1:\n  got  %s\n  want %s",
									label, i, resultKey(got[i]), resultKey(ref[i]))
							}
						}
					}
					for _, block := range []int{3, 8, trials + 5} {
						got := make([]Result, trials)
						cfg.Block = block
						if err := RunBlock(cfg, 0, trials, got); err != nil {
							t.Fatal(err)
						}
						check(fmt.Sprintf("block=%d", block), got)
					}
					// Split the batch across spans, as the scheduler does.
					got := make([]Result, trials)
					cfg.Block = 4
					if err := RunBlock(cfg, 0, 5, got[:5]); err != nil {
						t.Fatal(err)
					}
					if err := RunBlock(cfg, 5, trials, got[5:]); err != nil {
						t.Fatal(err)
					}
					check("split spans", got)
					// Dirtied arena: two passes through one Scratch.
					sc := NewScratch(g)
					cfg.Scratch = sc
					cfg.Block = 6
					if err := RunBlock(cfg, 0, trials, got); err != nil {
						t.Fatal(err)
					}
					check("scratch pass 1", got)
					if err := RunBlock(cfg, 0, trials, got); err != nil {
						t.Fatal(err)
					}
					check("scratch pass 2", got)
				})
			}
		}
	}
}

// TestBlockDistributionEquivalence holds the blocked kernel to the
// same α = 0.001 standard as the fast engine: winner law by two-sample
// χ², stopping-time laws by two-sample KS, against the sequential
// naive reference, for both the pure blocked path (EngineNaive) and
// the immediate-hand-off path (EngineFast).
func TestBlockDistributionEquivalence(t *testing.T) {
	trials := eqTrials(t)
	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			for _, engine := range []Engine{EngineNaive, EngineFast} {
				name, g, proc, engine := name, g, proc, engine
				t.Run(fmt.Sprintf("%s/%v/%v", name, proc, engine), func(t *testing.T) {
					t.Parallel()
					base := rng.DeriveSeed(0xb10c2, uint64(len(name))*131+uint64(g.N())*7+uint64(proc)*3+uint64(engine))
					naive := gatherEq(t, g, proc, EngineNaive, rng.DeriveSeed(base, 1), trials, nil)
					blocked := gatherBlock(t, g, proc, engine, rng.DeriveSeed(base, 2), trials, DefaultBlock, nil)

					stat, df := chi2TwoSample(naive.winners, blocked.winners)
					if df > 0 {
						crit, ok := chi2Crit001[df]
						if !ok {
							t.Fatalf("no critical value for df=%d", df)
						}
						if stat > crit {
							t.Errorf("winner χ²(%d) = %.2f > %.2f (α=0.001): blocked kernel disagrees", df, stat, crit)
						}
					}
					ksCrit := ks2Crit001 * math.Sqrt(float64(2*trials)/float64(trials*trials))
					for _, series := range []struct {
						label  string
						na, bl []float64
					}{
						{"consensus steps", naive.steps, blocked.steps},
						{"two-adjacent step", naive.twoAdj, blocked.twoAdj},
					} {
						d, err := stats.KS2Sample(series.na, series.bl)
						if err != nil {
							t.Fatal(err)
						}
						if d > ksCrit {
							t.Errorf("%s KS distance %.4f > %.4f (α=0.001): blocked kernel disagrees", series.label, d, ksCrit)
						}
					}
				})
			}
		}
	}
}

// TestBlockAutoHandoffEquivalence exercises the blocked→fast hand-off
// boundary statistically: with the hybrid window shrunk, small-graph
// runs genuinely trigger the windowed hand-off, retire to the
// sequential hybrid loop on the arena FastState, and must still match
// the naive law. Not parallel: it mutates the package-level window.
func TestBlockAutoHandoffEquivalence(t *testing.T) {
	oldWindow := hybridWindow
	hybridWindow = 64
	defer func() { hybridWindow = oldWindow }()

	trials := eqTrials(t)
	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			t.Run(fmt.Sprintf("%s/%v", name, proc), func(t *testing.T) {
				base := rng.DeriveSeed(0xb10c3, uint64(len(name))*131+uint64(g.N())*7+uint64(proc))
				naive := gatherEq(t, g, proc, EngineNaive, rng.DeriveSeed(base, 1), trials, nil)
				blocked := gatherBlock(t, g, proc, EngineAuto, rng.DeriveSeed(base, 2), trials, 4, NewScratch(g))

				stat, df := chi2TwoSample(naive.winners, blocked.winners)
				if df > 0 {
					if stat > chi2Crit001[df] {
						t.Errorf("winner χ²(%d) = %.2f > %.2f (α=0.001): hand-off path disagrees", df, stat, chi2Crit001[df])
					}
				}
				ksCrit := ks2Crit001 * math.Sqrt(float64(2*trials)/float64(trials*trials))
				for _, series := range []struct {
					label  string
					na, bl []float64
				}{
					{"consensus steps", naive.steps, blocked.steps},
					{"two-adjacent step", naive.twoAdj, blocked.twoAdj},
				} {
					d, err := stats.KS2Sample(series.na, series.bl)
					if err != nil {
						t.Fatal(err)
					}
					if d > ksCrit {
						t.Errorf("%s KS distance %.4f > %.4f (α=0.001): hand-off path disagrees", series.label, d, ksCrit)
					}
				}
			})
		}
	}
}

// pullTest is a deliberately non-pairwise local rule (no Target
// method): v adopts w's opinion outright. It exercises the blocked
// kernel's generic scheduler-and-rule path, which must refuse hand-off
// and still match the sequential engine's law.
type pullTest struct{}

func (pullTest) Name() string { return "pull-test" }
func (pullTest) Step(s *State, _ *rand.Rand, v, w int) {
	if x := int(s.opinions[w]); x != int(s.opinions[v]) {
		s.SetOpinion(v, x)
	}
}

// TestBlockGenericRule runs the non-pairwise fallback: winner and
// stopping-time laws must match sequential naive runs of the same
// rule, and byte-identity across block sizes must hold.
func TestBlockGenericRule(t *testing.T) {
	g := graph.Complete(12)
	const trials = 300
	counts := []int{4, 4, 4}
	gather := func(block int, seed uint64) ([]int, []float64) {
		out := make([]Result, trials)
		err := RunBlock(BlockConfig{
			Graph: g,
			Rule:  pullTest{},
			Seed:  seed,
			Init: func(trial int, dst []int, r *rand.Rand) error {
				_, err := BlockOpinionsInto(dst, counts, r)
				return err
			},
			MaxSteps: 4 << 20,
			Block:    block,
		}, 0, trials, out)
		if err != nil {
			t.Fatal(err)
		}
		winners := make([]int, trials)
		steps := make([]float64, trials)
		for i, res := range out {
			if !res.Consensus {
				t.Fatalf("trial %d: no consensus", i)
			}
			winners[i] = res.Winner
			steps[i] = float64(res.Steps)
		}
		return winners, steps
	}
	winA, stepsA := gather(1, 77)
	winB, stepsB := gather(8, 77)
	for i := range winA {
		if winA[i] != winB[i] || stepsA[i] != stepsB[i] {
			t.Fatalf("trial %d: generic path diverges across block sizes", i)
		}
	}

	// Sequential reference with the same rule.
	var seqWinners []int
	var seqSteps []float64
	for trial := 0; trial < trials; trial++ {
		seed := rng.DeriveSeed(991, uint64(trial))
		init, err := BlockOpinions(g.N(), counts, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Graph: g, Initial: init, Rule: pullTest{}, Seed: rng.SplitMix64(seed), MaxSteps: 4 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus {
			t.Fatalf("sequential trial %d: no consensus", trial)
		}
		seqWinners = append(seqWinners, res.Winner)
		seqSteps = append(seqSteps, float64(res.Steps))
	}
	stat, df := chi2TwoSample(seqWinners, winA)
	if df > 0 && stat > chi2Crit001[df] {
		t.Errorf("generic-rule winner χ²(%d) = %.2f > %.2f", df, stat, chi2Crit001[df])
	}
	ksCrit := ks2Crit001 * math.Sqrt(float64(2*trials)/float64(trials*trials))
	if d, err := stats.KS2Sample(seqSteps, stepsA); err != nil {
		t.Fatal(err)
	} else if d > ksCrit {
		t.Errorf("generic-rule consensus-steps KS %.4f > %.4f", d, ksCrit)
	}
}

// TestBlockMaxSteps pins exact step accounting at the cap: under
// UntilMaxSteps every trial must stop at exactly MaxSteps, chunked
// stepping and lazy step commits notwithstanding.
func TestBlockMaxSteps(t *testing.T) {
	for name, g := range testGraphs(t) {
		const maxSteps = 12345 // deliberately not chunk-aligned
		out := make([]Result, 6)
		err := RunBlock(BlockConfig{
			Graph:    g,
			Stop:     UntilMaxSteps,
			MaxSteps: maxSteps,
			Seed:     5,
			Init: func(trial int, dst []int, r *rand.Rand) error {
				for i := range dst {
					dst[i] = i % 3
				}
				return nil
			},
			Block: 4,
		}, 0, 6, out)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range out {
			if res.Steps != maxSteps {
				t.Errorf("%s trial %d: %d steps, want exactly %d", name, i, res.Steps, maxSteps)
			}
		}
	}
}

// TestBlockBornDone: a trial whose initial profile already satisfies
// the stop condition must finish at step 0 with a complete Result.
func TestBlockBornDone(t *testing.T) {
	g := graph.Complete(10)
	out := make([]Result, 3)
	err := RunBlock(BlockConfig{
		Graph: g,
		Seed:  1,
		Init: func(trial int, dst []int, r *rand.Rand) error {
			for i := range dst {
				dst[i] = 7
			}
			return nil
		},
	}, 0, 3, out)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if !res.Consensus || res.Winner != 7 || res.Steps != 0 {
			t.Errorf("trial %d: %+v, want consensus on 7 at step 0", i, res)
		}
	}
}

// TestBlockStateInvariants replays blocked trials and validates the
// full incremental-aggregate invariant set on every row after the run.
func TestBlockStateInvariants(t *testing.T) {
	sc := NewScratch(graph.Complete(20))
	out := make([]Result, 8)
	err := RunBlock(BlockConfig{
		Graph: sc.Graph(),
		Seed:  3,
		Init: func(trial int, dst []int, r *rand.Rand) error {
			for i := range dst {
				dst[i] = r.IntN(5)
			}
			return nil
		},
		Scratch: sc,
		Block:   4,
	}, 0, 8, out)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range sc.blk.rows {
		if err := row.s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompleteMagicDivide verifies the divide-free decomposition of
// the K_n joint draw exhaustively for small n and at every quotient
// boundary for the largest gated n: with M = ⌊2^40/d⌋+1, (q·M)>>40
// must equal ⌊q/d⌋ for all q < n(n-1).
func TestCompleteMagicDivide(t *testing.T) {
	check := func(n int) {
		d := uint64(n - 1)
		magic := (uint64(1)<<40)/d + 1
		m := uint64(n) * d
		verify := func(q uint64) {
			if got, want := q*magic>>40, q/d; got != want {
				t.Fatalf("n=%d q=%d: magic divide %d, want %d", n, q, got, want)
			}
		}
		if m <= 1<<20 {
			for q := uint64(0); q < m; q++ {
				verify(q)
			}
			return
		}
		// Failures can only occur where frac(q/d) is maximal, i.e. just
		// below quotient boundaries — check every boundary ±1.
		for k := uint64(0); k <= uint64(n); k++ {
			for _, q := range []uint64{k * d, k*d + 1, k*d + d - 1} {
				if q < m {
					verify(q)
				}
			}
		}
	}
	for _, n := range []int{2, 3, 4, 5, 17, 100, 1000, 3200, 8191, 8192} {
		check(n)
	}
}

// TestBlockValidation covers the constructor's error paths.
func TestBlockValidation(t *testing.T) {
	g := graph.Complete(4)
	init := func(trial int, dst []int, r *rand.Rand) error {
		for i := range dst {
			dst[i] = i % 2
		}
		return nil
	}
	out := make([]Result, 1)
	if err := RunBlock(BlockConfig{Init: init}, 0, 1, out); err == nil {
		t.Error("nil graph accepted")
	}
	if err := RunBlock(BlockConfig{Graph: g}, 0, 1, out); err == nil {
		t.Error("nil Init accepted")
	}
	if err := RunBlock(BlockConfig{Graph: g, Init: init, Engine: EngineFast, Rule: pullTest{}}, 0, 1, out); err == nil {
		t.Error("EngineFast with non-pairwise rule accepted")
	}
	if err := RunBlock(BlockConfig{Graph: g, Init: init}, 0, 5, out); err == nil {
		t.Error("short result slice accepted")
	}
	if err := RunBlock(BlockConfig{Graph: g, Init: init}, -1, 0, out); err == nil {
		t.Error("negative trial range accepted")
	}
	if err := RunBlock(BlockConfig{Graph: graph.Path(3), Init: init, Process: EdgeProcess}, 0, 1, out); err != nil {
		t.Errorf("valid path-graph config rejected: %v", err)
	}
}

package core

import (
	"fmt"
	"math/rand/v2"

	"div/internal/rng"
)

// Initial-opinion profiles used across experiments. All return a slice
// of length n with values in [1, k] unless documented otherwise.

// UniformOpinions assigns each vertex an independent uniform opinion
// from {1, …, k}.
func UniformOpinions(n, k int, r *rand.Rand) []int {
	return UniformOpinionsInto(make([]int, n), k, r)
}

// UniformOpinionsInto is UniformOpinions writing into dst (len(dst)
// vertices), for allocation-free trial reuse with Scratch.Initial. It
// consumes exactly the randomness of UniformOpinions.
func UniformOpinionsInto(dst []int, k int, r *rand.Rand) []int {
	for v := range dst {
		dst[v] = 1 + r.IntN(k)
	}
	return dst
}

// WeightedOpinions assigns opinions i+1 with probability weights[i]
// (normalized), enabling skewed profiles whose mode, median and mean
// differ — the E7 mode/median/mean separation workload.
func WeightedOpinions(n int, weights []float64, r *rand.Rand) ([]int, error) {
	alias, err := rng.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("core: WeightedOpinions: %w", err)
	}
	ops := make([]int, n)
	for v := range ops {
		ops[v] = 1 + alias.Sample(r)
	}
	return ops, nil
}

// BlockOpinions assigns exact counts: counts[i] vertices get opinion
// i+1, placed at uniformly random vertices. Σ counts must equal n.
// Exact counts pin the initial average c exactly, which Theorem 2's
// winner-split predictions need.
func BlockOpinions(n int, counts []int, r *rand.Rand) ([]int, error) {
	return BlockOpinionsInto(make([]int, n), counts, r)
}

// BlockOpinionsInto is BlockOpinions writing into dst (len(dst)
// vertices), for allocation-free trial reuse with Scratch.Initial. It
// consumes exactly the randomness of BlockOpinions: the only random
// draws are the shuffle's.
func BlockOpinionsInto(dst []int, counts []int, r *rand.Rand) ([]int, error) {
	n := len(dst)
	total := 0
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("core: BlockOpinions negative count %d", c)
		}
		total += c
	}
	if total != n {
		return nil, fmt.Errorf("core: BlockOpinions counts sum to %d, want n=%d", total, n)
	}
	idx := 0
	for i, c := range counts {
		for j := 0; j < c; j++ {
			dst[idx] = i + 1
			idx++
		}
	}
	rng.Shuffle(r, dst)
	return dst, nil
}

// TwoOpinionSplit places exactly n1 vertices at opinion 1 and the rest
// at opinion 2, at random positions: the classic two-opinion pull
// voting initial condition of equation (3).
func TwoOpinionSplit(n, n1 int, r *rand.Rand) ([]int, error) {
	if n1 < 0 || n1 > n {
		return nil, fmt.Errorf("core: TwoOpinionSplit n1=%d out of [0,%d]", n1, n)
	}
	return BlockOpinions(n, []int{n1, n - n1}, r)
}

// TwoOpinionSplitInto is TwoOpinionSplit writing into dst (len(dst)
// vertices), for allocation-free trial reuse with Scratch.Initial.
// The two-element counts slice still allocates; use a caller-held
// counts buffer with BlockOpinionsInto to avoid even that.
func TwoOpinionSplitInto(dst []int, n1 int, r *rand.Rand) ([]int, error) {
	n := len(dst)
	if n1 < 0 || n1 > n {
		return nil, fmt.Errorf("core: TwoOpinionSplit n1=%d out of [0,%d]", n1, n)
	}
	return BlockOpinionsInto(dst, []int{n1, n - n1}, r)
}

// ExtremesOpinions splits vertices between the two extreme opinions 1
// and k (half each, ties to k), the worst case for the reduction phase:
// the range must collapse through every intermediate value.
func ExtremesOpinions(n, k int, r *rand.Rand) []int {
	ops, err := BlockOpinions(n, extremeCounts(n, k), r)
	if err != nil {
		panic(err) // unreachable: counts sum to n by construction
	}
	return ops
}

// ExtremesOpinionsInto is ExtremesOpinions writing into dst (len(dst)
// vertices), for allocation-free trial reuse with Scratch.Initial. It
// consumes exactly the randomness of ExtremesOpinions.
func ExtremesOpinionsInto(dst []int, k int, r *rand.Rand) []int {
	ops, err := BlockOpinionsInto(dst, extremeCounts(len(dst), k), r)
	if err != nil {
		panic(err) // unreachable: counts sum to n by construction
	}
	return ops
}

func extremeCounts(n, k int) []int {
	counts := make([]int, k)
	counts[0] = n / 2
	counts[k-1] = n - n/2
	return counts
}

// PlantedSetOpinions assigns opinion inside to the given vertex set and
// outside to all others, for experiments that plant an unbalanced or
// structured minority (E4, E9).
func PlantedSetOpinions(n int, set []int, inside, outside int) ([]int, error) {
	ops := make([]int, n)
	for v := range ops {
		ops[v] = outside
	}
	for _, v := range set {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("core: PlantedSetOpinions vertex %d out of range", v)
		}
		ops[v] = inside
	}
	return ops, nil
}

package core

import (
	"fmt"
	"math/rand/v2"

	"div/internal/graph"
	"div/internal/obs"
	"div/internal/rng"
)

// StopCondition tells Run when to halt.
type StopCondition int

const (
	// UntilConsensus runs until one opinion remains (or MaxSteps).
	UntilConsensus StopCondition = iota
	// UntilTwoAdjacent runs until at most two adjacent opinions remain
	// — the end of the paper's reduction phase (Theorem 1).
	UntilTwoAdjacent
	// UntilMaxSteps runs for exactly MaxSteps steps.
	UntilMaxSteps
	// UntilThreeConsecutive runs until the opinion range spans at most
	// three consecutive values. This is the guaranteed absorbing band
	// of the load-balancing baseline ([5] proves convergence to three
	// consecutive values; with floor/ceil averaging, adjacent values
	// exchange nothing, so a sparse graph can stall there forever).
	UntilThreeConsecutive
)

// Config describes one run of an asynchronous voting process.
type Config struct {
	// Graph is the (connected) interaction graph. Required.
	Graph *graph.Graph
	// Initial is the initial opinion per vertex. Required.
	Initial []int
	// Process is the scheduler (vertex or edge). Default VertexProcess.
	Process Process
	// Rule is the update rule. Default DIV{}.
	Rule Rule
	// Engine selects the stepping strategy: EngineNaive (default)
	// simulates every scheduler invocation, EngineFast skip-samples idle
	// steps via discordance tracking (fast.go), EngineAuto picks
	// whichever is expected to be faster. All engines realize the exact
	// same process distribution.
	Engine Engine
	// Seed seeds the run's private PCG stream.
	Seed uint64
	// MaxSteps caps the run. 0 means 200·n² steps, far beyond the
	// o(n²) reduction plus O(n²) final-stage times on expanders.
	MaxSteps int64
	// Stop selects the halting condition. Default UntilConsensus.
	Stop StopCondition
	// Observer, when non-nil, is invoked every ObserveEvery steps (and
	// once at step 0) with the live state. Returning false aborts the
	// run early (Result.Aborted is set). The observer must treat the
	// state as read-only: all mutation goes through the engines, whose
	// stop-condition checks assume the support set only changes on
	// simulated steps.
	Observer func(s *State) bool
	// ObserveEvery is the observer period in steps. Default n. It also
	// sets the cadence of the Probe's step-batch and discordance
	// events.
	ObserveEvery int64
	// Probe, when non-nil, receives structured engine events: step
	// batches, hybrid engine switches, discordance-mass samples, stage
	// transitions, and the final resolution (package internal/obs). A
	// nil Probe costs nothing — emission sites reduce to one
	// predictable branch per simulated step — and a non-nil Probe never
	// consumes randomness or alters control flow, so the realized
	// trajectory of a seeded run is identical with and without it.
	Probe obs.Probe
	// TraceSupport records a Stage whenever the set of present opinions
	// changes (the paper's {1,2,5}→{1,2,4}→… evolution).
	TraceSupport bool
	// Scratch, when non-nil, supplies reusable per-worker state: the
	// run resets the scratch's State, FastState, and RNG in place
	// instead of allocating fresh ones, making repeated trials on the
	// same graph O(1) allocations each. The scratch must be bound to
	// the same Graph (NewScratch(cfg.Graph)) and must not be shared
	// across goroutines; a seeded run produces a byte-identical Result
	// with and without it.
	Scratch *Scratch
}

// Stage is one entry of the support trace: the set of opinions present
// from FromStep until the next stage.
type Stage struct {
	FromStep int64
	Opinions []int
}

// Result summarizes a run.
type Result struct {
	// Winner is the consensus opinion, or 0 with Consensus=false.
	Winner    int
	Consensus bool
	// Steps is the total number of scheduler invocations performed.
	Steps int64
	// ThreeStep is the first step at which at most three consecutive
	// opinions remained (-1 if never).
	ThreeStep int64
	// TwoAdjacentStep is the first step at which at most two adjacent
	// opinions remained — the paper's T (-1 if never).
	TwoAdjacentStep int64
	// MajorityStep is the first observed step at which some opinion's
	// multiplicity reached BlockConfig.MajorityFrac·n (-1 if never
	// reached or not tracked; blocked runs only — see MajorityFrac for
	// the observation granularity).
	MajorityStep int64
	// InitialAverage is S(0)/n.
	InitialAverage float64
	// InitialWeightedAverage is Σ π_v X_v(0) (= Z(0)/n).
	InitialWeightedAverage float64
	// WeightAtTwoAdjacent is the process-appropriate average when the
	// final stage began (c' in Lemma 5(ii); NaN if never reached).
	WeightAtTwoAdjacent float64
	// FinalMin and FinalMax bound the surviving opinions.
	FinalMin, FinalMax int
	// Aborted is set when the Observer stopped the run.
	Aborted bool
	// Stages is the support trace (nil unless Config.TraceSupport).
	Stages []Stage
}

// Run executes one voting process to its stopping condition.
func Run(cfg Config) (Result, error) {
	if cfg.Graph == nil {
		return Result{}, fmt.Errorf("core: Config.Graph is required")
	}
	var s *State
	var err error
	if cfg.Scratch != nil {
		s, err = cfg.Scratch.stateFor(cfg.Graph, cfg.Initial)
	} else {
		s, err = NewState(cfg.Graph, cfg.Initial)
	}
	if err != nil {
		return Result{}, err
	}
	rule := cfg.Rule
	if rule == nil {
		rule = DIV{}
	}
	sched, err := NewScheduler(s, cfg.Process)
	if err != nil {
		return Result{}, err
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		n := int64(s.N())
		maxSteps = 200 * n * n
	}
	observeEvery := cfg.ObserveEvery
	if observeEvery <= 0 {
		observeEvery = int64(s.N())
	}
	var r *rand.Rand
	if cfg.Scratch != nil {
		r = cfg.Scratch.Rand(cfg.Seed)
	} else {
		r = rng.New(cfg.Seed)
	}

	mode, fast, err := engineFor(cfg, s, rule)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ThreeStep:              -1,
		TwoAdjacentStep:        -1,
		MajorityStep:           -1,
		InitialAverage:         s.Average(),
		InitialWeightedAverage: s.WeightedAverage(),
		WeightAtTwoAdjacent:    nan(),
	}
	recordMilestones := func() {
		if res.ThreeStep < 0 && s.Range() <= 2 {
			res.ThreeStep = s.Steps()
		}
		if res.TwoAdjacentStep < 0 && s.Range() <= 1 {
			res.TwoAdjacentStep = s.Steps()
			res.WeightAtTwoAdjacent = sched.WeightAverage()
		}
	}
	recordMilestones()

	var stages []Stage
	recordStage := func() {
		if !cfg.TraceSupport {
			return
		}
		stages = append(stages, Stage{FromStep: s.Steps(), Opinions: s.Support(nil)})
	}
	recordStage()

	if cfg.Observer != nil && !cfg.Observer(s) {
		res.Aborted = true
	}

	done := func() bool { return stopMet(s, cfg.Stop) }

	env := &loopEnv{
		s:            s,
		scratch:      cfg.Scratch,
		sched:        sched,
		rule:         rule,
		r:            r,
		maxSteps:     maxSteps,
		observeEvery: observeEvery,
		observer:     cfg.Observer,
		probe:        cfg.Probe,
		nextEmit:     observeEvery,
		res:          &res,
		done:         done,
		onSupport: func() {
			recordMilestones()
			recordStage()
			if cfg.Probe != nil {
				cfg.Probe.Stage(obs.Stage{
					Step:        s.Steps(),
					Support:     s.SupportSize(),
					Min:         s.Min(),
					Max:         s.Max(),
					TwoAdjacent: s.Range() <= 1,
				})
			}
		},
	}
	switch mode {
	case stepFast:
		fast.loop(env, rule.(PairwiseRule))
	case stepHybrid:
		env.hybridLoop(rule.(PairwiseRule), cfg.Process)
	default:
		env.naiveLoop()
	}

	res.Steps = s.Steps()
	res.FinalMin, res.FinalMax = s.Min(), s.Max()
	if w, ok := s.Consensus(); ok {
		res.Winner = w
		res.Consensus = true
	}
	res.Stages = stages
	if cfg.Probe != nil {
		cfg.Probe.Done(obs.Done{
			Step:      res.Steps,
			Winner:    res.Winner,
			Consensus: res.Consensus,
			Aborted:   res.Aborted,
		})
	}
	return res, nil
}

// loopEnv carries the per-run context shared by the stepping engines:
// the naive per-invocation loop below and the skip-sampling fast loop
// in fast.go. Both loops have identical observable behaviour — the same
// trajectory law, stopping times, milestone recording, and observer
// call sites.
type loopEnv struct {
	s            *State
	scratch      *Scratch // nil = allocate engine state per run
	sched        *Scheduler
	rule         Rule
	r            *rand.Rand
	maxSteps     int64
	observeEvery int64
	observer     func(*State) bool
	probe        obs.Probe // nil = no instrumentation, zero overhead
	batch        obs.StepBatch
	nextEmit     int64 // next step boundary for batch/discordance events
	res          *Result
	done         func() bool
	onSupport    func() // milestone + stage recording on support change
	// fastPre, when non-nil, is a ready-to-Reset FastState the hybrid
	// loop must use for its first naive→fast entry instead of building
	// one through newFastStateFor. The blocked kernel's hand-off path
	// (block.go) sets it so a whole block of trials shares one arena
	// FastState instead of allocating O(arcs) per trial.
	fastPre *FastState
}

// stopMet evaluates a stopping condition against the current state.
// Every condition is a predicate on the opinion support set, which is
// why engines only re-check it when SupportVersion changes.
func stopMet(s *State, stop StopCondition) bool {
	switch stop {
	case UntilConsensus:
		_, ok := s.Consensus()
		return ok
	case UntilTwoAdjacent:
		return s.Range() <= 1
	case UntilThreeConsecutive:
		return s.Range() <= 2
	default: // UntilMaxSteps: only the step cap stops the run
		return false
	}
}

// newFast builds (or reuses) the FastState for the hybrid loop's next
// fast entry: a pre-installed arena state (fastPre, consumed once) when
// the blocked kernel handed this run off, the scratch's cached one
// otherwise. The returned state is Reset against s's current opinions.
func (e *loopEnv) newFast(s *State, proc Process) (*FastState, error) {
	if f := e.fastPre; f != nil {
		e.fastPre = nil
		f.Reset()
		return f, nil
	}
	return newFastStateFor(e.scratch, s, proc)
}

// flushBatch emits the step batch accumulated since the last flush,
// attributed to the given engine regime, and starts a new batch at the
// current step. No-op when no probe is attached or no steps elapsed.
func (e *loopEnv) flushBatch(regime string) {
	to := e.s.Steps()
	if e.probe == nil || to == e.batch.FromStep {
		return
	}
	e.batch.ToStep = to
	e.batch.Engine = regime
	e.probe.StepBatch(e.batch)
	e.batch = obs.StepBatch{FromStep: to}
}

// advanceEmit aligns the next probe-event boundary past the current
// step (multiples of observeEvery, the same cadence observers use).
func (e *loopEnv) advanceEmit() {
	e.nextEmit = (e.s.Steps()/e.observeEvery + 1) * e.observeEvery
}

// naiveLoop is the reference engine: every scheduler invocation is
// simulated individually, including the idle ones.
//
// Two hot-loop refinements keep the per-step cost at a few RNG draws
// plus the rule application, without changing observable behaviour:
// the stop condition is only re-evaluated when the support set changed
// (every StopCondition is a predicate on the support set — range,
// consensus — so it can only flip on a SupportVersion bump; observers
// are read-only by the Config.Observer contract), and the default DIV
// rule is dispatched statically instead of through the Rule interface.
func (e *loopEnv) naiveLoop() {
	s := e.s
	if e.done() {
		return
	}
	prevVersion := s.SupportVersion()
	_, isDIV := e.rule.(DIV)
	for !e.res.Aborted && s.Steps() < e.maxSteps {
		v, w := e.sched.Pair(e.r)
		s.countStep()
		if e.probe != nil {
			if s.opinions[v] != s.opinions[w] {
				e.batch.Active++
			} else {
				e.batch.Idle++
			}
			if s.Steps() >= e.nextEmit {
				e.flushBatch(obs.RegimeNaive)
				e.advanceEmit()
			}
		}
		if isDIV {
			DIV{}.Step(s, e.r, v, w)
		} else {
			e.rule.Step(s, e.r, v, w)
		}
		supportChanged := s.SupportVersion() != prevVersion
		if supportChanged {
			e.onSupport()
			prevVersion = s.SupportVersion()
		}
		if e.observer != nil && s.Steps()%e.observeEvery == 0 {
			if !e.observer(s) {
				e.res.Aborted = true
			}
		}
		if supportChanged && e.done() {
			break
		}
	}
	e.flushBatch(obs.RegimeNaive)
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// RunMany executes trials independent runs of cfg with per-trial
// derived seeds and returns every result. It is a convenience for
// tests; the experiment harness in internal/sim adds parallelism and
// aggregation on top of Run.
func RunMany(cfg Config, trials int) ([]Result, error) {
	results := make([]Result, trials)
	for t := 0; t < trials; t++ {
		c := cfg
		c.Seed = rng.DeriveSeed(cfg.Seed, uint64(t))
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("core: trial %d: %w", t, err)
		}
		results[t] = res
	}
	return results, nil
}

package core

import (
	"math"
	"reflect"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
	"div/internal/stats"
)

// replayTrial runs one seeded trial, on a fresh state (sc == nil) or on
// the given scratch, with the support trace enabled so the returned
// Result pins the whole trajectory's support history, not just the
// endpoint.
func replayTrial(t *testing.T, g *graph.Graph, proc Process, engine Engine, seed uint64, sc *Scratch) Result {
	t.Helper()
	var init []int
	if sc != nil {
		init = UniformOpinionsInto(sc.Initial(), 5, sc.Rand(seed))
	} else {
		init = UniformOpinions(g.N(), 5, rng.New(seed))
	}
	res, err := Run(Config{
		Graph:        g,
		Initial:      init,
		Process:      proc,
		Engine:       engine,
		Seed:         rng.SplitMix64(seed),
		MaxSteps:     4 << 20,
		TraceSupport: true,
		Scratch:      sc,
	})
	if err != nil {
		t.Fatalf("%v/%v: %v", proc, engine, err)
	}
	return res
}

// TestScratchReplayByteIdentical is the reuse contract test: a seeded
// run on a Scratch dirtied by an unrelated earlier trial must reproduce
// the fresh-allocation Result exactly — same winner, same step counts,
// same support trace — for every engine and process. The hybrid knobs
// are shrunk so EngineAuto genuinely crosses the naive↔fast boundary
// (and therefore exercises the cached FastState Reset path); not
// parallel for that reason.
func TestScratchReplayByteIdentical(t *testing.T) {
	oldWindow, oldRatio := hybridWindow, hybridCostRatio
	hybridWindow, hybridCostRatio = 64, 1
	defer func() { hybridWindow, hybridCostRatio = oldWindow, oldRatio }()

	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			for _, engine := range []Engine{EngineNaive, EngineFast, EngineAuto} {
				seed := rng.DeriveSeed(0x5c7a, uint64(len(name))*131+uint64(g.N())*7+uint64(proc)*3+uint64(engine))
				fresh := replayTrial(t, g, proc, engine, seed, nil)
				sc := NewScratch(g)
				replayTrial(t, g, proc, engine, rng.DeriveSeed(seed, 0xd127), sc) // dirty the scratch
				reused := replayTrial(t, g, proc, engine, seed, sc)
				if !reflect.DeepEqual(fresh, reused) {
					t.Errorf("%s/%v/%v: reused-scratch result diverged\nfresh:  %+v\nreused: %+v",
						name, proc, engine, fresh, reused)
				}
			}
		}
	}
}

// TestScratchGraphMismatch: a scratch is bound to its graph; wiring it
// into a run on a different graph must fail loudly, not corrupt state.
func TestScratchGraphMismatch(t *testing.T) {
	sc := NewScratch(graph.Cycle(8))
	g := graph.Path(8)
	_, err := Run(Config{
		Graph:   g,
		Initial: UniformOpinions(g.N(), 3, rng.New(1)),
		Process: VertexProcess,
		Seed:    2,
		Scratch: sc,
	})
	if err == nil {
		t.Fatal("Run accepted a Scratch bound to a different graph")
	}
}

// allocGraphs are the allocation-regression workloads: a star (its
// irregular degrees force the bucketed vertex sampler), a complete
// graph (implicit-adjacency scheduler), and a cycle (regular CSR path).
func allocGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"star":     graph.Star(64),
		"complete": graph.Complete(32),
		"cycle":    graph.Cycle(48),
	}
}

// TestScratchSteadyStateStepAllocs is the tentpole's acceptance test:
// with a reused Scratch and no probe, the steady-state step cost of
// every engine × process is exactly zero allocations. Measured as the
// difference between fixed-length runs of two lengths, which cancels
// the per-trial constant.
func TestScratchSteadyStateStepAllocs(t *testing.T) {
	if invariantChecksEnabled {
		t.Skip("divtestinvariants re-derives the index (and allocates) on every update")
	}
	const short, long = 4096, 32768
	for name, g := range allocGraphs() {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			for _, engine := range []Engine{EngineNaive, EngineFast, EngineAuto} {
				sc := NewScratch(g)
				seed := rng.DeriveSeed(0xa110c, uint64(len(name))+uint64(proc)*3+uint64(engine))
				var trialErr error
				runFor := func(maxSteps int64) float64 {
					return testing.AllocsPerRun(3, func() {
						init := UniformOpinionsInto(sc.Initial(), 5, sc.Rand(seed))
						if _, err := Run(Config{
							Graph:    g,
							Initial:  init,
							Process:  proc,
							Engine:   engine,
							Stop:     UntilMaxSteps,
							MaxSteps: maxSteps,
							Seed:     rng.SplitMix64(seed),
							Scratch:  sc,
						}); err != nil && trialErr == nil {
							trialErr = err
						}
					})
				}
				aShort := runFor(short)
				aLong := runFor(long)
				if trialErr != nil {
					t.Fatalf("%s/%v/%v: %v", name, proc, engine, trialErr)
				}
				if aLong != aShort {
					t.Errorf("%s/%v/%v: %.1f allocs over %d extra steps (%.0f@%d vs %.0f@%d), want 0",
						name, proc, engine, aLong-aShort, long-short, aLong, long, aShort, short)
				}
			}
		}
	}
}

// TestScratchReusedTrialAllocBound: a whole consensus trial on a warm
// Scratch performs O(1) allocations — a small constant independent of
// n, m, and the trial length (fresh construction is O(n + m)).
func TestScratchReusedTrialAllocBound(t *testing.T) {
	if invariantChecksEnabled {
		t.Skip("divtestinvariants re-derives the index (and allocates) on every update")
	}
	const bound = 32.0
	for name, g := range allocGraphs() {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			for _, engine := range []Engine{EngineNaive, EngineFast, EngineAuto} {
				sc := NewScratch(g)
				seed := rng.DeriveSeed(0x7a1a1, uint64(len(name))+uint64(proc)*3+uint64(engine))
				trial := func() {
					init := UniformOpinionsInto(sc.Initial(), 4, sc.Rand(seed))
					if _, err := Run(Config{
						Graph:   g,
						Initial: init,
						Process: proc,
						Engine:  engine,
						Seed:    rng.SplitMix64(seed),
						Scratch: sc,
					}); err != nil {
						t.Errorf("%s/%v/%v: %v", name, proc, engine, err)
					}
				}
				trial() // warm the scratch
				if allocs := testing.AllocsPerRun(5, trial); allocs > bound {
					t.Errorf("%s/%v/%v: %.0f allocs per reused trial, want ≤ %.0f",
						name, proc, engine, allocs, bound)
				}
			}
		}
	}
}

// TestBucketedSamplerDrawBound pins the degree-bucketed sampler's two
// promises on the star — the old tail-rejection sampler's bad case:
// (i) the conditional law P[tail = v] ∝ diff(v)/d(v) is exact, and
// (ii) the draw cost is O(1) attempts. On a power-of-two star every
// unit equals its bucket bound, so every attempt accepts and the
// attempt count is exactly the sample count.
func TestBucketedSamplerDrawBound(t *testing.T) {
	const n, samples = 513, 20000
	g := graph.Star(n) // hub degree 512: units 1 (hub) and 512 (leaves)
	init := make([]int, n)
	init[0] = 2
	for v := 1; v < n; v++ {
		init[v] = 1 // every edge discordant
	}
	s, err := NewState(g, init)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFastState(s, VertexProcess)
	if err != nil {
		t.Fatal(err)
	}
	if !f.bucketed {
		t.Fatal("star vertex process did not select the bucketed sampler")
	}
	r := rng.New(0x57a2)
	hub := 0
	for i := 0; i < samples; i++ {
		v, w := f.sampleDiscordant(r)
		if v == 0 {
			hub++
		}
		if v != 0 && w != 0 {
			t.Fatalf("sampled non-edge (%d,%d)", v, w)
		}
	}
	if f.draws != samples {
		t.Errorf("power-of-two star: %d attempts for %d samples, want equal", f.draws, samples)
	}
	// P[tail = hub] = Σ_{hub arcs} unit_hub / num = 512·1/(512·513) = 1/513.
	if z := stats.BinomialZ(hub, samples, 1.0/float64(n)); math.Abs(z) > 5 {
		t.Errorf("hub-tail frequency %d/%d vs exact %.5f: z = %.2f", hub, samples, 1.0/float64(n), z)
	}
}

// TestBucketedSamplerRejectionLaw exercises the within-bucket rejection
// branch: K₄ minus an edge puts degrees 2 and 3 in the same bucket
// (units 3 and 2 against bound 3), so degree-3 tails reject with
// probability 1/3. With all opinions distinct every neighbour is
// discordant and the conditional law collapses to P[tail = v] = 1/n
// exactly; expected attempts per draw are 1.25.
func TestBucketedSamplerRejectionLaw(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 0, V: 2},
	})
	s, err := NewState(g, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFastState(s, VertexProcess)
	if err != nil {
		t.Fatal(err)
	}
	if !f.bucketed {
		t.Fatal("irregular graph did not select the bucketed sampler")
	}
	const samples = 20000
	r := rng.New(0x4e1)
	var tails [4]int
	for i := 0; i < samples; i++ {
		v, _ := f.sampleDiscordant(r)
		tails[v]++
	}
	for v, c := range tails {
		if z := stats.BinomialZ(c, samples, 0.25); math.Abs(z) > 5 {
			t.Errorf("tail %d frequency %d/%d vs exact 0.25: z = %.2f", v, c, samples, z)
		}
	}
	if f.draws > 2*samples {
		t.Errorf("%d attempts for %d samples, want ≤ %d (expected 1.25·samples)",
			f.draws, samples, 2*samples)
	}
}

// BenchmarkStarVertexFastStep measures the bucketed sampler's per-step
// cost on a large star under the vertex process — the workload whose
// old rejection loop degenerated with the degree ratio. Fixed-length
// runs on a reused scratch isolate the steady-state step cost.
func BenchmarkStarVertexFastStep(b *testing.B) {
	g := graph.Star(8192)
	sc := NewScratch(g)
	const maxSteps = 1 << 15
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := rng.DeriveSeed(0x57a8, uint64(i))
		init := UniformOpinionsInto(sc.Initial(), 4, sc.Rand(seed))
		res, err := Run(Config{
			Graph:    g,
			Initial:  init,
			Process:  VertexProcess,
			Engine:   EngineFast,
			Stop:     UntilMaxSteps,
			MaxSteps: maxSteps,
			Seed:     rng.SplitMix64(seed),
			Scratch:  sc,
		})
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.StopTimer()
	if steps > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(steps), "ns/step")
	}
}

package core

import (
	"math"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
)

func TestRunSyncValidation(t *testing.T) {
	if _, err := RunSync(SyncConfig{}); err == nil {
		t.Error("nil graph accepted")
	}
	g := graph.Complete(3)
	if _, err := RunSync(SyncConfig{Graph: g, Initial: []int{1}}); err == nil {
		t.Error("short initial accepted")
	}
	if _, err := RunSync(SyncConfig{Graph: g, Initial: []int{1, 2, 3}, Lazy: 1}); err == nil {
		t.Error("Lazy = 1 accepted")
	}
	if _, err := RunSync(SyncConfig{Graph: g, Initial: []int{1, 2, 3}, Lazy: -0.1}); err == nil {
		t.Error("negative Lazy accepted")
	}
	iso := graph.MustFromEdges(2, nil)
	if _, err := RunSync(SyncConfig{Graph: iso, Initial: []int{1, 2}}); err == nil {
		t.Error("isolated vertices accepted")
	}
}

func TestRunSyncK2Oscillates(t *testing.T) {
	// Pure synchrony on K_2 with adjacent opinions is the canonical
	// period-2 orbit: the vertices swap forever.
	g := graph.Complete(2)
	res, err := RunSync(SyncConfig{
		Graph:     g,
		Initial:   []int{1, 2},
		Lazy:      0,
		Seed:      1,
		MaxRounds: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consensus {
		t.Fatal("pure synchrony on K_2 reached consensus")
	}
	if !res.Oscillating {
		t.Error("period-2 orbit not detected")
	}
	if res.Rounds != 500 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

func TestRunSyncLazyBreaksOscillation(t *testing.T) {
	g := graph.Complete(2)
	res, err := RunSync(SyncConfig{
		Graph:   g,
		Initial: []int{1, 2},
		Lazy:    0.5,
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatalf("lazy synchronous DIV did not converge (rounds %d)", res.Rounds)
	}
	if res.Winner != 1 && res.Winner != 2 {
		t.Errorf("winner %d", res.Winner)
	}
}

func TestRunSyncImmediateConsensus(t *testing.T) {
	g := graph.Complete(4)
	res, err := RunSync(SyncConfig{Graph: g, Initial: []int{5, 5, 5, 5}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus || res.Winner != 5 || res.Rounds != 0 {
		t.Errorf("immediate consensus: %+v", res)
	}
}

func TestRunSyncConvergesNearAverage(t *testing.T) {
	// Lazy synchronous DIV on K_n should still land near the initial
	// average (the per-round expected drift of S is zero on regular
	// graphs).
	const n, trials = 90, 40
	g := graph.Complete(n)
	r := rng.New(4)
	init, err := BlockOpinions(n, []int{30, 0, 30, 0, 30}, r) // c = 3
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	for trial := 0; trial < trials; trial++ {
		res, err := RunSync(SyncConfig{
			Graph:   g,
			Initial: init,
			Lazy:    0.3,
			Seed:    rng.DeriveSeed(5, uint64(trial)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus {
			t.Fatalf("trial %d: no consensus after %d rounds", trial, res.Rounds)
		}
		if res.Winner >= 2 && res.Winner <= 4 {
			good++
		}
	}
	if good < trials*3/4 {
		t.Errorf("only %d/%d runs landed within ±1 of the average 3", good, trials)
	}
}

func TestRunSyncRangeNeverWidens(t *testing.T) {
	g := graph.Cycle(20)
	r := rng.New(6)
	init := UniformOpinions(20, 6, r)
	res, err := RunSync(SyncConfig{Graph: g, Initial: init, Lazy: 0.2, Seed: 7, MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	min, max := init[0], init[0]
	for _, x := range init {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if res.FinalMin < min || res.FinalMax > max {
		t.Errorf("range widened: [%d,%d] from [%d,%d]", res.FinalMin, res.FinalMax, min, max)
	}
}

func TestRunSyncDeterministic(t *testing.T) {
	g := graph.Complete(20)
	r := rng.New(8)
	init := UniformOpinions(20, 4, r)
	cfg := SyncConfig{Graph: g, Initial: init, Lazy: 0.25, Seed: 9}
	a, err := RunSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Winner != b.Winner || a.Rounds != b.Rounds || a.Updates != b.Updates {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunSyncAverageDriftSmall(t *testing.T) {
	// On a regular graph the per-round expected change of S is zero;
	// over many trials the mean final S should track the initial S.
	const n, trials = 64, 200
	g := graph.Torus(8, 8)
	r := rng.New(10)
	init := UniformOpinions(n, 5, r)
	var s0 int
	for _, x := range init {
		s0 += x
	}
	var final float64
	for trial := 0; trial < trials; trial++ {
		res, err := RunSync(SyncConfig{
			Graph:   g,
			Initial: init,
			Lazy:    0.3,
			Seed:    rng.DeriveSeed(11, uint64(trial)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consensus {
			t.Fatalf("trial %d did not converge", trial)
		}
		final += float64(res.Winner)
	}
	meanWinner := final / trials
	c := float64(s0) / n
	if math.Abs(meanWinner-c) > 0.5 {
		t.Errorf("mean winner %.3f vs initial average %.3f", meanWinner, c)
	}
}

package core

import (
	"fmt"
	"math/rand/v2"
)

// Process selects how the updating vertex v and observed neighbour w
// are chosen at each asynchronous step (paper §1, "Definition of
// process").
type Process int

const (
	// VertexProcess chooses v uniformly from V and w uniformly from
	// N(v): P[v chooses w] = 1/(n·d(v)). Its conserved weight is the
	// degree-biased Z(t).
	VertexProcess Process = iota
	// EdgeProcess chooses a uniform edge and a uniform endpoint as v:
	// P[v chooses w] = 1/2m. Its conserved weight is the plain sum
	// S(t).
	EdgeProcess
)

// String implements fmt.Stringer.
func (p Process) String() string {
	switch p {
	case VertexProcess:
		return "vertex"
	case EdgeProcess:
		return "edge"
	default:
		return fmt.Sprintf("Process(%d)", int(p))
	}
}

// Scheduler draws ordered pairs (v, w) for a fixed graph. Construct one
// per run with NewScheduler; it precomputes whatever the process needs
// for O(1) draws.
type Scheduler struct {
	process  Process
	n        int
	arcs     int
	arcTails []int32
	heads    []int32
	complete bool // K_n: draw neighbours arithmetically, no CSR traffic
	s        *State
}

// NewScheduler prepares a pair sampler for the given process over the
// state's graph. The graph must have minimum degree ≥ 1 (every vertex
// needs a neighbour to observe). The arc arrays are the graph's shared
// storage (ArcIndex), so construction allocates nothing beyond the
// Scheduler itself.
func NewScheduler(s *State, p Process) (*Scheduler, error) {
	g := s.Graph()
	if g == nil {
		return nil, fmt.Errorf("core: scheduler requires a materialized CSR graph (implicit topology %q)", s.Topology().Name())
	}
	if g.MinDegree() == 0 {
		return nil, fmt.Errorf("core: %v process requires min degree >= 1", p)
	}
	sc := &Scheduler{process: p, n: g.N(), complete: g.IsComplete(), s: s}
	if p == EdgeProcess && !sc.complete {
		sc.arcs = int(g.DegreeSum())
		sc.arcTails = g.ArcTails()
		sc.heads = g.Arcs()
	}
	return sc, nil
}

// Pair draws one scheduled pair (v, w) according to the process. On
// complete graphs the neighbour is computed arithmetically — K_n's
// sorted neighbour list of v is 0..n-1 with v removed, so the i-th
// neighbour is i + (i ≥ v) — which consumes exactly the same random
// variates as the CSR path and returns exactly the same pair, but
// touches no adjacency memory (on large K_n the CSR lookup is a cache
// miss per draw and dominates the step cost).
func (sc *Scheduler) Pair(r *rand.Rand) (v, w int) {
	switch sc.process {
	case VertexProcess:
		v = r.IntN(sc.n)
		if sc.complete {
			w = r.IntN(sc.n - 1)
			if w >= v {
				w++
			}
			return v, w
		}
		g := sc.s.Graph()
		w = g.Neighbor(v, r.IntN(g.Degree(v)))
		return v, w
	case EdgeProcess:
		if sc.complete {
			arc := r.IntN(sc.n * (sc.n - 1))
			d := sc.n - 1
			v = arc / d
			w = arc % d
			if w >= v {
				w++
			}
			return v, w
		}
		arc := r.IntN(sc.arcs)
		return int(sc.arcTails[arc]), int(sc.heads[arc])
	default:
		panic(fmt.Sprintf("core: unknown process %v", sc.process))
	}
}

// Weight returns the process's conserved raw weight at the current
// state: S_raw = Σ X_v for the edge process, Σ d(v)X_v for the vertex
// process (2m·Z/n in the paper's normalization).
func (sc *Scheduler) Weight() int64 {
	if sc.process == EdgeProcess {
		return sc.s.Sum()
	}
	return sc.s.DegSum()
}

// WeightAverage returns the process-appropriate average opinion: the
// simple average S/n for the edge process, the degree-weighted average
// Σ π_v X_v for the vertex process. Theorem 2 predicts the consensus
// value is the floor or ceiling of this quantity at t=0.
func (sc *Scheduler) WeightAverage() float64 {
	if sc.process == EdgeProcess {
		return sc.s.Average()
	}
	return sc.s.WeightedAverage()
}

package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"div/internal/graph"
	"div/internal/obs"
)

// This file implements the fast stepping engine. The observation behind
// it is the paper's own: once opinions are locally similar, almost
// every scheduler invocation draws a pair (v, w) with X_v == X_w and
// changes nothing — on expanders the Θ(n²)-step final stage is
// dominated by exactly these idle interactions. For any PairwiseRule
// the state can only change on a *discordant* draw (X_v ≠ X_w), the
// idle draws are exchangeable, and the number of idle draws before the
// next discordant one is Geometric(p) with
//
//	p = P[discordant draw | state]
//	  = D/2m                   (edge process, D = #discordant arcs)
//	  = (1/n) Σ_v diff(v)/d(v) (vertex process, diff(v) = #discordant
//	                            neighbours of v)
//
// so the engine samples that geometric length directly, advances the
// step counter past the idle steps without simulating them, and then
// draws the active pair from the exact conditional law
//
//	P[(v,w) | discordant] ∝ 1/2m       (edge)   — uniform discordant arc
//	P[(v,w) | discordant] ∝ 1/(n·d(v)) (vertex) — discordant arc ∝ 1/d(v)
//
// which preserves the joint distribution of the full trajectory,
// including the stopping times (support can only change on active
// steps) and the observer call sites (skips are bounded by the next
// ObserveEvery boundary, and the truncated geometric is memoryless, so
// re-drawing after an idle boundary visit is lawful). DESIGN.md §6
// gives the argument in full.
//
// Bookkeeping is a swap-remove array of the currently discordant
// *edges* (each stored once, as its canonical arc — the direction with
// tail < head) with a position index, so an opinion change repairs it
// in O(d(v)) with O(1) work per incident edge — no log factor. The
// conditional pair draw picks a uniform discordant edge and orients it
// with a fair coin, which is exactly the uniform discordant *arc* for
// the edge process; on regular graphs the vertex process's conditional
// law coincides with it (all degrees equal), so the same single draw
// serves. On irregular graphs arc (v,w) must carry probability
// ∝ 1/d(v), realized by a *degree-bucketed* draw over the discordant
// arcs (both orientations listed): arcs are partitioned by
// b = ⌊log2 d(tail)⌋, a linear walk over the ≤ 33 exact integer bucket
// masses picks a bucket, a uniform arc is drawn inside it, and a
// single rejection against the bucket's weight bound L>>b (every unit
// L/d with d ∈ [2^b, 2^(b+1)) is an integer in (L/2^(b+1), L/2^b], so
// it accepts with probability > 1/2) corrects within-bucket degree
// variation. Expected draw cost is therefore O(log d_max) regardless
// of the degree sequence — the old tail-rejection loop cost
// d_max/d_min expected redraws, degenerating on stars and power-law
// graphs. Everything except the geometric length uses exact integer
// arithmetic: the active-mass numerator scales 1/d(v) by L = lcm of
// the distinct degrees, so no floating-point bias enters the
// conditional law. The geometric length itself is drawn by float64
// inversion, whose relative error (≲2⁻⁵²) is far below the resolution
// of any statistical test.
//
// All structural arrays (tails, reverse arcs, units, degree buckets)
// come from the graph's shared ArcIndex, so constructing a FastState
// allocates only the per-trial mutable arrays, and Reset() reuses even
// those.

// FastState augments a State with an incrementally maintained index of
// the discordant edges: the list of all currently discordant edges
// (keyed by canonical arc) for O(1) sampling, a position index, and
// the exact rational active mass. All bookkeeping is updated in
// O(d(v)) when X_v changes and is untouched by idle steps.
type FastState struct {
	s    *State
	g    *graph.Graph
	idx  *graph.ArcIndex
	proc Process

	adj   []int32 // adj[a]: head vertex of arc a (the graph's own storage)
	tails []int32 // tails[a]: tail vertex of arc a (shared ArcIndex)
	rev   []int32 // rev[a]: index of the reverse arc of a (shared ArcIndex)

	list []int32 // discordant edges as canonical arcs (tail < head), unordered
	pos  []int32 // pos[a]: index of canonical arc a in list, or -1

	unit []int64 // active-mass weight of arcs with tail v: 1 (edge) or L/d(v) (vertex)
	num  int64   // Σ_{discordant arcs a} unit[tail(a)]
	den  int64   // P[active] = num/den: 2m (edge) or n·L (vertex)

	// Degree-bucketed discordant-arc structure, maintained only for the
	// vertex process on irregular graphs (bucketed == true). Both
	// orientations of every discordant edge are listed, arc a under
	// bucket vb[tails[a]].
	bucketed bool
	vb       []uint8   // vb[v] = ⌊log2 d(v)⌋ (shared ArcIndex)
	bpos     []int32   // bpos[a]: index of arc a in its bucket list, or -1
	barc     [][]int32 // barc[b]: discordant arcs whose tail is in bucket b
	bmass    []int64   // bmass[b] = Σ_{a ∈ barc[b]} unit[tails[a]]
	bub      []int64   // bub[b] = L>>b: per-bucket weight upper bound
	draws    int64     // sampler draw attempts, flushed to sampler_bucket_draws_total

	countFn func() int64 // O(1) discordant-edge count for State.DiscordantEdges
}

// maxDegreeLCM bounds the least common multiple of the distinct degrees
// for the vertex process's exact integer weights: the active-mass
// numerator is at most 2m·L/d_min ≤ n²·L, which must stay inside int64.
// It aliases the graph package's cap, where the units are computed.
const maxDegreeLCM = graph.MaxDegreeLCM

// bucketDrawsTotal counts sampler draw attempts (including rejected
// ones) of the degree-bucketed discordant sampler across all runs.
var bucketDrawsTotal = obs.Default.Counter("sampler_bucket_draws_total")

// NewFastState builds the discordance index for s under the given
// process. The arc-level structure (tails, reverse arcs, degree LCM,
// unit weights, degree buckets) comes from the graph's shared
// ArcIndex, so only the mutable per-trial arrays are allocated here.
// It errors when the vertex process's degree-lcm scaling would
// overflow (wildly irregular graphs); callers fall back to the naive
// engine in that case.
func NewFastState(s *State, proc Process) (*FastState, error) {
	g := s.Graph()
	if g == nil {
		return nil, fmt.Errorf("core: fast engine requires a materialized CSR graph (implicit topology %q)", s.Topology().Name())
	}
	if s.opb != nil {
		return nil, fmt.Errorf("core: fast engine does not support the compact opinion representation")
	}
	idx := g.ArcIndex()
	arcs := int(g.DegreeSum())
	f := &FastState{
		s:     s,
		g:     g,
		idx:   idx,
		proc:  proc,
		adj:   g.Arcs(),
		tails: idx.Tails(),
		rev:   idx.Rev(),
		pos:   make([]int32, arcs),
	}
	switch proc {
	case EdgeProcess:
		f.unit = idx.UnitOnes()
		f.den = g.DegreeSum()
	case VertexProcess:
		units, lcm, ok := idx.VertexUnits()
		if !ok {
			return nil, fmt.Errorf("core: fast engine: vertex-process degree lcm exceeds %d on this degree sequence; use the auto engine, which falls back to naive stepping", maxDegreeLCM)
		}
		f.unit = units
		f.den = int64(g.N()) * lcm
		if !g.IsRegular() {
			f.bucketed = true
			f.vb = idx.DegreeBuckets()
			nb := 0
			for _, b := range f.vb {
				if int(b)+1 > nb {
					nb = int(b) + 1
				}
			}
			f.bpos = make([]int32, arcs)
			f.barc = make([][]int32, nb)
			f.bmass = make([]int64, nb)
			f.bub = make([]int64, nb)
			for b := range f.bub {
				f.bub[b] = lcm >> uint(b)
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown process %v", proc)
	}
	f.countFn = func() int64 { return int64(len(f.list)) }
	f.Reset()
	return f, nil
}

// attachDiscordance makes the wrapped State's DiscordantEdges read the
// index's exact O(1) count. Only valid while every opinion update goes
// through f.SetOpinion; detachDiscordance must be called before the
// hybrid engine resumes naive stepping (which bypasses the index and
// lets it go stale).
func (f *FastState) attachDiscordance() { f.s.discordFn = f.countFn }

// detachDiscordance reverts State.DiscordantEdges to the O(m) recount.
func (f *FastState) detachDiscordance() { f.s.discordFn = nil }

// DiscordantEdges returns the exact number of currently discordant
// edges maintained by the index.
func (f *FastState) DiscordantEdges() int64 { return int64(len(f.list)) }

// rebind repoints the index at another State over the same graph. The
// blocked kernel's arena keeps ONE FastState per process and lends it
// to whichever trial row is being handed off to the sequential engine
// — the structural arrays (tails, rev, units) depend only on the graph,
// and a Reset after rebinding rebuilds everything opinion-dependent.
// The caller must not leave a stale discordance hook on the previous
// state (State.ResetTo clears it; detachDiscordance does too).
func (f *FastState) rebind(s *State) {
	if s.Graph() != f.g {
		panic("core: FastState.rebind across graphs")
	}
	f.s = s
}

// Reset rebuilds the discordant-arc list, bucket structure, and active
// mass against the wrapped State's *current* opinions, reusing every
// array — O(arcs) with no allocation in steady state. The hybrid
// engine calls this when re-entering fast mode after a naive stretch
// during which the index went stale; Scratch reuse calls it after
// ResetTo installs a fresh initial configuration.
func (f *FastState) Reset() {
	f.list = f.list[:0]
	f.num = 0
	if f.bucketed {
		for b := range f.barc {
			f.barc[b] = f.barc[b][:0]
			f.bmass[b] = 0
		}
		for a := range f.bpos {
			f.bpos[a] = -1
		}
	}
	for a := range f.adj {
		u, w := f.tails[a], f.adj[a]
		if u < w && f.s.opinions[u] != f.s.opinions[w] {
			f.insert(int32(a))
		} else {
			f.pos[a] = -1
		}
	}
}

// State returns the wrapped State.
func (f *FastState) State() *State { return f.s }

// ActiveMass returns the probability that one scheduler invocation is
// active (draws a discordant pair) as the exact rational num/den.
func (f *FastState) ActiveMass() (num, den int64) {
	return f.num, f.den
}

// insert adds the edge with canonical arc a to the discordant list.
// The edge contributes both of its arcs' weights to the active mass,
// and both arcs join their tails' degree buckets when bucketing is on.
func (f *FastState) insert(a int32) {
	f.pos[a] = int32(len(f.list))
	f.list = append(f.list, a)
	u, w := f.tails[a], f.adj[a]
	f.num += f.unit[u] + f.unit[w]
	if f.bucketed {
		f.bucketInsert(a, u)
		f.bucketInsert(f.rev[a], w)
	}
}

// remove deletes the edge with canonical arc a by swap-remove.
func (f *FastState) remove(a int32) {
	p := f.pos[a]
	last := f.list[len(f.list)-1]
	f.list[p] = last
	f.pos[last] = p
	f.list = f.list[:len(f.list)-1]
	f.pos[a] = -1
	u, w := f.tails[a], f.adj[a]
	f.num -= f.unit[u] + f.unit[w]
	if f.bucketed {
		f.bucketRemove(a, u)
		f.bucketRemove(f.rev[a], w)
	}
}

// bucketInsert files arc a (with the given tail) under its tail's
// degree bucket.
func (f *FastState) bucketInsert(a, tail int32) {
	b := f.vb[tail]
	f.bpos[a] = int32(len(f.barc[b]))
	f.barc[b] = append(f.barc[b], a)
	f.bmass[b] += f.unit[tail]
}

// bucketRemove removes arc a (with the given tail) from its bucket by
// swap-remove.
func (f *FastState) bucketRemove(a, tail int32) {
	b := f.vb[tail]
	lst := f.barc[b]
	p := f.bpos[a]
	last := lst[len(lst)-1]
	lst[p] = last
	f.bpos[last] = p
	f.barc[b] = lst[:len(lst)-1]
	f.bpos[a] = -1
	f.bmass[b] -= f.unit[tail]
}

// SetOpinion sets X_v = x through the wrapped State and repairs the
// discordant-edge index in O(d(v)): each incident edge toggles in and
// out of the list as the endpoints' relation changes.
func (f *FastState) SetOpinion(v, x int) {
	old := f.s.opinions[v]
	if int32(x) == old {
		return
	}
	f.s.SetOpinion(v, x)
	nx := f.s.opinions[v]
	nb := f.g.Neighbors(v)
	baseV := f.idx.FirstArc(v)
	for i, wi := range nb {
		xw := f.s.opinions[wi]
		wasDisc := xw != old
		isDisc := xw != nx
		if wasDisc == isDisc {
			continue
		}
		a := int32(baseV + int64(i))
		if int32(v) > wi {
			a = f.rev[a] // canonical arc has tail < head
		}
		if isDisc {
			f.insert(a)
		} else {
			f.remove(a)
		}
	}
	fastCheckInvariants(f)
}

// sampleDiscordant draws the next active ordered pair (v, w) from the
// exact conditional law of the process given that the draw is
// discordant. It must only be called when ActiveMass() > 0. A uniform
// discordant edge with a fair orientation coin is the uniform
// discordant arc, which is the conditional law of the edge process and
// of the vertex process on regular graphs. The irregular vertex
// process needs arc (v,w) with probability ∝ 1/d(v) and gets it from
// the degree buckets: pick bucket b with probability bmass[b]/num
// (exact integers), a uniform arc within it, and accept with
// probability unit[tail]/bub[b] ≥ 1/2 — the accepted law is
// ∝ (bmass[b]/num)·(1/|barc[b]|)·(unit/bub[b]) ∝ unit ∝ 1/d(v).
func (f *FastState) sampleDiscordant(r *rand.Rand) (v, w int) {
	if !f.bucketed {
		idx := r.Int64N(2 * int64(len(f.list)))
		a := f.list[idx>>1]
		tail, head := f.tails[a], f.adj[a]
		if idx&1 == 1 {
			tail, head = head, tail
		}
		return int(tail), int(head)
	}
	x := r.Int64N(f.num)
	b := 0
	for x >= f.bmass[b] {
		x -= f.bmass[b]
		b++
	}
	lst := f.barc[b]
	ub := f.bub[b]
	for {
		f.draws++
		a := lst[r.Int64N(int64(len(lst)))]
		tail := f.tails[a]
		u := f.unit[tail]
		if u >= ub || r.Int64N(ub) < u {
			return int(tail), int(f.adj[a])
		}
	}
}

// flushSamplerMetrics publishes the accumulated bucketed-sampler draw
// attempts to the process-wide registry. Called once per loop exit so
// the hot path touches only the local counter.
func (f *FastState) flushSamplerMetrics() {
	if f.draws != 0 {
		bucketDrawsTotal.Add(f.draws)
		f.draws = 0
	}
}

// CheckDiscordance recomputes the discordant-edge index from scratch and
// returns an error describing the first inconsistency with the
// incrementally maintained one, including the degree-bucket structure
// when bucketing is on. The divtestinvariants build tag arranges for
// this to run after every opinion update (fast_invariants_on.go);
// tests also call it directly.
func (f *FastState) CheckDiscordance() error {
	var num int64
	count := 0
	bucketArcs := 0
	for a := range f.adj {
		u, w := f.tails[a], f.adj[a]
		if r := f.rev[a]; f.tails[r] != w || f.adj[r] != u {
			return fmt.Errorf("core: arc %d (%d→%d) has wrong reverse arc %d (%d→%d)",
				a, u, w, r, f.tails[r], f.adj[r])
		}
		disc := u < w && f.s.opinions[u] != f.s.opinions[w]
		if got := f.pos[a] >= 0; got != disc {
			return fmt.Errorf("core: arc %d (%d→%d) listed=%v, want discordant canonical=%v",
				a, u, w, got, disc)
		}
		if disc {
			if p := f.pos[a]; int(p) >= len(f.list) || f.list[p] != int32(a) {
				return fmt.Errorf("core: arc %d position index broken (pos=%d)", a, f.pos[a])
			}
			num += f.unit[u] + f.unit[w]
			count++
		}
		if f.bucketed {
			adisc := f.s.opinions[u] != f.s.opinions[w] // either orientation
			if got := f.bpos[a] >= 0; got != adisc {
				return fmt.Errorf("core: arc %d (%d→%d) bucketed=%v, want discordant=%v",
					a, u, w, got, adisc)
			}
			if adisc {
				b := f.vb[u]
				if p := f.bpos[a]; int(p) >= len(f.barc[b]) || f.barc[b][p] != int32(a) {
					return fmt.Errorf("core: arc %d bucket position broken (bucket=%d bpos=%d)", a, b, f.bpos[a])
				}
				bucketArcs++
			}
		}
	}
	if count != len(f.list) {
		return fmt.Errorf("core: discordant list has %d arcs, want %d", len(f.list), count)
	}
	if num != f.num {
		return fmt.Errorf("core: active mass numerator %d, recomputed %d", f.num, num)
	}
	if f.bucketed {
		if bucketArcs != 2*len(f.list) {
			return fmt.Errorf("core: buckets hold %d arcs, want %d", bucketArcs, 2*len(f.list))
		}
		var bnum int64
		for b := range f.barc {
			var m int64
			for _, a := range f.barc[b] {
				if f.vb[f.tails[a]] != uint8(b) {
					return fmt.Errorf("core: arc %d in bucket %d, tail bucket %d", a, b, f.vb[f.tails[a]])
				}
				if f.unit[f.tails[a]] > f.bub[b] {
					return fmt.Errorf("core: arc %d unit %d exceeds bucket %d bound %d",
						a, f.unit[f.tails[a]], b, f.bub[b])
				}
				m += f.unit[f.tails[a]]
			}
			if m != f.bmass[b] {
				return fmt.Errorf("core: bucket %d mass %d, recomputed %d", b, f.bmass[b], m)
			}
			bnum += m
		}
		if bnum != f.num {
			return fmt.Errorf("core: bucket masses sum to %d, active mass %d", bnum, f.num)
		}
	}
	return nil
}

// geomSkip draws the number of idle scheduler invocations before the
// next active one: K ~ Geometric(p) on {0, 1, 2, …} with p = num/den
// and P[K = k] = (1-p)^k·p, truncated at limit (a return of limit means
// "no active draw within the next limit invocations", which has
// probability (1-p)^limit — exactly the tail mass, so truncating and
// re-drawing later is lawful by memorylessness).
func geomSkip(r *rand.Rand, num, den, limit int64) int64 {
	if num >= den {
		return 0
	}
	lq := math.Log1p(-float64(num) / float64(den)) // ln(1-p) < 0
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	k := math.Log(u) / lq
	if k >= float64(limit) {
		return limit
	}
	return int64(k)
}

// emitFastCadence samples the exact discordance mass into the probe
// and flushes the current step batch. Called on the observeEvery
// cadence while a fast index is authoritative; probe must be non-nil.
func (e *loopEnv) emitFastCadence(f *FastState) {
	num, den := f.ActiveMass()
	e.probe.Discordance(obs.Discordance{
		Step:    e.s.Steps(),
		Edges:   f.DiscordantEdges(),
		MassNum: num,
		MassDen: den,
	})
	e.flushBatch(obs.RegimeFast)
	e.advanceEmit()
}

// loop is the fast engine's replacement for the naive per-step loop in
// run.go: identical observable behaviour, idle steps skipped in bulk.
func (f *FastState) loop(e *loopEnv, rule PairwiseRule) {
	s := e.s
	f.attachDiscordance()
	prevVersion := s.SupportVersion()
	for !e.res.Aborted && !e.done() && s.Steps() < e.maxSteps {
		// The farthest this iteration may advance: never past MaxSteps,
		// and never past the next observer boundary (idle steps do not
		// change the state, but the naive engine still invokes the
		// observer there, so boundaries must be visited).
		limit := e.maxSteps - s.Steps()
		if e.observer != nil {
			if toBoundary := e.observeEvery - s.Steps()%e.observeEvery; toBoundary < limit {
				limit = toBoundary
			}
		}
		num, den := f.ActiveMass()
		k := limit // no discordant pair anywhere: every draw is idle
		if num > 0 {
			k = geomSkip(e.r, num, den, limit)
		}
		if k < limit {
			// Next active draw lands inside the window: account for the
			// k skipped idle steps plus the active one, then apply it.
			s.addSteps(k + 1)
			if e.probe != nil {
				e.batch.Skipped += k
				e.batch.Active++
			}
			v, w := f.sampleDiscordant(e.r)
			f.SetOpinion(v, rule.Target(int(s.opinions[v]), int(s.opinions[w])))
			if s.SupportVersion() != prevVersion {
				e.onSupport()
				prevVersion = s.SupportVersion()
			}
		} else {
			// All idle up to the cap: jump straight to it. Memorylessness
			// of the geometric makes the fresh draw next iteration exact.
			s.addSteps(limit)
			if e.probe != nil {
				e.batch.Skipped += limit
			}
		}
		if e.probe != nil && s.Steps() >= e.nextEmit {
			e.emitFastCadence(f)
		}
		if e.observer != nil && s.Steps()%e.observeEvery == 0 {
			if !e.observer(s) {
				e.res.Aborted = true
			}
		}
	}
	e.flushBatch(obs.RegimeFast)
	f.flushSamplerMetrics()
}

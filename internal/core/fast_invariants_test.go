//go:build divtestinvariants

package core

import (
	"fmt"
	"testing"

	"div/internal/rng"
)

// TestFastInvariantHookActive runs the fast engine end-to-end with the
// divtestinvariants build tag enabled, so fastCheckInvariants (the
// tagged hook in fast_invariants_on.go) recomputes the full discordance
// bookkeeping from scratch after *every* SetOpinion and panics on any
// mismatch. A green run here is the property test of satellite record:
// the incremental O(d(v)) updates agree with the ground-truth recompute
// at every single state the engine visits.
func TestFastInvariantHookActive(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			t.Run(fmt.Sprintf("%s/%v", name, proc), func(t *testing.T) {
				n := g.N()
				r := rng.New(rng.DeriveSeed(0x1a9, uint64(n)*3+uint64(proc)))
				init := UniformOpinions(n, 5, r)
				res, err := Run(Config{
					Graph:   g,
					Initial: init,
					Process: proc,
					Engine:  EngineFast,
					Seed:    rng.DeriveSeed(0x1aa, uint64(n)),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Consensus {
					t.Fatalf("no consensus after %d steps", res.Steps)
				}
			})
		}
	}
}

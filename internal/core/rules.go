package core

import (
	"math/rand/v2"
)

// Rule is one asynchronous update applied when the scheduler selects
// the ordered pair (v, w): v is the updating vertex, w the observed
// neighbour. Rules may draw extra randomness from r (e.g. median voting
// samples a second neighbour) and may update more than one vertex
// (e.g. load balancing updates both endpoints), but every write must go
// through State.SetOpinion.
type Rule interface {
	// Name identifies the rule in reports ("div", "pull", …).
	Name() string
	// Step applies one asynchronous update for the scheduled pair.
	Step(s *State, r *rand.Rand, v, w int)
}

// PairwiseRule marks rules whose update is a pure function of the two
// scheduled opinions: Step must be equivalent to
// s.SetOpinion(v, Target(X_v, X_w)) — no extra randomness, no vertex
// but v rewritten, and agreement a fixed point (Target(x, x) == x).
// Such rules cannot change the state on a concordant draw, which is
// exactly the property the fast engine's idle-step skipping relies on
// (fast.go); Config.Engine Fast/Auto only accelerate PairwiseRules.
type PairwiseRule interface {
	Rule
	// Target returns v's next opinion when v holding xv observes xw.
	Target(xv, xw int) int
}

// DIV is the paper's discrete incremental voting rule: on observing a
// neighbour with a different opinion, move one unit toward it
// (equation (1)):
//
//	X_v < X_w ⟹ X'_v = X_v + 1
//	X_v = X_w ⟹ X'_v = X_v
//	X_v > X_w ⟹ X'_v = X_v - 1
type DIV struct{}

// Name implements Rule.
func (DIV) Name() string { return "div" }

// Step implements Rule.
func (d DIV) Step(s *State, _ *rand.Rand, v, w int) {
	xv := int(s.opinions[v])
	if x := d.Target(xv, int(s.opinions[w])); x != xv {
		s.SetOpinion(v, x)
	}
}

// Target implements PairwiseRule.
func (DIV) Target(xv, xw int) int {
	switch {
	case xv < xw:
		return xv + 1
	case xv > xw:
		return xv - 1
	default:
		return xv
	}
}

var _ PairwiseRule = DIV{}

package core

import (
	"math/rand/v2"
)

// Rule is one asynchronous update applied when the scheduler selects
// the ordered pair (v, w): v is the updating vertex, w the observed
// neighbour. Rules may draw extra randomness from r (e.g. median voting
// samples a second neighbour) and may update more than one vertex
// (e.g. load balancing updates both endpoints), but every write must go
// through State.SetOpinion.
type Rule interface {
	// Name identifies the rule in reports ("div", "pull", …).
	Name() string
	// Step applies one asynchronous update for the scheduled pair.
	Step(s *State, r *rand.Rand, v, w int)
}

// DIV is the paper's discrete incremental voting rule: on observing a
// neighbour with a different opinion, move one unit toward it
// (equation (1)):
//
//	X_v < X_w ⟹ X'_v = X_v + 1
//	X_v = X_w ⟹ X'_v = X_v
//	X_v > X_w ⟹ X'_v = X_v - 1
type DIV struct{}

// Name implements Rule.
func (DIV) Name() string { return "div" }

// Step implements Rule.
func (DIV) Step(s *State, _ *rand.Rand, v, w int) {
	xv, xw := s.opinions[v], s.opinions[w]
	switch {
	case xv < xw:
		s.SetOpinion(v, int(xv)+1)
	case xv > xw:
		s.SetOpinion(v, int(xv)-1)
	}
}

var _ Rule = DIV{}

package core

import (
	"testing"

	"div/internal/graph"
	"div/internal/rng"
)

func TestRecorderSeries(t *testing.T) {
	g := graph.Complete(40)
	r := rng.New(31)
	rec := &Recorder{}
	res, err := Run(Config{
		Graph:        g,
		Initial:      UniformOpinions(40, 6, r),
		Seed:         32,
		Observer:     rec.Observe,
		ObserveEvery: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
	if rec.Len() < 2 {
		t.Fatalf("only %d samples", rec.Len())
	}
	// Parallel series lengths.
	n := rec.Len()
	if len(rec.Range) != n || len(rec.Support) != n || len(rec.Sum) != n ||
		len(rec.DegSum) != n || len(rec.PiMin) != n || len(rec.PiMax) != n {
		t.Fatal("series lengths diverge")
	}
	// Steps non-decreasing; first sample at step 0.
	if rec.Steps[0] != 0 {
		t.Errorf("first sample at step %d", rec.Steps[0])
	}
	for i := 1; i < n; i++ {
		if rec.Steps[i] <= rec.Steps[i-1] {
			t.Fatalf("steps not increasing at %d", i)
		}
	}
	// Range non-increasing (the paper's contraction property).
	for i := 1; i < n; i++ {
		if rec.Range[i] > rec.Range[i-1] {
			t.Fatalf("range widened between samples %d and %d", i-1, i)
		}
	}
	// π masses are probabilities.
	for i := 0; i < n; i++ {
		for _, p := range []float64{rec.PiMin[i], rec.PiMax[i]} {
			if p <= 0 || p > 1 {
				t.Fatalf("π mass %v out of (0,1] at sample %d", p, i)
			}
		}
	}
	// Float conversions mirror the raw series.
	sf, rf := rec.SumFloat(), rec.RangeFloat()
	for i := 0; i < n; i++ {
		if int64(sf[i]) != rec.Sum[i] || int(rf[i]) != rec.Range[i] {
			t.Fatal("float conversions diverge")
		}
	}
}

func TestRecorderRangeEndsAtZero(t *testing.T) {
	g := graph.Complete(30)
	r := rng.New(33)
	rec := &Recorder{}
	res, err := Run(Config{
		Graph:        g,
		Initial:      UniformOpinions(30, 4, r),
		Seed:         34,
		Observer:     rec.Observe,
		ObserveEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
	last := rec.Len() - 1
	if rec.Range[last] != 0 || rec.Support[last] != 1 {
		t.Errorf("final sample range=%d support=%d", rec.Range[last], rec.Support[last])
	}
	// With per-step sampling, the sum series changes by at most 1 per
	// consecutive sample (the Azuma increment bound d_i ≤ 1).
	for i := 1; i <= last; i++ {
		d := rec.Sum[i] - rec.Sum[i-1]
		if d > 1 || d < -1 {
			t.Fatalf("sum jumped by %d between per-step samples", d)
		}
	}
}

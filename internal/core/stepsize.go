package core

import (
	"fmt"
	"math/rand/v2"
)

// IncrementalStep generalizes the DIV rule with a step size S: the
// updating vertex moves up to S units toward the observed neighbour
// (clamping at the neighbour's value). S = 1 is exactly the paper's
// DIV; S → ∞ degenerates to pull voting (wholesale adoption). The
// interpolation is the natural design-space knob the paper's rule sits
// at one end of, and the E15 ablation quantifies the trade it buys:
// larger steps contract the range faster but the conserved weight's
// per-step increments grow from 1 to k, widening the Azuma envelope
// until the rounded-average guarantee (Theorem 2) dissolves into pull
// voting's support-lottery (eq. 3).
type IncrementalStep struct {
	// S is the maximum move per update (≥ 1).
	S int
}

// Name implements Rule.
func (r IncrementalStep) Name() string {
	return fmt.Sprintf("div-step-%d", r.S)
}

// Step implements Rule.
func (r IncrementalStep) Step(s *State, _ *rand.Rand, v, w int) {
	xv := s.Opinion(v)
	if x := r.Target(xv, s.Opinion(w)); x != xv {
		s.SetOpinion(v, x)
	}
}

// Target implements PairwiseRule.
func (r IncrementalStep) Target(xv, xw int) int {
	step := r.S
	if step < 1 {
		step = 1
	}
	switch {
	case xv < xw:
		nw := xv + step
		if nw > xw {
			nw = xw
		}
		return nw
	case xv > xw:
		nw := xv - step
		if nw < xw {
			nw = xw
		}
		return nw
	default:
		return xv
	}
}

var _ PairwiseRule = IncrementalStep{}

//go:build !divtestinvariants

package core

// fastCheckInvariants compiles to a no-op unless the divtestinvariants
// build tag is set (fast_invariants_on.go), so the fast engine's hot
// path carries no checking overhead in normal builds and benchmarks.
func fastCheckInvariants(*FastState) {}

// sparseCheckInvariants compiles to a no-op unless the
// divtestinvariants build tag is set (fast_invariants_on.go), keeping
// the sparse engine's O(d) update free of checking overhead.
func sparseCheckInvariants(*SparseState) {}

// invariantChecksEnabled reports whether this build re-derives the
// discordance bookkeeping after every update (divtestinvariants). The
// allocation-regression tests skip themselves under it: the O(n + m)
// checking pass allocates by design.
const invariantChecksEnabled = false

//go:build !divtestinvariants

package core

// fastCheckInvariants compiles to a no-op unless the divtestinvariants
// build tag is set (fast_invariants_on.go), so the fast engine's hot
// path carries no checking overhead in normal builds and benchmarks.
func fastCheckInvariants(*FastState) {}

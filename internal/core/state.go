// Package core implements the paper's primary contribution: the
// discrete incremental voting (DIV) process, under both asynchronous
// schedulers defined in the paper (the vertex process and the edge
// process), with O(1)-per-step state accounting for opinion counts,
// degree-weighted masses, extreme opinions, and the martingale weights
// S(t) and Z(t).
//
// The engine is rule-pluggable: the DIV update rule (move one step
// toward the observed neighbour) is the default, and the comparison
// dynamics from the paper's related-work discussion (pull voting,
// median voting, best-of-k plurality, edge load balancing) are provided
// by package internal/baseline on the same State and scheduling
// machinery, which makes head-to-head experiments exact like-for-like.
package core

import (
	"fmt"

	"div/internal/graph"
)

// State is the mutable configuration of a voting process: an opinion
// per vertex plus incremental aggregates. All updates must go through
// SetOpinion so the aggregates stay consistent.
//
// Opinions live in the window [Base(), Base()+Width()-1] fixed at
// construction; every dynamic in this repository is range-contracting
// (an update never moves a vertex outside the current [Min,Max]
// opinion range), which SetOpinion enforces.
type State struct {
	g *graph.Graph // nil when the state is backed by an implicit topology
	// topo is the implicit topology backing the state when g is nil (the
	// blocked kernel's implicit-family path); CSR-backed states leave it
	// nil and answer structure queries through g directly.
	topo graph.Topology
	// Exactly one representation is live. opinions stores absolute
	// opinion values; opb is the compact byte representation (opinion
	// window ≤ 256) storing base-relative values, so a blocked trial's
	// working set at n = 2²⁰ fits L2. Both are kept byte-identical in
	// trajectory by the kernels: the representation never changes which
	// pair is drawn or how it updates.
	opinions []int32
	opb      []uint8
	base     int32   // smallest initial opinion (offset of counts[0])
	counts   []int64 // counts[i] = #vertices with opinion base+i
	degMass  []int64 // degMass[i] = Σ d(v) over vertices with opinion base+i
	minIdx   int     // smallest i with counts[i] > 0
	maxIdx   int     // largest i with counts[i] > 0
	sum      int64   // Σ_v X_v  (n·(S-average))
	degSum   int64   // Σ_v d(v)·X_v (2m times the π-weighted average)
	steps    int64
	support  int    // number of indices with counts[i] > 0
	supVer   uint64 // bumped whenever any cell transitions 0↔1 vertex

	// discordFn, when non-nil, returns the exact number of discordant
	// edges in O(1) from an engine-maintained index (fast.go). Nil means
	// DiscordantEdges falls back to an O(m) recount. Engines attach and
	// detach it as their index becomes authoritative or goes stale.
	discordFn func() int64
}

// NewState builds a State over g with the given initial opinions
// (len == g.N()). The graph must be non-empty.
func NewState(g *graph.Graph, initial []int) (*State, error) {
	s := &State{g: g}
	if err := s.ResetTo(initial); err != nil {
		return nil, err
	}
	return s, nil
}

// ResetTo re-initializes the state in place to the given initial
// opinions (len == g.N()), reusing the existing arrays whenever the
// new opinion window fits their capacity — the zero-allocation path
// behind per-worker Scratch reuse. Step counters, the support version,
// and any engine-attached discordance index are cleared; after ResetTo
// the state is indistinguishable from a freshly constructed one.
func (s *State) ResetTo(initial []int) error {
	n := s.Topology().N()
	if n == 0 {
		return fmt.Errorf("core: empty graph")
	}
	if len(initial) != n {
		return fmt.Errorf("core: %d initial opinions for %d vertices", len(initial), n)
	}
	min, max := initial[0], initial[0]
	for _, x := range initial {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	width := max - min + 1
	if width > 1<<22 {
		return fmt.Errorf("core: opinion range %d too wide", width)
	}
	if s.opb != nil && width > 256 {
		return fmt.Errorf("core: opinion range %d too wide for the compact byte representation (max 256)", width)
	}
	if s.opinions == nil && s.opb == nil {
		s.opinions = make([]int32, n)
	}
	if cap(s.counts) < width {
		s.counts = make([]int64, width)
		s.degMass = make([]int64, width)
	} else {
		s.counts = s.counts[:width]
		s.degMass = s.degMass[:width]
		clear(s.counts)
		clear(s.degMass)
	}
	s.base = int32(min)
	s.minIdx, s.maxIdx = 0, width-1
	s.sum, s.degSum, s.steps = 0, 0, 0
	s.support, s.supVer = 0, 0
	s.discordFn = nil
	for v, x := range initial {
		i := x - min
		if s.opb != nil {
			s.opb[v] = uint8(i)
		} else {
			s.opinions[v] = int32(x)
		}
		var d int64
		if s.g != nil {
			d = int64(s.g.Degree(v))
		} else {
			d = int64(s.topo.Degree(v))
		}
		s.counts[i]++
		s.degMass[i] += d
		s.sum += int64(x)
		s.degSum += d * int64(x)
	}
	for _, c := range s.counts {
		if c > 0 {
			s.support++
		}
	}
	// minIdx/maxIdx must point at occupied cells.
	for s.counts[s.minIdx] == 0 {
		s.minIdx++
	}
	for s.counts[s.maxIdx] == 0 {
		s.maxIdx--
	}
	return nil
}

// MustState is NewState that panics on error.
func MustState(g *graph.Graph, initial []int) *State {
	s, err := NewState(g, initial)
	if err != nil {
		panic(err)
	}
	return s
}

// Graph returns the underlying CSR graph, or nil when the state is
// backed by an implicit topology (use Topology then).
func (s *State) Graph() *graph.Graph { return s.g }

// Topology returns the structure backing the state: the CSR graph when
// materialized, the implicit topology otherwise.
func (s *State) Topology() graph.Topology {
	if s.g != nil {
		return s.g
	}
	return s.topo
}

// degree returns d(v) through whichever backend is live, keeping the
// CSR path a direct (devirtualized) call.
func (s *State) degree(v int) int64 {
	if s.g != nil {
		return int64(s.g.Degree(v))
	}
	return int64(s.topo.Degree(v))
}

// degreeSum returns Σ_v d(v) through whichever backend is live.
func (s *State) degreeSum() int64 {
	if s.g != nil {
		return s.g.DegreeSum()
	}
	return s.topo.DegreeSum()
}

// N returns the number of vertices.
func (s *State) N() int {
	if s.opinions != nil {
		return len(s.opinions)
	}
	return len(s.opb)
}

// Opinion returns the current opinion of vertex v.
func (s *State) Opinion(v int) int {
	if s.opb != nil {
		return int(s.base) + int(s.opb[v])
	}
	return int(s.opinions[v])
}

// Opinions copies the current opinion vector into dst (allocating when
// dst is nil or too short) and returns it.
func (s *State) Opinions(dst []int) []int {
	n := s.N()
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	if s.opb != nil {
		for v, x := range s.opb {
			dst[v] = int(s.base) + int(x)
		}
	} else {
		for v, x := range s.opinions {
			dst[v] = int(x)
		}
	}
	return dst
}

// Min returns the smallest opinion currently held.
func (s *State) Min() int { return int(s.base) + s.minIdx }

// Max returns the largest opinion currently held.
func (s *State) Max() int { return int(s.base) + s.maxIdx }

// Range returns Max()-Min(): 0 at consensus, 1 in the final two-opinion
// stage.
func (s *State) Range() int { return s.maxIdx - s.minIdx }

// SupportSize returns the number of distinct opinions currently held.
func (s *State) SupportSize() int { return s.support }

// LargestCount returns the multiplicity of the most common opinion —
// the plurality size, O(window) over the live count cells. Used by the
// blocked kernel's MajorityFrac milestone.
func (s *State) LargestCount() int64 {
	var best int64
	for _, c := range s.counts[s.minIdx : s.maxIdx+1] {
		if c > best {
			best = c
		}
	}
	return best
}

// SupportVersion increases whenever the *set* of held opinions changes
// (any count transitions between zero and nonzero). Comparing versions
// detects support changes in O(1), including swaps that preserve the
// support size and extremes.
func (s *State) SupportVersion() uint64 { return s.supVer }

// Count returns the number of vertices currently holding opinion x.
func (s *State) Count(x int) int64 {
	i := int(int32(x) - s.base)
	if i < 0 || i >= len(s.counts) {
		return 0
	}
	return s.counts[i]
}

// DegreeMass returns Σ d(v) over vertices holding opinion x, i.e.
// 2m·π(A_x) in the paper's notation.
func (s *State) DegreeMass(x int) int64 {
	i := int(int32(x) - s.base)
	if i < 0 || i >= len(s.degMass) {
		return 0
	}
	return s.degMass[i]
}

// PiMass returns π(A_x) = DegreeMass(x)/2m.
func (s *State) PiMass(x int) float64 {
	return float64(s.DegreeMass(x)) / float64(s.degreeSum())
}

// Sum returns S_raw(t) = Σ_v X_v(t); S(t) in the paper. Exactly
// conserved in expectation by the edge process (Lemma 3(i)).
func (s *State) Sum() int64 { return s.sum }

// DegSum returns Σ_v d(v)·X_v(t) = 2m·Z(t)/n. Exactly conserved in
// expectation by the vertex process (Lemma 3(ii)).
func (s *State) DegSum() int64 { return s.degSum }

// Average returns the simple average opinion S(t)/n.
func (s *State) Average() float64 {
	return float64(s.sum) / float64(s.N())
}

// WeightedAverage returns the degree-weighted average
// Σ_v π_v X_v = DegSum/2m (the paper's Z(t)/n).
func (s *State) WeightedAverage() float64 {
	return float64(s.degSum) / float64(s.degreeSum())
}

// Steps returns the number of asynchronous steps performed so far
// (every scheduler invocation counts, including no-op steps where the
// chosen vertices agreed — matching the paper's step counting).
func (s *State) Steps() int64 { return s.steps }

// Consensus reports whether all vertices hold the same opinion, and if
// so which one.
func (s *State) Consensus() (opinion int, ok bool) {
	if s.minIdx == s.maxIdx {
		return int(s.base) + s.minIdx, true
	}
	return 0, false
}

// Support appends the currently held opinions in ascending order to
// dst and returns it.
func (s *State) Support(dst []int) []int {
	for i := s.minIdx; i <= s.maxIdx; i++ {
		if s.counts[i] > 0 {
			dst = append(dst, int(s.base)+i)
		}
	}
	return dst
}

// SetOpinion sets vertex v's opinion to x, maintaining every aggregate
// in O(1) amortized (the extreme pointers only ever move inward over a
// run, by the paper's range-contraction property). It panics if x lies
// outside the current [Min,Max] opinion range, since no dynamics in
// this repository may widen the range.
func (s *State) SetOpinion(v int, x int) {
	var old int32
	if s.opb != nil {
		old = int32(s.opb[v]) + s.base
	} else {
		old = s.opinions[v]
	}
	nw := int32(x)
	if nw == old {
		return
	}
	i := int(nw - s.base)
	if i < s.minIdx || i > s.maxIdx {
		panic(fmt.Sprintf("core: SetOpinion(%d,%d) outside current range [%d,%d]",
			v, x, s.Min(), s.Max()))
	}
	j := int(old - s.base)
	d := s.degree(v)
	if s.opb != nil {
		s.opb[v] = uint8(nw - s.base)
	} else {
		s.opinions[v] = nw
	}
	if s.counts[i] == 0 {
		s.support++
		s.supVer++
	}
	s.counts[i]++
	s.degMass[i] += d
	s.counts[j]--
	s.degMass[j] -= d
	if s.counts[j] == 0 {
		s.support--
		s.supVer++
	}
	s.sum += int64(nw) - int64(old)
	s.degSum += d * (int64(nw) - int64(old))
	// Extremes move inward only when an extreme cell empties.
	for s.minIdx < s.maxIdx && s.counts[s.minIdx] == 0 {
		s.minIdx++
	}
	for s.maxIdx > s.minIdx && s.counts[s.maxIdx] == 0 {
		s.maxIdx--
	}
}

// DiscordantEdges returns the number of edges {u,w} with X_u ≠ X_w —
// the discordant-edge count driving the paper's potential analysis and
// the fast engine's skip-sampling. When a fast engine's incremental
// index is live the count is O(1); otherwise (EngineNaive, or the
// hybrid engine's naive stretches) it is recomputed in O(m). Observers
// sampling it every ObserveEvery steps therefore cost O(m·Steps/
// ObserveEvery) extra under naive stepping and nothing measurable under
// fast stepping.
func (s *State) DiscordantEdges() int64 {
	if s.discordFn != nil {
		return s.discordFn()
	}
	var c int64
	if s.g == nil {
		// Implicit topology: walk every neighbour list, counting each
		// edge once via v < w (a multigraph edge counts once per
		// parallel copy, matching its scheduling weight).
		t := s.topo
		n := t.N()
		for v := 0; v < n; v++ {
			xv := s.Opinion(v)
			d := t.Degree(v)
			for i := 0; i < d; i++ {
				if w := t.Neighbor(v, i); v < w && xv != s.Opinion(w) {
					c++
				}
			}
		}
		return c
	}
	tails, heads := s.g.ArcTails(), s.g.Arcs()
	if s.opb != nil {
		for a := range heads {
			if u, w := tails[a], heads[a]; u < w && s.opb[u] != s.opb[w] {
				c++
			}
		}
		return c
	}
	for a := range heads {
		if u, w := tails[a], heads[a]; u < w && s.opinions[u] != s.opinions[w] {
			c++
		}
	}
	return c
}

// countStep increments the step counter; called by the schedulers.
func (s *State) countStep() { s.steps++ }

// addSteps advances the step counter by k ≥ 1 scheduler invocations at
// once; the fast engine uses it to account for skipped idle steps
// (fast.go) without simulating them.
func (s *State) addSteps(k int64) { s.steps += k }

// CheckInvariants recomputes every aggregate from scratch and returns
// an error describing the first inconsistency, for tests and debugging.
func (s *State) CheckInvariants() error {
	counts := make([]int64, len(s.counts))
	degMass := make([]int64, len(s.degMass))
	var sum, degSum int64
	for v, n := 0, s.N(); v < n; v++ {
		x := s.Opinion(v)
		i := x - int(s.base)
		if i < 0 || i >= len(counts) {
			return fmt.Errorf("core: opinion %d of vertex %d outside window", x, v)
		}
		counts[i]++
		d := s.degree(v)
		degMass[i] += d
		sum += int64(x)
		degSum += d * int64(x)
	}
	support := 0
	for i := range counts {
		if counts[i] != s.counts[i] {
			return fmt.Errorf("core: counts[%d]=%d, recomputed %d", i, s.counts[i], counts[i])
		}
		if degMass[i] != s.degMass[i] {
			return fmt.Errorf("core: degMass[%d]=%d, recomputed %d", i, s.degMass[i], degMass[i])
		}
		if counts[i] > 0 {
			support++
		}
	}
	if support != s.support {
		return fmt.Errorf("core: support=%d, recomputed %d", s.support, support)
	}
	if sum != s.sum {
		return fmt.Errorf("core: sum=%d, recomputed %d", s.sum, sum)
	}
	if degSum != s.degSum {
		return fmt.Errorf("core: degSum=%d, recomputed %d", s.degSum, degSum)
	}
	if s.counts[s.minIdx] == 0 || s.counts[s.maxIdx] == 0 {
		return fmt.Errorf("core: extreme pointer at empty cell (min=%d max=%d)", s.minIdx, s.maxIdx)
	}
	for i := 0; i < s.minIdx; i++ {
		if s.counts[i] != 0 {
			return fmt.Errorf("core: occupied cell %d below minIdx %d", i, s.minIdx)
		}
	}
	for i := s.maxIdx + 1; i < len(s.counts); i++ {
		if s.counts[i] != 0 {
			return fmt.Errorf("core: occupied cell %d above maxIdx %d", i, s.maxIdx)
		}
	}
	return nil
}

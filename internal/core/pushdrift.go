package core

// Drift computations for push-flavoured incremental voting, where the
// scheduled pair (v, w) updates w toward v. Under the vertex process
// the conserved quantity is the INVERSE-degree weighted sum
// H(t) = Σ_v X_v/d(v): the (v,w) arc contributes
// sign(X_v−X_w)/(n·d(v)·d(w)) to E[ΔH | X], which cancels against the
// (w,v) arc by antisymmetry — the push-side mirror of Lemma 3.

// PushDIVInvDegDrift returns the exact one-step drift of
// H = Σ_v X_v/d(v) under the vertex-process push-DIV dynamic,
// E[ΔH | X] = (1/n) Σ_v Σ_{w∈N(v)} sign(X_v - X_w)/(d(v)·d(w)).
// It is identically zero for every configuration on every graph; tests
// assert the zero and E17 uses the conservation to predict the
// consensus value.
func PushDIVInvDegDrift(s *State) float64 {
	g := s.Graph()
	var total float64
	for v := 0; v < g.N(); v++ {
		xv := s.opinions[v]
		dv := float64(g.Degree(v))
		for _, w := range g.Neighbors(v) {
			xw := s.opinions[w]
			if xv == xw {
				continue
			}
			sign := 1.0
			if xv < xw {
				sign = -1
			}
			total += sign / (dv * float64(g.Degree(int(w))))
		}
	}
	return total / float64(g.N())
}

// PushDIVSumDrift returns the exact one-step drift of the plain sum S
// under the vertex-process push-DIV dynamic,
// E[ΔS | X] = (1/n) Σ_v Σ_{w∈N(v)} sign(X_v - X_w)/d(v).
// Generally nonzero on irregular graphs: push does NOT conserve the
// simple average, the mirror image of VertexProcessSumDrift.
func PushDIVSumDrift(s *State) float64 {
	g := s.Graph()
	var total float64
	for v := 0; v < g.N(); v++ {
		xv := s.opinions[v]
		var signed int64
		for _, w := range g.Neighbors(v) {
			xw := s.opinions[w]
			switch {
			case xv > xw:
				signed++
			case xv < xw:
				signed--
			}
		}
		total += float64(signed) / float64(g.Degree(v))
	}
	return total / float64(g.N())
}

// InvDegSum returns H_raw(t) = Σ_v X_v/d(v), the push-DIV conserved
// weight (up to the 1/n normalization).
func InvDegSum(s *State) float64 {
	g := s.Graph()
	var total float64
	for v := 0; v < g.N(); v++ {
		total += float64(s.opinions[v]) / float64(g.Degree(v))
	}
	return total
}

// InvDegAverage returns the inverse-degree weighted average
// Σ_v (X_v/d(v)) / Σ_v (1/d(v)) — the value push-DIV consensus tracks
// in expectation under the vertex process.
func InvDegAverage(s *State) float64 {
	g := s.Graph()
	var num, den float64
	for v := 0; v < g.N(); v++ {
		inv := 1 / float64(g.Degree(v))
		num += float64(s.opinions[v]) * inv
		den += inv
	}
	return num / den
}

package core

import (
	"testing"

	"div/internal/graph"
	"div/internal/rng"
)

func TestIncrementalStepName(t *testing.T) {
	if got := (IncrementalStep{S: 4}).Name(); got != "div-step-4" {
		t.Errorf("Name = %q", got)
	}
}

func TestIncrementalStepSemantics(t *testing.T) {
	g := graph.Path(2)
	tests := []struct {
		name   string
		s      int
		xv, xw int
		want   int
	}{
		{"unit up", 1, 2, 7, 3},
		{"unit down", 1, 7, 2, 6},
		{"big up clamps", 4, 2, 4, 4},
		{"big up partial", 4, 2, 9, 6},
		{"big down partial", 3, 9, 2, 6},
		{"equal no-op", 5, 4, 4, 4},
		{"zero step treated as one", 0, 2, 9, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			st := MustState(g, []int{tc.xv, tc.xw})
			IncrementalStep{S: tc.s}.Step(st, nil, 0, 1)
			if got := st.Opinion(0); got != tc.want {
				t.Errorf("(%d toward %d, s=%d) = %d, want %d", tc.xv, tc.xw, tc.s, got, tc.want)
			}
			if st.Opinion(1) != tc.xw {
				t.Error("observed vertex changed")
			}
		})
	}
}

func TestIncrementalStepOneEqualsDIV(t *testing.T) {
	// Driving identical schedules through both rules must produce
	// identical trajectories.
	g := graph.Complete(25)
	r := rng.New(9)
	init := UniformOpinions(25, 7, r)
	a := MustState(g, init)
	b := MustState(g, init)
	schedR := rng.New(10)
	for i := 0; i < 20000; i++ {
		v := schedR.IntN(25)
		w := g.Neighbor(v, schedR.IntN(24))
		DIV{}.Step(a, nil, v, w)
		IncrementalStep{S: 1}.Step(b, nil, v, w)
	}
	for v := 0; v < 25; v++ {
		if a.Opinion(v) != b.Opinion(v) {
			t.Fatalf("trajectories diverged at vertex %d: %d vs %d", v, a.Opinion(v), b.Opinion(v))
		}
	}
}

func TestIncrementalStepNeverOvershoots(t *testing.T) {
	// Property: the update never crosses the observed value, so the
	// range-contraction invariant survives any step size.
	g := graph.Complete(30)
	r := rng.New(11)
	s := MustState(g, UniformOpinions(30, 12, r))
	rule := IncrementalStep{S: 5}
	for i := 0; i < 100000; i++ {
		v := r.IntN(30)
		w := g.Neighbor(v, r.IntN(29))
		before := s.Opinion(v)
		target := s.Opinion(w)
		rule.Step(s, r, v, w)
		after := s.Opinion(v)
		if (before < target && (after > target || after < before)) ||
			(before > target && (after < target || after > before)) {
			t.Fatalf("overshoot: %d toward %d gave %d", before, target, after)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

package core

// Recorder is an Observer that samples the live state into time
// series: pass Recorder.Observe as Config.Observer (with the desired
// Config.ObserveEvery period) and read the series after the run. It
// captures exactly the quantities the paper's analysis tracks — the
// conserved weights S(t) and Z(t), the opinion range and support size,
// the π masses of the two extreme opinions (the objects of Lemma 10),
// and the discordant-edge count (the potential of the paper's
// final-stage analysis).
//
// Sampling cadence under skip-sampling engines: the fast and hybrid
// engines never simulate idle steps individually, but they cap every
// geometric skip at the next ObserveEvery boundary, so an observer is
// invoked at exactly the same step numbers as under EngineNaive —
// samples land on multiples of ObserveEvery regardless of engine
// (probe_test.go asserts this). The boundary visit is lawful because
// the truncated geometric is memoryless (DESIGN.md §6). The cost model
// differs, though: under naive stepping a sample is O(1) except for
// Discordance, which recounts in O(m); under fast stepping Discordance
// is O(1) from the engine's live index, but each boundary visit bounds
// the skip length, so a very small ObserveEvery erodes the fast
// engine's advantage (the hybrid engine refuses fast mode entirely
// when ObserveEvery < 8 for exactly this reason).
type Recorder struct {
	// Steps[i] is the step count at sample i.
	Steps []int64
	// Range[i] is Max-Min at sample i.
	Range []int
	// Support[i] is the number of distinct opinions at sample i.
	Support []int
	// Sum[i] is S_raw(t) = Σ X_v.
	Sum []int64
	// DegSum[i] is Σ d(v)X_v (∝ Z(t)).
	DegSum []int64
	// PiMin[i] and PiMax[i] are π(A_min) and π(A_max): the stationary
	// masses of the smallest and largest surviving opinions.
	PiMin, PiMax []float64
	// Discordance[i] is the number of discordant edges at sample i —
	// O(1) to read while a fast engine's index is live, an O(m) recount
	// under EngineNaive (see State.DiscordantEdges).
	Discordance []int64
}

// Observe implements the Config.Observer signature; it never aborts.
func (rec *Recorder) Observe(s *State) bool {
	rec.Steps = append(rec.Steps, s.Steps())
	rec.Range = append(rec.Range, s.Range())
	rec.Support = append(rec.Support, s.SupportSize())
	rec.Sum = append(rec.Sum, s.Sum())
	rec.DegSum = append(rec.DegSum, s.DegSum())
	rec.PiMin = append(rec.PiMin, s.PiMass(s.Min()))
	rec.PiMax = append(rec.PiMax, s.PiMass(s.Max()))
	rec.Discordance = append(rec.Discordance, s.DiscordantEdges())
	return true
}

// Len returns the number of samples taken.
func (rec *Recorder) Len() int { return len(rec.Steps) }

// SumFloat returns the Sum series as float64s, for plotting and fits.
func (rec *Recorder) SumFloat() []float64 {
	out := make([]float64, len(rec.Sum))
	for i, v := range rec.Sum {
		out[i] = float64(v)
	}
	return out
}

// RangeFloat returns the Range series as float64s.
func (rec *Recorder) RangeFloat() []float64 {
	out := make([]float64, len(rec.Range))
	for i, v := range rec.Range {
		out[i] = float64(v)
	}
	return out
}

// DiscordanceFloat returns the Discordance series as float64s.
func (rec *Recorder) DiscordanceFloat() []float64 {
	out := make([]float64, len(rec.Discordance))
	for i, v := range rec.Discordance {
		out[i] = float64(v)
	}
	return out
}

package core

// Recorder is an Observer that samples the live state into time
// series: pass Recorder.Observe as Config.Observer (with the desired
// Config.ObserveEvery period) and read the series after the run. It
// captures exactly the quantities the paper's analysis tracks — the
// conserved weights S(t) and Z(t), the opinion range and support size,
// and the π masses of the two extreme opinions (the objects of
// Lemma 10).
type Recorder struct {
	// Steps[i] is the step count at sample i.
	Steps []int64
	// Range[i] is Max-Min at sample i.
	Range []int
	// Support[i] is the number of distinct opinions at sample i.
	Support []int
	// Sum[i] is S_raw(t) = Σ X_v.
	Sum []int64
	// DegSum[i] is Σ d(v)X_v (∝ Z(t)).
	DegSum []int64
	// PiMin[i] and PiMax[i] are π(A_min) and π(A_max): the stationary
	// masses of the smallest and largest surviving opinions.
	PiMin, PiMax []float64
}

// Observe implements the Config.Observer signature; it never aborts.
func (rec *Recorder) Observe(s *State) bool {
	rec.Steps = append(rec.Steps, s.Steps())
	rec.Range = append(rec.Range, s.Range())
	rec.Support = append(rec.Support, s.SupportSize())
	rec.Sum = append(rec.Sum, s.Sum())
	rec.DegSum = append(rec.DegSum, s.DegSum())
	rec.PiMin = append(rec.PiMin, s.PiMass(s.Min()))
	rec.PiMax = append(rec.PiMax, s.PiMass(s.Max()))
	return true
}

// Len returns the number of samples taken.
func (rec *Recorder) Len() int { return len(rec.Steps) }

// SumFloat returns the Sum series as float64s, for plotting and fits.
func (rec *Recorder) SumFloat() []float64 {
	out := make([]float64, len(rec.Sum))
	for i, v := range rec.Sum {
		out[i] = float64(v)
	}
	return out
}

// RangeFloat returns the Range series as float64s.
func (rec *Recorder) RangeFloat() []float64 {
	out := make([]float64, len(rec.Range))
	for i, v := range rec.Range {
		out[i] = float64(v)
	}
	return out
}

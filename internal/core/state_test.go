package core

import (
	"testing"
	"testing/quick"

	"div/internal/graph"
	"div/internal/rng"
)

func TestNewStateAggregates(t *testing.T) {
	g := graph.Star(4) // centre 0 (deg 3), leaves 1..3 (deg 1); 2m = 6
	s := MustState(g, []int{2, 1, 3, 3})
	if s.Min() != 1 || s.Max() != 3 {
		t.Errorf("min/max = %d/%d, want 1/3", s.Min(), s.Max())
	}
	if s.Range() != 2 {
		t.Errorf("range = %d, want 2", s.Range())
	}
	if s.SupportSize() != 3 {
		t.Errorf("support = %d, want 3", s.SupportSize())
	}
	if s.Count(1) != 1 || s.Count(2) != 1 || s.Count(3) != 2 {
		t.Errorf("counts = %d,%d,%d", s.Count(1), s.Count(2), s.Count(3))
	}
	if s.Count(0) != 0 || s.Count(99) != 0 {
		t.Error("out-of-window counts nonzero")
	}
	if s.Sum() != 9 {
		t.Errorf("sum = %d, want 9", s.Sum())
	}
	// DegSum = 3*2 + 1*1 + 1*3 + 1*3 = 13.
	if s.DegSum() != 13 {
		t.Errorf("degSum = %d, want 13", s.DegSum())
	}
	if s.Average() != 9.0/4 {
		t.Errorf("average = %v", s.Average())
	}
	if s.WeightedAverage() != 13.0/6 {
		t.Errorf("weighted average = %v", s.WeightedAverage())
	}
	// DegreeMass(3) = deg(2) + deg(3) = 2; PiMass = 2/6.
	if s.DegreeMass(3) != 2 {
		t.Errorf("degreeMass(3) = %d, want 2", s.DegreeMass(3))
	}
	if s.PiMass(3) != 2.0/6 {
		t.Errorf("piMass(3) = %v, want 1/3", s.PiMass(3))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNewStateErrors(t *testing.T) {
	g := graph.Complete(3)
	if _, err := NewState(g, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewState(graph.MustFromEdges(0, nil), nil); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := NewState(g, []int{0, 1 << 23, 5}); err == nil {
		t.Error("absurd range accepted")
	}
}

func TestSetOpinionUpdatesAggregates(t *testing.T) {
	g := graph.Cycle(5)
	s := MustState(g, []int{1, 2, 3, 4, 5})
	s.SetOpinion(0, 2) // 1 vanishes: min advances
	if s.Min() != 2 {
		t.Errorf("min = %d, want 2", s.Min())
	}
	if s.Sum() != 16 {
		t.Errorf("sum = %d, want 16", s.Sum())
	}
	if s.SupportSize() != 4 {
		t.Errorf("support = %d, want 4", s.SupportSize())
	}
	s.SetOpinion(4, 4) // 5 vanishes: max recedes
	if s.Max() != 4 {
		t.Errorf("max = %d, want 4", s.Max())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSetOpinionNoOp(t *testing.T) {
	g := graph.Complete(3)
	s := MustState(g, []int{1, 2, 3})
	before := s.Sum()
	s.SetOpinion(1, 2)
	if s.Sum() != before || s.SupportSize() != 3 {
		t.Error("no-op SetOpinion changed aggregates")
	}
}

func TestSetOpinionPanicsOutsideRange(t *testing.T) {
	g := graph.Complete(3)
	s := MustState(g, []int{2, 3, 4})
	for _, bad := range []int{1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetOpinion to %d did not panic", bad)
				}
			}()
			s.SetOpinion(0, bad)
		}()
	}
	// After the range contracts, the old extreme becomes invalid too.
	s.SetOpinion(0, 3) // 2 vanishes, range now [3,4]
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetOpinion to vacated extreme did not panic")
			}
		}()
		s.SetOpinion(1, 2)
	}()
}

func TestConsensusDetection(t *testing.T) {
	g := graph.Complete(3)
	s := MustState(g, []int{2, 2, 3})
	if _, ok := s.Consensus(); ok {
		t.Error("premature consensus")
	}
	s.SetOpinion(2, 2)
	op, ok := s.Consensus()
	if !ok || op != 2 {
		t.Errorf("consensus = %d,%v, want 2,true", op, ok)
	}
}

func TestSupportList(t *testing.T) {
	g := graph.Complete(6)
	s := MustState(g, []int{1, 1, 3, 5, 5, 5})
	got := s.Support(nil)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support = %v, want %v", got, want)
		}
	}
}

func TestOpinionsCopy(t *testing.T) {
	g := graph.Complete(3)
	s := MustState(g, []int{4, 5, 6})
	ops := s.Opinions(nil)
	ops[0] = 99
	if s.Opinion(0) != 4 {
		t.Error("Opinions returned aliasing slice")
	}
	// Reuse path.
	buf := make([]int, 3)
	got := s.Opinions(buf)
	if &got[0] != &buf[0] {
		t.Error("Opinions did not reuse provided buffer")
	}
}

// TestQuickStateInvariants drives random DIV/pull-style updates through
// SetOpinion and re-derives every aggregate from scratch.
func TestQuickStateInvariants(t *testing.T) {
	f := func(seed uint64, rawN uint8, rawK uint8, steps uint16) bool {
		n := int(rawN%30) + 2
		k := int(rawK%9) + 2
		r := rng.New(seed)
		g, err := graph.ConnectedGnp(n, 0.5, r, 200)
		if err != nil {
			return true // skip pathological density draws
		}
		s := MustState(g, UniformOpinions(n, k, r))
		for i := 0; i < int(steps%500); i++ {
			v := r.IntN(n)
			w := g.Neighbor(v, r.IntN(g.Degree(v)))
			DIV{}.Step(s, r, v, w)
			if s.Min() < 1 || s.Max() > k {
				return false
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestRangeContraction checks the paper's structural fact: the opinion
// range never widens under DIV, and extremes disappear irreversibly.
func TestRangeContraction(t *testing.T) {
	r := rng.New(21)
	g := graph.Complete(40)
	s := MustState(g, UniformOpinions(40, 7, r))
	minSeen, maxSeen := s.Min(), s.Max()
	for i := 0; i < 200000; i++ {
		v := r.IntN(40)
		w := g.Neighbor(v, r.IntN(39))
		DIV{}.Step(s, r, v, w)
		if s.Min() < minSeen {
			t.Fatalf("min widened from %d to %d at step %d", minSeen, s.Min(), i)
		}
		if s.Max() > maxSeen {
			t.Fatalf("max widened from %d to %d at step %d", maxSeen, s.Max(), i)
		}
		minSeen, maxSeen = s.Min(), s.Max()
		if s.Range() == 0 {
			break
		}
	}
}

package core

import (
	"fmt"
	"math/rand/v2"

	"div/internal/graph"
	"div/internal/obs"
)

// This file implements the sparse endgame engine: geometric
// skip-sampling for runs the fast engine (fast.go) cannot serve —
// implicit topologies and compact opinion slabs — with memory
// proportional to the live discordance, not to the arc count.
//
// The fast engine's discordance index stores a per-arc position array
// (O(m) int32s) plus the discordant-edge list. That is exactly the
// memory the implicit families were built to avoid: at n = 10⁶–10⁷ a
// per-arc index re-creates the CSR footprint the Topology interface
// removed, so until now every implicit/compact run stepped naively
// through its entire idle-dominated tail and EngineAuto degenerated to
// EngineNaive. The sparse engine keeps instead a swap-delete set of the
// currently *discordant vertices* — vertices with at least one
// neighbour holding a different opinion — with a per-member count of
// discordant incident arcs:
//
//	list  []int32  the discordant vertices, unordered
//	diffs []int32  diffs[j] = diff(list[j]), the member's discordant-arc count
//	pos   []int32  pos[v] = slot of v in list, or -1
//
// pos is O(n) (4 bytes/vertex — at n = 10⁶ that is 4 MB against the
// ~200 MB CSR+ArcIndex estimate of an 8-regular graph); list and diffs
// are O(D_t), the live discordance. An opinion update at v can only
// change diff over {v} ∪ N(v), so SetOpinion repairs the set with one
// O(d(v)) neighbourhood walk — the same local-update cost the fast
// engine pays, without any arc-indexed storage.
//
// Active mass. The probability that one scheduler invocation is active
// is maintained as an exact integer rational, exactly as in fast.go:
//
//	edge process:   p = Σ_v diff(v) / 2m        (num = Σ diff, den = degree sum)
//	vertex process: p = (1/n)·Σ_v diff(v)/d(v)  (num = Σ diff(v)·L/d(v), den = n·L)
//
// with L the lcm of the distinct degrees (computed in the seed pass,
// capped at graph.MaxDegreeLCM like the fast engine's vertex units; on
// the cap the constructor errors and callers stay naive). diff counts
// arcs with multiplicity, so multigraph families (HashedRegular) weight
// parallel edges exactly as the schedulers draw them.
//
// Conditional pair draw. The active pair is drawn by rejection from the
// vertex set, which needs no weight arrays at all:
//
//	vertex: slot ~ U[list], v = list[slot]; j ~ U[0, d(v)),
//	        w = Neighbor(v, j); accept iff X_v ≠ X_w.
//	        P[(v,w) | accept] ∝ (1/|list|)·(1/d(v)) ∝ 1/d(v) — the exact
//	        vertex-process conditional, irregular degrees included.
//	edge:   slot ~ U[list]; j ~ U[0, d_max); reject j ≥ d(v);
//	        w = Neighbor(v, j); accept iff X_v ≠ X_w.
//	        P[(v,w) | accept] uniform over discordant arcs — the exact
//	        edge-process conditional.
//
// Every member has diff ≥ 1, so each round accepts with probability at
// least 1/d_max(v-side) and the expected cost per active step is O(d̄)
// — the same order as the O(d) repair that follows. Unlike the fast
// engine there is no per-arc bucket structure to keep exact degree
// weighting cheap; the rejection loop plays that role, trading a small
// constant factor for O(D_t) memory.
//
// Distribution- not byte-equivalence: the naive kernels realize an
// active step by drawing (v, w) directly; the sparse engine consumes
// its stream through geomSkip and the rejection loop instead, so a
// handed-off trajectory diverges pointwise from the naive one while
// keeping the exact same law (the same argument as EngineFast — see
// DESIGN.md §6 and §14). The equivalence tests therefore compare
// distributions (χ²/KS), not bytes, exactly as they do for EngineFast.

var (
	// sparseHandoffsTotal counts blocked-kernel rows that retired to the
	// sparse endgame engine (including EngineFast-at-start retirements).
	sparseHandoffsTotal = obs.Default.Counter("core_sparse_handoffs_total")
	// sparseSetPeak is the high-water mark, in bytes, of the sparse
	// engine's working set (pos + list + diffs) across all runs.
	sparseSetPeak = obs.Default.Gauge("sparse_set_peak")
	// sparseSessionTimer times each sparse stepping session (hand-off to
	// exit) into the span_core_sparse_step_nanos histogram, making the
	// tail phase visible on /metrics and in the -metrics footer.
	sparseSessionTimer = obs.Default.Timer("core_sparse_step")
)

// SparseState is the sparse endgame engine's mutable state: the
// swap-delete discordant-vertex set over a State, with the exact
// rational active mass. All opinion updates must go through SetOpinion
// while the set is authoritative.
type SparseState struct {
	s    *State
	topo graph.Topology
	proc Process

	list  []int32 // discordant vertices (diff > 0), unordered
	diffs []int32 // diffs[j] = discordant-arc count of list[j]
	pos   []int32 // pos[v] = slot of v in list, or -1

	num     int64 // active-mass numerator (see file comment)
	den     int64 // active-mass denominator: 2m (edge) or n·L (vertex)
	lcm     int64 // vertex process: L = lcm of distinct degrees; else 1
	sumDiff int64 // Σ_v diff(v) = 2 · #discordant edges (with multiplicity)
	dmax    int64 // max degree, the edge-process rejection bound

	countFn func() int64 // O(1) count for State.DiscordantEdges
}

// NewSparseState builds the discordant-vertex set for s under proc with
// one O(n·d) enumeration pass over the state's Topology. It errors when
// the vertex process's degree-lcm scaling would overflow (wildly
// irregular degree sequences); callers fall back to naive stepping.
func NewSparseState(s *State, proc Process) (*SparseState, error) {
	if proc != VertexProcess && proc != EdgeProcess {
		return nil, fmt.Errorf("core: unknown process %v", proc)
	}
	topo := s.Topology()
	n := topo.N()
	sp := &SparseState{
		s:    s,
		topo: topo,
		proc: proc,
		pos:  make([]int32, n),
		lcm:  1,
	}
	if proc == VertexProcess {
		// L = lcm of the distinct degrees, so every unit L/d(v) is an
		// exact integer. Same cap and fallback contract as the fast
		// engine's ArcIndex.VertexUnits.
		lcm := int64(1)
		for v := 0; v < n; v++ {
			d := int64(topo.Degree(v))
			l := lcm / gcd64(lcm, d) * d
			if l > graph.MaxDegreeLCM || l < 0 {
				return nil, fmt.Errorf("core: sparse engine: vertex-process degree lcm exceeds %d on this degree sequence; use naive stepping", graph.MaxDegreeLCM)
			}
			lcm = l
		}
		sp.lcm = lcm
		sp.den = int64(n) * lcm
	} else {
		sp.den = topo.DegreeSum()
	}
	sp.countFn = func() int64 { return sp.sumDiff / 2 }
	sp.Seed()
	return sp, nil
}

// gcd64 is the binaryless Euclid gcd for positive int64s.
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// x returns vertex v's opinion in whichever representation is live —
// base-relative bytes and absolute int32s compare identically within a
// representation, which is all the set maintenance needs.
func (sp *SparseState) x(v int) int32 {
	if sp.s.opb != nil {
		return int32(sp.s.opb[v])
	}
	return sp.s.opinions[v]
}

// unit returns the active-mass weight of one discordant arc with tail
// v: 1 for the edge process, L/d(v) for the vertex process.
func (sp *SparseState) unit(v int) int64 {
	if sp.proc == EdgeProcess {
		return 1
	}
	return sp.lcm / int64(sp.topo.Degree(v))
}

// Seed rebuilds the set against the wrapped State's current opinions:
// the one O(n·d) enumeration pass of a hand-off. list and diffs are
// reused across seeds; dmax is accumulated on the way.
func (sp *SparseState) Seed() {
	sp.list = sp.list[:0]
	sp.diffs = sp.diffs[:0]
	sp.num, sp.sumDiff, sp.dmax = 0, 0, 0
	t := sp.topo
	n := t.N()
	for v := 0; v < n; v++ {
		xv := sp.x(v)
		d := t.Degree(v)
		if int64(d) > sp.dmax {
			sp.dmax = int64(d)
		}
		c := int32(0)
		for i := 0; i < d; i++ {
			if sp.x(t.Neighbor(v, i)) != xv {
				c++
			}
		}
		if c > 0 {
			sp.pos[v] = int32(len(sp.list))
			sp.list = append(sp.list, int32(v))
			sp.diffs = append(sp.diffs, c)
			sp.sumDiff += int64(c)
			sp.num += int64(c) * sp.unit(v)
		} else {
			sp.pos[v] = -1
		}
	}
	sparseSetPeak.SetMax(sp.MemBytes())
}

// rebind repoints the set at another State over the same topology. The
// blocked kernel's arena keeps ONE SparseState and lends it to whichever
// row is retiring; a Seed after rebinding rebuilds everything
// opinion-dependent. The caller must not leave a stale discordance hook
// on the previous state (State.ResetTo clears it; detachDiscordance
// does too).
func (sp *SparseState) rebind(s *State) {
	if s.Topology() != sp.topo {
		panic("core: SparseState.rebind across topologies")
	}
	sp.s = s
}

// attachDiscordance makes the wrapped State's DiscordantEdges read the
// set's exact O(1) count (Σ diff / 2, each discordant edge contributing
// one arc per endpoint, parallel copies included). Only valid while
// every opinion update goes through sp.SetOpinion.
func (sp *SparseState) attachDiscordance() { sp.s.discordFn = sp.countFn }

// detachDiscordance reverts State.DiscordantEdges to the O(m) recount.
func (sp *SparseState) detachDiscordance() { sp.s.discordFn = nil }

// DiscordantEdges returns the exact number of currently discordant
// edges (counting parallel multigraph copies separately, matching
// State.DiscordantEdges on implicit backends).
func (sp *SparseState) DiscordantEdges() int64 { return sp.sumDiff / 2 }

// ActiveMass returns the probability that one scheduler invocation is
// active as the exact rational num/den.
func (sp *SparseState) ActiveMass() (num, den int64) { return sp.num, sp.den }

// Members returns the number of currently discordant vertices.
func (sp *SparseState) Members() int { return len(sp.list) }

// MemBytes returns the set's current working-set footprint: the O(n)
// position index plus the O(D) member and count arrays.
func (sp *SparseState) MemBytes() int64 {
	return 4*int64(len(sp.pos)) + 8*int64(cap(sp.list))
}

// bump adjusts diff(w) by delta (±1), inserting or swap-deleting w as
// its count crosses zero, and maintains the mass aggregates.
func (sp *SparseState) bump(w int, delta int32) {
	sp.sumDiff += int64(delta)
	sp.num += int64(delta) * sp.unit(w)
	slot := sp.pos[w]
	if slot < 0 {
		sp.pos[w] = int32(len(sp.list))
		sp.list = append(sp.list, int32(w))
		sp.diffs = append(sp.diffs, delta)
		return
	}
	sp.diffs[slot] += delta
	if sp.diffs[slot] == 0 {
		sp.dropSlot(slot)
	}
}

// setDiff sets diff(v) to c outright (the updated vertex's own count,
// recomputed during the repair walk), with the same membership and mass
// maintenance as bump.
func (sp *SparseState) setDiff(v int, c int32) {
	slot := sp.pos[v]
	old := int32(0)
	if slot >= 0 {
		old = sp.diffs[slot]
	}
	if c == old {
		return
	}
	sp.sumDiff += int64(c - old)
	sp.num += int64(c-old) * sp.unit(v)
	switch {
	case slot < 0:
		sp.pos[v] = int32(len(sp.list))
		sp.list = append(sp.list, int32(v))
		sp.diffs = append(sp.diffs, c)
	case c == 0:
		sp.dropSlot(slot)
	default:
		sp.diffs[slot] = c
	}
}

// dropSlot swap-deletes the member at slot, keeping list and diffs
// parallel.
func (sp *SparseState) dropSlot(slot int32) {
	last := int32(len(sp.list) - 1)
	v := sp.list[slot]
	sp.list[slot] = sp.list[last]
	sp.diffs[slot] = sp.diffs[last]
	sp.pos[sp.list[slot]] = slot
	sp.list = sp.list[:last]
	sp.diffs = sp.diffs[:last]
	sp.pos[v] = -1
}

// SetOpinion sets X_v = x through the wrapped State and repairs the
// discordant-vertex set in O(d(v)): only v's own count and its
// neighbours' counts can change, each by one arc per incident copy.
func (sp *SparseState) SetOpinion(v, x int) {
	old := sp.s.Opinion(v)
	if x == old {
		return
	}
	sp.s.SetOpinion(v, x)
	nx := sp.x(v)
	ox := int32(old)
	if sp.s.opb != nil {
		ox = int32(old) - sp.s.base
	}
	t := sp.topo
	d := t.Degree(v)
	c := int32(0)
	for i := 0; i < d; i++ {
		w := t.Neighbor(v, i)
		xw := sp.x(w)
		wasDisc := xw != ox
		isDisc := xw != nx
		if isDisc {
			c++
		}
		if wasDisc == isDisc {
			continue
		}
		if isDisc {
			sp.bump(w, 1)
		} else {
			sp.bump(w, -1)
		}
	}
	sp.setDiff(v, c)
	sparseCheckInvariants(sp)
}

// sampleDiscordant draws the next active ordered pair (v, w) from the
// exact conditional law of the process given that the draw is
// discordant, by rejection from the member set (see the file comment
// for the law argument). It must only be called when ActiveMass() > 0,
// which guarantees a member with diff ≥ 1 and hence termination.
func (sp *SparseState) sampleDiscordant(r *rand.Rand) (v, w int) {
	t := sp.topo
	if sp.proc == VertexProcess {
		for {
			v := int(sp.list[r.Int64N(int64(len(sp.list)))])
			w := t.Neighbor(v, int(r.Int64N(int64(t.Degree(v)))))
			if sp.x(v) != sp.x(w) {
				return v, w
			}
		}
	}
	for {
		v := int(sp.list[r.Int64N(int64(len(sp.list)))])
		j := r.Int64N(sp.dmax)
		if j >= int64(t.Degree(v)) {
			continue
		}
		w := t.Neighbor(v, int(j))
		if sp.x(v) != sp.x(w) {
			return v, w
		}
	}
}

// CheckSparse re-derives the discordant-vertex set from scratch and
// returns an error describing the first inconsistency with the
// incrementally maintained one: membership ⇔ diff > 0, per-member arc
// counts, the position index, and the exact mass aggregates. The
// divtestinvariants build tag arranges for this to run after every
// opinion update (fast_invariants_on.go); the fuzz target and unit
// tests also call it directly.
func (sp *SparseState) CheckSparse() error {
	t := sp.topo
	n := t.N()
	if len(sp.list) != len(sp.diffs) {
		return fmt.Errorf("core: sparse list/diffs length mismatch (%d vs %d)", len(sp.list), len(sp.diffs))
	}
	var num, sumDiff int64
	members := 0
	for v := 0; v < n; v++ {
		xv := sp.x(v)
		d := t.Degree(v)
		c := int32(0)
		for i := 0; i < d; i++ {
			if sp.x(t.Neighbor(v, i)) != xv {
				c++
			}
		}
		slot := sp.pos[v]
		if (slot >= 0) != (c > 0) {
			return fmt.Errorf("core: vertex %d listed=%v, want diff=%d", v, slot >= 0, c)
		}
		if c > 0 {
			if int(slot) >= len(sp.list) || sp.list[slot] != int32(v) {
				return fmt.Errorf("core: vertex %d position index broken (pos=%d)", v, slot)
			}
			if sp.diffs[slot] != c {
				return fmt.Errorf("core: vertex %d diff=%d, recomputed %d", v, sp.diffs[slot], c)
			}
			members++
			sumDiff += int64(c)
			num += int64(c) * sp.unit(v)
		}
	}
	if members != len(sp.list) {
		return fmt.Errorf("core: sparse set has %d members, want %d", len(sp.list), members)
	}
	if sumDiff != sp.sumDiff {
		return fmt.Errorf("core: sparse Σdiff=%d, recomputed %d", sp.sumDiff, sumDiff)
	}
	if num != sp.num {
		return fmt.Errorf("core: sparse active mass numerator %d, recomputed %d", sp.num, num)
	}
	wantDen := t.DegreeSum()
	if sp.proc == VertexProcess {
		wantDen = int64(n) * sp.lcm
	}
	if sp.den != wantDen {
		return fmt.Errorf("core: sparse denominator %d, want %d", sp.den, wantDen)
	}
	return nil
}

// flushSparseRow emits the row's accumulated sparse-regime step batch
// plus a discordance sample, and realigns the emit boundary — the
// blocked-kernel counterpart of loopEnv.emitFastCadence.
func (b *blockRun) flushSparseRow(row *blockRow, sp *SparseState) {
	if row.probe == nil {
		return
	}
	num, den := sp.ActiveMass()
	row.probe.Discordance(obs.Discordance{
		Step:    row.s.Steps(),
		Edges:   sp.DiscordantEdges(),
		MassNum: num,
		MassDen: den,
	})
	to := row.s.Steps()
	if to != row.batch.FromStep {
		row.batch.ToStep = to
		row.batch.Engine = obs.RegimeSparse
		row.probe.StepBatch(row.batch)
		row.batch = obs.StepBatch{FromStep: to}
	}
	row.nextEmit = (to/b.observeEvery + 1) * b.observeEvery
}

// retireSparse finishes row's trial under sparse skip-sampling — the
// implicit/compact counterpart of retire()'s sequential fast loop, with
// the same loop structure as FastState.loop: geometric skips bounded by
// MaxSteps only (probe batches flush at the first step past the emit
// boundary, never by clamping the skip — a probe must not change the
// trajectory), exact conditional sampling for active steps, stop checks
// on support changes only. When allowRebound
// is set (EngineAuto) and the exact mass rebounds past the hybrid exit
// threshold, the row returns to blocked stepping and retireSparse
// reports true; under EngineFast the loop runs to the stop condition or
// the step cap.
func (b *blockRun) retireSparse(row *blockRow, sp *SparseState, allowRebound bool) (rebound bool) {
	s := row.s
	sp.attachDiscordance()
	span := sparseSessionTimer.Start()
	probe := row.probe != nil
	for !row.done {
		if s.Steps() >= b.maxSteps {
			row.done = true
			break
		}
		// The skip limit depends only on MaxSteps, never on the probe
		// cadence: clamping to nextEmit would segment the geometric draw
		// differently with a probe attached, consuming randomness on the
		// probe's behalf and breaking the probe-neutrality contract.
		// Batches are instead emitted at the first opportunity past the
		// boundary, exactly as FastState.loop does.
		limit := b.maxSteps - s.Steps()
		num, den := sp.ActiveMass()
		k := limit // no discordant pair anywhere: every draw is idle
		if num > 0 {
			k = geomSkip(row.r, num, den, limit)
		}
		if k < limit {
			s.addSteps(k + 1)
			if probe {
				row.batch.Skipped += k
				row.batch.Active++
			}
			v, w := sp.sampleDiscordant(row.r)
			sp.SetOpinion(v, b.pw.Target(s.Opinion(v), s.Opinion(w)))
			b.checkMajority(row)
			if s.SupportVersion() != row.prevVer && b.afterSupport(row) {
				break
			}
			if allowRebound && sp.num*b.exitScale > sp.den {
				rebound = true
				break
			}
		} else {
			s.addSteps(limit)
			if probe {
				row.batch.Skipped += limit
			}
		}
		if probe && s.Steps() >= row.nextEmit {
			b.flushSparseRow(row, sp)
		}
	}
	if probe {
		to := s.Steps()
		if to != row.batch.FromStep {
			row.batch.ToStep = to
			row.batch.Engine = obs.RegimeSparse
			row.probe.StepBatch(row.batch)
		}
		row.batch = obs.StepBatch{FromStep: to}
	}
	sp.detachDiscordance()
	sparseSetPeak.SetMax(sp.MemBytes())
	span.End()
	return rebound
}

package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"div/internal/graph"
	"div/internal/rng"
	"div/internal/stats"
)

// This file is the general-graph (CSR) arm of the blocked kernel's
// equivalence battery, mirroring the K_n arm in block_test.go: the
// lane-interleaved half-word kernels (laneLoopVertex/laneLoopEdge)
// must realize the same process law as the sequential fast engine on
// exactly the families the experiment grid runs them on — an expander
// (random regular), a torus, and a path — at the same α = 0.001
// χ²/KS standard. A fuzz target over (family, n, k, B) then pins the
// kernel's byte-identity contract on arbitrary small configurations.

// csrTestGraphs returns the non-complete families the generic blocked
// kernel targets: expander, torus, path (the E3–E19 regime).
func csrTestGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	rr, err := graph.RandomRegular(48, 6, rng.New(0xc5a))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"expander": rr,
		"torus":    graph.Torus(6, 8),
		"path":     graph.Path(24),
	}
}

// TestBlockCSRDistributionEquivalence compares the blocked CSR
// kernels against the sequential fast engine: independent samples,
// two-sample χ² on winners and two-sample KS on both stopping times.
func TestBlockCSRDistributionEquivalence(t *testing.T) {
	trials := eqTrials(t)
	for name, g := range csrTestGraphs(t) {
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			name, g, proc := name, g, proc
			t.Run(fmt.Sprintf("%s/%v", name, proc), func(t *testing.T) {
				t.Parallel()
				base := rng.DeriveSeed(0xc5eb, uint64(len(name))*131+uint64(g.N())*7+uint64(proc))
				fast := gatherEq(t, g, proc, EngineFast, rng.DeriveSeed(base, 1), trials, nil)
				blocked := gatherBlock(t, g, proc, EngineNaive, rng.DeriveSeed(base, 2), trials, DefaultBlock, nil)

				stat, df := chi2TwoSample(fast.winners, blocked.winners)
				if df > 0 {
					crit, ok := chi2Crit001[df]
					if !ok {
						t.Fatalf("no critical value for df=%d", df)
					}
					if stat > crit {
						t.Errorf("winner χ²(%d) = %.2f > %.2f (α=0.001): CSR blocked kernel disagrees with fast engine", df, stat, crit)
					}
				}
				ksCrit := ks2Crit001 * math.Sqrt(float64(2*trials)/float64(trials*trials))
				for _, series := range []struct {
					label  string
					fa, bl []float64
				}{
					{"consensus steps", fast.steps, blocked.steps},
					{"two-adjacent step", fast.twoAdj, blocked.twoAdj},
				} {
					d, err := stats.KS2Sample(series.fa, series.bl)
					if err != nil {
						t.Fatal(err)
					}
					if d > ksCrit {
						t.Errorf("%s KS distance %.4f > %.4f (α=0.001): CSR blocked kernel disagrees with fast engine", series.label, d, ksCrit)
					}
				}
			})
		}
	}
}

// TestBlockCSRLaneInterleaveIdentity pins the lane loops' determinism
// directly on a graph large enough that several chunks interleave: a
// block of 8 lanes must reproduce the single-lane trajectories
// bit-for-bit, including when the batch is split across spans.
func TestBlockCSRLaneInterleaveIdentity(t *testing.T) {
	const trials = 10
	rr, err := graph.RandomRegular(300, 8, rng.New(0x1a7e))
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range []Process{VertexProcess, EdgeProcess} {
		t.Run(proc.String(), func(t *testing.T) {
			n := rr.N()
			counts := []int{n / 3, n / 3, n - 2*(n/3)}
			cfg := BlockConfig{
				Graph:   rr,
				Process: proc,
				Engine:  EngineNaive,
				Seed:    0x1a7e5,
				Init: func(trial int, dst []int, r *rand.Rand) error {
					_, err := BlockOpinionsInto(dst, counts, r)
					return err
				},
				MaxSteps: 4 << 20,
			}
			ref := make([]Result, trials)
			cfg.Block = 1
			if err := RunBlock(cfg, 0, trials, ref); err != nil {
				t.Fatal(err)
			}
			got := make([]Result, trials)
			cfg.Block = 8
			if err := RunBlock(cfg, 0, trials, got); err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if resultKey(got[i]) != resultKey(ref[i]) {
					t.Fatalf("trial %d: block=8 diverged from block=1:\n  got  %s\n  want %s",
						i, resultKey(got[i]), resultKey(ref[i]))
				}
			}
			split := make([]Result, trials)
			cfg.Block = 5
			if err := RunBlock(cfg, 0, 4, split[:4]); err != nil {
				t.Fatal(err)
			}
			if err := RunBlock(cfg, 4, trials, split[4:]); err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if resultKey(split[i]) != resultKey(ref[i]) {
					t.Fatalf("trial %d: split spans diverged from block=1", i)
				}
			}
		})
	}
}

// fuzzGraph builds a small graph deterministically from the fuzz
// inputs: family selects the builder, n its size (clamped to keep runs
// fast). Random-regular rejection sampling can fail for awkward (n,d);
// those inputs are skipped.
func fuzzGraph(family uint8, n int) (*graph.Graph, error) {
	switch family % 4 {
	case 0:
		return graph.Path(2 + n%62), nil
	case 1:
		return graph.Cycle(3 + n%61), nil
	case 2:
		return graph.Torus(3+n%5, 3+n%7), nil
	default:
		nn := 8 + 2*(n%24) // even, ≥ 8
		return graph.RandomRegular(nn, 3+n%4, rng.New(uint64(n)*0x9e37+1))
	}
}

// FuzzBlockCSR fuzzes the blocked kernel over (family, n, k, B, seed):
// whatever the configuration, running the same trials at block size B
// must reproduce the block=1 trajectories byte-for-byte, and both the
// vertex and edge lane kernels must uphold the State invariants well
// enough to finish without panicking. This is the determinism contract
// under adversarially odd shapes (tiny degrees, odd tori, k up to 6).
func FuzzBlockCSR(f *testing.F) {
	f.Add(uint8(0), uint16(24), uint8(3), uint8(8), uint64(1))
	f.Add(uint8(1), uint16(12), uint8(2), uint8(3), uint64(2))
	f.Add(uint8(2), uint16(30), uint8(4), uint8(5), uint64(3))
	f.Add(uint8(3), uint16(40), uint8(6), uint8(2), uint64(4))
	f.Fuzz(func(t *testing.T, family uint8, n16 uint16, k8 uint8, b8 uint8, seed uint64) {
		g, err := fuzzGraph(family, int(n16))
		if err != nil {
			t.Skip() // rejection-sampled family failed for this shape
		}
		k := 2 + int(k8)%5
		block := 2 + int(b8)%8
		const trials = 5
		for _, proc := range []Process{VertexProcess, EdgeProcess} {
			cfg := BlockConfig{
				Graph:   g,
				Process: proc,
				Engine:  EngineNaive,
				Seed:    seed,
				Init: func(trial int, dst []int, r *rand.Rand) error {
					UniformOpinionsInto(dst, k, r)
					return nil
				},
				MaxSteps: 60000, // byte identity does not need consensus
			}
			ref := make([]Result, trials)
			cfg.Block = 1
			if err := RunBlock(cfg, 0, trials, ref); err != nil {
				t.Fatal(err)
			}
			got := make([]Result, trials)
			cfg.Block = block
			if err := RunBlock(cfg, 0, trials, got); err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if resultKey(got[i]) != resultKey(ref[i]) {
					t.Fatalf("%v %v block=%d trial %d diverged:\n  got  %s\n  want %s",
						g, proc, block, i, resultKey(got[i]), resultKey(ref[i]))
				}
			}
		}
	})
}
